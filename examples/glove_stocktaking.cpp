// Application area 1+2 of the paper (Section 5.2): gloved work and
// one-hand-busy work — here, stocktaking in a cold warehouse. The worker
// counts items with one (thick-gloved) hand and books them into a
// 60-item stock list with the DistScroll in the other.
//
// The example runs the SAME task list through DistScroll (chunked mode
// for the long list) and through the phone-keypad baseline, with and
// without thick gloves, using the simulated-participant models — a
// miniature of the exp_scroll_comparison study tuned to the scenario.
#include <cstdio>

#include "baselines/button_scroll.h"
#include "baselines/distance_scroll.h"
#include "human/motion_planner.h"
#include "study/report.h"
#include "study/task.h"
#include "study/trial.h"

using namespace distscroll;

namespace {

/// Stock bookings are chunk-local most of the time (shelf order), with
/// occasional far jumps — build that task mix.
std::vector<study::SelectionTask> stock_tasks(sim::Rng& rng, std::size_t items,
                                              std::size_t count) {
  std::vector<study::SelectionTask> tasks;
  std::size_t position = 0;
  for (std::size_t i = 0; i < count; ++i) {
    study::SelectionTask task;
    task.level_size = items;
    task.start_index = position;
    if (rng.bernoulli(0.75)) {
      // Next item on the shelf: short hop.
      const int hop = rng.uniform_int(1, 4);
      task.target_index = std::min(items - 1, position + static_cast<std::size_t>(hop));
    } else {
      // Cross-aisle jump.
      task.target_index = static_cast<std::size_t>(rng.uniform_int(0, static_cast<int>(items) - 1));
    }
    if (task.target_index == task.start_index) task.target_index = (task.start_index + 1) % items;
    position = task.target_index;
    tasks.push_back(task);
  }
  return tasks;
}

/// Chunked DistScroll model for the 60-item list: page to the chunk,
/// acquire within it (see exp_long_menus for the full treatment).
double chunked_booking_time(const study::SelectionTask& task,
                            baselines::DistanceScroll& technique,
                            const human::UserProfile& profile, sim::Rng rng, double& errors) {
  constexpr std::size_t kChunk = 10;
  const std::size_t chunks = (task.level_size + kChunk - 1) / kChunk;
  const std::size_t from_chunk = task.start_index / kChunk;
  const std::size_t to_chunk = task.target_index / kChunk;
  const std::size_t pages = (to_chunk + chunks - from_chunk) % chunks;
  double time = static_cast<double>(pages) * (profile.button_press_s + 0.06);

  study::SelectionTask sub;
  sub.level_size = std::min(kChunk, task.level_size - to_chunk * kChunk);
  sub.start_index = 0;
  sub.target_index = std::min(task.target_index % kChunk, sub.level_size - 1);
  if (sub.level_size < 2) return time + 0.3;
  const auto record = study::run_trial(technique, sub, profile, rng);
  errors += record.outcome.wrong_selections;
  return time + record.outcome.time_s;
}

}  // namespace

int main() {
  constexpr std::size_t kItems = 60;
  constexpr std::size_t kBookings = 40;

  std::printf("=== Stocktaking: 40 bookings into a %zu-item list ===\n\n", kItems);
  study::Table table({"device", "hands", "total time", "per booking", "wrong bookings"});

  for (const auto glove : {human::Glove::None, human::Glove::Thick}) {
    const auto profile = human::UserProfile::average().with_glove(glove);
    const char* hands = glove == human::Glove::None ? "bare" : "thick gloves";
    sim::Rng rng(77);
    sim::Rng task_rng = rng.fork(1);
    const auto tasks = stock_tasks(task_rng, kItems, kBookings);

    // DistScroll, chunked.
    {
      baselines::DistanceScroll technique({}, rng.fork(2));
      double total = 0.0, errors = 0.0;
      for (std::size_t i = 0; i < tasks.size(); ++i) {
        total += chunked_booking_time(tasks[i], technique, profile, rng.fork(100 + i), errors);
      }
      char per[16];
      std::snprintf(per, sizeof(per), "%.1f s", total / kBookings);
      table.add_row({"DistScroll (chunked)", hands, study::fmt(total, 1) + " s", per,
                     study::fmt(errors, 0)});
    }
    // Phone keypad.
    {
      baselines::ButtonScroll technique;
      double total = 0.0, errors = 0.0;
      for (std::size_t i = 0; i < tasks.size(); ++i) {
        const auto record = study::run_trial(technique, tasks[i], profile, rng.fork(200 + i));
        total += record.outcome.time_s;
        errors += record.outcome.wrong_selections;
      }
      char per[16];
      std::snprintf(per, sizeof(per), "%.1f s", total / kBookings);
      table.add_row({"phone keypad", hands, study::fmt(total, 1) + " s", per,
                     study::fmt(errors, 0)});
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("the paper's pitch in one table: with bare hands the keypad is\n"
              "fine; put on the winter gloves and the keypad falls apart while\n"
              "DistScroll barely notices — distance sensing + one big thumb\n"
              "button needs no fine motor control.\n");
  return 0;
}
