// Per-unit calibration workflow (the procedure behind Fig. 4/5, as
// firmware): place the device on a reference jig, sweep known
// distances, fit the idealised curve, persist it to the PIC's data
// EEPROM, and verify it survives a "battery change".
#include <cstdio>

#include "core/device_calibration.h"
#include "menu/phone_menu.h"

using namespace distscroll;

int main() {
  auto menu_root = menu::make_phone_menu();
  sim::EventQueue queue;

  // This unit's sensor reads ~12% hot vs the datasheet — exactly why
  // per-unit calibration exists.
  core::DistScrollDevice::Config config;
  config.sensor.curve_a = 11.6;
  config.sensor.curve_k = 0.75;
  core::DistScrollDevice device(config, *menu_root, queue, sim::Rng(123));

  std::printf("=== DistScroll per-unit calibration ===\n\n");
  std::printf("factory default curve: V(d) = %.2f/(d + %.2f) + %.2f\n",
              device.config().curve.params().a, device.config().curve.params().k,
              device.config().curve.params().c);
  std::printf("this unit's actual sensor: a=%.2f k=%.2f (reads hot)\n\n", 11.6, 0.75);

  std::vector<double> jig;
  for (double d = 4.0; d <= 30.0; d += 2.0) jig.push_back(d);
  std::printf("sweeping the reference jig: %zu positions, 6 samples each...\n", jig.size());
  const auto report = core::calibrate_device(device, queue, jig);

  std::printf("fitted: V(d) = %.2f/(d + %.2f) + %.2f   R^2 = %.4f\n",
              report.result.curve.params().a, report.result.curve.params().k,
              report.result.curve.params().c, report.result.r_squared);
  std::printf("usable range: %.1f .. %.1f cm\n", report.result.usable_near.value,
              report.result.usable_far.value);
  std::printf("accepted: %s   persisted to EEPROM: %s   took %.1f s\n\n",
              report.accepted ? "yes" : "NO", report.persisted ? "yes" : "NO",
              report.duration_s);

  // "Battery change": a fresh device object booting from the same
  // EEPROM contents.
  core::DistScrollDevice fresh({}, *menu_root, queue, sim::Rng(124));
  const auto record = device.eeprom().read_block(core::CalibrationStore::kBaseAddress,
                                                 core::CalibrationStore::kRecordSize);
  fresh.eeprom().write_block(core::CalibrationStore::kBaseAddress, record);
  if (fresh.load_calibration_from_eeprom()) {
    std::printf("after battery change: calibration restored from EEPROM\n");
    std::printf("  curve a=%.2f (calibrated) vs %.2f (datasheet default)\n",
                fresh.config().curve.params().a, core::SensorCurve().params().a);
  }
  std::printf("EEPROM writes so far: %llu (record is %zu bytes)\n",
              static_cast<unsigned long long>(device.eeprom().total_writes()),
              core::CalibrationStore::kRecordSize);
  return 0;
}
