// Quickstart: build a DistScroll device over a small menu, move the
// simulated hand, watch the cursor follow the distance, select an entry.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "core/distscroll_device.h"
#include "menu/menu_builder.h"

using namespace distscroll;

int main() {
  // 1. A menu to browse.
  auto menu_root = menu::MenuBuilder("demo")
                       .item("New message")
                       .item("Inbox")
                       .item("Contacts")
                       .item("Settings")
                       .item("Games")
                       .build();

  // 2. The device: default config = the paper's prototype (4..30 cm
  //    range, islands with dead zones, toward-user scrolls down).
  sim::EventQueue queue;
  core::DistScrollDevice::Config config;
  core::DistScrollDevice device(config, *menu_root, queue, sim::Rng(7));
  device.power_on();

  // 3. A "hand": hold the device at a distance, step through positions.
  double held_distance_cm = 28.0;
  device.set_distance_provider(
      [&](util::Seconds) { return util::Centimeters{held_distance_cm}; });

  std::printf("DistScroll quickstart — moving the device toward the body:\n\n");
  for (double d : {28.0, 22.0, 17.0, 11.0, 6.0}) {
    held_distance_cm = d;
    queue.run_until(util::Seconds{queue.now().value + 0.5});
    const auto& cursor = device.cursor();
    std::printf("  distance %5.1f cm -> highlighted entry [%zu] %s\n", d, cursor.index(),
                cursor.highlighted().label().c_str());
  }

  // 4. Select with the thumb button.
  device.select_button().press();
  queue.run_until(util::Seconds{queue.now().value + 0.1});
  device.select_button().release();
  queue.run_until(util::Seconds{queue.now().value + 0.1});

  if (!device.selections().empty()) {
    std::printf("\nselected: %s\n", device.selections().back().label.c_str());
  }

  // 5. What the user sees (top display, ASCII rendering).
  std::printf("\nTop display:\n%s", device.top_display().render_ascii().c_str());
  return 0;
}
