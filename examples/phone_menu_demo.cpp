// The paper's initial-study setup (Section 6): the fictive mobile phone
// menu on the upper display, debug info on the lower one, telemetry
// streaming to a logging PC over the wireless link.
//
// A scripted hand navigates Messages -> Inbox, then Settings -> Display
// -> Contrast, exactly as a study participant would, and the example
// prints what both displays show at each step plus the host-side log.
#include <cstdio>

#include "core/distscroll_device.h"
#include "menu/phone_menu.h"
#include "wireless/host_logger.h"
#include "wireless/rf_link.h"

using namespace distscroll;

namespace {

void print_displays(const core::DistScrollDevice& device) {
  std::printf("  upper display (menu)        lower display (debug)\n");
  for (int line = 0; line < display::kTextLines; ++line) {
    const bool inv = device.top_display().line_inverted(line);
    std::printf("  %c%-16s%c           %-16s\n", inv ? '[' : ' ',
                device.top_display().line_text(line).c_str(), inv ? ']' : ' ',
                device.bottom_display().line_text(line).c_str());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  auto menu_root = menu::make_phone_menu();
  sim::EventQueue queue;
  core::DistScrollDevice::Config config;
  core::DistScrollDevice device(config, *menu_root, queue, sim::Rng(2005));

  double hand_cm = 17.0;
  device.set_distance_provider([&](util::Seconds) { return util::Centimeters{hand_cm}; });

  // The logging PC behind the wireless link.
  wireless::RfLink link({}, device.board().uart(), queue, sim::Rng(1));
  wireless::HostLogger logger(queue);
  link.set_host_sink([&](std::uint8_t b) { logger.on_byte(b); });
  link.start();

  device.power_on();
  device.on_leaf_activated([&](const core::DistScrollDevice::SelectionEvent& e) {
    std::printf(">>> leaf activated: \"%s\" at t=%.2fs\n\n", e.label.c_str(), e.time_s);
  });

  auto settle = [&](double s) { queue.run_until(util::Seconds{queue.now().value + s}); };
  auto move_to_index = [&](std::size_t index) {
    // The hand aims at the island centre for `index` (toward-user =
    // down mapping: island = entries-1-index).
    const auto& mapper = device.mapper();
    hand_cm = mapper.centre_distance(mapper.entries() - 1 - index).value;
    settle(0.6);
  };
  auto click = [&](input::Button& b) {
    b.press();
    settle(0.15);
    b.release();
    settle(0.1);
  };

  std::printf("=== DistScroll phone-menu walkthrough ===\n\n");
  std::printf("-- start: root level --\n");
  settle(0.5);
  print_displays(device);

  std::printf("-- scroll to \"Messages\" (move the device away) and select --\n");
  move_to_index(0);
  print_displays(device);
  click(device.select_button());

  std::printf("-- inside Messages: scroll to \"Inbox\" --\n");
  move_to_index(1);
  print_displays(device);
  click(device.select_button());  // leaf: activates Inbox

  std::printf("-- back to root, then Settings > Display > Contrast --\n");
  click(device.back_button());
  move_to_index(3);  // Settings
  click(device.select_button());
  move_to_index(1);  // Display
  click(device.select_button());
  move_to_index(1);  // Contrast
  print_displays(device);
  click(device.select_button());

  std::printf("=== host-side study log ===\n");
  std::printf("frames received: %llu (crc rejects: %llu, gaps: %llu)\n",
              static_cast<unsigned long long>(logger.frames_received()),
              static_cast<unsigned long long>(logger.crc_errors()),
              static_cast<unsigned long long>(logger.sequence_gaps()));
  if (logger.last_state()) {
    std::printf("last state frame: depth=%u cursor=%u/%u adc=%u\n",
                logger.last_state()->menu_depth, logger.last_state()->cursor_index,
                logger.last_state()->level_size, logger.last_state()->adc_counts);
  }
  std::printf("device selections logged: %zu, firmware cycles: %llu\n",
              device.selections().size(),
              static_cast<unsigned long long>(device.board().mcu().cycles()));
  return 0;
}
