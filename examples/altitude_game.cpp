// Application area 3 of the paper (Section 5.2): games. "We think of
// any sort of character (e.g. aircraft) staying on a fixed position
// somewhere on the left side of the display. The altitude of the
// character is controlled by moving the DistScroll. ... Firing bullets
// ... can also be simulated using one or more buttons."
//
// Uses the game::AltitudeGame library on the device's CONTINUOUS
// sensing path (curve inverse on raw ADC counts rather than islands).
// A scripted "player hand" with human reaction delay and tremor plays a
// 30-second round on the BT96040.
#include <cstdio>

#include "core/sensor_curve.h"
#include "game/altitude_game.h"
#include "hw/adc.h"
#include "human/fitts.h"
#include "human/hand_model.h"
#include "human/user_profile.h"
#include "sensors/gp2d120.h"

using namespace distscroll;

int main() {
  sim::Rng rng(4242);

  // The sensing path: GP2D120 -> ADC -> curve inverse = continuous
  // altitude control (no islands — games want the raw parameter).
  sensors::Gp2d120Model ranger({}, rng.fork(1));
  hw::Adc10 adc({}, rng.fork(2));
  core::SensorCurve curve;
  human::HandModel hand({}, rng.fork(3), 17.0);
  // AnalogSource is non-owning: keep the callable alive alongside the ADC.
  auto ranger_source = [&](util::Seconds now) { return ranger.output(hand.distance(now), now); };
  const auto channel = adc.attach(ranger_source);

  display::Bt96040 panel;
  game::AltitudeGame game({}, rng.fork(4));

  // Scripted player: re-plans toward the next wall's gap at ~4 Hz
  // (reaction-limited), occasionally firing with the thumb.
  sim::Rng fire_rng = rng.fork(5);
  const auto profile = human::UserProfile::average();
  int frames = 0;
  for (double t = 0.0; t < 30.0; t += 0.05) {
    const game::Wall* next = nullptr;
    for (const auto& wall : game.walls()) {
      if (wall.x > game.config().plane_x && !wall.destroyed && (!next || wall.x < next->x)) {
        next = &wall;
      }
    }
    if (next != nullptr && frames % 5 == 0) {
      // Gap altitude -> target distance on the 4..30 cm span.
      const double target_cm =
          4.0 + (30.0 - 4.0) * next->gap_y / (game.config().height - 1);
      const auto reach = human::movement_time(profile.reach_fitts,
                                              std::abs(target_cm - hand.target_cm()), 2.0);
      hand.start_reach(util::Seconds{t}, target_cm, reach);
      if (fire_rng.bernoulli(0.12)) game.fire();
    }
    // Sensing: distance -> counts -> altitude.
    const auto counts = adc.sample(channel, util::Seconds{t});
    game.set_altitude_from_distance(curve.distance_at(counts).value, 4.0, 30.0);
    game.step();
    ++frames;
  }

  game.render(panel);
  std::printf("=== DistScroll altitude game — final frame after 30 s ===\n");
  std::printf("%s", panel.render_ascii().c_str());
  std::printf("score: %d   crashes: %d   (gap threaded: +%d, wall blasted: +%d)\n",
              game.score(), game.crashes(), game.config().pass_score,
              game.config().blast_score);
  std::printf("\nthe same sensor+curve stack the menu firmware uses, consumed as a\n"
              "continuous parameter — the paper's game application area.\n");
  return 0;
}
