// The paper's planned productisation (Section 7): the DistScroll as a
// dumb PDA add-on. The dongle streams raw distance counts and button
// events over the serial connector; the PDA owns the menu, the island
// mapping and a 10-line screen.
//
// The demo scrolls the phone menu through the add-on, throttles the
// report rate from the host side, and shows the PDA screen.
#include <cstdio>

#include "menu/phone_menu.h"
#include "pda/pda_addon.h"
#include "pda/pda_host.h"

using namespace distscroll;

int main() {
  auto menu_root = menu::make_phone_menu();
  sim::EventQueue queue;

  pda::PdaAddon addon({}, queue, sim::Rng(99));
  pda::PdaHost host({}, *menu_root);

  // The serial cable: clock addon bytes into the host at UART pace.
  std::function<void()> drain = [&] {
    if (auto byte = addon.uart().clock_out()) host.on_byte(*byte);
    queue.schedule_after(addon.uart().byte_time(), drain);
  };
  queue.schedule_after(addon.uart().byte_time(), drain);
  host.set_addon_sink([&](std::uint8_t byte) { addon.on_host_byte(byte); });

  double hand_cm = 17.0;
  addon.set_distance_provider([&](util::Seconds) { return util::Centimeters{hand_cm}; });
  addon.power_on();

  auto settle = [&](double s) { queue.run_until(util::Seconds{queue.now().value + s}); };
  auto show_screen = [&] {
    std::printf("  +----------------------+\n");
    for (const auto& line : host.screen()) std::printf("  | %-20s |\n", line.c_str());
    std::printf("  +----------------------+\n\n");
  };

  std::printf("=== DistScroll PDA add-on demo ===\n\n");
  settle(0.5);
  std::printf("PDA screen at 17 cm:\n");
  show_screen();

  // Scroll to "Organiser" (index 4) and open it.
  const auto& mapper = host.mapper();
  hand_cm = mapper.centre_distance(mapper.entries() - 1 - 4).value;
  settle(0.6);
  std::printf("moved the add-on to %.1f cm -> \"%s\":\n", hand_cm,
              host.cursor().highlighted().label().c_str());
  show_screen();

  addon.select_button().press();
  settle(0.1);
  addon.select_button().release();
  settle(0.1);
  std::printf("select pressed -> inside \"%s\" (islands rebuilt for %zu entries):\n",
              "Organiser", host.mapper().entries());
  show_screen();

  // Host throttles the dongle to save dongle battery.
  const auto before = addon.frames_sent();
  host.request_report_divider(10);
  settle(1.0);
  std::printf("after host throttle command: %llu frames in 1 s (was ~25/s)\n",
              static_cast<unsigned long long>(addon.frames_sent() - before));
  std::printf("dongle firmware footprint: %zu B flash, %zu B RAM (standalone: ~14 KiB)\n",
              addon.board().mcu().flash_used(), addon.board().mcu().ram_used());
  return 0;
}
