// Tests for the human motor model: min-jerk kinematics, tremor, Fitts
// timing, profiles and the closed-loop planner on a synthetic technique.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/scroll_technique.h"
#include "human/fitts.h"
#include "human/hand_model.h"
#include "human/motion_planner.h"
#include "human/user_profile.h"

namespace distscroll::human {
namespace {

// --- min jerk -----------------------------------------------------------------

TEST(MinJerk, EndpointsExact) {
  EXPECT_DOUBLE_EQ(min_jerk(2.0, 10.0, 0.0, 1.0), 2.0);
  EXPECT_DOUBLE_EQ(min_jerk(2.0, 10.0, 1.0, 1.0), 10.0);
  EXPECT_DOUBLE_EQ(min_jerk(2.0, 10.0, 5.0, 1.0), 10.0);  // past the end
}

TEST(MinJerk, MonotoneAndSmooth) {
  double prev = 0.0;
  double max_step = 0.0;
  for (double t = 0.0; t <= 1.0; t += 0.01) {
    const double x = min_jerk(0.0, 1.0, t, 1.0);
    EXPECT_GE(x, prev - 1e-12);
    max_step = std::max(max_step, x - prev);
    prev = x;
  }
  // Peak velocity of min-jerk is 1.875 * average: bell-shaped profile.
  EXPECT_NEAR(max_step / 0.01, 1.875, 0.05);
}

TEST(MinJerk, MidpointIsHalf) {
  EXPECT_NEAR(min_jerk(0.0, 1.0, 0.5, 1.0), 0.5, 1e-12);
}

// --- tremor ----------------------------------------------------------------------

TEST(Tremor, BoundedAmplitude) {
  Tremor::Config config;
  config.amplitude_cm = 0.1;
  config.amplitude_jitter = 0.2;
  Tremor tremor(config, sim::Rng(1));
  for (double t = 0.0; t < 5.0; t += 0.003) {
    EXPECT_LT(std::abs(tremor.displacement_cm(t)), 0.3);
  }
}

TEST(Tremor, OscillatesAtConfiguredBand) {
  Tremor::Config config;
  config.frequency_hz = 9.0;
  config.amplitude_jitter = 0.0;
  Tremor tremor(config, sim::Rng(2));
  // Count zero crossings over 2 s: ~2 * 9 Hz * 2 s = 36.
  int crossings = 0;
  double prev = tremor.displacement_cm(0.0);
  for (double t = 0.001; t < 2.0; t += 0.001) {
    const double x = tremor.displacement_cm(t);
    if ((x > 0) != (prev > 0)) ++crossings;
    prev = x;
  }
  EXPECT_NEAR(crossings, 36, 4);
}

// --- hand model ---------------------------------------------------------------------

TEST(HandModel, ReachMovesToTarget) {
  HandModel hand({}, sim::Rng(3), 17.0);
  hand.start_reach(util::Seconds{0.0}, 8.0, util::Seconds{0.5});
  EXPECT_FALSE(hand.reach_complete(util::Seconds{0.3}));
  EXPECT_TRUE(hand.reach_complete(util::Seconds{0.6}));
  EXPECT_NEAR(hand.distance(util::Seconds{1.0}).value, 8.0, 0.3);  // tremor slop
}

TEST(HandModel, SupersedingReachStartsFromCurrentPosition) {
  HandModel::Config config;
  config.tremor.amplitude_cm = 0.0;
  HandModel hand(config, sim::Rng(4), 20.0);
  hand.start_reach(util::Seconds{0.0}, 5.0, util::Seconds{1.0});
  const double mid = hand.distance(util::Seconds{0.5}).value;
  hand.start_reach(util::Seconds{0.5}, 25.0, util::Seconds{0.5});
  // Position continues from mid, no teleport.
  EXPECT_NEAR(hand.distance(util::Seconds{0.5}).value, mid, 1e-9);
  EXPECT_NEAR(hand.distance(util::Seconds{1.1}).value, 25.0, 1e-9);
}

TEST(HandModel, ClampsToPhysicalRange) {
  HandModel::Config config;
  config.tremor.amplitude_cm = 0.0;
  config.max_cm = 45.0;
  HandModel hand(config, sim::Rng(5), 17.0);
  hand.start_reach(util::Seconds{0.0}, 99.0, util::Seconds{0.1});
  EXPECT_LE(hand.distance(util::Seconds{0.2}).value, 45.0);
}

// --- Fitts -----------------------------------------------------------------------------

TEST(Fitts, IdZeroForZeroAmplitude) {
  EXPECT_DOUBLE_EQ(index_of_difficulty(0.0, 1.0), 0.0);
}

TEST(Fitts, IdGrowsWithAmplitudeShrinkWithWidth) {
  EXPECT_GT(index_of_difficulty(20.0, 1.0), index_of_difficulty(10.0, 1.0));
  EXPECT_GT(index_of_difficulty(10.0, 0.5), index_of_difficulty(10.0, 1.0));
}

TEST(Fitts, MovementTimeLinearInId) {
  const FittsParams params{0.1, 0.15};
  const double t1 = movement_time(params, 10.0, 1.0).value;   // ID ~3.46
  const double t2 = movement_time(params, 30.0, 1.0).value;   // ID ~4.95
  EXPECT_NEAR((t2 - t1) / (index_of_difficulty(30, 1) - index_of_difficulty(10, 1)), 0.15,
              1e-9);
}

TEST(Fitts, ThroughputInverseOfTime) {
  EXPECT_DOUBLE_EQ(throughput_bits_per_s(4.0, util::Seconds{2.0}), 2.0);
  EXPECT_DOUBLE_EQ(throughput_bits_per_s(4.0, util::Seconds{0.0}), 0.0);
}

// --- profiles -----------------------------------------------------------------------

TEST(UserProfile, ExpertiseImprovesEverything) {
  const auto novice = UserProfile::novice();
  const auto expert = UserProfile::expert();
  EXPECT_GT(novice.aim_w0_cm, expert.aim_w0_cm);
  EXPECT_GT(novice.verification_time_s, expert.verification_time_s);
  EXPECT_GT(novice.reaction_time_s, expert.reaction_time_s);
  EXPECT_GT(novice.button_miss_probability, expert.button_miss_probability);
}

TEST(UserProfile, ThickGlovesRuinFineMotorNotReaching) {
  const auto bare = UserProfile::average();
  const auto gloved = bare.with_glove(Glove::Thick);
  // Fine motor: large penalty.
  EXPECT_GT(gloved.fine_motor_penalty, 2.0);
  EXPECT_GT(gloved.button_miss_probability, 3.0 * bare.button_miss_probability);
  // Gross reaching: small penalty (< 20%).
  EXPECT_LT(gloved.aim_w0_cm / bare.aim_w0_cm, 1.2);
}

TEST(UserProfile, ApplicationIsIdempotent) {
  const auto once = UserProfile::average().with_glove(Glove::Thick);
  const auto twice = once.with_glove(Glove::Thick).with_glove(Glove::Thick);
  EXPECT_DOUBLE_EQ(once.button_press_s, twice.button_press_s);
  EXPECT_DOUBLE_EQ(once.tremor.amplitude_cm, twice.tremor.amplitude_cm);
  const auto relearn = once.with_expertise(0.5);
  EXPECT_DOUBLE_EQ(relearn.button_press_s, once.with_expertise(0.5).button_press_s);
}

TEST(UserProfile, ExpertiseClamped) {
  EXPECT_DOUBLE_EQ(UserProfile{}.with_expertise(5.0).expertise, 1.0);
  EXPECT_DOUBLE_EQ(UserProfile{}.with_expertise(-2.0).expertise, 0.0);
}

// --- planner on a synthetic absolute technique -----------------------------------------

/// A perfect absolute technique: u in [0, 10] maps linearly onto the
/// level. Lets us test the planner's closed loop without sensor noise.
class LinearAbsolute final : public baselines::ScrollTechnique {
 public:
  std::string name() const override { return "linear"; }
  baselines::ControlSpec spec() const override {
    return {baselines::ControlStyle::AbsolutePosition, 0.0, 10.0, 5.0, 0.0, "u"};
  }
  void reset(std::size_t level_size, std::size_t start) override {
    size_ = level_size;
    cursor_ = start;
  }
  std::size_t cursor() const override { return cursor_; }
  std::size_t level_size() const override { return size_; }
  void on_control(util::Seconds, double u) override {
    const double slot = 10.0 / static_cast<double>(size_);
    const auto index = static_cast<long>(u / slot);
    cursor_ = static_cast<std::size_t>(std::clamp(index, 0L, static_cast<long>(size_) - 1));
  }
  std::optional<double> target_u(std::size_t target) const override {
    const double slot = 10.0 / static_cast<double>(size_);
    return (static_cast<double>(target) + 0.5) * slot;
  }
  double target_width_u(std::size_t) const override { return 10.0 / static_cast<double>(size_); }

 private:
  std::size_t size_ = 1;
  std::size_t cursor_ = 0;
};

TEST(MotionPlanner, AcquiresTargetOnCleanTechnique) {
  LinearAbsolute technique;
  technique.reset(10, 0);
  MotionPlanner planner({}, sim::Rng(1));
  const auto outcome = planner.acquire(technique, 7, UserProfile::average());
  EXPECT_TRUE(outcome.success);
  EXPECT_EQ(technique.cursor(), 7u);
  EXPECT_GT(outcome.time_s, 0.3);   // humans aren't instant
  EXPECT_LT(outcome.time_s, 10.0);  // but not lost either
  EXPECT_NEAR(outcome.id_bits, std::log2(8.0), 1e-9);
}

TEST(MotionPlanner, ExpertsFasterThanNovices) {
  double novice_total = 0.0, expert_total = 0.0;
  for (int i = 0; i < 20; ++i) {
    LinearAbsolute technique;
    technique.reset(10, 0);
    MotionPlanner planner({}, sim::Rng(100 + i));
    novice_total += planner.acquire(technique, 8, UserProfile::novice()).time_s;
    technique.reset(10, 0);
    MotionPlanner planner2({}, sim::Rng(200 + i));
    expert_total += planner2.acquire(technique, 8, UserProfile::expert()).time_s;
  }
  EXPECT_LT(expert_total, novice_total);
}

TEST(MotionPlanner, FinerTargetsTakeLonger) {
  // The closed-loop Fitts property: halving target width (more entries
  // on the same channel) raises acquisition time — narrow targets both
  // lengthen the planned movement and multiply correction attempts.
  // (Amplitude matters too, but for an absolute channel the correction
  // loop dominates, so width is the robust observable.)
  double coarse_total = 0.0, fine_total = 0.0;
  for (int i = 0; i < 20; ++i) {
    LinearAbsolute coarse;
    coarse.reset(5, 0);  // slot width 2.0 u
    MotionPlanner planner({}, sim::Rng(300 + i));
    coarse_total += planner.acquire(coarse, 3, UserProfile::average()).time_s;
    LinearAbsolute fine;
    fine.reset(40, 0);  // slot width 0.25 u
    MotionPlanner planner2({}, sim::Rng(300 + i));
    fine_total += planner2.acquire(fine, 30, UserProfile::average()).time_s;
  }
  EXPECT_GT(fine_total, coarse_total * 1.2);
}

TEST(MotionPlanner, DeterministicForSeed) {
  LinearAbsolute t1, t2;
  t1.reset(10, 0);
  t2.reset(10, 0);
  MotionPlanner p1({}, sim::Rng(7)), p2({}, sim::Rng(7));
  const auto o1 = p1.acquire(t1, 5, UserProfile::average());
  const auto o2 = p2.acquire(t2, 5, UserProfile::average());
  EXPECT_DOUBLE_EQ(o1.time_s, o2.time_s);
  EXPECT_EQ(o1.corrective_movements, o2.corrective_movements);
}

}  // namespace
}  // namespace distscroll::human
