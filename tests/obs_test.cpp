// Unit tests for the observability layer: Tracer ring semantics,
// MetricsRegistry instruments, trace binary/JSONL IO and the
// compare_traces diagnostics that the golden harness reports through.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <string>

#include "obs/metrics.h"
#include "obs/replay.h"
#include "obs/trace_event.h"
#include "obs/trace_io.h"
#include "obs/tracer.h"
#include "sim/event_queue.h"
#include "util/units.h"

namespace {

using namespace distscroll;

// --- Tracer -----------------------------------------------------------------

TEST(Tracer, RecordsInOrderWithManualTimestamps) {
  obs::Tracer tracer(8);
  tracer.set_time(0.5);
  tracer.record(obs::EventKind::CursorMove, 3, 1);
  tracer.record_at(0.75, obs::EventKind::DisplayFlush, 3, 9);

  const auto events = tracer.snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_DOUBLE_EQ(events[0].time_s, 0.5);
  EXPECT_EQ(events[0].kind, obs::EventKind::CursorMove);
  EXPECT_EQ(events[0].a, 3u);
  EXPECT_EQ(events[0].b, 1u);
  EXPECT_DOUBLE_EQ(events[1].time_s, 0.75);
  EXPECT_EQ(events[1].kind, obs::EventKind::DisplayFlush);
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(Tracer, RingOverwritesOldestAndCountsDropped) {
  obs::Tracer tracer(4);
  for (std::uint32_t i = 0; i < 10; ++i) {
    tracer.record_at(static_cast<double>(i), obs::EventKind::AdcRead, i, 0);
  }
  EXPECT_EQ(tracer.size(), 4u);
  EXPECT_EQ(tracer.dropped(), 6u);
  const auto events = tracer.snapshot();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first snapshot: the last 4 of 10 records survive.
  for (std::uint32_t i = 0; i < 4; ++i) EXPECT_EQ(events[i].a, 6u + i);
}

TEST(Tracer, CategoryMaskAndEnableSwitchFilter) {
  obs::Tracer tracer(16, obs::kCatScroll);
  tracer.record_at(0.0, obs::EventKind::IslandEnter, 1, 0);   // scroll: kept
  tracer.record_at(0.0, obs::EventKind::AdcRead, 2, 100);     // adc: masked
  tracer.record_at(0.0, obs::EventKind::ArqTx, 1, 12);        // wireless: masked
  EXPECT_EQ(tracer.size(), 1u);
  EXPECT_EQ(tracer.dropped(), 0u);  // masked events are filtered, not dropped

  tracer.set_enabled(false);
  tracer.record_at(0.0, obs::EventKind::IslandLeave, 1, 0);
  EXPECT_EQ(tracer.size(), 1u);

  tracer.set_enabled(true);
  tracer.set_category_mask(obs::kCatAll);
  tracer.record_at(0.0, obs::EventKind::AdcRead, 2, 100);
  EXPECT_EQ(tracer.size(), 2u);
}

TEST(Tracer, BoundClockStampsFromSimTime) {
  sim::EventQueue queue;
  obs::Tracer tracer(8);
  tracer.bind_clock(queue);
  queue.schedule_at(util::Seconds{1.25}, [&] {
    tracer.record(obs::EventKind::ButtonEdge, 0, 1);
  });
  queue.run_all();
  const auto events = tracer.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_DOUBLE_EQ(events[0].time_s, 1.25);
}

TEST(Tracer, ClearResetsRingButKeepsConfig) {
  obs::Tracer tracer(2, obs::kCatScroll);
  tracer.record_at(0.0, obs::EventKind::IslandEnter, 1, 0);
  tracer.record_at(0.0, obs::EventKind::IslandLeave, 1, 0);
  tracer.record_at(0.0, obs::EventKind::DeadZoneCross, 1, 0);
  EXPECT_EQ(tracer.dropped(), 1u);
  tracer.clear();
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.dropped(), 0u);
  EXPECT_EQ(tracer.category_mask(), obs::kCatScroll);
}

// --- MetricsRegistry --------------------------------------------------------

TEST(MetricsRegistry, FindOrCreateReturnsStableReferences) {
  obs::MetricsRegistry registry;
  obs::Counter& ticks = registry.counter("ticks");
  obs::Gauge& util_gauge = registry.gauge("utilization");
  ticks.increment(41);
  registry.counter("ticks").increment();  // same instrument by name
  EXPECT_EQ(registry.counter("ticks").value(), 42u);
  util_gauge.set(0.5);
  EXPECT_DOUBLE_EQ(registry.gauge("utilization").value(), 0.5);
}

TEST(MetricsRegistry, RowsWalkRegistrationOrder) {
  obs::MetricsRegistry registry;
  registry.counter("b_first");
  registry.gauge("a_second");
  registry.histogram("c_third");
  const auto rows = registry.rows();
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].name, "b_first");
  EXPECT_EQ(rows[1].name, "a_second");
  EXPECT_EQ(rows[2].name, "c_third");
  EXPECT_EQ(rows[0].histogram, nullptr);
  EXPECT_NE(rows[2].histogram, nullptr);
}

TEST(MetricsRegistry, JsonFieldsRenderEveryInstrument) {
  obs::MetricsRegistry registry;
  registry.counter("cells").set(7);
  registry.gauge("load").set(0.25);
  registry.histogram("lat").record(1e-3);
  const std::string json = registry.to_json_fields(2);
  EXPECT_NE(json.find("\"cells\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"load\":"), std::string::npos);
  EXPECT_NE(json.find("\"lat_count\": 1"), std::string::npos);
}

TEST(MetricsRegistry, ResetZeroesButKeepsInstruments) {
  obs::MetricsRegistry registry;
  obs::Counter& c = registry.counter("n");
  obs::Histogram& h = registry.histogram("lat");
  c.increment(5);
  h.record(2e-3);
  registry.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(&c, &registry.counter("n"));  // address stability survives reset
}

TEST(Histogram, Log2BucketingMatchesDocumentedRanges) {
  obs::Histogram hist;  // first bucket [0, 0.5 ms)
  hist.record(0.1e-3);   // bucket 0
  hist.record(0.6e-3);   // [0.5, 1) ms -> bucket 1
  hist.record(1.5e-3);   // [1, 2) ms -> bucket 2
  hist.record(1e9);      // overflow -> last bucket
  EXPECT_EQ(hist.count(), 4u);
  EXPECT_EQ(hist.buckets()[0], 1u);
  EXPECT_EQ(hist.buckets()[1], 1u);
  EXPECT_EQ(hist.buckets()[2], 1u);
  EXPECT_EQ(hist.buckets()[obs::Histogram::kBuckets - 1], 1u);
  EXPECT_DOUBLE_EQ(hist.bucket_low(1), 0.5e-3);
  EXPECT_DOUBLE_EQ(hist.bucket_low(2), 1.0e-3);
  EXPECT_NE(hist.render().find("ms"), std::string::npos);
}

// --- trace IO ---------------------------------------------------------------

obs::Trace sample_trace() {
  obs::Trace trace;
  trace.session_id = 7;
  trace.category_mask = obs::kCatReplay;
  trace.events.push_back({0.02, obs::EventKind::AdcRead, 2, 512});
  trace.events.push_back({0.04, obs::EventKind::CursorMove, 1, 0});
  trace.events.push_back({0.04, obs::EventKind::DisplayFlush, 1, 9});
  return trace;
}

TEST(TraceIo, SerializeRoundTripsExactly) {
  const obs::Trace trace = sample_trace();
  const auto bytes = obs::serialize(trace);
  EXPECT_EQ(bytes.size(), 24u + 17u * trace.events.size());
  EXPECT_EQ(bytes[0], 'D');
  EXPECT_EQ(bytes[1], 'S');
  EXPECT_EQ(bytes[2], 'T');
  EXPECT_EQ(bytes[3], 'R');
  const auto parsed = obs::deserialize(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, trace);
}

TEST(TraceIo, DeserializeRejectsCorruption) {
  auto bytes = obs::serialize(sample_trace());
  auto bad_magic = bytes;
  bad_magic[0] = 'X';
  EXPECT_FALSE(obs::deserialize(bad_magic).has_value());

  auto truncated = bytes;
  truncated.resize(truncated.size() - 1);
  EXPECT_FALSE(obs::deserialize(truncated).has_value());

  auto bad_version = bytes;
  bad_version[4] = 0xFF;
  EXPECT_FALSE(obs::deserialize(bad_version).has_value());
}

TEST(TraceIo, FileRoundTrip) {
  const obs::Trace trace = sample_trace();
  const std::string path = ::testing::TempDir() + "/obs_test_roundtrip.trace";
  ASSERT_TRUE(obs::write_trace(path, trace));
  const auto loaded = obs::read_trace(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, trace);
  std::remove(path.c_str());
}

TEST(TraceIo, JsonlOneObjectPerLine) {
  std::ostringstream out;
  obs::write_jsonl(out, sample_trace());
  const std::string text = out.str();
  std::size_t lines = 0;
  for (const char c : text) lines += (c == '\n');
  EXPECT_EQ(lines, 3u);
  EXPECT_NE(text.find("\"kind\":\"adc_read\""), std::string::npos);
  EXPECT_NE(text.find("\"kind\":\"display_flush\""), std::string::npos);
}

// --- compare_traces ---------------------------------------------------------

TEST(CompareTraces, MatchesIdenticalTraces) {
  const obs::CompareResult cmp = obs::compare_traces(sample_trace(), sample_trace());
  EXPECT_TRUE(cmp.match);
  EXPECT_TRUE(cmp.detail.empty());
}

TEST(CompareTraces, DiagnosesFirstDivergingEvent) {
  const obs::Trace expected = sample_trace();
  obs::Trace actual = expected;
  actual.events[1].a = 99;
  const obs::CompareResult cmp = obs::compare_traces(expected, actual);
  EXPECT_FALSE(cmp.match);
  EXPECT_EQ(cmp.first_divergence, 1u);
  EXPECT_FALSE(cmp.detail.empty());
}

TEST(CompareTraces, DiagnosesLengthAndHeaderMismatch) {
  const obs::Trace expected = sample_trace();
  obs::Trace shorter = expected;
  shorter.events.pop_back();
  const obs::CompareResult cmp = obs::compare_traces(expected, shorter);
  EXPECT_FALSE(cmp.match);
  EXPECT_EQ(cmp.first_divergence, shorter.events.size());

  obs::Trace remasked = expected;
  remasked.category_mask = obs::kCatAll;
  EXPECT_FALSE(obs::compare_traces(expected, remasked).match);
}

}  // namespace
