// Tests for the in-situ calibration workflow (jig sweep -> fit ->
// EEPROM -> activate) and the fatigue model.
#include <gtest/gtest.h>

#include "core/device_calibration.h"
#include "human/fatigue.h"
#include "menu/menu_builder.h"

namespace distscroll {
namespace {

struct CalibrationFixture : ::testing::Test {
  std::unique_ptr<menu::MenuNode> menu_root = menu::make_flat_menu(6);
  sim::EventQueue queue;

  std::unique_ptr<core::DistScrollDevice> make(double sensor_a = 10.4, double sensor_k = 0.6) {
    core::DistScrollDevice::Config config;
    // A unit-to-unit sensor variation the calibration must capture.
    config.sensor.curve_a = sensor_a;
    config.sensor.curve_k = sensor_k;
    return std::make_unique<core::DistScrollDevice>(config, *menu_root, queue, sim::Rng(31));
  }

  static std::vector<double> jig() {
    std::vector<double> distances;
    for (double d = 4.0; d <= 30.0; d += 2.0) distances.push_back(d);
    return distances;
  }
};

TEST_F(CalibrationFixture, ProcedureFitsAndPersists) {
  auto device = make();
  const auto report = core::calibrate_device(*device, queue, jig());
  EXPECT_TRUE(report.accepted);
  EXPECT_TRUE(report.persisted);
  EXPECT_GT(report.result.r_squared, 0.98);
  EXPECT_NEAR(report.result.curve.params().a, 10.4, 1.5);
  EXPECT_TRUE(device->calibrated_from_eeprom());
  // The procedure takes realistic bench time (>= dwell * points).
  EXPECT_GT(report.duration_s, 4.0);
  EXPECT_LT(report.duration_s, 60.0);
}

TEST_F(CalibrationFixture, CapturesUnitVariation) {
  // A sensor that reads 15% hot: the calibrated curve must follow the
  // unit, not the datasheet default.
  auto device = make(/*sensor_a=*/12.0, /*sensor_k=*/0.9);
  const auto report = core::calibrate_device(*device, queue, jig());
  ASSERT_TRUE(report.accepted);
  EXPECT_NEAR(report.result.curve.params().a, 12.0, 1.8);
  // And the device's live mapping now uses it.
  EXPECT_NEAR(device->config().curve.params().a, report.result.curve.params().a, 1e-6);
}

TEST_F(CalibrationFixture, CalibratedDeviceScrollsAccurately) {
  auto device = make(12.0, 0.9);
  (void)core::calibrate_device(*device, queue, jig());
  double distance = 17.0;
  device->set_distance_provider([&](util::Seconds) { return util::Centimeters{distance}; });
  // Every island centre must select its own entry through the live path.
  for (std::size_t island = 0; island < device->mapper().entries(); ++island) {
    distance = device->mapper().centre_distance(island).value;
    queue.run_until(util::Seconds{queue.now().value + 0.5});
    const std::size_t expected = device->mapper().entries() - 1 - island;
    EXPECT_EQ(device->cursor().index(), expected) << "island " << island;
  }
}

TEST_F(CalibrationFixture, SurvivesPowerCycle) {
  auto device = make(11.5, 0.7);
  (void)core::calibrate_device(*device, queue, jig());
  const double calibrated_a = device->config().curve.params().a;
  // "Battery change": new device object, same EEPROM contents.
  core::DistScrollDevice::Config config;
  core::DistScrollDevice fresh(config, *menu_root, queue, sim::Rng(32));
  // Move the EEPROM record over (same physical chip).
  const auto record = device->eeprom().read_block(core::CalibrationStore::kBaseAddress,
                                                  core::CalibrationStore::kRecordSize);
  fresh.eeprom().write_block(core::CalibrationStore::kBaseAddress, record);
  EXPECT_TRUE(fresh.load_calibration_from_eeprom());
  EXPECT_NEAR(fresh.config().curve.params().a, calibrated_a, 1e-4);
}

// --- fatigue ------------------------------------------------------------------

TEST(Fatigue, AccruesAndRecovers) {
  human::FatigueModel fatigue;
  fatigue.accrue(300.0, fatigue.config().wrist_tilt_rate);  // 5 min of tilting
  const double after = fatigue.level();
  EXPECT_GT(after, 0.5);
  fatigue.rest(60.0);
  EXPECT_LT(fatigue.level(), after);
  fatigue.rest(1e6);
  EXPECT_DOUBLE_EQ(fatigue.level(), 0.0);
}

TEST(Fatigue, SaturatesAtCap) {
  human::FatigueModel fatigue;
  fatigue.accrue(1e6, fatigue.config().wrist_tilt_rate);
  EXPECT_DOUBLE_EQ(fatigue.level(), 1.0);
}

TEST(Fatigue, PostureRatesOrdered) {
  // Wrist deviation > arm extension > strokes > buttons — the ordering
  // behind the paper's critique of tilt.
  const human::FatigueModel::Config config;
  EXPECT_GT(config.wrist_tilt_rate, config.arm_extension_rate);
  EXPECT_GT(config.arm_extension_rate, config.stroke_rate);
  EXPECT_GT(config.stroke_rate, config.button_rate);
}

TEST(Fatigue, AppliedProfileDegrades) {
  human::FatigueModel fatigue;
  fatigue.accrue(120.0, fatigue.config().wrist_tilt_rate);
  const auto base = human::UserProfile::average();
  const auto tired = fatigue.apply(base);
  EXPECT_GT(tired.tremor.amplitude_cm, base.tremor.amplitude_cm);
  EXPECT_GT(tired.reach_fitts.b_seconds_per_bit, base.reach_fitts.b_seconds_per_bit);
  EXPECT_GT(tired.button_press_s, base.button_press_s);
}

TEST(Fatigue, FreshModelIsNeutral) {
  const human::FatigueModel fatigue;
  const auto base = human::UserProfile::average();
  const auto applied = fatigue.apply(base);
  EXPECT_DOUBLE_EQ(applied.tremor.amplitude_cm, base.tremor.amplitude_cm);
  EXPECT_DOUBLE_EQ(applied.reach_fitts.b_seconds_per_bit, base.reach_fitts.b_seconds_per_bit);
}

}  // namespace
}  // namespace distscroll
