// Randomised robustness ("fuzz") tests: throw chaotic hands, button
// mashing, link garbage and hostile surfaces at the full device and
// check the invariants that must never break.
#include <gtest/gtest.h>

#include "core/distscroll_device.h"
#include "menu/menu_builder.h"
#include "pda/pda_host.h"
#include "wireless/packet.h"

namespace distscroll {
namespace {

class DeviceFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DeviceFuzz, ChaoticUseNeverBreaksInvariants) {
  sim::Rng rng(GetParam());
  sim::Rng menu_rng = rng.fork(1);
  auto menu_root = menu::make_random_menu(menu_rng, 2, 8, 3);

  sim::EventQueue queue;
  core::DistScrollDevice::Config config;
  // Randomise the configuration too.
  config.long_menu = static_cast<core::LongMenuStrategy>(rng.fork(2).uniform_int(0, 2));
  config.enable_fast_scroll = rng.fork(3).bernoulli(0.5);
  config.use_dual_sensor = rng.fork(4).bernoulli(0.5);
  config.enable_context_gate = rng.fork(5).bernoulli(0.5);
  config.enable_sensor_duty_cycle = rng.fork(6).bernoulli(0.5);
  config.scroll.smoothing = static_cast<core::Smoothing>(rng.fork(7).uniform_int(0, 2));

  double distance = 17.0;
  double pitch = 0.0;
  core::DistScrollDevice device(config, *menu_root, queue, rng.fork(8));
  device.set_distance_provider([&](util::Seconds) { return util::Centimeters{distance}; });
  device.set_tilt_provider([&](util::Seconds) { return util::Radians{pitch}; });
  device.set_surface(rng.fork(9).bernoulli(0.3) ? sensors::SurfaceProfile::reflective_vest()
                                                : sensors::SurfaceProfile::gray_jacket());
  device.power_on();

  sim::Rng action = rng.fork(10);
  for (int step = 0; step < 400; ++step) {
    switch (action.uniform_int(0, 6)) {
      case 0:
        distance = action.uniform(0.0, 45.0);  // including fold + out of range
        break;
      case 1:
        pitch = action.uniform(-1.5, 1.5);
        break;
      case 2:
        device.select_button().press();
        break;
      case 3:
        device.select_button().release();
        break;
      case 4:
        device.back_button().press();
        device.back_button().release();
        break;
      case 5:
        device.aux_button().press();
        device.aux_button().release();
        break;
      case 6:
        break;  // just let time pass
    }
    queue.run_until(util::Seconds{queue.now().value + action.uniform(0.005, 0.1)});

    // Invariants.
    const auto& cursor = device.cursor();
    ASSERT_LT(cursor.index(), cursor.level_size());
    ASSERT_LE(cursor.depth(), menu_root->depth());
    ASSERT_GE(device.mapper().entries(), 1u);
    if (device.current_chunk()) {
      ASSERT_LT(*device.current_chunk(), 1000u);
    }
  }
  // The firmware must still be alive and sane.
  EXPECT_TRUE(device.powered());
  EXPECT_GT(device.board().mcu().cycles(), 0u);
  EXPECT_LE(device.board().mcu().ram_used(), 1536u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeviceFuzz,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88, 99, 110));

class DecoderFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DecoderFuzz, RandomBytesNeverProduceInvalidFrames) {
  sim::Rng rng(GetParam());
  wireless::FrameDecoder decoder;
  int decoded = 0;
  for (int i = 0; i < 20000; ++i) {
    const auto byte = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    for (auto frame = decoder.feed(byte); frame; frame = decoder.poll()) {
      ++decoded;
      // Anything that decodes must be structurally valid.
      ASSERT_LE(frame->payload.size(), wireless::kMaxPayload);
      ASSERT_TRUE(wireless::is_known_frame_type(static_cast<std::uint8_t>(frame->type)));
    }
  }
  // Random bytes occasionally form valid CRC-protected frames (1/256
  // per sync hit) — but only rarely.
  EXPECT_LT(decoded, 40);
}

TEST_P(DecoderFuzz, GarbageBetweenValidFramesNeverDesyncsForLong) {
  sim::Rng rng(GetParam() + 500);
  wireless::FrameDecoder decoder;
  int delivered = 0;
  constexpr int kFrames = 200;
  for (int i = 0; i < kFrames; ++i) {
    // Garbage burst.
    const int garbage = rng.uniform_int(0, 12);
    for (int g = 0; g < garbage; ++g) {
      decoder.feed(static_cast<std::uint8_t>(rng.uniform_int(0, 255)));
    }
    // A valid frame.
    wireless::Frame frame;
    frame.type = wireless::FrameType::State;
    frame.seq = static_cast<std::uint8_t>(i);
    frame.payload = {static_cast<std::uint8_t>(i), 7};
    for (std::uint8_t byte : wireless::encode(frame)) {
      for (auto f = decoder.feed(byte); f; f = decoder.poll()) ++delivered;
    }
  }
  // A fake sync inside garbage can capture real bytes, but the resync
  // rescan must hand them back: since the rescan window always ends at a
  // frame boundary here, every valid frame eventually delivers.
  EXPECT_GT(delivered, kFrames * 9 / 10);
}

// The resync property under random traffic: build a random valid
// multi-frame stream, corrupt ONE random byte, and require that at most
// one frame is lost and nothing not-sent is ever delivered.
TEST_P(DecoderFuzz, SingleByteCorruptionOfRandomStreamLosesAtMostOneFrame) {
  sim::Rng rng(GetParam() + 9000);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<wireless::Frame> frames(8);
    std::vector<std::uint8_t> wire;
    for (std::size_t i = 0; i < frames.size(); ++i) {
      frames[i].type = static_cast<wireless::FrameType>(rng.uniform_int(1, 5));
      frames[i].seq = static_cast<std::uint8_t>(i);
      frames[i].payload.resize(static_cast<std::size_t>(rng.uniform_int(0, 8)));
      for (auto& b : frames[i].payload) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
      const auto bytes = wireless::encode(frames[i]);
      wire.insert(wire.end(), bytes.begin(), bytes.end());
    }
    const auto pos = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<int>(wire.size()) - 1));
    const auto original = wire[pos];
    do {
      wire[pos] = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    } while (wire[pos] == original);

    wireless::FrameDecoder decoder;
    std::vector<wireless::Frame> decoded;
    for (std::uint8_t byte : wire) {
      for (auto f = decoder.feed(byte); f; f = decoder.poll()) decoded.push_back(std::move(*f));
    }
    for (auto f = decoder.flush(); f; f = decoder.poll()) decoded.push_back(std::move(*f));

    std::size_t matched = 0;
    std::size_t next = 0;
    for (const auto& frame : decoded) {
      const auto it =
          std::find(frames.begin() + static_cast<std::ptrdiff_t>(next), frames.end(), frame);
      ASSERT_NE(it, frames.end()) << "trial " << trial << ": decoded a frame never sent";
      ++matched;
      next = static_cast<std::size_t>(it - frames.begin()) + 1;
    }
    ASSERT_GE(matched, frames.size() - 1)
        << "trial " << trial << ": corrupting byte " << pos << " lost more than one frame";
    ASSERT_EQ(decoder.frames_decoded(), decoded.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecoderFuzz, ::testing::Values(1, 2, 3, 4, 5));

TEST(PdaHostFuzz, RandomByteStreamIsHarmless) {
  auto menu_root = menu::make_flat_menu(10);
  pda::PdaHost host({}, *menu_root);
  sim::Rng rng(77);
  for (int i = 0; i < 50000; ++i) {
    host.on_byte(static_cast<std::uint8_t>(rng.uniform_int(0, 255)));
    ASSERT_LT(host.cursor().index(), host.cursor().level_size());
  }
}

}  // namespace
}  // namespace distscroll
