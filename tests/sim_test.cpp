// Unit tests for the discrete-event kernel and RNG streams.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "sim/event_queue.h"
#include "sim/random.h"

namespace distscroll::sim {
namespace {

TEST(EventQueue, DispatchesInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(util::Seconds{3.0}, [&] { order.push_back(3); });
  q.schedule_at(util::Seconds{1.0}, [&] { order.push_back(1); });
  q.schedule_at(util::Seconds{2.0}, [&] { order.push_back(2); });
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameTimeEventsKeepInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule_at(util::Seconds{1.0}, [&, i] { order.push_back(i); });
  }
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, ClockAdvancesToEventTime) {
  EventQueue q;
  double seen = -1.0;
  q.schedule_at(util::Seconds{2.5}, [&] { seen = q.now().value; });
  q.run_all();
  EXPECT_DOUBLE_EQ(seen, 2.5);
  EXPECT_DOUBLE_EQ(q.now().value, 2.5);
}

TEST(EventQueue, ScheduleAfterIsRelative) {
  EventQueue q;
  double fired_at = -1.0;
  q.schedule_at(util::Seconds{1.0}, [&] {
    q.schedule_after(util::Seconds{0.5}, [&] { fired_at = q.now().value; });
  });
  q.run_all();
  EXPECT_DOUBLE_EQ(fired_at, 1.5);
}

TEST(EventQueue, SchedulingInThePastClampsToNow) {
  EventQueue q;
  double fired_at = -1.0;
  q.schedule_at(util::Seconds{2.0}, [&] {
    q.schedule_at(util::Seconds{0.5}, [&] { fired_at = q.now().value; });
  });
  q.run_all();
  EXPECT_DOUBLE_EQ(fired_at, 2.0);
}

TEST(EventQueue, CancelPendingEvent) {
  EventQueue q;
  bool fired = false;
  const auto h = q.schedule_at(util::Seconds{1.0}, [&] { fired = true; });
  EXPECT_TRUE(q.cancel(h));
  EXPECT_FALSE(q.cancel(h));  // already gone
  q.run_all();
  EXPECT_FALSE(fired);
}

TEST(EventQueue, RunUntilStopsAtBoundaryAndAdvancesClock) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(util::Seconds{1.0}, [&] { ++fired; });
  q.schedule_at(util::Seconds{5.0}, [&] { ++fired; });
  EXPECT_EQ(q.run_until(util::Seconds{2.0}), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(q.now().value, 2.0);  // observed time even with no event
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, RunUntilIncludesBoundaryEvents) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(util::Seconds{2.0}, [&] { ++fired; });
  q.run_until(util::Seconds{2.0});
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, PeriodicSelfRescheduling) {
  EventQueue q;
  int count = 0;
  std::function<void()> tick = [&] {
    ++count;
    if (count < 10) q.schedule_after(util::Seconds{0.1}, tick);
  };
  q.schedule_after(util::Seconds{0.1}, tick);
  q.run_until(util::Seconds{0.55});
  EXPECT_EQ(count, 5);
  q.run_all();
  EXPECT_EQ(count, 10);
}

TEST(EventQueue, RunAllRespectsCap) {
  EventQueue q;
  std::function<void()> forever = [&] { q.schedule_after(util::Seconds{0.001}, forever); };
  q.schedule_after(util::Seconds{0.001}, forever);
  EXPECT_EQ(q.run_all(100), 100u);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(0, 1), b.uniform(0, 1));
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 20; ++i) {
    if (a.uniform(0, 1) == b.uniform(0, 1)) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, ForkIsStableAndIndependentOfParentDraws) {
  Rng a(42);
  Rng child_before = a.fork(7);
  (void)a.uniform(0, 1);  // parent draws...
  (void)a.gaussian(0, 1);
  Rng child_after = a.fork(7);  // ...must not shift the child stream
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(child_before.uniform(0, 1), child_after.uniform(0, 1));
  }
}

TEST(Rng, ForkDifferentTagsDiffer) {
  Rng a(42);
  Rng c1 = a.fork(1);
  Rng c2 = a.fork(2);
  EXPECT_NE(c1.uniform(0, 1), c2.uniform(0, 1));
}

TEST(Rng, BernoulliEdgeCases) {
  Rng r(9);
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(r.bernoulli(0.0));
    EXPECT_TRUE(r.bernoulli(1.0));
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng r(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const int v = r.uniform_int(3, 5);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 5);
    saw_lo |= (v == 3);
    saw_hi |= (v == 5);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, GaussianZeroStddevReturnsMean) {
  Rng r(5);
  EXPECT_DOUBLE_EQ(r.gaussian(3.5, 0.0), 3.5);
}

TEST(Rng, ExponentialMeanApproximately) {
  Rng r(11);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.exponential(2.0);
  EXPECT_NEAR(sum / n, 2.0, 0.1);
}

/// Raw engine steps taken to move a clone of `from` to `to` (draw
/// counting for the batched-RNG contract tests below).
int raw_draws(Rng from, const Rng::EngineState& to) {
  int steps = 0;
  while (!(from.engine_state() == to)) {
    from.next_u64();
    ++steps;
    if (steps > 64) ADD_FAILURE() << "engine states never re-converged";
    if (steps > 64) break;
  }
  return steps;
}

// The regression the batch kernel satellite fixed: gaussian()'s cached
// Box–Muller spare makes a single call consume 2 raw draws or 0
// depending on call history. Pin that behaviour (it is load-bearing for
// scalar streams) and pin gaussian_pair/fill_gaussian as the
// history-INVARIANT counterparts.
TEST(Rng, GaussianSpareCacheMakesDrawCountHistoryDependent) {
  Rng r(42);
  const auto s0 = r.engine_state();
  r.gaussian(0.0, 1.0);  // fresh: one full Box–Muller round
  EXPECT_EQ(raw_draws(Rng(42), r.engine_state()), 2);
  EXPECT_TRUE(r.has_cached_spare());
  const auto s1 = r.engine_state();
  r.gaussian(0.0, 1.0);  // spare satisfied: zero raw draws
  EXPECT_EQ(r.engine_state(), s1);
  EXPECT_FALSE(r.has_cached_spare());
  (void)s0;
}

TEST(Rng, GaussianPairAlwaysTwoDrawsAndIgnoresSpare) {
  Rng r(7);
  r.gaussian(0.0, 1.0);  // plant a spare
  ASSERT_TRUE(r.has_cached_spare());
  const auto before = r.engine_state();
  double a = 0.0, b = 0.0;
  r.gaussian_pair(0.0, 1.0, a, b);
  EXPECT_EQ(raw_draws([&] { Rng clone(7); clone.gaussian(0.0, 1.0); return clone; }(),
                      r.engine_state()),
            2);
  EXPECT_TRUE(r.has_cached_spare()) << "gaussian_pair must not touch the spare cache";
  // The pair is the (cos, sin) of one round — the same two values two
  // spare-free gaussian() calls would return.
  Rng witness(7);
  witness.gaussian(0.0, 1.0);
  witness.gaussian(0.0, 1.0);  // consume the planted spare to align history
  const double wa = witness.gaussian(0.0, 1.0);
  const double wb = witness.gaussian(0.0, 1.0);
  EXPECT_EQ(a, wa);
  EXPECT_EQ(b, wb);
  (void)before;
}

TEST(Rng, GaussianPairZeroStddevConsumesNothing) {
  Rng r(3);
  const auto before = r.engine_state();
  double a = 1.0, b = 2.0;
  r.gaussian_pair(5.0, 0.0, a, b);
  EXPECT_EQ(r.engine_state(), before);
  EXPECT_EQ(a, 5.0);
  EXPECT_EQ(b, 5.0);
}

/// The fill_gaussian contract: values AND engine consumption equal N
/// sequential gaussian() calls, for every length and both spare states.
TEST(Rng, FillGaussianMatchesSequentialScalarCalls) {
  for (const bool plant_spare : {false, true}) {
    for (std::size_t n = 0; n <= 5; ++n) {
      Rng scalar(99);
      Rng batched(99);
      if (plant_spare) {
        ASSERT_EQ(scalar.gaussian(0.0, 1.0), batched.gaussian(0.0, 1.0));
      }
      std::vector<double> expected(n), got(n);
      for (std::size_t i = 0; i < n; ++i) expected[i] = scalar.gaussian(1.5, 0.25);
      batched.fill_gaussian(got, 1.5, 0.25);
      EXPECT_EQ(got, expected) << "n=" << n << " spare=" << plant_spare;
      EXPECT_EQ(batched.engine_state(), scalar.engine_state())
          << "n=" << n << " spare=" << plant_spare;
      EXPECT_EQ(batched.has_cached_spare(), scalar.has_cached_spare())
          << "n=" << n << " spare=" << plant_spare;
      // Interleaving check: the next scalar draw agrees too.
      EXPECT_EQ(batched.gaussian(0.0, 1.0), scalar.gaussian(0.0, 1.0));
    }
  }
}

TEST(Rng, FillU64MatchesSequentialNextU64) {
  Rng scalar(123);
  Rng batched(123);
  std::vector<std::uint64_t> expected(7), got(7);
  for (auto& v : expected) v = scalar.next_u64();
  batched.fill_u64(got);
  EXPECT_EQ(got, expected);
  EXPECT_EQ(batched.engine_state(), scalar.engine_state());
}

}  // namespace
}  // namespace distscroll::sim
