// Tests for the scroll controller (direction mapping, smoothing,
// statistics), chunked scrolling, speed-dependent zooming and the expert
// fast-scroll mode.
#include <gtest/gtest.h>

#include "core/chunked_scroll.h"
#include "core/fast_scroll.h"
#include "core/island_mapper.h"
#include "core/scroll_controller.h"
#include "core/speed_zoom.h"

namespace distscroll::core {
namespace {

struct ControllerFixture : ::testing::Test {
  SensorCurve curve{};
  IslandMapper mapper{curve, 5, {}};

  std::uint16_t centre(std::size_t island) const { return mapper.islands()[island].centre; }
};

TEST_F(ControllerFixture, TowardUserScrollsDownMapping) {
  ScrollController controller(mapper, {ScrollDirection::TowardUserScrollsDown, Smoothing::Raw});
  // Island 0 = nearest: with "down" mapping it is the LAST menu entry.
  auto update = controller.on_sample(util::AdcCounts{centre(0)});
  EXPECT_EQ(update.menu_index, 4u);
  update = controller.on_sample(util::AdcCounts{centre(4)});
  EXPECT_EQ(update.menu_index, 0u);
}

TEST_F(ControllerFixture, TowardUserScrollsUpMapping) {
  ScrollController controller(mapper, {ScrollDirection::TowardUserScrollsUp, Smoothing::Raw});
  auto update = controller.on_sample(util::AdcCounts{centre(0)});
  EXPECT_EQ(update.menu_index, 0u);
}

TEST_F(ControllerFixture, NoSelectionBeforeFirstIslandHit) {
  ScrollController controller(mapper, {});
  // A count in no island:
  const auto update = controller.on_sample(util::AdcCounts{1023});
  EXPECT_FALSE(update.menu_index.has_value());
  EXPECT_FALSE(controller.selection().has_value());
}

TEST_F(ControllerFixture, GapKeepsSelection) {
  ScrollController controller(mapper, {});
  controller.on_sample(util::AdcCounts{centre(2)});
  const auto before = controller.selection();
  const auto gap =
      static_cast<std::uint16_t>((mapper.islands()[2].low + mapper.islands()[3].high) / 2);
  const auto update = controller.on_sample(util::AdcCounts{gap});
  EXPECT_EQ(update.menu_index, before);
  EXPECT_FALSE(update.changed);
  EXPECT_EQ(controller.gap_samples(), 1u);
}

TEST_F(ControllerFixture, ChangeCountingAndStats) {
  ScrollController controller(mapper, {});
  controller.on_sample(util::AdcCounts{centre(0)});
  controller.on_sample(util::AdcCounts{centre(0)});
  controller.on_sample(util::AdcCounts{centre(1)});
  EXPECT_EQ(controller.samples(), 3u);
  EXPECT_EQ(controller.selection_changes(), 2u);  // null->0, 0->1
}

TEST_F(ControllerFixture, Median3KillsSingleGlitch) {
  ScrollController raw(mapper, {ScrollDirection::TowardUserScrollsUp, Smoothing::Raw});
  ScrollController filtered(mapper, {ScrollDirection::TowardUserScrollsUp, Smoothing::Median3});
  // Steady on island 1, one glitch sample at island 4's centre, steady.
  const std::uint16_t steady = centre(1), glitch = centre(4);
  for (auto* c : {&raw, &filtered}) {
    c->on_sample(util::AdcCounts{steady});
    c->on_sample(util::AdcCounts{steady});
  }
  raw.on_sample(util::AdcCounts{glitch});
  filtered.on_sample(util::AdcCounts{glitch});
  EXPECT_EQ(raw.selection(), 4u);       // raw follows the glitch
  EXPECT_EQ(filtered.selection(), 1u);  // median suppresses it
}

TEST_F(ControllerFixture, EmaConvergesToNewLevel) {
  ScrollController controller(mapper, {ScrollDirection::TowardUserScrollsUp, Smoothing::Ema});
  for (int i = 0; i < 3; ++i) controller.on_sample(util::AdcCounts{centre(0)});
  EXPECT_EQ(controller.selection(), 0u);
  // Step to island 3: EMA takes a few samples but converges.
  std::optional<std::size_t> final;
  for (int i = 0; i < 20; ++i) {
    final = controller.on_sample(util::AdcCounts{centre(3)}).menu_index;
  }
  EXPECT_EQ(final, 3u);
}

TEST_F(ControllerFixture, RawCheaperThanFilters) {
  ScrollController raw(mapper, {ScrollDirection::TowardUserScrollsUp, Smoothing::Raw});
  ScrollController med(mapper, {ScrollDirection::TowardUserScrollsUp, Smoothing::Median3});
  const auto raw_cost = raw.on_sample(util::AdcCounts{centre(0)}).cycles;
  const auto med_cost = med.on_sample(util::AdcCounts{centre(0)}).cycles;
  EXPECT_LT(raw_cost, med_cost);
  // The whole per-sample cost stays tiny — the paper's "no heavy input
  // processing" claim: well under 100 cycles (10 us at 10 MIPS).
  EXPECT_LT(med_cost, 100u);
}

TEST_F(ControllerFixture, ResetClearsState) {
  ScrollController controller(mapper, {});
  controller.on_sample(util::AdcCounts{centre(2)});
  controller.reset();
  EXPECT_FALSE(controller.selection().has_value());
}

// --- chunked scroll -----------------------------------------------------------

TEST(ChunkedScroll, BasicPaging) {
  ChunkedScroll chunks(25, 10);
  EXPECT_EQ(chunks.chunk_count(), 3u);
  EXPECT_EQ(chunks.entries_in_chunk(), 10u);
  EXPECT_EQ(chunks.to_absolute(4), 4u);
  EXPECT_TRUE(chunks.next_chunk());
  EXPECT_EQ(chunks.to_absolute(4), 14u);
  EXPECT_TRUE(chunks.next_chunk());
  EXPECT_EQ(chunks.entries_in_chunk(), 5u);  // short last chunk
  EXPECT_FALSE(chunks.next_chunk());
  EXPECT_TRUE(chunks.prev_chunk());
  EXPECT_EQ(chunks.chunk(), 1u);
}

TEST(ChunkedScroll, ChunkOfAbsoluteIndex) {
  ChunkedScroll chunks(25, 10);
  EXPECT_EQ(chunks.chunk_of(0), 0u);
  EXPECT_EQ(chunks.chunk_of(9), 0u);
  EXPECT_EQ(chunks.chunk_of(10), 1u);
  EXPECT_EQ(chunks.chunk_of(24), 2u);
  EXPECT_EQ(chunks.chunk_of(999), 2u);  // clamped
}

TEST(ChunkedScroll, ToAbsoluteClampsInShortChunk) {
  ChunkedScroll chunks(25, 10);
  chunks.jump_to_chunk(2);
  EXPECT_EQ(chunks.to_absolute(9), 24u);  // beyond the short chunk clamps
}

TEST(ChunkedScroll, ExactMultipleHasNoShortChunk) {
  ChunkedScroll chunks(30, 10);
  EXPECT_EQ(chunks.chunk_count(), 3u);
  chunks.jump_to_chunk(2);
  EXPECT_EQ(chunks.entries_in_chunk(), 10u);
}

TEST(ChunkedScroll, DegenerateSizes) {
  ChunkedScroll one(1, 10);
  EXPECT_EQ(one.chunk_count(), 1u);
  EXPECT_FALSE(one.next_chunk());
  EXPECT_FALSE(one.prev_chunk());
  EXPECT_EQ(one.to_absolute(5), 0u);
}

// --- speed zoom ------------------------------------------------------------------

TEST(SpeedZoom, StartsCoarseForLongMenus) {
  SpeedZoom zoom(100, 10);
  EXPECT_EQ(zoom.mode(), SpeedZoom::Mode::Coarse);
  EXPECT_EQ(zoom.bucket_size(), 10u);
}

TEST(SpeedZoom, ShortMenuIsAlwaysFine) {
  SpeedZoom zoom(8, 10);
  EXPECT_EQ(zoom.on_update(util::Seconds{0.1}, 3), 3u);
  EXPECT_EQ(zoom.mode(), SpeedZoom::Mode::Fine);
}

TEST(SpeedZoom, CoarseAddressesBucketMiddles) {
  SpeedZoom zoom(100, 10);
  const auto entry = zoom.on_update(util::Seconds{0.1}, 4);
  EXPECT_GE(entry, 40u);
  EXPECT_LT(entry, 50u);
}

TEST(SpeedZoom, DwellZoomsIn) {
  SpeedZoom zoom(100, 10);
  double t = 0.0;
  for (int i = 0; i < 40; ++i) {
    t += 0.05;
    zoom.on_update(util::Seconds{t}, 4);  // dwell on island 4
  }
  EXPECT_EQ(zoom.mode(), SpeedZoom::Mode::Fine);
  // Fine mode spreads islands across bucket 4 (entries 40..49); move
  // the hand SLOWLY (island by island) so the zoom stays fine.
  std::size_t lo = 99, hi = 0;
  for (int island = 4; island >= 0; --island) {
    t += 0.3;
    lo = zoom.on_update(util::Seconds{t}, static_cast<std::size_t>(island));
  }
  for (int island = 0; island <= 9; ++island) {
    t += 0.3;
    hi = zoom.on_update(util::Seconds{t}, static_cast<std::size_t>(island));
  }
  EXPECT_EQ(zoom.mode(), SpeedZoom::Mode::Fine);
  EXPECT_EQ(lo, 40u);
  EXPECT_EQ(hi, 49u);
}

TEST(SpeedZoom, FastMotionZoomsBackOut) {
  SpeedZoom::Config config;
  SpeedZoom zoom(100, 10, config);
  double t = 0.0;
  // Dwell -> fine.
  for (int i = 0; i < 40; ++i) {
    t += 0.05;
    zoom.on_update(util::Seconds{t}, 4);
  }
  ASSERT_EQ(zoom.mode(), SpeedZoom::Mode::Fine);
  // Whip across islands quickly -> coarse again.
  for (int i = 0; i < 10; ++i) {
    t += 0.02;
    zoom.on_update(util::Seconds{t}, static_cast<std::size_t>(i % 10));
  }
  EXPECT_EQ(zoom.mode(), SpeedZoom::Mode::Coarse);
}

TEST(SpeedZoom, ResetRestoresCoarse) {
  SpeedZoom zoom(100, 10);
  double t = 0.0;
  for (int i = 0; i < 40; ++i) {
    t += 0.05;
    zoom.on_update(util::Seconds{t}, 2);
  }
  ASSERT_EQ(zoom.mode(), SpeedZoom::Mode::Fine);
  zoom.reset();
  EXPECT_EQ(zoom.mode(), SpeedZoom::Mode::Coarse);
  EXPECT_DOUBLE_EQ(zoom.velocity(), 0.0);
}

// --- fast scroll -------------------------------------------------------------------

TEST(FastScroll, InactiveBelowThreshold) {
  FastScrollMode turbo({500, util::Seconds{0.1}});
  EXPECT_EQ(turbo.on_sample(util::Seconds{0.0}, util::AdcCounts{400}), 0);
  EXPECT_FALSE(turbo.active());
}

TEST(FastScroll, ImmediateStepOnEntry) {
  FastScrollMode turbo({500, util::Seconds{0.1}});
  EXPECT_EQ(turbo.on_sample(util::Seconds{0.0}, util::AdcCounts{600}), 1);
  EXPECT_TRUE(turbo.active());
}

TEST(FastScroll, RepeatsAtPeriod) {
  FastScrollMode turbo({500, util::Seconds{0.1}});
  turbo.on_sample(util::Seconds{0.0}, util::AdcCounts{600});
  EXPECT_EQ(turbo.on_sample(util::Seconds{0.05}, util::AdcCounts{600}), 0);
  EXPECT_EQ(turbo.on_sample(util::Seconds{0.11}, util::AdcCounts{600}), 1);
  // A long stay emits catch-up steps.
  EXPECT_EQ(turbo.on_sample(util::Seconds{0.45}, util::AdcCounts{600}), 3);
}

TEST(FastScroll, LeavingZoneDeactivates) {
  FastScrollMode turbo({500, util::Seconds{0.1}});
  turbo.on_sample(util::Seconds{0.0}, util::AdcCounts{600});
  EXPECT_EQ(turbo.on_sample(util::Seconds{0.2}, util::AdcCounts{300}), 0);
  EXPECT_FALSE(turbo.active());
  // Re-entry steps immediately again.
  EXPECT_EQ(turbo.on_sample(util::Seconds{0.3}, util::AdcCounts{600}), 1);
}

}  // namespace
}  // namespace distscroll::core
