// Unit tests for the Smart-Its hardware substrate.
#include <gtest/gtest.h>

#include "hw/adc.h"
#include "hw/battery.h"
#include "hw/gpio.h"
#include "hw/i2c.h"
#include "hw/mcu.h"
#include "hw/smart_its.h"
#include "hw/uart.h"

namespace distscroll::hw {
namespace {

// --- battery -----------------------------------------------------------------

TEST(Battery, TracksConsumersAndDraw) {
  Battery bat;
  const auto mcu = bat.add_consumer("mcu", 12.0);
  const auto sensor = bat.add_consumer("sensor", 33.0);
  EXPECT_DOUBLE_EQ(bat.total_draw_ma(), 45.0);
  bat.set_draw(sensor, 0.0);  // duty-cycled off
  EXPECT_DOUBLE_EQ(bat.total_draw_ma(), 12.0);
  EXPECT_EQ(bat.consumer_name(mcu), "mcu");
}

TEST(Battery, ConsumesCoulombs) {
  Battery bat;
  bat.add_consumer("load", 100.0);
  bat.consume(util::Seconds{3600.0});  // one hour at 100 mA
  EXPECT_NEAR(bat.consumed_mah(), 100.0, 1e-9);
  EXPECT_NEAR(bat.remaining_fraction(), 1.0 - 100.0 / 550.0, 1e-9);
}

TEST(Battery, VoltageSagsUnderLoad) {
  Battery light, heavy;
  light.add_consumer("l", 5.0);
  heavy.add_consumer("h", 200.0);
  EXPECT_GT(light.voltage().value, heavy.voltage().value);
}

TEST(Battery, DepletesAndEstimatesRuntime) {
  Battery::Config config;
  config.capacity_mah = 10.0;
  Battery bat(config);
  bat.add_consumer("load", 10.0);
  EXPECT_NEAR(bat.estimated_runtime_hours(), 1.0, 1e-9);
  EXPECT_FALSE(bat.depleted());
  bat.consume(util::Seconds{3600.0});
  EXPECT_TRUE(bat.depleted());
}

TEST(Battery, PerConsumerAccounting) {
  Battery bat;
  bat.add_consumer("a", 10.0);
  bat.add_consumer("b", 30.0);
  bat.consume(util::Seconds{3600.0});
  EXPECT_NEAR(bat.per_consumer_mah()[0], 10.0, 1e-9);
  EXPECT_NEAR(bat.per_consumer_mah()[1], 30.0, 1e-9);
}

// --- ADC -----------------------------------------------------------------------

TEST(Adc, QuantizesAgainstVref) {
  Adc10::Config config;
  config.noise_lsb_stddev = 0.0;
  Adc10 adc(config, sim::Rng(1));
  const auto ch = adc.attach(+[](util::Seconds) { return util::Volts{2.5}; });
  const auto counts = adc.sample(ch, util::Seconds{0.0});
  EXPECT_NEAR(counts.value, 2.5 / 5.0 * 1023.0, 1.0);
}

TEST(Adc, ClampsOutOfRangeInputs) {
  Adc10::Config config;
  config.noise_lsb_stddev = 0.0;
  Adc10 adc(config, sim::Rng(1));
  const auto hi = adc.attach(+[](util::Seconds) { return util::Volts{9.0}; });
  const auto lo = adc.attach(+[](util::Seconds) { return util::Volts{-1.0}; });
  EXPECT_EQ(adc.sample(hi, util::Seconds{0.0}).value, 1023);
  EXPECT_EQ(adc.sample(lo, util::Seconds{0.0}).value, 0);
}

TEST(Adc, NoiseStaysWithinAFewLsb) {
  Adc10 adc({}, sim::Rng(2));
  const auto ch = adc.attach(+[](util::Seconds) { return util::Volts{2.0}; });
  const double expected = 2.0 / 5.0 * 1023.0;
  for (int i = 0; i < 200; ++i) {
    EXPECT_NEAR(adc.sample(ch, util::Seconds{0.0}).value, expected, 4.0);
  }
}

TEST(Adc, ToVoltsInverse) {
  Adc10 adc({}, sim::Rng(3));
  EXPECT_NEAR(adc.to_volts(util::AdcCounts{512}).value, 512 * 5.0 / 1023.0, 1e-12);
}

TEST(Adc, MultipleChannelsIndependent) {
  Adc10::Config config;
  config.noise_lsb_stddev = 0.0;
  Adc10 adc(config, sim::Rng(4));
  const auto a = adc.attach(+[](util::Seconds) { return util::Volts{1.0}; });
  const auto b = adc.attach(+[](util::Seconds) { return util::Volts{4.0}; });
  EXPECT_LT(adc.sample(a, util::Seconds{0.0}).value, adc.sample(b, util::Seconds{0.0}).value);
  EXPECT_EQ(adc.channel_count(), 2u);
}

// --- GPIO ------------------------------------------------------------------------

TEST(Gpio, InputsDefaultHighViaPullUp) {
  Gpio gpio(4);
  EXPECT_EQ(gpio.read(0), PinLevel::High);
}

TEST(Gpio, ExternalDriveFiresEdgeCallbackOnChangeOnly) {
  Gpio gpio(2);
  int edges = 0;
  gpio.on_edge(0, [&](std::size_t, PinLevel) { ++edges; });
  gpio.drive_external(0, PinLevel::Low);
  gpio.drive_external(0, PinLevel::Low);  // no change
  gpio.drive_external(0, PinLevel::High);
  EXPECT_EQ(edges, 2);
}

TEST(Gpio, OutputWriteReadback) {
  Gpio gpio(2);
  gpio.set_mode(1, PinMode::Output);
  gpio.write(1, PinLevel::Low);
  EXPECT_EQ(gpio.read(1), PinLevel::Low);
}

// --- I2C -----------------------------------------------------------------------

class EchoSlave final : public I2cSlave {
 public:
  bool on_write(std::span<const std::uint8_t> data) override {
    last.assign(data.begin(), data.end());
    return true;
  }
  std::vector<std::uint8_t> on_read(std::size_t length) override {
    return std::vector<std::uint8_t>(length, 0x5A);
  }
  std::vector<std::uint8_t> last;
};

TEST(I2c, WriteReachesSlave) {
  I2cBus bus;
  EchoSlave slave;
  bus.attach(0x3C, &slave);
  const std::uint8_t payload[] = {1, 2, 3};
  const auto result = bus.write(0x3C, payload);
  EXPECT_TRUE(result.acked);
  EXPECT_EQ(slave.last, (std::vector<std::uint8_t>{1, 2, 3}));
}

TEST(I2c, MissingSlaveNacks) {
  I2cBus bus;
  const std::uint8_t payload[] = {1};
  EXPECT_FALSE(bus.write(0x10, payload).acked);
  EXPECT_FALSE(bus.read(0x10, 4).acked);
}

TEST(I2c, ReadReturnsSlaveData) {
  I2cBus bus;
  EchoSlave slave;
  bus.attach(0x3D, &slave);
  const auto result = bus.read(0x3D, 3);
  EXPECT_TRUE(result.acked);
  EXPECT_EQ(result.data, (std::vector<std::uint8_t>{0x5A, 0x5A, 0x5A}));
}

TEST(I2c, BusTimeScalesWithPayload) {
  I2cBus bus;
  EchoSlave slave;
  bus.attach(0x3C, &slave);
  std::vector<std::uint8_t> small(2), large(20);
  const auto t_small = bus.write(0x3C, small).bus_time;
  const auto t_large = bus.write(0x3C, large).bus_time;
  EXPECT_GT(t_large.value, t_small.value * 3);
  // 100 kHz standard mode: 21 bytes * 9 bits = ~1.9 ms.
  EXPECT_NEAR(t_large.value, 21 * 9 / 100000.0, 1e-6);
}

TEST(I2c, CountsTraffic) {
  I2cBus bus;
  EchoSlave slave;
  bus.attach(0x3C, &slave);
  const std::uint8_t payload[] = {1, 2};
  bus.write(0x3C, payload);
  bus.read(0x3C, 1);
  EXPECT_EQ(bus.transactions(), 2u);
  EXPECT_EQ(bus.bytes_transferred(), 3u + 2u);  // (1 addr + 2) + (1 addr + 1)
}

// --- UART ---------------------------------------------------------------------

TEST(Uart, ByteTimeMatchesBaud) {
  Uart uart;
  EXPECT_NEAR(uart.byte_time().value, 10.0 / 115200.0, 1e-12);
}

TEST(Uart, TxFifoOrderAndOverflow) {
  Uart uart;
  for (int i = 0; i < 64; ++i) EXPECT_TRUE(uart.transmit(static_cast<std::uint8_t>(i)));
  EXPECT_FALSE(uart.transmit(0xFF));  // full
  EXPECT_EQ(uart.clock_out(), 0);
  EXPECT_EQ(uart.clock_out(), 1);
}

TEST(Uart, RxOverflowCounted) {
  Uart uart;
  for (int i = 0; i < 64; ++i) EXPECT_TRUE(uart.deliver(0xAA));
  EXPECT_FALSE(uart.deliver(0xBB));
  EXPECT_EQ(uart.rx_overflows(), 1u);
  EXPECT_EQ(uart.rx_available(), 64u);
  EXPECT_EQ(uart.receive(), 0xAA);
}

// --- MCU --------------------------------------------------------------------------

TEST(Mcu, CycleAccounting) {
  sim::EventQueue queue;
  Mcu mcu({}, queue);
  mcu.charge_cycles(100);
  mcu.charge_cycles(23);
  EXPECT_EQ(mcu.cycles(), 123u);
  // 10 MIPS: 123 cycles = 12.3 us.
  EXPECT_NEAR(mcu.cycles_as_time(123).value, 12.3e-6, 1e-12);
}

TEST(Mcu, MemoryBudgets) {
  sim::EventQueue queue;
  Mcu mcu({}, queue);
  mcu.reserve_ram("table", 1000);
  EXPECT_EQ(mcu.ram_used(), 1000u);
  EXPECT_EQ(mcu.ram_free(), 1536u - 1000u);
  mcu.reserve_flash("code", 1024);
  EXPECT_EQ(mcu.flash_used(), 1024u);
}

TEST(Mcu, PeriodicTimerFiresAtPeriod) {
  sim::EventQueue queue;
  Mcu mcu({}, queue);
  int fired = 0;
  mcu.start_timer(util::Seconds{0.01}, [&] { ++fired; });
  queue.run_until(util::Seconds{0.095});
  EXPECT_EQ(fired, 9);
}

TEST(Mcu, StoppedTimerStopsFiring) {
  sim::EventQueue queue;
  Mcu mcu({}, queue);
  int fired = 0;
  const auto timer = mcu.start_timer(util::Seconds{0.01}, [&] { ++fired; });
  queue.run_until(util::Seconds{0.035});
  mcu.stop_timer(timer);
  queue.run_until(util::Seconds{1.0});
  EXPECT_EQ(fired, 3);
}

TEST(Mcu, TimerCanStopItself) {
  sim::EventQueue queue;
  Mcu mcu({}, queue);
  int fired = 0;
  std::size_t id = 0;
  id = mcu.start_timer(util::Seconds{0.01}, [&] {
    if (++fired == 2) mcu.stop_timer(id);
  });
  queue.run_until(util::Seconds{1.0});
  EXPECT_EQ(fired, 2);
}

// --- SmartIts board ---------------------------------------------------------------

TEST(SmartIts, WiresSubsystems) {
  sim::EventQueue queue;
  SmartIts board({}, queue, sim::Rng(1));
  EXPECT_GT(board.battery().total_draw_ma(), 0.0);  // base draw registered
  EXPECT_EQ(board.gpio().pin_count(), 8u);
  EXPECT_EQ(board.mcu().cycles(), 0u);
}

}  // namespace
}  // namespace distscroll::hw
