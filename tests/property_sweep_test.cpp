// Parameterized property sweeps across configuration space — broad
// invariants that must hold for EVERY sensible configuration, not just
// the defaults the other suites use.
#include <gtest/gtest.h>

#include <cmath>

#include "core/island_mapper.h"
#include "core/scroll_controller.h"
#include "input/debouncer.h"
#include "sensors/gp2d120.h"

namespace distscroll {
namespace {

// --- island mapper across (entries, range) space --------------------------------

struct MapperCase {
  std::size_t entries;
  double near_cm;
  double far_cm;
};

class MapperSweep : public ::testing::TestWithParam<MapperCase> {};

TEST_P(MapperSweep, TableInvariants) {
  const auto param = GetParam();
  core::SensorCurve curve;
  core::IslandMapper::Config config;
  config.near = util::Centimeters{param.near_cm};
  config.far = util::Centimeters{param.far_cm};
  core::IslandMapper mapper(curve, param.entries, config);

  ASSERT_EQ(mapper.entries(), param.entries);
  // Invariant 1: centres strictly ordered in distance.
  for (std::size_t i = 0; i + 1 < param.entries; ++i) {
    EXPECT_LT(mapper.centre_distance(i).value, mapper.centre_distance(i + 1).value);
  }
  // Invariant 2: islands pairwise disjoint after quantisation.
  for (std::size_t i = 0; i + 1 < param.entries; ++i) {
    EXPECT_GT(mapper.islands()[i].low, mapper.islands()[i + 1].high);
  }
  // Invariant 3: exhaustive lookup agrees with interval containment and
  // is total (never crashes, never out of range).
  for (int c = 0; c <= 1023; ++c) {
    const auto hit = mapper.lookup(util::AdcCounts{static_cast<std::uint16_t>(c)});
    if (hit) {
      ASSERT_LT(*hit, param.entries);
      const auto& island = mapper.islands()[*hit];
      EXPECT_GE(c, island.low);
      EXPECT_LE(c, island.high);
    }
  }
  // Invariant 4: every non-empty island's centre resolves to itself.
  for (std::size_t i = 0; i < param.entries; ++i) {
    const auto& island = mapper.islands()[i];
    if (island.low > island.high) continue;
    EXPECT_EQ(mapper.lookup(util::AdcCounts{island.centre}), i);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ConfigSpace, MapperSweep,
    ::testing::Values(MapperCase{1, 4, 30}, MapperCase{2, 4, 30}, MapperCase{7, 4, 30},
                      MapperCase{15, 4, 30}, MapperCase{40, 4, 30}, MapperCase{64, 4, 30},
                      MapperCase{10, 4, 12}, MapperCase{10, 8, 40}, MapperCase{10, 10, 50},
                      MapperCase{30, 5, 20}));

// --- debouncer across stable-tick settings ---------------------------------------

class DebouncerSweep : public ::testing::TestWithParam<int> {};

TEST_P(DebouncerSweep, ShorterBouncesNeverFire) {
  input::Debouncer::Config config;
  config.stable_ticks = GetParam();
  input::Debouncer debouncer(config);
  int presses = 0;
  auto count_press = [&] { ++presses; };  // Callback is non-owning: keep alive
  debouncer.on_press(count_press);
  // Any alternation faster than stable_ticks must never register.
  for (int i = 0; i < 50 * GetParam(); ++i) {
    debouncer.tick(((i / (GetParam() - 1)) % 2) ? hw::PinLevel::Low : hw::PinLevel::High);
  }
  EXPECT_EQ(presses, 0);
  // A real press (>= stable_ticks lows) registers exactly once.
  for (int i = 0; i < 3 * GetParam(); ++i) debouncer.tick(hw::PinLevel::Low);
  EXPECT_EQ(presses, 1);
}

INSTANTIATE_TEST_SUITE_P(Ticks, DebouncerSweep, ::testing::Values(2, 4, 8, 16, 32));

// --- EMA smoothing convergence across step sizes -----------------------------------

class EmaSweep : public ::testing::TestWithParam<int> {};

TEST_P(EmaSweep, ConvergesWithinBoundedSamples) {
  core::SensorCurve curve;
  core::IslandMapper mapper(curve, 10, {});
  core::ScrollController controller(
      mapper, {core::ScrollDirection::TowardUserScrollsUp, core::Smoothing::Ema});
  const std::size_t from = 0;
  const auto to = static_cast<std::size_t>(GetParam());
  for (int i = 0; i < 5; ++i) {
    (void)controller.on_sample(util::AdcCounts{mapper.islands()[from].centre});
  }
  ASSERT_EQ(controller.selection(), from);
  // alpha = 1/4 EMA: within 30 samples the filtered value is well inside
  // the target island regardless of step size.
  std::optional<std::size_t> selection;
  for (int i = 0; i < 30; ++i) {
    selection = controller.on_sample(util::AdcCounts{mapper.islands()[to].centre}).menu_index;
  }
  EXPECT_EQ(selection, to);
}

INSTANTIATE_TEST_SUITE_P(Steps, EmaSweep, ::testing::Values(1, 2, 4, 6, 9));

// --- sensor model across surfaces: the robustness envelope ---------------------------

class SurfaceSweep : public ::testing::TestWithParam<double> {};

TEST_P(SurfaceSweep, ReflectivityShiftBounded) {
  // Across the full diffuse-reflectivity range the reading shifts by at
  // most a few percent — the paper's "color does nearly not matter".
  sensors::Gp2d120Model::Config config;
  config.output_noise_volts = 0.0;
  sensors::SurfaceProfile surface;
  surface.reflectivity = GetParam();
  sensors::Gp2d120Model sensor(config, sim::Rng(1), surface);
  sensors::Gp2d120Model reference(config, sim::Rng(1), sensors::SurfaceProfile{1.0, 0.0});
  double t = 0.0;
  for (double d = 5.0; d <= 28.0; d += 4.0) {
    t += 0.05;
    const double v = sensor.output(util::Centimeters{d}, util::Seconds{t}).value;
    const double ref = reference.output(util::Centimeters{d}, util::Seconds{t}).value;
    EXPECT_LT(std::abs(v - ref) / ref, 0.04) << "d=" << d;
  }
}

INSTANTIATE_TEST_SUITE_P(Reflectivity, SurfaceSweep,
                         ::testing::Values(0.1, 0.3, 0.5, 0.7, 0.9, 1.1));

// --- scroll controller: filtered output equals mapper verdict ------------------------

TEST(ControllerProperty, RawModeMatchesStatelessLookupPlusStickiness) {
  // Property over a random count walk: in Raw mode with zero hysteresis
  // the controller's island selection is exactly "last island the raw
  // lookup hit".
  core::SensorCurve curve;
  core::IslandMapper mapper(curve, 12, {});
  core::ScrollController controller(
      mapper, {core::ScrollDirection::TowardUserScrollsUp, core::Smoothing::Raw});
  sim::Rng rng(99);
  std::optional<std::size_t> expected;
  for (int i = 0; i < 5000; ++i) {
    const auto counts = util::AdcCounts{static_cast<std::uint16_t>(rng.uniform_int(0, 1023))};
    if (const auto hit = mapper.lookup(counts)) expected = hit;
    const auto update = controller.on_sample(counts);
    ASSERT_EQ(update.menu_index, expected) << "sample " << i;
  }
}

}  // namespace
}  // namespace distscroll
