// Runtime complement to the no-alloc-markers lint rule: AllocGuard
// interposes the global allocator and DS_ASSERT_NO_ALLOC aborts the
// process (file:line) if the wrapped scope allocates. These tests pin
// the allocation-free claims the session kernel makes on its hot paths:
// Tracer::record past ring capacity, EventQueue schedule/dispatch at
// recycled depth, the device firmware sample loop, and warm pooled
// session reuse.
//
// The interposer is compiled out under sanitizer builds (they own the
// allocator), so every assertion skips when it is not linked in.
#include <gtest/gtest.h>

#include <memory>

#include "core/distscroll_device.h"
#include "menu/menu_builder.h"
#include "obs/tracer.h"
#include "sim/event_queue.h"
#include "sim/random.h"
#include "study/device_pool.h"
#include "util/alloc_guard.h"

namespace distscroll {
namespace {

#define SKIP_WITHOUT_INTERPOSER()                                      \
  do {                                                                 \
    if (!util::alloc_interposer_linked())                              \
      GTEST_SKIP() << "allocator interposer compiled out (sanitizer)"; \
  } while (0)

TEST(AllocGuard, CountsARealAllocation) {
  SKIP_WITHOUT_INTERPOSER();
  util::AllocGuard guard{__FILE__, __LINE__};
  // Direct operator-new call: a new-EXPRESSION here could legally be
  // elided at -O2 (paired allocation elision), which would make this
  // positive control — and with it the no-alloc tests — vacuous.
  void* p = ::operator new(64);
  ::operator delete(p);
  EXPECT_GE(guard.allocations(), 1u);
  EXPECT_GE(guard.deallocations(), 1u);
  EXPECT_GE(guard.bytes(), 64u);
}

TEST(AllocGuard, TracerRecordIsAllocationFree) {
  SKIP_WITHOUT_INTERPOSER();
  obs::Tracer tracer(/*capacity=*/64);
  tracer.set_time(0.25);
  DS_ASSERT_NO_ALLOC {
    // 4x capacity: exercises both the fill and the wrap/overwrite path.
    for (std::uint32_t i = 0; i < 256; ++i) {
      tracer.record(obs::EventKind::AdcRead, i, i * 2);
      tracer.record_at(0.5 + i, obs::EventKind::SensorMeasure, i, 7);
    }
  }
  EXPECT_EQ(tracer.size(), 64u);
  EXPECT_EQ(tracer.dropped(), 512u - 64u);
}

TEST(AllocGuard, EventQueueScheduleDispatchIsAllocationFreeWhenWarm) {
  SKIP_WITHOUT_INTERPOSER();
  sim::EventQueue queue;
  int fired = 0;
  // Warm-up: push the calendar to its working depth once so the heap
  // and slot table own their capacity, then drain.
  for (int i = 0; i < 32; ++i) {
    queue.schedule_after(util::Seconds{1e-3 * (i + 1)}, [&fired] { ++fired; });
  }
  queue.run_all();
  ASSERT_EQ(fired, 32);

  // Steady state: schedule/cancel/dispatch at the same depth recycles
  // slots and heap storage. Callbacks must fit std::function's small
  // buffer (a single reference capture does) or the test rightly fails.
  DS_ASSERT_NO_ALLOC {
    for (int round = 0; round < 8; ++round) {
      sim::EventQueue::Handle cancelled{};
      for (int i = 0; i < 32; ++i) {
        const auto h =
            queue.schedule_after(util::Seconds{1e-3 * (i + 1)}, [&fired] { ++fired; });
        if (i == 0) cancelled = h;
      }
      queue.cancel(cancelled);
      queue.run_all();
    }
  }
  EXPECT_EQ(fired, 32 + 8 * 31);
}

TEST(AllocGuard, DeviceSampleLoopIsAllocationFreeWhenWarm) {
  SKIP_WITHOUT_INTERPOSER();
  auto menu_root = menu::make_flat_menu(5);
  sim::EventQueue queue;
  core::DistScrollDevice device({}, *menu_root, queue, sim::Rng(99));
  // Constant distance: the cursor settles during warm-up, after which
  // the firmware loop (ADC sample -> curve -> island -> telemetry
  // frame) must not touch the heap. Display redraws are excluded by
  // construction — they only fire on cursor change.
  device.set_distance_provider([](util::Seconds) { return util::Centimeters{17.0}; });
  device.power_on();
  queue.run_until(util::Seconds{2.0});  // warm-up: settle + first frames

  const std::size_t cursor_before = device.cursor().index();
  DS_ASSERT_NO_ALLOC {
    queue.run_until(util::Seconds{4.0});
  }
  EXPECT_EQ(device.cursor().index(), cursor_before);
}

TEST(AllocGuard, PooledSessionReuseIsAllocationFreeWhenWarm) {
  SKIP_WITHOUT_INTERPOSER();
  auto menu_root = menu::make_flat_menu(5);
  study::DeviceSession session;
  core::DistScrollDevice::Config config;

  // First acquire constructs the whole prototype (cold, allocates) and
  // a short powered run gives the calendar its working depth.
  auto run_once = [&](core::DistScrollDevice& device) {
    device.set_distance_provider([](util::Seconds) { return util::Centimeters{17.0}; });
    device.power_on();
    session.queue().run_until(util::Seconds{1.0});
    device.power_off();
  };
  run_once(session.acquire(config, *menu_root, sim::Rng(7)));
  ASSERT_TRUE(session.warm());

  // Warm reuse — the reason DeviceSession exists: clearing the calendar
  // and resetting the device in place must not allocate.
  core::DistScrollDevice* recycled = nullptr;
  DS_ASSERT_NO_ALLOC {
    recycled = &session.acquire(config, *menu_root, sim::Rng(7));
  }
  ASSERT_NE(recycled, nullptr);
  run_once(*recycled);  // and the recycled device still works
  EXPECT_LT(recycled->cursor().index(), 5u);
}

}  // namespace
}  // namespace distscroll
