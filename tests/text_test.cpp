// Tests for the zone-keyboard text-entry stack (the Unigesture/TiltText
// comparison machinery).
#include <gtest/gtest.h>

#include "baselines/button_scroll.h"
#include "baselines/distance_scroll.h"
#include "text/dictionary.h"
#include "text/text_entry.h"
#include "text/zone_keyboard.h"

namespace distscroll::text {
namespace {

// --- zone keyboard -----------------------------------------------------------

TEST(ZoneKeyboard, EveryLetterHasAZone) {
  for (char c = 'a'; c <= 'z'; ++c) {
    const auto zone = ZoneKeyboard::zone_of(c);
    ASSERT_TRUE(zone.has_value()) << c;
    EXPECT_GE(*zone, 0);
    EXPECT_LT(*zone, ZoneKeyboard::kZones);
  }
  EXPECT_EQ(ZoneKeyboard::zone_of(' '), ZoneKeyboard::kSpaceZone);
}

TEST(ZoneKeyboard, RejectsNonAlphabet) {
  EXPECT_FALSE(ZoneKeyboard::zone_of('A').has_value());
  EXPECT_FALSE(ZoneKeyboard::zone_of('1').has_value());
  EXPECT_FALSE(ZoneKeyboard::zone_of('.').has_value());
}

TEST(ZoneKeyboard, ZonesPartitionTheAlphabet) {
  std::string all;
  for (int zone = 0; zone < ZoneKeyboard::kZones; ++zone) {
    for (char c : ZoneKeyboard::zone_characters(zone)) {
      EXPECT_EQ(ZoneKeyboard::zone_of(c), zone) << c;
      all += c;
    }
  }
  EXPECT_EQ(all.size(), 27u);  // a-z + space, no duplicates
  std::sort(all.begin(), all.end());
  EXPECT_EQ(std::adjacent_find(all.begin(), all.end()), all.end());
}

TEST(ZoneKeyboard, SequenceOfWord) {
  const auto sequence = ZoneKeyboard::zone_sequence("bad");
  ASSERT_TRUE(sequence.has_value());
  EXPECT_EQ(*sequence, "000");
  EXPECT_FALSE(ZoneKeyboard::zone_sequence("Bad!").has_value());
}

// --- dictionary ----------------------------------------------------------------

TEST(Dictionary, CandidatesRankedByFrequency) {
  Dictionary dictionary;
  // "bad", "cab", "abc" share the zone sequence "000".
  dictionary.add_word("bad", 10);
  dictionary.add_word("cab", 100);
  dictionary.add_word("abc", 50);
  const auto candidates = dictionary.candidates("000");
  ASSERT_EQ(candidates.size(), 3u);
  EXPECT_EQ(candidates[0].word, "cab");
  EXPECT_EQ(candidates[1].word, "abc");
  EXPECT_EQ(candidates[2].word, "bad");
  EXPECT_EQ(dictionary.rank_of("bad"), 2u);
  EXPECT_EQ(dictionary.rank_of("cab"), 0u);
}

TEST(Dictionary, RejectsUnmappableWords) {
  Dictionary dictionary;
  EXPECT_FALSE(dictionary.add_word("Ümlaut", 1));
  EXPECT_FALSE(dictionary.add_word("", 1));
  EXPECT_EQ(dictionary.size(), 0u);
}

TEST(Dictionary, CompletionsByPrefix) {
  Dictionary dictionary;
  dictionary.add_word("a", 10);    // zone 0
  dictionary.add_word("an", 5);    // zones 0,3
  dictionary.add_word("and", 50);  // zones 0,3,0
  dictionary.add_word("the", 100);
  const auto completions = dictionary.completions("0", 10);
  ASSERT_EQ(completions.size(), 3u);
  EXPECT_EQ(completions[0].word, "the" == completions[0].word ? "the" : completions[0].word);
  // "the" (zones 4,1,1) must NOT appear under prefix "0".
  for (const auto& c : completions) EXPECT_NE(c.word, "the");
  EXPECT_EQ(completions[0].word, "and");  // highest frequency among a/an/and
}

TEST(Dictionary, CommonEnglishLoads) {
  const auto dictionary = Dictionary::common_english();
  EXPECT_GT(dictionary.size(), 150u);
  // The most frequent word must be its own sequence's first guess.
  EXPECT_EQ(dictionary.rank_of("the"), 0u);
}

TEST(Dictionary, EveryCommonWordIsFindable) {
  // Property: every embedded word disambiguates within the top 5 of its
  // own zone sequence (the visible candidate list).
  const auto dictionary = Dictionary::common_english();
  for (const char* word : {"the", "and", "you", "water", "people", "world", "house"}) {
    const auto rank = dictionary.rank_of(word);
    ASSERT_TRUE(rank.has_value()) << word;
    EXPECT_LT(*rank, 5u) << word;
  }
}

// --- end-to-end sessions -----------------------------------------------------------

TEST(TextEntry, EnterWordWithButtons) {
  const auto dictionary = Dictionary::common_english();
  TextEntrySession session(dictionary);
  baselines::ButtonScroll technique;
  const auto result = session.enter_word(technique, "the", human::UserProfile::expert(),
                                         sim::Rng(1));
  EXPECT_TRUE(result.success);
  EXPECT_EQ(result.selections, 4u);  // 3 zones + 1 confirm
  EXPECT_GT(result.time_s, 0.5);
  EXPECT_EQ(result.candidate_rank, 0u);
}

TEST(TextEntry, EnterWordWithDistanceScroll) {
  const auto dictionary = Dictionary::common_english();
  TextEntrySession session(dictionary);
  baselines::DistanceScroll technique({}, sim::Rng(3));
  const auto result = session.enter_word(technique, "and", human::UserProfile::average(),
                                         sim::Rng(2));
  EXPECT_TRUE(result.success);
}

TEST(TextEntry, UnknownWordFails) {
  Dictionary dictionary;
  dictionary.add_word("the", 1);
  TextEntrySession session(dictionary);
  baselines::ButtonScroll technique;
  const auto result =
      session.enter_word(technique, "zzz", human::UserProfile::expert(), sim::Rng(1));
  EXPECT_FALSE(result.success);
}

TEST(TextEntry, PhraseSplitsWords) {
  const auto dictionary = Dictionary::common_english();
  TextEntrySession session(dictionary);
  baselines::ButtonScroll technique;
  const auto results =
      session.enter_phrase(technique, "we can go", human::UserProfile::expert(), sim::Rng(4));
  ASSERT_EQ(results.size(), 3u);
  for (const auto& r : results) EXPECT_TRUE(r.success) << r.word;
}

TEST(TextEntry, AggregateStats) {
  const auto dictionary = Dictionary::common_english();
  TextEntrySession session(dictionary);
  baselines::ButtonScroll technique;
  const auto results = session.enter_phrase(technique, "the and you we",
                                            human::UserProfile::expert(), sim::Rng(5));
  const auto stats = TextEntrySession::aggregate(results);
  EXPECT_GT(stats.words_per_minute, 1.0);
  EXPECT_LT(stats.words_per_minute, 60.0);
  EXPECT_GT(stats.keystrokes_per_char, 0.9);  // >= 1 press/char + confirm
  EXPECT_DOUBLE_EQ(stats.success_rate, 1.0);
}

TEST(TextEntry, ExpertFasterThanNovice) {
  const auto dictionary = Dictionary::common_english();
  TextEntrySession session(dictionary);
  baselines::ButtonScroll technique;
  const auto expert = session.enter_phrase(technique, "the water people",
                                           human::UserProfile::expert(), sim::Rng(6));
  const auto novice = session.enter_phrase(technique, "the water people",
                                           human::UserProfile::novice(), sim::Rng(6));
  const auto stats_e = TextEntrySession::aggregate(expert);
  const auto stats_n = TextEntrySession::aggregate(novice);
  EXPECT_GT(stats_e.words_per_minute, stats_n.words_per_minute);
}

}  // namespace
}  // namespace distscroll::text
