// CLI contract of the bench_compare perf gate and the ds_lint analyzer.
//
// Pins the exit-code protocol the scripts and ctest wiring rely on:
// 0 = gates passed, 1 = regression/finding, 64 = malformed command
// line, 77 = environment not comparable (bench_compare only; ctest
// SKIP_RETURN_CODE). The malformed-input cases are the regression a
// past PR fixed: --tolerance used to go through atof, which silently
// truncated "1,6" to 1.0 and "1.6x" to 1.6 instead of rejecting them.
// For ds_lint the same file also pins both report formats: the text
// `file:line: rule: message` shape and the --format=json document.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

namespace {

int run_bench_compare(const std::string& args) {
  const std::string cmd =
      std::string(DS_BENCH_COMPARE_BIN) + " " + args + " >/dev/null 2>/dev/null";
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return -1;
  const int status = pclose(pipe);
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

/// Optional memory/fleet fields of a synthetic report. Zeroed fields
/// are omitted, mimicking reports written before the fields existed.
struct ExtraFields {
  double peak_rss_bytes = 0.0;
  double fleet_participants = 0.0;
  double fleet_wall_s = 0.0;
  bool fleet_bit_identical = true;
  bool fleet_resume_bit_identical = true;
  double fleet_rss_growth = 0.0;
  double host_devices = 0.0;
  double host_frames_per_s = 0.0;
  double host_drop_rate = 0.0;
  bool host_bit_identical = true;
};

/// Minimal BENCH report the tool's flat-key parser accepts.
void write_report(const std::string& dir, double sequential_wall_s, bool batch_bit_identical,
                  double batched_wall_s, const ExtraFields& extra = {}) {
  std::ofstream out(dir + "/BENCH_cli_case.json");
  out << "{\n"
      << "  \"name\": \"cli_case\",\n"
      << "  \"cells\": 4,\n"
      << "  \"threads\": 1,\n"
      << "  \"hardware_threads\": 1,\n"
      << "  \"sequential_wall_s\": " << sequential_wall_s << ",\n"
      << "  \"parallel_wall_s\": " << sequential_wall_s << ",\n"
      << "  \"speedup\": 1.0,\n"
      << "  \"bit_identical\": true,\n"
      << "  \"tracing_compiled\": true,\n"
      << "  \"batch_width\": 8,\n"
      << "  \"batched_wall_s\": " << batched_wall_s << ",\n"
      << "  \"batch_speedup\": 1.0,\n"
      << "  \"batch_bit_identical\": " << (batch_bit_identical ? "true" : "false");
  if (extra.peak_rss_bytes > 0.0) {
    out << ",\n  \"peak_rss_bytes\": " << static_cast<long long>(extra.peak_rss_bytes);
  }
  if (extra.fleet_participants > 0.0) {
    out << ",\n  \"fleet_participants\": " << static_cast<long long>(extra.fleet_participants)
        << ",\n  \"fleet_wall_s\": " << extra.fleet_wall_s
        << ",\n  \"fleet_participants_per_s\": 1000.0"
        << ",\n  \"fleet_threads\": 1"
        << ",\n  \"fleet_bit_identical\": " << (extra.fleet_bit_identical ? "true" : "false")
        << ",\n  \"fleet_resume_bit_identical\": "
        << (extra.fleet_resume_bit_identical ? "true" : "false")
        << ",\n  \"fleet_rss_growth\": " << extra.fleet_rss_growth;
  }
  if (extra.host_devices > 0.0) {
    out << ",\n  \"host_devices\": " << static_cast<long long>(extra.host_devices)
        << ",\n  \"host_wall_s\": 1.0"
        << ",\n  \"host_frames_per_s\": " << extra.host_frames_per_s
        << ",\n  \"host_drop_rate\": " << extra.host_drop_rate
        << ",\n  \"host_bit_identical\": " << (extra.host_bit_identical ? "true" : "false");
  }
  out << "\n}\n";
}

std::string make_case_dirs(const std::string& tag, double baseline_s, double fresh_s,
                           bool fresh_batch_identical, double fresh_batched_s,
                           const ExtraFields& baseline_extra = {},
                           const ExtraFields& fresh_extra = {}) {
  const std::string root = testing::TempDir() + "/bench_compare_" + tag;
  const std::string baseline = root + "/baseline";
  const std::string fresh = root + "/fresh";
  std::filesystem::create_directories(baseline);
  std::filesystem::create_directories(fresh);
  write_report(baseline, baseline_s, true, baseline_s, baseline_extra);
  write_report(fresh, fresh_s, fresh_batch_identical, fresh_batched_s, fresh_extra);
  return root;
}

ExtraFields healthy_fleet() {
  ExtraFields extra;
  extra.peak_rss_bytes = 100e6;
  extra.fleet_participants = 100000;
  extra.fleet_wall_s = 10.0;
  extra.fleet_rss_growth = 1.02;
  return extra;
}

TEST(BenchCompareCli, LocaleCommaToleranceIsUsageError) {
  EXPECT_EQ(run_bench_compare(". --tolerance 1,6"), 64);
}

TEST(BenchCompareCli, TrailingGarbageToleranceIsUsageError) {
  EXPECT_EQ(run_bench_compare(". --tolerance 1.6x"), 64);
}

TEST(BenchCompareCli, NonPositiveToleranceIsUsageError) {
  EXPECT_EQ(run_bench_compare(". --tolerance -2"), 64);
  EXPECT_EQ(run_bench_compare(". --tolerance 0"), 64);
}

TEST(BenchCompareCli, MissingBaselineDirIsUsageError) {
  EXPECT_EQ(run_bench_compare("--tolerance 1.5"), 64);
}

TEST(BenchCompareCli, MatchingReportsPass) {
  const std::string root = make_case_dirs("ok", 1.0, 1.0, true, 1.0);
  EXPECT_EQ(run_bench_compare(root + "/baseline " + root + "/fresh --tolerance 1.5"), 0);
}

TEST(BenchCompareCli, SequentialRegressionFails) {
  const std::string root = make_case_dirs("seq_regress", 1.0, 2.0, true, 1.0);
  EXPECT_EQ(run_bench_compare(root + "/baseline " + root + "/fresh --tolerance 1.5"), 1);
}

TEST(BenchCompareCli, BatchedDivergenceFails) {
  const std::string root = make_case_dirs("batch_diverged", 1.0, 1.0, false, 1.0);
  EXPECT_EQ(run_bench_compare(root + "/baseline " + root + "/fresh --tolerance 1.5"), 1);
}

TEST(BenchCompareCli, BatchedRegressionFails) {
  const std::string root = make_case_dirs("batch_regress", 1.0, 1.0, true, 2.0);
  EXPECT_EQ(run_bench_compare(root + "/baseline " + root + "/fresh --tolerance 1.5"), 1);
}

// --- memory + fleet gates -------------------------------------------------

TEST(BenchCompareCli, HealthyFleetReportPasses) {
  const std::string root = make_case_dirs("fleet_ok", 1.0, 1.0, true, 1.0, healthy_fleet(),
                                          healthy_fleet());
  EXPECT_EQ(run_bench_compare(root + "/baseline " + root + "/fresh --tolerance 1.5"), 0);
}

TEST(BenchCompareCli, ReportsWithoutNewFieldsStillPass) {
  // Pre-fleet baselines lack peak_rss_bytes / fleet_* entirely; the new
  // gates must skip, not fail, on the absent fields.
  const std::string root = make_case_dirs("fleet_absent", 1.0, 1.0, true, 1.0);
  EXPECT_EQ(run_bench_compare(root + "/baseline " + root + "/fresh --tolerance 1.5"), 0);
}

TEST(BenchCompareCli, FleetThreadDivergenceFails) {
  auto fresh = healthy_fleet();
  fresh.fleet_bit_identical = false;
  const std::string root =
      make_case_dirs("fleet_diverged", 1.0, 1.0, true, 1.0, healthy_fleet(), fresh);
  EXPECT_EQ(run_bench_compare(root + "/baseline " + root + "/fresh --tolerance 1.5"), 1);
}

TEST(BenchCompareCli, FleetResumeDivergenceFails) {
  auto fresh = healthy_fleet();
  fresh.fleet_resume_bit_identical = false;
  const std::string root =
      make_case_dirs("fleet_resume", 1.0, 1.0, true, 1.0, healthy_fleet(), fresh);
  EXPECT_EQ(run_bench_compare(root + "/baseline " + root + "/fresh --tolerance 1.5"), 1);
}

TEST(BenchCompareCli, FleetWallRegressionFails) {
  auto fresh = healthy_fleet();
  fresh.fleet_wall_s = 20.0;  // baseline 10.0 x 1.5 = 15.0 < 20.0
  const std::string root =
      make_case_dirs("fleet_wall", 1.0, 1.0, true, 1.0, healthy_fleet(), fresh);
  EXPECT_EQ(run_bench_compare(root + "/baseline " + root + "/fresh --tolerance 1.5"), 1);
}

TEST(BenchCompareCli, FleetRssGrowthBeyondFlatnessFails) {
  auto fresh = healthy_fleet();
  fresh.fleet_rss_growth = 1.4;  // > the fixed 1.10 flatness limit
  const std::string root =
      make_case_dirs("fleet_growth", 1.0, 1.0, true, 1.0, healthy_fleet(), fresh);
  EXPECT_EQ(run_bench_compare(root + "/baseline " + root + "/fresh --tolerance 1.5"), 1);
}

TEST(BenchCompareCli, PeakRssRegressionFails) {
  auto fresh = healthy_fleet();
  fresh.peak_rss_bytes = 200e6;  // baseline 100e6 x 1.5 = 150e6 < 200e6
  const std::string root =
      make_case_dirs("rss_regress", 1.0, 1.0, true, 1.0, healthy_fleet(), fresh);
  EXPECT_EQ(run_bench_compare(root + "/baseline " + root + "/fresh --tolerance 1.5"), 1);
}

// --- host ingest gates ----------------------------------------------------

ExtraFields healthy_host() {
  ExtraFields extra;
  extra.host_devices = 2000;
  extra.host_frames_per_s = 500000.0;
  extra.host_drop_rate = 0.20;
  return extra;
}

TEST(BenchCompareCli, HealthyHostReportPasses) {
  const std::string root =
      make_case_dirs("host_ok", 1.0, 1.0, true, 1.0, healthy_host(), healthy_host());
  EXPECT_EQ(run_bench_compare(root + "/baseline " + root + "/fresh --tolerance 1.5"), 0);
}

TEST(BenchCompareCli, HostThreadDivergenceFails) {
  auto fresh = healthy_host();
  fresh.host_bit_identical = false;
  const std::string root =
      make_case_dirs("host_diverged", 1.0, 1.0, true, 1.0, healthy_host(), fresh);
  EXPECT_EQ(run_bench_compare(root + "/baseline " + root + "/fresh --tolerance 1.5"), 1);
}

TEST(BenchCompareCli, HostThroughputRegressionFails) {
  // Throughput gates lower-is-worse: baseline 500k / 1.5 = 333k > 300k.
  auto fresh = healthy_host();
  fresh.host_frames_per_s = 300000.0;
  const std::string root =
      make_case_dirs("host_slow", 1.0, 1.0, true, 1.0, healthy_host(), fresh);
  EXPECT_EQ(run_bench_compare(root + "/baseline " + root + "/fresh --tolerance 1.5"), 1);
}

TEST(BenchCompareCli, HostDropRateRegressionFails) {
  // Drop rate gates higher-is-worse: baseline 0.20 x 1.5 = 0.30 < 0.35.
  auto fresh = healthy_host();
  fresh.host_drop_rate = 0.35;
  const std::string root =
      make_case_dirs("host_drops", 1.0, 1.0, true, 1.0, healthy_host(), fresh);
  EXPECT_EQ(run_bench_compare(root + "/baseline " + root + "/fresh --tolerance 1.5"), 1);
}

TEST(BenchCompareCli, HostFieldsAbsentFromBaselineSkipTheGates) {
  // A fresh run that grew the host block vs a baseline that predates it:
  // only the bit-identity hard gate applies; throughput/drop are skipped.
  auto fresh = healthy_host();
  fresh.host_frames_per_s = 1.0;  // would fail the floor if gated
  const std::string root = make_case_dirs("host_absent", 1.0, 1.0, true, 1.0, {}, fresh);
  EXPECT_EQ(run_bench_compare(root + "/baseline " + root + "/fresh --tolerance 1.5"), 0);
}

// --- ds_lint exit protocol and report formats -----------------------------

struct CliRun {
  std::string out;  // stdout only; stderr (the timing summary) is dropped
  int exit_code = -1;
};

CliRun run_lint_cli(const std::string& args) {
  const std::string cmd = std::string(DS_LINT_BIN) + " " + args + " 2>/dev/null";
  CliRun result;
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return result;
  char buf[1024];
  while (std::fgets(buf, sizeof(buf), pipe) != nullptr) result.out += buf;
  const int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

TEST(DsLintCli, CleanTreeExitsZeroWithEmptyOutput) {
  // The allowlisted fixture subtree is the canonical clean input.
  const CliRun run = run_lint_cli(std::string("--root ") + DS_LINT_FIXTURE_DIR + " " +
                                  DS_LINT_FIXTURE_DIR + "/src/obs");
  EXPECT_EQ(run.exit_code, 0);
  EXPECT_TRUE(run.out.empty()) << run.out;
}

TEST(DsLintCli, FindingsExitOneInTextFormat) {
  const CliRun run = run_lint_cli(std::string("--root ") + DS_LINT_FIXTURE_DIR);
  EXPECT_EQ(run.exit_code, 1);
  // Text format: `file:line: rule: message` plus indented `via` chains.
  EXPECT_NE(run.out.find(": no-alloc-markers: "), std::string::npos);
  EXPECT_NE(run.out.find("    via "), std::string::npos);
}

TEST(DsLintCli, UnknownFlagIsUsageError) {
  EXPECT_EQ(run_lint_cli("--no-such-flag").exit_code, 64);
}

TEST(DsLintCli, UnknownRuleIsUsageError) {
  EXPECT_EQ(run_lint_cli(std::string("--root ") + DS_LINT_FIXTURE_DIR +
                         " --rule no-such-rule")
                .exit_code,
            64);
}

TEST(DsLintCli, HelpExitsZero) {
  const CliRun run = run_lint_cli("--help");
  EXPECT_EQ(run.exit_code, 0);
  EXPECT_NE(run.out.find("usage"), std::string::npos);
}

TEST(DsLintCli, JsonFormatIsWellFormed) {
  const CliRun run = run_lint_cli(std::string("--root ") + DS_LINT_FIXTURE_DIR +
                                  " --format=json");
  EXPECT_EQ(run.exit_code, 1) << "findings must still drive the exit code";
  // Shape pins (no JSON parser in-tree): top-level keys, one finding
  // object per manifest entry, and the reachability chain array.
  EXPECT_EQ(run.out.find("{\n"), 0u);
  EXPECT_NE(run.out.find("\"root\": "), std::string::npos);
  EXPECT_NE(run.out.find("\"findings\": ["), std::string::npos);
  EXPECT_NE(run.out.find("\"rule\": \"no-alloc-markers\""), std::string::npos);
  EXPECT_NE(run.out.find("\"chain\": [\""), std::string::npos);
  // Balanced braces/brackets — cheap structural sanity for consumers.
  long braces = 0;
  long brackets = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < run.out.size(); ++i) {
    const char c = run.out[i];
    if (c == '"' && (i == 0 || run.out[i - 1] != '\\')) in_string = !in_string;
    if (in_string) continue;
    braces += c == '{' ? 1 : c == '}' ? -1 : 0;
    brackets += c == '[' ? 1 : c == ']' ? -1 : 0;
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_FALSE(in_string);
}

TEST(DsLintCli, JsonFormatOnCleanInputHasEmptyFindings) {
  const CliRun run = run_lint_cli(std::string("--root ") + DS_LINT_FIXTURE_DIR + " " +
                                  DS_LINT_FIXTURE_DIR + "/src/obs --format=json");
  EXPECT_EQ(run.exit_code, 0);
  EXPECT_NE(run.out.find("\"findings\": []"), std::string::npos);
}

}  // namespace
