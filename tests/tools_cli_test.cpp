// CLI contract of the bench_compare perf gate.
//
// Pins the exit-code protocol the scripts and ctest wiring rely on:
// 0 = gates passed, 1 = regression, 64 = malformed command line,
// 77 = environment not comparable (ctest SKIP_RETURN_CODE). The
// malformed-input cases are the regression this PR fixed: --tolerance
// used to go through atof, which silently truncated "1,6" to 1.0 and
// "1.6x" to 1.6 instead of rejecting them.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

namespace {

int run_bench_compare(const std::string& args) {
  const std::string cmd =
      std::string(DS_BENCH_COMPARE_BIN) + " " + args + " >/dev/null 2>/dev/null";
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return -1;
  const int status = pclose(pipe);
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

/// Minimal BENCH report the tool's flat-key parser accepts.
void write_report(const std::string& dir, double sequential_wall_s, bool batch_bit_identical,
                  double batched_wall_s) {
  std::ofstream out(dir + "/BENCH_cli_case.json");
  out << "{\n"
      << "  \"name\": \"cli_case\",\n"
      << "  \"cells\": 4,\n"
      << "  \"threads\": 1,\n"
      << "  \"hardware_threads\": 1,\n"
      << "  \"sequential_wall_s\": " << sequential_wall_s << ",\n"
      << "  \"parallel_wall_s\": " << sequential_wall_s << ",\n"
      << "  \"speedup\": 1.0,\n"
      << "  \"bit_identical\": true,\n"
      << "  \"tracing_compiled\": true,\n"
      << "  \"batch_width\": 8,\n"
      << "  \"batched_wall_s\": " << batched_wall_s << ",\n"
      << "  \"batch_speedup\": 1.0,\n"
      << "  \"batch_bit_identical\": " << (batch_bit_identical ? "true" : "false") << "\n"
      << "}\n";
}

std::string make_case_dirs(const std::string& tag, double baseline_s, double fresh_s,
                           bool fresh_batch_identical, double fresh_batched_s) {
  const std::string root = testing::TempDir() + "/bench_compare_" + tag;
  const std::string baseline = root + "/baseline";
  const std::string fresh = root + "/fresh";
  std::filesystem::create_directories(baseline);
  std::filesystem::create_directories(fresh);
  write_report(baseline, baseline_s, true, baseline_s);
  write_report(fresh, fresh_s, fresh_batch_identical, fresh_batched_s);
  return root;
}

TEST(BenchCompareCli, LocaleCommaToleranceIsUsageError) {
  EXPECT_EQ(run_bench_compare(". --tolerance 1,6"), 64);
}

TEST(BenchCompareCli, TrailingGarbageToleranceIsUsageError) {
  EXPECT_EQ(run_bench_compare(". --tolerance 1.6x"), 64);
}

TEST(BenchCompareCli, NonPositiveToleranceIsUsageError) {
  EXPECT_EQ(run_bench_compare(". --tolerance -2"), 64);
  EXPECT_EQ(run_bench_compare(". --tolerance 0"), 64);
}

TEST(BenchCompareCli, MissingBaselineDirIsUsageError) {
  EXPECT_EQ(run_bench_compare("--tolerance 1.5"), 64);
}

TEST(BenchCompareCli, MatchingReportsPass) {
  const std::string root = make_case_dirs("ok", 1.0, 1.0, true, 1.0);
  EXPECT_EQ(run_bench_compare(root + "/baseline " + root + "/fresh --tolerance 1.5"), 0);
}

TEST(BenchCompareCli, SequentialRegressionFails) {
  const std::string root = make_case_dirs("seq_regress", 1.0, 2.0, true, 1.0);
  EXPECT_EQ(run_bench_compare(root + "/baseline " + root + "/fresh --tolerance 1.5"), 1);
}

TEST(BenchCompareCli, BatchedDivergenceFails) {
  const std::string root = make_case_dirs("batch_diverged", 1.0, 1.0, false, 1.0);
  EXPECT_EQ(run_bench_compare(root + "/baseline " + root + "/fresh --tolerance 1.5"), 1);
}

TEST(BenchCompareCli, BatchedRegressionFails) {
  const std::string root = make_case_dirs("batch_regress", 1.0, 1.0, true, 2.0);
  EXPECT_EQ(run_bench_compare(root + "/baseline " + root + "/fresh --tolerance 1.5"), 1);
}

}  // namespace
