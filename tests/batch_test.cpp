// Batched == scalar bit-identity for the SoA session kernel.
//
// The contract under test (DESIGN.md §11): for every DistScroll
// configuration the benches sweep, a cell run through
// BatchTrialRunner/BatchSessionKernel lanes produces the EXACT
// TrialRecord bytes of the scalar reference
// (DistanceScroll + run_trials), at any thread count and any batch
// width — including the CSV bytes derived from them. Also pins the
// satellite pieces: the scalar-fallback group body, the batched
// debounce FSM, the no-allocation claim over the kernel's hot block,
// and the glove-sensitivity constant the batched trial driver inlines.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "baselines/distance_scroll.h"
#include "human/user_profile.h"
#include "hw/gpio.h"
#include "input/debouncer.h"
#include "sim/random.h"
#include "study/batch_kernel.h"
#include "study/batch_trials.h"
#include "study/metrics.h"
#include "study/sweep_runner.h"
#include "study/task.h"
#include "study/trial.h"
#include "util/alloc_guard.h"
#include "util/csv.h"

namespace distscroll::study {
namespace {

constexpr std::size_t kCells = 6;
constexpr std::size_t kTrialsPerCell = 6;
constexpr std::size_t kBatchWidth = 3;  // uneven split: last group is smaller

/// One swept configuration, mirroring what the seven exp_* benches
/// actually drive through DistScroll.
struct SweepCase {
  const char* name;
  baselines::DistanceScroll::Config config;
  human::Glove glove = human::Glove::None;
  std::size_t menu = 10;
};

std::vector<SweepCase> sweep_suite() {
  std::vector<SweepCase> cases;
  // exp_scroll_comparison / exp_menu axes: menu size x glove.
  for (const std::size_t menu : {std::size_t{5}, std::size_t{10}, std::size_t{20},
                                 std::size_t{40}}) {
    cases.push_back({"menu", {}, human::Glove::None, menu});
  }
  cases.push_back({"thick-glove", {}, human::Glove::Thick, 10});
  // exp_range_sweep: the six calibrated [near, far] ranges.
  const double ranges[][2] = {{4.0, 12.0}, {4.0, 20.0}, {4.0, 30.0},
                              {4.0, 40.0}, {8.0, 30.0}, {10.0, 50.0}};
  for (const auto& range : ranges) {
    SweepCase c{"range", {}, human::Glove::None, 10};
    c.config.islands.near = util::Centimeters{range[0]};
    c.config.islands.far = util::Centimeters{range[1]};
    cases.push_back(c);
  }
  // Smoothing ablation (exp_scroll_comparison's second sweep).
  for (const auto smoothing : {core::Smoothing::Median3, core::Smoothing::Ema}) {
    SweepCase c{"smoothing", {}, human::Glove::None, 10};
    c.config.scroll.smoothing = smoothing;
    cases.push_back(c);
  }
  // Direction flip, hysteresis band, touching islands.
  {
    SweepCase c{"direction-up", {}, human::Glove::None, 10};
    c.config.scroll.direction = core::ScrollDirection::TowardUserScrollsUp;
    cases.push_back(c);
  }
  {
    SweepCase c{"hysteresis", {}, human::Glove::None, 10};
    c.config.islands.hysteresis_counts = 4;
    cases.push_back(c);
  }
  {
    SweepCase c{"full-coverage", {}, human::Glove::None, 10};
    c.config.islands.coverage = 1.0;
    cases.push_back(c);
  }
  return cases;
}

/// Cell result carrying the full per-trial record bytes.
struct CellOut {
  std::vector<TrialRecord> records;

  friend bool operator==(const CellOut&, const CellOut&) = default;
};

/// The scalar reference cell body — the exact shape every bench runs.
CellOut scalar_cell(const SweepCase& c, std::size_t index, sim::Rng rng) {
  baselines::DistanceScroll technique(c.config, rng.fork(1));
  const auto profile = human::UserProfile::average()
                           .with_expertise(0.25 + 0.1 * static_cast<double>(index))
                           .with_glove(c.glove);
  sim::Rng task_rng = rng.fork(2);
  const auto tasks = random_tasks(task_rng, c.menu, kTrialsPerCell);
  CellOut out;
  out.records = run_trials(technique, tasks, profile, rng.fork(3));
  return out;
}

/// The batched group body: same fork decomposition, lanes instead of a
/// technique object.
void batched_group(const SweepCase& c, std::size_t first, std::size_t n,
                   std::span<CellOut> out, SweepRunner& runner) {
  auto& batch = BatchTrialRunner::local();
  batch.begin_group(n);
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t index = first + k;
    sim::Rng rng = runner.cell_rng(index);
    const auto profile = human::UserProfile::average()
                             .with_expertise(0.25 + 0.1 * static_cast<double>(index))
                             .with_glove(c.glove);
    sim::Rng task_rng = rng.fork(2);
    const auto tasks = random_tasks(task_rng, c.menu, kTrialsPerCell);
    batch.init_cell(k, c.config, rng.fork(1), tasks, profile, rng.fork(3));
  }
  batch.run();
  for (std::size_t k = 0; k < n; ++k) {
    const auto records = batch.records(k);
    out[k].records.assign(records.begin(), records.end());
  }
}

std::vector<CellOut> run_scalar(const SweepCase& c, std::size_t threads, std::uint64_t seed) {
  SweepRunner runner({threads, 1, seed});
  return runner.run<CellOut>(kCells, [&](std::size_t index, sim::Rng rng) {
    return scalar_cell(c, index, std::move(rng));
  });
}

std::vector<CellOut> run_batched(const SweepCase& c, std::size_t threads, std::uint64_t seed) {
  SweepRunner runner({threads, 1, seed});
  return runner.run_grouped<CellOut>(
      kCells, kBatchWidth,
      [&](std::size_t first, std::size_t n, std::span<CellOut> out, SweepRunner& r) {
        batched_group(c, first, n, out, r);
      });
}

TEST(BatchKernel, BitIdenticalToScalarAcrossSweepSuiteSingleThread) {
  for (const auto& c : sweep_suite()) {
    const auto expected = run_scalar(c, 1, 0xBA7C4);
    const auto got = run_batched(c, 1, 0xBA7C4);
    ASSERT_EQ(got.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_TRUE(got[i] == expected[i])
          << c.name << " (menu " << c.menu << "): cell " << i << " diverged";
    }
  }
}

TEST(BatchKernel, BitIdenticalToScalarAcrossSweepSuiteEightThreads) {
  for (const auto& c : sweep_suite()) {
    const auto expected = run_scalar(c, 1, 0xBA7C4);
    const auto got = run_batched(c, 8, 0xBA7C4);
    ASSERT_EQ(got.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_TRUE(got[i] == expected[i])
          << c.name << " (menu " << c.menu << "): cell " << i << " diverged at 8 threads";
    }
  }
}

/// The CSV a bench would emit from the batched records must be
/// byte-identical to the scalar one — aggregation and formatting see
/// the same bits, so the files compare equal byte for byte.
TEST(BatchKernel, CsvBytesUnchangedByBatchedMode) {
  const SweepCase c{"csv", {}, human::Glove::None, 10};
  const auto scalar = run_scalar(c, 1, 0xC511);
  const auto batched = run_batched(c, 1, 0xC511);

  const auto write_csv = [](const std::string& path, const std::vector<CellOut>& cells) {
    util::CsvWriter csv(path, {"cell", "mean_time_s", "success_rate", "errors_per_trial"});
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const auto agg = aggregate(cells[i].records);
      csv.row({static_cast<double>(i), agg.mean_time_s, agg.success_rate, agg.error_rate});
    }
  };
  const std::string scalar_path = testing::TempDir() + "/batch_scalar.csv";
  const std::string batched_path = testing::TempDir() + "/batch_batched.csv";
  write_csv(scalar_path, scalar);
  write_csv(batched_path, batched);

  const auto slurp = [](const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
  };
  const std::string scalar_bytes = slurp(scalar_path);
  ASSERT_FALSE(scalar_bytes.empty());
  EXPECT_EQ(slurp(batched_path), scalar_bytes);
}

/// run_grouped with a loop-the-scalar-body group is exactly run() — the
/// fallback every bench without a kernel-batched body rides.
TEST(SweepRunner, GroupedScalarFallbackEqualsRun) {
  const auto body = [](std::size_t index, sim::Rng rng) {
    return static_cast<double>(index) + rng.uniform01();
  };
  for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    SweepRunner plain({1, 1, 77});
    const auto expected = plain.run<double>(10, body);
    SweepRunner grouped({threads, 1, 77});
    const auto got = grouped.run_grouped<double>(
        10, 4, [&](std::size_t first, std::size_t n, std::span<double> out, SweepRunner& r) {
          for (std::size_t k = 0; k < n; ++k) out[k] = body(first + k, r.cell_rng(first + k));
        });
    EXPECT_EQ(got, expected) << "threads " << threads;
  }
}

/// The batched debounce FSM advances N channels exactly as N scalar
/// Debouncer instances fed the same streams, edges included.
TEST(BatchDebouncer, MatchesScalarDebouncers) {
  constexpr std::size_t kChannels = 5;
  const input::Debouncer::Config config{};
  std::vector<input::Debouncer> scalar(kChannels, input::Debouncer(config));
  BatchDebouncer batch(kChannels, config);
  ASSERT_EQ(batch.channels(), kChannels);

  sim::Rng rng(0xDEB);
  std::vector<hw::PinLevel> raw(kChannels);
  std::vector<std::int8_t> edges(kChannels);
  std::vector<bool> was_pressed(kChannels, false);
  int total_edges = 0;
  for (int t = 0; t < 4000; ++t) {
    for (std::size_t c = 0; c < kChannels; ++c) {
      // Biased toward holding a level so debounced edges actually fire.
      raw[c] = rng.bernoulli(0.15) ? (raw[c] == hw::PinLevel::Low ? hw::PinLevel::High
                                                                  : hw::PinLevel::Low)
                                   : raw[c];
    }
    batch.tick(raw, edges);
    for (std::size_t c = 0; c < kChannels; ++c) {
      scalar[c].tick(raw[c]);
      ASSERT_EQ(batch.pressed(c), scalar[c].pressed()) << "tick " << t << " channel " << c;
      const std::int8_t scalar_edge =
          scalar[c].pressed() == was_pressed[c] ? 0 : (scalar[c].pressed() ? 1 : -1);
      ASSERT_EQ(edges[c], scalar_edge) << "tick " << t << " channel " << c;
      was_pressed[c] = scalar[c].pressed();
      total_edges += edges[c] != 0;
    }
  }
  EXPECT_GT(total_edges, 0) << "stimulus never produced a debounced edge";
}

/// The kernel's hot block is allocation-free once its scratch is warm —
/// the dynamic half of the DS_HOT_BEGIN/END markers around it.
TEST(BatchKernel, RunBlockAllocationFreeWhenWarm) {
  if (!util::alloc_interposer_linked()) {
    GTEST_SKIP() << "alloc interposer not linked (sanitizer build)";
  }
  BatchSessionKernel kernel;
  kernel.begin_group(2);
  kernel.init_lane(0, {}, sim::Rng(1));
  kernel.init_lane(1, {}, sim::Rng(2));

  std::vector<double> times(600), us(600);
  std::vector<std::uint32_t> cursors(times.size());
  for (std::size_t i = 0; i < times.size(); ++i) {
    times[i] = 0.004 * static_cast<double>(i);
    us[i] = 8.0 + 0.02 * static_cast<double>(i);
  }
  for (std::size_t lane = 0; lane < 2; ++lane) {
    kernel.reset_lane(lane, 10, 0);
    kernel.run_block(lane, times, us, cursors);  // warm the scratch
  }
  for (std::size_t lane = 0; lane < 2; ++lane) {
    kernel.reset_lane(lane, 10, 0);
    DS_ASSERT_NO_ALLOC {
      kernel.run_block(lane, times, us, cursors);
    }
  }
  SUCCEED();
}

/// The batched trial driver inlines DistScroll's glove sensitivity (no
/// technique object to ask); pin it to the virtual call's answer.
TEST(BatchKernel, GloveSensitivityPinnedToDistanceScroll) {
  const baselines::DistanceScroll technique({}, sim::Rng(0));
  EXPECT_EQ(technique.glove_sensitivity(), BatchSessionKernel::kGloveSensitivity);
}

/// Interface mirrors: spec / target_u / target_width_u answer exactly
/// as the scalar technique for every swept config.
TEST(BatchKernel, InterfaceMirrorsMatchScalarTechnique) {
  for (const auto& c : sweep_suite()) {
    baselines::DistanceScroll technique(c.config, sim::Rng(5));
    technique.reset(c.menu, 0);
    BatchSessionKernel kernel;
    kernel.begin_group(1);
    kernel.init_lane(0, c.config, sim::Rng(5));
    kernel.reset_lane(0, c.menu, 0);

    const auto scalar_spec = technique.spec();
    const auto batch_spec = kernel.spec(0);
    EXPECT_EQ(batch_spec.style, scalar_spec.style);
    EXPECT_EQ(batch_spec.u_min, scalar_spec.u_min);
    EXPECT_EQ(batch_spec.u_max, scalar_spec.u_max);
    EXPECT_EQ(batch_spec.u_neutral, scalar_spec.u_neutral);
    EXPECT_EQ(kernel.level_size(0), technique.level_size());
    EXPECT_EQ(kernel.cursor(0), technique.cursor());
    for (std::size_t target = 0; target <= c.menu; ++target) {
      EXPECT_EQ(kernel.target_u(0, target), technique.target_u(target)) << c.name;
      EXPECT_EQ(kernel.target_width_u(0, target), technique.target_width_u(target)) << c.name;
    }
  }
}

}  // namespace
}  // namespace distscroll::study
