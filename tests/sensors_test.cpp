// Unit + property tests for the sensor models: every GP2D120 behaviour
// the paper relies on (Section 4.2) is pinned here.
#include <gtest/gtest.h>

#include <cmath>

#include "sensors/adxl311.h"
#include "sensors/gp2d120.h"

namespace distscroll::sensors {
namespace {

Gp2d120Model::Config quiet_config() {
  Gp2d120Model::Config config;
  config.output_noise_volts = 0.0;
  return config;
}

// --- GP2D120: transfer curve shape ------------------------------------------

TEST(Gp2d120, MonotoneDecreasingBeyondPeak) {
  Gp2d120Model sensor(quiet_config(), sim::Rng(1));
  double prev = 1e9;
  for (double d = 3.5; d <= 30.0; d += 0.5) {
    const double v = sensor.ideal_output(util::Centimeters{d}).value;
    EXPECT_LT(v, prev) << "not monotone at " << d;
    prev = v;
  }
}

TEST(Gp2d120, NonMonotonicBelowPeak) {
  // "If the user moves the device too close, the values decline again."
  Gp2d120Model sensor(quiet_config(), sim::Rng(1));
  const double at_peak = sensor.ideal_output(util::Centimeters{3.2}).value;
  const double closer = sensor.ideal_output(util::Centimeters{1.5}).value;
  const double touching = sensor.ideal_output(util::Centimeters{0.0}).value;
  EXPECT_LT(closer, at_peak);
  EXPECT_LT(touching, closer);
}

TEST(Gp2d120, NearBranchSteeperThanFarBranch) {
  // "the much faster declining sensor values between 0 and 4 cms" —
  // the basis of expert fast scrolling.
  Gp2d120Model sensor(quiet_config(), sim::Rng(1));
  const double near_slope =
      std::abs(sensor.ideal_output(util::Centimeters{2.0}).value -
               sensor.ideal_output(util::Centimeters{3.0}).value);  // per cm
  const double far_slope =
      std::abs(sensor.ideal_output(util::Centimeters{20.0}).value -
               sensor.ideal_output(util::Centimeters{21.0}).value);
  EXPECT_GT(near_slope, 5.0 * far_slope);
}

TEST(Gp2d120, OutOfRangeFloorsToMinimum) {
  Gp2d120Model sensor(quiet_config(), sim::Rng(1));
  const auto& config = sensor.config();
  EXPECT_DOUBLE_EQ(sensor.ideal_output(util::Centimeters{35.0}).value, config.min_output_volts);
  EXPECT_DOUBLE_EQ(sensor.ideal_output(util::Centimeters{100.0}).value, config.min_output_volts);
}

TEST(Gp2d120, PaperRangeValuesPlausible) {
  // Datasheet sanity: ~2.25 V at 4 cm, ~0.9..1.1 V at 10 cm, ~0.4 V at 30 cm.
  Gp2d120Model sensor(quiet_config(), sim::Rng(1));
  EXPECT_NEAR(sensor.ideal_output(util::Centimeters{4.0}).value, 2.26, 0.1);
  EXPECT_NEAR(sensor.ideal_output(util::Centimeters{10.0}).value, 0.98, 0.15);
  EXPECT_NEAR(sensor.ideal_output(util::Centimeters{30.0}).value, 0.35, 0.1);
}

// --- GP2D120: ambiguity property ----------------------------------------------

TEST(Gp2d120, NearFarAmbiguityExists) {
  // Below ~4 cm the output folds back into the normal range: the value
  // at 2 cm matches some distance beyond the peak. The firmware cannot
  // tell them apart — the paper tolerates this.
  Gp2d120Model sensor(quiet_config(), sim::Rng(1));
  const double v_near = sensor.ideal_output(util::Centimeters{2.0}).value;
  bool found_alias = false;
  for (double d = 3.2; d < 31.0; d += 0.05) {
    if (std::abs(sensor.ideal_output(util::Centimeters{d}).value - v_near) < 0.02) {
      found_alias = true;
      break;
    }
  }
  EXPECT_TRUE(found_alias);
}

// --- GP2D120: sampling behaviour -------------------------------------------------

TEST(Gp2d120, SampleAndHoldAtMeasurementPeriod) {
  Gp2d120Model sensor(quiet_config(), sim::Rng(1));
  double moving = 10.0;
  // First read establishes the held value.
  const double v0 = sensor.output(util::Centimeters{moving}, util::Seconds{0.0}).value;
  // The target moves, but within the same 38 ms window the output holds.
  moving = 20.0;
  const double v1 = sensor.output(util::Centimeters{moving}, util::Seconds{0.010}).value;
  EXPECT_DOUBLE_EQ(v0, v1);
  // After the period elapses the new distance shows up.
  const double v2 = sensor.output(util::Centimeters{moving}, util::Seconds{0.050}).value;
  EXPECT_LT(v2, v0);
}

TEST(Gp2d120, NoiseIsBounded) {
  Gp2d120Model sensor({}, sim::Rng(7));
  double t = 0.0;
  for (int i = 0; i < 200; ++i) {
    t += 0.04;
    const double v = sensor.output(util::Centimeters{15.0}, util::Seconds{t}).value;
    EXPECT_NEAR(v, 10.4 / 15.6, 0.08);
  }
}

// --- GP2D120: surface dependence (the paper's key robustness claim) --------------

TEST(Gp2d120, NearlyColorIndependent) {
  // "the color (the reflectivity) of the object ... does nearly not
  // matter": white vs dark fleece differ by only a few percent.
  Gp2d120Model white(quiet_config(), sim::Rng(1), SurfaceProfile::white_shirt());
  Gp2d120Model dark(quiet_config(), sim::Rng(1), SurfaceProfile::dark_fleece());
  double t = 0.0;
  double max_rel = 0.0;
  for (double d = 5.0; d <= 28.0; d += 3.0) {
    t += 0.05;
    const double vw = white.output(util::Centimeters{d}, util::Seconds{t}).value;
    const double vd = dark.output(util::Centimeters{d}, util::Seconds{t}).value;
    max_rel = std::max(max_rel, std::abs(vw - vd) / vw);
  }
  EXPECT_LT(max_rel, 0.05);
}

TEST(Gp2d120, ReflectiveBoundariesGlitch) {
  // "Potentially problematic could be reflective surfaces with clear
  // boundaries" — glitches read as out-of-range.
  Gp2d120Model::Config config = quiet_config();
  Gp2d120Model vest(config, sim::Rng(3), SurfaceProfile::reflective_vest());
  int glitches = 0;
  double t = 0.0;
  for (int i = 0; i < 500; ++i) {
    t += 0.04;
    const double v = vest.output(util::Centimeters{15.0}, util::Seconds{t}).value;
    if (v <= config.min_output_volts + 1e-9) ++glitches;
  }
  // ~12% glitch probability configured.
  EXPECT_GT(glitches, 20);
  EXPECT_LT(glitches, 150);
}

TEST(Gp2d120, OrdinaryClothingNeverGlitches) {
  Gp2d120Model::Config config = quiet_config();
  Gp2d120Model shirt(config, sim::Rng(3), SurfaceProfile::white_shirt());
  double t = 0.0;
  for (int i = 0; i < 500; ++i) {
    t += 0.04;
    const double v = shirt.output(util::Centimeters{15.0}, util::Seconds{t}).value;
    EXPECT_GT(v, config.min_output_volts + 0.1);
  }
}

TEST(Gp2d120, AnalogSourceWrapperTracksProvider) {
  Gp2d120Model sensor(quiet_config(), sim::Rng(1));
  double distance = 8.0;
  auto source = sensor.as_analog_source(
      [&](util::Seconds) { return util::Centimeters{distance}; });
  const double v8 = source(util::Seconds{0.0}).value;
  distance = 25.0;
  const double v25 = source(util::Seconds{1.0}).value;
  EXPECT_GT(v8, v25);
}

// --- parameterized sweep: quantised monotonicity over the usable range ---------

class Gp2d120MonotoneSweep : public ::testing::TestWithParam<double> {};

TEST_P(Gp2d120MonotoneSweep, StrictlyDecreasingStep) {
  const double d = GetParam();
  Gp2d120Model sensor(quiet_config(), sim::Rng(1));
  const double v0 = sensor.ideal_output(util::Centimeters{d}).value;
  const double v1 = sensor.ideal_output(util::Centimeters{d + 1.0}).value;
  EXPECT_GT(v0, v1);
  // The per-cm step must exceed 1 ADC LSB (5 V / 1023) so neighbouring
  // centimetres stay distinguishable — the premise of island mapping.
  EXPECT_GT(v0 - v1, 5.0 / 1023.0);
}

INSTANTIATE_TEST_SUITE_P(UsableRange, Gp2d120MonotoneSweep,
                         ::testing::Values(4.0, 6.0, 8.0, 10.0, 12.0, 15.0, 18.0, 21.0, 24.0,
                                           27.0, 29.0));

// --- ADXL311 -------------------------------------------------------------------

TEST(Adxl311, ZeroTiltReadsMidSupply) {
  Adxl311Model::Config config;
  config.noise_volts = 0.0;
  Adxl311Model accel(config, sim::Rng(1));
  EXPECT_NEAR(accel.output_x(util::Radians{0.0}).value, 1.5, 1e-9);
}

TEST(Adxl311, TiltShiftsBySensitivity) {
  Adxl311Model::Config config;
  config.noise_volts = 0.0;
  Adxl311Model accel(config, sim::Rng(1));
  const double v90 = accel.output_x(util::Radians{3.14159265 / 2.0}).value;
  EXPECT_NEAR(v90, 1.5 + 0.174, 1e-6);
  const double vm90 = accel.output_x(util::Radians{-3.14159265 / 2.0}).value;
  EXPECT_NEAR(vm90, 1.5 - 0.174, 1e-6);
}

TEST(Adxl311, TiltRoundTrip) {
  Adxl311Model::Config config;
  config.noise_volts = 0.0;
  Adxl311Model accel(config, sim::Rng(1));
  for (double angle = -1.2; angle <= 1.2; angle += 0.3) {
    const auto v = accel.output_x(util::Radians{angle});
    EXPECT_NEAR(accel.tilt_from_volts(v).value, angle, 1e-6) << angle;
  }
}

TEST(Adxl311, DynamicAccelerationAdds) {
  Adxl311Model::Config config;
  config.noise_volts = 0.0;
  Adxl311Model accel(config, sim::Rng(1));
  const double still = accel.output_x(util::Radians{0.0}).value;
  const double moving = accel.output_x(util::Radians{0.0}, util::Gs{0.5}).value;
  EXPECT_NEAR(moving - still, 0.5 * 0.174, 1e-9);
}

TEST(Adxl311, InverseClampsBeyondOneG) {
  Adxl311Model::Config config;
  config.noise_volts = 0.0;
  Adxl311Model accel(config, sim::Rng(1));
  // 2 g reading (shake) must not blow up the asin.
  const auto tilt = accel.tilt_from_volts(util::Volts{1.5 + 2.0 * 0.174});
  EXPECT_NEAR(tilt.value, 3.14159265 / 2.0, 1e-6);
}

}  // namespace
}  // namespace distscroll::sensors
