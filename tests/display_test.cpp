// Unit tests for the BT96040 display model, font and firmware driver.
#include <gtest/gtest.h>

#include "display/bt96040.h"
#include "display/display_driver.h"
#include "display/font.h"
#include "hw/i2c.h"

namespace distscroll::display {
namespace {

// --- font ------------------------------------------------------------------

TEST(Font, PrintableAsciiHasGlyphs) {
  for (char c = ' '; c < 127; ++c) {
    const auto& g = glyph(c);
    EXPECT_EQ(g.size(), 5u);
  }
}

TEST(Font, SpaceIsBlank) {
  for (auto col : glyph(' ')) EXPECT_EQ(col, 0);
}

TEST(Font, UnknownRendersBox) {
  const auto& box = glyph('\x01');
  EXPECT_EQ(box[0], 0x7F);
  EXPECT_EQ(box[4], 0x7F);
}

TEST(Font, DistinctLetters) {
  EXPECT_NE(glyph('A'), glyph('B'));
  EXPECT_NE(glyph('a'), glyph('A'));
  EXPECT_NE(glyph('0'), glyph('O'));
}

// --- raw panel commands ------------------------------------------------------

std::vector<std::uint8_t> cmd(Command c, std::initializer_list<std::uint8_t> args) {
  std::vector<std::uint8_t> frame;
  frame.reserve(1 + args.size());
  frame.push_back(static_cast<std::uint8_t>(c));
  for (std::uint8_t a : args) frame.push_back(a);
  return frame;
}

TEST(Bt96040, GeometryMatchesPaper) {
  // "two displays with a resolution of 40x96 pixels each (5 lines in
  // text mode)".
  EXPECT_EQ(kDisplayWidth, 96);
  EXPECT_EQ(kDisplayHeight, 40);
  EXPECT_EQ(kTextLines, 5);
}

TEST(Bt96040, TextRendersPixels) {
  Bt96040 panel;
  auto frame = cmd(Command::Text, {});
  frame.push_back('H');
  panel.on_write(frame);
  bool any = false;
  for (int x = 0; x < kGlyphAdvance && !any; ++x) {
    for (int y = 0; y < 8 && !any; ++y) any = panel.pixel(x, y);
  }
  EXPECT_TRUE(any);
  EXPECT_EQ(panel.line_text(0), "H");
}

TEST(Bt96040, CursorPositionsText) {
  Bt96040 panel;
  panel.on_write(cmd(Command::SetCursor, {2, 3}));
  auto frame = cmd(Command::Text, {});
  frame.push_back('X');
  panel.on_write(frame);
  EXPECT_EQ(panel.line_text(2), "   X");
  EXPECT_EQ(panel.line_text(0), "");
}

TEST(Bt96040, TextClipsAtLineEnd) {
  Bt96040 panel;
  auto frame = cmd(Command::Text, {});
  for (int i = 0; i < 25; ++i) frame.push_back('A' + (i % 26));
  panel.on_write(frame);
  EXPECT_EQ(panel.line_text(0).size(), static_cast<std::size_t>(kTextColumns));
  EXPECT_EQ(panel.line_text(1), "");  // no wrap
}

TEST(Bt96040, ClearErasesEverything) {
  Bt96040 panel;
  auto frame = cmd(Command::Text, {});
  frame.push_back('Z');
  panel.on_write(frame);
  panel.on_write(cmd(Command::Clear, {}));
  for (int y = 0; y < kDisplayHeight; ++y) {
    for (int x = 0; x < kDisplayWidth; ++x) EXPECT_FALSE(panel.pixel(x, y));
  }
  EXPECT_EQ(panel.line_text(0), "");
}

TEST(Bt96040, InvertLineFlipsPolarity) {
  Bt96040 panel;
  auto frame = cmd(Command::Text, {});
  frame.push_back('I');
  panel.on_write(frame);
  const bool before = panel.pixel(0, 0);
  panel.on_write(cmd(Command::InvertLine, {0, 1}));
  EXPECT_TRUE(panel.line_inverted(0));
  EXPECT_NE(panel.pixel(0, 0), before);
  panel.on_write(cmd(Command::InvertLine, {0, 0}));
  EXPECT_EQ(panel.pixel(0, 0), before);
}

TEST(Bt96040, ContrastClampedTo6Bits) {
  Bt96040 panel;
  panel.on_write(cmd(Command::SetContrast, {0xFF}));
  EXPECT_EQ(panel.contrast(), 0x3F);
}

TEST(Bt96040, ContrastDrivesCurrentDraw) {
  Bt96040 dim, bright;
  dim.on_write(cmd(Command::SetContrast, {1}));
  bright.on_write(cmd(Command::SetContrast, {63}));
  EXPECT_LT(dim.current_draw_ma(), bright.current_draw_ma());
}

TEST(Bt96040, BlitWritesRawColumns) {
  Bt96040 panel;
  panel.on_write(cmd(Command::Blit, {10, 1, 0xFF}));  // column 10, page 1
  for (int bit = 0; bit < 8; ++bit) EXPECT_TRUE(panel.pixel(10, 8 + bit));
  EXPECT_FALSE(panel.pixel(11, 8));
}

TEST(Bt96040, EmptyWriteNacks) {
  Bt96040 panel;
  EXPECT_FALSE(panel.on_write({}));
}

TEST(Bt96040, StatusReadReportsReadyAndContrast) {
  Bt96040 panel;
  panel.on_write(cmd(Command::SetContrast, {5}));
  const auto data = panel.on_read(1);
  ASSERT_EQ(data.size(), 1u);
  EXPECT_EQ(data[0] & 0x01, 0x01);
  EXPECT_EQ(data[0] >> 2, 5);
}

// --- driver --------------------------------------------------------------------

struct DriverFixture : ::testing::Test {
  hw::I2cBus bus;
  Bt96040 panel;
  DisplayDriver driver{bus, 0x3C};

  DriverFixture() { bus.attach(0x3C, &panel); }
};

TEST_F(DriverFixture, ShowRendersLinesWithHighlight) {
  driver.show({"Inbox", "Outbox", "Drafts", "", ""}, 1);
  EXPECT_EQ(panel.line_text(0), "Inbox");
  EXPECT_EQ(panel.line_text(1), "Outbox");
  EXPECT_TRUE(panel.line_inverted(1));
  EXPECT_FALSE(panel.line_inverted(0));
}

TEST_F(DriverFixture, ShowOnlyRedrawsChangedLines) {
  driver.show({"A", "B", "C", "D", "E"}, 0);
  const auto before = bus.transactions();
  driver.show({"A", "B", "C", "D", "E"}, 0);  // identical
  EXPECT_EQ(bus.transactions(), before);      // nothing sent
  driver.show({"A", "X", "C", "D", "E"}, 0);  // one line changed
  EXPECT_GT(bus.transactions(), before);
  EXPECT_EQ(panel.line_text(1), "X");
}

TEST_F(DriverFixture, MovingHighlightRedrawsBothLines) {
  driver.show({"A", "B", "C", "D", "E"}, 0);
  driver.show({"A", "B", "C", "D", "E"}, 2);
  EXPECT_FALSE(panel.line_inverted(0));
  EXPECT_TRUE(panel.line_inverted(2));
}

TEST_F(DriverFixture, BusTimeForFullRedrawIsMilliseconds) {
  const auto t = driver.show({"0123456789ABCDEF", "0123456789ABCDEF", "0123456789ABCDEF",
                              "0123456789ABCDEF", "0123456789ABCDEF"},
                             0);
  // 5 lines x (invert cmd + cursor cmd + 17-byte text) at 100 kHz:
  // several milliseconds — why the firmware diffs lines.
  EXPECT_GT(t.value, 5e-3);
  EXPECT_LT(t.value, 25e-3);
}

TEST_F(DriverFixture, MissingPanelReportsNack) {
  DisplayDriver ghost(bus, 0x55);
  ghost.clear();
  EXPECT_FALSE(ghost.last_acked());
}

TEST_F(DriverFixture, WriteAtInvalidatesShowCache) {
  driver.show({"A", "B", "C", "D", "E"}, 0);
  driver.write_at(0, 0, "Z");
  const auto before = bus.transactions();
  driver.show({"A", "B", "C", "D", "E"}, 0);  // must repaint despite same args
  EXPECT_GT(bus.transactions(), before);
  EXPECT_EQ(panel.line_text(0), "A");
}

}  // namespace
}  // namespace distscroll::display
