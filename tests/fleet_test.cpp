// Streaming fleet engine: online aggregates, the deterministic quantile
// sketch, checkpoint framing, population sampling, and the end-to-end
// determinism contract — merged results bit-identical at any thread
// count, batched == scalar, and full run == checkpoint + resume down to
// the serialised bytes (DESIGN.md §12).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <set>
#include <vector>

#include "human/population.h"
#include "sim/random.h"
#include "study/fleet_engine.h"
#include "study/fleet_study.h"
#include "util/alloc_guard.h"
#include "util/checkpoint_io.h"
#include "util/online_stats.h"
#include "util/quantile_sketch.h"

namespace distscroll {
namespace {

// --- OnlineMoments --------------------------------------------------------

TEST(OnlineMoments, MatchesTwoPassStatistics) {
  sim::Rng rng(7);
  std::vector<double> values(5000);
  util::OnlineMoments moments;
  for (double& v : values) {
    v = rng.gaussian(3.0, 2.0);
    moments.add(v);
  }
  double mean = 0.0;
  for (const double v : values) mean += v;
  mean /= static_cast<double>(values.size());
  double m2 = 0.0;
  for (const double v : values) m2 += (v - mean) * (v - mean);
  const double variance = m2 / static_cast<double>(values.size() - 1);

  EXPECT_EQ(moments.count(), values.size());
  EXPECT_NEAR(moments.mean(), mean, 1e-9);
  EXPECT_NEAR(moments.variance(), variance, 1e-6);
  EXPECT_DOUBLE_EQ(moments.min(), *std::min_element(values.begin(), values.end()));
  EXPECT_DOUBLE_EQ(moments.max(), *std::max_element(values.begin(), values.end()));
}

TEST(OnlineMoments, MergeIsDeterministicForAFixedOrder) {
  // Two independent executions of the same fold-then-merge plan must be
  // bit-identical (the fleet contract); chunked-merged vs straight-fold
  // agree only approximately (FP reassociation).
  sim::Rng rng(11);
  std::vector<double> values(4096);
  for (double& v : values) v = rng.uniform(0.0, 10.0);

  auto chunked = [&](std::size_t chunk_size) {
    util::OnlineMoments global;
    for (std::size_t first = 0; first < values.size(); first += chunk_size) {
      util::OnlineMoments chunk;
      const std::size_t end = std::min(values.size(), first + chunk_size);
      for (std::size_t i = first; i < end; ++i) chunk.add(values[i]);
      global.merge(chunk);
    }
    return global;
  };

  const auto a = chunked(64);
  const auto b = chunked(64);
  EXPECT_EQ(a, b);  // defaulted operator== on raw state: bit-identity

  util::OnlineMoments straight;
  for (const double v : values) straight.add(v);
  EXPECT_EQ(a.count(), straight.count());
  EXPECT_NEAR(a.mean(), straight.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), straight.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), straight.min());
  EXPECT_DOUBLE_EQ(a.max(), straight.max());
}

TEST(OnlineMoments, MergeWithEmptySidesIsExact) {
  util::OnlineMoments a, b, empty;
  a.add(1.0);
  a.add(2.0);
  util::OnlineMoments merged = a;
  merged.merge(empty);
  EXPECT_EQ(merged, a);
  empty.merge(a);  // merge INTO empty adopts the other side verbatim
  EXPECT_EQ(empty, a);
  EXPECT_EQ(b.count(), 0u);
  EXPECT_EQ(b.mean(), 0.0);
}

// --- QuantileSketch -------------------------------------------------------

TEST(QuantileSketch, QuantilesTrackUniformDistribution) {
  util::QuantileSketch sketch;
  sim::Rng rng(23);
  const std::size_t n = 200000;
  for (std::size_t i = 0; i < n; ++i) sketch.add(rng.uniform01());
  EXPECT_EQ(sketch.count(), n);
  // Rank error O(1/kCapacity); 2% absolute is comfortably loose.
  for (const double p : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    EXPECT_NEAR(sketch.quantile(p), p, 0.02) << "p=" << p;
  }
  EXPECT_LE(sketch.quantile(0.0), sketch.quantile(1.0));
}

TEST(QuantileSketch, ChunkedMergePlanIsBitDeterministic) {
  sim::Rng rng(31);
  std::vector<double> values(50000);
  for (double& v : values) v = rng.exponential(2.0);

  auto folded = [&] {
    util::QuantileSketch global;
    for (std::size_t first = 0; first < values.size(); first += 1000) {
      util::QuantileSketch chunk;
      const std::size_t end = std::min(values.size(), first + 1000);
      for (std::size_t i = first; i < end; ++i) chunk.add(values[i]);
      global.merge(chunk);
    }
    return global;
  };
  const auto a = folded();
  const auto b = folded();
  EXPECT_EQ(a, b);

  std::vector<std::uint8_t> bytes_a, bytes_b;
  util::ByteWriter wa(bytes_a), wb(bytes_b);
  a.serialize(wa);
  b.serialize(wb);
  EXPECT_EQ(bytes_a, bytes_b);
}

TEST(QuantileSketch, SerializeRoundTripsExactly) {
  util::QuantileSketch sketch;
  sim::Rng rng(37);
  for (int i = 0; i < 10000; ++i) sketch.add(rng.gaussian(5.0, 1.5));

  std::vector<std::uint8_t> bytes;
  util::ByteWriter writer(bytes);
  sketch.serialize(writer);

  util::QuantileSketch restored;
  util::ByteReader reader(bytes);
  ASSERT_TRUE(restored.deserialize(reader));
  EXPECT_TRUE(reader.exhausted());
  EXPECT_EQ(restored, sketch);
  EXPECT_DOUBLE_EQ(restored.quantile(0.5), sketch.quantile(0.5));

  // Truncated input is rejected.
  std::vector<std::uint8_t> truncated(bytes.begin(), bytes.begin() + bytes.size() / 2);
  util::ByteReader bad(truncated);
  util::QuantileSketch scratch;
  EXPECT_FALSE(scratch.deserialize(bad));
}

TEST(QuantileSketch, ClearedSketchSerialisesLikeFresh) {
  util::QuantileSketch used;
  sim::Rng rng(41);
  for (int i = 0; i < 5000; ++i) used.add(rng.uniform01());
  used.clear();
  util::QuantileSketch fresh;
  std::vector<std::uint8_t> a, b;
  util::ByteWriter wa(a), wb(b);
  used.serialize(wa);
  fresh.serialize(wb);
  EXPECT_EQ(a, b);
}

TEST(QuantileSketch, AddIsAllocationFreeWhenWarm) {
  if (!util::alloc_interposer_linked()) GTEST_SKIP() << "sanitizer build: interposer absent";
  util::QuantileSketch sketch;
  sim::Rng rng(43);
  // Warm: drive past several compaction cascades.
  for (int i = 0; i < 4096; ++i) sketch.add(rng.uniform01());
  DS_ASSERT_NO_ALLOC {
    for (int i = 0; i < 4096; ++i) sketch.add(rng.uniform01());
  }
}

// --- checkpoint framing ---------------------------------------------------

TEST(CheckpointIo, RoundTripAndTamperDetection) {
  const std::string path = "fleet_test_frame.ckpt";
  std::vector<std::uint8_t> payload;
  util::ByteWriter writer(payload);
  writer.u64(0xDEADBEEFULL);
  writer.f64(3.25);

  ASSERT_EQ(util::write_checkpoint_file(path, 0x1234, 7, payload), util::CheckpointStatus::Ok);
  std::vector<std::uint8_t> read_back;
  ASSERT_EQ(util::read_checkpoint_file(path, 0x1234, 7, read_back), util::CheckpointStatus::Ok);
  EXPECT_EQ(read_back, payload);

  EXPECT_EQ(util::read_checkpoint_file(path, 0x9999, 7, read_back),
            util::CheckpointStatus::BadMagic);
  EXPECT_EQ(util::read_checkpoint_file(path, 0x1234, 8, read_back),
            util::CheckpointStatus::BadVersion);
  // Missing (nothing to resume) is distinct from IoError (a file that
  // exists but cannot be read — here, a directory).
  EXPECT_EQ(util::read_checkpoint_file("does_not_exist.ckpt", 0x1234, 7, read_back),
            util::CheckpointStatus::Missing);
  EXPECT_EQ(util::read_checkpoint_file(".", 0x1234, 7, read_back),
            util::CheckpointStatus::IoError);

  // Flip one payload byte on disk: CRC must catch it.
  {
    std::fstream file(path, std::ios::binary | std::ios::in | std::ios::out);
    file.seekp(18);
    char byte = 0;
    file.seekg(18);
    file.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x40);
    file.seekp(18);
    file.write(&byte, 1);
  }
  EXPECT_EQ(util::read_checkpoint_file(path, 0x1234, 7, read_back),
            util::CheckpointStatus::Corrupt);
  std::remove(path.c_str());
}

// --- population sampling --------------------------------------------------

TEST(Population, SamplingIsAPureFunctionOfTheStream) {
  const human::PopulationSpec spec;
  const auto a = human::sample_participant(spec, sim::Rng(99).fork(5));
  const auto b = human::sample_participant(spec, sim::Rng(99).fork(5));
  EXPECT_EQ(a.profile.expertise, b.profile.expertise);
  EXPECT_EQ(a.profile.glove, b.profile.glove);
  EXPECT_EQ(a.learning_rate, b.learning_rate);
  EXPECT_EQ(a.practice_blocks, b.practice_blocks);
  EXPECT_EQ(a.reach_far_cm, b.reach_far_cm);
}

TEST(Population, DrawLayoutIndependentOfSpecValues) {
  // Changing one knob must not shift the draws of UNRELATED fields —
  // the fixed draw order is what keeps participant k stable as specs
  // evolve. Glove weights only affect the glove; reach must not move.
  human::PopulationSpec all_none;
  all_none.glove_none_w = 1.0;
  all_none.glove_thin_w = 0.0;
  all_none.glove_thick_w = 0.0;
  human::PopulationSpec all_thick;
  all_thick.glove_none_w = 0.0;
  all_thick.glove_thin_w = 0.0;
  all_thick.glove_thick_w = 1.0;
  for (std::uint64_t k = 0; k < 64; ++k) {
    const auto a = human::sample_participant(all_none, sim::Rng(1).fork(k));
    const auto b = human::sample_participant(all_thick, sim::Rng(1).fork(k));
    EXPECT_EQ(a.profile.glove, human::Glove::None);
    EXPECT_EQ(b.profile.glove, human::Glove::Thick);
    EXPECT_EQ(a.reach_far_cm, b.reach_far_cm) << "reach drew from a shifted stream";
    EXPECT_EQ(a.practice_blocks, b.practice_blocks);
  }
}

TEST(Population, ReachSnapsToPresets) {
  const human::PopulationSpec spec;
  std::set<double> seen;
  for (std::uint64_t k = 0; k < 500; ++k) {
    const auto p = human::sample_participant(spec, sim::Rng(3).fork(k));
    seen.insert(p.reach_far_cm);
    EXPECT_TRUE(std::find(human::kReachPresetsCm.begin(), human::kReachPresetsCm.end(),
                          p.reach_far_cm) != human::kReachPresetsCm.end());
  }
  EXPECT_GT(seen.size(), 1u) << "population collapsed onto a single preset";
}

TEST(Population, PracticeAppliesTheSessionLearningRule) {
  human::PopulationSpec spec;
  spec.expertise_sd = 0.0;  // exact mean, no draw consumed for sigma=0
  spec.learning_rate_sd = 0.0;
  const auto p = human::sample_participant(spec, sim::Rng(17).fork(0));
  double expected = spec.expertise_mean;
  for (int i = 0; i < p.practice_blocks; ++i) {
    expected += spec.learning_rate_mean * (1.0 - expected);
  }
  EXPECT_DOUBLE_EQ(p.effective_expertise, std::clamp(expected, 0.0, 1.0));
}

// --- RNG fork-of-fork independence ----------------------------------------

TEST(FleetRng, ForkChainsDoNotCollideAcrossTenThousandParticipants) {
  // Participant k uses root.fork(k), and inside it the cell decomposition
  // fork(0..3). A collision between ANY two of those streams would
  // correlate supposedly-independent participants. First outputs of
  // 10k x (parent + 4 children) must all be distinct.
  const sim::Rng root(0xD157F1EE);
  std::set<std::uint64_t> seen;
  const std::uint64_t participants = 10000;
  for (std::uint64_t k = 0; k < participants; ++k) {
    const sim::Rng participant = root.fork(k);
    sim::Rng parent = participant;
    ASSERT_TRUE(seen.insert(parent.next_u64()).second) << "parent stream collision at " << k;
    for (std::uint64_t tag = 0; tag < 4; ++tag) {
      sim::Rng child = participant.fork(tag);
      ASSERT_TRUE(seen.insert(child.next_u64()).second)
          << "child stream collision at participant " << k << " tag " << tag;
    }
  }
  EXPECT_EQ(seen.size(), participants * 5);
}

// --- FleetEngine ----------------------------------------------------------

/// Cheap synthetic aggregate for engine-level tests (no trial loop).
struct ProbeAgg {
  util::OnlineMoments moments;
  util::QuantileSketch sketch;

  void clear() {
    moments.clear();
    sketch.clear();
  }
  void merge(const ProbeAgg& other) {
    moments.merge(other.moments);
    sketch.merge(other.sketch);
  }
  friend bool operator==(const ProbeAgg&, const ProbeAgg&) = default;
};

void probe_body(std::uint64_t first, std::uint64_t count, ProbeAgg& out,
                const study::FleetEngine<ProbeAgg>& engine) {
  for (std::uint64_t k = 0; k < count; ++k) {
    sim::Rng rng = engine.participant_rng(first + k);
    for (int draw = 0; draw < 8; ++draw) {
      const double value = rng.gaussian(0.0, 1.0);
      out.moments.add(value);
      out.sketch.add(value);
    }
  }
}

TEST(FleetEngine, BitIdenticalAcrossThreadCounts) {
  auto run_at = [](std::size_t threads) {
    study::FleetConfig config;
    config.participants = 10000;
    config.threads = threads;
    config.chunk = 128;
    config.window_chunks = 8;
    config.base_seed = 77;
    study::FleetEngine<ProbeAgg> engine(config);
    ProbeAgg global;
    std::uint64_t cursor = 0;
    engine.run(global, cursor, config.participants, probe_body);
    EXPECT_EQ(cursor, config.participants);
    return global;
  };
  const ProbeAgg reference = run_at(1);
  EXPECT_EQ(reference.moments.count(), 80000u);
  for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    EXPECT_EQ(run_at(threads), reference) << threads << " threads diverged";
  }
}

TEST(FleetEngine, StopAndContinueMatchesStraightRun) {
  study::FleetConfig config;
  config.participants = 5000;
  config.threads = 4;
  config.chunk = 64;
  config.window_chunks = 4;
  config.base_seed = 5;

  study::FleetEngine<ProbeAgg> straight_engine(config);
  ProbeAgg straight;
  std::uint64_t cursor = 0;
  straight_engine.run(straight, cursor, config.participants, probe_body);

  // Interrupt at an arbitrary (non-chunk-aligned) stop request; the
  // engine rounds the cut up to a chunk boundary and resumes exactly.
  study::FleetEngine<ProbeAgg> split_engine(config);
  ProbeAgg split;
  std::uint64_t split_cursor = 0;
  split_engine.run(split, split_cursor, 2100, probe_body);
  EXPECT_EQ(split_cursor % config.chunk, 0u);
  EXPECT_GE(split_cursor, 2100u);
  EXPECT_LT(split_cursor, 2100 + config.chunk);
  // Fresh engine (as after a process restart) finishes the run.
  study::FleetEngine<ProbeAgg> resume_engine(config);
  resume_engine.run(split, split_cursor, config.participants, probe_body);
  EXPECT_EQ(split_cursor, config.participants);
  EXPECT_EQ(split, straight);
}

TEST(FleetEngine, WindowHookFiresAtChunkAlignedCursors) {
  study::FleetConfig config;
  config.participants = 1000;
  config.threads = 1;
  config.chunk = 64;
  config.window_chunks = 4;
  study::FleetEngine<ProbeAgg> engine(config);
  ProbeAgg global;
  std::uint64_t cursor = 0;
  std::vector<std::uint64_t> cuts;
  engine.run(global, cursor, config.participants, probe_body,
             [&](const ProbeAgg&, std::uint64_t at) { cuts.push_back(at); });
  ASSERT_FALSE(cuts.empty());
  for (std::size_t i = 0; i + 1 < cuts.size(); ++i) {
    EXPECT_EQ(cuts[i] % config.chunk, 0u);
    EXPECT_LT(cuts[i], cuts[i + 1]);
  }
  EXPECT_EQ(cuts.back(), config.participants);
}

// --- end-to-end fleet study -----------------------------------------------

study::FleetStudyConfig small_fleet() {
  study::FleetStudyConfig config;
  config.participants = 640;
  config.trials_per_participant = 2;
  config.menu_size = 20;
  config.base_seed = 0xBEEF;
  config.chunk = 64;
  config.window_chunks = 4;
  config.threads = 1;
  return config;
}

TEST(FleetStudy, BatchedMatchesScalarByteForByte) {
  auto batched = small_fleet();
  batched.batched = true;
  auto scalar = small_fleet();
  scalar.batched = false;
  const auto a = study::run_fleet(batched);
  const auto b = study::run_fleet(scalar);
  ASSERT_TRUE(a.complete);
  ASSERT_TRUE(b.complete);
  EXPECT_EQ(a.aggregates, b.aggregates);
  EXPECT_EQ(a.aggregates.to_bytes(), b.aggregates.to_bytes());
  EXPECT_EQ(a.aggregates.participants(), 640u);
  EXPECT_EQ(a.aggregates.trials(), 1280u);
}

TEST(FleetStudy, BitIdenticalAcrossThreadCounts) {
  auto config = small_fleet();
  const auto reference = study::run_fleet(config);
  ASSERT_TRUE(reference.complete);
  const auto reference_bytes = reference.aggregates.to_bytes();
  for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    config.threads = threads;
    const auto result = study::run_fleet(config);
    ASSERT_TRUE(result.complete);
    EXPECT_EQ(result.aggregates.to_bytes(), reference_bytes) << threads << " threads";
  }
}

TEST(FleetStudy, CheckpointResumeIsByteIdenticalIncludingSketch) {
  const std::string path = "fleet_test_resume.ckpt";
  std::remove(path.c_str());

  const auto full = study::run_fleet(small_fleet());
  ASSERT_TRUE(full.complete);

  auto config = small_fleet();
  config.threads = 2;
  config.checkpoint_path = path;
  const auto half = study::run_fleet(config, 300);
  ASSERT_EQ(half.status, util::CheckpointStatus::Ok);
  ASSERT_FALSE(half.complete);
  EXPECT_EQ(half.cursor % config.chunk, 0u);

  config.resume = true;
  const auto resumed = study::run_fleet(config);
  ASSERT_EQ(resumed.status, util::CheckpointStatus::Ok);
  ASSERT_TRUE(resumed.resumed);
  EXPECT_EQ(resumed.resumed_from, half.cursor);
  ASSERT_TRUE(resumed.complete);
  // Byte-level identity covers every aggregate INCLUDING the sketch's
  // level buffers and parity bits.
  EXPECT_EQ(resumed.aggregates.to_bytes(), full.aggregates.to_bytes());
  EXPECT_EQ(resumed.aggregates, full.aggregates);
  std::remove(path.c_str());
}

TEST(FleetStudy, PeriodicCheckpointsLandOnWindows) {
  const std::string path = "fleet_test_periodic.ckpt";
  std::remove(path.c_str());
  auto config = small_fleet();
  config.checkpoint_path = path;
  config.checkpoint_every = 200;
  const auto result = study::run_fleet(config);
  ASSERT_TRUE(result.complete);
  // The final write leaves a checkpoint of the COMPLETE state; resuming
  // from it is a no-op run that returns the same bytes.
  config.resume = true;
  const auto noop = study::run_fleet(config);
  ASSERT_TRUE(noop.resumed);
  EXPECT_TRUE(noop.complete);
  EXPECT_EQ(noop.resumed_from, config.participants);
  EXPECT_EQ(noop.aggregates.to_bytes(), result.aggregates.to_bytes());
  std::remove(path.c_str());
}

TEST(FleetStudy, NoOpResumeWithPartialFinalChunk) {
  const std::string path = "fleet_test_partial_chunk.ckpt";
  std::remove(path.c_str());
  auto config = small_fleet();
  config.participants = 650;  // NOT a multiple of chunk (64): final chunk is partial.
  config.checkpoint_path = path;
  const auto full = study::run_fleet(config);
  ASSERT_TRUE(full.complete);
  ASSERT_EQ(full.aggregates.participants(), 650u);
  // The complete checkpoint's cursor (650) is not chunk-aligned. Resume
  // must be a no-op — flooring the cursor to a chunk index would re-fold
  // participants 640..649 into the finished aggregate and silently
  // overwrite the checkpoint with the double-counted state.
  config.resume = true;
  const auto noop = study::run_fleet(config);
  ASSERT_EQ(noop.status, util::CheckpointStatus::Ok);
  ASSERT_TRUE(noop.resumed);
  EXPECT_TRUE(noop.complete);
  EXPECT_EQ(noop.resumed_from, 650u);
  EXPECT_EQ(noop.aggregates.participants(), 650u);
  EXPECT_EQ(noop.aggregates.to_bytes(), full.aggregates.to_bytes());
  std::remove(path.c_str());
}

TEST(FleetStudy, CorruptOrForeignCheckpointIsRejected) {
  const std::string path = "fleet_test_reject.ckpt";
  std::remove(path.c_str());
  auto config = small_fleet();
  config.checkpoint_path = path;
  (void)study::run_fleet(config, 200);

  // Different seed: intact file, wrong identity -> Mismatch, run aborts.
  auto other = config;
  other.base_seed = 0xFEED;
  other.resume = true;
  const auto mismatch = study::run_fleet(other);
  EXPECT_EQ(mismatch.status, util::CheckpointStatus::Mismatch);
  EXPECT_EQ(mismatch.cursor, 0u);

  // Flip a byte: CRC failure -> Corrupt, run aborts.
  {
    std::fstream file(path, std::ios::binary | std::ios::in | std::ios::out);
    file.seekp(40);
    char byte = 0;
    file.seekg(40);
    file.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x01);
    file.seekp(40);
    file.write(&byte, 1);
  }
  config.resume = true;
  const auto corrupt = study::run_fleet(config);
  EXPECT_EQ(corrupt.status, util::CheckpointStatus::Corrupt);

  // Missing file with --resume semantics: fresh start, not an error.
  std::remove(path.c_str());
  const auto fresh = study::run_fleet(config);
  EXPECT_EQ(fresh.status, util::CheckpointStatus::Ok);
  EXPECT_FALSE(fresh.resumed);
  EXPECT_TRUE(fresh.complete);
  std::remove(path.c_str());
}

TEST(FleetStudy, WarmFoldPathIsAllocationFree) {
  if (!util::alloc_interposer_linked()) GTEST_SKIP() << "sanitizer build: interposer absent";
  study::FleetAggregates agg;
  const human::PopulationSpec spec;
  // Warm the sketch and histogram, then pin the per-participant fold.
  study::TrialRecord record;
  record.outcome.success = true;
  record.outcome.id_bits = 3.0;
  for (int i = 0; i < 2048; ++i) {
    record.outcome.time_s = 0.5 + 0.001 * i;
    agg.fold_trial(record);
  }
  const auto participant = human::sample_participant(spec, sim::Rng(1).fork(0));
  DS_ASSERT_NO_ALLOC {
    for (int i = 0; i < 2048; ++i) {
      agg.fold_participant(participant);
      record.outcome.time_s = 1.0 + 0.001 * i;
      agg.fold_trial(record);
    }
  }
}

TEST(FleetStudy, AggregatesSerializeRoundTrip) {
  const auto result = study::run_fleet(small_fleet());
  ASSERT_TRUE(result.complete);
  const auto bytes = result.aggregates.to_bytes();
  study::FleetAggregates restored;
  util::ByteReader reader(bytes);
  ASSERT_TRUE(restored.deserialize(reader));
  EXPECT_TRUE(reader.exhausted());
  EXPECT_EQ(restored, result.aggregates);
  EXPECT_EQ(restored.to_bytes(), bytes);
}

}  // namespace
}  // namespace distscroll
