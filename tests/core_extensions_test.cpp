// Tests for the "final version" features the paper plans and this
// reproduction implements: dual-sensor fold resolution, accelerometer
// context gating, button layouts / single-button long press, and ranger
// duty cycling.
#include <gtest/gtest.h>

#include "core/button_layout.h"
#include "core/context_gate.h"
#include "core/distscroll_device.h"
#include "core/dual_sensor.h"
#include "menu/menu_builder.h"
#include "sensors/gp2d120.h"

namespace distscroll::core {
namespace {

// --- DualRangeResolver -------------------------------------------------------

struct DualFixture : ::testing::Test {
  SensorCurve curve{};
  DualRangeResolver::Config config{};
  sensors::Gp2d120Model::Config sensor_config = [] {
    sensors::Gp2d120Model::Config c;
    c.output_noise_volts = 0.0;
    return c;
  }();
  sensors::Gp2d120Model primary{sensor_config, sim::Rng(1)};

  DualRangeResolver make() {
    DualRangeResolver::Config c = config;
    c.peak_cm = sensor_config.peak_cm;
    c.dead_zone_volts = sensor_config.dead_zone_volts;
    return DualRangeResolver(curve, curve, c);
  }

  std::uint16_t counts_at_true_distance(double d) {
    const double v = primary.ideal_output(util::Centimeters{d}).value;
    return static_cast<std::uint16_t>(v / 5.0 * 1023.0 + 0.5);
  }
};

TEST_F(DualFixture, ResolvesMonotoneBranch) {
  const auto resolver = make();
  for (double d = 5.0; d <= 28.0; d += 3.0) {
    const auto primary_counts = counts_at_true_distance(d);
    const auto secondary_counts = counts_at_true_distance(d + config.offset_cm);
    const auto resolution = resolver.resolve(util::AdcCounts{primary_counts},
                                             util::AdcCounts{secondary_counts});
    ASSERT_TRUE(resolution.has_value()) << d;
    EXPECT_FALSE(resolution->folded) << d;
    EXPECT_NEAR(resolution->distance.value, d, 0.6) << d;
  }
}

TEST_F(DualFixture, ResolvesFoldedBranch) {
  // The single-sensor ambiguity (paper Section 4.2): at 2 cm the primary
  // reads like some distance beyond the peak, but the recessed secondary
  // reveals the truth.
  const auto resolver = make();
  for (double d : {0.8, 1.5, 2.0, 2.8}) {
    const auto primary_counts = counts_at_true_distance(d);
    const auto secondary_counts = counts_at_true_distance(d + config.offset_cm);
    const auto resolution = resolver.resolve(util::AdcCounts{primary_counts},
                                             util::AdcCounts{secondary_counts});
    ASSERT_TRUE(resolution.has_value()) << d;
    EXPECT_TRUE(resolution->folded) << d;
    EXPECT_NEAR(resolution->distance.value, d, 0.6) << d;
  }
}

TEST_F(DualFixture, RejectsInconsistentPair) {
  const auto resolver = make();
  // Primary says 10 cm; secondary claims 30 cm: neither candidate
  // explains it -> glitch, no resolution.
  const auto primary_counts = counts_at_true_distance(10.0);
  const auto secondary_counts = counts_at_true_distance(30.0);
  EXPECT_FALSE(resolver
                   .resolve(util::AdcCounts{primary_counts}, util::AdcCounts{secondary_counts})
                   .has_value());
}

TEST_F(DualFixture, FoldBranchInverseRoundTrip) {
  const auto resolver = make();
  for (double d = 0.5; d < 3.0; d += 0.5) {
    const auto v = primary.ideal_output(util::Centimeters{d});
    const auto back = resolver.fold_branch_distance(v);
    ASSERT_TRUE(back.has_value()) << d;
    EXPECT_NEAR(back->value, d, 0.1) << d;
  }
}

// --- ContextGate ----------------------------------------------------------------

TEST(ContextGate, SuspendsWhenTippedAndResumesWithDelay) {
  ContextGate gate({});
  EXPECT_TRUE(gate.scrolling_enabled());
  // Lower the device (pitch ~ -1.2 rad).
  EXPECT_FALSE(gate.on_sample(util::Seconds{0.1}, util::Radians{-1.2}));
  // Back upright: not instantly re-enabled.
  EXPECT_FALSE(gate.on_sample(util::Seconds{0.2}, util::Radians{0.1}));
  // After the resume delay, scrolling comes back.
  EXPECT_TRUE(gate.on_sample(util::Seconds{0.6}, util::Radians{0.1}));
}

TEST(ContextGate, HysteresisBand) {
  ContextGate gate({});
  // 0.7 rad: inside [resume=0.6, suspend=0.9] — stays enabled...
  EXPECT_TRUE(gate.on_sample(util::Seconds{0.0}, util::Radians{0.7}));
  // ...but once suspended, 0.7 rad is NOT good enough to resume.
  gate.on_sample(util::Seconds{0.1}, util::Radians{1.2});
  for (double t = 0.2; t < 3.0; t += 0.1) {
    EXPECT_FALSE(gate.on_sample(util::Seconds{t}, util::Radians{0.7}));
  }
}

TEST(ContextGate, WobbleDoesNotResume) {
  ContextGate gate({});
  gate.on_sample(util::Seconds{0.0}, util::Radians{1.3});
  // Alternating good/bad posture, never good long enough.
  for (int i = 0; i < 20; ++i) {
    const double t = 0.1 + i * 0.1;
    gate.on_sample(util::Seconds{t}, util::Radians{(i % 2) ? 0.2 : 1.3});
  }
  EXPECT_FALSE(gate.scrolling_enabled());
}

// --- ButtonLayout ergonomics --------------------------------------------------------

TEST(ButtonLayout, ThreeButtonRightFavoursRightHand) {
  const auto rh = ergonomics(ButtonLayout::ThreeButtonRight, Handedness::Right,
                             ButtonAction::Select);
  const auto lh = ergonomics(ButtonLayout::ThreeButtonRight, Handedness::Left,
                             ButtonAction::Select);
  EXPECT_LT(rh.miss_multiplier, lh.miss_multiplier);
  EXPECT_LT(rh.time_multiplier, lh.time_multiplier);
}

TEST(ButtonLayout, SlidableIsHandSymmetric) {
  const auto rh = ergonomics(ButtonLayout::SlidableTwoButton, Handedness::Right,
                             ButtonAction::Select);
  const auto lh = ergonomics(ButtonLayout::SlidableTwoButton, Handedness::Left,
                             ButtonAction::Select);
  EXPECT_DOUBLE_EQ(rh.miss_multiplier, lh.miss_multiplier);
  EXPECT_DOUBLE_EQ(rh.time_multiplier, lh.time_multiplier);
}

TEST(ButtonLayout, SingleButtonBackIsSlowButReliable) {
  const auto select = ergonomics(ButtonLayout::SingleLargeButton, Handedness::Left,
                                 ButtonAction::Select);
  const auto back = ergonomics(ButtonLayout::SingleLargeButton, Handedness::Left,
                               ButtonAction::Back);
  EXPECT_LT(select.miss_multiplier, 1.0);  // big target
  EXPECT_GT(back.time_multiplier, 2.0);    // long press costs time
  EXPECT_LT(back.miss_multiplier, 1.0);
}

// --- device integration: the new config knobs ---------------------------------------

struct ExtDeviceFixture : ::testing::Test {
  std::unique_ptr<menu::MenuNode> menu_root = menu::MenuBuilder("r")
                                                  .submenu("folder")
                                                  .item("f1")
                                                  .item("f2")
                                                  .end()
                                                  .item("a")
                                                  .item("b")
                                                  .item("c")
                                                  .build();
  sim::EventQueue queue;
  double distance_cm = 17.0;
  double pitch_rad = 0.0;

  std::unique_ptr<DistScrollDevice> make(DistScrollDevice::Config config) {
    auto device = std::make_unique<DistScrollDevice>(config, *menu_root, queue, sim::Rng(11));
    device->set_distance_provider(
        [this](util::Seconds) { return util::Centimeters{distance_cm}; });
    device->set_tilt_provider([this](util::Seconds) { return util::Radians{pitch_rad}; });
    device->power_on();
    return device;
  }

  void settle(double s = 0.5) { queue.run_until(util::Seconds{queue.now().value + s}); }

  static double distance_for_index(const DistScrollDevice& device, std::size_t index) {
    const auto& mapper = device.mapper();
    return mapper.centre_distance(mapper.entries() - 1 - index).value;
  }
};

TEST_F(ExtDeviceFixture, SingleButtonShortPressSelects) {
  DistScrollDevice::Config config;
  config.button_layout = ButtonLayout::SingleLargeButton;
  auto device = make(config);
  distance_cm = distance_for_index(*device, 0);  // "folder"
  settle();
  ASSERT_EQ(device->cursor().index(), 0u);
  device->select_button().press();
  settle(0.15);  // short press
  device->select_button().release();
  settle(0.1);
  EXPECT_EQ(device->cursor().depth(), 1u);  // entered the folder
}

TEST_F(ExtDeviceFixture, SingleButtonLongPressGoesBack) {
  DistScrollDevice::Config config;
  config.button_layout = ButtonLayout::SingleLargeButton;
  auto device = make(config);
  distance_cm = distance_for_index(*device, 0);
  settle();
  device->select_button().press();
  settle(0.15);
  device->select_button().release();
  settle(0.1);
  ASSERT_EQ(device->cursor().depth(), 1u);
  // Long press: back to the root level.
  device->select_button().press();
  settle(0.7);
  device->select_button().release();
  settle(0.1);
  EXPECT_EQ(device->cursor().depth(), 0u);
}

TEST_F(ExtDeviceFixture, ContextGateStopsScrollingWhenLowered) {
  DistScrollDevice::Config config;
  config.enable_context_gate = true;
  auto device = make(config);
  distance_cm = distance_for_index(*device, 0);
  settle();
  ASSERT_EQ(device->cursor().index(), 0u);
  ASSERT_TRUE(device->scrolling_enabled());

  // Lower the arm: device hangs, the ranger now sees something close
  // (the leg) — but the gate freezes the cursor.
  pitch_rad = -1.3;
  distance_cm = distance_for_index(*device, 3);
  settle(1.0);
  EXPECT_FALSE(device->scrolling_enabled());
  EXPECT_EQ(device->cursor().index(), 0u);  // frozen despite the new distance

  // Raise it again: scrolling resumes and follows the distance.
  pitch_rad = 0.0;
  settle(1.0);
  EXPECT_TRUE(device->scrolling_enabled());
  EXPECT_EQ(device->cursor().index(), 3u);
}

TEST_F(ExtDeviceFixture, DutyCycleDropsDrawWhenIdleAndWakesOnMotion) {
  DistScrollDevice::Config config;
  config.enable_sensor_duty_cycle = true;
  config.idle_after = util::Seconds{2.0};
  auto device = make(config);
  settle(1.0);
  EXPECT_FALSE(device->sensor_idle());
  const double active_draw = device->board().battery().total_draw_ma();
  settle(4.0);  // nothing happens: goes idle
  EXPECT_TRUE(device->sensor_idle());
  EXPECT_LT(device->board().battery().total_draw_ma(), active_draw - 20.0);
  // The hand moves: the next (sparse) sample notices and wakes up.
  distance_cm = distance_for_index(*device, 3);
  settle(1.0);
  EXPECT_FALSE(device->sensor_idle());
  EXPECT_NEAR(device->board().battery().total_draw_ma(), active_draw, 1.0);
  EXPECT_EQ(device->cursor().index(), 3u);
}

TEST_F(ExtDeviceFixture, DualSensorKeepsScrollingUnambiguousWhenTooClose) {
  // WITHOUT the second sensor: 0.6 cm aliases to a farther entry
  // (covered in core_device_test). WITH it: the fold is detected, no
  // false selection happens.
  DistScrollDevice::Config config;
  config.use_dual_sensor = true;
  auto device = make(config);
  distance_cm = distance_for_index(*device, 3);
  settle();
  ASSERT_EQ(device->cursor().index(), 3u);
  distance_cm = 0.6;  // deep in the fold zone
  settle(1.0);
  EXPECT_EQ(device->cursor().index(), 3u);  // held, not aliased
}

TEST_F(ExtDeviceFixture, DualSensorDrivesTurboInFoldZone) {
  auto big = menu::make_flat_menu(50);
  menu_root = std::move(big);
  DistScrollDevice::Config config;
  config.use_dual_sensor = true;
  config.enable_fast_scroll = true;
  config.long_menu = LongMenuStrategy::Chunked;
  config.chunk_size = 10;
  auto device = make(config);
  settle();
  ASSERT_EQ(device->current_chunk().value_or(99), 0u);
  distance_cm = 2.0;  // below the peak: folded -> unambiguous turbo
  std::set<std::size_t> seen;
  for (int i = 0; i < 12; ++i) {
    settle(0.06);
    seen.insert(device->current_chunk().value_or(0));
  }
  EXPECT_GT(seen.size(), 1u);
}

}  // namespace
}  // namespace distscroll::core
