// Tests for the altitude-game logic (paper application area 3).
#include <gtest/gtest.h>

#include "game/altitude_game.h"

namespace distscroll::game {
namespace {

AltitudeGame make(std::uint64_t seed = 1) { return AltitudeGame({}, sim::Rng(seed)); }

TEST(AltitudeGame, StartsWithOneWallMidPlane) {
  auto game = make();
  EXPECT_EQ(game.walls().size(), 1u);
  EXPECT_EQ(game.plane_y(), display::kDisplayHeight / 2);
  EXPECT_EQ(game.score(), 0);
  EXPECT_EQ(game.crashes(), 0);
}

TEST(AltitudeGame, AltitudeClamped) {
  auto game = make();
  game.set_altitude(-5);
  EXPECT_EQ(game.plane_y(), 0);
  game.set_altitude(1000);
  EXPECT_EQ(game.plane_y(), display::kDisplayHeight - 1);
}

TEST(AltitudeGame, DistanceMapsLinearly) {
  auto game = make();
  game.set_altitude_from_distance(4.0, 4.0, 30.0);
  EXPECT_EQ(game.plane_y(), 0);
  game.set_altitude_from_distance(30.0, 4.0, 30.0);
  EXPECT_EQ(game.plane_y(), display::kDisplayHeight - 1);
  game.set_altitude_from_distance(17.0, 4.0, 30.0);
  EXPECT_NEAR(game.plane_y(), display::kDisplayHeight / 2, 1);
}

TEST(AltitudeGame, WallsApproachAndRespawn) {
  auto game = make();
  const int x0 = game.walls()[0].x;
  game.step();
  EXPECT_EQ(game.walls()[0].x, x0 - 1);
  for (int i = 0; i < 300; ++i) game.step();
  EXPECT_GE(game.walls().size(), 1u);   // always some walls on screen
  for (const auto& wall : game.walls()) EXPECT_GE(wall.x, 0);
}

TEST(AltitudeGame, ThreadingTheGapScores) {
  auto game = make();
  // Put the plane in the gap of the first wall and run until it passes.
  const auto& wall = game.walls()[0];
  game.set_altitude(wall.gap_y);
  const int steps = wall.x - game.config().plane_x;
  for (int i = 0; i < steps; ++i) {
    game.set_altitude(game.walls()[0].gap_y);  // track the gap
    game.step();
  }
  EXPECT_EQ(game.score(), game.config().pass_score);
  EXPECT_EQ(game.crashes(), 0);
}

TEST(AltitudeGame, MissingTheGapCrashes) {
  auto game = make();
  const auto& wall = game.walls()[0];
  // Park well outside the gap.
  const int off_gap = (wall.gap_y > game.config().height / 2) ? 0 : game.config().height - 1;
  game.set_altitude(off_gap);
  const int steps = wall.x - game.config().plane_x;
  for (int i = 0; i < steps; ++i) game.step();
  EXPECT_EQ(game.crashes(), 1);
  EXPECT_EQ(game.score(), 0);
}

TEST(AltitudeGame, BulletBlastsWall) {
  auto game = make();
  game.set_altitude(0);  // out of the way of the gap logic
  game.fire();
  EXPECT_TRUE(game.bullet_in_flight());
  int guard = 0;
  while (game.bullet_in_flight() && ++guard < 100) game.step();
  // The bullet either hit the wall (+blast score) or flew off screen.
  if (game.score() > 0) {
    EXPECT_EQ(game.score(), game.config().blast_score);
    EXPECT_TRUE(game.walls().empty() || game.walls()[0].destroyed ||
                game.walls()[0].x > game.config().plane_x);
  }
}

TEST(AltitudeGame, DestroyedWallDoesNotCrash) {
  auto game = make();
  game.fire();
  int guard = 0;
  while (game.bullet_in_flight() && ++guard < 100) game.step();
  if (!game.walls().empty() && game.walls()[0].destroyed) {
    game.set_altitude(0);  // would crash into an intact wall
    const int steps = game.walls()[0].x - game.config().plane_x;
    for (int i = 0; i < steps && !game.walls().empty(); ++i) game.step();
    EXPECT_EQ(game.crashes(), 0);
  }
}

TEST(AltitudeGame, OnlyOneBulletAtATime) {
  auto game = make();
  game.fire();
  game.step();
  game.fire();  // ignored while in flight
  EXPECT_TRUE(game.bullet_in_flight());
}

TEST(AltitudeGame, RenderDrawsPlaneAndWalls) {
  auto game = make();
  display::Bt96040 panel;
  game.render(panel);
  // The plane wedge is at plane_x, plane_y.
  EXPECT_TRUE(panel.pixel(game.config().plane_x, game.plane_y()));
  // Wall column has pixels outside the gap.
  const auto& wall = game.walls()[0];
  const int outside = (wall.gap_y + wall.gap_half + 2) % display::kDisplayHeight;
  EXPECT_TRUE(panel.pixel(wall.x, outside) ||
              panel.pixel(wall.x, 0));  // one of the solid rows
  // Inside the gap is clear.
  EXPECT_FALSE(panel.pixel(wall.x, wall.gap_y));
}

TEST(AltitudeGame, DeterministicForSeed) {
  auto a = make(42);
  auto b = make(42);
  for (int i = 0; i < 200; ++i) {
    a.set_altitude(i % display::kDisplayHeight);
    b.set_altitude(i % display::kDisplayHeight);
    if (i % 17 == 0) {
      a.fire();
      b.fire();
    }
    a.step();
    b.step();
  }
  EXPECT_EQ(a.score(), b.score());
  EXPECT_EQ(a.crashes(), b.crashes());
}

}  // namespace
}  // namespace distscroll::game
