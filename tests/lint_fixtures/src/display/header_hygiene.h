// Fixture: include-hygiene. <iostream> in a header and parent-relative
// includes are flagged. (#pragma once present, so pragma-once is silent
// here — see no_pragma_once.h for that rule.)
#pragma once

#include <iostream>         // finding: <iostream> in a header
#include "../sim/wallclock.cpp"  // finding: parent-relative include

namespace fixture {

inline void log_line() { std::cout << "hygiene\n"; }

}  // namespace fixture
