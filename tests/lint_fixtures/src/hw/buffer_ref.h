// Fixture support header for the cross-TU reachability case (see
// core/hot_caller.cpp). Declarations only — the allocation lives in
// buffer_ref.cpp, two calls below the DS_HOT region.
#pragma once

#include <vector>

namespace distscroll::hw {

struct BufferRef {
  std::vector<int> storage;
};

int refresh_buffers(BufferRef& ref);
int cold_refresh(BufferRef& ref);

}  // namespace distscroll::hw
