// Fixture: no-std-function-hot-path. A device-side header storing or
// taking std::function is flagged; util::FunctionRef and suppressed
// setup-time owners stay silent.
#pragma once

#include <functional>

namespace fixture {

struct Sampler {
  using SampleFn = std::function<double(double)>;  // finding

  void set_callback(std::function<void()> cb);  // finding

  // ds-lint: allow(no-std-function-hot-path) fixture: justified setup-time owner stays silent
  std::function<void()> owner_slot;

  // A comment mentioning std::function must stay silent.
  double (*plain_pointer)(double) = nullptr;  // silent: plain function pointer
};

}  // namespace fixture
