// Fixture: cross-TU hot-path reachability. grow_storage() allocates
// two calls away from the DS_HOT region in core/hot_caller.cpp; the
// region-local rule cannot see it, the call-graph pass can. cold_grow
// is the near-miss: same allocation shape, only reachable from a cold
// entry point, so it must stay silent.
#include "hw/buffer_ref.h"

namespace distscroll::hw {
namespace {

int grow_storage(BufferRef& ref) {
  ref.storage.push_back(1);
  return static_cast<int>(ref.storage.size());
}

int cold_grow(BufferRef& ref) {
  ref.storage.push_back(2);
  return static_cast<int>(ref.storage.size());
}

}  // namespace

int refresh_buffers(BufferRef& ref) { return grow_storage(ref); }

int cold_refresh(BufferRef& ref) { return cold_grow(ref); }

}  // namespace distscroll::hw
