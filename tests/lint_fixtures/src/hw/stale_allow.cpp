// Fixture: suppression-hygiene meta-rule. A stale allow(), an allow()
// naming an unknown rule, and a justification-free allow() each fire;
// the justified allow() that suppresses a real finding (sample_again)
// is the near-miss and stays silent.
#include <chrono>

namespace distscroll::hw {

// ds-lint: allow(no-wallclock) stale: the next line reads no clock
int counter_width = 3;

// ds-lint: allow(no-alloc-marker) rule name is a typo for no-alloc-markers
int spare_lanes = 4;

long sample_once() {
  const auto t0 = std::chrono::steady_clock::now();  // ds-lint: allow(no-wallclock)
  return static_cast<long>(t0.time_since_epoch().count());
}

long sample_again() {
  // ds-lint: allow(no-wallclock) fixture: justified host-clock probe stays silent
  const auto t0 = std::chrono::steady_clock::now();
  return static_cast<long>(t0.time_since_epoch().count());
}

}  // namespace distscroll::hw
