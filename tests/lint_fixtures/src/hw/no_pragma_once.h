// Fixture: pragma-once. This header deliberately lacks #pragma once;
// the diagnostic lands on line 1.
#ifndef FIXTURE_NO_PRAGMA_ONCE_H
#define FIXTURE_NO_PRAGMA_ONCE_H

namespace fixture {

inline int guarded_the_old_way() { return 1; }

}  // namespace fixture

#endif  // FIXTURE_NO_PRAGMA_ONCE_H
