// Fixture: second half of the include cycle (see cycle_a.h). This file
// itself produces no finding — one cycle, one report.
#pragma once

#include "util/cycle_a.h"

namespace distscroll::util {
struct CycleB {
  int tag_b = 0;
};
}  // namespace distscroll::util
