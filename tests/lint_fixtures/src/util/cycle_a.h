// Fixture: include-layering cycle detection. cycle_a.h and cycle_b.h
// include each other; the cycle is reported once, anchored at the
// lexicographically smallest file (this one).
#pragma once

#include "util/cycle_b.h"

namespace distscroll::util {
struct CycleA {
  int tag_a = 0;
};
}  // namespace distscroll::util
