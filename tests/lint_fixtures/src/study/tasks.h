// Fixture support header: the upward-edge target (see sim/upward.h).
// Clean on its own.
#pragma once

namespace distscroll::study {
struct TaskTag {
  int id = 0;
};
}  // namespace distscroll::study
