// Fixture near-miss: a study (L8) -> sim (L1) include is a declared
// downward edge in the layer table, so this file lints clean.
#pragma once

#include "sim/clock_stub.h"

namespace distscroll::study {
struct DownwardUse {
  sim::ClockStub clock{};
};
}  // namespace distscroll::study
