// Fixture: concurrency-purity. study/ code runs on ThreadPool workers;
// mutable namespace-scope state and mutable function-local statics are
// flagged. const/constexpr/thread_local/atomic/mutex declarations and
// call-expression statements are the near-misses.
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

namespace distscroll::study {

int session_counter = 0;

std::string last_label;

constexpr int kMaxSessions = 64;

const double kScaleFactor = 1.5;

std::atomic<std::uint32_t> live_sessions{0};

thread_local int scratch_budget = 0;

std::mutex pool_mutex;

int bump_counter() {
  static int calls = 0;
  static const int kStride = 7;
  calls += kStride;
  return calls;
}

}  // namespace distscroll::study
