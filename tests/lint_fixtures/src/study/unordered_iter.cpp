// Fixture: no-unordered-iteration. Iteration visits hash order — banned
// in deterministic subsystems; keyed lookups stay silent.
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace fixture {

int violations() {
  std::unordered_map<std::string, int> tally;
  std::unordered_set<int> seen;
  tally["a"] = 1;
  int sum = 0;
  for (const auto& [key, value] : tally) {  // finding: range-for over tally
    sum += value + static_cast<int>(key.size());
  }
  for (auto it = seen.begin(); it != seen.end(); ++it) {  // finding: iterator walk of seen
    sum += *it;
  }
  return sum;
}

int silent() {
  std::unordered_map<std::string, int> lookup;
  lookup["hit"] = 7;
  const auto found = lookup.find("hit");  // keyed lookup: silent
  std::vector<int> ordered = {1, 2, 3};
  int sum = 0;
  for (int v : ordered) sum += v;  // ordered container: silent
  // ds-lint: allow(no-unordered-iteration) fixture: suppressed iteration stays silent
  for (const auto& [key, value] : lookup) sum += value + static_cast<int>(key.size());
  return sum + (found != lookup.end() ? found->second : 0);
}

}  // namespace fixture
