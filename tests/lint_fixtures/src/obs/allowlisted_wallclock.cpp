// Fixture: file-scope allowlist. src/obs/ owns wall timing, so the
// registry exempts this whole directory from no-wallclock — nothing in
// this file may be flagged, with no suppression comments needed.
#include <chrono>

namespace fixture {

double wall_seconds() {
  const auto now = std::chrono::steady_clock::now().time_since_epoch();
  return std::chrono::duration<double>(now).count();
}

}  // namespace fixture
