// Fixture: no-ambient-rng. The determinism contract routes every random
// draw through sim::Rng; ambient engines below must each be flagged.
#include <cstdlib>
#include <random>

namespace fixture {

int violations() {
  std::random_device entropy;                  // finding: random_device
  std::mt19937 twister(entropy());             // finding: mt19937
  std::mt19937_64 twister64(12345);            // finding: mt19937_64
  std::default_random_engine engine;           // finding: default_random_engine
  const int ambient = rand();                  // finding: rand(
  srand(42);                                   // finding: srand(
  return static_cast<int>(twister() + twister64() + engine()) + ambient;
}

int strand(int operand);  // identifier containing "rand": silent

int silent(int operand) {
  // ds-lint: allow(no-ambient-rng) fixture: a justified suppression must silence the rule
  const int suppressed = rand();
  // A comment mentioning rand() and mt19937 must stay silent, as must
  // the string below.
  const char* prose = "call rand() and srand() here";
  (void)prose;
  return strand(operand) + suppressed;
}

}  // namespace fixture
