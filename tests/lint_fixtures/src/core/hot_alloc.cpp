// Fixture: no-alloc-markers. Allocation markers inside a DS_HOT region
// are flagged; the same constructs outside the region, and a justified
// amortised-growth line inside it, stay silent.
#include <memory>
#include <vector>

#define DS_HOT_BEGIN
#define DS_HOT_END

namespace fixture {

std::vector<int> cold_setup() {
  std::vector<int> warmup;
  warmup.reserve(64);            // outside DS_HOT: silent
  warmup.push_back(1);           // outside DS_HOT: silent
  auto scratch = new int(7);     // outside DS_HOT: silent
  delete scratch;
  return warmup;
}

DS_HOT_BEGIN
int hot_loop(std::vector<int>& buffer) {
  auto leak = std::make_unique<int>(3);  // finding: make_unique
  buffer.push_back(*leak);               // finding: push_back
  buffer.resize(buffer.size() + 1);      // finding: resize
  int* raw = new int(9);                 // finding: new
  const int total = buffer.back() + *raw;
  delete raw;
  // ds-lint: allow(no-alloc-markers) fixture: justified amortised growth stays silent
  buffer.push_back(total);
  const int renewed = total;  // identifier containing "new": silent
  return renewed;
}
DS_HOT_END

}  // namespace fixture
