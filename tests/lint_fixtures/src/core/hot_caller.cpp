// Fixture: the DS_HOT region below is locally clean — the allocation
// it reaches sits two calls away in hw/buffer_ref.cpp. Only the
// whole-program reachability pass connects the dots. cold_step is the
// near-miss entry point: same helper shape, no region, no finding.
#include "hw/buffer_ref.h"

#define DS_HOT_BEGIN
#define DS_HOT_END

namespace distscroll::core {

DS_HOT_BEGIN
int warm_step(hw::BufferRef& ref) {
  return hw::refresh_buffers(ref);
}
DS_HOT_END

int cold_step(hw::BufferRef& ref) { return hw::cold_refresh(ref); }

}  // namespace distscroll::core
