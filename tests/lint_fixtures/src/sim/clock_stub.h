// Fixture support header: downward-edge target (see study/downward.h).
// Clean on its own — simulated time only, no host clock.
#pragma once

namespace distscroll::sim {
struct ClockStub {
  double now_s = 0.0;
};
}  // namespace distscroll::sim
