// Fixture: include-layering upward edge. sim (L1) must not depend on
// study (L8); this include is rejected against the declared layer
// table even though the file graph itself is acyclic.
#pragma once

#include "study/tasks.h"

namespace distscroll::sim {
struct UpwardCoupling {
  study::TaskTag tag{};
};
}  // namespace distscroll::sim
