// Fixture: no-wallclock. Expected findings are listed in expected.txt;
// the suppressed and member-call uses below must stay silent.
#include <chrono>
#include <ctime>

namespace fixture {

struct FakeClock {
  double time() const { return 0.0; }   // member named time(): not a violation
  double clock() const { return 0.0; }  // member named clock(): not a violation
};

double violations() {
  auto a = std::chrono::system_clock::now();           // finding: system_clock
  auto b = std::chrono::steady_clock::now();           // finding: steady_clock
  auto c = std::chrono::high_resolution_clock::now();  // finding
  auto t = std::time(nullptr);                         // finding: std::time(
  auto k = clock();                                    // finding: bare clock(
  long rss = getrusage(0, nullptr);                    // finding: getrusage
  (void)a;
  (void)b;
  (void)c;
  return static_cast<double>(t) + static_cast<double>(k) + static_cast<double>(rss);
}

double silent() {
  FakeClock fake;
  const double member = fake.time() + fake.clock();  // member calls: silent
  // The string and the comment below must never fire:
  const char* prose = "std::chrono::system_clock::now() in a string";
  // a comment mentioning steady_clock stays silent too
  // ds-lint: allow(no-wallclock) fixture: pin that a justified suppression silences the rule
  auto suppressed = std::chrono::system_clock::now();
  (void)prose;
  (void)suppressed;
  return member;
}

}  // namespace fixture
