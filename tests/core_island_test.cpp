// Tests for the paper's core mapping machinery: sensor curve, island
// construction (Section 4.2), and calibration.
#include <gtest/gtest.h>

#include <cmath>

#include "core/calibration.h"
#include "core/island_mapper.h"
#include "core/sensor_curve.h"
#include "sensors/gp2d120.h"

namespace distscroll::core {
namespace {

// --- sensor curve ------------------------------------------------------------

TEST(SensorCurve, ForwardInverseRoundTrip) {
  SensorCurve curve;
  for (double d = 4.0; d <= 30.0; d += 0.5) {
    const auto v = curve.volts_at(util::Centimeters{d});
    EXPECT_NEAR(curve.distance_at(v).value, d, 1e-9) << d;
  }
}

TEST(SensorCurve, CountsRoundTripWithinQuantisation) {
  SensorCurve curve;
  for (double d = 4.0; d <= 25.0; d += 1.0) {
    const auto counts = curve.counts_at(util::Centimeters{d});
    // One LSB of counts error translates to bounded distance error.
    EXPECT_NEAR(curve.distance_at(counts).value, d, 0.5) << d;
  }
}

TEST(SensorCurve, CountsDecreaseWithDistance) {
  SensorCurve curve;
  std::uint16_t prev = 1024;
  for (double d = 4.0; d <= 30.0; d += 1.0) {
    const auto counts = curve.counts_at(util::Centimeters{d});
    EXPECT_LT(counts.value, prev);
    prev = counts.value;
  }
}

// --- island construction (the paper's algorithm) -------------------------------

struct IslandCase {
  std::size_t entries;
  double coverage;
};

class IslandProperty : public ::testing::TestWithParam<IslandCase> {
 protected:
  SensorCurve curve{};
  IslandMapper make() const {
    IslandMapper::Config config;
    config.coverage = GetParam().coverage;
    return IslandMapper(curve, GetParam().entries, config);
  }
};

TEST_P(IslandProperty, IslandsAreDisjointAndOrdered) {
  const IslandMapper mapper = make();
  const auto& islands = mapper.islands();
  ASSERT_EQ(islands.size(), GetParam().entries);
  for (std::size_t i = 0; i < islands.size(); ++i) {
    if (islands[i].low <= islands[i].high) {  // non-empty island
      EXPECT_LE(islands[i].low, islands[i].centre);
      EXPECT_LE(islands[i].centre, islands[i].high);
    }
    if (i + 1 < islands.size()) {
      // Entry i is nearer (higher counts) than entry i+1: intervals
      // never overlap, even after integer quantisation.
      EXPECT_GT(islands[i].low, islands[i + 1].high);
    }
  }
}

TEST_P(IslandProperty, LookupInvertsCentres) {
  const IslandMapper mapper = make();
  for (std::size_t i = 0; i < mapper.entries(); ++i) {
    const auto& island = mapper.islands()[i];
    if (island.low > island.high) continue;  // unresolvable entry
    const auto hit = mapper.lookup(util::AdcCounts{island.centre});
    ASSERT_TRUE(hit.has_value()) << i;
    EXPECT_EQ(*hit, i);
  }
}

TEST_P(IslandProperty, CentresEquallySpacedInDistance) {
  // "the perception that the entries are equally spaced on the complete
  // scrollable distance".
  const IslandMapper mapper = make();
  const double span = mapper.config().far.value - mapper.config().near.value;
  const double slot = span / static_cast<double>(mapper.entries());
  for (std::size_t i = 0; i + 1 < mapper.entries(); ++i) {
    const double gap = mapper.centre_distance(i + 1).value - mapper.centre_distance(i).value;
    EXPECT_NEAR(gap, slot, 1e-9);
  }
}

TEST_P(IslandProperty, DeadZonesExistBetweenIslands) {
  const IslandMapper mapper = make();
  if (GetParam().coverage >= 1.0) return;
  int gaps_found = 0;
  for (std::size_t i = 0; i + 1 < mapper.entries(); ++i) {
    const int gap_lo = mapper.islands()[i + 1].high + 1;
    const int gap_hi = mapper.islands()[i].low - 1;
    if (gap_lo <= gap_hi) {
      const auto mid = static_cast<std::uint16_t>((gap_lo + gap_hi) / 2);
      EXPECT_FALSE(mapper.lookup(util::AdcCounts{mid}).has_value());
      ++gaps_found;
    }
  }
  EXPECT_GT(gaps_found, 0);
}

TEST_P(IslandProperty, CoverageFractionTracksConfig) {
  const IslandMapper mapper = make();
  // The realised coverage should be within quantisation slop of the
  // requested one (wide tolerance for few-count islands).
  EXPECT_NEAR(mapper.coverage_fraction(), GetParam().coverage,
              GetParam().entries > 20 ? 0.25 : 0.12);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, IslandProperty,
    ::testing::Values(IslandCase{3, 0.6}, IslandCase{5, 0.6}, IslandCase{10, 0.6},
                      IslandCase{20, 0.6}, IslandCase{10, 0.3}, IslandCase{10, 0.9},
                      IslandCase{26, 0.6}, IslandCase{5, 1.0}));

TEST(IslandMapper, SingleEntryCoversRange) {
  SensorCurve curve;
  IslandMapper mapper(curve, 1, {});
  const auto hit = mapper.lookup(util::AdcCounts{mapper.islands()[0].centre});
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, 0u);
}

TEST(IslandMapper, NonLinearIslandWidthsInCounts) {
  // Near islands (high counts) must be wider in count space than far
  // islands — the direct consequence of the hyperbolic curve that the
  // paper's non-linear mapping exists to compensate.
  SensorCurve curve;
  IslandMapper mapper(curve, 10, {});
  const auto& islands = mapper.islands();
  const int near_width = islands.front().high - islands.front().low;
  const int far_width = islands.back().high - islands.back().low;
  EXPECT_GT(near_width, 3 * far_width);
}

TEST(IslandMapper, OutOfRangeCountsHitNothing) {
  SensorCurve curve;
  IslandMapper mapper(curve, 10, {});
  EXPECT_FALSE(mapper.lookup(util::AdcCounts{1023}).has_value());  // too close
  EXPECT_FALSE(mapper.lookup(util::AdcCounts{0}).has_value());     // too far
}

TEST(IslandMapper, SelectKeepsCurrentInGaps) {
  // "No selection or change happens if the device is held in a distance
  // between two of those islands."
  SensorCurve curve;
  IslandMapper mapper(curve, 5, {});
  const auto first = mapper.select(util::AdcCounts{mapper.islands()[2].centre}, std::nullopt);
  ASSERT_EQ(first, 2u);
  // A count in the gap between islands 2 and 3:
  const auto gap_counts =
      static_cast<std::uint16_t>((mapper.islands()[2].low + mapper.islands()[3].high) / 2);
  EXPECT_EQ(mapper.select(util::AdcCounts{gap_counts}, first), 2u);
}

TEST(IslandMapper, HysteresisResistsBoundaryFlicker) {
  SensorCurve curve;
  IslandMapper::Config config;
  config.hysteresis_counts = 6;
  IslandMapper mapper(curve, 5, config);
  const auto& islands = mapper.islands();
  auto current = mapper.select(util::AdcCounts{islands[2].centre}, std::nullopt);
  ASSERT_EQ(current, 2u);
  // Nudge just past the island's low bound into the gap, then slightly
  // into island 3's territory but within hysteresis: selection holds.
  const auto jitter = static_cast<std::uint16_t>(islands[2].low - 3);
  EXPECT_EQ(mapper.select(util::AdcCounts{jitter}, current), 2u);
  // Far beyond hysteresis: selection moves.
  const auto firmly_in_3 = islands[3].centre;
  EXPECT_EQ(mapper.select(util::AdcCounts{firmly_in_3}, current), 3u);
}

TEST(IslandMapper, LookupCostConstantAndBelowSearch) {
  // The LUT made the per-sample cost a constant flash fetch; the
  // reference binary search's cost still grows with the entry count.
  SensorCurve curve;
  IslandMapper small(curve, 4, {});
  IslandMapper large(curve, 64, {});
  EXPECT_EQ(small.lookup_cost_cycles(), large.lookup_cost_cycles());
  EXPECT_LT(small.search_cost_cycles(), large.search_cost_cycles());
  EXPECT_LE(large.search_cost_cycles(), 12 + 6 * 14);  // log2(64)=6 probes
  EXPECT_LT(large.lookup_cost_cycles(), small.search_cost_cycles());
}

TEST(IslandMapper, ExhaustiveLookupConsistency) {
  // Property: for every possible ADC count, lookup either misses or
  // returns the unique island containing it.
  SensorCurve curve;
  IslandMapper mapper(curve, 13, {});
  for (int c = 0; c <= 1023; ++c) {
    const auto hit = mapper.lookup(util::AdcCounts{static_cast<std::uint16_t>(c)});
    int containing = -1;
    for (std::size_t i = 0; i < mapper.entries(); ++i) {
      const auto& island = mapper.islands()[i];
      if (c >= island.low && c <= island.high) {
        containing = static_cast<int>(i);
        break;
      }
    }
    if (containing < 0) {
      EXPECT_FALSE(hit.has_value()) << "count " << c;
    } else {
      ASSERT_TRUE(hit.has_value()) << "count " << c;
      EXPECT_EQ(static_cast<int>(*hit), containing) << "count " << c;
    }
  }
}

// --- calibration -----------------------------------------------------------------

TEST(Calibration, RecoversSensorCurveThroughAdc) {
  sensors::Gp2d120Model::Config sensor_config;
  sensor_config.output_noise_volts = 0.004;
  sensors::Gp2d120Model sensor(sensor_config, sim::Rng(5));
  double t = 0.0;
  auto read = [&](util::Centimeters d) {
    t += 0.05;
    const double v = sensor.output(d, util::Seconds{t}).value;
    return util::AdcCounts{static_cast<std::uint16_t>(v / 5.0 * 1023.0 + 0.5)};
  };
  const auto samples = sweep(util::Centimeters{4.0}, util::Centimeters{30.0}, 1.0, read, 4);
  const auto result = calibrate(samples);
  EXPECT_GT(result.r_squared, 0.995);          // Fig. 4: "idealized curve fitted"
  EXPECT_GT(result.log_log_r_squared, 0.97);   // Fig. 5: "nearly perfectly fit"
  EXPECT_NEAR(result.curve.params().a, 10.4, 1.5);
  // Usable range covers the paper's 4..30 cm.
  EXPECT_LE(result.usable_near.value, 4.0);
  EXPECT_GE(result.usable_far.value, 25.0);
}

TEST(Calibration, ExcludesNonMonotonicBranch) {
  // Samples below 4 cm lie on the rising branch; including them would
  // wreck the fit, so calibrate() must ignore them.
  sensors::Gp2d120Model::Config sensor_config;
  sensor_config.output_noise_volts = 0.0;
  sensors::Gp2d120Model sensor(sensor_config, sim::Rng(6));
  double t = 0.0;
  auto read = [&](util::Centimeters d) {
    t += 0.05;
    const double v = sensor.output(d, util::Seconds{t}).value;
    return util::AdcCounts{static_cast<std::uint16_t>(v / 5.0 * 1023.0 + 0.5)};
  };
  const auto samples = sweep(util::Centimeters{0.5}, util::Centimeters{30.0}, 0.5, read, 2);
  const auto result = calibrate(samples);
  EXPECT_GT(result.r_squared, 0.995);
}

TEST(IslandMapper, LutMatchesReferenceSearchExhaustively) {
  // Property (perf-refactor guard): the O(1) flash LUT and the reference
  // binary search are the same function on every representable ADC count,
  // across entry counts 2..64 (odd/even, powers of two, and the 26-entry
  // paper menu), coverages (touching islands, paper default, sparse), and
  // hysteresis settings. Large entry counts squeeze far islands into
  // empty (low > high) intervals, so those cases are inside the grid.
  SensorCurve curve;
  const double coverages[] = {0.3, 0.6, 1.0};
  const std::uint16_t hysteresis[] = {0, 6};
  // far = 30 is the paper's predicted range; far = 80 is the long-menu
  // regime where quantisation squeezes distant islands into empty
  // (low > high) intervals.
  const double fars[] = {30.0, 80.0};
  bool saw_empty = false;
  for (std::size_t entries = 2; entries <= 64; ++entries) {
    for (double coverage : coverages) {
      for (std::uint16_t h : hysteresis) {
        for (double far : fars) {
          IslandMapper::Config config;
          config.coverage = coverage;
          config.hysteresis_counts = h;
          config.far = util::Centimeters{far};
          IslandMapper mapper(curve, entries, config);
          for (const auto& island : mapper.islands()) saw_empty |= island.low > island.high;
          for (std::uint32_t c = 0; c < IslandMapper::kLutSize; ++c) {
            const util::AdcCounts counts{static_cast<std::uint16_t>(c)};
            ASSERT_EQ(mapper.lookup_lut(counts), mapper.lookup(counts))
                << "entries=" << entries << " coverage=" << coverage << " h=" << h
                << " far=" << far << " counts=" << c;
          }
          // Out-of-table counts (ADC clamps at 1023, but the API accepts
          // uint16_t): both implementations miss.
          EXPECT_EQ(mapper.lookup_lut(util::AdcCounts{1024}), std::nullopt);
          EXPECT_EQ(mapper.lookup(util::AdcCounts{1024}),
                    mapper.lookup_lut(util::AdcCounts{1024}));
        }
      }
    }
  }
  // Anti-vacuity: the grid genuinely exercised empty islands.
  EXPECT_TRUE(saw_empty);
}

TEST(IslandMapper, RebuildInPlaceMatchesFreshConstruction) {
  // Session-reuse contract: rebuilding a mapper in place (the pooled
  // path) yields byte-for-byte the same table as constructing fresh.
  SensorCurve curve;
  IslandMapper reused(curve, 26, {});
  const std::size_t levels[] = {3, 26, 7, 64, 2, 26};
  for (std::size_t entries : levels) {
    IslandMapper::Config config;
    config.coverage = entries % 2 ? 0.6 : 1.0;
    reused.rebuild(curve, entries, config);
    IslandMapper fresh(curve, entries, config);
    ASSERT_EQ(reused.entries(), fresh.entries());
    for (std::size_t i = 0; i < fresh.entries(); ++i) {
      EXPECT_EQ(reused.islands()[i].low, fresh.islands()[i].low);
      EXPECT_EQ(reused.islands()[i].high, fresh.islands()[i].high);
      EXPECT_EQ(reused.islands()[i].centre, fresh.islands()[i].centre);
    }
    for (std::uint32_t c = 0; c < IslandMapper::kLutSize; ++c) {
      const util::AdcCounts counts{static_cast<std::uint16_t>(c)};
      ASSERT_EQ(reused.lookup_lut(counts), fresh.lookup_lut(counts));
    }
  }
}

TEST(Calibration, SweepAveragesRepeats) {
  int calls = 0;
  auto read = [&](util::Centimeters) {
    ++calls;
    return util::AdcCounts{static_cast<std::uint16_t>(500 + (calls % 2 ? 4 : -4))};
  };
  const auto samples = sweep(util::Centimeters{5.0}, util::Centimeters{7.0}, 1.0, read, 8);
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(calls, 24);
  for (const auto& s : samples) EXPECT_EQ(s.counts.value, 500);
}

}  // namespace
}  // namespace distscroll::core
