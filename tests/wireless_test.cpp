// Unit tests for telemetry framing, the lossy RF link and the host-side
// logger — the end-to-end argument in miniature: corruption on the wire,
// CRC rejection at the host.
#include <gtest/gtest.h>

#include "hw/uart.h"
#include "sim/event_queue.h"
#include "wireless/host_logger.h"
#include "wireless/packet.h"
#include "wireless/rf_link.h"

namespace distscroll::wireless {
namespace {

// --- framing ----------------------------------------------------------------

TEST(Packet, EncodeDecodeRoundTrip) {
  Frame frame;
  frame.type = FrameType::ButtonEvent;
  frame.seq = 42;
  frame.payload = {1, 2, 3, 4};
  FrameDecoder decoder;
  std::optional<Frame> decoded;
  for (std::uint8_t byte : encode(frame)) decoded = decoder.feed(byte);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, frame);
  EXPECT_EQ(decoder.frames_decoded(), 1u);
}

TEST(Packet, EmptyPayloadFrame) {
  Frame frame;
  frame.type = FrameType::Heartbeat;
  frame.seq = 0;
  FrameDecoder decoder;
  std::optional<Frame> decoded;
  for (std::uint8_t byte : encode(frame)) decoded = decoder.feed(byte);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->payload.empty());
}

TEST(Packet, CorruptedByteRejectedByCrc) {
  Frame frame;
  frame.type = FrameType::State;
  frame.payload = {9, 9, 9};
  auto wire = encode(frame);
  wire[4] ^= 0x10;  // flip a payload bit
  FrameDecoder decoder;
  std::optional<Frame> decoded;
  for (std::uint8_t byte : wire) decoded = decoder.feed(byte);
  EXPECT_FALSE(decoded.has_value());
  EXPECT_EQ(decoder.crc_errors(), 1u);
}

TEST(Packet, DecoderResynchronisesAfterGarbage) {
  FrameDecoder decoder;
  // Garbage, then a valid frame.
  for (std::uint8_t b : {0x12, 0x00, 0xFF}) decoder.feed(b);
  Frame frame;
  frame.type = FrameType::Debug;
  frame.seq = 7;
  frame.payload = {0xAB};
  std::optional<Frame> decoded;
  for (std::uint8_t byte : encode(frame)) decoded = decoder.feed(byte);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->seq, 7);
}

TEST(Packet, BogusLengthCountsFramingError) {
  FrameDecoder decoder;
  decoder.feed(kSyncByte);
  decoder.feed(0xFF);  // length way beyond kMaxPayload
  EXPECT_EQ(decoder.framing_errors(), 1u);
  // Still decodes a following good frame.
  Frame frame;
  frame.payload = {1};
  std::optional<Frame> decoded;
  for (std::uint8_t byte : encode(frame)) decoded = decoder.feed(byte);
  EXPECT_TRUE(decoded.has_value());
}

TEST(Packet, BackToBackFrames) {
  FrameDecoder decoder;
  int decoded = 0;
  for (int i = 0; i < 10; ++i) {
    Frame frame;
    frame.seq = static_cast<std::uint8_t>(i);
    frame.payload = {static_cast<std::uint8_t>(i)};
    for (std::uint8_t byte : encode(frame)) {
      if (decoder.feed(byte)) ++decoded;
    }
  }
  EXPECT_EQ(decoded, 10);
}

TEST(StateReport, PackUnpackRoundTrip) {
  StateReport report;
  report.adc_counts = 789;
  report.menu_depth = 2;
  report.cursor_index = 5;
  report.level_size = 9;
  report.buttons = 0b101;
  const auto unpacked = StateReport::unpack(report.pack());
  ASSERT_TRUE(unpacked.has_value());
  EXPECT_EQ(unpacked->adc_counts, 789);
  EXPECT_EQ(unpacked->menu_depth, 2);
  EXPECT_EQ(unpacked->cursor_index, 5);
  EXPECT_EQ(unpacked->level_size, 9);
  EXPECT_EQ(unpacked->buttons, 0b101);
}

TEST(StateReport, UnpackRejectsWrongSize) {
  std::vector<std::uint8_t> wrong(5);
  EXPECT_FALSE(StateReport::unpack(wrong).has_value());
}

// --- RF link + host logger ---------------------------------------------------------

struct LinkFixture : ::testing::Test {
  sim::EventQueue queue;
  hw::Uart uart;

  void send_frames(RfLink& link, HostLogger& logger, int count) {
    link.set_host_sink([&](std::uint8_t byte) { logger.on_byte(byte); });
    link.start();
    for (int i = 0; i < count; ++i) {
      Frame frame;
      frame.type = FrameType::State;
      frame.seq = static_cast<std::uint8_t>(i);
      StateReport report;
      report.adc_counts = static_cast<std::uint16_t>(100 + i);
      frame.payload = report.pack();
      // Pace transmissions so the 64-byte UART FIFO never overflows.
      for (std::uint8_t byte : encode(frame)) uart.transmit(byte);
      queue.run_until(util::Seconds{queue.now().value + 0.01});
    }
    queue.run_until(util::Seconds{queue.now().value + 0.5});
  }
};

TEST_F(LinkFixture, CleanLinkDeliversEverything) {
  RfLink::Config config;
  config.byte_loss_probability = 0.0;
  config.bit_flip_probability = 0.0;
  RfLink link(config, uart, queue, sim::Rng(1));
  HostLogger logger(queue);
  send_frames(link, logger, 20);
  EXPECT_EQ(logger.frames_received(), 20u);
  EXPECT_EQ(logger.crc_errors(), 0u);
  EXPECT_EQ(logger.sequence_gaps(), 0u);
  ASSERT_TRUE(logger.last_state().has_value());
  EXPECT_EQ(logger.last_state()->adc_counts, 119);
}

TEST_F(LinkFixture, LatencyDelaysDelivery) {
  RfLink::Config config;
  config.byte_loss_probability = 0.0;
  config.bit_flip_probability = 0.0;
  config.latency = util::Seconds{0.050};
  RfLink link(config, uart, queue, sim::Rng(2));
  HostLogger logger(queue);
  link.set_host_sink([&](std::uint8_t byte) { logger.on_byte(byte); });
  link.start();
  Frame frame;
  for (std::uint8_t byte : encode(frame)) uart.transmit(byte);
  queue.run_until(util::Seconds{0.045});
  EXPECT_EQ(logger.frames_received(), 0u);  // still in flight
  queue.run_until(util::Seconds{0.3});
  EXPECT_EQ(logger.frames_received(), 1u);
}

TEST_F(LinkFixture, LossyLinkDropsFramesButNeverCorruptsThem) {
  RfLink::Config config;
  config.byte_loss_probability = 0.02;
  config.bit_flip_probability = 0.01;
  RfLink link(config, uart, queue, sim::Rng(3));
  HostLogger logger(queue);
  send_frames(link, logger, 200);
  EXPECT_LT(logger.frames_received(), 200u);  // some lost
  EXPECT_GT(logger.frames_received(), 100u);  // most survive
  // Every delivered state frame carries a valid payload.
  for (const auto& event : logger.events()) {
    if (event.frame.type == FrameType::State) {
      const auto report = StateReport::unpack(event.frame.payload);
      ASSERT_TRUE(report.has_value());
      EXPECT_GE(report->adc_counts, 100);
      EXPECT_LT(report->adc_counts, 300);
    }
  }
  // Gaps observed match the loss.
  EXPECT_GT(logger.sequence_gaps() + logger.crc_errors(), 0u);
}

TEST_F(LinkFixture, LinkCountersConsistent) {
  RfLink::Config config;
  config.byte_loss_probability = 0.05;
  RfLink link(config, uart, queue, sim::Rng(4));
  HostLogger logger(queue);
  send_frames(link, logger, 50);
  EXPECT_GT(link.bytes_sent(), 0u);
  EXPECT_GT(link.bytes_lost(), 0u);
  EXPECT_LT(link.bytes_lost(), link.bytes_sent());
}

TEST_F(LinkFixture, StopHaltsPumping) {
  RfLink::Config config;
  config.byte_loss_probability = 0.0;
  config.bit_flip_probability = 0.0;
  RfLink link(config, uart, queue, sim::Rng(5));
  HostLogger logger(queue);
  link.set_host_sink([&](std::uint8_t byte) { logger.on_byte(byte); });
  link.start();
  link.stop();
  Frame frame;
  for (std::uint8_t byte : encode(frame)) uart.transmit(byte);
  queue.run_until(util::Seconds{1.0});
  EXPECT_EQ(logger.frames_received(), 0u);
}

}  // namespace
}  // namespace distscroll::wireless
