// Unit tests for telemetry framing, the lossy RF link, the ARQ layer
// and the host-side logger — the end-to-end argument in miniature:
// corruption on the wire, CRC rejection at the host, retransmission
// until delivery.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "hw/uart.h"
#include "sim/event_queue.h"
#include "wireless/arq.h"
#include "wireless/host_logger.h"
#include "wireless/link_stats.h"
#include "wireless/packet.h"
#include "wireless/rf_link.h"

namespace distscroll::wireless {
namespace {

// --- framing ----------------------------------------------------------------

TEST(Packet, EncodeDecodeRoundTrip) {
  Frame frame;
  frame.type = FrameType::ButtonEvent;
  frame.seq = 42;
  frame.payload = {1, 2, 3, 4};
  FrameDecoder decoder;
  std::optional<Frame> decoded;
  for (std::uint8_t byte : encode(frame)) decoded = decoder.feed(byte);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, frame);
  EXPECT_EQ(decoder.frames_decoded(), 1u);
}

TEST(Packet, EmptyPayloadFrame) {
  Frame frame;
  frame.type = FrameType::Heartbeat;
  frame.seq = 0;
  FrameDecoder decoder;
  std::optional<Frame> decoded;
  for (std::uint8_t byte : encode(frame)) decoded = decoder.feed(byte);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->payload.empty());
}

TEST(Packet, CorruptedByteRejectedByCrc) {
  Frame frame;
  frame.type = FrameType::State;
  frame.payload = {9, 9, 9};
  auto wire = encode(frame);
  wire[4] ^= 0x10;  // flip a payload bit
  FrameDecoder decoder;
  std::optional<Frame> decoded;
  for (std::uint8_t byte : wire) decoded = decoder.feed(byte);
  EXPECT_FALSE(decoded.has_value());
  EXPECT_EQ(decoder.crc_errors(), 1u);
}

TEST(Packet, DecoderResynchronisesAfterGarbage) {
  FrameDecoder decoder;
  // Garbage, then a valid frame.
  for (std::uint8_t b : {0x12, 0x00, 0xFF}) decoder.feed(b);
  Frame frame;
  frame.type = FrameType::Debug;
  frame.seq = 7;
  frame.payload = {0xAB};
  std::optional<Frame> decoded;
  for (std::uint8_t byte : encode(frame)) decoded = decoder.feed(byte);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->seq, 7);
}

TEST(Packet, BogusLengthCountsFramingError) {
  FrameDecoder decoder;
  decoder.feed(kSyncByte);
  decoder.feed(0xFF);  // length way beyond kMaxPayload
  EXPECT_EQ(decoder.framing_errors(), 1u);
  // Still decodes a following good frame.
  Frame frame;
  frame.payload = {1};
  std::optional<Frame> decoded;
  for (std::uint8_t byte : encode(frame)) decoded = decoder.feed(byte);
  EXPECT_TRUE(decoded.has_value());
}

TEST(Packet, BackToBackFrames) {
  FrameDecoder decoder;
  int decoded = 0;
  for (int i = 0; i < 10; ++i) {
    Frame frame;
    frame.seq = static_cast<std::uint8_t>(i);
    frame.payload = {static_cast<std::uint8_t>(i)};
    for (std::uint8_t byte : encode(frame)) {
      if (decoder.feed(byte)) ++decoded;
    }
  }
  EXPECT_EQ(decoded, 10);
}

// --- decoder resync ---------------------------------------------------------

std::vector<Frame> make_stream_frames() {
  std::vector<Frame> frames;
  for (int i = 0; i < 6; ++i) {
    Frame frame;
    frame.type = (i % 2 == 0) ? FrameType::State : FrameType::ButtonEvent;
    frame.seq = static_cast<std::uint8_t>(i);
    // Payloads deliberately contain kSyncByte to stress phantom-sync
    // rescans.
    frame.payload = {static_cast<std::uint8_t>(i), kSyncByte,
                     static_cast<std::uint8_t>(0xF0 + i)};
    frames.push_back(std::move(frame));
  }
  return frames;
}

std::vector<std::uint8_t> wire_of(const std::vector<Frame>& frames) {
  std::vector<std::uint8_t> wire;
  for (const auto& frame : frames) {
    const auto bytes = encode(frame);
    wire.insert(wire.end(), bytes.begin(), bytes.end());
  }
  return wire;
}

/// Feeds a byte stream, flushes, returns everything decoded.
std::vector<Frame> decode_all(FrameDecoder& decoder, const std::vector<std::uint8_t>& wire) {
  std::vector<Frame> out;
  for (std::uint8_t byte : wire) {
    for (auto f = decoder.feed(byte); f; f = decoder.poll()) out.push_back(std::move(*f));
  }
  for (auto f = decoder.flush(); f; f = decoder.poll()) out.push_back(std::move(*f));
  return out;
}

// The headline regression: a bit-flipped LEN used to swallow the next
// frame's sync byte, so ONE corrupted byte cost TWO OR MORE frames. The
// decoder must rescan the consumed window and recover everything behind
// the corrupted frame.
TEST(Packet, CorruptedLenLosesOnlyTheFrameItHit) {
  const auto frames = make_stream_frames();
  auto wire = wire_of(frames);
  // Byte 1 of the stream is frame 0's LEN (5): flip it to 12, which
  // swallows frame 1's sync into frame 0's phantom body.
  ASSERT_EQ(wire[1], 5);
  wire[1] = 12;
  FrameDecoder decoder;
  const auto decoded = decode_all(decoder, wire);
  // Frames 1..5 all survive; only frame 0 is lost.
  ASSERT_EQ(decoded.size(), frames.size() - 1);
  for (std::size_t i = 0; i < decoded.size(); ++i) {
    EXPECT_EQ(decoded[i], frames[i + 1]) << "frame " << i + 1 << " mangled";
  }
  EXPECT_GE(decoder.crc_errors() + decoder.framing_errors(), 1u);
  EXPECT_GE(decoder.resyncs(), 1u);
}

// The property the ISSUE demands: for a valid multi-frame stream,
// corrupting ANY single byte (several corruption patterns) loses at most
// one frame, and the decoder never emits a frame that was not sent.
TEST(Packet, AnySingleByteCorruptionLosesAtMostOneFrame) {
  const auto frames = make_stream_frames();
  const auto clean_wire = wire_of(frames);
  const std::uint8_t patterns[] = {0x01, 0x80, 0xFF};  // XOR masks
  const std::uint8_t overwrites[] = {0x00, kSyncByte};
  for (std::size_t pos = 0; pos < clean_wire.size(); ++pos) {
    std::vector<std::uint8_t> mutations;
    for (std::uint8_t m : patterns) mutations.push_back(clean_wire[pos] ^ m);
    for (std::uint8_t v : overwrites) {
      if (v != clean_wire[pos]) mutations.push_back(v);
    }
    for (std::uint8_t mutated : mutations) {
      auto wire = clean_wire;
      wire[pos] = mutated;
      FrameDecoder decoder;
      const auto decoded = decode_all(decoder, wire);
      // Count originals recovered (each at most once, in order).
      std::size_t matched = 0;
      std::size_t garbage = 0;
      std::size_t next = 0;
      for (const auto& frame : decoded) {
        const auto it = std::find(frames.begin() + static_cast<long>(next), frames.end(), frame);
        if (it != frames.end()) {
          ++matched;
          next = static_cast<std::size_t>(it - frames.begin()) + 1;
        } else {
          ++garbage;
        }
      }
      EXPECT_GE(matched, frames.size() - 1)
          << "byte " << pos << " -> " << static_cast<int>(mutated) << " lost more than one frame";
      EXPECT_EQ(garbage, 0u) << "byte " << pos << " -> " << static_cast<int>(mutated)
                             << " produced a frame that was never sent";
      // Counter reconciliation: every frame that went missing left a
      // trace in the error counters (or the flush truncation did).
      if (matched < frames.size()) {
        EXPECT_GE(decoder.crc_errors() + decoder.framing_errors(), 1u)
            << "byte " << pos << ": a frame vanished without any error counted";
      }
      EXPECT_EQ(decoder.frames_decoded(), decoded.size());
    }
  }
}

TEST(Packet, UnknownFrameTypeCountsFramingErrorAndIsNotDelivered) {
  Frame frame;
  frame.type = FrameType::State;
  frame.payload = {1, 2, 3};
  auto wire = encode(frame);
  wire[2] = 0x7E;  // not a known type; CRC now fails too, but the type
                   // check fires first and counts a framing error
  FrameDecoder decoder;
  std::optional<Frame> decoded;
  for (std::uint8_t byte : wire) {
    if (auto f = decoder.feed(byte)) decoded = f;
  }
  EXPECT_FALSE(decoded.has_value());
  EXPECT_EQ(decoder.framing_errors(), 1u);
  EXPECT_EQ(decoder.crc_errors(), 0u);
  // A valid frame still decodes afterwards.
  Frame good;
  good.payload = {9};
  for (std::uint8_t byte : encode(good)) {
    if (auto f = decoder.feed(byte)) decoded = f;
  }
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, good);
}

TEST(Packet, FlushRecoversFrameWedgedBehindTruncatedPartial) {
  Frame frame;
  frame.type = FrameType::Debug;
  frame.seq = 3;
  frame.payload = {0x42};
  FrameDecoder decoder;
  // A sync + huge-but-valid LEN that will never complete, swallowing the
  // real frame that follows.
  decoder.feed(kSyncByte);
  decoder.feed(static_cast<std::uint8_t>(2 + kMaxPayload));
  decoder.feed(static_cast<std::uint8_t>(FrameType::Debug));
  std::optional<Frame> decoded;
  for (std::uint8_t byte : encode(frame)) {
    if (auto f = decoder.feed(byte)) decoded = f;
  }
  EXPECT_FALSE(decoded.has_value());  // wedged in the phantom body
  decoded = decoder.flush();
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, frame);
  EXPECT_GE(decoder.framing_errors(), 1u);  // the truncated partial
}

TEST(StateReport, PackUnpackRoundTrip) {
  StateReport report;
  report.adc_counts = 789;
  report.menu_depth = 2;
  report.cursor_index = 5;
  report.level_size = 9;
  report.buttons = 0b101;
  const auto unpacked = StateReport::unpack(report.pack());
  ASSERT_TRUE(unpacked.has_value());
  EXPECT_EQ(unpacked->adc_counts, 789);
  EXPECT_EQ(unpacked->menu_depth, 2);
  EXPECT_EQ(unpacked->cursor_index, 5);
  EXPECT_EQ(unpacked->level_size, 9);
  EXPECT_EQ(unpacked->buttons, 0b101);
}

TEST(StateReport, UnpackRejectsWrongSize) {
  std::vector<std::uint8_t> wrong(5);
  EXPECT_FALSE(StateReport::unpack(wrong).has_value());
}

// --- RF link + host logger ---------------------------------------------------------

struct LinkFixture : ::testing::Test {
  sim::EventQueue queue;
  hw::Uart uart;

  void send_frames(RfLink& link, HostLogger& logger, int count) {
    link.set_host_sink([&](std::uint8_t byte) { logger.on_byte(byte); });
    link.start();
    for (int i = 0; i < count; ++i) {
      Frame frame;
      frame.type = FrameType::State;
      frame.seq = static_cast<std::uint8_t>(i);
      StateReport report;
      report.adc_counts = static_cast<std::uint16_t>(100 + i);
      frame.payload = report.pack();
      // Pace transmissions so the 64-byte UART FIFO never overflows.
      for (std::uint8_t byte : encode(frame)) uart.transmit(byte);
      queue.run_until(util::Seconds{queue.now().value + 0.01});
    }
    queue.run_until(util::Seconds{queue.now().value + 0.5});
  }
};

TEST_F(LinkFixture, CleanLinkDeliversEverything) {
  RfLink::Config config;
  config.byte_loss_probability = 0.0;
  config.bit_flip_probability = 0.0;
  RfLink link(config, uart, queue, sim::Rng(1));
  HostLogger logger(queue);
  send_frames(link, logger, 20);
  EXPECT_EQ(logger.frames_received(), 20u);
  EXPECT_EQ(logger.crc_errors(), 0u);
  EXPECT_EQ(logger.sequence_gaps(), 0u);
  ASSERT_TRUE(logger.last_state().has_value());
  EXPECT_EQ(logger.last_state()->adc_counts, 119);
}

TEST_F(LinkFixture, LatencyDelaysDelivery) {
  RfLink::Config config;
  config.byte_loss_probability = 0.0;
  config.bit_flip_probability = 0.0;
  config.latency = util::Seconds{0.050};
  RfLink link(config, uart, queue, sim::Rng(2));
  HostLogger logger(queue);
  link.set_host_sink([&](std::uint8_t byte) { logger.on_byte(byte); });
  link.start();
  Frame frame;
  for (std::uint8_t byte : encode(frame)) uart.transmit(byte);
  queue.run_until(util::Seconds{0.045});
  EXPECT_EQ(logger.frames_received(), 0u);  // still in flight
  queue.run_until(util::Seconds{0.3});
  EXPECT_EQ(logger.frames_received(), 1u);
}

TEST_F(LinkFixture, LossyLinkDropsFramesButNeverCorruptsThem) {
  RfLink::Config config;
  config.byte_loss_probability = 0.02;
  config.bit_flip_probability = 0.01;
  RfLink link(config, uart, queue, sim::Rng(3));
  HostLogger logger(queue);
  send_frames(link, logger, 200);
  EXPECT_LT(logger.frames_received(), 200u);  // some lost
  EXPECT_GT(logger.frames_received(), 100u);  // most survive
  // Every delivered state frame carries a valid payload.
  for (const auto& event : logger.events()) {
    if (event.frame.type == FrameType::State) {
      const auto report = StateReport::unpack(event.frame.payload);
      ASSERT_TRUE(report.has_value());
      EXPECT_GE(report->adc_counts, 100);
      EXPECT_LT(report->adc_counts, 300);
    }
  }
  // Gaps observed match the loss.
  EXPECT_GT(logger.sequence_gaps() + logger.crc_errors(), 0u);
}

TEST_F(LinkFixture, LinkCountersConsistent) {
  RfLink::Config config;
  config.byte_loss_probability = 0.05;
  RfLink link(config, uart, queue, sim::Rng(4));
  HostLogger logger(queue);
  send_frames(link, logger, 50);
  EXPECT_GT(link.bytes_sent(), 0u);
  EXPECT_GT(link.bytes_lost(), 0u);
  EXPECT_LT(link.bytes_lost(), link.bytes_sent());
}

TEST_F(LinkFixture, ClearResetsSequenceTrackingForNewSession) {
  RfLink::Config config;
  config.byte_loss_probability = 0.0;
  config.bit_flip_probability = 0.0;
  RfLink link(config, uart, queue, sim::Rng(6));
  HostLogger logger(queue);
  send_frames(link, logger, 5);  // session 1 ends at seq 4
  EXPECT_EQ(logger.sequence_gaps(), 0u);
  logger.clear();
  EXPECT_TRUE(logger.events().empty());
  EXPECT_FALSE(logger.last_state().has_value());
  // Session 2 restarts its sequence numbering at 0. Before the fix the
  // stale last_seq_ (4) made this first frame count 251 phantom gaps.
  Frame frame;
  frame.type = FrameType::Heartbeat;
  frame.seq = 0;
  for (std::uint8_t byte : encode(frame)) uart.transmit(byte);
  queue.run_until(util::Seconds{queue.now().value + 0.5});
  ASSERT_EQ(logger.events().size(), 1u);
  EXPECT_EQ(logger.sequence_gaps(), 0u);
}

TEST_F(LinkFixture, InterleavedTwoDeviceStreamsKeepIndependentSequenceState) {
  // Regression: HostLogger used to keep ONE last_seq_/last_state_ for
  // the whole logger, so interleaving two devices' streams manufactured
  // phantom gaps (device A at seq 3 followed by device B at seq 0 read
  // as a 252-frame hole) and each device's state clobbered the other's.
  HostLogger logger(queue);
  for (std::uint8_t seq = 0; seq < 4; ++seq) {
    for (std::uint16_t device = 0; device < 2; ++device) {
      Frame frame;
      frame.type = FrameType::State;
      frame.seq = seq;
      StateReport report;
      report.adc_counts = static_cast<std::uint16_t>(100 * (device + 1) + seq);
      frame.payload = report.pack();
      logger.on_frame(device, frame);
    }
  }
  EXPECT_EQ(logger.frames_received(), 8u);
  EXPECT_EQ(logger.devices_seen(), 2u);
  // Per-device streams are each 0,1,2,3 — no gaps anywhere.
  EXPECT_EQ(logger.sequence_gaps(), 0u);
  EXPECT_EQ(logger.sequence_gaps(0), 0u);
  EXPECT_EQ(logger.sequence_gaps(1), 0u);
  // Each device keeps its own last state.
  ASSERT_TRUE(logger.last_state(0).has_value());
  ASSERT_TRUE(logger.last_state(1).has_value());
  EXPECT_EQ(logger.last_state(0)->adc_counts, 103);
  EXPECT_EQ(logger.last_state(1)->adc_counts, 203);
  EXPECT_EQ(logger.frames_received(0), 4u);
  EXPECT_EQ(logger.frames_received(1), 4u);
  // The no-arg accessor reports the most recent state overall.
  ASSERT_TRUE(logger.last_state().has_value());
  EXPECT_EQ(logger.last_state()->adc_counts, 203);
  // Events carry the device id.
  ASSERT_EQ(logger.events().size(), 8u);
  EXPECT_EQ(logger.events()[0].device_id, 0u);
  EXPECT_EQ(logger.events()[1].device_id, 1u);
  // A genuine gap within ONE device's stream is still detected.
  Frame gap_frame;
  gap_frame.type = FrameType::Heartbeat;
  gap_frame.seq = 6;  // device 0 jumps 3 -> 6
  logger.on_frame(0, gap_frame);
  EXPECT_EQ(logger.sequence_gaps(0), 2u);
  EXPECT_EQ(logger.sequence_gaps(1), 0u);
  EXPECT_EQ(logger.sequence_gaps(), 2u);
}

TEST(ParseWireFrame, AcceptsExactlyWhatEncodeProduces) {
  Frame frame;
  frame.type = FrameType::State;
  frame.seq = 42;
  StateReport report;
  report.adc_counts = 777;
  report.menu_depth = 2;
  report.cursor_index = 5;
  report.level_size = 9;
  report.buttons = 0b101;
  frame.payload = report.pack();
  const std::vector<std::uint8_t> wire = encode(frame);

  const auto view = parse_wire_frame(wire);
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(view->type, FrameType::State);
  EXPECT_EQ(view->seq, 42);
  const auto round = StateReport::unpack(view->payload);
  ASSERT_TRUE(round.has_value());
  EXPECT_EQ(*round, report);
}

TEST(ParseWireFrame, RejectsEverySingleBitFlip) {
  Frame frame;
  frame.type = FrameType::SelectionEvent;
  frame.seq = 7;
  frame.payload = {1, 2, 3, 4};
  const std::vector<std::uint8_t> wire = encode(frame);
  for (std::size_t bit = 0; bit < wire.size() * 8; ++bit) {
    std::vector<std::uint8_t> mutated = wire;
    mutated[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    const auto view = parse_wire_frame(mutated);
    // CRC-8 detects all single-bit errors in LEN..PAYLOAD..CRC; sync
    // corruption fails the sync check. No flip may survive.
    EXPECT_FALSE(view.has_value()) << "bit " << bit << " slipped through";
  }
}

TEST(ParseWireFrame, RejectsTruncationPaddingAndGarbage) {
  Frame frame;
  frame.payload = {9, 9};
  const std::vector<std::uint8_t> wire = encode(frame);
  for (std::size_t n = 0; n < wire.size(); ++n) {
    EXPECT_FALSE(parse_wire_frame({wire.data(), n}).has_value()) << "prefix " << n;
  }
  std::vector<std::uint8_t> padded = wire;
  padded.push_back(0x00);
  EXPECT_FALSE(parse_wire_frame(padded).has_value());
  EXPECT_FALSE(parse_wire_frame({}).has_value());
  const std::vector<std::uint8_t> junk(kMaxEncodedFrame + 1, 0xAA);
  EXPECT_FALSE(parse_wire_frame(junk).has_value());
}

TEST_F(LinkFixture, StopHaltsPumping) {
  RfLink::Config config;
  config.byte_loss_probability = 0.0;
  config.bit_flip_probability = 0.0;
  RfLink link(config, uart, queue, sim::Rng(5));
  HostLogger logger(queue);
  link.set_host_sink([&](std::uint8_t byte) { logger.on_byte(byte); });
  link.start();
  link.stop();
  Frame frame;
  for (std::uint8_t byte : encode(frame)) uart.transmit(byte);
  queue.run_until(util::Seconds{1.0});
  EXPECT_EQ(logger.frames_received(), 0u);
}

// --- ARQ --------------------------------------------------------------------

// Deterministic harness: the "ether" is a scriptable delay line. The
// forward predicate decides per transmission whether the frame reaches
// the receiver; the ack predicate likewise for the reverse channel.
struct ArqFixture : ::testing::Test {
  sim::EventQueue queue;
  ArqConfig config;
  std::function<bool(int)> forward_ok = [](int) { return true; };  // arg: transmission #
  std::function<bool(int)> ack_ok = [](int) { return true; };
  int forward_count = 0;
  int ack_count = 0;
  std::vector<double> forward_times;

  void wire(ArqSender& sender, ArqReceiver& receiver, double latency = 1e-3) {
    sender.set_wire_sink([&, latency](std::span<const std::uint8_t> wire_bytes) {
      forward_times.push_back(queue.now().value);
      const int n = forward_count++;
      if (!forward_ok(n)) return true;  // lost on the air, but transmitted
      std::vector<std::uint8_t> copy(wire_bytes.begin(), wire_bytes.end());
      queue.schedule_after(util::Seconds{latency}, [&receiver, copy] {
        for (std::uint8_t b : copy) receiver.on_byte(b);
      });
      return true;
    });
    receiver.set_ack_sink([&, latency](std::span<const std::uint8_t> wire_bytes) {
      const int n = ack_count++;
      if (!ack_ok(n)) return true;
      std::vector<std::uint8_t> copy(wire_bytes.begin(), wire_bytes.end());
      queue.schedule_after(util::Seconds{latency}, [&sender, copy] {
        for (std::uint8_t b : copy) sender.on_ack_byte(b);
      });
      return true;
    });
  }
};

TEST_F(ArqFixture, CleanChannelDeliversEverythingOnceWithoutRetransmits) {
  ArqSender sender(config, queue);
  ArqReceiver receiver;
  std::vector<std::uint8_t> delivered;
  receiver.set_frame_sink([&](const Frame& f) { delivered.push_back(f.seq); });
  wire(sender, receiver);
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(sender.send(FrameType::State, {static_cast<std::uint8_t>(i)}));
  }
  queue.run_until(util::Seconds{2.0});
  ASSERT_EQ(delivered.size(), 20u);
  for (std::size_t i = 0; i < delivered.size(); ++i) EXPECT_EQ(delivered[i], i);
  EXPECT_EQ(sender.retransmissions(), 0u);
  EXPECT_EQ(sender.acks_received(), 20u);
  EXPECT_EQ(sender.queued(), 0u);
  EXPECT_EQ(receiver.duplicates_discarded(), 0u);
}

TEST_F(ArqFixture, LostFrameIsRetransmittedAfterTimeout) {
  forward_ok = [](int n) { return n != 0; };  // first transmission dies
  ArqSender sender(config, queue);
  ArqReceiver receiver;
  std::vector<std::uint8_t> delivered;
  receiver.set_frame_sink([&](const Frame& f) { delivered.push_back(f.seq); });
  wire(sender, receiver);
  sender.send(FrameType::State, {42});
  queue.run_until(util::Seconds{1.0});
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(sender.retransmissions(), 1u);
  EXPECT_EQ(sender.acks_received(), 1u);
  EXPECT_EQ(sender.queued(), 0u);
}

TEST_F(ArqFixture, LostAckTriggersRetransmitAndDuplicateDiscard) {
  ack_ok = [](int n) { return n != 0; };  // first ack dies
  ArqSender sender(config, queue);
  ArqReceiver receiver;
  std::vector<std::uint8_t> delivered;
  receiver.set_frame_sink([&](const Frame& f) { delivered.push_back(f.seq); });
  wire(sender, receiver);
  sender.send(FrameType::State, {7});
  queue.run_until(util::Seconds{1.0});
  // Delivered exactly once despite the retransmission.
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_GE(sender.retransmissions(), 1u);
  EXPECT_GE(receiver.duplicates_discarded(), 1u);
  EXPECT_EQ(sender.queued(), 0u);  // the re-ack finally landed
}

TEST_F(ArqFixture, RetryExhaustionDropsTheFrameAndFreesTheWindow) {
  forward_ok = [](int) { return false; };  // black hole
  config.max_attempts = 3;
  config.initial_timeout = util::Seconds{0.010};
  ArqSender sender(config, queue);
  ArqReceiver receiver;
  std::vector<std::uint8_t> dropped;
  sender.set_drop_callback([&](std::uint8_t seq) { dropped.push_back(seq); });
  wire(sender, receiver);
  sender.send(FrameType::State, {1});
  queue.run_until(util::Seconds{5.0});
  EXPECT_EQ(sender.transmissions(), 3u);
  EXPECT_EQ(sender.drops_retry_exhausted(), 1u);
  ASSERT_EQ(dropped.size(), 1u);
  EXPECT_EQ(dropped[0], 0);
  EXPECT_EQ(sender.queued(), 0u);
}

TEST_F(ArqFixture, BackoffGrowsExponentiallyAndCaps) {
  forward_ok = [](int) { return false; };
  config.max_attempts = 6;
  config.initial_timeout = util::Seconds{0.010};
  config.backoff_factor = 2.0;
  config.max_timeout = util::Seconds{0.050};
  ArqSender sender(config, queue);
  ArqReceiver receiver;
  wire(sender, receiver);
  sender.send(FrameType::Heartbeat, {});
  queue.run_until(util::Seconds{5.0});
  ASSERT_EQ(forward_times.size(), 6u);
  // Gaps: 10, 20, 40, 50(cap), 50(cap) ms.
  const double expected[] = {0.010, 0.020, 0.040, 0.050, 0.050};
  for (std::size_t i = 0; i + 1 < forward_times.size(); ++i) {
    EXPECT_NEAR(forward_times[i + 1] - forward_times[i], expected[i], 1e-6)
        << "gap " << i << " off";
  }
}

TEST_F(ArqFixture, BoundedQueueShedsOverloadAndWindowLimitsInFlight) {
  forward_ok = [](int) { return false; };  // nothing acked, nothing delivered
  config.window = 2;
  config.queue_capacity = 4;
  config.initial_timeout = util::Seconds{10.0};  // no retransmits during test
  ArqSender sender(config, queue);
  ArqReceiver receiver;
  wire(sender, receiver);
  int accepted = 0;
  for (int i = 0; i < 10; ++i) {
    if (sender.send(FrameType::State, {static_cast<std::uint8_t>(i)})) ++accepted;
  }
  EXPECT_EQ(accepted, 4);
  EXPECT_EQ(sender.drops_queue_full(), 6u);
  EXPECT_EQ(sender.queued(), 4u);
  EXPECT_EQ(sender.in_flight(), 2u);        // only the window transmitted
  EXPECT_EQ(sender.transmissions(), 2u);
}

TEST_F(ArqFixture, TransportBackpressureDefersUntilSpace) {
  // A wire sink that refuses until notify_tx_space(), like a full UART
  // TX FIFO.
  bool fifo_full = true;
  ArqSender sender(config, queue);
  ArqReceiver receiver;
  std::vector<std::uint8_t> delivered;
  receiver.set_frame_sink([&](const Frame& f) { delivered.push_back(f.seq); });
  sender.set_wire_sink([&](std::span<const std::uint8_t> wire_bytes) {
    if (fifo_full) return false;
    std::vector<std::uint8_t> copy(wire_bytes.begin(), wire_bytes.end());
    queue.schedule_after(util::Seconds{1e-3}, [&receiver, copy] {
      for (std::uint8_t b : copy) receiver.on_byte(b);
    });
    return true;
  });
  receiver.set_ack_sink([&](std::span<const std::uint8_t> wire_bytes) {
    std::vector<std::uint8_t> copy(wire_bytes.begin(), wire_bytes.end());
    queue.schedule_after(util::Seconds{1e-3}, [&sender, copy] {
      for (std::uint8_t b : copy) sender.on_ack_byte(b);
    });
    return true;
  });
  sender.send(FrameType::State, {5});
  queue.run_until(util::Seconds{0.005});
  EXPECT_EQ(sender.transmissions(), 0u);  // blocked on backpressure
  fifo_full = false;
  sender.notify_tx_space();
  queue.run_until(util::Seconds{0.100});
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(sender.transmissions(), 1u);
}

// Full stack: ARQ over the real UART + lossy RfLink in both directions.
TEST_F(LinkFixture, ArqOverLossyLinkDeliversEverythingExactlyOnce) {
  hw::Uart host_uart;
  RfLink::Config lossy;
  lossy.byte_loss_probability = 0.02;
  lossy.bit_flip_probability = 0.005;
  RfLink forward(lossy, uart, queue, sim::Rng(21));
  RfLink reverse(lossy, host_uart, queue, sim::Rng(22));

  ArqSender sender(ArqConfig{}, queue);
  ArqReceiver receiver;
  sender.set_wire_sink([&](std::span<const std::uint8_t> wire_bytes) {
    if (uart.tx_free() < wire_bytes.size()) return false;
    for (std::uint8_t b : wire_bytes) uart.transmit(b);
    return true;
  });
  uart.set_tx_space_callback([&] { sender.notify_tx_space(); });
  forward.set_host_sink([&](std::uint8_t b) { receiver.on_byte(b); });
  receiver.set_ack_sink([&](std::span<const std::uint8_t> wire_bytes) {
    if (host_uart.tx_free() < wire_bytes.size()) return false;
    for (std::uint8_t b : wire_bytes) host_uart.transmit(b);
    return true;
  });
  reverse.set_host_sink([&](std::uint8_t b) { sender.on_ack_byte(b); });
  std::vector<std::uint8_t> delivered;
  receiver.set_frame_sink([&](const Frame& f) { delivered.push_back(f.payload.at(0)); });
  forward.start();
  reverse.start();

  constexpr int kFrames = 120;
  for (int i = 0; i < kFrames; ++i) {
    sender.send(FrameType::State, {static_cast<std::uint8_t>(i)});
    queue.run_until(util::Seconds{queue.now().value + 0.02});
  }
  queue.run_until(util::Seconds{queue.now().value + 3.0});

  // Exactly-once delivery of every frame, in spite of the loss.
  ASSERT_EQ(delivered.size(), static_cast<std::size_t>(kFrames));
  std::vector<std::uint8_t> sorted = delivered;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < kFrames; ++i) EXPECT_EQ(sorted[static_cast<std::size_t>(i)], i);
  EXPECT_GT(sender.retransmissions(), 0u);  // the link really was lossy
  EXPECT_EQ(sender.queued(), 0u);
}

// --- link stats -------------------------------------------------------------

TEST(LinkStats, PercentilesAndHistogramAgree) {
  LinkStats stats;
  for (int i = 1; i <= 100; ++i) stats.record_delivery_latency(i * 1e-3);
  EXPECT_EQ(stats.latency_count(), 100u);
  EXPECT_NEAR(stats.latency_percentile(0.50), 0.0505, 1e-4);
  EXPECT_GT(stats.latency_percentile(0.99), stats.latency_percentile(0.50));
  EXPECT_EQ(stats.latency_histogram().count(), 100u);
  // All 100 samples land in some bucket.
  std::uint64_t total = 0;
  for (const auto b : stats.latency_histogram().buckets()) total += b;
  EXPECT_EQ(total, 100u);
  EXPECT_FALSE(stats.latency_histogram().render().empty());
}

TEST(LinkStats, AttemptsSummary) {
  LinkStats stats;
  stats.record_attempts(1);
  stats.record_attempts(1);
  stats.record_attempts(4);
  EXPECT_NEAR(stats.mean_attempts(), 2.0, 1e-12);
  EXPECT_NEAR(stats.max_attempts(), 4.0, 1e-12);
}

TEST(LinkStats, SamplesCountersFromComponents) {
  FrameDecoder decoder;
  Frame frame;
  frame.payload = {1, 2};
  for (std::uint8_t byte : encode(frame)) decoder.feed(byte);
  auto bad = encode(frame);
  bad[4] ^= 0x40;
  for (std::uint8_t byte : bad) decoder.feed(byte);

  LinkStats stats;
  stats.sample(nullptr, &decoder, nullptr, nullptr, nullptr);
  EXPECT_EQ(stats.counters().frames_decoded, 1u);
  EXPECT_EQ(stats.counters().crc_errors, 1u);
  EXPECT_FALSE(stats.report().empty());
}

}  // namespace
}  // namespace distscroll::wireless
