// Golden-trace regression harness.
//
// The canonical scripted phone-menu session (obs/replay.h) is recorded
// once into tests/golden/canonical_phone_menu.trace and byte-compared on
// every run. Any behavioural drift in the firmware tick, the scroll
// controller, the island mapper or the menu layer shows up here as the
// first diverging event, with a field-level diagnosis from
// obs::compare_traces.
//
// Regenerating after an INTENTIONAL behaviour change (review the JSONL
// diff before committing):
//
//   DISTSCROLL_REGEN_GOLDEN=1 ./build/tests/test_golden_trace
//
// which rewrites the .trace artifact in the source tree (path baked in
// via DISTSCROLL_GOLDEN_DIR).
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "obs/replay.h"
#include "obs/trace_io.h"
#include "obs/tracer.h"

namespace {

using namespace distscroll;

const std::string kGoldenPath =
    std::string(DISTSCROLL_GOLDEN_DIR) + "/canonical_phone_menu.trace";

bool regen_requested() {
  const char* env = std::getenv("DISTSCROLL_REGEN_GOLDEN");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

class GoldenTrace : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!obs::Tracer::compiled_in()) {
      GTEST_SKIP() << "tracing compiled out (DISTSCROLL_TRACING=OFF)";
    }
    if (regen_requested()) {
      const obs::Trace fresh = obs::record_canonical_session();
      ASSERT_TRUE(obs::write_trace(kGoldenPath, fresh))
          << "cannot write " << kGoldenPath;
      ASSERT_TRUE(obs::write_jsonl_file(kGoldenPath + ".jsonl", fresh));
    }
  }
};

TEST_F(GoldenTrace, RecordedSessionMatchesGoldenByteForByte) {
  const auto golden = obs::read_trace(kGoldenPath);
  ASSERT_TRUE(golden.has_value())
      << "missing/corrupt golden artifact " << kGoldenPath
      << " — regenerate with DISTSCROLL_REGEN_GOLDEN=1";

  const obs::Trace recorded = obs::record_canonical_session();
  const obs::CompareResult cmp = obs::compare_traces(*golden, recorded);
  EXPECT_TRUE(cmp.match) << "first divergence at event " << cmp.first_divergence
                         << ": " << cmp.detail;
  // compare_traces is documented equivalent to byte equality — hold it
  // to that.
  EXPECT_EQ(obs::serialize(*golden), obs::serialize(recorded));
}

TEST_F(GoldenTrace, GoldenReplaysByteForByte) {
  const auto golden = obs::read_trace(kGoldenPath);
  ASSERT_TRUE(golden.has_value());

  const obs::Trace replayed = obs::replay_device_trace(*golden);
  const obs::CompareResult cmp = obs::compare_traces(*golden, replayed);
  EXPECT_TRUE(cmp.match) << "replay diverged at event " << cmp.first_divergence
                         << ": " << cmp.detail;
}

TEST_F(GoldenTrace, GoldenSurvivesSerializeRoundTrip) {
  const auto golden = obs::read_trace(kGoldenPath);
  ASSERT_TRUE(golden.has_value());

  const auto bytes = obs::serialize(*golden);
  const auto reparsed = obs::deserialize(bytes);
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(*golden, *reparsed);
  EXPECT_EQ(bytes, obs::serialize(*reparsed));
}

TEST_F(GoldenTrace, CanonicalSessionIsNonTrivial) {
  const auto golden = obs::read_trace(kGoldenPath);
  ASSERT_TRUE(golden.has_value());
  EXPECT_EQ(golden->session_id, obs::kCanonicalPhoneMenuSession);
  EXPECT_EQ(golden->dropped, 0u);
  // The scripted session must actually exercise the device: samples,
  // presses, cursor motion and display traffic all present.
  std::size_t adc = 0, edges = 0, moves = 0, flushes = 0;
  for (const obs::TraceEvent& event : golden->events) {
    switch (event.kind) {
      case obs::EventKind::AdcRead: ++adc; break;
      case obs::EventKind::ButtonEdge: ++edges; break;
      case obs::EventKind::CursorMove: ++moves; break;
      case obs::EventKind::DisplayFlush: ++flushes; break;
      default: break;
    }
  }
  EXPECT_GT(adc, 100u);
  EXPECT_GE(edges, 8u);    // 4 scripted presses = 8 debounced edges
  EXPECT_GT(moves, 10u);
  EXPECT_GT(flushes, 10u);
}

}  // namespace
