// Self-test for tools/ds_lint: the fixture tree under
// tests/lint_fixtures/ is a miniature repo in which every violation is
// deliberate, and expected.txt is the exact `file:line: rule` manifest
// the linter must emit — no more (over-firing on strings, comments,
// member calls, suppressed lines) and no less (a rule going blind).
//
// The real-tree gate is a separate ctest entry (lint_tree) and a
// build-time custom target; this suite pins the rules themselves.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace {

struct LintRun {
  std::vector<std::string> lines;  // stdout, line-split
  int exit_code = -1;
};

/// Run ds_lint with `args`, capture stdout and exit status.
LintRun run_lint(const std::string& args) {
  const std::string cmd = std::string(DS_LINT_BIN) + " " + args + " 2>/dev/null";
  LintRun result;
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return result;
  char buf[1024];
  std::string out;
  while (std::fgets(buf, sizeof(buf), pipe) != nullptr) out += buf;
  const int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  std::istringstream stream(out);
  std::string line;
  while (std::getline(stream, line)) {
    if (!line.empty()) result.lines.push_back(line);
  }
  return result;
}

/// `file:line: rule: message` -> `file:line: rule` (the manifest form).
std::string diagnostic_key(const std::string& line) {
  // The rule name is the third ':'-delimited field; the message after it
  // may itself contain colons.
  std::size_t colon = line.find(": ");             // after file:line
  if (colon == std::string::npos) return line;
  colon = line.find(": ", colon + 2);              // after rule
  if (colon == std::string::npos) return line;
  return line.substr(0, colon);
}

std::vector<std::string> load_manifest(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '#') lines.push_back(line);
  }
  return lines;
}

TEST(DsLint, FixtureTreeMatchesManifestExactly) {
  const LintRun run = run_lint(std::string("--root ") + DS_LINT_FIXTURE_DIR);
  EXPECT_EQ(run.exit_code, 1) << "fixtures must lint dirty";

  std::vector<std::string> got;
  got.reserve(run.lines.size());
  for (const std::string& line : run.lines) got.push_back(diagnostic_key(line));

  const std::vector<std::string> want =
      load_manifest(std::string(DS_LINT_FIXTURE_DIR) + "/expected.txt");
  ASSERT_FALSE(want.empty()) << "expected.txt missing or empty";

  // Exact, ordered comparison: the linter sorts by (file, line, rule),
  // so any drift — a new finding, a lost finding, an off-by-one line —
  // shows as a diff here.
  EXPECT_EQ(got, want);
}

TEST(DsLint, RuleFilterRestrictsFindings) {
  const LintRun run =
      run_lint(std::string("--root ") + DS_LINT_FIXTURE_DIR + " --rule pragma-once");
  EXPECT_EQ(run.exit_code, 1);
  ASSERT_EQ(run.lines.size(), 1u);
  EXPECT_EQ(diagnostic_key(run.lines[0]), "src/hw/no_pragma_once.h:1: pragma-once");
}

TEST(DsLint, AllowlistedDirectoryLintsClean) {
  // src/obs/ owns wall timing: the registry's file-scope allowlist must
  // silence no-wallclock there with no suppression comments in the file.
  const LintRun run = run_lint(std::string("--root ") + DS_LINT_FIXTURE_DIR + " " +
                               DS_LINT_FIXTURE_DIR + "/src/obs");
  EXPECT_EQ(run.exit_code, 0) << (run.lines.empty() ? "" : run.lines[0]);
  EXPECT_TRUE(run.lines.empty());
}

TEST(DsLint, ListRulesCoversRegistry) {
  const LintRun run = run_lint("--list-rules");
  EXPECT_EQ(run.exit_code, 0);
  std::vector<std::string> names;
  names.reserve(run.lines.size());
  for (const std::string& line : run.lines) {
    names.push_back(line.substr(0, line.find(' ')));
  }
  const std::vector<std::string> want = {
      "no-wallclock",        "no-ambient-rng",   "no-unordered-iteration",
      "no-std-function-hot-path", "no-alloc-markers", "include-hygiene",
      "pragma-once",         "include-layering", "hot-path-reachability",
      "concurrency-purity",  "suppression-hygiene",
  };
  EXPECT_EQ(names, want);
}

}  // namespace
