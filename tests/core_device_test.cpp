// Integration tests for the full DistScrollDevice: firmware loop,
// displays, buttons, menu navigation, telemetry, battery — the system of
// paper Figure 2 exercised end to end.
#include <gtest/gtest.h>

#include <set>

#include "core/distscroll_device.h"
#include "menu/menu_builder.h"
#include "menu/phone_menu.h"
#include "wireless/host_logger.h"
#include "wireless/rf_link.h"

namespace distscroll::core {
namespace {

struct DeviceFixture : ::testing::Test {
  std::unique_ptr<menu::MenuNode> menu_root = menu::make_flat_menu(5);
  sim::EventQueue queue;
  double distance_cm = 17.0;

  std::unique_ptr<DistScrollDevice> make(DistScrollDevice::Config config = {}) {
    auto device = std::make_unique<DistScrollDevice>(config, *menu_root, queue, sim::Rng(99));
    device->set_distance_provider(
        [this](util::Seconds) { return util::Centimeters{distance_cm}; });
    device->power_on();
    return device;
  }

  void settle(double seconds = 0.5) {
    queue.run_until(util::Seconds{queue.now().value + seconds});
  }

  /// Distance whose island maps to `menu_index` under the default
  /// toward-user-scrolls-down mapping.
  static double distance_for_index(const DistScrollDevice& device, std::size_t menu_index) {
    const auto& mapper = device.mapper();
    const std::size_t island = mapper.entries() - 1 - menu_index;
    return mapper.centre_distance(island).value;
  }

  void press(input::Button& button) {
    button.press();
    settle(0.05);
    button.release();
    settle(0.05);
  }
};

TEST_F(DeviceFixture, CursorFollowsDistance) {
  auto device = make();
  for (std::size_t target = 0; target < 5; ++target) {
    distance_cm = distance_for_index(*device, target);
    settle();
    EXPECT_EQ(device->cursor().index(), target) << "target " << target;
  }
}

TEST_F(DeviceFixture, TowardUserScrollsDownByDefault) {
  auto device = make();
  distance_cm = 28.0;  // far
  settle();
  const std::size_t far_index = device->cursor().index();
  distance_cm = 6.0;  // near
  settle();
  EXPECT_GT(device->cursor().index(), far_index);
}

TEST_F(DeviceFixture, DirectionConfigFlipsMapping) {
  DistScrollDevice::Config config;
  config.scroll.direction = ScrollDirection::TowardUserScrollsUp;
  auto device = make(config);
  distance_cm = 6.0;  // near => top of menu
  settle();
  EXPECT_EQ(device->cursor().index(), 0u);
}

TEST_F(DeviceFixture, SelectButtonActivatesLeaf) {
  auto device = make();
  distance_cm = distance_for_index(*device, 2);
  settle();
  std::string activated;
  device->on_leaf_activated([&](const DistScrollDevice::SelectionEvent& e) { activated = e.label; });
  press(device->select_button());
  EXPECT_EQ(activated, "Item 003");
}

TEST_F(DeviceFixture, SubmenuEnterRebuildsMappingAndBackRestores) {
  menu_root = menu::MenuBuilder("r")
                  .submenu("folder")
                  .item("f1")
                  .item("f2")
                  .item("f3")
                  .item("f4")
                  .item("f5")
                  .item("f6")
                  .item("f7")
                  .end()
                  .item("leaf")
                  .build();
  auto device = make();
  distance_cm = distance_for_index(*device, 0);
  settle();
  ASSERT_EQ(device->cursor().index(), 0u);
  press(device->select_button());
  EXPECT_EQ(device->cursor().depth(), 1u);
  EXPECT_EQ(device->mapper().entries(), 7u);  // islands rebuilt for 7 entries
  press(device->back_button());
  EXPECT_EQ(device->cursor().depth(), 0u);
  EXPECT_EQ(device->mapper().entries(), 2u);
}

TEST_F(DeviceFixture, DisplayShowsMenuWithHighlight) {
  auto device = make();
  distance_cm = distance_for_index(*device, 1);
  settle();
  EXPECT_EQ(device->top_display().line_text(0), "Item 001");
  EXPECT_EQ(device->top_display().line_text(1), "Item 002");
  EXPECT_TRUE(device->top_display().line_inverted(1));
  EXPECT_FALSE(device->top_display().line_inverted(0));
}

TEST_F(DeviceFixture, BottomDisplayShowsDebugState) {
  auto device = make();
  settle();
  EXPECT_NE(device->bottom_display().line_text(0).find("cnt"), std::string::npos);
  EXPECT_NE(device->bottom_display().line_text(3).find("bat"), std::string::npos);
}

TEST_F(DeviceFixture, DisplayWindowFollowsCursorInLongMenu) {
  menu_root = menu::make_flat_menu(20);
  auto device = make();
  distance_cm = distance_for_index(*device, 15);
  settle();
  ASSERT_EQ(device->cursor().index(), 15u);
  // Window centres on the cursor: line 2 of 5 shows entry 15.
  EXPECT_EQ(device->top_display().line_text(2), "Item 016");
  EXPECT_TRUE(device->top_display().line_inverted(2));
}

TEST_F(DeviceFixture, HoldingStillCausesNoRedrawChurn) {
  auto device = make();
  settle(1.0);
  const auto redraws_before = device->redraws();
  settle(2.0);  // nothing moves
  EXPECT_LE(device->redraws() - redraws_before, 3u);
}

TEST_F(DeviceFixture, TooCloseCausesAmbiguousReadings) {
  // Below ~4 cm the sensor folds back; with absolute mapping this shows
  // up as the cursor landing on some farther entry — the paper's
  // documented limitation.
  auto device = make();
  distance_cm = distance_for_index(*device, 4);
  settle();
  ASSERT_EQ(device->cursor().index(), 4u);
  distance_cm = 0.6;  // far below the peak: aliases to a farther entry
  settle();
  EXPECT_LT(device->cursor().index(), 4u);
}

TEST_F(DeviceFixture, TelemetryFramesReachHost) {
  auto device = make();
  wireless::RfLink::Config link_config;
  link_config.byte_loss_probability = 0.0;
  link_config.bit_flip_probability = 0.0;
  wireless::RfLink link(link_config, device->board().uart(), queue, sim::Rng(7));
  wireless::HostLogger logger(queue);
  link.set_host_sink([&](std::uint8_t b) { logger.on_byte(b); });
  link.start();
  distance_cm = distance_for_index(*device, 3);
  settle(2.0);
  EXPECT_GT(logger.frames_received(), 20u);
  ASSERT_TRUE(logger.last_state().has_value());
  EXPECT_EQ(logger.last_state()->cursor_index, 3);
  EXPECT_EQ(logger.last_state()->level_size, 5);
}

TEST_F(DeviceFixture, BatteryDrainsOverTime) {
  auto device = make();
  const double before = device->board().battery().consumed_mah();
  settle(60.0);
  const double after = device->board().battery().consumed_mah();
  // ~47 mA total for a minute: ~0.78 mAh.
  EXPECT_GT(after - before, 0.5);
  EXPECT_LT(after - before, 1.5);
}

TEST_F(DeviceFixture, CyclesStayFarUnderBudget) {
  // The whole firmware must be light: at a 20 ms tick the per-second
  // budget is 10M cycles; the firmware should use well under 5%.
  auto device = make();
  settle(1.0);
  EXPECT_LT(device->board().mcu().cycles(), 500'000u);
  EXPECT_GT(device->board().mcu().cycles(), 1'000u);
}

TEST_F(DeviceFixture, PowerOffStopsEverything) {
  auto device = make();
  settle(0.5);
  device->power_off();
  const auto cycles = device->board().mcu().cycles();
  const auto redraws = device->redraws();
  settle(1.0);
  EXPECT_EQ(device->board().mcu().cycles(), cycles);
  EXPECT_EQ(device->redraws(), redraws);
}

// --- long-menu strategies on the device ----------------------------------------

TEST_F(DeviceFixture, ChunkedStrategyPagesWithAuxButton) {
  menu_root = menu::make_flat_menu(25);
  DistScrollDevice::Config config;
  config.long_menu = LongMenuStrategy::Chunked;
  config.chunk_size = 10;
  auto device = make(config);
  settle();
  ASSERT_TRUE(device->current_chunk().has_value());
  EXPECT_EQ(*device->current_chunk(), 0u);
  EXPECT_EQ(device->mapper().entries(), 10u);  // islands per chunk, not 25
  press(device->aux_button());
  EXPECT_EQ(*device->current_chunk(), 1u);
  // Cursor lands in the new chunk.
  EXPECT_GE(device->cursor().index(), 10u);
  press(device->aux_button());
  EXPECT_EQ(*device->current_chunk(), 2u);
  EXPECT_EQ(device->mapper().entries(), 5u);  // short last chunk
  press(device->aux_button());                 // wraps
  EXPECT_EQ(*device->current_chunk(), 0u);
}

TEST_F(DeviceFixture, ChunkedSelectionWithinChunk) {
  menu_root = menu::make_flat_menu(25);
  DistScrollDevice::Config config;
  config.long_menu = LongMenuStrategy::Chunked;
  config.chunk_size = 10;
  auto device = make(config);
  press(device->aux_button());  // chunk 1: entries 10..19
  // Near end of range = last entry of the chunk (toward-user = down).
  distance_cm = device->mapper().centre_distance(0).value;
  settle();
  EXPECT_EQ(device->cursor().index(), 19u);
}

TEST_F(DeviceFixture, SpeedZoomStrategyReachesDistantEntries) {
  menu_root = menu::make_flat_menu(100);
  DistScrollDevice::Config config;
  config.long_menu = LongMenuStrategy::SpeedZoom;
  config.speed_zoom_islands = 10;
  auto device = make(config);
  // Aim for island centres: between-island distances sit in the paper's
  // selection-free dead zones and would (correctly) change nothing.
  distance_cm = device->mapper().centre_distance(9).value;  // farthest island
  settle(1.5);  // dwell far: coarse lands near the top bucket, zooms in
  const auto index = device->cursor().index();
  EXPECT_LT(index, 20u);  // top region of the menu
  distance_cm = device->mapper().centre_distance(0).value;  // nearest island
  settle(1.5);
  EXPECT_GT(device->cursor().index(), 60u);  // bottom region
}

TEST_F(DeviceFixture, FastScrollTurboInChunkedMode) {
  menu_root = menu::make_flat_menu(50);
  DistScrollDevice::Config config;
  config.long_menu = LongMenuStrategy::Chunked;
  config.chunk_size = 10;
  config.enable_fast_scroll = true;
  auto device = make(config);
  settle();
  ASSERT_EQ(*device->current_chunk(), 0u);
  distance_cm = 3.4;  // into the over-range turbo zone (just under 4 cm)
  // Chunks advance hands-free while the device is held in the turbo
  // zone (sampling the chunk index over time: it keeps paging, with
  // wraparound).
  std::set<std::size_t> chunks_seen;
  for (int i = 0; i < 16; ++i) {
    settle(0.06);
    chunks_seen.insert(*device->current_chunk());
  }
  EXPECT_GT(chunks_seen.size(), 2u);
  distance_cm = 15.0;
  settle(0.2);
  const auto chunk = *device->current_chunk();
  settle(0.5);
  EXPECT_EQ(*device->current_chunk(), chunk);  // turbo stopped
}

TEST_F(DeviceFixture, SurfaceGlitchWithMedianFilterStaysStable) {
  DistScrollDevice::Config config;
  config.scroll.smoothing = Smoothing::Median3;
  auto device = make(config);
  device->set_surface(sensors::SurfaceProfile::reflective_vest());
  distance_cm = distance_for_index(*device, 2);
  settle(1.0);
  // Median-3 suppresses isolated specular glitches: cursor stays put for
  // the vast majority of the time.
  int on_target = 0, total = 0;
  for (int i = 0; i < 100; ++i) {
    settle(0.05);
    ++total;
    if (device->cursor().index() == 2u) ++on_target;
  }
  EXPECT_GT(on_target, 85) << "cursor unstable under glitches: " << on_target << "/" << total;
}

TEST_F(DeviceFixture, ContrastPotDrivesDisplay) {
  auto device = make();
  device->contrast_pot().set_position(1.0);
  EXPECT_EQ(device->contrast_pot().as_contrast_level(), 63);
}

TEST_F(DeviceFixture, SelectionEventsRecorded) {
  auto device = make();
  distance_cm = distance_for_index(*device, 1);
  settle();
  press(device->select_button());
  ASSERT_EQ(device->selections().size(), 1u);
  EXPECT_EQ(device->selections()[0].label, "Item 002");
  EXPECT_TRUE(device->selections()[0].is_leaf);
  EXPECT_GT(device->selections()[0].time_s, 0.0);
}

TEST_F(DeviceFixture, PhoneMenuFullNavigation) {
  menu_root = menu::make_phone_menu();
  auto device = make();
  // Navigate: Settings (index 3) -> Display (index 1) -> Contrast (1).
  for (const std::size_t want : {3u, 1u}) {
    distance_cm = distance_for_index(*device, want);
    settle(0.8);
    ASSERT_EQ(device->cursor().index(), want);
    press(device->select_button());
  }
  distance_cm = distance_for_index(*device, 1);
  settle(0.8);
  std::string activated;
  device->on_leaf_activated([&](const DistScrollDevice::SelectionEvent& e) { activated = e.label; });
  press(device->select_button());
  EXPECT_EQ(activated, "Contrast");
}

}  // namespace
}  // namespace distscroll::core
