// Unit + property tests for the hierarchical menu model.
#include <gtest/gtest.h>

#include "menu/menu.h"
#include "menu/menu_builder.h"
#include "menu/phone_menu.h"

namespace distscroll::menu {
namespace {

TEST(MenuNode, LeafAndInterior) {
  MenuNode root("root");
  EXPECT_TRUE(root.is_leaf());
  root.add_child("a");
  EXPECT_FALSE(root.is_leaf());
  EXPECT_EQ(root.child_count(), 1u);
  EXPECT_EQ(root.child(0).label(), "a");
}

TEST(MenuNode, SubtreeSizeAndDepth) {
  MenuNode root("root");
  MenuNode& a = root.add_child("a");
  a.add_child("a1");
  a.add_child("a2");
  root.add_child("b");
  EXPECT_EQ(root.subtree_size(), 5u);
  EXPECT_EQ(root.depth(), 2u);
  EXPECT_EQ(a.depth(), 1u);
}

TEST(MenuCursor, MoveWithinLevel) {
  MenuNode root("root");
  for (int i = 0; i < 5; ++i) root.add_child("item" + std::to_string(i));
  MenuCursor cursor(root);
  EXPECT_EQ(cursor.index(), 0u);
  cursor.move_to(3);
  EXPECT_EQ(cursor.highlighted().label(), "item3");
  cursor.move_to(99);  // clamps
  EXPECT_EQ(cursor.index(), 4u);
  cursor.move_by(-2);
  EXPECT_EQ(cursor.index(), 2u);
  cursor.move_by(-10);
  EXPECT_EQ(cursor.index(), 0u);
  cursor.move_by(100);
  EXPECT_EQ(cursor.index(), 4u);
}

TEST(MenuCursor, EnterAndBack) {
  auto root = MenuBuilder("r").submenu("sub").item("x").item("y").end().item("leaf").build();
  MenuCursor cursor(*root);
  EXPECT_TRUE(cursor.enter());  // into "sub"
  EXPECT_EQ(cursor.depth(), 1u);
  EXPECT_EQ(cursor.level_size(), 2u);
  EXPECT_EQ(cursor.highlighted().label(), "x");
  EXPECT_TRUE(cursor.back());
  EXPECT_EQ(cursor.depth(), 0u);
  // Cursor restored onto the submenu we left.
  EXPECT_EQ(cursor.highlighted().label(), "sub");
}

TEST(MenuCursor, EnterLeafFails) {
  auto root = MenuBuilder("r").item("leaf").build();
  MenuCursor cursor(*root);
  EXPECT_FALSE(cursor.enter());
  EXPECT_EQ(cursor.depth(), 0u);
}

TEST(MenuCursor, BackAtRootFails) {
  auto root = MenuBuilder("r").item("leaf").build();
  MenuCursor cursor(*root);
  EXPECT_FALSE(cursor.back());
}

TEST(MenuCursor, ResetReturnsToRootTop) {
  auto root = MenuBuilder("r").submenu("s").item("x").end().build();
  MenuCursor cursor(*root);
  cursor.enter();
  cursor.reset();
  EXPECT_EQ(cursor.depth(), 0u);
  EXPECT_EQ(cursor.index(), 0u);
}

TEST(MenuBuilder, NestedStructure) {
  auto root = MenuBuilder("r")
                  .submenu("a")
                  .submenu("a1")
                  .item("a1x")
                  .end()
                  .item("a2")
                  .end()
                  .item("b")
                  .build();
  EXPECT_EQ(root->child_count(), 2u);
  EXPECT_EQ(root->child(0).child(0).child(0).label(), "a1x");
  EXPECT_EQ(root->child(0).child(1).label(), "a2");
  EXPECT_TRUE(root->child(1).is_leaf());
}

TEST(MenuBuilder, ExtraEndIsSafe) {
  auto root = MenuBuilder("r").item("x").end().end().build();
  EXPECT_EQ(root->child_count(), 1u);
}

TEST(FlatMenu, HasRequestedSizeAndLabels) {
  auto root = make_flat_menu(42);
  EXPECT_EQ(root->child_count(), 42u);
  EXPECT_EQ(root->child(0).label(), "Item 001");
  EXPECT_EQ(root->child(41).label(), "Item 042");
  for (std::size_t i = 0; i < 42; ++i) EXPECT_TRUE(root->child(i).is_leaf());
}

TEST(PhoneMenu, MatchesPaperStructure) {
  auto root = make_phone_menu();
  EXPECT_GE(root->child_count(), 6u);
  EXPECT_EQ(root->child(0).label(), "Messages");
  EXPECT_GE(root->depth(), 2u);       // Settings has nested submenus
  EXPECT_GE(root->subtree_size(), 30u);
}

TEST(PhoneMenu, NavigableToNestedLeaf) {
  auto root = make_phone_menu();
  MenuCursor cursor(*root);
  cursor.move_to(3);  // Settings
  ASSERT_EQ(cursor.highlighted().label(), "Settings");
  ASSERT_TRUE(cursor.enter());
  cursor.move_to(1);  // Display
  ASSERT_EQ(cursor.highlighted().label(), "Display");
  ASSERT_TRUE(cursor.enter());
  cursor.move_to(1);
  EXPECT_EQ(cursor.highlighted().label(), "Contrast");
  EXPECT_TRUE(cursor.highlighted().is_leaf());
}

// --- properties over random menus -----------------------------------------------

class RandomMenuProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomMenuProperty, CursorWalkNeverEscapesTree) {
  sim::Rng rng(GetParam());
  auto root = make_random_menu(rng, 2, 6, 4);
  MenuCursor cursor(*root);
  sim::Rng walk = rng.fork(1);
  std::size_t max_depth_seen = 0;
  for (int step = 0; step < 500; ++step) {
    switch (walk.uniform_int(0, 3)) {
      case 0:
        cursor.move_to(static_cast<std::size_t>(walk.uniform_int(0, 10)));
        break;
      case 1:
        cursor.move_by(walk.uniform_int(-3, 3));
        break;
      case 2:
        cursor.enter();
        break;
      case 3:
        cursor.back();
        break;
    }
    ASSERT_LT(cursor.index(), cursor.level_size());
    ASSERT_GE(cursor.level_size(), 1u);
    max_depth_seen = std::max(max_depth_seen, cursor.depth());
    ASSERT_LE(cursor.depth(), root->depth());
  }
  // The walk should actually have descended somewhere.
  EXPECT_GE(max_depth_seen, 1u);
}

TEST_P(RandomMenuProperty, EnterBackIsIdentity) {
  sim::Rng rng(GetParam() + 1000);
  auto root = make_random_menu(rng, 2, 5, 3);
  MenuCursor cursor(*root);
  sim::Rng walk = rng.fork(2);
  for (int step = 0; step < 100; ++step) {
    cursor.move_to(static_cast<std::size_t>(walk.uniform_int(0, 6)));
    const std::size_t index = cursor.index();
    const std::size_t depth = cursor.depth();
    if (cursor.enter()) {
      ASSERT_TRUE(cursor.back());
      // back() restores the cursor onto the submenu entered from.
      EXPECT_EQ(cursor.index(), index);
      EXPECT_EQ(cursor.depth(), depth);
    }
  }
}

// Seed 3 was replaced with 9 when the Rng engine moved to xoshiro256++:
// its new stream happens to build a menu the 500-step walk never
// descends into, which trips the anti-vacuity check below.
INSTANTIATE_TEST_SUITE_P(Seeds, RandomMenuProperty, ::testing::Values(1, 2, 9, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace distscroll::menu
