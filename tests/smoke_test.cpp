// End-to-end smoke: build a device over the phone menu, run it, and
// check the basic wiring holds together.
#include <gtest/gtest.h>

#include "core/distscroll_device.h"
#include "menu/phone_menu.h"

namespace distscroll {
namespace {

TEST(Smoke, DeviceBootsAndScrolls) {
  auto menu_root = menu::make_phone_menu();
  sim::EventQueue queue;
  core::DistScrollDevice::Config config;
  core::DistScrollDevice device(config, *menu_root, queue, sim::Rng(42));
  device.power_on();

  // Hold the device at a middle distance for a second of simulated time.
  device.set_distance_provider([](util::Seconds) { return util::Centimeters{17.0}; });
  queue.run_until(util::Seconds{1.0});

  EXPECT_GT(device.board().mcu().cycles(), 0u);
  EXPECT_GT(device.top_display().frames_written(), 0u);
  EXPECT_TRUE(device.controller().selection().has_value());
}

}  // namespace
}  // namespace distscroll
