// End-to-end smoke: build a device over the phone menu, run a scripted
// session, and check whole-device invariants on the structured trace —
// cursor stays inside menu bounds at every display flush, island
// selection and dead-zone residence stay mutually exclusive, the sim
// clock never runs backwards, and no display flush is lost.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <optional>
#include <vector>

#include "core/distscroll_device.h"
#include "menu/phone_menu.h"
#include "obs/tracer.h"

namespace distscroll {
namespace {

TEST(Smoke, DeviceBootsAndScrolls) {
  auto menu_root = menu::make_phone_menu();
  sim::EventQueue queue;
  core::DistScrollDevice::Config config;
  core::DistScrollDevice device(config, *menu_root, queue, sim::Rng(42));
  device.power_on();

  // Hold the device at a middle distance for a second of simulated time.
  device.set_distance_provider([](util::Seconds) { return util::Centimeters{17.0}; });
  queue.run_until(util::Seconds{1.0});

  EXPECT_GT(device.board().mcu().cycles(), 0u);
  EXPECT_GT(device.top_display().frames_written(), 0u);
  EXPECT_TRUE(device.controller().selection().has_value());
}

// Scripted session shared by the invariant tests: a hand sweeping back
// and forth across the whole scroll range plus a select and a back
// press, traced under the full category mask.
class SmokeInvariants : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!obs::Tracer::compiled_in()) {
      GTEST_SKIP() << "tracing compiled out (DISTSCROLL_TRACING=OFF)";
    }
    menu_root_ = menu::make_phone_menu();
    device_ = std::make_unique<core::DistScrollDevice>(
        core::DistScrollDevice::Config{}, *menu_root_, queue_, sim::Rng(42));
    device_->attach_tracer(&tracer_);
    device_->set_distance_provider([](util::Seconds now) {
      // 8..26 cm sweep, slow enough for selections to settle.
      return util::Centimeters{17.0 + 9.0 * std::sin(now.value * 1.7)};
    });
    device_->power_on();
    queue_.schedule_at(util::Seconds{1.2}, [this] { device_->select_button().press(); });
    queue_.schedule_at(util::Seconds{1.28}, [this] { device_->select_button().release(); });
    queue_.schedule_at(util::Seconds{2.4}, [this] { device_->back_button().press(); });
    queue_.schedule_at(util::Seconds{2.48}, [this] { device_->back_button().release(); });
    queue_.run_until(util::Seconds{4.0});
    events_ = tracer_.snapshot();
    ASSERT_FALSE(events_.empty());
  }

  sim::EventQueue queue_;
  obs::Tracer tracer_{1 << 16, obs::kCatAll};
  std::unique_ptr<menu::MenuNode> menu_root_;
  std::unique_ptr<core::DistScrollDevice> device_;
  std::vector<obs::TraceEvent> events_;
};

TEST_F(SmokeInvariants, CursorStaysInMenuBoundsAtEveryFlush) {
  std::size_t flushes = 0;
  for (const obs::TraceEvent& event : events_) {
    if (event.kind != obs::EventKind::DisplayFlush) continue;
    ++flushes;
    // a = cursor index, b = level size: the cursor must address a real
    // entry of the level being drawn.
    EXPECT_LT(event.a, event.b) << "flush at t=" << event.time_s;
  }
  EXPECT_GT(flushes, 10u);
}

TEST_F(SmokeInvariants, IslandAndDeadZoneStayExclusive) {
  // Replays the controller FSM from its trace: a selection is either
  // resting on an island or holding through a dead zone, never both;
  // leaves always pair with the island they leave; a same-island
  // re-entry only follows a dead-zone excursion.
  std::optional<std::uint32_t> island;
  bool in_gap = false;
  bool pending_enter = false;  // an IslandLeave must be followed by IslandEnter
  std::size_t transitions = 0;
  for (const obs::TraceEvent& event : events_) {
    switch (event.kind) {
      case obs::EventKind::IslandEnter:
        ++transitions;
        if (island && *island == event.a) {
          EXPECT_TRUE(in_gap) << "re-entered island " << event.a
                              << " without a dead-zone excursion at t=" << event.time_s;
        }
        island = event.a;
        in_gap = false;
        pending_enter = false;
        break;
      case obs::EventKind::IslandLeave:
        ++transitions;
        ASSERT_TRUE(island.has_value()) << "leave with no selection at t=" << event.time_s;
        EXPECT_EQ(*island, event.a) << "left an island we were not on at t=" << event.time_s;
        EXPECT_FALSE(pending_enter);
        pending_enter = true;
        break;
      case obs::EventKind::DeadZoneCross:
        ++transitions;
        ASSERT_TRUE(island.has_value());
        EXPECT_EQ(*island, event.a);
        EXPECT_FALSE(in_gap) << "crossed into a dead zone while already in one at t="
                             << event.time_s;
        EXPECT_FALSE(pending_enter);
        in_gap = true;
        break;
      default:
        break;
    }
  }
  EXPECT_FALSE(pending_enter) << "trace ended between IslandLeave and IslandEnter";
  EXPECT_GT(transitions, 5u) << "sweep session produced no island activity";
}

TEST_F(SmokeInvariants, SimClockIsMonotoneAcrossTheTrace) {
  for (std::size_t i = 1; i < events_.size(); ++i) {
    ASSERT_GE(events_[i].time_s, events_[i - 1].time_s)
        << "clock ran backwards between events " << i - 1 << " and " << i;
  }
  EXPECT_GE(events_.front().time_s, 0.0);
  EXPECT_LE(events_.back().time_s, 4.0 + 1e-9);
}

TEST_F(SmokeInvariants, NoDisplayFlushIsDropped) {
  EXPECT_EQ(tracer_.dropped(), 0u);
  std::size_t flushes = 0;
  for (const obs::TraceEvent& event : events_) {
    flushes += (event.kind == obs::EventKind::DisplayFlush);
  }
  // Every redraw the firmware performed must have its flush event in the
  // trace — one DisplayFlush per redraw, none lost.
  EXPECT_EQ(flushes, device_->redraws());
}

TEST_F(SmokeInvariants, ButtonScriptReachesTheMenuLayer) {
  std::size_t presses = 0, releases = 0;
  for (const obs::TraceEvent& event : events_) {
    if (event.kind != obs::EventKind::ButtonEdge) continue;
    (event.b != 0 ? presses : releases) += 1;
  }
  EXPECT_EQ(presses, 2u);
  EXPECT_EQ(releases, 2u);
  // The select at 1.2 s activated an entry; depth went down and back up.
  EXPECT_FALSE(device_->selections().empty());
}

}  // namespace
}  // namespace distscroll
