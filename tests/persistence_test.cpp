// Tests for the EEPROM model, calibration persistence, the firmware
// scheduler, and battery-brownout behaviour — the "survives the field"
// layer of the prototype.
#include <gtest/gtest.h>

#include "core/calibration_store.h"
#include "core/distscroll_device.h"
#include "hw/eeprom.h"
#include "hw/scheduler.h"
#include "menu/menu_builder.h"

namespace distscroll {
namespace {

// --- EEPROM ------------------------------------------------------------------

TEST(Eeprom, ErasedStateIsFF) {
  hw::Eeprom eeprom;
  for (std::size_t a = 0; a < hw::Eeprom::kSize; a += 17) {
    EXPECT_EQ(eeprom.read(a), 0xFF);
  }
}

TEST(Eeprom, WriteReadBack) {
  hw::Eeprom eeprom;
  const auto t = eeprom.write(10, 0x42);
  EXPECT_EQ(eeprom.read(10), 0x42);
  EXPECT_DOUBLE_EQ(t.value, hw::Eeprom::kWriteTime.value);
}

TEST(Eeprom, BlockOperationsAndWear) {
  hw::Eeprom eeprom;
  const std::uint8_t data[] = {1, 2, 3, 4};
  const auto t = eeprom.write_block(100, data);
  EXPECT_DOUBLE_EQ(t.value, 4 * hw::Eeprom::kWriteTime.value);
  EXPECT_EQ(eeprom.read_block(100, 4), (std::vector<std::uint8_t>{1, 2, 3, 4}));
  EXPECT_EQ(eeprom.wear(100), 1u);
  EXPECT_EQ(eeprom.wear(99), 0u);
  EXPECT_EQ(eeprom.total_writes(), 4u);
}

TEST(Eeprom, CorruptFlipsBits) {
  hw::Eeprom eeprom;
  sim::Rng rng(1);
  eeprom.corrupt(rng, 8);
  int changed = 0;
  for (std::size_t a = 0; a < hw::Eeprom::kSize; ++a) {
    if (eeprom.read(a) != 0xFF) ++changed;
  }
  EXPECT_GT(changed, 0);
  EXPECT_LE(changed, 8);
}

// --- calibration store -------------------------------------------------------------

core::CalibrationResult sample_calibration() {
  core::CalibrationResult calibration;
  calibration.curve = core::SensorCurve({10.9, 0.81, -0.02, 5.0});
  calibration.usable_near = util::Centimeters{4.2};
  calibration.usable_far = util::Centimeters{29.5};
  return calibration;
}

TEST(CalibrationStore, RoundTrip) {
  hw::Eeprom eeprom;
  core::CalibrationStore::save(eeprom, sample_calibration());
  const auto loaded = core::CalibrationStore::load(eeprom);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_NEAR(loaded->curve.params().a, 10.9, 1e-4);
  EXPECT_NEAR(loaded->curve.params().k, 0.81, 1e-4);
  EXPECT_NEAR(loaded->curve.params().c, -0.02, 1e-4);
  EXPECT_NEAR(loaded->usable_near.value, 4.2, 1e-4);
  EXPECT_NEAR(loaded->usable_far.value, 29.5, 1e-4);
}

TEST(CalibrationStore, FreshEepromHasNoRecord) {
  hw::Eeprom eeprom;
  EXPECT_FALSE(core::CalibrationStore::load(eeprom).has_value());
}

TEST(CalibrationStore, DetectsCorruption) {
  // Property: any single bit flip inside the record is caught.
  for (std::size_t byte = 0; byte < core::CalibrationStore::kRecordSize; ++byte) {
    hw::Eeprom eeprom;
    core::CalibrationStore::save(eeprom, sample_calibration());
    const auto address = core::CalibrationStore::kBaseAddress + byte;
    eeprom.write(address, eeprom.read(address) ^ 0x04);
    EXPECT_FALSE(core::CalibrationStore::load(eeprom).has_value()) << "byte " << byte;
  }
}

TEST(CalibrationStore, RejectsWrongVersion) {
  hw::Eeprom eeprom;
  core::CalibrationStore::save(eeprom, sample_calibration());
  eeprom.write(core::CalibrationStore::kBaseAddress + 2, 99);  // version byte
  EXPECT_FALSE(core::CalibrationStore::load(eeprom).has_value());
}

// --- device boot with calibration ----------------------------------------------------

TEST(DeviceCalibration, BootLoadsPersistedCurve) {
  auto menu_root = menu::make_flat_menu(5);
  sim::EventQueue queue;
  core::DistScrollDevice device({}, *menu_root, queue, sim::Rng(5));
  EXPECT_FALSE(device.load_calibration_from_eeprom());  // fresh EEPROM
  EXPECT_FALSE(device.calibrated_from_eeprom());

  auto calibration = sample_calibration();
  device.save_calibration_to_eeprom(calibration);
  EXPECT_TRUE(device.load_calibration_from_eeprom());
  EXPECT_TRUE(device.calibrated_from_eeprom());
  // The island table now derives from the stored curve and range.
  EXPECT_NEAR(device.config().islands.far.value, 29.5, 1e-3);
}

TEST(DeviceCalibration, CorruptRecordFallsBackToDefaults) {
  auto menu_root = menu::make_flat_menu(5);
  sim::EventQueue queue;
  core::DistScrollDevice device({}, *menu_root, queue, sim::Rng(6));
  device.save_calibration_to_eeprom(sample_calibration());
  sim::Rng rng(7);
  device.eeprom().corrupt(rng, 40);
  // With heavy corruption the record is (almost surely) invalid; the
  // device must still function on the default curve.
  const bool loaded = device.load_calibration_from_eeprom();
  device.power_on();
  device.set_distance_provider([](util::Seconds) { return util::Centimeters{17.0}; });
  queue.run_until(util::Seconds{0.5});
  EXPECT_TRUE(device.controller().selection().has_value());
  (void)loaded;  // either way the device works
}

// --- scheduler --------------------------------------------------------------------------

TEST(Scheduler, RunsTasksAtTheirPeriods) {
  sim::EventQueue queue;
  hw::Mcu mcu({}, queue);
  hw::Scheduler scheduler({}, mcu);
  int fast = 0, slow = 0;
  scheduler.add_task("fast", 1, 100, [&] { ++fast; });
  scheduler.add_task("slow", 10, 500, [&] { ++slow; });
  scheduler.start();
  queue.run_until(util::Seconds{0.1001});  // ~100 ticks at 1 ms
  EXPECT_NEAR(fast, 100, 2);
  EXPECT_NEAR(slow, 10, 1);
}

TEST(Scheduler, ChargesCyclesAndComputesUtilization) {
  sim::EventQueue queue;
  hw::Mcu mcu({}, queue);
  hw::Scheduler scheduler({}, mcu);
  scheduler.add_task("t", 1, 1000, [] {});
  scheduler.start();
  queue.run_until(util::Seconds{0.05});
  EXPECT_GE(mcu.cycles(), 40u * 1000u);
  // 1000 cycles per 10000-cycle tick budget = 10%.
  EXPECT_NEAR(scheduler.utilization(), 0.10, 0.01);
  EXPECT_EQ(scheduler.overruns(), 0u);
}

TEST(Scheduler, DetectsOverruns) {
  sim::EventQueue queue;
  hw::Mcu mcu({}, queue);
  hw::Scheduler scheduler({}, mcu);
  scheduler.add_task("hog", 1, 15000, [] {});  // > 10k cycles/ms budget
  scheduler.start();
  queue.run_until(util::Seconds{0.01});
  EXPECT_GT(scheduler.overruns(), 5u);
}

TEST(Scheduler, DisabledTasksDoNotRun) {
  sim::EventQueue queue;
  hw::Mcu mcu({}, queue);
  hw::Scheduler scheduler({}, mcu);
  int runs = 0;
  const auto task = scheduler.add_task("t", 1, 10, [&] { ++runs; });
  scheduler.set_enabled(task, false);
  scheduler.start();
  queue.run_until(util::Seconds{0.02});
  EXPECT_EQ(runs, 0);
  scheduler.set_enabled(task, true);
  queue.run_until(util::Seconds{0.04});
  EXPECT_GT(runs, 10);
}

// --- brownout -------------------------------------------------------------------------

TEST(Brownout, DeviceShutsDownOnDepletedBattery) {
  auto menu_root = menu::make_flat_menu(5);
  sim::EventQueue queue;
  core::DistScrollDevice::Config config;
  config.board.battery.capacity_mah = 0.02;  // seconds of life
  core::DistScrollDevice device(config, *menu_root, queue, sim::Rng(9));
  device.set_distance_provider([](util::Seconds) { return util::Centimeters{17.0}; });
  device.power_on();
  queue.run_until(util::Seconds{10.0});
  EXPECT_TRUE(device.browned_out());
  EXPECT_FALSE(device.powered());
  // Nothing keeps running afterwards.
  const auto cycles = device.board().mcu().cycles();
  queue.run_until(util::Seconds{12.0});
  EXPECT_EQ(device.board().mcu().cycles(), cycles);
}

}  // namespace
}  // namespace distscroll
