// Tests for the PDA add-on (dumb sensing dongle) + PDA host pair —
// the paper's planned "minimized version of the DistScroll as add-on
// for a PDA".
#include <gtest/gtest.h>

#include <set>

#include "menu/phone_menu.h"
#include "pda/pda_addon.h"
#include "pda/pda_host.h"
#include "wireless/rf_link.h"

namespace distscroll::pda {
namespace {

struct PdaFixture : ::testing::Test {
  std::unique_ptr<menu::MenuNode> menu_root = menu::make_phone_menu();
  sim::EventQueue queue;
  double distance_cm = 17.0;

  std::unique_ptr<PdaAddon> addon;
  std::unique_ptr<PdaHost> host;

  /// Direct cable: addon UART clocked straight into the host.
  void wire_direct() {
    addon = std::make_unique<PdaAddon>(PdaAddon::Config{}, queue, sim::Rng(1));
    addon->set_distance_provider(
        [this](util::Seconds) { return util::Centimeters{distance_cm}; });
    host = std::make_unique<PdaHost>(PdaHost::Config{}, *menu_root);
    host->set_addon_sink([this](std::uint8_t byte) { addon->on_host_byte(byte); });
    schedule_drain();  // clock the serial line
    addon->power_on();
  }

  void schedule_drain() {
    queue.schedule_after(addon->uart().byte_time(), [this] {
      if (auto byte = addon->uart().clock_out()) host->on_byte(*byte);
      schedule_drain();
    });
  }

  void settle(double s) { queue.run_until(util::Seconds{queue.now().value + s}); }

  double distance_for_index(std::size_t index) const {
    const auto& mapper = host->mapper();
    return mapper.centre_distance(mapper.entries() - 1 - index).value;
  }

  void click(input::Button& button) {
    button.press();
    settle(0.05);
    button.release();
    settle(0.05);
  }
};

TEST_F(PdaFixture, HostCursorFollowsAddonDistance) {
  wire_direct();
  settle(0.5);
  for (std::size_t target : {0u, 3u, 6u}) {
    distance_cm = distance_for_index(target);
    settle(0.6);
    EXPECT_EQ(host->cursor().index(), target) << target;
  }
  EXPECT_GT(host->frames_received(), 10u);
  EXPECT_EQ(host->crc_errors(), 0u);
}

TEST_F(PdaFixture, ButtonsNavigateTheTree) {
  wire_direct();
  distance_cm = distance_for_index(3);  // Settings
  settle(0.6);
  ASSERT_EQ(host->cursor().highlighted().label(), "Settings");
  click(addon->select_button());
  EXPECT_EQ(host->cursor().depth(), 1u);
  // Mapping rebuilt for the submenu size.
  EXPECT_EQ(host->mapper().entries(), host->cursor().level_size());
  click(addon->back_button());
  EXPECT_EQ(host->cursor().depth(), 0u);
}

TEST_F(PdaFixture, LeafActivationCallback) {
  wire_direct();
  std::string activated;
  host->on_leaf_activated([&](const std::string& label) { activated = label; });
  distance_cm = distance_for_index(6);  // "Profiles" leaf at root
  settle(0.6);
  ASSERT_EQ(host->cursor().highlighted().label(), "Profiles");
  click(addon->select_button());
  EXPECT_EQ(activated, "Profiles");
}

TEST_F(PdaFixture, ScreenShowsCursorMarker) {
  wire_direct();
  distance_cm = distance_for_index(2);
  settle(0.6);
  const auto screen = host->screen();
  ASSERT_GE(screen.size(), 3u);
  EXPECT_EQ(screen[2].substr(0, 2), "> ");
  EXPECT_EQ(screen[0].substr(0, 2), "  ");
}

TEST_F(PdaFixture, RateCommandThrottlesAddon) {
  wire_direct();
  settle(1.0);
  const auto before = addon->frames_sent();
  settle(1.0);
  const auto fast_rate = addon->frames_sent() - before;
  host->request_report_divider(10);  // 5x slower than the default 2
  settle(0.2);                        // command propagates
  const auto mid = addon->frames_sent();
  settle(1.0);
  const auto slow_rate = addon->frames_sent() - mid;
  EXPECT_LT(slow_rate * 3, fast_rate);
}

TEST_F(PdaFixture, AddonFirmwareIsTiny) {
  wire_direct();
  // The dumb dongle uses a fraction of the standalone firmware's
  // footprint — the point of moving interpretation to the PDA.
  EXPECT_LE(addon->board().mcu().flash_used(), 4u * 1024u);
  EXPECT_LE(addon->board().mcu().ram_used(), 128u);
}

TEST(PdaOverLossyLink, SurvivesLoss) {
  auto menu_root = menu::make_phone_menu();
  sim::EventQueue queue;
  double distance_cm = 17.0;
  PdaAddon addon({}, queue, sim::Rng(7));
  addon.set_distance_provider([&](util::Seconds) { return util::Centimeters{distance_cm}; });
  PdaHost host({}, *menu_root);

  wireless::RfLink::Config link_config;
  link_config.byte_loss_probability = 0.01;
  link_config.bit_flip_probability = 0.002;
  wireless::RfLink link(link_config, addon.uart(), queue, sim::Rng(8));
  link.set_host_sink([&](std::uint8_t byte) { host.on_byte(byte); });
  link.start();
  addon.power_on();

  queue.run_until(util::Seconds{1.0});
  const auto& mapper = host.mapper();
  distance_cm = mapper.centre_distance(mapper.entries() - 1 - 4).value;
  queue.run_until(util::Seconds{3.0});
  // Despite lost/corrupted frames, the cursor converges (state is
  // re-sent continuously — loss only delays, never desyncs).
  EXPECT_EQ(host.cursor().index(), 4u);
  EXPECT_GT(host.frames_received(), 20u);
}

}  // namespace
}  // namespace distscroll::pda
