// Tests for the study harness: task generators, metrics, sessions with
// learning, the full-device user study, and the report tables.
#include <gtest/gtest.h>

#include "baselines/button_scroll.h"
#include "baselines/distance_scroll.h"
#include "menu/phone_menu.h"
#include "study/device_study.h"
#include "study/metrics.h"
#include "study/report.h"
#include "study/session.h"
#include "study/task.h"
#include "study/trial.h"

namespace distscroll::study {
namespace {

// --- tasks ----------------------------------------------------------------------

TEST(Tasks, RandomTasksValid) {
  sim::Rng rng(1);
  const auto tasks = random_tasks(rng, 10, 50);
  ASSERT_EQ(tasks.size(), 50u);
  for (const auto& t : tasks) {
    EXPECT_LT(t.start_index, 10u);
    EXPECT_LT(t.target_index, 10u);
    EXPECT_NE(t.start_index, t.target_index);
  }
}

TEST(Tasks, FixedDistanceTasksHonourDistance) {
  sim::Rng rng(2);
  const auto tasks = fixed_distance_tasks(rng, 20, 7, 40);
  bool saw_up = false, saw_down = false;
  for (const auto& t : tasks) {
    const long diff =
        static_cast<long>(t.target_index) - static_cast<long>(t.start_index);
    EXPECT_EQ(std::abs(diff), 7);
    EXPECT_LT(t.target_index, 20u);
    saw_up |= diff < 0;
    saw_down |= diff > 0;
  }
  EXPECT_TRUE(saw_up);
  EXPECT_TRUE(saw_down);
}

// --- metrics -----------------------------------------------------------------------

TEST(Metrics, AggregateMixesSuccessAndFailure) {
  std::vector<TrialRecord> records(4);
  records[0].outcome = {true, 2.0, 0, 1, 0, 3.0};
  records[1].outcome = {true, 4.0, 1, 0, 0, 3.0};
  records[2].outcome = {false, 30.0, 5, 3, 2, 3.0};
  records[3].outcome = {true, 3.0, 0, 0, 1, 3.0};
  const Aggregate agg = aggregate(records);
  EXPECT_EQ(agg.trials, 4u);
  EXPECT_DOUBLE_EQ(agg.success_rate, 0.75);
  EXPECT_DOUBLE_EQ(agg.mean_time_s, 3.0);  // successes only
  EXPECT_DOUBLE_EQ(agg.error_rate, 0.75);  // 3 wrong selections / 4 trials
  EXPECT_DOUBLE_EQ(agg.mean_overshoots, 1.0);
  EXPECT_GT(agg.throughput_bits_s, 0.0);
}

TEST(Metrics, EmptyAggregateSafe) {
  const Aggregate agg = aggregate({});
  EXPECT_EQ(agg.trials, 0u);
  EXPECT_DOUBLE_EQ(agg.mean_time_s, 0.0);
}

// --- trials on real techniques -------------------------------------------------------

TEST(Trial, DistanceScrollCompletesTasks) {
  baselines::DistanceScroll technique({}, sim::Rng(3));
  sim::Rng rng(4);
  const auto tasks = random_tasks(rng, 8, 10);
  const auto records = run_trials(technique, tasks, human::UserProfile::average(), rng.fork(1));
  const Aggregate agg = aggregate(records);
  EXPECT_GT(agg.success_rate, 0.8);
  EXPECT_GT(agg.mean_time_s, 0.5);
  EXPECT_LT(agg.mean_time_s, 15.0);
}

TEST(Trial, ButtonScrollCompletesTasks) {
  baselines::ButtonScroll technique;
  sim::Rng rng(5);
  const auto tasks = random_tasks(rng, 8, 10);
  const auto records = run_trials(technique, tasks, human::UserProfile::average(), rng.fork(1));
  EXPECT_GT(aggregate(records).success_rate, 0.9);
}

TEST(Trial, RecordsScrollDistance) {
  baselines::ButtonScroll technique;
  SelectionTask task{10, 2, 7};
  const auto record = run_trial(technique, task, human::UserProfile::average(), sim::Rng(6));
  EXPECT_EQ(record.scroll_distance, 5u);
  EXPECT_EQ(record.level_size, 10u);
}

// --- sessions: the learning curve -----------------------------------------------------

TEST(Session, ErrorRateDropsWithPractice) {
  // Reproduces the Section 6 claim in miniature: novices start rough,
  // become nearly errorless within a few blocks.
  baselines::DistanceScroll technique({}, sim::Rng(7));
  SessionConfig config;
  config.blocks = 4;
  config.trials_per_block = 12;
  config.level_size = 8;
  const auto blocks =
      run_session(technique, human::UserProfile::novice(), config, sim::Rng(8));
  ASSERT_EQ(blocks.size(), 4u);
  EXPECT_GT(blocks.back().expertise, blocks.front().expertise);
  // Later blocks at least as fast as the first.
  EXPECT_LE(blocks.back().aggregate.mean_time_s, blocks.front().aggregate.mean_time_s * 1.05);
  // Final block: nearly errorless.
  EXPECT_GT(blocks.back().aggregate.success_rate, 0.9);
}

TEST(Session, ExpertiseSaturates) {
  baselines::ButtonScroll technique;
  SessionConfig config;
  config.blocks = 8;
  config.trials_per_block = 4;
  const auto blocks =
      run_session(technique, human::UserProfile::novice(), config, sim::Rng(9));
  EXPECT_LT(blocks.back().expertise, 1.0 + 1e-9);
  EXPECT_GT(blocks.back().expertise, 0.85);
}

// --- device study ------------------------------------------------------------------------

TEST(DeviceStudy, LeafTargetsCoverTree) {
  auto menu_root = menu::make_phone_menu();
  const auto targets = all_leaf_targets(*menu_root);
  EXPECT_GT(targets.size(), 20u);
  for (const auto& t : targets) {
    // Every path resolves to a leaf with the recorded label.
    const menu::MenuNode* node = menu_root.get();
    for (const std::size_t i : t.path) {
      ASSERT_LT(i, node->child_count());
      node = &node->child(i);
    }
    EXPECT_TRUE(node->is_leaf());
    EXPECT_EQ(node->label(), t.label);
  }
}

TEST(DeviceStudy, ParticipantCompletesBlocks) {
  auto menu_root = menu::make_phone_menu();
  DeviceStudyConfig config;
  config.blocks = 2;
  config.trials_per_block = 3;
  const auto result = run_device_participant(*menu_root, human::UserProfile::average(), config,
                                             sim::Rng(10));
  ASSERT_EQ(result.blocks.size(), 2u);
  EXPECT_GT(result.discovery_time_s, 0.5);
  // An average participant succeeds at most trials even in block 0.
  EXPECT_GT(result.blocks[0].success_rate + result.blocks[1].success_rate, 1.0);
}

// --- report ---------------------------------------------------------------------------------

TEST(Report, TableRendersAligned) {
  Table table({"technique", "time", "errors"});
  table.add_row("DistScroll", {1.234, 0.05});
  table.add_row({"ButtonScroll", "2.5", "0.01"});
  const std::string out = table.render();
  EXPECT_NE(out.find("DistScroll"), std::string::npos);
  EXPECT_NE(out.find("1.234"), std::string::npos);
  // All lines share the same width.
  std::size_t first_len = out.find('\n');
  for (std::size_t pos = 0; pos < out.size();) {
    const std::size_t next = out.find('\n', pos);
    if (next == std::string::npos) break;
    EXPECT_EQ(next - pos, first_len);
    pos = next + 1;
  }
}

TEST(Report, FmtPrecision) {
  EXPECT_EQ(fmt(1.23456, 2), "1.23");
  EXPECT_EQ(fmt(1.0, 0), "1");
}

}  // namespace
}  // namespace distscroll::study
