// Unit tests for util: ring buffer, fixed point, CRC, stats/fitting,
// CSV, ASCII plot.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>

#include "util/ascii_plot.h"
#include "util/crc.h"
#include "util/csv.h"
#include "util/fixed_point.h"
#include "util/ring_buffer.h"
#include "util/stats.h"
#include "util/units.h"

namespace distscroll::util {
namespace {

// --- units -----------------------------------------------------------------

TEST(Units, CentimetersArithmetic) {
  const Centimeters a{10.0}, b{4.0};
  EXPECT_DOUBLE_EQ((a + b).value, 14.0);
  EXPECT_DOUBLE_EQ((a - b).value, 6.0);
  EXPECT_DOUBLE_EQ((a * 2.0).value, 20.0);
  EXPECT_DOUBLE_EQ((a / 2.0).value, 5.0);
  EXPECT_LT(b, a);
}

TEST(Units, SecondsFromMilliseconds) {
  EXPECT_DOUBLE_EQ(milliseconds(38.3).value, 0.0383);
}

TEST(Units, AdcCountsCompare) {
  EXPECT_LT(AdcCounts{100}, AdcCounts{200});
  EXPECT_EQ(AdcCounts{512}, AdcCounts{512});
}

// --- ring buffer -----------------------------------------------------------

TEST(RingBuffer, StartsEmpty) {
  RingBuffer<int, 4> rb;
  EXPECT_TRUE(rb.empty());
  EXPECT_FALSE(rb.full());
  EXPECT_EQ(rb.size(), 0u);
  EXPECT_EQ(rb.pop(), std::nullopt);
  EXPECT_EQ(rb.front(), std::nullopt);
  EXPECT_EQ(rb.back(), std::nullopt);
}

TEST(RingBuffer, FifoOrder) {
  RingBuffer<int, 4> rb;
  for (int i = 1; i <= 4; ++i) EXPECT_TRUE(rb.try_push(i));
  EXPECT_TRUE(rb.full());
  EXPECT_FALSE(rb.try_push(5));
  for (int i = 1; i <= 4; ++i) EXPECT_EQ(rb.pop(), i);
  EXPECT_TRUE(rb.empty());
}

TEST(RingBuffer, PushOverwriteEvictsOldest) {
  RingBuffer<int, 3> rb;
  EXPECT_FALSE(rb.push_overwrite(1));
  EXPECT_FALSE(rb.push_overwrite(2));
  EXPECT_FALSE(rb.push_overwrite(3));
  EXPECT_TRUE(rb.push_overwrite(4));  // evicts 1
  EXPECT_EQ(rb.front(), 2);
  EXPECT_EQ(rb.back(), 4);
  EXPECT_EQ(rb.at_from_oldest(0), 2);
  EXPECT_EQ(rb.at_from_oldest(2), 4);
}

TEST(RingBuffer, WrapsAroundManyTimes) {
  RingBuffer<int, 3> rb;
  for (int i = 0; i < 100; ++i) rb.push_overwrite(i);
  EXPECT_EQ(rb.front(), 97);
  EXPECT_EQ(rb.back(), 99);
}

TEST(RingBuffer, ClearResets) {
  RingBuffer<int, 2> rb;
  rb.push_overwrite(1);
  rb.clear();
  EXPECT_TRUE(rb.empty());
  EXPECT_TRUE(rb.try_push(9));
  EXPECT_EQ(rb.front(), 9);
}

// --- fixed point -----------------------------------------------------------

TEST(FixedPoint, RoundTripIntegers) {
  for (int i = -100; i <= 100; i += 7) {
    EXPECT_EQ(Q8_8::from_int(i).to_int(), i);
  }
}

TEST(FixedPoint, FromDoubleQuantizes) {
  const Q8_8 q = Q8_8::from_double(1.5);
  EXPECT_DOUBLE_EQ(q.to_double(), 1.5);
  // 1/256 resolution.
  EXPECT_NEAR(Q8_8::from_double(0.1).to_double(), 0.1, 1.0 / 256.0);
}

TEST(FixedPoint, Arithmetic) {
  const Q8_8 a = Q8_8::from_double(2.5);
  const Q8_8 b = Q8_8::from_double(1.25);
  EXPECT_DOUBLE_EQ((a + b).to_double(), 3.75);
  EXPECT_DOUBLE_EQ((a - b).to_double(), 1.25);
  EXPECT_NEAR((a * b).to_double(), 3.125, 1.0 / 128.0);
  EXPECT_NEAR((a / b).to_double(), 2.0, 1.0 / 128.0);
}

TEST(FixedPoint, NegativeValues) {
  const Q8_8 a = Q8_8::from_double(-3.5);
  EXPECT_DOUBLE_EQ(a.to_double(), -3.5);
  EXPECT_NEAR((a * Q8_8::from_int(2)).to_double(), -7.0, 1.0 / 128.0);
}

// --- CRC ---------------------------------------------------------------------

TEST(Crc, Crc8KnownProperties) {
  const std::uint8_t empty[] = {0};
  EXPECT_EQ(crc8({empty, 0}), 0x00);  // empty message: init value
  const std::uint8_t data[] = {0x01, 0x02, 0x03};
  const std::uint8_t c = crc8(data);
  // Appending the CRC makes the residue stable: recompute differs from 0
  // only for a corrupted stream; here just check determinism and change
  // detection.
  std::uint8_t tampered[] = {0x01, 0x02, 0x07};
  EXPECT_NE(crc8(tampered), c);
  EXPECT_EQ(crc8(data), c);
}

TEST(Crc, Crc16DetectsSingleBitFlips) {
  std::uint8_t data[] = {0xDE, 0xAD, 0xBE, 0xEF, 0x42};
  const std::uint16_t base = crc16_ccitt(data);
  for (std::size_t byte = 0; byte < sizeof(data); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      data[byte] ^= static_cast<std::uint8_t>(1u << bit);
      EXPECT_NE(crc16_ccitt(data), base) << "missed flip at " << byte << ":" << bit;
      data[byte] ^= static_cast<std::uint8_t>(1u << bit);
    }
  }
}

TEST(Crc, Crc16CcittKnownVector) {
  // "123456789" -> 0x29B1 for CRC-16/CCITT-FALSE.
  const std::uint8_t msg[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(crc16_ccitt(msg), 0x29B1);
}

// --- stats -------------------------------------------------------------------

TEST(Stats, SummarizeBasics) {
  const double values[] = {1.0, 2.0, 3.0, 4.0, 5.0};
  const Summary s = summarize(values);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.5), 1e-12);
}

TEST(Stats, SummarizeEmptyAndSingle) {
  EXPECT_EQ(summarize({}).count, 0u);
  const double one[] = {7.0};
  const Summary s = summarize(one);
  EXPECT_DOUBLE_EQ(s.mean, 7.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(Stats, PercentileInterpolates) {
  const double values[] = {10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile(values, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(values, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile(values, 0.5), 25.0);
}

TEST(Stats, LinearFitExact) {
  const double xs[] = {0.0, 1.0, 2.0, 3.0};
  const double ys[] = {1.0, 3.0, 5.0, 7.0};
  const LinearFit fit = fit_linear(xs, ys);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(Stats, LinearFitNoisy) {
  std::vector<double> xs, ys;
  for (int i = 0; i < 50; ++i) {
    xs.push_back(i);
    ys.push_back(3.0 * i - 2.0 + ((i % 2) ? 0.5 : -0.5));
  }
  const LinearFit fit = fit_linear(xs, ys);
  EXPECT_NEAR(fit.slope, 3.0, 0.01);
  EXPECT_GT(fit.r_squared, 0.999);
}

TEST(Stats, HyperbolicFitRecoversParameters) {
  // y = 10.4/(x + 0.6) + 0.0 — the GP2D120 idealised curve.
  std::vector<double> xs, ys;
  for (double x = 4.0; x <= 30.0; x += 1.0) {
    xs.push_back(x);
    ys.push_back(10.4 / (x + 0.6));
  }
  const HyperbolicFit fit = fit_hyperbolic(xs, ys);
  EXPECT_NEAR(fit.a, 10.4, 0.2);
  EXPECT_NEAR(fit.k, 0.6, 0.1);
  EXPECT_NEAR(fit.c, 0.0, 0.02);
  EXPECT_GT(fit.r_squared, 0.9999);
}

TEST(Stats, PowerFitRecoversExponent) {
  std::vector<double> xs, ys;
  for (double x = 1.0; x <= 30.0; x += 1.0) {
    xs.push_back(x);
    ys.push_back(5.0 * std::pow(x, -0.9));
  }
  const PowerFit fit = fit_power(xs, ys);
  EXPECT_NEAR(fit.A, 5.0, 0.05);
  EXPECT_NEAR(fit.b, -0.9, 0.01);
  EXPECT_GT(fit.r_squared, 0.9999);
}

TEST(Stats, RSquaredPerfectAndPoor) {
  const double obs[] = {1.0, 2.0, 3.0};
  const double good[] = {1.0, 2.0, 3.0};
  const double bad[] = {3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(r_squared(obs, good), 1.0);
  EXPECT_LT(r_squared(obs, bad), 0.0);  // worse than the mean predictor
}

TEST(Stats, WelchTSeparatesDistinctMeans) {
  std::vector<double> a, b;
  for (int i = 0; i < 30; ++i) {
    a.push_back(10.0 + 0.1 * (i % 5));
    b.push_back(12.0 + 0.1 * (i % 5));
  }
  EXPECT_LT(welch_t(a, b), -2.0);
  EXPECT_GT(welch_t(b, a), 2.0);
  EXPECT_NEAR(welch_t(a, a), 0.0, 1e-12);
}

// --- CSV ---------------------------------------------------------------------

TEST(Csv, WritesHeaderAndRows) {
  const std::string path = "test_csv_out.csv";
  {
    CsvWriter csv(path, {"a", "b"});
    ASSERT_TRUE(csv.ok());
    csv.row({1.5, 2.5});
    csv.row({std::vector<std::string>{"x,y", "has \"quote\""}});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "1.5,2.5");
  std::getline(in, line);
  EXPECT_EQ(line, "\"x,y\",\"has \"\"quote\"\"\"");
  std::remove(path.c_str());
}

// --- ASCII plot ----------------------------------------------------------------

TEST(AsciiPlot, PlotsPointsAndFit) {
  const double xs[] = {1.0, 2.0, 3.0};
  const double ys[] = {1.0, 4.0, 9.0};
  PlotOptions options;
  options.title = "T";
  const std::string plot = ascii_plot(xs, ys, xs, ys, options);
  EXPECT_NE(plot.find('T'), std::string::npos);
  // Coincident point+fit cells render as '#'.
  EXPECT_NE(plot.find('#'), std::string::npos);
}

TEST(AsciiPlot, EmptyDataSafe) {
  const std::string plot = ascii_plot({}, {}, {}, {}, {});
  EXPECT_EQ(plot, "(no data)\n");
}

TEST(AsciiPlot, LogAxisSkipsNonPositive) {
  const double xs[] = {-1.0, 1.0, 10.0, 100.0};
  const double ys[] = {5.0, 1.0, 2.0, 3.0};
  PlotOptions options;
  options.log_x = true;
  const std::string plot = ascii_plot(xs, ys, {}, {}, options);
  EXPECT_NE(plot.find('*'), std::string::npos);  // positive points plotted
}

}  // namespace
}  // namespace distscroll::util
