// Tests for the scrolling-technique implementations the comparison
// study pits against DistScroll.
#include <gtest/gtest.h>

#include "baselines/button_scroll.h"
#include "baselines/distance_scroll.h"
#include "baselines/radial_scroll.h"
#include "baselines/tilt_scroll.h"
#include "baselines/wheel_scroll.h"

namespace distscroll::baselines {
namespace {

// --- DistanceScroll -----------------------------------------------------------

struct DistanceFixture : ::testing::Test {
  DistanceScroll technique{{}, sim::Rng(1)};

  /// Drive the control channel steadily for `seconds` at distance `u`.
  void hold(double u, double seconds, double t0 = 0.0) {
    for (double t = t0; t < t0 + seconds; t += 0.005) {
      technique.on_control(util::Seconds{t}, u);
    }
  }
};

TEST_F(DistanceFixture, AbsoluteSpecInCentimeters) {
  const auto spec = technique.spec();
  EXPECT_EQ(spec.style, ControlStyle::AbsolutePosition);
  EXPECT_EQ(spec.unit, "cm");
  EXPECT_LT(spec.u_min, 4.0);
  EXPECT_GT(spec.u_max, 30.0);
}

TEST_F(DistanceFixture, TargetUAcquiresTarget) {
  technique.reset(8, 0);
  const auto u = technique.target_u(5);
  ASSERT_TRUE(u.has_value());
  hold(*u, 0.5);
  EXPECT_EQ(technique.cursor(), 5u);
}

TEST_F(DistanceFixture, AllTargetsReachable) {
  // At the far end of the range islands are only a few ADC counts wide,
  // so with sensor + ADC noise the cursor can flicker off a far target
  // between samples; "reachable" means the cursor lands on the target
  // at some point while the hand holds its centre distance.
  technique.reset(10, 0);
  double t = 0.0;
  for (std::size_t target = 0; target < 10; ++target) {
    const double u = *technique.target_u(target);
    bool reached = false;
    for (double tt = t; tt < t + 0.4; tt += 0.005) {
      technique.on_control(util::Seconds{tt}, u);
      reached |= technique.cursor() == target;
    }
    t += 0.4;
    EXPECT_TRUE(reached) << target;
  }
}

TEST_F(DistanceFixture, WidthsNarrowerWithMoreEntries) {
  technique.reset(5, 0);
  const double w5 = technique.target_width_u(2);
  technique.reset(25, 0);
  const double w25 = technique.target_width_u(12);
  EXPECT_GT(w5, w25 * 2);
}

TEST_F(DistanceFixture, DirectionMappingMatchesDevice) {
  // Default: toward user scrolls down => target 0 is the FARTHEST.
  technique.reset(6, 0);
  EXPECT_GT(*technique.target_u(0), *technique.target_u(5));
}

TEST_F(DistanceFixture, NearlyGloveInsensitive) {
  EXPECT_LT(technique.glove_sensitivity(), 0.3);
}

// --- TiltScroll ------------------------------------------------------------------

struct TiltFixture : ::testing::Test {
  TiltScroll technique{{}, sim::Rng(2)};

  void hold_tilt(double rad, double seconds, double& t) {
    for (double end = t + seconds; t < end; t += 0.005) {
      technique.on_control(util::Seconds{t}, rad);
    }
  }
};

TEST_F(TiltFixture, DeadbandHoldsStill) {
  technique.reset(20, 10);
  double t = 0.0;
  hold_tilt(0.03, 2.0, t);  // inside deadband
  EXPECT_EQ(technique.cursor(), 10u);
}

TEST_F(TiltFixture, PositiveTiltScrollsDown) {
  technique.reset(20, 0);
  double t = 0.0;
  hold_tilt(0.5, 1.0, t);
  EXPECT_GT(technique.cursor(), 5u);
}

TEST_F(TiltFixture, NegativeTiltScrollsUp) {
  technique.reset(20, 19);
  double t = 0.0;
  hold_tilt(-0.5, 1.0, t);
  EXPECT_LT(technique.cursor(), 15u);
}

TEST_F(TiltFixture, VelocityProportionalToTilt) {
  technique.reset(200, 0);
  double t = 0.0;
  hold_tilt(0.2, 1.0, t);
  const auto gentle = technique.cursor();
  technique.reset(200, 0);
  t = 0.0;
  hold_tilt(0.55, 1.0, t);
  const auto steep = technique.cursor();
  EXPECT_GT(steep, gentle * 2);
}

TEST_F(TiltFixture, ClampsAtEnds) {
  technique.reset(5, 4);
  double t = 0.0;
  hold_tilt(0.55, 5.0, t);
  EXPECT_EQ(technique.cursor(), 4u);
}

// --- WheelScroll -------------------------------------------------------------------

struct WheelFixture : ::testing::Test {
  WheelScroll::Config config{9.0, 1.1, /*jam_probability=*/0.0, util::Seconds{1.5}};
  WheelScroll technique{config, sim::Rng(3)};

  void stroke(double length, int direction, double& t) {
    technique.set_direction(direction);
    technique.set_engaged(true);
    for (double u = 0.0; u <= length; u += 0.05) {
      technique.on_control(util::Seconds{t}, u);
      t += 0.002;
    }
    technique.set_engaged(false);
    for (double u = length; u >= 0.0; u -= 0.1) {
      technique.on_control(util::Seconds{t}, u);  // retraction
      t += 0.002;
    }
  }
};

TEST_F(WheelFixture, PullMovesCursorByGain) {
  technique.reset(50, 0);
  double t = 0.0;
  stroke(5.0, +1, t);
  EXPECT_NEAR(static_cast<double>(technique.cursor()), 5.0 * 1.1, 1.0);
}

TEST_F(WheelFixture, RetractionFreewheels) {
  technique.reset(50, 0);
  double t = 0.0;
  stroke(5.0, +1, t);
  const auto after_stroke = technique.cursor();
  // Another full retract cycle with no pull: no motion.
  technique.set_engaged(false);
  for (double u = 0.0; u <= 3.0; u += 0.1) technique.on_control(util::Seconds{t}, u);
  EXPECT_EQ(technique.cursor(), after_stroke);
}

TEST_F(WheelFixture, DirectionReverses) {
  technique.reset(50, 30);
  double t = 0.0;
  stroke(5.0, -1, t);
  EXPECT_LT(technique.cursor(), 28u);
}

TEST_F(WheelFixture, DisengagedPullDoesNothing) {
  technique.reset(50, 10);
  technique.set_direction(1);
  for (double u = 0.0; u <= 5.0; u += 0.1) technique.on_control(util::Seconds{0.0}, u);
  EXPECT_EQ(technique.cursor(), 10u);
}

TEST(WheelScrollJam, JamBlocksInputForRecoveryTime) {
  WheelScroll::Config config;
  config.jam_probability = 1.0;  // always jams
  WheelScroll technique(config, sim::Rng(4));
  technique.reset(50, 0);
  technique.set_direction(1);
  technique.set_engaged(true);
  double t = 0.0;
  for (double u = 0.0; u <= 5.0; u += 0.1) {
    technique.on_control(util::Seconds{t}, u);
    t += 0.002;
  }
  EXPECT_EQ(technique.cursor(), 0u);  // jam ate the stroke
  EXPECT_TRUE(technique.jammed(util::Seconds{t}));
  EXPECT_FALSE(technique.jammed(util::Seconds{t + 2.0}));
}

// --- ButtonScroll -------------------------------------------------------------------

TEST(ButtonScroll, SingleStepsClamped) {
  ButtonScroll technique;
  technique.reset(5, 0);
  technique.on_step(util::Seconds{0.0}, -1);
  EXPECT_EQ(technique.cursor(), 0u);
  technique.on_step(util::Seconds{0.1}, 1);
  technique.on_step(util::Seconds{0.2}, 1);
  EXPECT_EQ(technique.cursor(), 2u);
  for (int i = 0; i < 10; ++i) technique.on_step(util::Seconds{0.3}, 1);
  EXPECT_EQ(technique.cursor(), 4u);
}

TEST(ButtonScroll, HoldRepeatsAfterDelay) {
  ButtonScroll technique;
  technique.reset(100, 0);
  technique.begin_hold(util::Seconds{0.0}, 1);
  EXPECT_EQ(technique.cursor(), 1u);  // initial press
  technique.poll_hold(util::Seconds{0.4});
  EXPECT_EQ(technique.cursor(), 1u);  // still inside repeat delay
  technique.poll_hold(util::Seconds{0.5 + 0.08 * 5});
  EXPECT_EQ(technique.cursor(), 1u + 5u + 1u);  // delay + 5 periods (first fires at 0.5)
  technique.end_hold(util::Seconds{1.5});
  EXPECT_FALSE(technique.holding());
}

TEST(ButtonScroll, EndHoldAppliesDueRepeats) {
  ButtonScroll technique;
  technique.reset(100, 0);
  technique.begin_hold(util::Seconds{0.0}, 1);
  technique.end_hold(util::Seconds{0.5 + 0.08 * 3});
  // 1 initial + repeats at 0.5, 0.58, 0.66, 0.74.
  EXPECT_EQ(technique.cursor(), 5u);
}

TEST(ButtonScroll, MaximallyGloveSensitive) {
  ButtonScroll technique;
  EXPECT_DOUBLE_EQ(technique.glove_sensitivity(), 1.0);
}

// --- RadialScroll ---------------------------------------------------------------------

TEST(RadialScroll, AngleMapsToEntries) {
  RadialScroll technique;
  technique.reset(50, 0);
  technique.on_control(util::Seconds{0.0}, 0.0);
  technique.on_control(util::Seconds{0.5}, 1.0);  // one revolution
  EXPECT_EQ(technique.cursor(), 8u);
}

TEST(RadialScroll, ReverseCircling) {
  RadialScroll technique;
  technique.reset(50, 20);
  technique.on_control(util::Seconds{0.0}, 0.0);
  technique.on_control(util::Seconds{0.5}, -1.0);
  EXPECT_EQ(technique.cursor(), 12u);
}

TEST(RadialScroll, UnboundedAccumulation) {
  RadialScroll technique;
  technique.reset(100, 0);
  technique.on_control(util::Seconds{0.0}, 0.0);
  for (int rev = 1; rev <= 20; ++rev) {
    technique.on_control(util::Seconds{rev * 0.5}, static_cast<double>(rev));
  }
  EXPECT_EQ(technique.cursor(), 99u);  // clamped at the end
}

TEST(RadialScroll, TwoHandedAndGloveHostile) {
  RadialScroll technique;
  EXPECT_FALSE(technique.one_handed());
  EXPECT_GT(technique.glove_sensitivity(), 1.0);
}

}  // namespace
}  // namespace distscroll::baselines
