// Tests for the parallel experiment engine (PR: parallel sweep runner +
// event-queue overhaul): ThreadPool correctness, SweepRunner's
// determinism contract (bit-identical results at any thread count), the
// binary-heap event calendar's dispatch order and lazy cancellation,
// and the cached-spare gaussian.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "core/distscroll_device.h"
#include "human/user_profile.h"
#include "menu/phone_menu.h"
#include "obs/tracer.h"
#include "sim/event_queue.h"
#include "sim/random.h"
#include "sim/thread_pool.h"
#include "study/device_pool.h"
#include "study/device_study.h"
#include "study/sweep_runner.h"
#include "util/csv.h"

namespace distscroll {
namespace {

// ---------------------------------------------------------------------------
// ThreadPool

TEST(ThreadPool, EveryIndexRunsExactlyOnce) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    for (const std::size_t chunk : {std::size_t{1}, std::size_t{7}, std::size_t{64}}) {
      sim::ThreadPool pool(threads);
      constexpr std::size_t kCount = 1000;
      std::vector<std::atomic<int>> hits(kCount);
      pool.parallel_for(kCount, [&](std::size_t i) { hits[i].fetch_add(1); }, chunk);
      for (std::size_t i = 0; i < kCount; ++i) {
        EXPECT_EQ(hits[i].load(), 1) << "index " << i << " threads=" << threads
                                     << " chunk=" << chunk;
      }
    }
  }
}

TEST(ThreadPool, ZeroCountIsANoOp) {
  sim::ThreadPool pool(4);
  bool ran = false;
  pool.parallel_for(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, ReusableAcrossJobs) {
  sim::ThreadPool pool(4);
  for (int job = 0; job < 50; ++job) {
    std::atomic<std::size_t> sum{0};
    pool.parallel_for(100, [&](std::size_t i) { sum.fetch_add(i); });
    EXPECT_EQ(sum.load(), 100u * 99u / 2u) << "job " << job;
  }
}

TEST(ThreadPool, SizeCountsCaller) {
  EXPECT_EQ(sim::ThreadPool(1).size(), 1u);
  EXPECT_EQ(sim::ThreadPool(8).size(), 8u);
  EXPECT_GE(sim::ThreadPool(0).size(), 1u);  // hardware default, at least the caller
}

// ---------------------------------------------------------------------------
// SweepRunner determinism contract

struct CellOut {
  std::uint64_t a = 0;
  double b = 0.0;

  friend bool operator==(const CellOut&, const CellOut&) = default;
};

CellOut sweep_body(std::size_t index, sim::Rng rng) {
  CellOut out;
  out.a = index * 1000003u + rng.uniform_int(0, 1 << 20);
  // Mix draws so any RNG-sharing bug between cells shows up.
  for (int i = 0; i < 16; ++i) out.b += rng.gaussian(0.0, 1.0) + rng.uniform(0.0, 1.0);
  return out;
}

TEST(SweepRunner, BitIdenticalAcrossThreadCounts) {
  constexpr std::size_t kCells = 257;  // not a multiple of any chunk size
  study::SweepConfig sequential;
  sequential.threads = 1;
  sequential.base_seed = 42;
  const auto expected = study::SweepRunner(sequential).run<CellOut>(kCells, sweep_body);
  ASSERT_EQ(expected.size(), kCells);

  for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    for (const std::size_t chunk : {std::size_t{1}, std::size_t{5}}) {
      study::SweepConfig config;
      config.threads = threads;
      config.chunk = chunk;
      config.base_seed = 42;
      const auto got = study::SweepRunner(config).run<CellOut>(kCells, sweep_body);
      EXPECT_TRUE(got == expected) << "threads=" << threads << " chunk=" << chunk;
    }
  }
}

TEST(SweepRunner, CellRngDependsOnIndexNotSchedule) {
  // Cell i's stream must equal Rng(base_seed).fork(i) regardless of
  // which cells ran before it or on which worker.
  study::SweepConfig config;
  config.threads = 8;
  config.base_seed = 7;
  const auto streams = study::SweepRunner(config).run<std::uint64_t>(
      64, [](std::size_t, sim::Rng rng) { return rng.uniform_int(0, 1 << 30); });
  for (std::size_t i = 0; i < streams.size(); ++i) {
    sim::Rng reference = sim::Rng(7).fork(i);
    EXPECT_EQ(streams[i], static_cast<std::uint64_t>(reference.uniform_int(0, 1 << 30)))
        << "cell " << i;
  }
}

TEST(SweepRunner, DifferentSeedsDiverge) {
  study::SweepConfig a, b;
  a.threads = b.threads = 1;
  a.base_seed = 1;
  b.base_seed = 2;
  auto body = [](std::size_t, sim::Rng rng) { return rng.uniform(0.0, 1.0); };
  EXPECT_NE(study::SweepRunner(a).run<double>(8, body),
            study::SweepRunner(b).run<double>(8, body));
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(SweepRunner, CsvBytesIdenticalAcrossThreadCounts) {
  // End-to-end shape of every converted bench: sweep -> CSV. The files
  // written from a 1-thread and an 8-thread run must match byte for byte.
  auto emit = [](std::size_t threads, const std::string& path) {
    study::SweepConfig config;
    config.threads = threads;
    config.base_seed = 0xC0FFEE;
    const auto cells = study::SweepRunner(config).run<CellOut>(33, sweep_body);
    util::CsvWriter csv(path, {"cell", "a", "b"});
    for (std::size_t i = 0; i < cells.size(); ++i) {
      csv.row({static_cast<double>(i), static_cast<double>(cells[i].a), cells[i].b});
    }
  };
  const std::string seq = "parallel_test_seq.csv";
  const std::string par = "parallel_test_par.csv";
  emit(1, seq);
  emit(8, par);
  const std::string seq_bytes = slurp(seq);
  ASSERT_FALSE(seq_bytes.empty());
  EXPECT_EQ(seq_bytes, slurp(par));
  std::remove(seq.c_str());
  std::remove(par.c_str());
}

TEST(SweepRunner, ThreadsResolveFromEnvironment) {
  // Explicit request wins over everything.
  EXPECT_EQ(study::resolve_sweep_threads(3), 3u);
}

// ---------------------------------------------------------------------------
// Tracing must not perturb behaviour (the obs determinism contract)

struct DeviceCellOut {
  std::size_t cursor_index = 0;
  std::size_t cursor_depth = 0;
  std::uint64_t mcu_cycles = 0;
  std::uint64_t redraws = 0;
  std::uint64_t frames_written = 0;
  std::uint64_t controller_changes = 0;

  friend bool operator==(const DeviceCellOut&, const DeviceCellOut&) = default;
};

// A full device session per cell; `traced` only toggles whether a tracer
// observes it. The outputs must be unaffected.
DeviceCellOut device_session_cell(std::size_t index, sim::Rng rng, bool traced) {
  auto menu_root = menu::make_phone_menu();
  sim::EventQueue queue;
  core::DistScrollDevice::Config config;
  core::DistScrollDevice device(config, *menu_root, queue, std::move(rng));
  obs::Tracer tracer(1 << 14, obs::kCatAll);
  if (traced) device.attach_tracer(&tracer);
  const double base = 10.0 + static_cast<double>(index % 7) * 2.0;
  device.set_distance_provider([base](util::Seconds now) {
    return util::Centimeters{base + 6.0 * std::sin(now.value * 2.3)};
  });
  device.power_on();
  queue.schedule_at(util::Seconds{0.5}, [&] { device.select_button().press(); });
  queue.schedule_at(util::Seconds{0.58}, [&] { device.select_button().release(); });
  queue.run_until(util::Seconds{1.0});
  DeviceCellOut out;
  out.cursor_index = device.cursor().index();
  out.cursor_depth = device.cursor().depth();
  out.mcu_cycles = device.board().mcu().cycles();
  out.redraws = device.redraws();
  out.frames_written = device.top_display().frames_written();
  out.controller_changes = device.controller().selection_changes();
  return out;
}

TEST(TracingProperty, SweepResultsIdenticalTracedOrNot) {
  constexpr std::size_t kCells = 12;
  constexpr std::uint64_t kSeed = 0xD15C0;
  std::vector<DeviceCellOut> runs[4];
  std::size_t slot = 0;
  for (const bool traced : {false, true}) {
    for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
      study::SweepConfig config;
      config.threads = threads;
      config.base_seed = kSeed;
      runs[slot++] = study::SweepRunner(config).run<DeviceCellOut>(
          kCells, [traced](std::size_t index, sim::Rng rng) {
            return device_session_cell(index, std::move(rng), traced);
          });
    }
  }
  ASSERT_EQ(runs[0].size(), kCells);
  EXPECT_GT(runs[0][0].mcu_cycles, 0u);  // the sessions actually ran
  EXPECT_TRUE(runs[1] == runs[0]) << "untraced diverged across thread counts";
  EXPECT_TRUE(runs[2] == runs[0]) << "tracing perturbed device behaviour";
  EXPECT_TRUE(runs[3] == runs[0]) << "tracing perturbed 8-thread sweep";
}

TEST(TracingProperty, CsvBytesIdenticalTracedOrNot) {
  // The end-to-end bench shape: sweep -> CSV file. The bytes on disk
  // must not depend on whether a tracer was watching, at any thread
  // count.
  auto emit = [](bool traced, std::size_t threads, const std::string& path) {
    study::SweepConfig config;
    config.threads = threads;
    config.base_seed = 77;
    const auto cells = study::SweepRunner(config).run<DeviceCellOut>(
        8, [traced](std::size_t index, sim::Rng rng) {
          return device_session_cell(index, std::move(rng), traced);
        });
    util::CsvWriter csv(path, {"cell", "cursor", "depth", "cycles", "redraws"});
    for (std::size_t i = 0; i < cells.size(); ++i) {
      csv.row({static_cast<double>(i), static_cast<double>(cells[i].cursor_index),
               static_cast<double>(cells[i].cursor_depth),
               static_cast<double>(cells[i].mcu_cycles),
               static_cast<double>(cells[i].redraws)});
    }
  };
  const std::string untraced = "tracing_property_off.csv";
  const std::string traced1 = "tracing_property_on_1t.csv";
  const std::string traced8 = "tracing_property_on_8t.csv";
  emit(false, 1, untraced);
  emit(true, 1, traced1);
  emit(true, 8, traced8);
  const std::string reference = slurp(untraced);
  ASSERT_FALSE(reference.empty());
  EXPECT_EQ(reference, slurp(traced1));
  EXPECT_EQ(reference, slurp(traced8));
  std::remove(untraced.c_str());
  std::remove(traced1.c_str());
  std::remove(traced8.c_str());
}

// ---------------------------------------------------------------------------
// DevicePool: a recycled session must be bit-identical to a fresh device

// One device-study cell: a participant runs discovery plus two short
// blocks on the real device. `use_pool` selects recycled vs freshly
// constructed device; the outputs may not depend on the choice.
study::DeviceParticipantResult participant_cell(std::size_t index, sim::Rng rng,
                                                bool use_pool) {
  const auto menu_root = menu::make_phone_menu();
  study::DeviceStudyConfig config;
  config.blocks = 2;
  config.trials_per_block = 2;
  human::UserProfile profile = human::UserProfile{}.with_expertise(
      0.2 + 0.15 * static_cast<double>(index % 5));
  return study::run_device_participant(*menu_root, profile, config, std::move(rng), use_pool);
}

bool same_result(const study::DeviceParticipantResult& a,
                 const study::DeviceParticipantResult& b) {
  return a.name == b.name && a.discovery_time_s == b.discovery_time_s && a.blocks == b.blocks;
}

TEST(DevicePoolProperty, WarmResetBitIdenticalToFreshConstruction) {
  study::DevicePool::local().discard();  // force the next acquire to construct
  const sim::Rng base(0xB00F);

  const auto fresh = participant_cell(3, sim::Rng(base).fork(3), false);
  ASSERT_FALSE(fresh.blocks.empty());

  // Cold pool: first pooled run constructs the session.
  const auto cold = participant_cell(3, sim::Rng(base).fork(3), true);
  EXPECT_TRUE(same_result(cold, fresh)) << "cold pooled session diverged from fresh";
  ASSERT_TRUE(study::DevicePool::local().warm());

  // Warm pool: this run exercises the in-place reset path.
  const auto warm = participant_cell(3, sim::Rng(base).fork(3), true);
  EXPECT_TRUE(same_result(warm, fresh)) << "warm pooled session diverged from fresh";

  // A different cell on the same warm session matches its own fresh
  // reference: reset() leaks no state from the previous participant.
  const auto warm_other = participant_cell(7, sim::Rng(base).fork(7), true);
  const auto fresh_other = participant_cell(7, sim::Rng(base).fork(7), false);
  EXPECT_TRUE(same_result(warm_other, fresh_other))
      << "state leaked across pooled sessions";
}

TEST(DevicePoolProperty, SweepBitIdenticalPooledOrFreshAtAnyThreadCount) {
  // The full determinism contract: cell result = f(index, fork(index)),
  // regardless of pooling and of which worker (with whatever session
  // history) runs the cell. 8 threads × pooled is the stressful cell:
  // thread_local sessions get recycled across an unpredictable subset
  // of cells.
  constexpr std::size_t kCells = 6;
  constexpr std::uint64_t kSeed = 0xB001;
  std::vector<study::DeviceParticipantResult> reference;
  for (const bool pooled : {false, true}) {
    for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
      study::SweepConfig config;
      config.threads = threads;
      config.base_seed = kSeed;
      auto got = study::SweepRunner(config).run<study::DeviceParticipantResult>(
          kCells, [pooled](std::size_t index, sim::Rng rng) {
            return participant_cell(index, std::move(rng), pooled);
          });
      ASSERT_EQ(got.size(), kCells);
      if (reference.empty()) {
        reference = std::move(got);
        continue;
      }
      for (std::size_t i = 0; i < kCells; ++i) {
        EXPECT_TRUE(same_result(got[i], reference[i]))
            << "cell " << i << " pooled=" << pooled << " threads=" << threads;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// EventQueue: heap calendar dispatch order

TEST(EventQueueHeap, SameTimeDispatchesInInsertionOrder) {
  sim::EventQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    queue.schedule_at(util::Seconds{1.0}, [&order, i] { order.push_back(i); });
  }
  queue.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueueHeap, RandomTimesMatchStableSortReference) {
  sim::Rng rng(123);
  sim::EventQueue queue;
  struct Ref {
    double time;
    int id;
  };
  std::vector<Ref> reference;
  std::vector<int> dispatched;
  for (int i = 0; i < 500; ++i) {
    // Coarse buckets force many exact ties.
    const double t = static_cast<double>(rng.uniform_int(0, 20)) * 0.1;
    reference.push_back({t, i});
    queue.schedule_at(util::Seconds{t}, [&dispatched, i] { dispatched.push_back(i); });
  }
  queue.run_all();
  std::stable_sort(reference.begin(), reference.end(),
                   [](const Ref& a, const Ref& b) { return a.time < b.time; });
  ASSERT_EQ(dispatched.size(), reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(dispatched[i], reference[i].id) << "position " << i;
  }
}

TEST(EventQueueHeap, InterleavedScheduleFromCallbacks) {
  // Events scheduled during dispatch land in the right order too.
  sim::EventQueue queue;
  std::vector<std::string> log;
  queue.schedule_at(util::Seconds{1.0}, [&] {
    log.push_back("a");
    queue.schedule_after(util::Seconds{1.0}, [&] { log.push_back("c"); });
  });
  queue.schedule_at(util::Seconds{1.5}, [&] { log.push_back("b"); });
  queue.run_all();
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log[0], "a");
  EXPECT_EQ(log[1], "b");
  EXPECT_EQ(log[2], "c");
}

// ---------------------------------------------------------------------------
// EventQueue: lazy cancellation semantics

TEST(EventQueueCancel, CancelledEventNeverFires) {
  sim::EventQueue queue;
  bool fired = false;
  const auto handle = queue.schedule_at(util::Seconds{1.0}, [&] { fired = true; });
  EXPECT_TRUE(queue.cancel(handle));
  queue.run_all();
  EXPECT_FALSE(fired);
}

TEST(EventQueueCancel, DoubleCancelReturnsFalse) {
  sim::EventQueue queue;
  const auto handle = queue.schedule_at(util::Seconds{1.0}, [] {});
  EXPECT_TRUE(queue.cancel(handle));
  EXPECT_FALSE(queue.cancel(handle));
}

TEST(EventQueueCancel, StaleHandleAfterSlotReuseReturnsFalse) {
  sim::EventQueue queue;
  const auto first = queue.schedule_at(util::Seconds{1.0}, [] {});
  ASSERT_TRUE(queue.cancel(first));
  // The freed slot is reused; the generation tag must reject `first`.
  bool second_fired = false;
  const auto second = queue.schedule_at(util::Seconds{2.0}, [&] { second_fired = true; });
  EXPECT_NE(first, second);
  EXPECT_FALSE(queue.cancel(first));
  queue.run_all();
  EXPECT_TRUE(second_fired);
}

TEST(EventQueueCancel, PendingExcludesCancelled) {
  sim::EventQueue queue;
  const auto a = queue.schedule_at(util::Seconds{1.0}, [] {});
  queue.schedule_at(util::Seconds{2.0}, [] {});
  EXPECT_EQ(queue.pending(), 2u);
  EXPECT_TRUE(queue.cancel(a));
  EXPECT_EQ(queue.pending(), 1u);
  EXPECT_FALSE(queue.empty());
  queue.run_all();
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.pending(), 0u);
}

TEST(EventQueueCancel, FiredHandleCannotBeCancelled) {
  sim::EventQueue queue;
  const auto handle = queue.schedule_at(util::Seconds{1.0}, [] {});
  queue.run_all();
  EXPECT_FALSE(queue.cancel(handle));
}

TEST(EventQueueCancel, InvalidHandleIsRejected) {
  sim::EventQueue queue;
  EXPECT_FALSE(queue.cancel(sim::EventQueue::kInvalidHandle));
}

TEST(EventQueueCancel, CancelStormStaysConsistent) {
  sim::EventQueue queue;
  sim::Rng rng(99);
  std::vector<sim::EventQueue::Handle> handles;
  int fired = 0;
  for (int i = 0; i < 1000; ++i) {
    handles.push_back(
        queue.schedule_at(util::Seconds{rng.uniform(0.0, 10.0)}, [&fired] { ++fired; }));
  }
  int cancelled = 0;
  for (std::size_t i = 0; i < handles.size(); i += 2) {
    if (queue.cancel(handles[i])) ++cancelled;
  }
  EXPECT_EQ(cancelled, 500);
  EXPECT_EQ(queue.pending(), 500u);
  queue.run_all();
  EXPECT_EQ(fired, 500);
  EXPECT_TRUE(queue.empty());
}

// ---------------------------------------------------------------------------
// EventQueue: run_all safety cap surfaced

TEST(EventQueueRunAll, TruncatedFlagSetWhenCapHit) {
  sim::EventQueue queue;
  // Self-perpetuating event: would run forever without the cap.
  std::function<void()> reschedule = [&] {
    queue.schedule_after(util::Seconds{0.001}, reschedule);
  };
  queue.schedule_after(util::Seconds{0.001}, reschedule);
  const std::size_t steps = queue.run_all(/*max_events=*/1000);
  EXPECT_EQ(steps, 1000u);
  EXPECT_TRUE(queue.truncated());
  EXPECT_FALSE(queue.empty());
}

TEST(EventQueueRunAll, TruncatedFlagClearOnNormalDrain) {
  sim::EventQueue queue;
  queue.schedule_at(util::Seconds{1.0}, [] {});
  queue.schedule_at(util::Seconds{2.0}, [] {});
  EXPECT_EQ(queue.run_all(), 2u);
  EXPECT_FALSE(queue.truncated());
}

// ---------------------------------------------------------------------------
// Rng: cached Box–Muller spare

TEST(RngGaussian, SpareMakesPairsFromOneEngineRound) {
  // Two consecutive gaussians consume the same engine state as one
  // Box–Muller round: after draws 2k, the engine matches a fresh RNG
  // that did k rounds.
  sim::Rng a(5), b(5);
  a.gaussian(0.0, 1.0);
  a.gaussian(0.0, 1.0);  // second draw comes from the spare
  b.gaussian(0.0, 1.0);
  b.gaussian(0.0, 1.0);
  // Both streams identical draw by draw.
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.gaussian(1.0, 2.0), b.gaussian(1.0, 2.0));
}

TEST(RngGaussian, ZeroStddevReturnsMeanWithoutConsumingDraws) {
  sim::Rng a(17), b(17);
  EXPECT_EQ(a.gaussian(3.5, 0.0), 3.5);
  EXPECT_EQ(a.gaussian(-1.0, -2.0), -1.0);
  // b consumed nothing either; streams still in lockstep.
  EXPECT_EQ(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
}

TEST(RngGaussian, ForkedStreamsUnaffectedBySpare) {
  sim::Rng parent(31);
  parent.gaussian(0.0, 1.0);  // leaves a spare cached in the parent
  sim::Rng fork_after = parent.fork(9);
  sim::Rng fork_fresh = sim::Rng(31).fork(9);
  EXPECT_EQ(fork_after.gaussian(0.0, 1.0), fork_fresh.gaussian(0.0, 1.0));
}

TEST(RngGaussian, MomentsSane) {
  sim::Rng rng(2024);
  double sum = 0.0, sq = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.gaussian(2.0, 3.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / kN;
  const double var = sq / kN - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.1);
  EXPECT_NEAR(var, 9.0, 0.5);
}

}  // namespace
}  // namespace distscroll
