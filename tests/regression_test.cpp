// Regression and depth tests: behaviours that once broke during
// development (pinned here forever) plus corner cases of the device UI.
#include <gtest/gtest.h>

#include "baselines/distance_scroll.h"
#include "core/distscroll_device.h"
#include "hw/battery.h"
#include "menu/menu_builder.h"
#include "pda/pda_host.h"
#include "wireless/host_logger.h"
#include "wireless/rf_link.h"

namespace distscroll {
namespace {

// --- regression: the sample-and-hold clock bug ----------------------------------
// Gp2d120Model held its internal measurement clock across trials; when a
// new trial restarted time at zero the sensor ignored every sample until
// the stale clock caught up, making later trials absurdly slow. reset()
// must clear the hold.

TEST(Regression, SensorHoldSurvivesClockRestart) {
  sensors::Gp2d120Model sensor({}, sim::Rng(1));
  // Advance the sensor's internal clock far into the future.
  (void)sensor.output(util::Centimeters{10.0}, util::Seconds{100.0});
  sensor.reset();
  // A fresh timeline must produce fresh measurements immediately.
  const double v_near = sensor.output(util::Centimeters{5.0}, util::Seconds{0.0}).value;
  const double v_far = sensor.output(util::Centimeters{25.0}, util::Seconds{0.1}).value;
  EXPECT_GT(v_near, v_far);
}

TEST(Regression, DistanceScrollTrialsDoNotSlowDown) {
  baselines::DistanceScroll technique({}, sim::Rng(2));
  // Ten consecutive "trials", each on its own zero-based clock: the
  // cursor must respond within the first 100 ms every time.
  for (int trial = 0; trial < 10; ++trial) {
    technique.reset(5, 0);
    const auto target_u = technique.target_u(3);
    ASSERT_TRUE(target_u.has_value());
    for (double t = 0.0; t < 0.3; t += 0.005) {
      technique.on_control(util::Seconds{t}, *target_u);
    }
    EXPECT_EQ(technique.cursor(), 3u) << "trial " << trial;
  }
}

// --- regression: serial byte reordering ------------------------------------------
// RfLink once jittered each byte independently; jitter larger than the
// byte spacing reordered bytes and broke every frame's CRC.

TEST(Regression, JitterNeverReordersBytes) {
  sim::EventQueue queue;
  hw::Uart uart;
  wireless::RfLink::Config config;
  config.jitter = util::Seconds{5e-3};  // >> byte time (87 us)
  config.byte_loss_probability = 0.0;
  config.bit_flip_probability = 0.0;
  wireless::RfLink link(config, uart, queue, sim::Rng(3));
  std::vector<std::uint8_t> received;
  link.set_host_sink([&](std::uint8_t b) { received.push_back(b); });
  link.start();
  for (int i = 0; i < 50; ++i) uart.transmit(static_cast<std::uint8_t>(i));
  queue.run_until(util::Seconds{1.0});
  ASSERT_EQ(received.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(received[static_cast<std::size_t>(i)], i);
}

// --- device UI corner cases ----------------------------------------------------------

struct UiFixture : ::testing::Test {
  sim::EventQueue queue;
  double distance_cm = 17.0;

  std::unique_ptr<core::DistScrollDevice> boot(std::unique_ptr<menu::MenuNode>& root,
                                               core::DistScrollDevice::Config config = {}) {
    auto device = std::make_unique<core::DistScrollDevice>(config, *root, queue, sim::Rng(5));
    device->set_distance_provider(
        [this](util::Seconds) { return util::Centimeters{distance_cm}; });
    device->power_on();
    queue.run_until(util::Seconds{queue.now().value + 0.3});
    return device;
  }
};

TEST_F(UiFixture, ShortMenuLeavesLowerLinesBlank) {
  auto root = menu::make_flat_menu(2);
  auto device = boot(root);
  EXPECT_EQ(device->top_display().line_text(0), "Item 001");
  EXPECT_EQ(device->top_display().line_text(1), "Item 002");
  EXPECT_EQ(device->top_display().line_text(2), "");
  EXPECT_EQ(device->top_display().line_text(4), "");
}

TEST_F(UiFixture, WindowPinsAtMenuBottom) {
  auto root = menu::make_flat_menu(8);
  auto device = boot(root);
  distance_cm = device->mapper().centre_distance(0).value;  // nearest = last entry
  queue.run_until(util::Seconds{queue.now().value + 0.6});
  ASSERT_EQ(device->cursor().index(), 7u);
  // Window shows entries 4..8; cursor on the last line.
  EXPECT_EQ(device->top_display().line_text(0), "Item 004");
  EXPECT_EQ(device->top_display().line_text(4), "Item 008");
  EXPECT_TRUE(device->top_display().line_inverted(4));
}

TEST_F(UiFixture, TelemetryReportsButtonBits) {
  auto root = menu::make_flat_menu(4);
  auto device = boot(root);
  wireless::RfLink::Config link_config;
  link_config.byte_loss_probability = 0.0;
  link_config.bit_flip_probability = 0.0;
  wireless::RfLink link(link_config, device->board().uart(), queue, sim::Rng(6));
  wireless::HostLogger logger(queue);
  link.set_host_sink([&](std::uint8_t b) { logger.on_byte(b); });
  link.start();

  device->back_button().press();  // hold button 1
  queue.run_until(util::Seconds{queue.now().value + 0.5});
  ASSERT_TRUE(logger.last_state().has_value());
  EXPECT_TRUE(logger.last_state()->buttons & 0b010);
  device->back_button().release();
  queue.run_until(util::Seconds{queue.now().value + 0.5});
  EXPECT_FALSE(logger.last_state()->buttons & 0b010);
}

TEST_F(UiFixture, DepthReportedInTelemetry) {
  auto root = menu::MenuBuilder("r").submenu("s").item("x").item("y").end().item("z").build();
  auto device = boot(root);
  wireless::RfLink::Config link_config;
  link_config.byte_loss_probability = 0.0;
  link_config.bit_flip_probability = 0.0;
  wireless::RfLink link(link_config, device->board().uart(), queue, sim::Rng(7));
  wireless::HostLogger logger(queue);
  link.set_host_sink([&](std::uint8_t b) { logger.on_byte(b); });
  link.start();

  distance_cm = device->mapper().centre_distance(device->mapper().entries() - 1).value;
  queue.run_until(util::Seconds{queue.now().value + 0.6});
  ASSERT_EQ(device->cursor().index(), 0u);
  device->select_button().press();
  queue.run_until(util::Seconds{queue.now().value + 0.1});
  device->select_button().release();
  queue.run_until(util::Seconds{queue.now().value + 0.5});
  ASSERT_TRUE(logger.last_state().has_value());
  EXPECT_EQ(logger.last_state()->menu_depth, 1);
  EXPECT_EQ(logger.last_state()->level_size, 2);
}

// --- PDA host window -------------------------------------------------------------------

TEST(PdaHostScreen, WindowFollowsCursorInLongMenu) {
  auto root = menu::make_flat_menu(30);
  pda::PdaHost::Config config;
  config.screen_lines = 10;
  pda::PdaHost host(config, *root);
  // Drive the cursor to entry 25 via a distance frame at its island.
  const auto& mapper = host.mapper();
  const std::size_t island = mapper.entries() - 1 - 25;
  const std::uint16_t counts = mapper.islands()[island].centre;
  wireless::Frame frame;
  frame.type = pda::kDistanceFrame;
  frame.payload = {static_cast<std::uint8_t>(counts & 0xFF),
                   static_cast<std::uint8_t>(counts >> 8)};
  for (std::uint8_t byte : wireless::encode(frame)) host.on_byte(byte);
  ASSERT_EQ(host.cursor().index(), 25u);
  const auto screen = host.screen();
  ASSERT_EQ(screen.size(), 10u);
  // Cursor row is inside the window and marked.
  bool marked = false;
  for (const auto& line : screen) {
    if (line.rfind("> ", 0) == 0) {
      marked = true;
      EXPECT_NE(line.find("Item 026"), std::string::npos);
    }
  }
  EXPECT_TRUE(marked);
}

// --- battery voltage property -------------------------------------------------------------

TEST(BatteryProperty, VoltageMonotoneNonIncreasingOverDischarge) {
  hw::Battery battery;
  battery.add_consumer("load", 50.0);
  double prev = battery.voltage().value;
  for (int i = 0; i < 100; ++i) {
    battery.consume(util::Seconds{300.0});
    const double v = battery.voltage().value;
    EXPECT_LE(v, prev + 1e-9);
    prev = v;
  }
}

}  // namespace
}  // namespace distscroll
