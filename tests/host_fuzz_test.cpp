// Fuzzing the DSTL columnar codec (seeded, deterministic — same
// philosophy as fuzz_test.cpp for the wire framing).
//
// Two obligations:
//   * round trip — encode(decode(x)) == x for arbitrary record vectors,
//     including hostile field values and non-monotone timestamps;
//   * totality — decode_dstl() NEVER crashes, over-reads or hangs on
//     arbitrary bytes: random blobs, truncations, bit flips, and the
//     nasty case where the mutation recomputes the trailing CRC-32 so
//     corrupted structure gets PAST the checksum gate and must be
//     caught by the structural validation itself.
//
// Run under the asan flavour of scripts/check.sh, where any over-read
// in the bounds-checked varint/column parsing turns into a hard fail.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "host/columnar.h"
#include "sim/random.h"
#include "util/crc.h"

namespace {

using namespace distscroll;
using host::CompactRecord;

CompactRecord random_record(sim::Rng& rng) {
  CompactRecord record;
  // Bias towards small deltas (the realistic stream) but include wild
  // jumps and the extremes of every field.
  switch (rng.uniform_int(0, 9)) {
    case 0:
      record.t_us = static_cast<std::uint64_t>(rng.next_u64());
      break;
    case 1:
      record.t_us = 0;
      break;
    default:
      record.t_us = 1'000'000 + static_cast<std::uint64_t>(rng.uniform_int(0, 5'000'000));
      break;
  }
  record.device_id = static_cast<std::uint16_t>(rng.uniform_int(0, 0xFFFF));
  record.seq = static_cast<std::uint8_t>(rng.uniform_int(0, 0xFF));
  record.state.adc_counts = static_cast<std::uint16_t>(rng.uniform_int(0, 0xFFFF));
  record.state.menu_depth = static_cast<std::uint8_t>(rng.uniform_int(0, 0xFF));
  record.state.cursor_index = static_cast<std::uint8_t>(rng.uniform_int(0, 0xFF));
  record.state.level_size = static_cast<std::uint8_t>(rng.uniform_int(0, 0xFF));
  record.state.buttons = static_cast<std::uint8_t>(rng.uniform_int(0, 0xFF));
  return record;
}

TEST(HostCodecFuzz, RoundTripArbitraryRecordVectors) {
  sim::Rng rng(0xC0DEC);
  for (int iteration = 0; iteration < 300; ++iteration) {
    const int count = rng.uniform_int(0, 200);
    std::vector<CompactRecord> records;
    records.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i) records.push_back(random_record(rng));
    const auto session = static_cast<std::uint16_t>(rng.uniform_int(0, 0xFFFF));

    const auto container = host::encode_dstl(records, session);
    std::uint16_t decoded_session = 0;
    const auto decoded = host::decode_dstl(container, &decoded_session);
    ASSERT_TRUE(decoded.has_value()) << "iteration " << iteration;
    ASSERT_EQ(*decoded, records) << "iteration " << iteration;
    ASSERT_EQ(decoded_session, session);
  }
}

TEST(HostCodecFuzz, VarintRoundTripsAndNeverOverReads) {
  sim::Rng rng(0x7A81);
  for (int iteration = 0; iteration < 2000; ++iteration) {
    const std::uint64_t value = rng.next_u64() >> rng.uniform_int(0, 63);
    std::vector<std::uint8_t> bytes;
    host::put_varint(bytes, value);
    ASSERT_LE(bytes.size(), 10u);
    std::size_t cursor = 0;
    std::uint64_t back = 0;
    ASSERT_TRUE(host::get_varint(bytes, cursor, back));
    ASSERT_EQ(back, value);
    ASSERT_EQ(cursor, bytes.size());
    // Every strict prefix is a clean truncation failure.
    for (std::size_t n = 0; n < bytes.size(); ++n) {
      cursor = 0;
      ASSERT_FALSE(host::get_varint({bytes.data(), n}, cursor, back));
    }
  }
  // All-continuation bytes: rejected at the 10-byte cap, no spin.
  const std::vector<std::uint8_t> endless(64, 0x80);
  std::size_t cursor = 0;
  std::uint64_t value = 0;
  EXPECT_FALSE(host::get_varint(endless, cursor, value));
}

TEST(HostCodecFuzz, MutatedContainersNeverCrashTheDecoder) {
  sim::Rng rng(0xBADF00D);
  std::vector<CompactRecord> records;
  for (int i = 0; i < 150; ++i) records.push_back(random_record(rng));
  const auto container = host::encode_dstl(records, 9);

  for (int iteration = 0; iteration < 3000; ++iteration) {
    auto mutated = container;
    const int mutations = rng.uniform_int(1, 8);
    for (int m = 0; m < mutations; ++m) {
      const auto at = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(mutated.size()) - 1));
      mutated[at] = static_cast<std::uint8_t>(rng.uniform_int(0, 0xFF));
    }
    // Must return SOMETHING without crashing; almost always nullopt via
    // the CRC gate (multi-byte mutations can in principle collide).
    const auto decoded = host::decode_dstl(mutated);
    static_cast<void>(decoded);
  }
}

TEST(HostCodecFuzz, CrcFixedMutationsAreCaughtByStructuralValidation) {
  // Recompute the trailing CRC-32 after mutating, so the decoder's
  // structural checks — not the checksum — are what must hold the line.
  sim::Rng rng(0x5EC7);
  std::vector<CompactRecord> records;
  for (int i = 0; i < 120; ++i) records.push_back(random_record(rng));
  const auto container = host::encode_dstl(records, 4);

  for (int iteration = 0; iteration < 3000; ++iteration) {
    auto mutated = container;
    // Mutate header/column bytes (counts, column lengths, varint
    // streams) — everything before the CRC trailer.
    const int mutations = rng.uniform_int(1, 6);
    for (int m = 0; m < mutations; ++m) {
      const auto at = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(mutated.size()) - 5));
      mutated[at] = static_cast<std::uint8_t>(rng.uniform_int(0, 0xFF));
    }
    const std::size_t payload_end = mutated.size() - 4;
    const std::uint32_t crc = util::crc32({mutated.data(), payload_end});
    for (int b = 0; b < 4; ++b) {
      mutated[payload_end + static_cast<std::size_t>(b)] =
          static_cast<std::uint8_t>(crc >> (8 * b));
    }
    // Decode must terminate cleanly: either a successful parse (the
    // mutation happened to stay self-consistent) or nullopt — never a
    // crash, hang or out-of-bounds read (asan-verified).
    const auto decoded = host::decode_dstl(mutated);
    if (decoded.has_value()) {
      // If it parsed, the declared count and the output must agree —
      // no silently truncated or padded record vectors.
      EXPECT_LE(decoded->size(), mutated.size());
    }
  }
}

TEST(HostCodecFuzz, TruncationsAndExtensionsAlwaysRejectCleanly) {
  sim::Rng rng(0x7201);
  std::vector<CompactRecord> records;
  for (int i = 0; i < 80; ++i) records.push_back(random_record(rng));
  const auto container = host::encode_dstl(records, 1);
  for (std::size_t n = 0; n < container.size(); ++n) {
    ASSERT_FALSE(host::decode_dstl({container.data(), n}).has_value()) << "prefix " << n;
  }
  auto extended = container;
  extended.push_back(0);
  EXPECT_FALSE(host::decode_dstl(extended).has_value());
}

TEST(HostCodecFuzz, RandomBlobsNeverCrashTheDecoder) {
  sim::Rng rng(0xB10B);
  std::vector<std::uint8_t> blob;
  for (int iteration = 0; iteration < 4000; ++iteration) {
    blob.resize(static_cast<std::size_t>(rng.uniform_int(0, 600)));
    for (auto& byte : blob) byte = static_cast<std::uint8_t>(rng.uniform_int(0, 0xFF));
    // A handful of blobs get a valid magic + CRC to push past the
    // cheap gates into the column parser.
    if (iteration % 4 == 0 && blob.size() >= 16) {
      blob[0] = 0x44; blob[1] = 0x53; blob[2] = 0x54; blob[3] = 0x4C;  // "DSTL"
      blob[4] = 1; blob[5] = 0;                                        // version 1
      const std::size_t payload_end = blob.size() - 4;
      const std::uint32_t crc = util::crc32({blob.data(), payload_end});
      for (int b = 0; b < 4; ++b) {
        blob[payload_end + static_cast<std::size_t>(b)] =
            static_cast<std::uint8_t>(crc >> (8 * b));
      }
    }
    const auto decoded = host::decode_dstl(blob);
    static_cast<void>(decoded);
  }
}

}  // namespace
