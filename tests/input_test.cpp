// Unit tests for buttons (with mechanical bounce), the firmware
// debouncer, and the contrast potentiometer.
#include <gtest/gtest.h>

#include "hw/gpio.h"
#include "input/button.h"
#include "input/debouncer.h"
#include "input/potentiometer.h"
#include "sim/event_queue.h"

namespace distscroll::input {
namespace {

struct ButtonFixture : ::testing::Test {
  sim::EventQueue queue;
  hw::Gpio gpio{4};
};

TEST_F(ButtonFixture, PressDrivesPinLowEventually) {
  Button button({}, gpio, 0, queue, sim::Rng(1));
  EXPECT_TRUE(button.press());
  queue.run_until(util::Seconds{0.01});
  EXPECT_EQ(gpio.read(0), hw::PinLevel::Low);
  button.release();
  queue.run_until(util::Seconds{0.02});
  EXPECT_EQ(gpio.read(0), hw::PinLevel::High);
}

TEST_F(ButtonFixture, BounceProducesMultipleEdges) {
  Button::Config config;
  config.max_bounce_edges = 6;
  int edges = 0;
  gpio.on_edge(0, [&](std::size_t, hw::PinLevel) { ++edges; });
  // Try several seeds: at least one press must visibly bounce.
  int max_edges = 0;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    edges = 0;
    Button button(config, gpio, 0, queue, sim::Rng(seed));
    button.press();
    queue.run_until(util::Seconds{queue.now().value + 0.02});
    max_edges = std::max(max_edges, edges);
    button.release();
    queue.run_until(util::Seconds{queue.now().value + 0.02});
  }
  EXPECT_GT(max_edges, 1);
}

TEST_F(ButtonFixture, SettlesToFinalLevelDespiteBounce) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Button button({}, gpio, 0, queue, sim::Rng(seed));
    button.press();
    queue.run_until(util::Seconds{queue.now().value + 0.02});
    EXPECT_EQ(gpio.read(0), hw::PinLevel::Low) << "seed " << seed;
    button.release();
    queue.run_until(util::Seconds{queue.now().value + 0.02});
    EXPECT_EQ(gpio.read(0), hw::PinLevel::High) << "seed " << seed;
  }
}

TEST_F(ButtonFixture, MissProbabilityDropsPresses) {
  Button::Config config;
  config.miss_probability = 1.0;  // gloved worst case
  Button button(config, gpio, 0, queue, sim::Rng(3));
  EXPECT_FALSE(button.press());
  queue.run_until(util::Seconds{0.02});
  EXPECT_EQ(gpio.read(0), hw::PinLevel::High);  // nothing happened
}

TEST_F(ButtonFixture, RapidRepressSupersedesOldBounce) {
  Button button({}, gpio, 0, queue, sim::Rng(4));
  button.press();
  button.release();
  button.press();  // before bounce of release finishes
  queue.run_until(util::Seconds{0.05});
  EXPECT_EQ(gpio.read(0), hw::PinLevel::Low);
  EXPECT_TRUE(button.physically_pressed());
}

// --- debouncer -------------------------------------------------------------------

TEST(Debouncer, RequiresStableLevels) {
  Debouncer deb;
  int presses = 0;
  auto count_press = [&] { ++presses; };  // Callback is non-owning: keep alive
  deb.on_press(count_press);
  // 3 noisy low samples then back high: no press (needs 8 stable).
  for (int i = 0; i < 3; ++i) deb.tick(hw::PinLevel::Low);
  deb.tick(hw::PinLevel::High);
  EXPECT_EQ(presses, 0);
  // 8 consecutive lows: press fires once.
  for (int i = 0; i < 8; ++i) deb.tick(hw::PinLevel::Low);
  EXPECT_EQ(presses, 1);
  EXPECT_TRUE(deb.pressed());
  // Staying low doesn't re-fire.
  for (int i = 0; i < 20; ++i) deb.tick(hw::PinLevel::Low);
  EXPECT_EQ(presses, 1);
}

TEST(Debouncer, ReleaseFiresAfterStableHigh) {
  Debouncer deb;
  int releases = 0;
  auto count_release = [&] { ++releases; };
  deb.on_release(count_release);
  for (int i = 0; i < 8; ++i) deb.tick(hw::PinLevel::Low);
  for (int i = 0; i < 8; ++i) deb.tick(hw::PinLevel::High);
  EXPECT_EQ(releases, 1);
  EXPECT_FALSE(deb.pressed());
}

TEST(Debouncer, BounceWithinWindowIgnored) {
  Debouncer deb;
  int presses = 0;
  auto count_press = [&] { ++presses; };
  deb.on_press(count_press);
  // Alternate every 3 ticks forever: never stable, never fires.
  for (int i = 0; i < 60; ++i) {
    deb.tick((i / 3) % 2 ? hw::PinLevel::Low : hw::PinLevel::High);
  }
  EXPECT_EQ(presses, 0);
}

TEST(DebouncerWithButton, EndToEndThroughGpio) {
  sim::EventQueue queue;
  hw::Gpio gpio(1);
  Button button({}, gpio, 0, queue, sim::Rng(5));
  Debouncer deb;
  int presses = 0, releases = 0;
  auto count_press = [&] { ++presses; };
  auto count_release = [&] { ++releases; };
  deb.on_press(count_press);
  deb.on_release(count_release);

  // 1 kHz firmware scan co-simulated with the bouncing button.
  button.press();
  for (int ms = 0; ms < 40; ++ms) {
    queue.run_until(util::Seconds{ms / 1000.0});
    deb.tick(gpio.read(0));
  }
  button.release();
  for (int ms = 40; ms < 80; ++ms) {
    queue.run_until(util::Seconds{ms / 1000.0});
    deb.tick(gpio.read(0));
  }
  EXPECT_EQ(presses, 1);
  EXPECT_EQ(releases, 1);
}

// --- potentiometer -----------------------------------------------------------------

TEST(Potentiometer, PositionMapsToVoltage) {
  Potentiometer::Config config;
  config.wiper_noise_volts = 0.0;
  Potentiometer pot(config, sim::Rng(1));
  pot.set_position(0.5);
  EXPECT_NEAR(pot.output().value, 2.5, 1e-9);
  pot.set_position(0.0);
  EXPECT_NEAR(pot.output().value, 0.0, 1e-9);
}

TEST(Potentiometer, PositionClamped) {
  Potentiometer pot({}, sim::Rng(1));
  pot.set_position(2.0);
  EXPECT_DOUBLE_EQ(pot.position(), 1.0);
  pot.set_position(-1.0);
  EXPECT_DOUBLE_EQ(pot.position(), 0.0);
}

TEST(Potentiometer, ContrastLevelSpansRange) {
  Potentiometer::Config config;
  config.wiper_noise_volts = 0.0;
  Potentiometer pot(config, sim::Rng(1));
  pot.set_position(1.0);
  EXPECT_EQ(pot.as_contrast_level(), 63);
  pot.set_position(0.0);
  EXPECT_EQ(pot.as_contrast_level(), 0);
}

}  // namespace
}  // namespace distscroll::input
