// Host ingest pipeline: property suite.
//
// The contracts held here, in dependency order:
//   * DeviceRegistry — per-device exactly-once admission, gap
//     accounting that settles exactly once streams drain;
//   * IngestQueue — bounded lanes, FIFO order, backpressure signal;
//   * the DSTL columnar codec — lossless round trip, validation;
//   * run_host_ingest — full-stack invariants under fault injection
//     (zero accepted-frame corruption, full recovery within grace,
//     overload shedding), and BIT-IDENTITY of the result (DSTL bytes +
//     metrics JSON) across producer thread counts, pinned the same way
//     fleet_test.cpp pins FleetEngine;
//   * the golden artifact tests/golden/canonical_host_ingest.dstl — a
//     scripted 8-device lossy session, byte-compared every run.
//     Regenerate after an INTENTIONAL change (review the .jsonl diff):
//
//       DISTSCROLL_REGEN_GOLDEN=1 ./build/tests/test_host
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "host/columnar.h"
#include "host/device_registry.h"
#include "host/host_pipeline.h"
#include "host/ingest_queue.h"
#include "obs/metrics.h"

namespace {

using namespace distscroll;
using host::CompactRecord;
using host::DeviceRegistry;
using Verdict = host::DeviceRegistry::Verdict;

// --- DeviceRegistry -------------------------------------------------------

TEST(DeviceRegistry, InOrderStreamIsAllAccepted) {
  DeviceRegistry registry(4);
  for (int i = 0; i < 300; ++i) {  // wraps the 8-bit seq space
    const auto decision = registry.admit(1, static_cast<std::uint8_t>(i));
    EXPECT_EQ(decision.verdict, Verdict::Accept);
    EXPECT_EQ(decision.gap_delta, 0);
  }
  EXPECT_EQ(registry.accepted(), 300u);
  EXPECT_EQ(registry.gaps(), 0u);
  EXPECT_EQ(registry.duplicates(), 0u);
  EXPECT_EQ(registry.devices_seen(), 1u);
  EXPECT_EQ(registry.stats(1).accepted, 300u);
}

TEST(DeviceRegistry, ForwardJumpCountsGapsAndLateFrameFillsThem) {
  DeviceRegistry registry(1);
  EXPECT_EQ(registry.admit(0, 0).verdict, Verdict::Accept);
  const auto jump = registry.admit(0, 3);  // skips 1 and 2
  EXPECT_EQ(jump.verdict, Verdict::Accept);
  EXPECT_EQ(jump.gap_delta, 2);
  EXPECT_EQ(registry.gaps(), 2u);
  // Late frame 1 fills one hole.
  EXPECT_EQ(registry.admit(0, 1).verdict, Verdict::AcceptReordered);
  EXPECT_EQ(registry.gaps(), 1u);
  EXPECT_EQ(registry.reordered(), 1u);
  // Its retransmitted copy is a duplicate.
  EXPECT_EQ(registry.admit(0, 1).verdict, Verdict::Duplicate);
  EXPECT_EQ(registry.admit(0, 2).verdict, Verdict::AcceptReordered);
  EXPECT_EQ(registry.gaps(), 0u);
  EXPECT_EQ(registry.accepted(), 4u);
}

TEST(DeviceRegistry, PreBaselineLateFrameNeverUnderflowsGapCount) {
  // The device's FIRST delivered frame is seq 1 (seq 0 delayed in
  // flight). Seq 0 then arriving late fills a hole that was never
  // counted — the counter must saturate at zero, not wrap.
  DeviceRegistry registry(1);
  EXPECT_EQ(registry.admit(0, 1).verdict, Verdict::Accept);
  EXPECT_EQ(registry.gaps(), 0u);
  EXPECT_EQ(registry.admit(0, 0).verdict, Verdict::AcceptReordered);
  EXPECT_EQ(registry.gaps(), 0u);
  EXPECT_EQ(registry.stats(0).gaps, 0u);
}

TEST(DeviceRegistry, DevicesAreIndependent) {
  DeviceRegistry registry(3);
  EXPECT_EQ(registry.admit(0, 200).verdict, Verdict::Accept);
  // Device 2 starting at 0 is NOT 56 frames behind device 0.
  EXPECT_EQ(registry.admit(2, 0).verdict, Verdict::Accept);
  EXPECT_EQ(registry.gaps(), 0u);
  // A duplicate on device 0 does not touch device 2.
  EXPECT_EQ(registry.admit(0, 200).verdict, Verdict::Duplicate);
  EXPECT_EQ(registry.stats(2).duplicates, 0u);
  EXPECT_EQ(registry.devices_seen(), 2u);
}

TEST(DeviceRegistry, BeyondHorizonAndUnknownDeviceAreRejected) {
  DeviceRegistry registry(2);
  EXPECT_EQ(registry.admit(0, 100).verdict, Verdict::Accept);
  // 64+ behind the highest: indistinguishable from an ancient duplicate.
  EXPECT_EQ(registry.admit(0, 36).verdict, Verdict::TooOld);
  EXPECT_EQ(registry.admit(0, 37).verdict, Verdict::AcceptReordered);  // 63 behind: inside
  // A device id past max_devices never grows state (hostile input).
  EXPECT_EQ(registry.admit(9, 0).verdict, Verdict::TooOld);
  EXPECT_EQ(registry.too_old(), 2u);
  EXPECT_EQ(registry.devices_seen(), 1u);
}

TEST(DeviceRegistry, ClearForgetsStreams) {
  DeviceRegistry registry(2);
  registry.admit(0, 5);
  registry.admit(0, 9);
  ASSERT_GT(registry.gaps(), 0u);
  registry.clear();
  EXPECT_EQ(registry.accepted(), 0u);
  EXPECT_EQ(registry.gaps(), 0u);
  EXPECT_EQ(registry.devices_seen(), 0u);
  // Seq 0 after clear is a fresh baseline, not a duplicate of history.
  EXPECT_EQ(registry.admit(0, 0).verdict, Verdict::Accept);
}

// --- IngestQueue ----------------------------------------------------------

TEST(IngestQueue, BoundedLanesFifoAndBackpressure) {
  host::IngestQueue queue(2, 3);
  host::RawRecord record;
  for (std::uint64_t i = 0; i < 3; ++i) {
    record.t_us = i;
    ASSERT_TRUE(queue.try_push(0, record));
  }
  record.t_us = 99;
  EXPECT_FALSE(queue.try_push(0, record));  // lane 0 full: backpressure
  EXPECT_TRUE(queue.try_push(1, record));   // lane 1 independent
  EXPECT_EQ(queue.depth(), 4u);
  EXPECT_EQ(queue.free(0), 0u);

  std::vector<host::RawRecord> out(2);
  ASSERT_EQ(queue.pop_batch(0, out), 2u);
  EXPECT_EQ(out[0].t_us, 0u);  // oldest first
  EXPECT_EQ(out[1].t_us, 1u);
  EXPECT_EQ(queue.free(0), 2u);
  ASSERT_EQ(queue.pop_batch(0, out), 1u);
  EXPECT_EQ(out[0].t_us, 2u);
  EXPECT_EQ(queue.pop_batch(0, out), 0u);
  // Freed capacity is reusable (ring wraps).
  for (std::uint64_t i = 0; i < 3; ++i) {
    record.t_us = 10 + i;
    ASSERT_TRUE(queue.try_push(0, record));
  }
  ASSERT_EQ(queue.pop_batch(0, out), 2u);
  EXPECT_EQ(out[0].t_us, 10u);
}

// --- DSTL columnar codec --------------------------------------------------

std::vector<CompactRecord> sample_records() {
  std::vector<CompactRecord> records;
  sim::Rng rng(77);
  std::uint64_t t = 1'000'000;
  for (int i = 0; i < 500; ++i) {
    CompactRecord record;
    // Mostly monotone timestamps with occasional back-steps (a
    // lane-merged stream is only near-sorted).
    t += static_cast<std::uint64_t>(rng.uniform_int(0, 40'000));
    record.t_us = (i % 17 == 0 && t > 50'000)
                      ? t - static_cast<std::uint64_t>(rng.uniform_int(0, 30'000))
                      : t;
    record.device_id = static_cast<std::uint16_t>(rng.uniform_int(0, 9999));
    record.seq = static_cast<std::uint8_t>(i);
    record.state.adc_counts = static_cast<std::uint16_t>(rng.uniform_int(0, 1023));
    record.state.menu_depth = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    record.state.cursor_index = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    record.state.level_size = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    record.state.buttons = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    records.push_back(record);
  }
  return records;
}

TEST(Columnar, RoundTripsExactly) {
  const auto records = sample_records();
  const auto container = host::encode_dstl(records, 7);
  std::uint16_t session = 0;
  const auto decoded = host::decode_dstl(container, &session);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(session, 7);
  EXPECT_EQ(*decoded, records);
}

TEST(Columnar, EmptyContainerRoundTrips) {
  const auto container = host::encode_dstl({}, 3);
  const auto decoded = host::decode_dstl(container);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->empty());
}

TEST(Columnar, ExtremeFieldValuesSurvive) {
  std::vector<CompactRecord> records(3);
  records[0].t_us = 0xFFFFFFFFFFFFFFFFull;  // max time first (huge negative delta next)
  records[0].device_id = 0xFFFF;
  records[0].state.adc_counts = 0xFFFF;
  records[1].t_us = 0;
  records[2].t_us = 0xFFFFFFFFFFFFFFFFull;
  const auto container = host::encode_dstl(records, 0);
  const auto decoded = host::decode_dstl(container);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, records);
}

TEST(Columnar, StreamingWriterMatchesOneShotAndClearReuses) {
  const auto records = sample_records();
  host::ColumnarWriter writer(7);
  for (const auto& record : records) writer.append(record);
  EXPECT_EQ(writer.records(), records.size());
  EXPECT_EQ(writer.finish(), host::encode_dstl(records, 7));
  writer.clear();
  EXPECT_EQ(writer.records(), 0u);
  for (const auto& record : records) writer.append(record);
  EXPECT_EQ(writer.finish(), host::encode_dstl(records, 7));
}

TEST(Columnar, CompressionBeatsRowEncoding) {
  // The whole point of the columnar layout: a near-periodic telemetry
  // stream packs far below the 16-byte row lower bound.
  std::vector<CompactRecord> records;
  for (int i = 0; i < 1000; ++i) {
    CompactRecord record;
    record.t_us = 26'315u * static_cast<std::uint64_t>(i);  // 38 Hz cadence
    record.device_id = static_cast<std::uint16_t>(i % 8);
    record.seq = static_cast<std::uint8_t>(i / 8);
    record.state.adc_counts = static_cast<std::uint16_t>(500 + (i % 11));
    records.push_back(record);
  }
  const auto container = host::encode_dstl(records, 0);
  EXPECT_LT(container.size(), records.size() * 12);
}

TEST(Columnar, RejectsTamperingAndTruncation) {
  const auto records = sample_records();
  const auto container = host::encode_dstl(records, 7);
  // Any single corrupted byte fails the CRC-32.
  for (std::size_t i = 0; i < container.size(); i += 37) {
    auto mutated = container;
    mutated[i] ^= 0x40;
    EXPECT_FALSE(host::decode_dstl(mutated).has_value()) << "byte " << i;
  }
  // Every truncation fails (CRC32 covers the full payload).
  for (std::size_t n = 0; n < container.size(); n += 101) {
    EXPECT_FALSE(host::decode_dstl({container.data(), n}).has_value()) << "prefix " << n;
  }
  EXPECT_FALSE(host::decode_dstl({}).has_value());
}

TEST(Columnar, JsonlRenderingIsExact) {
  CompactRecord record;
  record.t_us = 26312;
  record.device_id = 3;
  record.seq = 12;
  record.state.adc_counts = 512;
  record.state.menu_depth = 1;
  record.state.cursor_index = 4;
  record.state.level_size = 16;
  record.state.buttons = 0;
  std::ostringstream out;
  host::write_jsonl(out, {&record, 1});
  EXPECT_EQ(out.str(),
            "{\"t_us\":26312,\"device\":3,\"seq\":12,\"adc\":512,"
            "\"depth\":1,\"cursor\":4,\"level\":16,\"buttons\":0}\n");
}

// --- the full pipeline ----------------------------------------------------

host::HostIngestConfig lossy_config(std::size_t devices, std::size_t threads) {
  host::HostIngestConfig config;
  config.devices = devices;
  config.lanes = 4;
  config.lane_capacity = 512;
  config.duration_s = 1.0;
  config.threads = threads;
  config.faults.frame_loss = 0.01;
  config.faults.bit_flip = 0.002;
  config.faults.reorder = 0.005;
  config.faults.ack_loss = 0.005;
  config.base_seed = 424242;
  return config;
}

TEST(HostIngest, LosslessFleetDeliversEveryReportExactlyOnce) {
  host::HostIngestConfig config;
  config.devices = 32;
  config.duration_s = 1.0;
  const auto result = host::run_host_ingest(config);
  const auto& stats = result.stats;
  EXPECT_TRUE(stats.complete);
  EXPECT_GT(stats.reports_offered, 1000u);
  EXPECT_EQ(stats.frames_accepted, stats.reports_offered);
  EXPECT_EQ(stats.reports_shed, 0u);
  EXPECT_EQ(stats.frames_duplicate, 0u);
  EXPECT_EQ(stats.sequence_gaps, 0u);
  EXPECT_EQ(stats.content_mismatches, 0u);
  EXPECT_EQ(stats.arq_retransmissions, 0u);  // timeout > ack turnaround: no spurious retx
  EXPECT_EQ(stats.devices_seen, 32u);
  EXPECT_EQ(result.records.size(), stats.frames_accepted);
  // The container decodes back to exactly the accepted stream.
  const auto decoded = host::decode_dstl(result.dstl);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, result.records);
}

TEST(HostIngest, LossyFleetRecoversEverythingWithZeroCorruption) {
  // The tentpole acceptance criterion, scaled to test runtime: every
  // offered report is accepted exactly once despite loss + corruption +
  // reordering + ack loss, and every accepted frame matches what the
  // device generated, bit for bit.
  const auto result = host::run_host_ingest(lossy_config(64, 1));
  const auto& stats = result.stats;
  EXPECT_TRUE(stats.complete);
  // Faults actually fired.
  EXPECT_GT(stats.link_frames_lost, 0u);
  EXPECT_GT(stats.link_frames_corrupted, 0u);
  EXPECT_GT(stats.link_frames_reordered, 0u);
  EXPECT_GT(stats.arq_retransmissions, 0u);
  // Full recovery: ARQ re-delivered every lost/corrupted frame.
  EXPECT_EQ(stats.frames_accepted, stats.reports_offered);
  EXPECT_EQ(stats.sequence_gaps, 0u);
  // ZERO accepted-frame corruption.
  EXPECT_EQ(stats.content_mismatches, 0u);
  // Every corrupted frame that reached the host was caught by CRC (a
  // corrupted frame held in a reorder slot at shutdown may never arrive).
  EXPECT_LE(stats.frames_crc_rejected, stats.link_frames_corrupted);
  EXPECT_GE(stats.frames_crc_rejected + 64u, stats.link_frames_corrupted);
  // Duplicates exist (lost acks force re-sends) and were all absorbed.
  EXPECT_GT(stats.frames_duplicate, 0u);
}

TEST(HostIngest, ResultIsBitIdenticalAcrossThreadCounts) {
  // The determinism contract: threads only change which worker steps a
  // lane — DSTL bytes, record streams and the metrics registry JSON all
  // byte-match at 1, 2 and 8 threads.
  obs::MetricsRegistry metrics1;
  const auto base = host::run_host_ingest(lossy_config(48, 1), &metrics1);
  const std::string json1 = metrics1.to_json_fields();
  ASSERT_FALSE(base.dstl.empty());
  for (const std::size_t threads : {2u, 8u}) {
    obs::MetricsRegistry metrics;
    const auto other = host::run_host_ingest(lossy_config(48, threads), &metrics);
    EXPECT_EQ(other.dstl, base.dstl) << threads << " threads";
    EXPECT_EQ(other.records, base.records) << threads << " threads";
    EXPECT_EQ(metrics.to_json_fields(), json1) << threads << " threads";
    EXPECT_EQ(other.stats.frames_accepted, base.stats.frames_accepted);
    EXPECT_EQ(other.stats.max_queue_depth, base.stats.max_queue_depth);
    EXPECT_EQ(other.stats.windows, base.stats.windows);
  }
}

TEST(HostIngest, LaneCountDoesNotChangeResultWithAmpleCapacity) {
  // Devices are sharded onto lanes contiguously and stepped in id
  // order, and lanes drain in ascending order — so when no lane ever
  // backpressures, the merged stream is device-id order regardless of
  // how many lanes carried it. Lane count only shapes results through
  // capacity (see OverloadShedsAtTheDeviceNeverCorrupts).
  auto config = lossy_config(48, 1);
  const auto base = host::run_host_ingest(config);
  ASSERT_EQ(base.stats.backpressure_stalls, 0u);
  config.lanes = 7;
  const auto other = host::run_host_ingest(config);
  EXPECT_EQ(other.stats.frames_accepted, base.stats.frames_accepted);
  EXPECT_EQ(other.dstl, base.dstl);
}

TEST(HostIngest, OverloadShedsAtTheDeviceNeverCorrupts) {
  // Lanes far too small for the offered load: backpressure reaches the
  // ARQ queue, which fills and sheds NEW reports at the device (the
  // bounded-RAM contract). Everything that survives is still perfect.
  host::HostIngestConfig config;
  config.devices = 128;
  config.lanes = 2;
  config.lane_capacity = 24;
  config.arq.queue_capacity = 8;  // 8 frames of device RAM, then shed
  config.duration_s = 0.5;
  const auto result = host::run_host_ingest(config);
  const auto& stats = result.stats;
  EXPECT_GT(stats.backpressure_stalls, 0u);
  EXPECT_GT(stats.reports_shed, 0u);
  EXPECT_EQ(stats.frames_accepted, stats.reports_offered - stats.reports_shed);
  EXPECT_EQ(stats.content_mismatches, 0u);
  EXPECT_EQ(stats.frames_duplicate, 0u);
  // The queue never grew past its configured bound.
  EXPECT_LE(stats.max_queue_depth, config.lanes * config.lane_capacity);
}

TEST(HostIngest, MetricsRegistryCarriesTheIngestCounters) {
  obs::MetricsRegistry metrics;
  const auto result = host::run_host_ingest(lossy_config(16, 1), &metrics);
  EXPECT_EQ(metrics.counter("host_frames_accepted").value(), result.stats.frames_accepted);
  EXPECT_EQ(metrics.counter("host_frames_dropped_crc").value(),
            result.stats.frames_crc_rejected);
  EXPECT_EQ(metrics.counter("host_frames_duplicate").value(), result.stats.frames_duplicate);
  EXPECT_EQ(metrics.counter("host_content_mismatches").value(), 0u);
  // Latency histogram saw every accepted frame, with plausible values
  // (arrival-to-drain is bounded by a window plus the grace tail).
  const auto& latency = metrics.histogram("host_ingest_latency");
  EXPECT_EQ(latency.count(), result.stats.frames_accepted);
  EXPECT_GE(latency.sum(), 0.0);
  const std::string json = metrics.to_json_fields();
  EXPECT_NE(json.find("host_queue_depth"), std::string::npos);
  EXPECT_NE(json.find("host_ingest_latency_count"), std::string::npos);
}

// --- golden artifact ------------------------------------------------------

const std::string kGoldenPath =
    std::string(DISTSCROLL_GOLDEN_DIR) + "/canonical_host_ingest.dstl";

bool regen_requested() {
  const char* env = std::getenv("DISTSCROLL_REGEN_GOLDEN");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

/// The scripted 8-device lossy session behind the golden artifact.
/// Frozen: changing ANY field re-rolls the committed bytes.
host::HostIngestConfig canonical_config() {
  host::HostIngestConfig config;
  config.devices = 8;
  config.lanes = 2;
  config.lane_capacity = 64;
  config.duration_s = 1.0;
  config.faults.frame_loss = 0.01;
  config.faults.bit_flip = 0.002;
  config.faults.reorder = 0.005;
  config.faults.ack_loss = 0.005;
  config.base_seed = 0xD157;
  config.session_id = host::kCanonicalHostIngestSession;
  config.threads = 1;
  return config;
}

class GoldenHostIngest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (regen_requested()) {
      const auto fresh = host::run_host_ingest(canonical_config());
      ASSERT_TRUE(host::write_dstl_file(kGoldenPath, fresh.dstl))
          << "cannot write " << kGoldenPath;
      ASSERT_TRUE(host::write_jsonl_file(kGoldenPath + ".jsonl", fresh.records));
    }
  }
};

TEST_F(GoldenHostIngest, CanonicalSessionMatchesGoldenByteForByte) {
  const auto golden = host::read_dstl_file(kGoldenPath);
  ASSERT_TRUE(golden.has_value())
      << "missing golden artifact " << kGoldenPath
      << " — regenerate with DISTSCROLL_REGEN_GOLDEN=1";
  const auto fresh = host::run_host_ingest(canonical_config());
  EXPECT_EQ(fresh.dstl, *golden) << "host ingest behaviour drifted from the golden session";
}

TEST_F(GoldenHostIngest, GoldenDecodesToANonTrivialCleanSession) {
  const auto golden = host::read_dstl_file(kGoldenPath);
  ASSERT_TRUE(golden.has_value());
  std::uint16_t session = 0;
  const auto records = host::decode_dstl(*golden, &session);
  ASSERT_TRUE(records.has_value()) << "golden artifact does not parse";
  EXPECT_EQ(session, host::kCanonicalHostIngestSession);
  // 8 devices x 38 Hz x 1 s, minus start-phase truncation.
  EXPECT_GT(records->size(), 250u);
  std::vector<bool> seen(8, false);
  for (const auto& record : *records) {
    ASSERT_LT(record.device_id, 8u);
    seen[record.device_id] = true;
    EXPECT_LE(record.state.adc_counts, 1023u);
  }
  for (int d = 0; d < 8; ++d) EXPECT_TRUE(seen[static_cast<std::size_t>(d)]) << "device " << d;
}

}  // namespace
