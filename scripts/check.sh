#!/usr/bin/env bash
# One-shot pre-merge gate: configure, build, and test the flavours the
# determinism contract cares about.
#
#   default      lint + unit + property + golden + batch + fleet + host
#                (the full gate)
#   tracing-off  same labels — proves tracing compiled out changes no
#                behaviour (perf baselines are recorded for the tracing
#                build, so the perf gate only runs on default)
#   asan-ubsan   lint + unit + fuzz + host under ASan/UBSan (+ the
#                gcc/clang extra UBSan checks CMakeLists.txt adds per
#                compiler); host runs here too so the ingest drain loop
#                and the DSTL decoder get the over-read instrumentation
#
# Every flavour runs the same pre-step: build ds_lint alone and assert
# `ds_lint --root .` exits 0 BEFORE the (much longer) test build. A
# dirty tree fails in seconds, not after minutes of compiling tests.
#
# The perf gate (ctest -L perf on the default build, which includes the
# bench_compare check against committed BENCH_*.json baselines) runs as
# its own step AFTER the flavours: bench_compare exits 77 when the
# environment is not comparable to the recorded baselines (different
# hardware thread count or tracing flavour), and that SKIP must surface
# in the summary as "environment not comparable" — not be folded into a
# flavour's pass/fail where it would read as a green perf check.
#
# The ds_lint sweep also runs at build time (tools/CMakeLists.txt makes
# lint_tree an ALL target), so a dirty tree fails `cmake --build` before
# ctest even starts.
#
# Usage: scripts/check.sh [jobs]   (default: nproc)
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

# Map a configure preset to its binaryDir (see CMakePresets.json).
preset_bindir() {
  case "$1" in
    default)     echo build ;;
    asan-ubsan)  echo build-asan ;;
    tsan)        echo build-tsan ;;
    tracing-off) echo build-notrace ;;
    *)           echo "unknown preset '$1'" >&2; exit 64 ;;
  esac
}

run_flavour() {
  local preset="$1" labels="$2"
  local bindir
  bindir="$(preset_bindir "${preset}")"
  echo "==> [${preset}] configure"
  cmake --preset "${preset}" >/dev/null
  echo "==> [${preset}] lint gate: ds_lint --root ."
  cmake --build --preset "${preset}" -j "${JOBS}" --target ds_lint >/dev/null
  "./${bindir}/tools/ds_lint" --root .
  echo "==> [${preset}] build"
  cmake --build --preset "${preset}" -j "${JOBS}"
  echo "==> [${preset}] ctest -L '${labels}'"
  ctest --preset "${preset}" -L "${labels}" --output-on-failure
}

# Separate perf step: distinguish bench_compare's SKIP (exit 77, wired
# into ctest as SKIP_RETURN_CODE — the run "passes" with ***Skipped)
# from a real FAIL, and say which one happened.
PERF_STATUS="ok"
run_perf_gate() {
  echo "==> [default] perf gate: ctest -L perf"
  local log
  log="$(mktemp)"
  if ! ctest --preset default -L perf --output-on-failure 2>&1 | tee "${log}"; then
    rm -f "${log}"
    echo "==> perf gate FAILED (regression or diverged results)" >&2
    exit 1
  fi
  if grep -q '\*\*\*Skipped' "${log}"; then
    PERF_STATUS="SKIP (environment not comparable to recorded baselines)"
  fi
  rm -f "${log}"
}

run_flavour default     'lint|unit|property|golden|batch|fleet|host'
run_flavour tracing-off 'lint|unit|property|golden|batch|fleet|host'
run_flavour asan-ubsan  'lint|unit|fuzz|host'
run_perf_gate

echo "==> all flavours green (perf gate: ${PERF_STATUS})"
