#!/usr/bin/env bash
# One-shot pre-merge gate: configure, build, and test the flavours the
# determinism contract cares about.
#
#   default      lint + unit + property + golden + perf   (the full gate)
#   tracing-off  same labels minus perf — proves tracing compiled out
#                changes no behaviour (perf baselines are recorded for
#                the tracing build, so the compare would just skip)
#   asan-ubsan   unit + fuzz under ASan/UBSan (+ the gcc/clang extra
#                UBSan checks CMakeLists.txt adds per compiler)
#
# The ds_lint sweep also runs at build time (tools/CMakeLists.txt makes
# lint_tree an ALL target), so a dirty tree fails `cmake --build` before
# ctest even starts.
#
# Usage: scripts/check.sh [jobs]   (default: nproc)
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

run_flavour() {
  local preset="$1" labels="$2"
  echo "==> [${preset}] configure + build"
  cmake --preset "${preset}" >/dev/null
  cmake --build --preset "${preset}" -j "${JOBS}"
  echo "==> [${preset}] ctest -L '${labels}'"
  ctest --preset "${preset}" -L "${labels}" --output-on-failure
}

run_flavour default     'lint|unit|property|golden|perf'
run_flavour tracing-off 'lint|unit|property|golden'
run_flavour asan-ubsan  'unit|fuzz'

echo "==> all flavours green"
