// Section 7, Q2: "Is the scrolling range of 4 to 30 cm appropriate?"
//
// Sweep the calibrated [near, far] range and measure selection time and
// error rate on a 10-entry menu. Short ranges squeeze islands below
// motor precision; ranges pushed past ~30 cm run into the sensor's
// resolution floor (the curve flattens, islands collapse to a few ADC
// counts) and past comfortable arm extension.
//
// Each range is one SweepRunner cell (RNG forked off the cell index;
// bit-identical at any thread count), timed into BENCH_exp_range_sweep.json.
#include <cstdio>
#include <span>
#include <vector>

#include "baselines/distance_scroll.h"
#include "study/batch_trials.h"
#include "study/report.h"
#include "study/sweep_runner.h"
#include "study/task.h"
#include "study/trial.h"
#include "util/csv.h"

using namespace distscroll;

namespace {

struct Range {
  double near, far;
  const char* note;
};

const Range kRanges[] = {
    {4.0, 12.0, "very short throw"},
    {4.0, 20.0, "short throw"},
    {4.0, 30.0, "the paper's range"},
    {4.0, 40.0, "extended (sensor flattens)"},
    {8.0, 30.0, "late start"},
    {10.0, 50.0, "far shifted (resolution floor)"},
};

study::Aggregate run_range(double near_cm, double far_cm, sim::Rng rng) {
  baselines::DistanceScroll::Config config;
  config.islands.near = util::Centimeters{near_cm};
  config.islands.far = util::Centimeters{far_cm};
  baselines::DistanceScroll technique(config, rng.fork(1));
  sim::Rng task_rng = rng.fork(2);
  const auto tasks = study::random_tasks(task_rng, 10, 30);
  const auto records =
      study::run_trials(technique, tasks, human::UserProfile::average(), rng.fork(3));
  return study::aggregate(records);
}

}  // namespace

int main() {
  std::printf("=== Q2: is 4..30 cm appropriate? (10-entry menu, 30 trials each) ===\n\n");
  const auto scalar_cell = [&](std::size_t index, sim::Rng rng) {
    return run_range(kRanges[index].near, kRanges[index].far, rng);
  };
  // Batched group body: every cell is a DistScroll session (one range
  // per lane), aggregated from the kernel's trial records.
  const auto batched_group = [&](std::size_t first, std::size_t n,
                                 std::span<study::Aggregate> out, study::SweepRunner& runner) {
    auto& batch = study::BatchTrialRunner::local();
    batch.begin_group(n);
    for (std::size_t k = 0; k < n; ++k) {
      const std::size_t index = first + k;
      sim::Rng rng = runner.cell_rng(index);
      baselines::DistanceScroll::Config config;
      config.islands.near = util::Centimeters{kRanges[index].near};
      config.islands.far = util::Centimeters{kRanges[index].far};
      sim::Rng task_rng = rng.fork(2);
      const auto tasks = study::random_tasks(task_rng, 10, 30);
      batch.init_cell(k, config, rng.fork(1), tasks, human::UserProfile::average(), rng.fork(3));
    }
    batch.run();
    for (std::size_t k = 0; k < n; ++k) {
      out[k] = study::aggregate(batch.records(k));
    }
  };
  const auto cells = study::timed_sweep_batched<study::Aggregate>(
      "exp_range_sweep", std::size(kRanges), 0xBEEF, scalar_cell, batched_group);
  std::printf("\n");

  study::Table table({"range[cm]", "note", "time[s]", "success", "err/trial", "corrections"});
  util::CsvWriter csv("exp_range_sweep.csv",
                      {"near_cm", "far_cm", "mean_time_s", "success_rate", "errors_per_trial",
                       "mean_corrections"});
  for (std::size_t i = 0; i < std::size(kRanges); ++i) {
    const auto& range = kRanges[i];
    const auto& agg = cells[i];
    char label[32];
    std::snprintf(label, sizeof(label), "%.0f..%.0f", range.near, range.far);
    table.add_row({label, range.note, study::fmt(agg.mean_time_s, 2),
                   study::fmt(agg.success_rate, 2), study::fmt(agg.error_rate, 2),
                   study::fmt(agg.mean_corrections, 2)});
    csv.row({range.near, range.far, agg.mean_time_s, agg.success_rate, agg.error_rate,
             agg.mean_corrections});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("expected shape: the paper's 4..30 cm sits at/near the optimum —\n"
              "shorter throws crowd the islands (more corrections), far-shifted\n"
              "ranges lose ADC resolution where the curve flattens.\n");
  std::printf("wrote exp_range_sweep.csv\n");
  return 0;
}
