// Section 7, Q2: "Is the scrolling range of 4 to 30 cm appropriate?"
//
// Sweep the calibrated [near, far] range and measure selection time and
// error rate on a 10-entry menu. Short ranges squeeze islands below
// motor precision; ranges pushed past ~30 cm run into the sensor's
// resolution floor (the curve flattens, islands collapse to a few ADC
// counts) and past comfortable arm extension.
#include <cstdio>

#include "baselines/distance_scroll.h"
#include "study/report.h"
#include "study/task.h"
#include "study/trial.h"
#include "util/csv.h"

using namespace distscroll;

namespace {

study::Aggregate run_range(double near_cm, double far_cm, std::uint64_t seed) {
  baselines::DistanceScroll::Config config;
  config.islands.near = util::Centimeters{near_cm};
  config.islands.far = util::Centimeters{far_cm};
  sim::Rng rng(seed);
  baselines::DistanceScroll technique(config, rng.fork(1));
  sim::Rng task_rng = rng.fork(2);
  const auto tasks = study::random_tasks(task_rng, 10, 30);
  const auto records =
      study::run_trials(technique, tasks, human::UserProfile::average(), rng.fork(3));
  return study::aggregate(records);
}

}  // namespace

int main() {
  struct Range {
    double near, far;
    const char* note;
  };
  const Range ranges[] = {
      {4.0, 12.0, "very short throw"},
      {4.0, 20.0, "short throw"},
      {4.0, 30.0, "the paper's range"},
      {4.0, 40.0, "extended (sensor flattens)"},
      {8.0, 30.0, "late start"},
      {10.0, 50.0, "far shifted (resolution floor)"},
  };

  std::printf("=== Q2: is 4..30 cm appropriate? (10-entry menu, 30 trials each) ===\n\n");
  study::Table table({"range[cm]", "note", "time[s]", "success", "err/trial", "corrections"});
  util::CsvWriter csv("exp_range_sweep.csv",
                      {"near_cm", "far_cm", "mean_time_s", "success_rate", "errors_per_trial",
                       "mean_corrections"});
  for (const auto& range : ranges) {
    const auto agg = run_range(range.near, range.far,
                               0xBEEF ^ static_cast<std::uint64_t>(range.near * 10) ^
                                   (static_cast<std::uint64_t>(range.far) << 8));
    char label[32];
    std::snprintf(label, sizeof(label), "%.0f..%.0f", range.near, range.far);
    table.add_row({label, range.note, study::fmt(agg.mean_time_s, 2),
                   study::fmt(agg.success_rate, 2), study::fmt(agg.error_rate, 2),
                   study::fmt(agg.mean_corrections, 2)});
    csv.row({range.near, range.far, agg.mean_time_s, agg.success_rate, agg.error_rate,
             agg.mean_corrections});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("expected shape: the paper's 4..30 cm sits at/near the optimum —\n"
              "shorter throws crowd the islands (more corrections), far-shifted\n"
              "ranges lose ADC resolution where the curve flattens.\n");
  std::printf("wrote exp_range_sweep.csv\n");
  return 0;
}
