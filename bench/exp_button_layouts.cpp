// Section 6's design question: "we are currently experimenting with the
// number and position of the buttons. We currently favor a two button
// design with the buttons slidable along the sides ... But we also
// think of a layout with one large button".
//
// We score the three candidate layouts over a mixed-handed population
// (~10% left-handed) with and without thick gloves, on a realistic
// command mix (70% select, 25% back, 5% aux), using the per-layout
// ergonomics model (core/button_layout.h): expected time per action and
// expected slip rate.
//
// Each (glove, layout, user) triple is one SweepRunner cell (RNG forked
// off the cell index; bit-identical at any thread count), timed into
// BENCH_exp_button_layouts.json.
#include <cstdio>

#include "core/button_layout.h"
#include "human/user_profile.h"
#include "sim/random.h"
#include "study/report.h"
#include "study/sweep_runner.h"
#include "util/csv.h"

using namespace distscroll;
using core::ButtonAction;
using core::ButtonLayout;
using core::Handedness;

namespace {

constexpr std::size_t kUsers = 20;
constexpr std::size_t kActions = 200;

const human::Glove kGloves[] = {human::Glove::None, human::Glove::Thick};
const ButtonLayout kLayouts[] = {ButtonLayout::ThreeButtonRight,
                                 ButtonLayout::SlidableTwoButton,
                                 ButtonLayout::SingleLargeButton};

/// One user's action stream under one (glove, layout); merged per
/// condition below.
struct CellResult {
  double total_time = 0.0;
  double slips = 0.0;

  friend bool operator==(const CellResult&, const CellResult&) = default;
};

CellResult run_user(ButtonLayout layout, human::Glove glove, std::size_t user, sim::Rng rng) {
  const Handedness hand = (user < 2) ? Handedness::Left : Handedness::Right;  // ~10% LH
  const auto profile = human::UserProfile::average().with_glove(glove);
  CellResult result;
  for (std::size_t i = 0; i < kActions; ++i) {
    const double roll = rng.uniform(0.0, 1.0);
    const ButtonAction action = roll < 0.70   ? ButtonAction::Select
                                : roll < 0.95 ? ButtonAction::Back
                                              : ButtonAction::Aux;
    const auto ergo = core::ergonomics(layout, hand, action);
    double time = profile.button_press_s * ergo.time_multiplier;
    const double miss_p =
        std::min(0.8, profile.button_miss_probability * ergo.miss_multiplier);
    // Slipped presses cost a retry (noticing + pressing again).
    while (rng.bernoulli(miss_p)) {
      result.slips += 1.0;
      time += profile.reaction_time_s + profile.button_press_s * ergo.time_multiplier;
      if (time > 5.0) break;  // give up pathology guard
    }
    result.total_time += time;
  }
  return result;
}

const char* layout_name(ButtonLayout layout) {
  switch (layout) {
    case ButtonLayout::ThreeButtonRight: return "3-button right (prototype)";
    case ButtonLayout::SlidableTwoButton: return "2-button slidable";
    case ButtonLayout::SingleLargeButton: return "1 large button (long-press back)";
  }
  return "?";
}

}  // namespace

int main() {
  std::printf("=== Button layout study (Section 6 design question) ===\n");
  std::printf("population: 20 users, ~10%% left-handed; 70/25/5 select/back/aux mix\n\n");

  const study::SweepGrid grid({std::size(kGloves), std::size(kLayouts), kUsers});
  const auto cells = study::timed_sweep<CellResult>(
      "exp_button_layouts", grid.cells(), 0xB077, [&](std::size_t index, sim::Rng rng) {
        return run_user(kLayouts[grid.coord(index, 1)], kGloves[grid.coord(index, 0)],
                        grid.coord(index, 2), rng);
      });
  std::printf("\n");

  study::Table table({"layout", "hands", "time/action [s]", "slips/action"});
  util::CsvWriter csv("exp_button_layouts.csv",
                      {"layout", "glove", "time_per_action_s", "slips_per_action"});
  for (std::size_t g = 0; g < std::size(kGloves); ++g) {
    for (std::size_t l = 0; l < std::size(kLayouts); ++l) {
      double total_time = 0.0, slips = 0.0;
      for (std::size_t user = 0; user < kUsers; ++user) {
        const auto& cell = cells[grid.index({g, l, user})];
        total_time += cell.total_time;
        slips += cell.slips;
      }
      const double mean_action_time = total_time / (kUsers * kActions);
      const double slip_rate = slips / (kUsers * kActions);
      const char* hands = kGloves[g] == human::Glove::None ? "bare" : "thick gloves";
      table.add_row({layout_name(kLayouts[l]), hands, study::fmt(mean_action_time, 3),
                     study::fmt(slip_rate, 3)});
      csv.row({std::vector<std::string>{layout_name(kLayouts[l]), hands,
                                        study::fmt(mean_action_time, 4),
                                        study::fmt(slip_rate, 4)}});
    }
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("Left-handed users only, bare hands (the prototype's weakness):\n");
  study::Table lh({"layout", "select time x", "select miss x"});
  for (const auto layout : kLayouts) {
    const auto e = core::ergonomics(layout, Handedness::Left, ButtonAction::Select);
    lh.add_row({layout_name(layout), study::fmt(e.time_multiplier, 2),
                study::fmt(e.miss_multiplier, 2)});
  }
  std::printf("%s\n", lh.render().c_str());
  std::printf("expected shape: the prototype layout is fine right-handed and poor\n"
              "left-handed; the slidable design is hand-symmetric and fastest\n"
              "overall; the single large button wins on slips (especially gloved)\n"
              "but pays the long-press time on every 'back' — matching the\n"
              "trade-off the authors describe.\n");
  std::printf("wrote exp_button_layouts.csv\n");
  return 0;
}
