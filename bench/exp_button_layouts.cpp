// Section 6's design question: "we are currently experimenting with the
// number and position of the buttons. We currently favor a two button
// design with the buttons slidable along the sides ... But we also
// think of a layout with one large button".
//
// We score the three candidate layouts over a mixed-handed population
// (~10% left-handed) with and without thick gloves, on a realistic
// command mix (70% select, 25% back, 5% aux), using the per-layout
// ergonomics model (core/button_layout.h): expected time per action and
// expected slip rate.
#include <cstdio>

#include "core/button_layout.h"
#include "human/user_profile.h"
#include "sim/random.h"
#include "study/report.h"
#include "util/csv.h"

using namespace distscroll;
using core::ButtonAction;
using core::ButtonLayout;
using core::Handedness;

namespace {

struct LayoutScore {
  double mean_action_time = 0.0;
  double slip_rate = 0.0;
};

LayoutScore score_layout(ButtonLayout layout, human::Glove glove, std::uint64_t seed) {
  sim::Rng rng(seed);
  constexpr int kUsers = 20;
  constexpr int kActions = 200;
  double total_time = 0.0;
  double slips = 0.0;

  for (int user = 0; user < kUsers; ++user) {
    const Handedness hand = (user < 2) ? Handedness::Left : Handedness::Right;  // ~10% LH
    const auto profile = human::UserProfile::average().with_glove(glove);
    sim::Rng user_rng = rng.fork(static_cast<std::uint64_t>(user));
    for (int i = 0; i < kActions; ++i) {
      const double roll = user_rng.uniform(0.0, 1.0);
      const ButtonAction action = roll < 0.70   ? ButtonAction::Select
                                  : roll < 0.95 ? ButtonAction::Back
                                                : ButtonAction::Aux;
      const auto ergo = core::ergonomics(layout, hand, action);
      double time = profile.button_press_s * ergo.time_multiplier;
      const double miss_p =
          std::min(0.8, profile.button_miss_probability * ergo.miss_multiplier);
      // Slipped presses cost a retry (noticing + pressing again).
      while (user_rng.bernoulli(miss_p)) {
        slips += 1.0;
        time += profile.reaction_time_s + profile.button_press_s * ergo.time_multiplier;
        if (time > 5.0) break;  // give up pathology guard
      }
      total_time += time;
    }
  }
  return {total_time / (kUsers * kActions), slips / (kUsers * kActions)};
}

const char* layout_name(ButtonLayout layout) {
  switch (layout) {
    case ButtonLayout::ThreeButtonRight: return "3-button right (prototype)";
    case ButtonLayout::SlidableTwoButton: return "2-button slidable";
    case ButtonLayout::SingleLargeButton: return "1 large button (long-press back)";
  }
  return "?";
}

}  // namespace

int main() {
  std::printf("=== Button layout study (Section 6 design question) ===\n");
  std::printf("population: 20 users, ~10%% left-handed; 70/25/5 select/back/aux mix\n\n");

  study::Table table({"layout", "hands", "time/action [s]", "slips/action"});
  util::CsvWriter csv("exp_button_layouts.csv",
                      {"layout", "glove", "time_per_action_s", "slips_per_action"});
  for (const auto glove : {human::Glove::None, human::Glove::Thick}) {
    for (const auto layout : {ButtonLayout::ThreeButtonRight, ButtonLayout::SlidableTwoButton,
                              ButtonLayout::SingleLargeButton}) {
      const auto score = score_layout(layout, glove, 0xB077);
      const char* hands = glove == human::Glove::None ? "bare" : "thick gloves";
      table.add_row({layout_name(layout), hands, study::fmt(score.mean_action_time, 3),
                     study::fmt(score.slip_rate, 3)});
      csv.row({std::vector<std::string>{layout_name(layout), hands,
                                        study::fmt(score.mean_action_time, 4),
                                        study::fmt(score.slip_rate, 4)}});
    }
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("Left-handed users only, bare hands (the prototype's weakness):\n");
  study::Table lh({"layout", "select time x", "select miss x"});
  for (const auto layout : {ButtonLayout::ThreeButtonRight, ButtonLayout::SlidableTwoButton,
                            ButtonLayout::SingleLargeButton}) {
    const auto e = core::ergonomics(layout, Handedness::Left, ButtonAction::Select);
    lh.add_row({layout_name(layout), study::fmt(e.time_multiplier, 2),
                study::fmt(e.miss_multiplier, 2)});
  }
  std::printf("%s\n", lh.render().c_str());
  std::printf("expected shape: the prototype layout is fine right-handed and poor\n"
              "left-handed; the slidable design is hand-symmetric and fastest\n"
              "overall; the single large button wins on slips (especially gloved)\n"
              "but pays the long-press time on every 'back' — matching the\n"
              "trade-off the authors describe.\n");
  std::printf("wrote exp_button_layouts.csv\n");
  return 0;
}
