// Fatigue over a long session — quantifying the paper's Section 2
// critique ("using this input method [tilt] for a longer period of time
// is fatiguing") honestly, i.e. including DistScroll's own cost of
// holding the arm extended.
//
// Protocol: 15 simulated minutes of continuous 10-entry selections per
// technique. Each trial accrues posture-specific effort; fatigue feeds
// back into tremor and movement speed. Performance is reported in
// 3-minute bins.
#include <cstdio>
#include <memory>

#include "baselines/button_scroll.h"
#include "baselines/distance_scroll.h"
#include "baselines/tilt_scroll.h"
#include "baselines/wheel_scroll.h"
#include "human/fatigue.h"
#include "study/report.h"
#include "study/task.h"
#include "study/trial.h"
#include "util/csv.h"

using namespace distscroll;

namespace {

struct TechniqueRun {
  const char* name;
  std::unique_ptr<baselines::ScrollTechnique> technique;
  double effort_rate;  // fatigue units/s of active use
};

}  // namespace

int main() {
  constexpr double kSessionSeconds = 15.0 * 60.0;
  constexpr int kBins = 5;
  const double bin_width = kSessionSeconds / kBins;
  const human::FatigueModel::Config fatigue_config{};

  sim::Rng rng(0xFA716);
  TechniqueRun runs[] = {
      {"DistScroll", std::make_unique<baselines::DistanceScroll>(baselines::DistanceScroll::Config{}, rng.fork(1)),
       fatigue_config.arm_extension_rate},
      {"TiltScroll", std::make_unique<baselines::TiltScroll>(baselines::TiltScroll::Config{}, rng.fork(2)),
       fatigue_config.wrist_tilt_rate},
      {"YoYoWheel", std::make_unique<baselines::WheelScroll>(baselines::WheelScroll::Config{}, rng.fork(3)),
       fatigue_config.stroke_rate},
      {"ButtonScroll", std::make_unique<baselines::ButtonScroll>(), fatigue_config.button_rate},
  };

  std::printf("=== Fatigue over a 15-minute continuous session (10-entry menu) ===\n\n");
  study::Table table({"technique", "0-3min", "3-6min", "6-9min", "9-12min", "12-15min",
                      "final fatigue"});
  util::CsvWriter csv("exp_fatigue.csv",
                      {"technique", "bin", "mean_time_s", "fatigue_level"});

  for (auto& run : runs) {
    human::FatigueModel fatigue(fatigue_config);
    const auto base_profile = human::UserProfile::average();
    sim::Rng tech_rng = rng.fork(std::hash<std::string>{}(run.name));
    sim::Rng task_rng = tech_rng.fork(1);

    double clock = 0.0;
    std::vector<double> bin_time(kBins, 0.0);
    std::vector<int> bin_count(kBins, 0);
    std::size_t trial = 0;
    while (clock < kSessionSeconds) {
      const auto tasks = study::random_tasks(task_rng, 10, 1);
      const auto profile = fatigue.apply(base_profile);
      const auto record =
          study::run_trial(*run.technique, tasks[0], profile, tech_rng.fork(100 + trial));
      ++trial;
      const int bin = std::min(kBins - 1, static_cast<int>(clock / bin_width));
      if (record.outcome.success) {
        bin_time[static_cast<std::size_t>(bin)] += record.outcome.time_s;
        ++bin_count[static_cast<std::size_t>(bin)];
      }
      fatigue.accrue(record.outcome.time_s, run.effort_rate);
      // A short breather between selections (reading the result).
      fatigue.rest(1.0);
      clock += record.outcome.time_s + 1.0;
    }

    std::vector<std::string> row{run.name};
    for (int b = 0; b < kBins; ++b) {
      const double mean =
          bin_count[static_cast<std::size_t>(b)] > 0
              ? bin_time[static_cast<std::size_t>(b)] / bin_count[static_cast<std::size_t>(b)]
              : 0.0;
      row.push_back(study::fmt(mean, 2));
      csv.row({std::vector<std::string>{run.name, std::to_string(b), study::fmt(mean, 3),
                                        study::fmt(fatigue.level(), 3)}});
    }
    row.push_back(study::fmt(fatigue.level(), 2));
    table.add_row(row);
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("expected shape: tilt degrades most over the session (sustained\n"
              "wrist deviation — the paper's critique); DistScroll degrades\n"
              "moderately (arm extension is real effort too — an honest caveat\n"
              "the paper does not quantify); buttons barely change.\n");
  std::printf("wrote exp_fatigue.csv\n");
  return 0;
}
