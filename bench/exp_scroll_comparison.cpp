// Section 7, Q1: "Is distance-based scrolling faster, equal or slower
// than other scrolling techniques?" — the comparison the paper leaves
// as future work, run over our simulated participants.
//
// Conditions: 5 techniques x menu sizes {5,10,20,40} x gloves
// {none, thick} x a 6-participant expertise spread, 30 trials per cell
// (ScrollTest-style trial counts: 180 trials per reported condition).
// The grid runs on study::SweepRunner — each cell's RNG forks off the
// cell index, so the parallel run is bit-identical to the sequential
// one; the harness times both and records BENCH_exp_scroll_comparison.json.
// Metrics: mean selection time, error rate, Fitts throughput. Also
// prints the smoothing ablation for DistScroll.
//
// Expected shapes (see DESIGN.md): buttons win very short menus;
// DistScroll is competitive at small/medium sizes and degrades on large
// menus (islands shrink below motor precision); with thick gloves the
// button/touch baselines collapse while DistScroll barely moves — the
// paper's central motivation.
#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <memory>
#include <span>

#include "baselines/button_scroll.h"
#include "baselines/distance_scroll.h"
#include "baselines/radial_scroll.h"
#include "baselines/tilt_scroll.h"
#include "baselines/wheel_scroll.h"
#include "study/batch_trials.h"
#include "study/report.h"
#include "study/sweep_runner.h"
#include "study/task.h"
#include "study/trial.h"
#include "util/csv.h"
#include "util/stats.h"

using namespace distscroll;

namespace {

constexpr std::size_t kTrials = 30;
constexpr std::size_t kParticipants = 6;
const char* const kTechniques[] = {"DistScroll", "TiltScroll", "YoYoWheel", "ButtonScroll",
                                   "RadialScroll"};
const std::size_t kMenuSizes[] = {5, 10, 20, 40};
const human::Glove kGloves[] = {human::Glove::None, human::Glove::Thick};

std::unique_ptr<baselines::ScrollTechnique> make_technique(const std::string& name,
                                                           sim::Rng rng,
                                                           core::Smoothing smoothing) {
  if (name == "DistScroll") {
    baselines::DistanceScroll::Config config;
    config.scroll.smoothing = smoothing;
    return std::make_unique<baselines::DistanceScroll>(config, rng);
  }
  if (name == "TiltScroll") return std::make_unique<baselines::TiltScroll>(baselines::TiltScroll::Config{}, rng);
  if (name == "YoYoWheel") return std::make_unique<baselines::WheelScroll>(baselines::WheelScroll::Config{}, rng);
  if (name == "ButtonScroll") return std::make_unique<baselines::ButtonScroll>();
  return std::make_unique<baselines::RadialScroll>();
}

struct Condition {
  std::string technique;
  std::size_t menu_size;
  human::Glove glove;
};

/// Mixed pool: expertise spread 0.25..0.75 around the old average-user
/// profile (mean 0.5), stable per participant slot.
double participant_expertise(std::size_t participant) {
  return 0.25 + 0.1 * static_cast<double>(participant);
}

/// One sweep cell = one participant's 30 trials in one condition.
/// Trivially copyable so the parallel/sequential bit-identity check is
/// an exact byte comparison.
struct CellResult {
  std::array<study::TrialRecord, kTrials> records{};

  friend bool operator==(const CellResult&, const CellResult&) = default;
};

CellResult run_cell(const Condition& condition, core::Smoothing smoothing, double expertise,
                    sim::Rng rng) {
  auto technique = make_technique(condition.technique, rng.fork(1), smoothing);
  const auto profile =
      human::UserProfile::average().with_expertise(expertise).with_glove(condition.glove);
  sim::Rng task_rng = rng.fork(2);
  const auto tasks = study::random_tasks(task_rng, condition.menu_size, kTrials);
  const auto records = study::run_trials(*technique, tasks, profile, rng.fork(3));
  CellResult out;
  std::copy(records.begin(), records.end(), out.records.begin());
  return out;
}

/// Merge the participant cells of one condition into one record pool.
std::vector<study::TrialRecord> condition_records(const study::SweepGrid& grid,
                                                  const std::vector<CellResult>& cells,
                                                  std::size_t technique, std::size_t menu,
                                                  std::size_t glove) {
  std::vector<study::TrialRecord> merged;
  merged.reserve(kParticipants * kTrials);
  for (std::size_t p = 0; p < kParticipants; ++p) {
    const auto& cell = cells[grid.index({technique, menu, glove, p})];
    merged.insert(merged.end(), cell.records.begin(), cell.records.end());
  }
  return merged;
}

std::vector<double> success_times(const std::vector<study::TrialRecord>& records) {
  std::vector<double> times;
  for (const auto& r : records) {
    if (r.outcome.success) times.push_back(r.outcome.time_s);
  }
  return times;
}

}  // namespace

int main() {
  // Stable-indexed grid: axes (technique, menu, glove, participant),
  // last axis fastest. Cell RNG = Rng(base_seed).fork(cell index).
  const study::SweepGrid grid({std::size(kTechniques), std::size(kMenuSizes),
                               std::size(kGloves), kParticipants});
  const auto scalar_cell = [&](std::size_t index, sim::Rng rng) {
    const Condition condition{kTechniques[grid.coord(index, 0)],
                              kMenuSizes[grid.coord(index, 1)],
                              kGloves[grid.coord(index, 2)]};
    return run_cell(condition, core::Smoothing::Raw,
                    participant_expertise(grid.coord(index, 3)), rng);
  };
  // Batched group body: DistScroll cells become BatchSessionKernel
  // lanes (same per-cell fork decomposition as run_cell, so the streams
  // are bit-identical); the other techniques run the scalar body.
  const auto batched_group = [&](std::size_t first, std::size_t n,
                                 std::span<CellResult> out, study::SweepRunner& runner) {
    auto& batch = study::BatchTrialRunner::local();
    batch.begin_group(n);
    bool any_lane = false;
    for (std::size_t k = 0; k < n; ++k) {
      const std::size_t index = first + k;
      if (grid.coord(index, 0) != 0) {  // not DistScroll
        out[k] = scalar_cell(index, runner.cell_rng(index));
        continue;
      }
      sim::Rng rng = runner.cell_rng(index);
      baselines::DistanceScroll::Config config;
      config.scroll.smoothing = core::Smoothing::Raw;
      const auto profile = human::UserProfile::average()
                               .with_expertise(participant_expertise(grid.coord(index, 3)))
                               .with_glove(kGloves[grid.coord(index, 2)]);
      sim::Rng task_rng = rng.fork(2);
      const auto tasks = study::random_tasks(task_rng, kMenuSizes[grid.coord(index, 1)], kTrials);
      batch.init_cell(k, config, rng.fork(1), tasks, profile, rng.fork(3));
      any_lane = true;
    }
    if (any_lane) batch.run();
    for (std::size_t k = 0; k < n; ++k) {
      if (grid.coord(first + k, 0) != 0) continue;
      const auto records = batch.records(k);
      std::copy(records.begin(), records.end(), out[k].records.begin());
    }
  };
  const auto cells = study::timed_sweep_batched<CellResult>(
      "exp_scroll_comparison", grid.cells(), 0xC0FFEE, scalar_cell, batched_group);
  std::printf("\n");

  util::CsvWriter csv("exp_scroll_comparison.csv",
                      {"technique", "menu_size", "glove", "mean_time_s", "p95_time_s",
                       "success_rate", "errors_per_trial", "throughput_bits_s"});

  for (std::size_t g = 0; g < std::size(kGloves); ++g) {
    const char* glove_name = kGloves[g] == human::Glove::None ? "bare hands" : "THICK GLOVES";
    std::printf("=== Q1 technique comparison — %s ===\n\n", glove_name);
    study::Table table({"technique", "menu", "time[s]", "p95[s]", "success", "err/trial",
                        "TP[bit/s]"});
    for (std::size_t t = 0; t < std::size(kTechniques); ++t) {
      for (std::size_t m = 0; m < std::size(kMenuSizes); ++m) {
        const auto agg = study::aggregate(condition_records(grid, cells, t, m, g));
        const std::string menu = std::to_string(kMenuSizes[m]);
        table.add_row({kTechniques[t], menu, study::fmt(agg.mean_time_s, 2),
                       study::fmt(agg.p95_time_s, 2), study::fmt(agg.success_rate, 2),
                       study::fmt(agg.error_rate, 2), study::fmt(agg.throughput_bits_s, 2)});
        csv.row({std::vector<std::string>{
            kTechniques[t], menu, kGloves[g] == human::Glove::None ? "none" : "thick",
            study::fmt(agg.mean_time_s, 3), study::fmt(agg.p95_time_s, 3),
            study::fmt(agg.success_rate, 3), study::fmt(agg.error_rate, 3),
            study::fmt(agg.throughput_bits_s, 3)}});
      }
    }
    std::printf("%s\n", table.render().c_str());
  }

  std::printf("=== Ablation: DistScroll input smoothing (menu=10, bare hands) ===\n\n");
  {
    const core::Smoothing smoothings[] = {core::Smoothing::Raw, core::Smoothing::Median3,
                                          core::Smoothing::Ema};
    // Same runner contract, separate small sweep: cells = smoothing x
    // participant.
    const study::SweepGrid ablation_grid({std::size(smoothings), kParticipants});
    study::SweepRunner runner({0, 1, 0xABCD});
    const auto ablation_cells = runner.run<CellResult>(
        ablation_grid.cells(), [&](std::size_t index, sim::Rng rng) {
          return run_cell({"DistScroll", 10, human::Glove::None},
                          smoothings[ablation_grid.coord(index, 0)],
                          participant_expertise(ablation_grid.coord(index, 1)), rng);
        });
    study::Table ablation({"smoothing", "time[s]", "success", "err/trial"});
    for (std::size_t s = 0; s < std::size(smoothings); ++s) {
      const char* name = smoothings[s] == core::Smoothing::Raw
                             ? "raw (paper)"
                             : (smoothings[s] == core::Smoothing::Median3 ? "median-3" : "EMA 1/4");
      std::vector<study::TrialRecord> merged;
      for (std::size_t p = 0; p < kParticipants; ++p) {
        const auto& cell = ablation_cells[ablation_grid.index({s, p})];
        merged.insert(merged.end(), cell.records.begin(), cell.records.end());
      }
      const auto agg = study::aggregate(merged);
      ablation.add_row({name, study::fmt(agg.mean_time_s, 2), study::fmt(agg.success_rate, 2),
                        study::fmt(agg.error_rate, 2)});
    }
    std::printf("%s\n", ablation.render().c_str());
  }

  std::printf("=== Credibility of the headline contrasts (Welch t on times) ===\n\n");
  {
    // The contrasts reuse the main grid's trial pools (same data the
    // tables report), 180 trials a side.
    study::Table tstats({"contrast", "means [s]", "|t|", "credible (|t|>2)"});
    struct Contrast {
      const char* name;
      std::size_t technique_a, menu_a, glove_a;
      std::size_t technique_b, menu_b, glove_b;
    };
    // Axis indices: technique {DistScroll=0, ButtonScroll=3}, menu
    // {5:0, 10:1}, glove {none:0, thick:1}.
    const Contrast contrasts[] = {
        {"gloved: DistScroll vs ButtonScroll (menu 10)", 0, 1, 1, 3, 1, 1},
        {"bare: ButtonScroll vs DistScroll (menu 5)", 3, 0, 0, 0, 0, 0},
        {"DistScroll: bare vs gloved (menu 10)", 0, 1, 0, 0, 1, 1},
    };
    for (const auto& contrast : contrasts) {
      const auto ta = success_times(condition_records(grid, cells, contrast.technique_a,
                                                      contrast.menu_a, contrast.glove_a));
      const auto tb = success_times(condition_records(grid, cells, contrast.technique_b,
                                                      contrast.menu_b, contrast.glove_b));
      const double t = std::abs(util::welch_t(ta, tb));
      char means[48];
      std::snprintf(means, sizeof(means), "%.2f vs %.2f",
                    util::summarize(ta).mean, util::summarize(tb).mean);
      tstats.add_row({contrast.name, means, study::fmt(t, 1), t > 2.0 ? "yes" : "no"});
    }
    std::printf("%s\n", tstats.render().c_str());
  }

  std::printf("expected shapes: ButtonScroll fastest on 5-entry menus; DistScroll\n"
              "competitive at 5-20 and degrading at 40 (islands shrink); with thick\n"
              "gloves ButtonScroll/RadialScroll degrade hard while DistScroll and\n"
              "the YoYo wheel barely change — the paper's motivating claim.\n");
  std::printf("wrote exp_scroll_comparison.csv\n");
  return 0;
}
