// Section 7, Q1: "Is distance-based scrolling faster, equal or slower
// than other scrolling techniques?" — the comparison the paper leaves
// as future work, run over our simulated participants.
//
// Conditions: 5 techniques x menu sizes {5,10,20,40} x gloves
// {none, thick}. Metrics: mean selection time, error rate, Fitts
// throughput. Also prints the smoothing ablation for DistScroll.
//
// Expected shapes (see DESIGN.md): buttons win very short menus;
// DistScroll is competitive at small/medium sizes and degrades on large
// menus (islands shrink below motor precision); with thick gloves the
// button/touch baselines collapse while DistScroll barely moves — the
// paper's central motivation.
#include <cmath>
#include <cstdio>
#include <memory>

#include "baselines/button_scroll.h"
#include "baselines/distance_scroll.h"
#include "baselines/radial_scroll.h"
#include "baselines/tilt_scroll.h"
#include "baselines/wheel_scroll.h"
#include "study/report.h"
#include "study/task.h"
#include "study/trial.h"
#include "util/csv.h"
#include "util/stats.h"

using namespace distscroll;

namespace {

std::unique_ptr<baselines::ScrollTechnique> make_technique(const std::string& name,
                                                           sim::Rng rng,
                                                           core::Smoothing smoothing) {
  if (name == "DistScroll") {
    baselines::DistanceScroll::Config config;
    config.scroll.smoothing = smoothing;
    return std::make_unique<baselines::DistanceScroll>(config, rng);
  }
  if (name == "TiltScroll") return std::make_unique<baselines::TiltScroll>(baselines::TiltScroll::Config{}, rng);
  if (name == "YoYoWheel") return std::make_unique<baselines::WheelScroll>(baselines::WheelScroll::Config{}, rng);
  if (name == "ButtonScroll") return std::make_unique<baselines::ButtonScroll>();
  return std::make_unique<baselines::RadialScroll>();
}

struct Condition {
  std::string technique;
  std::size_t menu_size;
  human::Glove glove;
};

std::vector<study::TrialRecord> run_condition_records(const Condition& condition,
                                                      core::Smoothing smoothing,
                                                      std::size_t trials, std::uint64_t seed) {
  sim::Rng rng(seed);
  auto technique = make_technique(condition.technique, rng.fork(1), smoothing);
  const auto profile = human::UserProfile::average().with_glove(condition.glove);
  sim::Rng task_rng = rng.fork(2);
  const auto tasks = study::random_tasks(task_rng, condition.menu_size, trials);
  return study::run_trials(*technique, tasks, profile, rng.fork(3));
}

study::Aggregate run_condition(const Condition& condition, core::Smoothing smoothing,
                               std::size_t trials, std::uint64_t seed) {
  return study::aggregate(run_condition_records(condition, smoothing, trials, seed));
}

std::vector<double> success_times(const std::vector<study::TrialRecord>& records) {
  std::vector<double> times;
  for (const auto& r : records) {
    if (r.outcome.success) times.push_back(r.outcome.time_s);
  }
  return times;
}

}  // namespace

int main() {
  const char* techniques[] = {"DistScroll", "TiltScroll", "YoYoWheel", "ButtonScroll",
                              "RadialScroll"};
  const std::size_t menu_sizes[] = {5, 10, 20, 40};
  constexpr std::size_t kTrials = 30;

  util::CsvWriter csv("exp_scroll_comparison.csv",
                      {"technique", "menu_size", "glove", "mean_time_s", "p95_time_s",
                       "success_rate", "errors_per_trial", "throughput_bits_s"});

  for (const auto glove : {human::Glove::None, human::Glove::Thick}) {
    const char* glove_name = glove == human::Glove::None ? "bare hands" : "THICK GLOVES";
    std::printf("=== Q1 technique comparison — %s ===\n\n", glove_name);
    study::Table table({"technique", "menu", "time[s]", "p95[s]", "success", "err/trial",
                        "TP[bit/s]"});
    for (const char* technique : techniques) {
      for (const std::size_t menu : menu_sizes) {
        const Condition condition{technique, menu, glove};
        const auto agg = run_condition(condition, core::Smoothing::Raw, kTrials,
                                       0xC0FFEE ^ menu ^ (glove == human::Glove::None ? 0 : 77) ^
                                           std::hash<std::string>{}(technique));
        table.add_row({technique, std::to_string(menu), study::fmt(agg.mean_time_s, 2),
                       study::fmt(agg.p95_time_s, 2), study::fmt(agg.success_rate, 2),
                       study::fmt(agg.error_rate, 2), study::fmt(agg.throughput_bits_s, 2)});
        csv.row({std::vector<std::string>{
            technique, std::to_string(menu), glove == human::Glove::None ? "none" : "thick",
            study::fmt(agg.mean_time_s, 3), study::fmt(agg.p95_time_s, 3),
            study::fmt(agg.success_rate, 3), study::fmt(agg.error_rate, 3),
            study::fmt(agg.throughput_bits_s, 3)}});
      }
    }
    std::printf("%s\n", table.render().c_str());
  }

  std::printf("=== Ablation: DistScroll input smoothing (menu=10, bare hands) ===\n\n");
  study::Table ablation({"smoothing", "time[s]", "success", "err/trial"});
  for (const auto smoothing :
       {core::Smoothing::Raw, core::Smoothing::Median3, core::Smoothing::Ema}) {
    const char* name = smoothing == core::Smoothing::Raw
                           ? "raw (paper)"
                           : (smoothing == core::Smoothing::Median3 ? "median-3" : "EMA 1/4");
    const auto agg = run_condition({"DistScroll", 10, human::Glove::None}, smoothing, kTrials,
                                   0xABCD);
    ablation.add_row({name, study::fmt(agg.mean_time_s, 2), study::fmt(agg.success_rate, 2),
                      study::fmt(agg.error_rate, 2)});
  }
  std::printf("%s\n", ablation.render().c_str());

  std::printf("=== Credibility of the headline contrasts (Welch t on times) ===\n\n");
  {
    study::Table tstats({"contrast", "means [s]", "|t|", "credible (|t|>2)"});
    struct Contrast {
      const char* name;
      Condition a, b;
    };
    const Contrast contrasts[] = {
        {"gloved: DistScroll vs ButtonScroll (menu 10)",
         {"DistScroll", 10, human::Glove::Thick},
         {"ButtonScroll", 10, human::Glove::Thick}},
        {"bare: ButtonScroll vs DistScroll (menu 5)",
         {"ButtonScroll", 5, human::Glove::None},
         {"DistScroll", 5, human::Glove::None}},
        {"DistScroll: bare vs gloved (menu 10)",
         {"DistScroll", 10, human::Glove::None},
         {"DistScroll", 10, human::Glove::Thick}},
    };
    for (const auto& contrast : contrasts) {
      const auto ta = success_times(run_condition_records(contrast.a, core::Smoothing::Raw,
                                                          kTrials, 0x5151));
      const auto tb = success_times(run_condition_records(contrast.b, core::Smoothing::Raw,
                                                          kTrials, 0x5252));
      const double t = std::abs(util::welch_t(ta, tb));
      char means[48];
      std::snprintf(means, sizeof(means), "%.2f vs %.2f",
                    util::summarize(ta).mean, util::summarize(tb).mean);
      tstats.add_row({contrast.name, means, study::fmt(t, 1), t > 2.0 ? "yes" : "no"});
    }
    std::printf("%s\n", tstats.render().c_str());
  }

  std::printf("expected shapes: ButtonScroll fastest on 5-entry menus; DistScroll\n"
              "competitive at 5-20 and degrading at 40 (islands shrink); with thick\n"
              "gloves ButtonScroll/RadialScroll degrade hard while DistScroll and\n"
              "the YoYo wheel barely change — the paper's motivating claim.\n");
  std::printf("wrote exp_scroll_comparison.csv\n");
  return 0;
}
