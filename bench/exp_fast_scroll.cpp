// Section 4.2's last observation: "this sensor characteristic is
// exploited by advanced users for faster scrolling or browsing" — the
// steep < 4 cm branch as a turbo zone.
//
// Run on the REAL device (firmware + event queue): a 100-entry menu in
// chunked mode; compare paging to chunk k by (a) pressing the aux
// button k times vs (b) hovering in the turbo zone until chunk k shows.
#include <cstdio>

#include "core/distscroll_device.h"
#include "menu/menu_builder.h"
#include "study/report.h"
#include "util/csv.h"

using namespace distscroll;

namespace {

struct Rig {
  std::unique_ptr<menu::MenuNode> menu_root;
  sim::EventQueue queue;
  std::unique_ptr<core::DistScrollDevice> device;
  double distance_cm = 17.0;

  explicit Rig(bool fast_scroll) {
    menu_root = menu::make_flat_menu(100);
    core::DistScrollDevice::Config config;
    config.long_menu = core::LongMenuStrategy::Chunked;
    config.chunk_size = 10;
    config.enable_fast_scroll = fast_scroll;
    device = std::make_unique<core::DistScrollDevice>(config, *menu_root, queue, sim::Rng(5));
    device->set_distance_provider(
        [this](util::Seconds) { return util::Centimeters{distance_cm}; });
    device->power_on();
    run(0.5);
  }

  void run(double seconds) { queue.run_until(util::Seconds{queue.now().value + seconds}); }
};

/// Button path: k deliberate aux presses (0.22 s press + 0.06 s gap each).
double time_buttons(std::size_t pages) {
  Rig rig(/*fast_scroll=*/false);
  const double t0 = rig.queue.now().value;
  for (std::size_t i = 0; i < pages; ++i) {
    rig.device->aux_button().press();
    rig.run(0.22);
    rig.device->aux_button().release();
    rig.run(0.06);
  }
  return rig.queue.now().value - t0;
}

/// Turbo path: reach into the <4 cm zone (~0.35 s arm movement), hover
/// until the target chunk appears, reach back out.
double time_turbo(std::size_t pages) {
  Rig rig(/*fast_scroll=*/true);
  const double t0 = rig.queue.now().value;
  rig.distance_cm = 3.4;  // enter the zone (modelled as a quick reach)
  rig.run(0.35);
  const double deadline = rig.queue.now().value + 30.0;
  while (rig.device->current_chunk().value_or(0) != pages &&
         rig.queue.now().value < deadline) {
    rig.run(0.02);
  }
  rig.distance_cm = 17.0;  // leave the zone
  rig.run(0.35);
  return rig.queue.now().value - t0;
}

}  // namespace

int main() {
  std::printf("=== Expert fast scroll: aux-button paging vs <4 cm turbo zone ===\n");
  std::printf("(100-entry menu, chunks of 10, real firmware on the event queue)\n\n");
  study::Table table({"target chunk", "buttons[s]", "turbo[s]", "speedup"});
  util::CsvWriter csv("exp_fast_scroll.csv", {"pages", "buttons_s", "turbo_s"});
  for (const std::size_t pages : {1u, 2u, 3u, 5u, 7u, 9u}) {
    const double buttons = time_buttons(pages);
    const double turbo = time_turbo(pages);
    table.add_row({std::to_string(pages), study::fmt(buttons, 2), study::fmt(turbo, 2),
                   study::fmt(buttons / turbo, 2)});
    csv.row({static_cast<double>(pages), buttons, turbo});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("expected shape: turbo pays a fixed entry/exit cost (~0.7 s of arm\n"
              "movement) then pages every 120 ms, overtaking deliberate button\n"
              "presses (~0.28 s each) from a few pages on — the \"advanced users\n"
              "scroll faster\" claim.\n");
  std::printf("wrote exp_fast_scroll.csv\n");
  return 0;
}
