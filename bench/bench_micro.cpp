// Microbenchmarks (google-benchmark): the hot paths of the simulator
// plus the paper's "no heavy input processing" claim quantified in PIC
// instruction cycles.
//
// "In our approach, the input parameter can be directly derived from the
//  sensor without the need of heavy input processing." (Section 2)
//
// We compare the DistScroll per-sample firmware cost (ADC + island
// lookup) against what a gesture-recognition baseline would burn on the
// same MCU (windowed feature extraction over accelerometer data, as
// GestureWrist/FreeDigiter-class recognisers need).
#include <benchmark/benchmark.h>

#include <filesystem>

#include <cmath>

#include "core/distscroll_device.h"
#include "core/island_mapper.h"
#include "core/scroll_controller.h"
#include "display/bt96040.h"
#include "display/display_driver.h"
#include "hw/adc.h"
#include "lint/index.h"
#include "lint/rules.h"
#include "menu/menu_builder.h"
#include "menu/phone_menu.h"
#include "obs/metrics.h"
#include "obs/tracer.h"
#include "sensors/gp2d120.h"
#include "hw/scheduler.h"
#include "sim/event_queue.h"
#include "study/device_pool.h"
#include "study/sweep_runner.h"
#include "util/alloc_guard.h"
#include "util/crc.h"
#include "wireless/packet.h"

using namespace distscroll;

namespace {

/// The binary-search reference lookup (the pre-LUT hot path, kept as
/// the oracle). Compare against BM_IslandLookupLut below.
void BM_IslandLookupSearch(benchmark::State& state) {
  core::SensorCurve curve;
  core::IslandMapper mapper(curve, static_cast<std::size_t>(state.range(0)), {});
  std::uint16_t counts = 100;
  for (auto _ : state) {
    counts = static_cast<std::uint16_t>((counts * 37 + 11) % 1024);
    benchmark::DoNotOptimize(mapper.lookup(util::AdcCounts{counts}));
  }
  state.counters["pic_cycles_per_lookup"] =
      static_cast<double>(mapper.search_cost_cycles());
}
BENCHMARK(BM_IslandLookupSearch)->Arg(5)->Arg(10)->Arg(26)->Arg(64);

/// The O(1) counts->island LUT the firmware hot path now probes. Same
/// count stream as the search variant; the time per lookup should be
/// flat in the entry count, and the PIC cycle counter drops from
/// ~9+7*log2(N) to a constant table fetch.
void BM_IslandLookupLut(benchmark::State& state) {
  core::SensorCurve curve;
  core::IslandMapper mapper(curve, static_cast<std::size_t>(state.range(0)), {});
  std::uint16_t counts = 100;
  for (auto _ : state) {
    counts = static_cast<std::uint16_t>((counts * 37 + 11) % 1024);
    benchmark::DoNotOptimize(mapper.lookup_lut(util::AdcCounts{counts}));
  }
  state.counters["pic_cycles_per_lookup"] =
      static_cast<double>(mapper.lookup_cost_cycles());
}
BENCHMARK(BM_IslandLookupLut)->Arg(5)->Arg(10)->Arg(26)->Arg(64);

/// Session kernel: constructing a full device per sweep cell (Arg 0)
/// versus recycling one DeviceSession in place (Arg 1) — the pooling
/// win BENCH jsons track as stage_trial_setup.
void BM_DeviceConstructVsReset(benchmark::State& state) {
  const bool pooled = state.range(0) != 0;
  const auto menu_root = menu::make_phone_menu();
  core::DistScrollDevice::Config config;
  std::uint64_t seed = 0;
  if (pooled) {
    study::DeviceSession session;
    for (auto _ : state) {
      auto& device = session.acquire(config, *menu_root, sim::Rng(++seed));
      benchmark::DoNotOptimize(device.cursor().index());
    }
  } else {
    for (auto _ : state) {
      sim::EventQueue queue;
      core::DistScrollDevice device(config, *menu_root, queue, sim::Rng(++seed));
      benchmark::DoNotOptimize(device.cursor().index());
    }
  }
}
BENCHMARK(BM_DeviceConstructVsReset)->Arg(0)->Arg(1);

/// The delegate-based sampling chain: ADC conversion through a
/// FunctionRef analog source into the GP2D120 model — the per-tick cost
/// the firmware pays, with no std::function indirection left in it.
void BM_AdcSampleChain(benchmark::State& state) {
  hw::Adc10 adc({}, sim::Rng(7));
  sensors::Gp2d120Model sensor({}, sim::Rng(8));
  auto source = [&](util::Seconds now) {
    return sensor.output(util::Centimeters{15.0 + 5.0 * std::sin(now.value)}, now);
  };
  const auto channel = adc.attach(source);
  double t = 0.0;
  for (auto _ : state) {
    t += 0.001;
    benchmark::DoNotOptimize(adc.sample(channel, util::Seconds{t}));
  }
}
BENCHMARK(BM_AdcSampleChain);

void BM_ScrollControllerSample(benchmark::State& state) {
  core::SensorCurve curve;
  core::IslandMapper mapper(curve, 10, {});
  core::ScrollController::Config config;
  config.smoothing = static_cast<core::Smoothing>(state.range(0));
  core::ScrollController controller(mapper, config);
  std::uint16_t counts = 100;
  std::uint64_t pic_cycles = 0;
  for (auto _ : state) {
    counts = static_cast<std::uint16_t>((counts * 37 + 11) % 1024);
    const auto update = controller.on_sample(util::AdcCounts{counts});
    pic_cycles = update.cycles;
    benchmark::DoNotOptimize(update);
  }
  state.counters["pic_cycles_per_sample"] = static_cast<double>(pic_cycles);
}
BENCHMARK(BM_ScrollControllerSample)->Arg(0)->Arg(1)->Arg(2);  // raw/median/ema

/// The gesture-recognition strawman: a 32-sample window of 2-axis
/// accelerometer data, mean/energy/zero-crossing features plus an
/// 8-template nearest-neighbour match — the cheap end of what the
/// cited gesture interfaces do, counted in emulated PIC cycles.
void BM_GestureRecognitionBaseline(benchmark::State& state) {
  std::array<std::int16_t, 64> window{};
  std::uint16_t x = 7;
  std::uint64_t pic_cycles = 0;
  for (auto _ : state) {
    for (auto& s : window) {
      x = static_cast<std::uint16_t>(x * 31 + 7);
      s = static_cast<std::int16_t>(x & 0x3FF);
    }
    std::int32_t mean = 0, energy = 0;
    int crossings = 0;
    for (std::size_t i = 0; i < window.size(); ++i) {
      mean += window[i];
      energy += window[i] * window[i] >> 8;
      if (i > 0 && ((window[i] > 512) != (window[i - 1] > 512))) ++crossings;
    }
    std::int32_t best = INT32_MAX;
    for (int t = 0; t < 8; ++t) {
      const std::int32_t d = std::abs(mean / 64 - t * 128) + std::abs(energy / 64 - t * 90) +
                             std::abs(crossings - t * 3);
      best = std::min(best, d);
    }
    benchmark::DoNotOptimize(best);
    // PIC cost model: per window sample ~12 cycles of feature math
    // (8-bit core, 16-bit data), plus 8 template comparisons ~40 cycles.
    pic_cycles = window.size() * 12 + 8 * 40;
  }
  state.counters["pic_cycles_per_sample"] = static_cast<double>(pic_cycles);
}
BENCHMARK(BM_GestureRecognitionBaseline);

void BM_Gp2d120Sample(benchmark::State& state) {
  sensors::Gp2d120Model sensor({}, sim::Rng(1));
  double t = 0.0;
  for (auto _ : state) {
    t += 0.01;
    benchmark::DoNotOptimize(sensor.output(util::Centimeters{15.0}, util::Seconds{t}));
  }
}
BENCHMARK(BM_Gp2d120Sample);

void BM_EventQueueSchedule(benchmark::State& state) {
  sim::EventQueue queue;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      queue.schedule_after(util::Seconds{static_cast<double>(i % 7) * 1e-3}, [] {});
    }
    while (queue.step()) {
    }
  }
}
BENCHMARK(BM_EventQueueSchedule);

/// Heap-calendar hot paths in isolation: push N events (pre-warmed slot
/// table, no allocation in steady state), then drain them.
void BM_EventQueue_Schedule(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  sim::EventQueue queue;
  for (auto _ : state) {
    for (int i = 0; i < n; ++i) {
      queue.schedule_after(util::Seconds{static_cast<double>((i * 37) % 101) * 1e-4}, [] {});
    }
    state.PauseTiming();
    queue.run_all();
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueue_Schedule)->Arg(64)->Arg(1024)->Arg(16384);

void BM_EventQueue_Dispatch(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  sim::EventQueue queue;
  for (auto _ : state) {
    state.PauseTiming();
    for (int i = 0; i < n; ++i) {
      queue.schedule_after(util::Seconds{static_cast<double>((i * 37) % 101) * 1e-4}, [] {});
    }
    state.ResumeTiming();
    queue.run_all();
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueue_Dispatch)->Arg(64)->Arg(1024)->Arg(16384);

/// The O(1) lazy cancel (was an O(n) std::map walk per cancel): cancel
/// half the calendar, handle-by-handle, then drain the survivors.
void BM_EventQueue_Cancel(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  sim::EventQueue queue;
  std::vector<sim::EventQueue::Handle> handles(static_cast<std::size_t>(n));
  for (auto _ : state) {
    state.PauseTiming();
    for (int i = 0; i < n; ++i) {
      handles[static_cast<std::size_t>(i)] = queue.schedule_after(
          util::Seconds{static_cast<double>((i * 37) % 101) * 1e-4}, [] {});
    }
    state.ResumeTiming();
    for (int i = 0; i < n; i += 2) queue.cancel(handles[static_cast<std::size_t>(i)]);
    state.PauseTiming();
    queue.run_all();
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * (n / 2));
}
BENCHMARK(BM_EventQueue_Cancel)->Arg(64)->Arg(1024)->Arg(16384);

/// The parallel sweep engine end to end: index-keyed RNG forking, slot
/// writeback, one simulated-work cell body. Arg = thread count (on a
/// single-core host every count measures mostly the pool's overhead).
void BM_SweepRunner(benchmark::State& state) {
  study::SweepConfig config;
  config.threads = static_cast<std::size_t>(state.range(0));
  config.base_seed = 0xBE9C;
  study::SweepRunner runner(config);
  constexpr std::size_t kCells = 256;
  for (auto _ : state) {
    const auto cells = runner.run<double>(kCells, [](std::size_t, sim::Rng rng) {
      double acc = 0.0;
      for (int i = 0; i < 200; ++i) acc += rng.gaussian(0.0, 1.0);
      return acc;
    });
    benchmark::DoNotOptimize(cells.data());
  }
  state.SetItemsProcessed(state.iterations() * kCells);
}
BENCHMARK(BM_SweepRunner)->Arg(1)->Arg(2)->Arg(8);

/// The tracer hot path: one record into the pre-allocated ring — what
/// every instrumented firmware tick pays per event. Arg 1 = category
/// mask hit (event retained), Arg 0 = mask miss (stream filtered off,
/// the cost of a runtime-disabled category).
void BM_TracerRecord(benchmark::State& state) {
  obs::Tracer tracer(1 << 14, state.range(0) ? obs::kCatAll : obs::kCatSensor);
  std::uint32_t i = 0;
  for (auto _ : state) {
    tracer.record_at(static_cast<double>(i), obs::EventKind::AdcRead, 2, i);
    ++i;
  }
  benchmark::DoNotOptimize(tracer.size());
  state.counters["ring_dropped"] = static_cast<double>(tracer.dropped());
}
BENCHMARK(BM_TracerRecord)->Arg(1)->Arg(0);

/// MetricsRegistry hot path: recording through a cached instrument
/// reference (the usage contract — no name lookup per sample).
void BM_HistogramRecord(benchmark::State& state) {
  obs::MetricsRegistry registry;
  obs::Histogram& hist = registry.histogram("lat");
  double v = 0.25e-3;
  for (auto _ : state) {
    v = v * 1.7 + 1e-5;
    if (v > 20.0) v = 0.25e-3;
    hist.record(v);
  }
  benchmark::DoNotOptimize(hist.count());
}
BENCHMARK(BM_HistogramRecord);

void BM_DisplayFullRedraw(benchmark::State& state) {
  hw::I2cBus bus;
  display::Bt96040 panel;
  bus.attach(0x3C, &panel);
  display::DisplayDriver driver(bus, 0x3C);
  int flip = 0;
  for (auto _ : state) {
    ++flip;
    driver.show({flip % 2 ? "AAAAAAAA" : "BBBBBBBB", "line2", "line3", "line4", "line5"},
                flip % 5);
  }
}
BENCHMARK(BM_DisplayFullRedraw);

void BM_FrameEncodeDecode(benchmark::State& state) {
  wireless::Frame frame;
  frame.type = wireless::FrameType::State;
  frame.payload = wireless::StateReport{512, 1, 3, 9, 0}.pack();
  wireless::FrameDecoder decoder;
  for (auto _ : state) {
    const auto wire = wireless::encode(frame);
    std::optional<wireless::Frame> decoded;
    for (std::uint8_t byte : wire) decoded = decoder.feed(byte);
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_FrameEncodeDecode);

void BM_Crc8(benchmark::State& state) {
  std::vector<std::uint8_t> data(static_cast<std::size_t>(state.range(0)), 0xA5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(util::crc8(data));
  }
}
BENCHMARK(BM_Crc8)->Arg(11)->Arg(64);

/// Cost of the AllocGuard interposer on the allocator itself: a
/// new/delete pair with the counting operator new linked in (linking
/// bench against ds_util pulls the interposer object in). No guard
/// scope is active — this is the tax every allocation in a
/// guard-linked binary pays, scope or not: two thread_local counter
/// bumps. Arg 0 = 16 B (SBO-ish), Arg 1 = 4 KiB (page-ish).
void BM_AllocGuardOverhead(benchmark::State& state) {
  const std::size_t size = state.range(0) ? 4096 : 16;
  for (auto _ : state) {
    auto* p = new char[size];
    benchmark::DoNotOptimize(p);
    delete[] p;
  }
  state.counters["interposer_linked"] = util::alloc_interposer_linked() ? 1.0 : 0.0;
}
BENCHMARK(BM_AllocGuardOverhead)->Arg(0)->Arg(1);

/// The full ds_lint run over the real repo tree, in-process: index
/// (walk + strip + lex + include closure + function defs), the seven
/// file-local rules, and the three whole-program passes. This is the
/// number the lint_tree build gate pays on every build — the budget is
/// "fast enough to never think about" (tens of ms), and this bench is
/// the regression tripwire for it.
void BM_DsLintFullTree(benchmark::State& state) {
  const std::filesystem::path root = DS_REPO_ROOT;
  std::size_t files = 0;
  std::size_t raw_findings = 0;
  for (auto _ : state) {
    std::string error;
    const lint::FileIndex index = lint::build_index(root, {}, &error);
    if (!error.empty()) state.SkipWithError(error.c_str());
    lint::Emit raw;
    for (const lint::Rule& rule : lint::registry()) {
      if (rule.scan_file != nullptr) {
        for (const lint::SourceFile& src : index.files) {
          if (rule.applies(src.path)) rule.scan_file(src, raw);
        }
      }
      if (rule.scan_tree != nullptr) rule.scan_tree(index, raw);
    }
    files = index.files.size();
    raw_findings = raw.size();
    benchmark::DoNotOptimize(raw);
  }
  state.counters["files"] = static_cast<double>(files);
  state.counters["raw_findings"] = static_cast<double>(raw_findings);
}
BENCHMARK(BM_DsLintFullTree)->Unit(benchmark::kMillisecond);

/// The whole DistScroll firmware task set on the cooperative scheduler:
/// how much of the PIC's 1 ms tick budget does the prototype use?
void BM_FirmwareTaskSetUtilization(benchmark::State& state) {
  double utilization = 0.0;
  for (auto _ : state) {
    sim::EventQueue queue;
    hw::Mcu mcu({}, queue);
    hw::Scheduler scheduler({}, mcu);
    scheduler.add_task("buttons", 1, 12, [] {});           // 1 kHz scan
    scheduler.add_task("ranger+map", 20, 440 + 82, [] {}); // 50 Hz sense+lookup
    scheduler.add_task("display", 20, 900, [] {});         // redraw path
    scheduler.add_task("telemetry", 40, 120 + 990, [] {}); // frame + uart pump
    scheduler.start();
    queue.run_until(util::Seconds{1.0});
    utilization = scheduler.utilization();
    benchmark::DoNotOptimize(scheduler.overruns());
  }
  state.counters["tick_budget_used"] = utilization;
}
BENCHMARK(BM_FirmwareTaskSetUtilization);

}  // namespace

BENCHMARK_MAIN();
