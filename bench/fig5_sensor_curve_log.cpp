// Figure 5 reproduction: "Visualization of the sensor values using
// logarithmic axis. The measured values (asterisks) nearly perfectly fit
// the curve."
//
// Same sweep as Fig. 4, drawn on log-log axes where the hyperbolic
// response is near-linear; we report the power-law fit and its R² on
// the log-log residuals as the quantitative version of "nearly
// perfectly fit".
#include <cstdio>

#include "core/calibration.h"
#include "sensors/gp2d120.h"
#include "util/ascii_plot.h"
#include "util/csv.h"
#include "util/stats.h"

using namespace distscroll;

int main() {
  sim::Rng rng(20050415);
  sensors::Gp2d120Model ranger({}, rng.fork(1), sensors::SurfaceProfile::gray_jacket());

  double fake_time = 0.0;
  auto read_counts = [&](util::Centimeters d) {
    fake_time += 0.1;
    const util::Volts v = ranger.output(d, util::Seconds{fake_time});
    return util::AdcCounts{static_cast<std::uint16_t>(v.value / 5.0 * 1023.0 + 0.5)};
  };

  const auto samples = core::sweep(util::Centimeters{4.0}, util::Centimeters{32.0}, 1.0,
                                   read_counts, /*repeats=*/4);

  std::vector<double> xs, ys;
  for (const auto& s : samples) {
    xs.push_back(s.distance.value);
    ys.push_back(s.counts.value * 5.0 / 1023.0);
  }
  const util::PowerFit fit = util::fit_power(xs, ys);

  std::vector<double> fit_xs, fit_ys;
  for (double d = 4.0; d <= 32.0; d += 0.25) {
    fit_xs.push_back(d);
    fit_ys.push_back(fit.A * std::pow(d, fit.b));
  }

  util::PlotOptions options;
  options.log_x = true;
  options.log_y = true;
  options.title = "Fig. 5 — GP2D120 output vs distance, log-log (measured * / fitted -)";
  options.x_label = "distance [cm] (log)";
  options.y_label = "voltage [V] (log)";
  std::printf("%s\n", util::ascii_plot(xs, ys, fit_xs, fit_ys, options).c_str());

  std::printf("power-law fit: V(d) = %.3f * d^%.3f\n", fit.A, fit.b);
  std::printf("log-log R^2 = %.5f  (paper: \"nearly perfectly fit\")\n", fit.r_squared);

  util::CsvWriter csv("fig5_sensor_curve_log.csv",
                      {"distance_cm", "measured_volts", "powerlaw_volts"});
  for (std::size_t i = 0; i < xs.size(); ++i) {
    csv.row({xs[i], ys[i], fit.A * std::pow(xs[i], fit.b)});
  }
  std::printf("wrote fig5_sensor_curve_log.csv\n");
  return 0;
}
