// Section 6 reproduction: the initial user study, on the REAL simulated
// device (firmware, displays, buttons, sensor — everything).
//
// Protocol, as in the paper: hand the DistScroll to participants of
// mixed background ("students, colleagues and people without direct
// technical background"), let them discover the operation unaided, then
// run blocks of menu-selection trials on the fictive phone menu.
//
// Claims to reproduce:
//  * "the manner of operation was promptly discovered" — discovery in
//    seconds, not minutes;
//  * "Shortly after knowing the relation between menu entry selection
//    and distance, all users were able to nearly errorless use the
//    device" — error rate near zero after the first block(s).
#include <cstdio>

#include "menu/phone_menu.h"
#include "study/device_study.h"
#include "study/report.h"
#include "util/csv.h"

using namespace distscroll;

int main() {
  auto menu_root = menu::make_phone_menu();

  study::DeviceStudyConfig config;
  config.blocks = 4;
  config.trials_per_block = 10;

  struct Participant {
    const char* name;
    double expertise;
    human::Glove glove;
  };
  // Mixed pool: technical colleagues, students, non-technical users;
  // two of them gloved (the motivating scenario).
  const Participant pool[] = {
      {"colleague-1", 0.55, human::Glove::None}, {"colleague-2", 0.50, human::Glove::None},
      {"student-1", 0.35, human::Glove::None},   {"student-2", 0.30, human::Glove::None},
      {"student-3", 0.40, human::Glove::None},   {"nontech-1", 0.15, human::Glove::None},
      {"nontech-2", 0.10, human::Glove::None},   {"gloved-1", 0.30, human::Glove::Thick},
      {"gloved-2", 0.20, human::Glove::Thick},
  };

  std::printf("=== Initial user study on the full simulated device (Section 6) ===\n\n");
  study::Table per_user({"participant", "discovery[s]", "blk0 err/trial", "blk3 err/trial",
                         "blk0 success", "blk3 success", "blk3 time[s]"});
  util::CsvWriter csv("exp_user_study.csv",
                      {"participant", "block", "expertise", "success_rate", "errors_per_trial",
                       "mean_time_s", "discovery_s"});

  std::vector<double> block_err[4], block_succ[4];
  std::size_t id = 0;
  for (const auto& p : pool) {
    human::UserProfile profile =
        human::UserProfile{}.with_expertise(p.expertise).with_glove(p.glove);
    profile.name = p.name;
    const auto result =
        study::run_device_participant(*menu_root, profile, config, sim::Rng(1000 + id));
    ++id;
    for (const auto& block : result.blocks) {
      csv.row({std::vector<std::string>{
          p.name, std::to_string(block.block), study::fmt(block.expertise, 2),
          study::fmt(block.success_rate, 3), study::fmt(block.errors_per_trial, 3),
          study::fmt(block.mean_time_s, 2), study::fmt(result.discovery_time_s, 1)}});
      block_err[block.block].push_back(block.errors_per_trial);
      block_succ[block.block].push_back(block.success_rate);
    }
    per_user.add_row(
        {p.name, study::fmt(result.discovery_time_s, 1),
         study::fmt(result.blocks.front().errors_per_trial, 2),
         study::fmt(result.blocks.back().errors_per_trial, 2),
         study::fmt(result.blocks.front().success_rate, 2),
         study::fmt(result.blocks.back().success_rate, 2),
         study::fmt(result.blocks.back().mean_time_s, 1)});
  }
  std::printf("%s\n", per_user.render().c_str());

  std::printf("Learning curve across the pool (mean over participants):\n");
  study::Table curve({"block", "errors/trial", "success rate"});
  for (int b = 0; b < 4; ++b) {
    double err = 0, succ = 0;
    for (double e : block_err[b]) err += e;
    for (double s : block_succ[b]) succ += s;
    curve.add_row({std::to_string(b), study::fmt(err / block_err[b].size(), 3),
                   study::fmt(succ / block_succ[b].size(), 3)});
  }
  std::printf("%s\n", curve.render().c_str());
  std::printf("paper claims: prompt discovery; nearly errorless use after\n"
              "learning the distance->selection relation. Expected shape:\n"
              "discovery tens of seconds at most; errors/trial fall to ~0 and\n"
              "success rate -> 1 by the final block.\n");
  std::printf("wrote exp_user_study.csv\n");
  return 0;
}
