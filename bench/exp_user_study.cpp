// Section 6 reproduction: the initial user study, on the REAL simulated
// device (firmware, displays, buttons, sensor — everything).
//
// Protocol, as in the paper: hand the DistScroll to participants of
// mixed background ("students, colleagues and people without direct
// technical background"), let them discover the operation unaided, then
// run blocks of menu-selection trials on the fictive phone menu.
//
// Each participant is one SweepRunner cell (RNG forked off the cell
// index), so the pool runs in parallel with bit-identical results to
// the sequential pass; the harness records BENCH_exp_user_study.json.
//
// Claims to reproduce:
//  * "the manner of operation was promptly discovered" — discovery in
//    seconds, not minutes;
//  * "Shortly after knowing the relation between menu entry selection
//    and distance, all users were able to nearly errorless use the
//    device" — error rate near zero after the first block(s).
#include <algorithm>
#include <array>
#include <cstdio>

#include "menu/phone_menu.h"
#include "study/device_study.h"
#include "study/report.h"
#include "study/sweep_runner.h"
#include "util/csv.h"

using namespace distscroll;

namespace {

constexpr std::size_t kBlocks = 4;

struct Participant {
  const char* name;
  double expertise;
  human::Glove glove;
};

// Mixed pool: technical colleagues, students, non-technical users;
// two of them gloved (the motivating scenario).
const Participant kPool[] = {
    {"colleague-1", 0.55, human::Glove::None}, {"colleague-2", 0.50, human::Glove::None},
    {"student-1", 0.35, human::Glove::None},   {"student-2", 0.30, human::Glove::None},
    {"student-3", 0.40, human::Glove::None},   {"nontech-1", 0.15, human::Glove::None},
    {"nontech-2", 0.10, human::Glove::None},   {"gloved-1", 0.30, human::Glove::Thick},
    {"gloved-2", 0.20, human::Glove::Thick},
};

/// One participant's full session, sized for byte-exact comparison.
struct CellResult {
  double discovery_s = 0.0;
  std::array<study::DeviceBlockResult, kBlocks> blocks{};

  friend bool operator==(const CellResult&, const CellResult&) = default;
};

}  // namespace

int main() {
  study::DeviceStudyConfig config;
  config.blocks = kBlocks;
  config.trials_per_block = 10;

  std::printf("=== Initial user study on the full simulated device (Section 6) ===\n\n");
  const auto cells = study::timed_sweep<CellResult>(
      "exp_user_study", std::size(kPool), 1000, [&](std::size_t index, sim::Rng rng) {
        // Each cell builds its own menu tree: nothing is shared between
        // concurrently simulated participants.
        const auto menu_root = menu::make_phone_menu();
        const auto& p = kPool[index];
        human::UserProfile profile =
            human::UserProfile{}.with_expertise(p.expertise).with_glove(p.glove);
        profile.name = p.name;
        const auto result = study::run_device_participant(*menu_root, profile, config, rng);
        CellResult cell;
        cell.discovery_s = result.discovery_time_s;
        std::copy_n(result.blocks.begin(),
                    std::min(result.blocks.size(), cell.blocks.size()), cell.blocks.begin());
        return cell;
      });
  std::printf("\n");

  study::Table per_user({"participant", "discovery[s]", "blk0 err/trial", "blk3 err/trial",
                         "blk0 success", "blk3 success", "blk3 time[s]"});
  util::CsvWriter csv("exp_user_study.csv",
                      {"participant", "block", "expertise", "success_rate", "errors_per_trial",
                       "mean_time_s", "discovery_s"});

  std::vector<double> block_err[kBlocks], block_succ[kBlocks];
  for (std::size_t id = 0; id < std::size(kPool); ++id) {
    const auto& p = kPool[id];
    const auto& result = cells[id];
    for (const auto& block : result.blocks) {
      csv.row({std::vector<std::string>{
          p.name, std::to_string(block.block), study::fmt(block.expertise, 2),
          study::fmt(block.success_rate, 3), study::fmt(block.errors_per_trial, 3),
          study::fmt(block.mean_time_s, 2), study::fmt(result.discovery_s, 1)}});
      block_err[block.block].push_back(block.errors_per_trial);
      block_succ[block.block].push_back(block.success_rate);
    }
    per_user.add_row(
        {p.name, study::fmt(result.discovery_s, 1),
         study::fmt(result.blocks.front().errors_per_trial, 2),
         study::fmt(result.blocks.back().errors_per_trial, 2),
         study::fmt(result.blocks.front().success_rate, 2),
         study::fmt(result.blocks.back().success_rate, 2),
         study::fmt(result.blocks.back().mean_time_s, 1)});
  }
  std::printf("%s\n", per_user.render().c_str());

  std::printf("Learning curve across the pool (mean over participants):\n");
  study::Table curve({"block", "errors/trial", "success rate"});
  for (std::size_t b = 0; b < kBlocks; ++b) {
    double err = 0, succ = 0;
    for (double e : block_err[b]) err += e;
    for (double s : block_succ[b]) succ += s;
    curve.add_row({std::to_string(b), study::fmt(err / block_err[b].size(), 3),
                   study::fmt(succ / block_succ[b].size(), 3)});
  }
  std::printf("%s\n", curve.render().c_str());
  std::printf("paper claims: prompt discovery; nearly errorless use after\n"
              "learning the distance->selection relation. Expected shape:\n"
              "discovery tens of seconds at most; errors/trial fall to ~0 and\n"
              "success rate -> 1 by the final block.\n");
  std::printf("wrote exp_user_study.csv\n");
  return 0;
}
