// Section 7's epistemic anchor: "So far, we only know that Fitt's Law
// holds for scrolling" (citing Hinckley et al.'s quantitative analysis).
//
// This experiment verifies that the same regularity emerges from OUR
// closed-loop participants: for each technique we sweep scroll distance
// A in {1,2,4,8,16} within a 40-entry list, compute the scrolling index
// of difficulty ID = log2(A+1), and regress movement time on ID. A
// technique "obeys Fitts' law" when the regression is linear with high
// R² — the paper's open question Q1 then reduces to comparing slopes
// (bits per second).
//
// The (technique x distance) grid runs as SweepRunner cells (RNG forked
// off the cell index; bit-identical at any thread count), timed into
// BENCH_exp_fitts_law.json.
#include <cmath>
#include <cstdio>
#include <memory>
#include <span>

#include "baselines/button_scroll.h"
#include "baselines/distance_scroll.h"
#include "baselines/radial_scroll.h"
#include "baselines/tilt_scroll.h"
#include "baselines/wheel_scroll.h"
#include "study/batch_trials.h"
#include "study/report.h"
#include "study/sweep_runner.h"
#include "study/task.h"
#include "study/trial.h"
#include "util/csv.h"
#include "util/stats.h"

using namespace distscroll;

namespace {

constexpr std::size_t kList = 40;
const std::size_t kDistances[] = {1, 2, 4, 8, 16};
constexpr std::size_t kTrials = 25;

std::unique_ptr<baselines::ScrollTechnique> make_technique(std::size_t which, sim::Rng rng) {
  switch (which) {
    case 0: return std::make_unique<baselines::DistanceScroll>(baselines::DistanceScroll::Config{}, rng);
    case 1: return std::make_unique<baselines::TiltScroll>(baselines::TiltScroll::Config{}, rng);
    case 2: return std::make_unique<baselines::WheelScroll>(baselines::WheelScroll::Config{}, rng);
    case 3: return std::make_unique<baselines::ButtonScroll>();
    default: return std::make_unique<baselines::RadialScroll>();
  }
}

struct CellResult {
  double id_bits = 0.0;
  double mean_time_s = 0.0;

  friend bool operator==(const CellResult&, const CellResult&) = default;
};

// Identical TARGET distribution for every distance: targets come
// from the band [16, 23], which admits start = target +- d for
// every swept d. Without this, conditions would differ in how
// often they hit far-end islands (narrow in ADC counts, noisier)
// or edge islands (artificially easy) — confounding the sweep.
// Shared between the scalar cell body and the batched group body so
// both draw the same task stream.
std::vector<study::SelectionTask> banded_tasks(sim::Rng& task_rng, std::size_t distance) {
  std::vector<study::SelectionTask> tasks;
  while (tasks.size() < kTrials) {
    const auto target = static_cast<std::size_t>(task_rng.uniform_int(16, 23));
    const bool down = task_rng.bernoulli(0.5);
    study::SelectionTask task;
    task.level_size = kList;
    task.target_index = target;
    task.start_index = down ? target - distance : target + distance;
    tasks.push_back(task);
  }
  return tasks;
}

CellResult run_cell(std::size_t which, std::size_t distance, sim::Rng rng) {
  auto technique = make_technique(which, rng.fork(1));
  sim::Rng task_rng = rng.fork(2);
  const auto tasks = banded_tasks(task_rng, distance);
  const auto records =
      study::run_trials(*technique, tasks, human::UserProfile::average(), rng.fork(3));
  const auto agg = study::aggregate(records);
  CellResult cell;
  cell.id_bits = std::log2(static_cast<double>(distance) + 1.0);
  cell.mean_time_s = agg.mean_time_s;
  return cell;
}

}  // namespace

int main() {
  std::printf("=== Does Fitts' law hold for each scrolling technique? ===\n");
  std::printf("(40-entry list, |target-start| swept, MT regressed on ID=log2(A+1))\n\n");

  const study::SweepGrid grid({5, std::size(kDistances)});
  const auto scalar_cell = [&](std::size_t index, sim::Rng rng) {
    return run_cell(grid.coord(index, 0), kDistances[grid.coord(index, 1)], rng);
  };
  // Batched group body: DistScroll cells (technique axis 0) become
  // kernel lanes drawing the same task/trial streams; the other
  // techniques run the scalar body.
  const auto batched_group = [&](std::size_t first, std::size_t n,
                                 std::span<CellResult> out, study::SweepRunner& runner) {
    auto& batch = study::BatchTrialRunner::local();
    batch.begin_group(n);
    bool any_lane = false;
    for (std::size_t k = 0; k < n; ++k) {
      const std::size_t index = first + k;
      if (grid.coord(index, 0) != 0) {  // not DistScroll
        out[k] = scalar_cell(index, runner.cell_rng(index));
        continue;
      }
      sim::Rng rng = runner.cell_rng(index);
      sim::Rng task_rng = rng.fork(2);
      const auto tasks = banded_tasks(task_rng, kDistances[grid.coord(index, 1)]);
      batch.init_cell(k, baselines::DistanceScroll::Config{}, rng.fork(1), tasks,
                      human::UserProfile::average(), rng.fork(3));
      any_lane = true;
    }
    if (any_lane) batch.run();
    for (std::size_t k = 0; k < n; ++k) {
      const std::size_t index = first + k;
      if (grid.coord(index, 0) != 0) continue;
      const auto agg = study::aggregate(batch.records(k));
      out[k].id_bits =
          std::log2(static_cast<double>(kDistances[grid.coord(index, 1)]) + 1.0);
      out[k].mean_time_s = agg.mean_time_s;
    }
  };
  const auto cells = study::timed_sweep_batched<CellResult>(
      "exp_fitts_law", grid.cells(), 0xF1775, scalar_cell, batched_group);
  std::printf("\n");

  study::Table table({"technique", "a [s]", "b [s/bit]", "R^2", "TP=1/b [bit/s]"});
  util::CsvWriter csv("exp_fitts_law.csv",
                      {"technique", "distance", "id_bits", "mean_time_s"});

  for (std::size_t which = 0; which < 5; ++which) {
    const std::string name = make_technique(which, sim::Rng(0))->name();
    std::vector<double> ids, times;
    for (std::size_t d = 0; d < std::size(kDistances); ++d) {
      const auto& cell = cells[grid.index({which, d})];
      if (cell.mean_time_s <= 0.0) continue;
      ids.push_back(cell.id_bits);
      times.push_back(cell.mean_time_s);
      csv.row({std::vector<std::string>{name, std::to_string(kDistances[d]),
                                        study::fmt(cell.id_bits, 3),
                                        study::fmt(cell.mean_time_s, 3)}});
    }
    const auto fit = util::fit_linear(ids, times);
    table.add_row({name, study::fmt(fit.intercept, 2), study::fmt(fit.slope, 3),
                   study::fmt(fit.r_squared, 3),
                   fit.slope > 1e-6 ? study::fmt(1.0 / fit.slope, 2) : "inf"});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("expected shape: step/stroke techniques (buttons, wheel, radial)\n"
              "show clearly positive slopes with R^2 near 1 — the classic Fitts\n"
              "regularity the paper cites. DistScroll's absolute mapping (and, at\n"
              "saturated velocity, tilt rate control) yields a much flatter slope:\n"
              "access time barely depends on list distance because the hand jumps\n"
              "directly to the target's position. That flatness is the technique's\n"
              "distinctive signature (and its pitch for medium-size menus).\n");
  std::printf("wrote exp_fitts_law.csv\n");
  return 0;
}
