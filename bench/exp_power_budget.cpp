// Engineering-constraint experiment: the 9 V block battery budget.
//
// The paper argues for a solid-state design ("the reduction of
// mechanical parts reduces costs", no wires) — the flip side is the
// GP2D120's constant ~33 mA draw. This bench runs the real device and
// reports runtime and the per-consumer energy split, plus the effect of
// display contrast and of duty-cycling the ranger between interactions.
#include <cstdio>

#include "core/distscroll_device.h"
#include "menu/menu_builder.h"
#include "study/report.h"
#include "util/csv.h"

using namespace distscroll;

int main() {
  auto menu_root = menu::make_flat_menu(10);
  sim::EventQueue queue;
  core::DistScrollDevice::Config config;
  core::DistScrollDevice device(config, *menu_root, queue, sim::Rng(3));
  device.set_distance_provider([](util::Seconds) { return util::Centimeters{17.0}; });
  device.power_on();
  queue.run_until(util::Seconds{120.0});  // two minutes of use

  auto& battery = device.board().battery();
  std::printf("=== Power budget of the prototype (9 V block, 550 mAh) ===\n\n");
  study::Table split({"consumer", "draw share [mAh/2min]", "relative"});
  double total = 0.0;
  for (double mah : battery.per_consumer_mah()) total += mah;
  for (std::size_t i = 0; i < battery.per_consumer_mah().size(); ++i) {
    const double mah = battery.per_consumer_mah()[i];
    split.add_row({battery.consumer_name(i), study::fmt(mah, 4),
                   study::fmt(100.0 * mah / total, 1) + "%"});
  }
  std::printf("%s\n", split.render().c_str());
  std::printf("total draw: %.1f mA -> estimated runtime %.1f h on one block\n\n",
              battery.total_draw_ma(), battery.estimated_runtime_hours());

  std::printf("=== What-if: ranger duty cycling between interactions ===\n\n");
  study::Table whatif({"scenario", "draw [mA]", "runtime [h]"});
  util::CsvWriter csv("exp_power_budget.csv", {"scenario", "draw_ma", "runtime_h"});
  struct Scenario {
    const char* name;
    double sensor_ma;
  };
  // GP2D120 typ. 33 mA continuous; 10% duty (wake on button, 38 ms
  // bursts) averages ~4.3 mA incl. settle time.
  for (const auto& s : {Scenario{"continuous sensing (prototype)", 33.0},
                        Scenario{"50% duty cycle", 17.5},
                        Scenario{"10% duty + wake-on-button", 4.3}}) {
    hw::Battery fresh;
    fresh.add_consumer("base-board+mcu", 12.0);
    fresh.add_consumer("gp2d120", s.sensor_ma);
    fresh.add_consumer("displays", 2.0);
    whatif.add_row({s.name, study::fmt(fresh.total_draw_ma(), 1),
                    study::fmt(fresh.estimated_runtime_hours(), 1)});
    csv.row({std::vector<std::string>{s.name, study::fmt(fresh.total_draw_ma(), 1),
                                      study::fmt(fresh.estimated_runtime_hours(), 1)}});
  }
  std::printf("%s\n", whatif.render().c_str());
  std::printf("shape: the IR ranger dominates the budget — duty cycling is the\n"
              "lever for a production DistScroll (the paper's planned PDA add-on).\n");
  std::printf("wrote exp_power_budget.csv\n");
  return 0;
}
