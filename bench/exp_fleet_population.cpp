// exp_fleet_population: the streaming fleet engine at population scale.
//
// The paper studied nine participants; this bench folds a sampled
// population of 100k (1M-capable via DISTSCROLL_FLEET_PARTICIPANTS)
// through the full DistScroll trial loop in O(aggregates) memory, and
// re-proves the fleet determinism contract on every run:
//
//   pass 0   small runs (participants/10) at 1, 2 and 8 threads plus a
//            checkpoint/resume split — pins the peak-RSS baseline
//   pass 1   full run, 1 thread, timed   — the reference byte stream
//   pass 2,3 full run at 2 and 8 threads — must merge byte-identically
//   pass 4   full run split by a forced checkpoint at half, resumed —
//            must also merge byte-identically
//
// Peak RSS is process-wide and monotone (getrusage), so "memory stays
// O(aggregates)" is measured as: peak after all five passes divided by
// peak after the small pass must stay within the 10% flatness limit —
// if the engine held per-participant state, 100k participants would
// multiply the baseline several times over. The small pass exercises
// the exact same thread counts and the checkpoint path so that thread
// stacks, pool state and IO buffers are already inside the baseline;
// only participant-dependent memory can move the ratio.
//
// BENCH_exp_fleet_population.json records fleet_wall_s,
// fleet_participants_per_s, both bit-identity verdicts and the RSS
// growth ratio; tools/bench_compare gates all of them under
// `ctest -L perf`. The process exit code enforces the contract even
// without a baseline.
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#if defined(__GLIBC__)
#include <malloc.h>
#endif

#include "obs/tracer.h"
#include "study/fleet_study.h"
#include "study/sweep_runner.h"
#include "util/bench_report.h"

namespace {

using distscroll::study::FleetStudyConfig;
using distscroll::study::run_fleet;

std::uint64_t participants_from_env() {
  if (const char* env = std::getenv("DISTSCROLL_FLEET_PARTICIPANTS")) {
    const unsigned long long parsed = std::strtoull(env, nullptr, 10);
    if (parsed >= 1000) return static_cast<std::uint64_t>(parsed);
  }
  return 100000;
}

FleetStudyConfig base_config(std::uint64_t participants) {
  FleetStudyConfig config;
  config.participants = participants;
  config.trials_per_participant = 4;
  config.menu_size = 40;
  config.base_seed = 0xF1EE7D15C;
  config.chunk = 256;
  config.window_chunks = 32;
  config.batched = true;
  return config;
}

}  // namespace

int main() {
  namespace study = distscroll::study;

#if defined(__GLIBC__)
  // glibc grows per-thread malloc arenas lazily on lock contention, a
  // stochastic ~0.5-1 MiB of RSS that would drown the flatness signal
  // on an ~8 MiB baseline. One arena pins the allocator footprint; the
  // fold hot paths are alloc-free (DS_ASSERT_NO_ALLOC), so arena
  // contention is not on the measured path.
  mallopt(M_ARENA_MAX, 1);
#endif

  const std::uint64_t participants = participants_from_env();
  const std::uint64_t small = participants / 10;

  // Pass 0: small runs through every shape the large passes use — 1, 2
  // and 8 threads plus a checkpoint/resume split — so thread stacks,
  // pool state and checkpoint IO buffers land in the RSS baseline and
  // the flatness ratio measures participant scaling alone. The thread
  // loop runs twice: glibc grows per-thread malloc arenas lazily on
  // contention, and the second lap reaches that plateau (~0.6 MiB)
  // which would otherwise be misread as participant growth.
  for (int lap = 0; lap < 2; ++lap) {
    for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
      auto config = base_config(small);
      config.threads = threads;
      const auto result = run_fleet(config);
      if (!result.complete) {
        std::fprintf(stderr, "exp_fleet_population: small pass did not complete\n");
        return 1;
      }
    }
  }
  const std::string small_checkpoint = "BENCH_exp_fleet_population.small.ckpt";
  std::remove(small_checkpoint.c_str());
  {
    auto config = base_config(small);
    config.threads = 2;
    config.checkpoint_path = small_checkpoint;
    const auto half = run_fleet(config, small / 2);
    config.resume = true;
    const auto resumed = run_fleet(config);
    if (half.status != distscroll::util::CheckpointStatus::Ok || !resumed.complete) {
      std::fprintf(stderr, "exp_fleet_population: small checkpoint pass did not complete\n");
      return 1;
    }
  }
  std::remove(small_checkpoint.c_str());
  const std::size_t rss_baseline = study::sweep_peak_rss_bytes();

  // Pass 1: the timed single-thread reference.
  auto reference_config = base_config(participants);
  reference_config.threads = 1;
  const double t0 = study::sweep_wall_clock_s();
  const auto reference = run_fleet(reference_config);
  const double fleet_wall_s = study::sweep_wall_clock_s() - t0;
  if (!reference.complete) {
    std::fprintf(stderr, "exp_fleet_population: reference pass did not complete\n");
    return 1;
  }
  const std::vector<std::uint8_t> reference_bytes = reference.aggregates.to_bytes();

  // Passes 2 and 3: same study on 2 and 8 threads — the merged
  // aggregates must be byte-identical to the reference.
  bool fleet_bit_identical = true;
  for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    auto config = base_config(participants);
    config.threads = threads;
    const auto result = run_fleet(config);
    const bool same = result.complete && result.aggregates.to_bytes() == reference_bytes;
    if (!same) {
      std::fprintf(stderr, "exp_fleet_population: %zu-thread pass DIVERGED from reference\n",
                   threads);
      fleet_bit_identical = false;
    }
  }

  // Pass 4: force a checkpoint at half the population, resume in a
  // second engine, and compare the finished bytes against the
  // uninterrupted reference.
  const std::string checkpoint_path = "BENCH_exp_fleet_population.ckpt";
  std::remove(checkpoint_path.c_str());
  bool fleet_resume_bit_identical = true;
  {
    auto config = base_config(participants);
    config.threads = 2;
    config.checkpoint_path = checkpoint_path;
    const auto half = run_fleet(config, participants / 2);
    if (half.complete || half.status != distscroll::util::CheckpointStatus::Ok) {
      std::fprintf(stderr, "exp_fleet_population: forced half-run failed (%s)\n",
                   half.error.empty() ? "unexpected completion" : half.error.c_str());
      fleet_resume_bit_identical = false;
    } else {
      config.resume = true;
      const auto resumed = run_fleet(config);
      fleet_resume_bit_identical = resumed.complete && resumed.resumed &&
                                   resumed.resumed_from == half.cursor &&
                                   resumed.aggregates.to_bytes() == reference_bytes;
      if (!fleet_resume_bit_identical) {
        std::fprintf(stderr, "exp_fleet_population: resumed run DIVERGED from reference\n");
      }
    }
  }
  std::remove(checkpoint_path.c_str());

  const std::size_t rss_final = study::sweep_peak_rss_bytes();
  const double rss_growth =
      rss_baseline > 0 ? static_cast<double>(rss_final) / static_cast<double>(rss_baseline) : 0.0;

  const auto& agg = reference.aggregates;
  const double trials = static_cast<double>(agg.trials());
  std::printf("[exp_fleet_population] %" PRIu64 " participants, %" PRIu64 " trials: %.2f s "
              "(%.0f participants/s, 1 thread)\n",
              agg.participants(), agg.trials(), fleet_wall_s,
              fleet_wall_s > 0.0 ? static_cast<double>(participants) / fleet_wall_s : 0.0);
  std::printf("  success %.4f  wrong/trial %.4f  time mean %.3fs p50 %.3fs p90 %.3fs p99 %.3fs\n",
              static_cast<double>(agg.successes()) / trials,
              static_cast<double>(agg.wrong_selections()) / trials, agg.time_s().mean(),
              agg.time_sketch().quantile(0.50), agg.time_sketch().quantile(0.90),
              agg.time_sketch().quantile(0.99));
  std::printf("  thread bit-identity %s, resume bit-identity %s, peak RSS %.1f MiB "
              "(%.3fx of %" PRIu64 "-participant baseline)\n",
              fleet_bit_identical ? "OK" : "DIVERGED",
              fleet_resume_bit_identical ? "OK" : "DIVERGED",
              static_cast<double>(rss_final) / (1024.0 * 1024.0), rss_growth, small);

  distscroll::util::BenchReport report;
  report.name = "exp_fleet_population";
  report.cells = static_cast<std::size_t>(participants);
  report.threads = 1;  // the timed reference pass
  report.hardware_threads = study::resolve_sweep_threads(0);
  // The fleet reference wall doubles as sequential_wall_s so the
  // standard bench_compare wall gate applies unchanged.
  report.sequential_wall_s = fleet_wall_s;
  report.parallel_wall_s = fleet_wall_s;
  report.speedup = 1.0;
  report.bit_identical = fleet_bit_identical;
  report.tracing_compiled = distscroll::obs::Tracer::compiled_in();
  report.batch_width = 0;  // no sweep-style batched pass in this bench
  report.peak_rss_bytes = rss_final;
  report.fleet_participants = static_cast<std::size_t>(participants);
  report.fleet_wall_s = fleet_wall_s;
  report.fleet_participants_per_s =
      fleet_wall_s > 0.0 ? static_cast<double>(participants) / fleet_wall_s : 0.0;
  report.fleet_threads = study::resolve_sweep_threads(0);
  report.fleet_bit_identical = fleet_bit_identical;
  report.fleet_resume_bit_identical = fleet_resume_bit_identical;
  report.fleet_rss_growth = rss_growth;
  if (!distscroll::util::write_bench_report(report)) {
    std::fprintf(stderr, "exp_fleet_population: could not write BENCH json\n");
    return 1;
  }

  const bool rss_flat = rss_growth > 0.0 && rss_growth <= 1.10;
  if (!rss_flat) {
    std::fprintf(stderr, "exp_fleet_population: peak RSS grew %.3fx (flatness limit 1.10x)\n",
                 rss_growth);
  }
  return (fleet_bit_identical && fleet_resume_bit_identical && rss_flat) ? 0 : 1;
}
