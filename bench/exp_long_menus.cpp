// Section 7, Q4: "How to scroll long menus?" — plain distance mapping vs
// chunks of 10 (the paper's suggestion) vs speed-dependent automatic
// zooming (the paper's citation [6], Igarashi & Hinckley).
//
// Menu sizes {20, 50, 100, 200}. Each strategy is executed through the
// same motor model:
//  * plain     — one absolute acquisition over N islands (which shrink
//                below motor precision as N grows);
//  * chunked   — page to the target chunk with the aux button, then one
//                absolute acquisition over <=10 islands;
//  * speedzoom — coarse acquisition over 10 bucket-islands, dwell to
//                zoom in, fine acquisition over <=10 islands.
#include <cstdio>

#include "baselines/distance_scroll.h"
#include "human/motion_planner.h"
#include "study/report.h"
#include "study/task.h"
#include "study/trial.h"
#include "util/csv.h"

using namespace distscroll;

namespace {

struct StrategyResult {
  double mean_time = 0.0;
  double success_rate = 0.0;
  double errors_per_trial = 0.0;
};

StrategyResult summarize(const std::vector<study::TrialRecord>& records) {
  const auto agg = study::aggregate(records);
  return {agg.mean_time_s, agg.success_rate, agg.error_rate};
}

StrategyResult run_plain(std::size_t menu, std::uint64_t seed) {
  sim::Rng rng(seed);
  baselines::DistanceScroll technique({}, rng.fork(1));
  sim::Rng task_rng = rng.fork(2);
  const auto tasks = study::random_tasks(task_rng, menu, 25);
  return summarize(study::run_trials(technique, tasks, human::UserProfile::average(),
                                     rng.fork(3)));
}

StrategyResult run_chunked(std::size_t menu, std::size_t chunk_size, std::uint64_t seed) {
  sim::Rng rng(seed);
  baselines::DistanceScroll technique({}, rng.fork(1));
  const auto profile = human::UserProfile::average();
  sim::Rng task_rng = rng.fork(2);
  const auto tasks = study::random_tasks(task_rng, menu, 25);

  std::vector<study::TrialRecord> records;
  const std::size_t chunk_count = (menu + chunk_size - 1) / chunk_size;
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const auto& task = tasks[i];
    const std::size_t start_chunk = task.start_index / chunk_size;
    const std::size_t target_chunk = task.target_index / chunk_size;
    // Single "next chunk" button with wraparound (the prototype's aux
    // button): pages = forward distance.
    const std::size_t pages = (target_chunk + chunk_count - start_chunk) % chunk_count;
    const double paging_time =
        static_cast<double>(pages) * (profile.button_press_s + 0.06) +
        (pages > 0 ? profile.reaction_time_s : 0.0);

    // Within-chunk acquisition over the chunk's islands.
    const std::size_t entries =
        std::min(chunk_size, menu - target_chunk * chunk_size);
    study::SelectionTask sub;
    sub.level_size = std::max<std::size_t>(2, entries);
    sub.start_index = 0;
    sub.target_index = std::min(task.target_index - target_chunk * chunk_size,
                                sub.level_size - 1);
    auto record = study::run_trial(technique, sub, profile, rng.fork(100 + i));
    record.outcome.time_s += paging_time;
    record.level_size = menu;
    record.scroll_distance = pages;
    records.push_back(record);
  }
  return summarize(records);
}

StrategyResult run_speedzoom(std::size_t menu, std::size_t islands, std::uint64_t seed) {
  sim::Rng rng(seed);
  baselines::DistanceScroll technique({}, rng.fork(1));
  const auto profile = human::UserProfile::average();
  sim::Rng task_rng = rng.fork(2);
  const auto tasks = study::random_tasks(task_rng, menu, 25);
  const std::size_t bucket = (menu + islands - 1) / islands;

  std::vector<study::TrialRecord> records;
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const auto& task = tasks[i];
    // Phase 1: coarse — acquire the target's bucket among `islands`.
    study::SelectionTask coarse;
    coarse.level_size = islands;
    coarse.start_index = std::min(task.start_index / bucket, islands - 1);
    coarse.target_index = std::min(task.target_index / bucket, islands - 1);
    if (coarse.start_index == coarse.target_index) {
      coarse.start_index = (coarse.target_index + 1) % islands;
    }
    auto coarse_record = study::run_trial(technique, coarse, profile, rng.fork(100 + i));

    // Dwell to zoom in (0.6 s), then phase 2: fine within the bucket.
    const std::size_t entries = std::min(bucket, menu - (task.target_index / bucket) * bucket);
    study::SelectionTask fine;
    fine.level_size = std::max<std::size_t>(2, entries);
    fine.start_index = 0;
    fine.target_index = std::min(task.target_index % bucket, fine.level_size - 1);
    auto fine_record = study::run_trial(technique, fine, profile, rng.fork(500 + i));

    study::TrialRecord total;
    total.outcome.success = coarse_record.outcome.success && fine_record.outcome.success;
    total.outcome.time_s = coarse_record.outcome.time_s + 0.6 + fine_record.outcome.time_s;
    total.outcome.wrong_selections =
        coarse_record.outcome.wrong_selections + fine_record.outcome.wrong_selections;
    total.outcome.id_bits = std::log2(
        std::abs(static_cast<long>(task.target_index) - static_cast<long>(task.start_index)) +
        1.0);
    total.level_size = menu;
    records.push_back(total);
  }
  return summarize(records);
}

}  // namespace

int main() {
  std::printf("=== Q4: long menus — plain vs chunks-of-10 vs speed zoom ===\n\n");
  study::Table table({"menu", "strategy", "time[s]", "success", "err/trial"});
  util::CsvWriter csv("exp_long_menus.csv",
                      {"menu_size", "strategy", "mean_time_s", "success_rate",
                       "errors_per_trial"});
  for (const std::size_t menu : {20u, 50u, 100u, 200u}) {
    struct Row {
      const char* name;
      StrategyResult result;
    };
    const Row rows[] = {
        {"plain", run_plain(menu, 0x1000 + menu)},
        {"chunked-10", run_chunked(menu, 10, 0x2000 + menu)},
        {"speedzoom-10", run_speedzoom(menu, 10, 0x3000 + menu)},
    };
    for (const auto& row : rows) {
      table.add_row({std::to_string(menu), row.name, study::fmt(row.result.mean_time, 2),
                     study::fmt(row.result.success_rate, 2),
                     study::fmt(row.result.errors_per_trial, 2)});
      csv.row({std::vector<std::string>{std::to_string(menu), row.name,
                                        study::fmt(row.result.mean_time, 3),
                                        study::fmt(row.result.success_rate, 3),
                                        study::fmt(row.result.errors_per_trial, 3)}});
    }
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("=== Ablation: chunk size on a 100-entry menu ===\n\n");
  study::Table ablation({"chunk size", "time[s]", "success", "err/trial"});
  for (const std::size_t chunk : {5u, 10u, 20u}) {
    const auto result = run_chunked(100, chunk, 0x4000 + chunk);
    ablation.add_row({std::to_string(chunk), study::fmt(result.mean_time, 2),
                      study::fmt(result.success_rate, 2),
                      study::fmt(result.errors_per_trial, 2)});
  }
  std::printf("%s\n", ablation.render().c_str());

  std::printf("expected shape: plain collapses as the menu grows (islands drop\n"
              "below motor precision: success falls, time explodes); chunking and\n"
              "speed zoom stay roughly flat, trading button pages / zoom dwell\n"
              "for island width. Chunk-size ablation: small chunks over-page,\n"
              "large chunks under-resolve; ~10 (the paper's suggestion) is a\n"
              "sensible middle.\n");
  std::printf("wrote exp_long_menus.csv\n");
  return 0;
}
