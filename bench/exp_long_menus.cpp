// Section 7, Q4: "How to scroll long menus?" — plain distance mapping vs
// chunks of 10 (the paper's suggestion) vs speed-dependent automatic
// zooming (the paper's citation [6], Igarashi & Hinckley).
//
// Menu sizes {20, 50, 100, 200}. Each strategy is executed through the
// same motor model:
//  * plain     — one absolute acquisition over N islands (which shrink
//                below motor precision as N grows);
//  * chunked   — page to the target chunk with the aux button, then one
//                absolute acquisition over <=10 islands;
//  * speedzoom — coarse acquisition over 10 bucket-islands, dwell to
//                zoom in, fine acquisition over <=10 islands.
//
// The (menu x strategy) grid runs as SweepRunner cells (RNG forked off
// the cell index; bit-identical at any thread count), timed into
// BENCH_exp_long_menus.json.
#include <cstdio>

#include "baselines/distance_scroll.h"
#include "human/motion_planner.h"
#include "study/report.h"
#include "study/sweep_runner.h"
#include "study/task.h"
#include "study/trial.h"
#include "util/csv.h"

using namespace distscroll;

namespace {

const std::size_t kMenus[] = {20, 50, 100, 200};

struct StrategyResult {
  double mean_time = 0.0;
  double success_rate = 0.0;
  double errors_per_trial = 0.0;

  friend bool operator==(const StrategyResult&, const StrategyResult&) = default;
};

StrategyResult summarize(const std::vector<study::TrialRecord>& records) {
  const auto agg = study::aggregate(records);
  return {agg.mean_time_s, agg.success_rate, agg.error_rate};
}

StrategyResult run_plain(std::size_t menu, sim::Rng rng) {
  baselines::DistanceScroll technique({}, rng.fork(1));
  sim::Rng task_rng = rng.fork(2);
  const auto tasks = study::random_tasks(task_rng, menu, 25);
  return summarize(study::run_trials(technique, tasks, human::UserProfile::average(),
                                     rng.fork(3)));
}

StrategyResult run_chunked(std::size_t menu, std::size_t chunk_size, sim::Rng rng) {
  baselines::DistanceScroll technique({}, rng.fork(1));
  const auto profile = human::UserProfile::average();
  sim::Rng task_rng = rng.fork(2);
  const auto tasks = study::random_tasks(task_rng, menu, 25);

  std::vector<study::TrialRecord> records;
  const std::size_t chunk_count = (menu + chunk_size - 1) / chunk_size;
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const auto& task = tasks[i];
    const std::size_t start_chunk = task.start_index / chunk_size;
    const std::size_t target_chunk = task.target_index / chunk_size;
    // Single "next chunk" button with wraparound (the prototype's aux
    // button): pages = forward distance.
    const std::size_t pages = (target_chunk + chunk_count - start_chunk) % chunk_count;
    const double paging_time =
        static_cast<double>(pages) * (profile.button_press_s + 0.06) +
        (pages > 0 ? profile.reaction_time_s : 0.0);

    // Within-chunk acquisition over the chunk's islands.
    const std::size_t entries =
        std::min(chunk_size, menu - target_chunk * chunk_size);
    study::SelectionTask sub;
    sub.level_size = std::max<std::size_t>(2, entries);
    sub.start_index = 0;
    sub.target_index = std::min(task.target_index - target_chunk * chunk_size,
                                sub.level_size - 1);
    auto record = study::run_trial(technique, sub, profile, rng.fork(100 + i));
    record.outcome.time_s += paging_time;
    record.level_size = menu;
    record.scroll_distance = pages;
    records.push_back(record);
  }
  return summarize(records);
}

StrategyResult run_speedzoom(std::size_t menu, std::size_t islands, sim::Rng rng) {
  baselines::DistanceScroll technique({}, rng.fork(1));
  const auto profile = human::UserProfile::average();
  sim::Rng task_rng = rng.fork(2);
  const auto tasks = study::random_tasks(task_rng, menu, 25);
  const std::size_t bucket = (menu + islands - 1) / islands;

  std::vector<study::TrialRecord> records;
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const auto& task = tasks[i];
    // Phase 1: coarse — acquire the target's bucket among `islands`.
    study::SelectionTask coarse;
    coarse.level_size = islands;
    coarse.start_index = std::min(task.start_index / bucket, islands - 1);
    coarse.target_index = std::min(task.target_index / bucket, islands - 1);
    if (coarse.start_index == coarse.target_index) {
      coarse.start_index = (coarse.target_index + 1) % islands;
    }
    auto coarse_record = study::run_trial(technique, coarse, profile, rng.fork(100 + i));

    // Dwell to zoom in (0.6 s), then phase 2: fine within the bucket.
    const std::size_t entries = std::min(bucket, menu - (task.target_index / bucket) * bucket);
    study::SelectionTask fine;
    fine.level_size = std::max<std::size_t>(2, entries);
    fine.start_index = 0;
    fine.target_index = std::min(task.target_index % bucket, fine.level_size - 1);
    auto fine_record = study::run_trial(technique, fine, profile, rng.fork(500 + i));

    study::TrialRecord total;
    total.outcome.success = coarse_record.outcome.success && fine_record.outcome.success;
    total.outcome.time_s = coarse_record.outcome.time_s + 0.6 + fine_record.outcome.time_s;
    total.outcome.wrong_selections =
        coarse_record.outcome.wrong_selections + fine_record.outcome.wrong_selections;
    total.outcome.id_bits = std::log2(
        std::abs(static_cast<long>(task.target_index) - static_cast<long>(task.start_index)) +
        1.0);
    total.level_size = menu;
    records.push_back(total);
  }
  return summarize(records);
}

StrategyResult run_strategy(std::size_t menu, std::size_t strategy, sim::Rng rng) {
  switch (strategy) {
    case 0: return run_plain(menu, rng);
    case 1: return run_chunked(menu, 10, rng);
    default: return run_speedzoom(menu, 10, rng);
  }
}

const char* kStrategyNames[] = {"plain", "chunked-10", "speedzoom-10"};

}  // namespace

int main() {
  std::printf("=== Q4: long menus — plain vs chunks-of-10 vs speed zoom ===\n\n");

  const study::SweepGrid grid({std::size(kMenus), std::size(kStrategyNames)});
  const auto cells = study::timed_sweep<StrategyResult>(
      "exp_long_menus", grid.cells(), 0x10C5, [&](std::size_t index, sim::Rng rng) {
        return run_strategy(kMenus[grid.coord(index, 0)], grid.coord(index, 1), rng);
      });
  std::printf("\n");

  study::Table table({"menu", "strategy", "time[s]", "success", "err/trial"});
  util::CsvWriter csv("exp_long_menus.csv",
                      {"menu_size", "strategy", "mean_time_s", "success_rate",
                       "errors_per_trial"});
  for (std::size_t m = 0; m < std::size(kMenus); ++m) {
    for (std::size_t s = 0; s < std::size(kStrategyNames); ++s) {
      const auto& result = cells[grid.index({m, s})];
      table.add_row({std::to_string(kMenus[m]), kStrategyNames[s],
                     study::fmt(result.mean_time, 2), study::fmt(result.success_rate, 2),
                     study::fmt(result.errors_per_trial, 2)});
      csv.row({std::vector<std::string>{std::to_string(kMenus[m]), kStrategyNames[s],
                                        study::fmt(result.mean_time, 3),
                                        study::fmt(result.success_rate, 3),
                                        study::fmt(result.errors_per_trial, 3)}});
    }
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("=== Ablation: chunk size on a 100-entry menu ===\n\n");
  const std::size_t kChunks[] = {5, 10, 20};
  study::SweepRunner runner({0, 1, 0x4000});
  const auto ablation_cells = runner.run<StrategyResult>(
      std::size(kChunks),
      [&](std::size_t index, sim::Rng rng) { return run_chunked(100, kChunks[index], rng); });
  study::Table ablation({"chunk size", "time[s]", "success", "err/trial"});
  for (std::size_t c = 0; c < std::size(kChunks); ++c) {
    const auto& result = ablation_cells[c];
    ablation.add_row({std::to_string(kChunks[c]), study::fmt(result.mean_time, 2),
                      study::fmt(result.success_rate, 2),
                      study::fmt(result.errors_per_trial, 2)});
  }
  std::printf("%s\n", ablation.render().c_str());

  std::printf("expected shape: plain collapses as the menu grows (islands drop\n"
              "below motor precision: success falls, time explodes); chunking and\n"
              "speed zoom stay roughly flat, trading button pages / zoom dwell\n"
              "for island width. Chunk-size ablation: small chunks over-page,\n"
              "large chunks under-resolve; ~10 (the paper's suggestion) is a\n"
              "sensible middle.\n");
  std::printf("wrote exp_long_menus.csv\n");
  return 0;
}
