// Section 4.2 reproduction: the island mapping.
//
// Shows, for several menu sizes, the islands' count intervals and their
// widths in centimetres ("perceived equal spacing"), the selection-free
// gap fraction, and two ablations DESIGN.md calls out:
//   * coverage (dead-zone fraction): stability vs responsiveness under
//     hand tremor;
//   * hysteresis: boundary flicker suppression.
#include <cstdio>

#include "core/island_mapper.h"
#include "core/scroll_controller.h"
#include "human/hand_model.h"
#include "sensors/gp2d120.h"
#include "study/report.h"
#include "util/csv.h"

using namespace distscroll;

namespace {

/// Selection flicker while holding on an island boundary with tremor:
/// counts how often the selection changes in 30 s of holding.
int flicker_count(double coverage, std::uint16_t hysteresis, double tremor_cm,
                  std::uint64_t seed) {
  core::SensorCurve curve;
  core::IslandMapper::Config island_config;
  island_config.coverage = coverage;
  island_config.hysteresis_counts = hysteresis;
  core::IslandMapper mapper(curve, 10, island_config);
  core::ScrollController controller(mapper, {});

  sim::Rng rng(seed);
  sensors::Gp2d120Model::Config sensor_config;
  sensors::Gp2d120Model sensor(sensor_config, rng.fork(1));
  human::Tremor::Config tremor_config;
  tremor_config.amplitude_cm = tremor_cm;
  human::Tremor tremor(tremor_config, rng.fork(2));

  // Hold exactly on the boundary between islands 4 and 5 — worst case.
  const double boundary_cm = (mapper.centre_distance(4).value + mapper.centre_distance(5).value) / 2.0;
  int changes = 0;
  for (double t = 0.0; t < 30.0; t += 0.02) {
    const double d = boundary_cm + tremor.displacement_cm(t);
    const double v = sensor.output(util::Centimeters{d}, util::Seconds{t}).value;
    const auto counts = util::AdcCounts{static_cast<std::uint16_t>(
        std::min(1023.0, std::max(0.0, v / 5.0 * 1023.0 + rng.gaussian(0.0, 0.5))))};
    if (controller.on_sample(counts).changed) ++changes;
  }
  return changes;
}

}  // namespace

int main() {
  core::SensorCurve curve;

  std::printf("=== Island tables (Section 4.2 mapping) ===\n\n");
  for (const std::size_t entries : {5u, 10u, 20u}) {
    core::IslandMapper mapper(curve, entries, {});
    study::Table table({"entry", "centre[cm]", "counts[lo..hi]", "width[counts]", "width[cm]"});
    for (std::size_t i = 0; i < entries; ++i) {
      const auto& island = mapper.islands()[i];
      char bounds[32];
      std::snprintf(bounds, sizeof(bounds), "%u..%u", island.low, island.high);
      const double w_cm =
          curve.distance_at(util::AdcCounts{island.low}).value -
          curve.distance_at(util::AdcCounts{island.high}).value;
      table.add_row({std::to_string(i), study::fmt(mapper.centre_distance(i).value, 1), bounds,
                     std::to_string(island.high - island.low), study::fmt(w_cm, 2)});
    }
    std::printf("%zu entries  (coverage of count spectrum: %.2f)\n%s\n", entries,
                mapper.coverage_fraction(), table.render().c_str());
  }
  std::printf("note: count widths shrink toward the far end (hyperbolic curve)\n"
              "while cm widths stay ~equal — the paper's engineered perception\n"
              "of equally spaced entries.\n\n");

  std::printf("=== Ablation: coverage (dead zones) vs boundary flicker ===\n");
  std::printf("holding ON an island boundary, physiological tremor, 30 s:\n\n");
  study::Table ablation({"coverage", "hysteresis", "tremor[cm]", "selection changes"});
  util::CsvWriter csv("exp_island_mapping.csv",
                      {"coverage", "hysteresis", "tremor_cm", "changes"});
  for (const double coverage : {0.3, 0.6, 0.9, 1.0}) {
    for (const std::uint16_t hysteresis : {std::uint16_t{0}, std::uint16_t{4}}) {
      for (const double tremor : {0.08, 0.2}) {
        const int changes = flicker_count(coverage, hysteresis, tremor, 42);
        ablation.add_row({study::fmt(coverage, 1), std::to_string(hysteresis),
                          study::fmt(tremor, 2), std::to_string(changes)});
        csv.row({coverage, static_cast<double>(hysteresis), tremor,
                 static_cast<double>(changes)});
      }
    }
  }
  std::printf("%s\n", ablation.render().c_str());
  std::printf("expected shape: coverage=1.0 (no dead zones) flickers most;\n"
              "the paper's gaps and/or hysteresis suppress boundary chatter.\n");
  std::printf("wrote exp_island_mapping.csv\n");
  return 0;
}
