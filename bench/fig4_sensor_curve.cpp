// Figure 4 reproduction: "Visualization of the sensor values (measured
// analog voltage at Smart-Its input port). The measured values
// (asterisks) and an idealized curve fitted through these is displayed."
//
// We sweep the true distance 4..32 cm in front of the simulated GP2D120,
// read it through the 10-bit ADC exactly as the Smart-Its does, fit the
// idealised V(d) = a/(d+k)+c curve and plot both — plus the full
// 0..32 cm sweep showing the non-monotonic < 4 cm branch the paper
// discusses.
#include <cstdio>

#include "core/calibration.h"
#include "hw/adc.h"
#include "sensors/gp2d120.h"
#include "util/ascii_plot.h"
#include "util/csv.h"

using namespace distscroll;

int main() {
  sim::Rng rng(20050415);  // any fixed seed: results are deterministic
  sensors::Gp2d120Model ranger({}, rng.fork(1), sensors::SurfaceProfile::gray_jacket());
  hw::Adc10 adc({}, rng.fork(2));

  // A fresh sensor sample per reading: hold each distance longer than
  // the 38 ms measurement period, as a tripod sweep would.
  double fake_time = 0.0;
  auto read_counts = [&](util::Centimeters d) {
    fake_time += 0.1;
    const util::Volts v = ranger.output(d, util::Seconds{fake_time});
    // Route through the ADC quantisation path.
    hw::Adc10::Config cfg;
    const double counts = v.value / cfg.vref * 1023.0;
    return util::AdcCounts{static_cast<std::uint16_t>(counts + 0.5)};
  };

  const auto samples = core::sweep(util::Centimeters{4.0}, util::Centimeters{32.0}, 1.0,
                                   read_counts, /*repeats=*/4);
  const auto calibration = core::calibrate(samples);

  std::vector<double> xs, ys, fit_xs, fit_ys;
  for (const auto& s : samples) {
    xs.push_back(s.distance.value);
    ys.push_back(s.counts.value * 5.0 / 1023.0);
  }
  for (double d = 4.0; d <= 32.0; d += 0.25) {
    fit_xs.push_back(d);
    fit_ys.push_back(calibration.curve.volts_at(util::Centimeters{d}).value);
  }

  util::PlotOptions options;
  options.title = "Fig. 4 — GP2D120 output vs distance (measured * / fitted -)";
  options.x_label = "distance [cm]";
  options.y_label = "voltage [V]";
  std::printf("%s\n", util::ascii_plot(xs, ys, fit_xs, fit_ys, options).c_str());

  std::printf("fitted curve: V(d) = %.3f/(d + %.3f) + %.3f   R^2 = %.5f\n",
              calibration.curve.params().a, calibration.curve.params().k,
              calibration.curve.params().c, calibration.r_squared);
  std::printf("usable range per calibration: %.1f .. %.1f cm (paper: 4 .. 30 cm)\n\n",
              calibration.usable_near.value, calibration.usable_far.value);

  // The non-monotonic near branch (Section 4.2).
  std::printf("near-branch check (ideal output, no noise):\n");
  std::printf("  %6s  %8s\n", "d[cm]", "V[V]");
  for (double d : {0.5, 1.0, 2.0, 3.0, 3.2, 3.5, 4.0, 6.0}) {
    std::printf("  %6.1f  %8.3f\n", d, ranger.ideal_output(util::Centimeters{d}).value);
  }

  util::CsvWriter csv("fig4_sensor_curve.csv", {"distance_cm", "measured_volts", "fitted_volts"});
  for (std::size_t i = 0; i < xs.size(); ++i) {
    csv.row({xs[i], ys[i], calibration.curve.volts_at(util::Centimeters{xs[i]}).value});
  }
  std::printf("\nwrote fig4_sensor_curve.csv\n");
  return 0;
}
