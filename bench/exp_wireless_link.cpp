// Telemetry-link experiment: how reliable is the study's logging path?
//
// The research prototype streams state frames to the PC over a lossy RF
// link (Section 3.2's "wirelessly linked to a PC"). The study harness
// depends on that stream; this bench sweeps byte-loss and bit-flip
// rates and reports delivered-frame ratio, CRC rejections and observed
// sequence gaps — demonstrating the end-to-end framing holds up.
#include <cstdio>

#include "core/distscroll_device.h"
#include "menu/menu_builder.h"
#include "study/report.h"
#include "util/csv.h"
#include "wireless/host_logger.h"
#include "wireless/rf_link.h"

using namespace distscroll;

namespace {

struct LinkStats {
  double delivered_ratio;
  std::uint64_t crc_errors;
  std::uint64_t gaps;
};

LinkStats run_link(double byte_loss, double bit_flip, std::uint64_t seed) {
  auto menu_root = menu::make_flat_menu(8);
  sim::EventQueue queue;
  core::DistScrollDevice::Config config;
  core::DistScrollDevice device(config, *menu_root, queue, sim::Rng(seed));
  // A moving hand so the frames carry changing state.
  device.set_distance_provider([](util::Seconds now) {
    return util::Centimeters{17.0 + 8.0 * std::sin(now.value * 0.7)};
  });
  device.power_on();

  wireless::RfLink::Config link_config;
  link_config.byte_loss_probability = byte_loss;
  link_config.bit_flip_probability = bit_flip;
  wireless::RfLink link(link_config, device.board().uart(), queue, sim::Rng(seed + 1));
  wireless::HostLogger logger(queue);
  link.set_host_sink([&](std::uint8_t b) { logger.on_byte(b); });
  link.start();

  queue.run_until(util::Seconds{60.0});

  // Frames sent: one per telemetry interval (2 firmware ticks = 40 ms).
  const double sent = 60.0 / 0.040;
  return {static_cast<double>(logger.frames_received()) / sent, logger.crc_errors(),
          logger.sequence_gaps()};
}

}  // namespace

int main() {
  std::printf("=== Telemetry link robustness (60 s of streaming, 25 frames/s) ===\n\n");
  study::Table table({"byte loss", "bit flips", "frames delivered", "CRC rejects", "seq gaps"});
  util::CsvWriter csv("exp_wireless_link.csv",
                      {"byte_loss", "bit_flip", "delivered_ratio", "crc_errors", "gaps"});
  struct Case {
    double loss, flip;
  };
  for (const auto c : {Case{0.0, 0.0}, Case{0.002, 0.0005}, Case{0.01, 0.002},
                       Case{0.05, 0.01}, Case{0.15, 0.03}}) {
    const auto stats = run_link(c.loss, c.flip, 0xF00D);
    table.add_row({study::fmt(c.loss * 100, 1) + "%", study::fmt(c.flip * 100, 2) + "%",
                   study::fmt(stats.delivered_ratio * 100, 1) + "%",
                   std::to_string(stats.crc_errors), std::to_string(stats.gaps)});
    csv.row({c.loss, c.flip, stats.delivered_ratio, static_cast<double>(stats.crc_errors),
             static_cast<double>(stats.gaps)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("shape: delivery degrades gracefully with loss; corrupted frames\n"
              "are ALWAYS rejected by CRC (never delivered wrong), and sequence\n"
              "numbers make the loss visible to the logging PC.\n");
  std::printf("wrote exp_wireless_link.csv\n");
  return 0;
}
