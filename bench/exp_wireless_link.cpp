// Telemetry-link experiment: how reliable is the study's logging path?
//
// The research prototype streams state frames to the PC over a lossy RF
// link (Section 3.2's "wirelessly linked to a PC"). The study harness
// depends on that stream; this bench sweeps byte-loss and bit-flip
// rates over two pipelines:
//
//   raw : device firmware → UART → RfLink → FrameDecoder/HostLogger
//         (CRC rejects corruption, sequence numbers surface the loss)
//   arq : state source → ArqSender → UART → RfLink → ArqReceiver
//         with a lossy reverse ack channel — the reliable transport
//
// and reports delivered-frame ratio, CRC rejections, sequence gaps,
// retransmit counts and delivery-latency percentiles via
// wireless::LinkStats / util::stats.
#include <cmath>
#include <cstdio>
#include <functional>

#include "core/distscroll_device.h"
#include "menu/menu_builder.h"
#include "study/report.h"
#include "util/csv.h"
#include "wireless/arq.h"
#include "wireless/host_logger.h"
#include "wireless/link_stats.h"
#include "wireless/rf_link.h"

using namespace distscroll;

namespace {

constexpr double kRunSeconds = 60.0;
constexpr double kFramePeriod = 0.040;  // 25 state frames/s

struct RawResult {
  double delivered_ratio;
  std::uint64_t crc_errors;
  std::uint64_t gaps;
};

RawResult run_raw_link(double byte_loss, double bit_flip, std::uint64_t seed) {
  auto menu_root = menu::make_flat_menu(8);
  sim::EventQueue queue;
  core::DistScrollDevice::Config config;
  core::DistScrollDevice device(config, *menu_root, queue, sim::Rng(seed));
  // A moving hand so the frames carry changing state.
  device.set_distance_provider([](util::Seconds now) {
    return util::Centimeters{17.0 + 8.0 * std::sin(now.value * 0.7)};
  });
  device.power_on();

  wireless::RfLink::Config link_config;
  link_config.byte_loss_probability = byte_loss;
  link_config.bit_flip_probability = bit_flip;
  wireless::RfLink link(link_config, device.board().uart(), queue, sim::Rng(seed + 1));
  wireless::HostLogger logger(queue);
  link.set_host_sink([&](std::uint8_t b) { logger.on_byte(b); });
  link.start();

  queue.run_until(util::Seconds{kRunSeconds});

  // Frames sent: one per telemetry interval (2 firmware ticks = 40 ms).
  const double sent = kRunSeconds / kFramePeriod;
  return {static_cast<double>(logger.frames_received()) / sent, logger.crc_errors(),
          logger.sequence_gaps()};
}

struct ArqResult {
  std::uint64_t offered;
  double delivered_ratio;
  std::uint64_t retransmissions;
  std::uint64_t drops;
  double p50_ms;
  double p99_ms;
  double mean_attempts;
  std::string report;
};

ArqResult run_arq_link(double byte_loss, double bit_flip, std::uint64_t seed) {
  sim::EventQueue queue;
  hw::Uart device_uart;
  hw::Uart host_uart;

  wireless::RfLink::Config link_config;
  link_config.byte_loss_probability = byte_loss;
  link_config.bit_flip_probability = bit_flip;
  wireless::RfLink forward(link_config, device_uart, queue, sim::Rng(seed));
  wireless::RfLink reverse(link_config, host_uart, queue, sim::Rng(seed + 1));

  wireless::ArqSender sender(wireless::ArqConfig{}, queue);
  wireless::ArqReceiver receiver;
  wireless::HostLogger logger(queue);
  wireless::LinkStats stats;

  sender.set_wire_sink([&](std::span<const std::uint8_t> wire) {
    if (device_uart.tx_free() < wire.size()) return false;
    for (std::uint8_t b : wire) device_uart.transmit(b);
    return true;
  });
  device_uart.set_tx_space_callback([&] { sender.notify_tx_space(); });
  forward.set_host_sink([&](std::uint8_t b) { receiver.on_byte(b); });
  receiver.set_ack_sink([&](std::span<const std::uint8_t> wire) {
    if (host_uart.tx_free() < wire.size()) return false;
    for (std::uint8_t b : wire) host_uart.transmit(b);
    return true;
  });
  reverse.set_host_sink([&](std::uint8_t b) { sender.on_ack_byte(b); });
  receiver.set_frame_sink([&](const wireless::Frame& frame) {
    // Delivery latency: first enqueue at the device to arrival here.
    if (const auto t0 = sender.enqueue_time_s(frame.seq)) {
      stats.record_delivery_latency(queue.now().value - *t0);
    }
    logger.on_frame(frame);
  });
  sender.set_ack_callback(
      [&](std::uint8_t, double, int attempts) { stats.record_attempts(attempts); });
  forward.start();
  reverse.start();

  // The same moving-hand state stream at 25 Hz, now through the ARQ layer.
  std::uint64_t offered = 0;
  std::function<void()> tick = [&] {
    const double now = queue.now().value;
    if (now >= kRunSeconds) return;
    wireless::StateReport report;
    report.adc_counts = static_cast<std::uint16_t>(512.0 + 400.0 * std::sin(now * 0.7));
    report.cursor_index = static_cast<std::uint8_t>(offered % 8);
    report.level_size = 8;
    sender.send(wireless::FrameType::State, report.pack());
    ++offered;
    queue.schedule_after(util::Seconds{kFramePeriod}, tick);
  };
  queue.schedule_after(util::Seconds{kFramePeriod}, tick);
  // Run past the last send so in-flight retransmits drain.
  queue.run_until(util::Seconds{kRunSeconds + 5.0});

  stats.sample(&forward, &receiver.decoder(), &sender, &receiver, &logger);
  const auto& c = stats.counters();
  return {offered,
          offered ? static_cast<double>(receiver.frames_delivered()) / static_cast<double>(offered)
                  : 0.0,
          c.arq_retransmissions,
          c.arq_drops_queue_full + c.arq_drops_retry_exhausted,
          stats.latency_percentile(0.50) * 1e3,
          stats.latency_percentile(0.99) * 1e3,
          stats.mean_attempts(),
          stats.report()};
}

}  // namespace

int main() {
  struct Case {
    double loss, flip;
  };
  const Case cases[] = {Case{0.0, 0.0},    Case{0.002, 0.0005}, Case{0.01, 0.001},
                        Case{0.01, 0.002}, Case{0.05, 0.01},    Case{0.15, 0.03}};

  util::CsvWriter csv("exp_wireless_link.csv",
                      {"pipeline", "byte_loss", "bit_flip", "delivered_ratio", "crc_errors",
                       "gaps", "retransmissions", "drops", "latency_p50_ms", "latency_p99_ms"});

  std::printf("=== Telemetry link robustness (60 s of streaming, 25 frames/s) ===\n\n");
  std::printf("--- raw pipeline: CRC rejection only, losses visible as gaps ---\n");
  study::Table raw_table({"byte loss", "bit flips", "frames delivered", "CRC rejects", "seq gaps"});
  for (const auto c : cases) {
    const auto stats = run_raw_link(c.loss, c.flip, 0xF00D);
    raw_table.add_row({study::fmt(c.loss * 100, 1) + "%", study::fmt(c.flip * 100, 2) + "%",
                       study::fmt(stats.delivered_ratio * 100, 1) + "%",
                       std::to_string(stats.crc_errors), std::to_string(stats.gaps)});
    csv.row({0.0, c.loss, c.flip, stats.delivered_ratio, static_cast<double>(stats.crc_errors),
             static_cast<double>(stats.gaps), 0.0, 0.0, 0.0, 0.0});
  }
  std::printf("%s\n", raw_table.render().c_str());

  std::printf("--- ARQ pipeline: ack/retransmit with backoff, lossy ack channel ---\n");
  study::Table arq_table({"byte loss", "bit flips", "frames delivered", "retransmits", "drops",
                          "mean tx/frame", "p50 ms", "p99 ms"});
  std::string worst_case_report;
  for (const auto c : cases) {
    const auto r = run_arq_link(c.loss, c.flip, 0xBEEF);
    arq_table.add_row({study::fmt(c.loss * 100, 1) + "%", study::fmt(c.flip * 100, 2) + "%",
                       study::fmt(r.delivered_ratio * 100, 2) + "%",
                       std::to_string(r.retransmissions), std::to_string(r.drops),
                       study::fmt(r.mean_attempts, 2), study::fmt(r.p50_ms, 2),
                       study::fmt(r.p99_ms, 2)});
    csv.row({1.0, c.loss, c.flip, r.delivered_ratio, 0.0, 0.0,
             static_cast<double>(r.retransmissions), static_cast<double>(r.drops), r.p50_ms,
             r.p99_ms});
    if (c.loss == 0.01 && c.flip == 0.001) worst_case_report = r.report;
  }
  std::printf("%s\n", arq_table.render().c_str());

  std::printf("LinkStats at the acceptance point (1%% byte loss, 0.1%% bit flips):\n%s\n",
              worst_case_report.c_str());
  std::printf("shape: the raw pipeline degrades with loss (corrupted frames are\n"
              "ALWAYS rejected by CRC, never delivered wrong; sequence numbers\n"
              "make the loss visible), while the ARQ layer holds delivery near\n"
              "100%% by paying retransmissions and tail latency instead.\n");
  std::printf("wrote exp_wireless_link.csv\n");
  return 0;
}
