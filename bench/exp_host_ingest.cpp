// exp_host_ingest: the multi-device host telemetry ingest pipeline at
// fleet scale.
//
// The paper demonstrated one DistScroll device against one host; this
// bench drives a default fleet of 2000 simulated devices (10k-capable
// via DISTSCROLL_HOST_DEVICES) through the full ingest path — ARQ
// links with loss/corruption/reorder/ack-loss fault injection,
// lane-sharded bounded queue, batch CRC validation, per-device
// sequence accounting, columnar DSTL compaction — and re-proves the
// pipeline's contracts on every run:
//
//   pass 1   timed single-thread reference with content verification —
//            every accepted frame re-derived from its device's pure
//            telemetry source; any mismatch fails the process
//   pass 2,3 same fleet at 2 and 8 threads — DSTL bytes AND the
//            metrics JSON must match the reference byte-for-byte
//   pass 4   overload: the same fleet through starved lanes and a
//            shortened ARQ queue — devices must shed at the source
//            (accepted + shed == offered exactly) with zero accepted-
//            frame corruption; the shed fraction is host_drop_rate
//
// BENCH_exp_host_ingest.json records host_frames_per_s (accepted
// frames through the timed reference), host_drop_rate and the
// bit-identity verdict; tools/bench_compare gates all three under
// `ctest -L perf`. The process exit code enforces the invariants even
// without a baseline.
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "host/host_pipeline.h"
#include "obs/metrics.h"
#include "obs/tracer.h"
#include "study/sweep_runner.h"
#include "util/bench_report.h"

namespace {

using distscroll::host::HostIngestConfig;
using distscroll::host::run_host_ingest;

std::size_t devices_from_env() {
  if (const char* env = std::getenv("DISTSCROLL_HOST_DEVICES")) {
    const unsigned long long parsed = std::strtoull(env, nullptr, 10);
    if (parsed >= 16) return static_cast<std::size_t>(parsed);
  }
  return 2000;
}

HostIngestConfig base_config(std::size_t devices) {
  HostIngestConfig config;
  config.devices = devices;
  config.lanes = 8;
  config.lane_capacity = 512;
  config.duration_s = 2.0;
  config.faults.frame_loss = 0.01;
  config.faults.bit_flip = 0.002;
  config.faults.reorder = 0.005;
  config.faults.ack_loss = 0.005;
  config.base_seed = 0xD157BE;
  config.session_id = 7;
  config.threads = 1;
  return config;
}

}  // namespace

int main() {
  namespace study = distscroll::study;
  namespace obs = distscroll::obs;

  const std::size_t devices = devices_from_env();

  // Pass 1: the timed single-thread reference, content verification on
  // (the verify cost is part of the pipeline's contract, so it stays
  // on the timed path).
  obs::MetricsRegistry reference_metrics;
  const double t0 = study::sweep_wall_clock_s();
  const auto reference = run_host_ingest(base_config(devices), &reference_metrics);
  const double host_wall_s = study::sweep_wall_clock_s() - t0;
  if (!reference.stats.complete) {
    std::fprintf(stderr, "exp_host_ingest: reference pass did not drain\n");
    return 1;
  }
  if (reference.stats.content_mismatches != 0) {
    std::fprintf(stderr, "exp_host_ingest: %" PRIu64 " accepted frames failed content verify\n",
                 reference.stats.content_mismatches);
    return 1;
  }
  const std::string reference_metrics_json = reference_metrics.to_json_fields();

  // Passes 2 and 3: the identical fleet on 2 and 8 threads — the DSTL
  // container and the metrics JSON must be byte-equal to the reference.
  bool host_bit_identical = true;
  for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    auto config = base_config(devices);
    config.threads = threads;
    obs::MetricsRegistry metrics;
    const auto result = run_host_ingest(config, &metrics);
    const bool same = result.stats.complete && result.dstl == reference.dstl &&
                      metrics.to_json_fields() == reference_metrics_json;
    if (!same) {
      std::fprintf(stderr, "exp_host_ingest: %zu-thread pass DIVERGED from reference\n", threads);
      host_bit_identical = false;
    }
  }

  // Pass 4: overload. Starved lanes and a shortened ARQ queue force the
  // devices to shed at the source; the accounting must stay exact
  // (accepted + shed == offered) and every frame that DID land must
  // still verify against its telemetry source. Faults are off and the
  // drain grace is generous so the fleet fully drains and the ledger
  // has no third bucket (no retry-exhausted drops, no stranded
  // in-flight frames) — the pass isolates pure backpressure shedding.
  auto overload_config = base_config(devices);
  overload_config.faults = {};
  overload_config.lanes = 2;
  overload_config.lane_capacity = 48;
  overload_config.arq.queue_capacity = 8;
  overload_config.duration_s = 0.5;
  overload_config.drain_grace_s = 10.0;
  const auto overload = run_host_ingest(overload_config);
  const auto& os = overload.stats;
  if (!os.complete || os.content_mismatches != 0 ||
      os.frames_accepted + os.reports_shed != os.reports_offered) {
    std::fprintf(stderr,
                 "exp_host_ingest: overload pass broke the shedding ledger "
                 "(offered %" PRIu64 " accepted %" PRIu64 " shed %" PRIu64 " mismatches %" PRIu64
                 ")\n",
                 os.reports_offered, os.frames_accepted, os.reports_shed, os.content_mismatches);
    return 1;
  }
  const double host_drop_rate =
      os.reports_offered > 0
          ? static_cast<double>(os.reports_shed) / static_cast<double>(os.reports_offered)
          : 0.0;

  const auto& rs = reference.stats;
  const double frames_per_s =
      host_wall_s > 0.0 ? static_cast<double>(rs.frames_accepted) / host_wall_s : 0.0;
  std::printf("[exp_host_ingest] %zu devices, %" PRIu64 " frames accepted: %.2f s "
              "(%.0f frames/s, 1 thread)\n",
              devices, rs.frames_accepted, host_wall_s, frames_per_s);
  std::printf("  lost %" PRIu64 "  corrupted %" PRIu64 "  reordered %" PRIu64
              "  crc-rejected %" PRIu64 "  residual gaps %" PRIu64 "  mismatches %" PRIu64 "\n",
              rs.link_frames_lost, rs.link_frames_corrupted, rs.link_frames_reordered,
              rs.frames_crc_rejected, rs.sequence_gaps, rs.content_mismatches);
  std::printf("  thread bit-identity %s, overload drop rate %.4f (%" PRIu64 " of %" PRIu64
              " offered shed at the device)\n",
              host_bit_identical ? "OK" : "DIVERGED", host_drop_rate, os.reports_shed,
              os.reports_offered);

  distscroll::util::BenchReport report;
  report.name = "exp_host_ingest";
  report.cells = devices;
  report.threads = 1;  // the timed reference pass
  report.hardware_threads = study::resolve_sweep_threads(0);
  // The host reference wall doubles as sequential_wall_s so the
  // standard bench_compare wall gate applies unchanged.
  report.sequential_wall_s = host_wall_s;
  report.parallel_wall_s = host_wall_s;
  report.speedup = 1.0;
  report.bit_identical = host_bit_identical;
  report.tracing_compiled = distscroll::obs::Tracer::compiled_in();
  report.batch_width = 0;  // no sweep-style batched pass in this bench
  report.peak_rss_bytes = study::sweep_peak_rss_bytes();
  report.host_devices = devices;
  report.host_wall_s = host_wall_s;
  report.host_frames_per_s = frames_per_s;
  report.host_drop_rate = host_drop_rate;
  report.host_bit_identical = host_bit_identical;
  report.metrics_json = reference_metrics.to_json_fields(4);
  if (!distscroll::util::write_bench_report(report)) {
    std::fprintf(stderr, "exp_host_ingest: could not write BENCH json\n");
    return 1;
  }

  return host_bit_identical ? 0 : 1;
}
