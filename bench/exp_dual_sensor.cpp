// Ablation for the board's second (unused) distance sensor, Section 4:
// what does resolving the < 4 cm fold-back buy?
//
// Condition A (prototype, single sensor): readings below ~4 cm alias to
// farther distances; holding the device too close silently scrolls to a
// wrong entry.
// Condition B (dual sensor): the recessed second ranger disambiguates;
// fold-zone samples are recognised ("too close") and never corrupt the
// selection — and they become a reliable turbo signal.
//
// Run on the real device: sweep intrusion depths, count false cursor
// moves while the device dips below the near bound and returns.
#include <cstdio>

#include "core/distscroll_device.h"
#include "menu/menu_builder.h"
#include "study/report.h"
#include "util/csv.h"

using namespace distscroll;

namespace {

struct DipResult {
  int false_moves = 0;     // cursor left the held entry during the dip
  bool recovered = true;   // cursor back on the entry after the dip
};

DipResult run_dip(bool dual, double dip_cm, std::uint64_t seed) {
  auto menu_root = menu::make_flat_menu(8);
  sim::EventQueue queue;
  core::DistScrollDevice::Config config;
  config.use_dual_sensor = dual;
  double distance = 17.0;
  core::DistScrollDevice device(config, *menu_root, queue, sim::Rng(seed));
  device.set_distance_provider([&](util::Seconds) { return util::Centimeters{distance}; });
  device.power_on();

  // Park on the NEAREST entry (island 0): the dip to < 4 cm then passes
  // only through the unmapped over-range region on the way in, so any
  // cursor motion during the hold is a genuine fold-back alias, not
  // legitimate tracking.
  const auto& mapper = device.mapper();
  const std::size_t held = mapper.entries() - 1;  // toward-user-down: island 0
  distance = mapper.centre_distance(0).value;
  queue.run_until(util::Seconds{1.0});
  if (device.cursor().index() != held) return {99, false};

  // Ramp below the peak, hold for a second, ramp back.
  DipResult result;
  auto ramp_to = [&](double target, double duration) {
    const double from = distance;
    const double t0 = queue.now().value;
    for (double t = 0.0; t < duration; t += 0.02) {
      distance = from + (target - from) * (t / duration);
      queue.run_until(util::Seconds{t0 + t});
    }
    distance = target;
  };
  ramp_to(dip_cm, 0.4);
  const double hold0 = queue.now().value;
  while (queue.now().value < hold0 + 1.0) {
    queue.run_until(util::Seconds{queue.now().value + 0.02});
    if (device.cursor().index() != held) ++result.false_moves;
  }
  ramp_to(mapper.centre_distance(0).value, 0.4);
  queue.run_until(util::Seconds{queue.now().value + 0.5});
  result.recovered = device.cursor().index() == held;
  return result;
}

}  // namespace

int main() {
  std::printf("=== Second-sensor ablation: the < 4 cm fold-back ambiguity ===\n");
  std::printf("(park on entry 6/8, dip the device to depth d for 1 s, return)\n\n");
  study::Table table({"dip depth [cm]", "sensors", "false moves", "recovered"});
  util::CsvWriter csv("exp_dual_sensor.csv",
                      {"dip_cm", "dual", "false_moves", "recovered"});
  for (const double dip : {2.6, 1.8, 1.2, 0.6}) {
    for (const bool dual : {false, true}) {
      const auto result = run_dip(dual, dip, 0xDD5);
      table.add_row({study::fmt(dip, 1), dual ? "dual (recessed 2nd)" : "single (prototype)",
                     std::to_string(result.false_moves), result.recovered ? "yes" : "NO"});
      csv.row({dip, dual ? 1.0 : 0.0, static_cast<double>(result.false_moves),
               result.recovered ? 1.0 : 0.0});
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("expected shape: single-sensor dips alias into the island range and\n"
              "drag the cursor (the paper tolerates this because displays are\n"
              "unreadable that close); the dual-sensor build recognises the fold\n"
              "and freezes the selection — making the turbo zone safe to use.\n");
  std::printf("wrote exp_dual_sensor.csv\n");
  return 0;
}
