// Text entry through scrolling: distance vs the related-work techniques.
//
// The paper's related work (TiltText, Unigesture) is about zone-based
// text entry with word disambiguation; the DistScroll board carries the
// accelerometer exactly "to reproduce results published by others".
// This experiment does that reproduction: the same 8-zone keyboard and
// T9-style dictionary driven by distance, tilt and buttons, with and
// without thick gloves. Metrics: words per minute, keystrokes per
// character, errors.
#include <cstdio>
#include <memory>

#include "baselines/button_scroll.h"
#include "baselines/distance_scroll.h"
#include "baselines/tilt_scroll.h"
#include "study/report.h"
#include "text/text_entry.h"
#include "util/csv.h"

using namespace distscroll;

namespace {

constexpr const char* kPhrases[] = {
    "the world is good",
    "we can help you",
    "write the answer down",
    "people live in the house",
    "find the right way home",
};

std::unique_ptr<baselines::ScrollTechnique> make_technique(int which, sim::Rng rng) {
  switch (which) {
    case 0: {
      // Zone selection spans the full arm range: 8 zones over 4..30 cm.
      baselines::DistanceScroll::Config config;
      return std::make_unique<baselines::DistanceScroll>(config, rng);
    }
    case 1:
      return std::make_unique<baselines::TiltScroll>(baselines::TiltScroll::Config{}, rng);
    default:
      return std::make_unique<baselines::ButtonScroll>();
  }
}

}  // namespace

int main() {
  const auto dictionary = text::Dictionary::common_english();
  text::TextEntrySession session(dictionary);

  std::printf("=== Zone-keyboard text entry (Unigesture-style) by technique ===\n");
  std::printf("(8 letter zones + dictionary disambiguation; 5 test phrases)\n\n");

  study::Table table({"technique", "hands", "WPM", "KSPC", "success", "err/word"});
  util::CsvWriter csv("exp_text_entry.csv",
                      {"technique", "glove", "wpm", "kspc", "success_rate", "errors_per_word"});
  const char* names[] = {"DistScroll", "TiltScroll", "ButtonScroll"};
  for (const auto glove : {human::Glove::None, human::Glove::Thick}) {
    for (int which = 0; which < 3; ++which) {
      sim::Rng rng(0x7E27 + static_cast<std::uint64_t>(which));
      auto technique = make_technique(which, rng.fork(1));
      const auto profile = human::UserProfile::average().with_glove(glove);
      std::vector<text::WordResult> all;
      for (std::size_t p = 0; p < std::size(kPhrases); ++p) {
        const auto results =
            session.enter_phrase(*technique, kPhrases[p], profile, rng.fork(100 + p));
        all.insert(all.end(), results.begin(), results.end());
      }
      const auto stats = text::TextEntrySession::aggregate(all);
      const char* hands = glove == human::Glove::None ? "bare" : "thick gloves";
      table.add_row({names[which], hands, study::fmt(stats.words_per_minute, 1),
                     study::fmt(stats.keystrokes_per_char, 2),
                     study::fmt(stats.success_rate, 2),
                     study::fmt(stats.errors_per_word, 2)});
      csv.row({std::vector<std::string>{names[which], hands,
                                        study::fmt(stats.words_per_minute, 2),
                                        study::fmt(stats.keystrokes_per_char, 3),
                                        study::fmt(stats.success_rate, 3),
                                        study::fmt(stats.errors_per_word, 3)}});
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("expected shape: buttons lead bare-handed (small fast presses);\n"
              "distance and tilt land in the same few-WPM band the zone-gesture\n"
              "literature reports; with thick gloves the button keyboard drops\n"
              "hard while distance entry barely changes — text entry inherits\n"
              "the same glove story as menu scrolling.\n");
  std::printf("wrote exp_text_entry.csv\n");
  return 0;
}
