// Section 7, Q5 / Section 5.1: "Is it more intuitive to scroll down
// towards oneself or away from oneself?"
//
// We model the population prior: most users expect "pulling toward me =
// pulling the list toward me = scroll down" (document-metaphor users)
// while a minority holds the opposite (scrollbar-metaphor users). A
// participant whose prior CONFLICTS with the device mapping starts with
// inverted aim (they reach the wrong way first), un-learning it over
// trials. The experiment measures both mappings over a mixed population.
//
// Each (mapping, participant) pair is one SweepRunner cell (RNG forked
// off the cell index; bit-identical at any thread count), timed into
// BENCH_exp_direction_mapping.json.
#include <algorithm>
#include <cstdio>

#include "baselines/distance_scroll.h"
#include "study/report.h"
#include "study/sweep_runner.h"
#include "study/task.h"
#include "study/trial.h"
#include "util/csv.h"

using namespace distscroll;

namespace {

constexpr std::size_t kUsers = 10;
constexpr std::size_t kTrialsPerUser = 12;

/// Wraps DistanceScroll: a participant with a conflicting mental model
/// initially aims at the mirrored entry; the confusion probability
/// decays as they adapt.
class ConflictedAim final : public baselines::ScrollTechnique {
 public:
  ConflictedAim(baselines::DistanceScroll& inner, double initial_confusion, sim::Rng rng)
      : inner_(&inner), confusion_(initial_confusion), rng_(rng) {}

  std::string name() const override { return inner_->name(); }
  baselines::ControlSpec spec() const override { return inner_->spec(); }
  void reset(std::size_t level_size, std::size_t start) override {
    inner_->reset(level_size, start);
    // Adaptation between trials: confusion decays.
    confusion_ *= 0.7;
  }
  std::size_t cursor() const override { return inner_->cursor(); }
  std::size_t level_size() const override { return inner_->level_size(); }
  void on_control(util::Seconds now, double u) override { inner_->on_control(now, u); }
  std::optional<double> target_u(std::size_t target) const override {
    if (const_cast<ConflictedAim*>(this)->rng_.bernoulli(confusion_)) {
      // Reaches the wrong way: aims at the mirrored entry.
      return inner_->target_u(inner_->level_size() - 1 - target);
    }
    return inner_->target_u(target);
  }
  double target_width_u(std::size_t target) const override {
    return inner_->target_width_u(target);
  }

 private:
  baselines::DistanceScroll* inner_;
  double confusion_;
  sim::Rng rng_;
};

/// One participant's trials under one mapping; merged per mapping below.
struct CellResult {
  double time_sum = 0.0;
  int time_count = 0;
  double errors = 0.0;
  double first_trial_time = 0.0;

  friend bool operator==(const CellResult&, const CellResult&) = default;
};

CellResult run_user(core::ScrollDirection direction, std::size_t user, sim::Rng rng) {
  // 70% of users expect toward-user = down; 30% the opposite.
  const bool expects_down = user < 7;
  const bool conflicted =
      (direction == core::ScrollDirection::TowardUserScrollsDown) ? !expects_down : expects_down;

  baselines::DistanceScroll::Config config;
  config.scroll.direction = direction;
  baselines::DistanceScroll inner(config, rng.fork(1));
  ConflictedAim technique(inner, conflicted ? 0.8 : 0.05, rng.fork(2));

  sim::Rng task_rng = rng.fork(3);
  const auto tasks = study::random_tasks(task_rng, 10, kTrialsPerUser);
  const auto profile = human::UserProfile::average();
  CellResult result;
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const auto record = study::run_trial(technique, tasks[i], profile, rng.fork(100 + i));
    if (record.outcome.success) {
      result.time_sum += record.outcome.time_s;
      ++result.time_count;
    }
    if (i == 0) result.first_trial_time = record.outcome.time_s;
    result.errors += record.outcome.wrong_selections;
  }
  return result;
}

const core::ScrollDirection kMappings[] = {core::ScrollDirection::TowardUserScrollsDown,
                                           core::ScrollDirection::TowardUserScrollsUp};

}  // namespace

int main() {
  std::printf("=== Q5: scroll down toward oneself, or away? ===\n");
  std::printf("population: 70%% expect toward-user = down, 30%% the opposite;\n");
  std::printf("conflicted users initially reach the wrong way, adapting over trials.\n\n");

  const study::SweepGrid grid({std::size(kMappings), kUsers});
  const auto cells = study::timed_sweep<CellResult>(
      "exp_direction_mapping", grid.cells(), 0xD1CE, [&](std::size_t index, sim::Rng rng) {
        return run_user(kMappings[grid.coord(index, 0)], grid.coord(index, 1), rng);
      });
  std::printf("\n");

  study::Table table({"device mapping", "mean time[s]", "err/trial", "first-trial time[s]"});
  util::CsvWriter csv("exp_direction_mapping.csv",
                      {"mapping", "mean_time_s", "errors_per_trial", "first_trial_time_s"});
  for (std::size_t m = 0; m < std::size(kMappings); ++m) {
    const char* name = kMappings[m] == core::ScrollDirection::TowardUserScrollsDown
                           ? "toward-user = DOWN"
                           : "toward-user = UP";
    double time_sum = 0.0, errors = 0.0, first_total = 0.0;
    int time_count = 0;
    for (std::size_t user = 0; user < kUsers; ++user) {
      const auto& cell = cells[grid.index({m, user})];
      time_sum += cell.time_sum;
      time_count += cell.time_count;
      errors += cell.errors;
      first_total += cell.first_trial_time;
    }
    const double mean_time = time_sum / std::max(1, time_count);
    const double err_per_trial = errors / (kUsers * kTrialsPerUser);
    const double first_trial = first_total / kUsers;
    table.add_row({name, study::fmt(mean_time, 2), study::fmt(err_per_trial, 3),
                   study::fmt(first_trial, 2)});
    csv.row({std::vector<std::string>{name, study::fmt(mean_time, 3),
                                      study::fmt(err_per_trial, 3),
                                      study::fmt(first_trial, 3)}});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("expected shape: the majority-compatible mapping (toward-user =\n"
              "down) wins on first-trial time and early errors; the gap narrows\n"
              "with practice — matching the paper's intuition that the choice\n"
              "matters most for walk-up use.\n");
  std::printf("wrote exp_direction_mapping.csv\n");
  return 0;
}
