file(REMOVE_RECURSE
  "CMakeFiles/phone_menu_demo.dir/phone_menu_demo.cpp.o"
  "CMakeFiles/phone_menu_demo.dir/phone_menu_demo.cpp.o.d"
  "phone_menu_demo"
  "phone_menu_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phone_menu_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
