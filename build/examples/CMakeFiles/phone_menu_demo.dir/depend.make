# Empty dependencies file for phone_menu_demo.
# This may be replaced when dependencies are built.
