# Empty dependencies file for glove_stocktaking.
# This may be replaced when dependencies are built.
