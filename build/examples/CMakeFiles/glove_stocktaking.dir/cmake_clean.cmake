file(REMOVE_RECURSE
  "CMakeFiles/glove_stocktaking.dir/glove_stocktaking.cpp.o"
  "CMakeFiles/glove_stocktaking.dir/glove_stocktaking.cpp.o.d"
  "glove_stocktaking"
  "glove_stocktaking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/glove_stocktaking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
