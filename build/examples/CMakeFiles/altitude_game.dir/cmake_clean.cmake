file(REMOVE_RECURSE
  "CMakeFiles/altitude_game.dir/altitude_game.cpp.o"
  "CMakeFiles/altitude_game.dir/altitude_game.cpp.o.d"
  "altitude_game"
  "altitude_game.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/altitude_game.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
