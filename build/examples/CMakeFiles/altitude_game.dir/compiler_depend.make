# Empty compiler generated dependencies file for altitude_game.
# This may be replaced when dependencies are built.
