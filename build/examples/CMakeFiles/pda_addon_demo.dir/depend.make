# Empty dependencies file for pda_addon_demo.
# This may be replaced when dependencies are built.
