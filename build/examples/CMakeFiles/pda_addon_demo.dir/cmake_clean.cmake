file(REMOVE_RECURSE
  "CMakeFiles/pda_addon_demo.dir/pda_addon_demo.cpp.o"
  "CMakeFiles/pda_addon_demo.dir/pda_addon_demo.cpp.o.d"
  "pda_addon_demo"
  "pda_addon_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pda_addon_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
