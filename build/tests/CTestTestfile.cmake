# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_smoke[1]_include.cmake")
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_hw[1]_include.cmake")
include("/root/repo/build/tests/test_sensors[1]_include.cmake")
include("/root/repo/build/tests/test_display[1]_include.cmake")
include("/root/repo/build/tests/test_input[1]_include.cmake")
include("/root/repo/build/tests/test_menu[1]_include.cmake")
include("/root/repo/build/tests/test_wireless[1]_include.cmake")
include("/root/repo/build/tests/test_core_island[1]_include.cmake")
include("/root/repo/build/tests/test_core_controller[1]_include.cmake")
include("/root/repo/build/tests/test_core_device[1]_include.cmake")
include("/root/repo/build/tests/test_human[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_study[1]_include.cmake")
include("/root/repo/build/tests/test_core_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_pda[1]_include.cmake")
include("/root/repo/build/tests/test_text[1]_include.cmake")
include("/root/repo/build/tests/test_persistence[1]_include.cmake")
include("/root/repo/build/tests/test_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_calibration_workflow[1]_include.cmake")
include("/root/repo/build/tests/test_game[1]_include.cmake")
include("/root/repo/build/tests/test_regression[1]_include.cmake")
include("/root/repo/build/tests/test_property_sweep[1]_include.cmake")
