file(REMOVE_RECURSE
  "CMakeFiles/test_pda.dir/pda_test.cpp.o"
  "CMakeFiles/test_pda.dir/pda_test.cpp.o.d"
  "test_pda"
  "test_pda.pdb"
  "test_pda[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pda.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
