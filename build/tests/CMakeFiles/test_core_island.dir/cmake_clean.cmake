file(REMOVE_RECURSE
  "CMakeFiles/test_core_island.dir/core_island_test.cpp.o"
  "CMakeFiles/test_core_island.dir/core_island_test.cpp.o.d"
  "test_core_island"
  "test_core_island.pdb"
  "test_core_island[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_island.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
