# Empty compiler generated dependencies file for test_core_island.
# This may be replaced when dependencies are built.
