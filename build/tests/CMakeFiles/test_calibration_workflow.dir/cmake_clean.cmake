file(REMOVE_RECURSE
  "CMakeFiles/test_calibration_workflow.dir/calibration_workflow_test.cpp.o"
  "CMakeFiles/test_calibration_workflow.dir/calibration_workflow_test.cpp.o.d"
  "test_calibration_workflow"
  "test_calibration_workflow.pdb"
  "test_calibration_workflow[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_calibration_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
