# Empty compiler generated dependencies file for test_calibration_workflow.
# This may be replaced when dependencies are built.
