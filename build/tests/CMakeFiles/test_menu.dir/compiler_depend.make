# Empty compiler generated dependencies file for test_menu.
# This may be replaced when dependencies are built.
