file(REMOVE_RECURSE
  "CMakeFiles/test_menu.dir/menu_test.cpp.o"
  "CMakeFiles/test_menu.dir/menu_test.cpp.o.d"
  "test_menu"
  "test_menu.pdb"
  "test_menu[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_menu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
