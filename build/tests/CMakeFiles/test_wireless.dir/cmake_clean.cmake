file(REMOVE_RECURSE
  "CMakeFiles/test_wireless.dir/wireless_test.cpp.o"
  "CMakeFiles/test_wireless.dir/wireless_test.cpp.o.d"
  "test_wireless"
  "test_wireless.pdb"
  "test_wireless[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wireless.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
