file(REMOVE_RECURSE
  "CMakeFiles/test_human.dir/human_test.cpp.o"
  "CMakeFiles/test_human.dir/human_test.cpp.o.d"
  "test_human"
  "test_human.pdb"
  "test_human[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_human.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
