file(REMOVE_RECURSE
  "CMakeFiles/test_core_controller.dir/core_controller_test.cpp.o"
  "CMakeFiles/test_core_controller.dir/core_controller_test.cpp.o.d"
  "test_core_controller"
  "test_core_controller.pdb"
  "test_core_controller[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_controller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
