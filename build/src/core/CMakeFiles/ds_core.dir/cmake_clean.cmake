file(REMOVE_RECURSE
  "CMakeFiles/ds_core.dir/calibration.cpp.o"
  "CMakeFiles/ds_core.dir/calibration.cpp.o.d"
  "CMakeFiles/ds_core.dir/calibration_store.cpp.o"
  "CMakeFiles/ds_core.dir/calibration_store.cpp.o.d"
  "CMakeFiles/ds_core.dir/device_calibration.cpp.o"
  "CMakeFiles/ds_core.dir/device_calibration.cpp.o.d"
  "CMakeFiles/ds_core.dir/distscroll_device.cpp.o"
  "CMakeFiles/ds_core.dir/distscroll_device.cpp.o.d"
  "CMakeFiles/ds_core.dir/dual_sensor.cpp.o"
  "CMakeFiles/ds_core.dir/dual_sensor.cpp.o.d"
  "CMakeFiles/ds_core.dir/fast_scroll.cpp.o"
  "CMakeFiles/ds_core.dir/fast_scroll.cpp.o.d"
  "CMakeFiles/ds_core.dir/island_mapper.cpp.o"
  "CMakeFiles/ds_core.dir/island_mapper.cpp.o.d"
  "CMakeFiles/ds_core.dir/scroll_controller.cpp.o"
  "CMakeFiles/ds_core.dir/scroll_controller.cpp.o.d"
  "CMakeFiles/ds_core.dir/speed_zoom.cpp.o"
  "CMakeFiles/ds_core.dir/speed_zoom.cpp.o.d"
  "libds_core.a"
  "libds_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ds_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
