
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/calibration.cpp" "src/core/CMakeFiles/ds_core.dir/calibration.cpp.o" "gcc" "src/core/CMakeFiles/ds_core.dir/calibration.cpp.o.d"
  "/root/repo/src/core/calibration_store.cpp" "src/core/CMakeFiles/ds_core.dir/calibration_store.cpp.o" "gcc" "src/core/CMakeFiles/ds_core.dir/calibration_store.cpp.o.d"
  "/root/repo/src/core/device_calibration.cpp" "src/core/CMakeFiles/ds_core.dir/device_calibration.cpp.o" "gcc" "src/core/CMakeFiles/ds_core.dir/device_calibration.cpp.o.d"
  "/root/repo/src/core/distscroll_device.cpp" "src/core/CMakeFiles/ds_core.dir/distscroll_device.cpp.o" "gcc" "src/core/CMakeFiles/ds_core.dir/distscroll_device.cpp.o.d"
  "/root/repo/src/core/dual_sensor.cpp" "src/core/CMakeFiles/ds_core.dir/dual_sensor.cpp.o" "gcc" "src/core/CMakeFiles/ds_core.dir/dual_sensor.cpp.o.d"
  "/root/repo/src/core/fast_scroll.cpp" "src/core/CMakeFiles/ds_core.dir/fast_scroll.cpp.o" "gcc" "src/core/CMakeFiles/ds_core.dir/fast_scroll.cpp.o.d"
  "/root/repo/src/core/island_mapper.cpp" "src/core/CMakeFiles/ds_core.dir/island_mapper.cpp.o" "gcc" "src/core/CMakeFiles/ds_core.dir/island_mapper.cpp.o.d"
  "/root/repo/src/core/scroll_controller.cpp" "src/core/CMakeFiles/ds_core.dir/scroll_controller.cpp.o" "gcc" "src/core/CMakeFiles/ds_core.dir/scroll_controller.cpp.o.d"
  "/root/repo/src/core/speed_zoom.cpp" "src/core/CMakeFiles/ds_core.dir/speed_zoom.cpp.o" "gcc" "src/core/CMakeFiles/ds_core.dir/speed_zoom.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ds_util.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/ds_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sensors/CMakeFiles/ds_sensors.dir/DependInfo.cmake"
  "/root/repo/build/src/display/CMakeFiles/ds_display.dir/DependInfo.cmake"
  "/root/repo/build/src/input/CMakeFiles/ds_input.dir/DependInfo.cmake"
  "/root/repo/build/src/menu/CMakeFiles/ds_menu.dir/DependInfo.cmake"
  "/root/repo/build/src/wireless/CMakeFiles/ds_wireless.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
