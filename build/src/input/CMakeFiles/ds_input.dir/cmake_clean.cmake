file(REMOVE_RECURSE
  "CMakeFiles/ds_input.dir/button.cpp.o"
  "CMakeFiles/ds_input.dir/button.cpp.o.d"
  "libds_input.a"
  "libds_input.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ds_input.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
