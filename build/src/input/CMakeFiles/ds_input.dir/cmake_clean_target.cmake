file(REMOVE_RECURSE
  "libds_input.a"
)
