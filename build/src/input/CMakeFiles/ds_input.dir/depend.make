# Empty dependencies file for ds_input.
# This may be replaced when dependencies are built.
