file(REMOVE_RECURSE
  "libds_menu.a"
)
