
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/menu/menu_builder.cpp" "src/menu/CMakeFiles/ds_menu.dir/menu_builder.cpp.o" "gcc" "src/menu/CMakeFiles/ds_menu.dir/menu_builder.cpp.o.d"
  "/root/repo/src/menu/phone_menu.cpp" "src/menu/CMakeFiles/ds_menu.dir/phone_menu.cpp.o" "gcc" "src/menu/CMakeFiles/ds_menu.dir/phone_menu.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ds_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
