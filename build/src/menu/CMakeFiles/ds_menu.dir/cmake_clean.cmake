file(REMOVE_RECURSE
  "CMakeFiles/ds_menu.dir/menu_builder.cpp.o"
  "CMakeFiles/ds_menu.dir/menu_builder.cpp.o.d"
  "CMakeFiles/ds_menu.dir/phone_menu.cpp.o"
  "CMakeFiles/ds_menu.dir/phone_menu.cpp.o.d"
  "libds_menu.a"
  "libds_menu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ds_menu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
