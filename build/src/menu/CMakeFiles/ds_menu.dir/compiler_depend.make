# Empty compiler generated dependencies file for ds_menu.
# This may be replaced when dependencies are built.
