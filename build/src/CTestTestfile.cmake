# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("sim")
subdirs("hw")
subdirs("sensors")
subdirs("display")
subdirs("input")
subdirs("menu")
subdirs("wireless")
subdirs("core")
subdirs("pda")
subdirs("text")
subdirs("game")
subdirs("baselines")
subdirs("human")
subdirs("study")
