file(REMOVE_RECURSE
  "CMakeFiles/ds_study.dir/device_study.cpp.o"
  "CMakeFiles/ds_study.dir/device_study.cpp.o.d"
  "CMakeFiles/ds_study.dir/metrics.cpp.o"
  "CMakeFiles/ds_study.dir/metrics.cpp.o.d"
  "CMakeFiles/ds_study.dir/report.cpp.o"
  "CMakeFiles/ds_study.dir/report.cpp.o.d"
  "CMakeFiles/ds_study.dir/session.cpp.o"
  "CMakeFiles/ds_study.dir/session.cpp.o.d"
  "CMakeFiles/ds_study.dir/task.cpp.o"
  "CMakeFiles/ds_study.dir/task.cpp.o.d"
  "CMakeFiles/ds_study.dir/trial.cpp.o"
  "CMakeFiles/ds_study.dir/trial.cpp.o.d"
  "libds_study.a"
  "libds_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ds_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
