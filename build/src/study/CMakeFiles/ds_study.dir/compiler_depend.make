# Empty compiler generated dependencies file for ds_study.
# This may be replaced when dependencies are built.
