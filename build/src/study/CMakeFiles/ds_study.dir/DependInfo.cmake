
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/study/device_study.cpp" "src/study/CMakeFiles/ds_study.dir/device_study.cpp.o" "gcc" "src/study/CMakeFiles/ds_study.dir/device_study.cpp.o.d"
  "/root/repo/src/study/metrics.cpp" "src/study/CMakeFiles/ds_study.dir/metrics.cpp.o" "gcc" "src/study/CMakeFiles/ds_study.dir/metrics.cpp.o.d"
  "/root/repo/src/study/report.cpp" "src/study/CMakeFiles/ds_study.dir/report.cpp.o" "gcc" "src/study/CMakeFiles/ds_study.dir/report.cpp.o.d"
  "/root/repo/src/study/session.cpp" "src/study/CMakeFiles/ds_study.dir/session.cpp.o" "gcc" "src/study/CMakeFiles/ds_study.dir/session.cpp.o.d"
  "/root/repo/src/study/task.cpp" "src/study/CMakeFiles/ds_study.dir/task.cpp.o" "gcc" "src/study/CMakeFiles/ds_study.dir/task.cpp.o.d"
  "/root/repo/src/study/trial.cpp" "src/study/CMakeFiles/ds_study.dir/trial.cpp.o" "gcc" "src/study/CMakeFiles/ds_study.dir/trial.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ds_util.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ds_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/ds_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/human/CMakeFiles/ds_human.dir/DependInfo.cmake"
  "/root/repo/build/src/menu/CMakeFiles/ds_menu.dir/DependInfo.cmake"
  "/root/repo/build/src/display/CMakeFiles/ds_display.dir/DependInfo.cmake"
  "/root/repo/build/src/input/CMakeFiles/ds_input.dir/DependInfo.cmake"
  "/root/repo/build/src/wireless/CMakeFiles/ds_wireless.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/ds_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sensors/CMakeFiles/ds_sensors.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
