file(REMOVE_RECURSE
  "libds_study.a"
)
