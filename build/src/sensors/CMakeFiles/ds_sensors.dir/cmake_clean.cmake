file(REMOVE_RECURSE
  "CMakeFiles/ds_sensors.dir/adxl311.cpp.o"
  "CMakeFiles/ds_sensors.dir/adxl311.cpp.o.d"
  "CMakeFiles/ds_sensors.dir/gp2d120.cpp.o"
  "CMakeFiles/ds_sensors.dir/gp2d120.cpp.o.d"
  "libds_sensors.a"
  "libds_sensors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ds_sensors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
