# Empty dependencies file for ds_sensors.
# This may be replaced when dependencies are built.
