file(REMOVE_RECURSE
  "libds_sensors.a"
)
