file(REMOVE_RECURSE
  "CMakeFiles/ds_human.dir/motion_planner.cpp.o"
  "CMakeFiles/ds_human.dir/motion_planner.cpp.o.d"
  "CMakeFiles/ds_human.dir/user_profile.cpp.o"
  "CMakeFiles/ds_human.dir/user_profile.cpp.o.d"
  "libds_human.a"
  "libds_human.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ds_human.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
