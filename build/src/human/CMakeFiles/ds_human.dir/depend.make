# Empty dependencies file for ds_human.
# This may be replaced when dependencies are built.
