file(REMOVE_RECURSE
  "libds_human.a"
)
