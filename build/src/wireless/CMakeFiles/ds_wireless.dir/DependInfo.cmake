
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wireless/host_logger.cpp" "src/wireless/CMakeFiles/ds_wireless.dir/host_logger.cpp.o" "gcc" "src/wireless/CMakeFiles/ds_wireless.dir/host_logger.cpp.o.d"
  "/root/repo/src/wireless/packet.cpp" "src/wireless/CMakeFiles/ds_wireless.dir/packet.cpp.o" "gcc" "src/wireless/CMakeFiles/ds_wireless.dir/packet.cpp.o.d"
  "/root/repo/src/wireless/rf_link.cpp" "src/wireless/CMakeFiles/ds_wireless.dir/rf_link.cpp.o" "gcc" "src/wireless/CMakeFiles/ds_wireless.dir/rf_link.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ds_util.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/ds_hw.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
