file(REMOVE_RECURSE
  "CMakeFiles/ds_wireless.dir/host_logger.cpp.o"
  "CMakeFiles/ds_wireless.dir/host_logger.cpp.o.d"
  "CMakeFiles/ds_wireless.dir/packet.cpp.o"
  "CMakeFiles/ds_wireless.dir/packet.cpp.o.d"
  "CMakeFiles/ds_wireless.dir/rf_link.cpp.o"
  "CMakeFiles/ds_wireless.dir/rf_link.cpp.o.d"
  "libds_wireless.a"
  "libds_wireless.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ds_wireless.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
