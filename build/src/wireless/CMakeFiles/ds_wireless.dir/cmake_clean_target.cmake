file(REMOVE_RECURSE
  "libds_wireless.a"
)
