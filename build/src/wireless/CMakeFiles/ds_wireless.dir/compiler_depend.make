# Empty compiler generated dependencies file for ds_wireless.
# This may be replaced when dependencies are built.
