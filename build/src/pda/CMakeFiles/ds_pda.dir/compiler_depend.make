# Empty compiler generated dependencies file for ds_pda.
# This may be replaced when dependencies are built.
