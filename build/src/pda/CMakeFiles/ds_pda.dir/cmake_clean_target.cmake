file(REMOVE_RECURSE
  "libds_pda.a"
)
