file(REMOVE_RECURSE
  "CMakeFiles/ds_pda.dir/pda_addon.cpp.o"
  "CMakeFiles/ds_pda.dir/pda_addon.cpp.o.d"
  "CMakeFiles/ds_pda.dir/pda_host.cpp.o"
  "CMakeFiles/ds_pda.dir/pda_host.cpp.o.d"
  "libds_pda.a"
  "libds_pda.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ds_pda.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
