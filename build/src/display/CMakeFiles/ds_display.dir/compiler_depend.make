# Empty compiler generated dependencies file for ds_display.
# This may be replaced when dependencies are built.
