file(REMOVE_RECURSE
  "CMakeFiles/ds_display.dir/bt96040.cpp.o"
  "CMakeFiles/ds_display.dir/bt96040.cpp.o.d"
  "CMakeFiles/ds_display.dir/display_driver.cpp.o"
  "CMakeFiles/ds_display.dir/display_driver.cpp.o.d"
  "CMakeFiles/ds_display.dir/font.cpp.o"
  "CMakeFiles/ds_display.dir/font.cpp.o.d"
  "libds_display.a"
  "libds_display.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ds_display.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
