
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/display/bt96040.cpp" "src/display/CMakeFiles/ds_display.dir/bt96040.cpp.o" "gcc" "src/display/CMakeFiles/ds_display.dir/bt96040.cpp.o.d"
  "/root/repo/src/display/display_driver.cpp" "src/display/CMakeFiles/ds_display.dir/display_driver.cpp.o" "gcc" "src/display/CMakeFiles/ds_display.dir/display_driver.cpp.o.d"
  "/root/repo/src/display/font.cpp" "src/display/CMakeFiles/ds_display.dir/font.cpp.o" "gcc" "src/display/CMakeFiles/ds_display.dir/font.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ds_util.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/ds_hw.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
