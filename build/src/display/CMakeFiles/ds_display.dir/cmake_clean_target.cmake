file(REMOVE_RECURSE
  "libds_display.a"
)
