file(REMOVE_RECURSE
  "libds_baselines.a"
)
