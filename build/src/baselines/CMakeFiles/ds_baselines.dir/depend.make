# Empty dependencies file for ds_baselines.
# This may be replaced when dependencies are built.
