file(REMOVE_RECURSE
  "CMakeFiles/ds_baselines.dir/button_scroll.cpp.o"
  "CMakeFiles/ds_baselines.dir/button_scroll.cpp.o.d"
  "CMakeFiles/ds_baselines.dir/distance_scroll.cpp.o"
  "CMakeFiles/ds_baselines.dir/distance_scroll.cpp.o.d"
  "CMakeFiles/ds_baselines.dir/radial_scroll.cpp.o"
  "CMakeFiles/ds_baselines.dir/radial_scroll.cpp.o.d"
  "CMakeFiles/ds_baselines.dir/tilt_scroll.cpp.o"
  "CMakeFiles/ds_baselines.dir/tilt_scroll.cpp.o.d"
  "CMakeFiles/ds_baselines.dir/wheel_scroll.cpp.o"
  "CMakeFiles/ds_baselines.dir/wheel_scroll.cpp.o.d"
  "libds_baselines.a"
  "libds_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ds_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
