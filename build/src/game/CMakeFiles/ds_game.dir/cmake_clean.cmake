file(REMOVE_RECURSE
  "CMakeFiles/ds_game.dir/altitude_game.cpp.o"
  "CMakeFiles/ds_game.dir/altitude_game.cpp.o.d"
  "libds_game.a"
  "libds_game.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ds_game.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
