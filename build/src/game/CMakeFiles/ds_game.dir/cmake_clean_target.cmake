file(REMOVE_RECURSE
  "libds_game.a"
)
