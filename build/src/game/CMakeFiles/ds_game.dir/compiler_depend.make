# Empty compiler generated dependencies file for ds_game.
# This may be replaced when dependencies are built.
