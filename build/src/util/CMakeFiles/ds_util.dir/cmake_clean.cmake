file(REMOVE_RECURSE
  "CMakeFiles/ds_util.dir/ascii_plot.cpp.o"
  "CMakeFiles/ds_util.dir/ascii_plot.cpp.o.d"
  "CMakeFiles/ds_util.dir/crc.cpp.o"
  "CMakeFiles/ds_util.dir/crc.cpp.o.d"
  "CMakeFiles/ds_util.dir/csv.cpp.o"
  "CMakeFiles/ds_util.dir/csv.cpp.o.d"
  "CMakeFiles/ds_util.dir/stats.cpp.o"
  "CMakeFiles/ds_util.dir/stats.cpp.o.d"
  "libds_util.a"
  "libds_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ds_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
