# Empty dependencies file for ds_text.
# This may be replaced when dependencies are built.
