file(REMOVE_RECURSE
  "libds_text.a"
)
