file(REMOVE_RECURSE
  "CMakeFiles/ds_text.dir/dictionary.cpp.o"
  "CMakeFiles/ds_text.dir/dictionary.cpp.o.d"
  "CMakeFiles/ds_text.dir/text_entry.cpp.o"
  "CMakeFiles/ds_text.dir/text_entry.cpp.o.d"
  "libds_text.a"
  "libds_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ds_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
