
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/adc.cpp" "src/hw/CMakeFiles/ds_hw.dir/adc.cpp.o" "gcc" "src/hw/CMakeFiles/ds_hw.dir/adc.cpp.o.d"
  "/root/repo/src/hw/battery.cpp" "src/hw/CMakeFiles/ds_hw.dir/battery.cpp.o" "gcc" "src/hw/CMakeFiles/ds_hw.dir/battery.cpp.o.d"
  "/root/repo/src/hw/gpio.cpp" "src/hw/CMakeFiles/ds_hw.dir/gpio.cpp.o" "gcc" "src/hw/CMakeFiles/ds_hw.dir/gpio.cpp.o.d"
  "/root/repo/src/hw/i2c.cpp" "src/hw/CMakeFiles/ds_hw.dir/i2c.cpp.o" "gcc" "src/hw/CMakeFiles/ds_hw.dir/i2c.cpp.o.d"
  "/root/repo/src/hw/mcu.cpp" "src/hw/CMakeFiles/ds_hw.dir/mcu.cpp.o" "gcc" "src/hw/CMakeFiles/ds_hw.dir/mcu.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ds_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
