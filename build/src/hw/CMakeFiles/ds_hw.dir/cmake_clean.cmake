file(REMOVE_RECURSE
  "CMakeFiles/ds_hw.dir/adc.cpp.o"
  "CMakeFiles/ds_hw.dir/adc.cpp.o.d"
  "CMakeFiles/ds_hw.dir/battery.cpp.o"
  "CMakeFiles/ds_hw.dir/battery.cpp.o.d"
  "CMakeFiles/ds_hw.dir/gpio.cpp.o"
  "CMakeFiles/ds_hw.dir/gpio.cpp.o.d"
  "CMakeFiles/ds_hw.dir/i2c.cpp.o"
  "CMakeFiles/ds_hw.dir/i2c.cpp.o.d"
  "CMakeFiles/ds_hw.dir/mcu.cpp.o"
  "CMakeFiles/ds_hw.dir/mcu.cpp.o.d"
  "libds_hw.a"
  "libds_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ds_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
