# Empty dependencies file for exp_island_mapping.
# This may be replaced when dependencies are built.
