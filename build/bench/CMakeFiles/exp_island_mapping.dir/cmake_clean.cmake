file(REMOVE_RECURSE
  "CMakeFiles/exp_island_mapping.dir/exp_island_mapping.cpp.o"
  "CMakeFiles/exp_island_mapping.dir/exp_island_mapping.cpp.o.d"
  "exp_island_mapping"
  "exp_island_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_island_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
