# Empty dependencies file for exp_power_budget.
# This may be replaced when dependencies are built.
