file(REMOVE_RECURSE
  "CMakeFiles/exp_power_budget.dir/exp_power_budget.cpp.o"
  "CMakeFiles/exp_power_budget.dir/exp_power_budget.cpp.o.d"
  "exp_power_budget"
  "exp_power_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_power_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
