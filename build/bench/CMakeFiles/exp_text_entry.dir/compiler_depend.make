# Empty compiler generated dependencies file for exp_text_entry.
# This may be replaced when dependencies are built.
