file(REMOVE_RECURSE
  "CMakeFiles/exp_text_entry.dir/exp_text_entry.cpp.o"
  "CMakeFiles/exp_text_entry.dir/exp_text_entry.cpp.o.d"
  "exp_text_entry"
  "exp_text_entry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_text_entry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
