file(REMOVE_RECURSE
  "CMakeFiles/exp_fitts_law.dir/exp_fitts_law.cpp.o"
  "CMakeFiles/exp_fitts_law.dir/exp_fitts_law.cpp.o.d"
  "exp_fitts_law"
  "exp_fitts_law.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_fitts_law.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
