# Empty compiler generated dependencies file for exp_fitts_law.
# This may be replaced when dependencies are built.
