file(REMOVE_RECURSE
  "CMakeFiles/exp_range_sweep.dir/exp_range_sweep.cpp.o"
  "CMakeFiles/exp_range_sweep.dir/exp_range_sweep.cpp.o.d"
  "exp_range_sweep"
  "exp_range_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_range_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
