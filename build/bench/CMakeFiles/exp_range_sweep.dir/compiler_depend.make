# Empty compiler generated dependencies file for exp_range_sweep.
# This may be replaced when dependencies are built.
