file(REMOVE_RECURSE
  "CMakeFiles/exp_dual_sensor.dir/exp_dual_sensor.cpp.o"
  "CMakeFiles/exp_dual_sensor.dir/exp_dual_sensor.cpp.o.d"
  "exp_dual_sensor"
  "exp_dual_sensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_dual_sensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
