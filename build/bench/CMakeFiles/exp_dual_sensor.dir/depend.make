# Empty dependencies file for exp_dual_sensor.
# This may be replaced when dependencies are built.
