# Empty compiler generated dependencies file for exp_fast_scroll.
# This may be replaced when dependencies are built.
