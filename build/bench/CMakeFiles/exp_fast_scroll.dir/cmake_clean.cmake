file(REMOVE_RECURSE
  "CMakeFiles/exp_fast_scroll.dir/exp_fast_scroll.cpp.o"
  "CMakeFiles/exp_fast_scroll.dir/exp_fast_scroll.cpp.o.d"
  "exp_fast_scroll"
  "exp_fast_scroll.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_fast_scroll.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
