file(REMOVE_RECURSE
  "CMakeFiles/exp_fatigue.dir/exp_fatigue.cpp.o"
  "CMakeFiles/exp_fatigue.dir/exp_fatigue.cpp.o.d"
  "exp_fatigue"
  "exp_fatigue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_fatigue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
