# Empty dependencies file for exp_fatigue.
# This may be replaced when dependencies are built.
