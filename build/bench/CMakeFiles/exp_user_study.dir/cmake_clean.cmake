file(REMOVE_RECURSE
  "CMakeFiles/exp_user_study.dir/exp_user_study.cpp.o"
  "CMakeFiles/exp_user_study.dir/exp_user_study.cpp.o.d"
  "exp_user_study"
  "exp_user_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_user_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
