# Empty compiler generated dependencies file for exp_user_study.
# This may be replaced when dependencies are built.
