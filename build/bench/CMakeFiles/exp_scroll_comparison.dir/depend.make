# Empty dependencies file for exp_scroll_comparison.
# This may be replaced when dependencies are built.
