file(REMOVE_RECURSE
  "CMakeFiles/exp_scroll_comparison.dir/exp_scroll_comparison.cpp.o"
  "CMakeFiles/exp_scroll_comparison.dir/exp_scroll_comparison.cpp.o.d"
  "exp_scroll_comparison"
  "exp_scroll_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_scroll_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
