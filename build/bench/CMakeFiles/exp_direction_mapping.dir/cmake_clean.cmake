file(REMOVE_RECURSE
  "CMakeFiles/exp_direction_mapping.dir/exp_direction_mapping.cpp.o"
  "CMakeFiles/exp_direction_mapping.dir/exp_direction_mapping.cpp.o.d"
  "exp_direction_mapping"
  "exp_direction_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_direction_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
