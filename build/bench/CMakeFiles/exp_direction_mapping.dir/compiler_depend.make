# Empty compiler generated dependencies file for exp_direction_mapping.
# This may be replaced when dependencies are built.
