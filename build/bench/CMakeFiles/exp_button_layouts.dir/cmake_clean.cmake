file(REMOVE_RECURSE
  "CMakeFiles/exp_button_layouts.dir/exp_button_layouts.cpp.o"
  "CMakeFiles/exp_button_layouts.dir/exp_button_layouts.cpp.o.d"
  "exp_button_layouts"
  "exp_button_layouts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_button_layouts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
