# Empty dependencies file for exp_button_layouts.
# This may be replaced when dependencies are built.
