# Empty compiler generated dependencies file for exp_long_menus.
# This may be replaced when dependencies are built.
