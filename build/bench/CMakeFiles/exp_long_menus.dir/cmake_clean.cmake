file(REMOVE_RECURSE
  "CMakeFiles/exp_long_menus.dir/exp_long_menus.cpp.o"
  "CMakeFiles/exp_long_menus.dir/exp_long_menus.cpp.o.d"
  "exp_long_menus"
  "exp_long_menus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_long_menus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
