file(REMOVE_RECURSE
  "CMakeFiles/exp_wireless_link.dir/exp_wireless_link.cpp.o"
  "CMakeFiles/exp_wireless_link.dir/exp_wireless_link.cpp.o.d"
  "exp_wireless_link"
  "exp_wireless_link.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_wireless_link.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
