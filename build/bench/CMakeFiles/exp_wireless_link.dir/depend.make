# Empty dependencies file for exp_wireless_link.
# This may be replaced when dependencies are built.
