file(REMOVE_RECURSE
  "CMakeFiles/fig5_sensor_curve_log.dir/fig5_sensor_curve_log.cpp.o"
  "CMakeFiles/fig5_sensor_curve_log.dir/fig5_sensor_curve_log.cpp.o.d"
  "fig5_sensor_curve_log"
  "fig5_sensor_curve_log.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_sensor_curve_log.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
