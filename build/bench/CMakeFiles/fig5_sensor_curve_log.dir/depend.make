# Empty dependencies file for fig5_sensor_curve_log.
# This may be replaced when dependencies are built.
