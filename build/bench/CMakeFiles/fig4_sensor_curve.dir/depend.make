# Empty dependencies file for fig4_sensor_curve.
# This may be replaced when dependencies are built.
