#include "baselines/radial_scroll.h"

#include <algorithm>
#include <cmath>

namespace distscroll::baselines {

void RadialScroll::reset(std::size_t level_size, std::size_t start_index) {
  level_size_ = std::max<std::size_t>(1, level_size);
  position_ = static_cast<double>(std::min(start_index, level_size_ - 1));
  have_last_u_ = false;
}

std::size_t RadialScroll::cursor() const {
  const double clamped = std::clamp(position_, 0.0, static_cast<double>(level_size_ - 1));
  return static_cast<std::size_t>(std::lround(clamped));
}

void RadialScroll::on_control(util::Seconds /*now*/, double u) {
  if (!have_last_u_) {
    last_u_ = u;
    have_last_u_ = true;
    return;
  }
  const double du = u - last_u_;
  last_u_ = u;
  position_ += du * config_.entries_per_revolution;
  position_ = std::clamp(position_, 0.0, static_cast<double>(level_size_ - 1));
}

}  // namespace distscroll::baselines
