// Up/down key scrolling with auto-repeat — the mobile-phone joystick
// baseline ("fine movements, e.g. a finger on a mobile phone joystick",
// paper Section 1). Discrete steps; holding a key repeats after an
// initial delay. Small keys are the part gloves ruin.
#pragma once

#include "baselines/scroll_technique.h"
#include "util/units.h"

namespace distscroll::baselines {

class ButtonScroll final : public ScrollTechnique {
 public:
  struct Config {
    util::Seconds repeat_delay{0.5};
    util::Seconds repeat_period{0.08};  // 12.5 steps/s held
  };

  ButtonScroll() : ButtonScroll(Config{}) {}
  explicit ButtonScroll(Config config) : config_(config) {}

  [[nodiscard]] std::string name() const override { return "ButtonScroll"; }
  [[nodiscard]] ControlSpec spec() const override {
    return {ControlStyle::DiscreteSteps, -1.0, 1.0, 0.0, 0.0, "key"};
  }
  void reset(std::size_t level_size, std::size_t start_index) override;
  [[nodiscard]] std::size_t cursor() const override { return cursor_; }
  [[nodiscard]] std::size_t level_size() const override { return level_size_; }
  void on_control(util::Seconds /*now*/, double /*u*/) override {}
  void on_step(util::Seconds now, int delta) override;

  /// Hold semantics for auto-repeat: press and keep the key down...
  void begin_hold(util::Seconds now, int direction);
  /// ...poll while held (applies due repeats)...
  void poll_hold(util::Seconds now);
  /// ...and release.
  void end_hold(util::Seconds now);
  [[nodiscard]] bool holding() const { return holding_; }

  [[nodiscard]] const Config& config() const { return config_; }
  /// Tiny tactile keys: maximally glove-sensitive.
  [[nodiscard]] double glove_sensitivity() const override { return 1.0; }

 private:
  void step(int delta);

  Config config_;
  std::size_t level_size_ = 1;
  std::size_t cursor_ = 0;
  bool holding_ = false;
  int hold_direction_ = 1;
  double next_repeat_s_ = 0.0;
};

}  // namespace distscroll::baselines
