#include "baselines/button_scroll.h"

#include <algorithm>

namespace distscroll::baselines {

void ButtonScroll::reset(std::size_t level_size, std::size_t start_index) {
  level_size_ = std::max<std::size_t>(1, level_size);
  cursor_ = std::min(start_index, level_size_ - 1);
  holding_ = false;
}

void ButtonScroll::step(int delta) {
  long next = static_cast<long>(cursor_) + delta;
  next = std::clamp(next, 0L, static_cast<long>(level_size_) - 1);
  cursor_ = static_cast<std::size_t>(next);
}

void ButtonScroll::on_step(util::Seconds /*now*/, int delta) { step(delta); }

void ButtonScroll::begin_hold(util::Seconds now, int direction) {
  holding_ = true;
  hold_direction_ = direction >= 0 ? 1 : -1;
  step(hold_direction_);  // initial press registers one step
  next_repeat_s_ = now.value + config_.repeat_delay.value;
}

void ButtonScroll::poll_hold(util::Seconds now) {
  if (!holding_) return;
  while (now.value >= next_repeat_s_) {
    step(hold_direction_);
    next_repeat_s_ += config_.repeat_period.value;
  }
}

void ButtonScroll::end_hold(util::Seconds now) {
  poll_hold(now);
  holding_ = false;
}

}  // namespace distscroll::baselines
