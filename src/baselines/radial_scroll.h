// Radial Scroll Tool (Smith & schraefel, paper Section 2): circular
// stylus/finger gestures on a touch screen turn a virtual wheel;
// accumulated angle maps to scrolled entries. Unbounded relative channel
// (you can keep circling). The paper's caveat — "this works only on
// touch screens" and gloves defeat touch sensing — appears as a strong
// glove sensitivity plus a per-trial touch-registration failure
// probability the planner charges time for.
#pragma once

#include "baselines/scroll_technique.h"

namespace distscroll::baselines {

class RadialScroll final : public ScrollTechnique {
 public:
  struct Config {
    double entries_per_revolution = 8.0;
  };

  RadialScroll() : RadialScroll(Config{}) {}
  explicit RadialScroll(Config config) : config_(config) {}

  [[nodiscard]] std::string name() const override { return "RadialScroll"; }
  [[nodiscard]] ControlSpec spec() const override {
    // u = accumulated gesture angle in revolutions; ~2 rev/s is a fast
    // comfortable circling speed.
    return {ControlStyle::RelativeUnbounded, -1e9, 1e9, 0.0, 2.0, "rev"};
  }
  void reset(std::size_t level_size, std::size_t start_index) override;
  [[nodiscard]] std::size_t cursor() const override;
  [[nodiscard]] std::size_t level_size() const override { return level_size_; }
  void on_control(util::Seconds now, double u) override;

  [[nodiscard]] double entries_per_revolution() const { return config_.entries_per_revolution; }
  /// Touch screens and gloves don't mix (capacitive/fine stylus work).
  [[nodiscard]] double glove_sensitivity() const override { return 1.6; }
  /// Needs the stylus/second hand in the classic deployment.
  [[nodiscard]] bool one_handed() const override { return false; }

 private:
  Config config_;
  std::size_t level_size_ = 1;
  double position_ = 0.0;
  double last_u_ = 0.0;
  bool have_last_u_ = false;
};

}  // namespace distscroll::baselines
