#include "baselines/tilt_scroll.h"

#include <algorithm>
#include <cmath>

namespace distscroll::baselines {

void TiltScroll::reset(std::size_t level_size, std::size_t start_index) {
  level_size_ = std::max<std::size_t>(1, level_size);
  position_ = static_cast<double>(std::min(start_index, level_size_ - 1));
  last_sample_s_ = -1.0;
}

std::size_t TiltScroll::cursor() const {
  const double clamped = std::clamp(position_, 0.0, static_cast<double>(level_size_ - 1));
  return static_cast<std::size_t>(std::lround(clamped));
}

void TiltScroll::on_control(util::Seconds now, double u) {
  if (last_sample_s_ < 0.0) {
    last_sample_s_ = now.value;
    return;
  }
  if (now.value - last_sample_s_ < config_.sample_tick.value) return;
  const double dt = now.value - last_sample_s_;
  last_sample_s_ = now.value;

  // Measure the true tilt through the accelerometer (adds noise).
  const util::Volts v = accel_.output_x(util::Radians{u});
  const double measured = accel_.tilt_from_volts(v).value;

  double deflection = 0.0;
  if (std::abs(measured) > config_.deadband_rad) {
    deflection = (std::abs(measured) - config_.deadband_rad) /
                 (config_.max_tilt_rad - config_.deadband_rad);
    deflection = std::clamp(deflection, 0.0, 1.0);
    if (measured < 0.0) deflection = -deflection;
  }
  position_ += deflection * config_.max_velocity * dt;
  position_ = std::clamp(position_, 0.0, static_cast<double>(level_size_ - 1));
}

}  // namespace distscroll::baselines
