// Pull-wheel scrolling in the style of Rantanen et al.'s YoYo interface
// (paper Section 2): a retractable cord turns a wheel; pulled length is
// the input, a spring retracts it. One pull is one "stroke"; during
// retraction the wheel freewheels (no input). Scrolling direction is a
// mode toggled by how the stroke starts in the real device; here the
// planner engages the clutch with a signed direction.
//
// Unlike DistScroll it has moving mechanical parts (the paper's
// argument for an all-solid-state design) — modelled as a jam
// probability per stroke that costs recovery time.
#pragma once

#include "baselines/scroll_technique.h"
#include "sim/random.h"

namespace distscroll::baselines {

class WheelScroll final : public ScrollTechnique {
 public:
  struct Config {
    double stroke_max_cm = 9.0;      // cord travel per pull
    double gain_entries_per_cm = 1.1;
    double jam_probability = 0.01;   // mechanical defect per stroke
    util::Seconds jam_recovery{1.5};
  };

  WheelScroll(Config config, sim::Rng rng) : config_(config), rng_(rng) {}

  [[nodiscard]] std::string name() const override { return "YoYoWheel"; }
  [[nodiscard]] ControlSpec spec() const override {
    return {ControlStyle::RelativeStroke, 0.0, config_.stroke_max_cm, 0.0, 40.0, "cm"};
  }
  void reset(std::size_t level_size, std::size_t start_index) override;
  [[nodiscard]] std::size_t cursor() const override;
  [[nodiscard]] std::size_t level_size() const override { return level_size_; }
  void on_control(util::Seconds now, double u) override;
  void set_engaged(bool engaged) override {
    engaged_ = engaged;
    if (!engaged) stroke_active_checked_ = false;
  }

  /// The planner sets the direction the next stroke scrolls in.
  void set_direction(int direction) { direction_ = direction >= 0 ? 1 : -1; }
  [[nodiscard]] double gain() const { return config_.gain_entries_per_cm; }
  [[nodiscard]] double stroke_max_cm() const { return config_.stroke_max_cm; }

  /// True while a mechanical jam blocks input; clears at `jam_until_`.
  [[nodiscard]] bool jammed(util::Seconds now) const { return now.value < jam_until_s_; }
  [[nodiscard]] util::Seconds jam_recovery() const { return config_.jam_recovery; }

  /// Pulling a cord works with any glove.
  [[nodiscard]] double glove_sensitivity() const override { return 0.25; }

 private:
  Config config_;
  sim::Rng rng_;
  std::size_t level_size_ = 1;
  double position_ = 0.0;
  bool engaged_ = false;
  int direction_ = 1;
  double last_u_ = 0.0;
  bool have_last_u_ = false;
  bool stroke_active_checked_ = false;
  double jam_until_s_ = -1.0;
};

}  // namespace distscroll::baselines
