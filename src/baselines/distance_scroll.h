// DistScroll as a ScrollTechnique: the full sensing path (GP2D120 model,
// ADC quantisation, island mapping, scroll controller) behind the
// generic technique interface so it competes on equal terms with the
// baselines in the Q1 study.
#pragma once

#include <memory>

#include "baselines/scroll_technique.h"
#include "core/island_mapper.h"
#include "core/scroll_controller.h"
#include "core/sensor_curve.h"
#include "sensors/gp2d120.h"
#include "sim/random.h"

namespace distscroll::baselines {

class DistanceScroll final : public ScrollTechnique {
 public:
  struct Config {
    core::SensorCurve curve{};
    core::IslandMapper::Config islands{};
    core::ScrollController::Config scroll{};
    sensors::Gp2d120Model::Config sensor{};
    util::Seconds firmware_tick{20e-3};
    double adc_noise_lsb = 0.5;
  };

  DistanceScroll(Config config, sim::Rng rng);

  [[nodiscard]] std::string name() const override { return "DistScroll"; }
  [[nodiscard]] ControlSpec spec() const override;
  void reset(std::size_t level_size, std::size_t start_index) override;
  [[nodiscard]] std::size_t cursor() const override { return cursor_; }
  [[nodiscard]] std::size_t level_size() const override { return level_size_; }
  void on_control(util::Seconds now, double u) override;
  [[nodiscard]] std::optional<double> target_u(std::size_t target) const override;
  [[nodiscard]] double target_width_u(std::size_t target) const override;
  /// Gross arm movement + one thumb button: nearly glove-insensitive.
  [[nodiscard]] double glove_sensitivity() const override { return 0.15; }

  [[nodiscard]] const core::IslandMapper& mapper() const { return mapper_; }

 private:
  [[nodiscard]] std::size_t island_of_menu_index(std::size_t menu_index) const;

  Config config_;
  sim::Rng rng_;
  // Direct members, rebuilt in place by reset(): run_trial() resets the
  // technique before EVERY trial, and three heap reconstructions per
  // trial dominated the per-trial setup cost. The island table is only
  // recomputed when the level size actually changes.
  sensors::Gp2d120Model ranger_;
  core::IslandMapper mapper_;
  core::ScrollController controller_;
  std::size_t level_size_ = 1;
  std::size_t cursor_ = 0;
  double next_tick_s_ = 0.0;
};

}  // namespace distscroll::baselines
