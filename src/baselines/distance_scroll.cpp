#include "baselines/distance_scroll.h"

#include <algorithm>
#include <cmath>

#include "obs/stage_timer.h"

namespace distscroll::baselines {

DistanceScroll::DistanceScroll(Config config, sim::Rng rng)
    : config_(config),
      rng_(rng),
      ranger_(config_.sensor, rng_.fork(1)),
      mapper_(config_.curve, 1, config_.islands),
      controller_(mapper_, config_.scroll) {
  reset(1, 0);
}

ControlSpec DistanceScroll::spec() const {
  ControlSpec spec;
  spec.style = ControlStyle::AbsolutePosition;
  spec.u_min = 2.0;
  spec.u_max = 40.0;
  spec.u_neutral = (config_.islands.near.value + config_.islands.far.value) / 2.0;
  spec.unit = "cm";
  return spec;
}

void DistanceScroll::reset(std::size_t level_size, std::size_t start_index) {
  ranger_.reset();  // trial clocks restart at zero
  level_size_ = std::max<std::size_t>(1, level_size);
  // The island table is a pure function of (curve, level size, config):
  // reuse it across same-size trials instead of recomputing per trial.
  if (mapper_.entries() != level_size_) {
    mapper_.rebuild(config_.curve, level_size_, config_.islands);
  }
  controller_.reinitialize(config_.scroll);
  cursor_ = std::min(start_index, level_size_ - 1);
  next_tick_s_ = 0.0;
}

void DistanceScroll::on_control(util::Seconds now, double u) {
  // The firmware samples at its own tick, regardless of how densely the
  // planner integrates the hand position.
  if (now.value < next_tick_s_) return;
  next_tick_s_ = now.value + config_.firmware_tick.value;

  util::AdcCounts sampled{0};
  {
    DS_STAGE(AdcSample);
    const util::Volts v = ranger_.output(util::Centimeters{u}, now);
    double counts = v.value / config_.curve.params().vref * 1023.0;
    counts += rng_.gaussian(0.0, config_.adc_noise_lsb);
    counts = std::clamp(counts, 0.0, 1023.0);
    sampled = util::AdcCounts{static_cast<std::uint16_t>(std::lround(counts))};
  }
  DS_STAGE(Controller);
  const auto update = controller_.on_sample(sampled);
  if (update.menu_index) cursor_ = std::min(*update.menu_index, level_size_ - 1);
}

std::size_t DistanceScroll::island_of_menu_index(std::size_t menu_index) const {
  if (config_.scroll.direction == core::ScrollDirection::TowardUserScrollsDown) {
    return level_size_ - 1 - menu_index;
  }
  return menu_index;
}

std::optional<double> DistanceScroll::target_u(std::size_t target) const {
  if (target >= level_size_) return std::nullopt;
  return mapper_.centre_distance(island_of_menu_index(target)).value;
}

double DistanceScroll::target_width_u(std::size_t target) const {
  if (target >= level_size_) return 0.1;
  const auto& island = mapper_.islands()[island_of_menu_index(target)];
  // Convert the island's count bounds back to distances; the width in cm
  // is what the user must hit.
  const double d_low = config_.curve.distance_at(util::AdcCounts{island.high}).value;
  const double d_high = config_.curve.distance_at(util::AdcCounts{island.low}).value;
  return std::max(0.05, d_high - d_low);
}

}  // namespace distscroll::baselines
