// Common interface over scrolling techniques for the comparison study
// (paper Section 7, Q1: "Is distance-based scrolling faster, equal or
// slower than other scrolling techniques?").
//
// Every technique is reduced to the 1-D control channel the user
// actually manipulates — a distance, a wrist angle, a pulled wheel, a
// key, a circular gesture — plus the technique's mapping from that
// channel to a cursor in a list. The human::MotionPlanner drives the
// channel with realistic reaches, tremor and perception delays; the
// technique turns the channel into cursor motion.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "util/units.h"

namespace distscroll::baselines {

enum class ControlStyle : std::uint8_t {
  /// Channel position maps to an absolute cursor position (DistScroll).
  AbsolutePosition,
  /// Channel deflection from neutral sets cursor velocity (tilting).
  RateControl,
  /// Bounded channel; motion while engaged moves the cursor, then the
  /// channel must be clutched back (YoYo pull wheel).
  RelativeStroke,
  /// Unbounded relative channel (circular touch gesture).
  RelativeUnbounded,
  /// Discrete steps (up/down keys with auto-repeat).
  DiscreteSteps,
};

struct ControlSpec {
  ControlStyle style = ControlStyle::AbsolutePosition;
  double u_min = 0.0;       // physical channel range
  double u_max = 1.0;
  double u_neutral = 0.0;   // resting value
  /// Channel units per second the device itself limits (e.g. a wheel
  /// can only be pulled so fast). 0 = only the human limits speed.
  double max_rate = 0.0;
  std::string unit = "u";
};

class ScrollTechnique {
 public:
  virtual ~ScrollTechnique() = default;

  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual ControlSpec spec() const = 0;

  /// Start a trial over a list of `level_size` entries with the cursor
  /// at `start_index`.
  virtual void reset(std::size_t level_size, std::size_t start_index) = 0;

  [[nodiscard]] virtual std::size_t cursor() const = 0;
  [[nodiscard]] virtual std::size_t level_size() const = 0;

  /// Continuous techniques: the channel's value at time `now`. Called
  /// densely (every few ms) by the planner.
  virtual void on_control(util::Seconds now, double u) = 0;

  /// DiscreteSteps techniques: a key event. Default ignores.
  virtual void on_step(util::Seconds /*now*/, int /*delta*/) {}

  /// RelativeStroke techniques: engage/release the clutch. Default
  /// ignores.
  virtual void set_engaged(bool /*engaged*/) {}

  /// AbsolutePosition techniques: the channel value whose target region
  /// maps to `target`, and that region's width (for Fitts aiming).
  [[nodiscard]] virtual std::optional<double> target_u(std::size_t /*target*/) const {
    return std::nullopt;
  }
  [[nodiscard]] virtual double target_width_u(std::size_t /*target*/) const { return 0.1; }

  /// Whether the technique is one-handed and how it degrades with
  /// gloves (scales the planner's fine-motor penalty; 1 = insensitive).
  [[nodiscard]] virtual bool one_handed() const { return true; }
  [[nodiscard]] virtual double glove_sensitivity() const { return 1.0; }
};

}  // namespace distscroll::baselines
