#include "baselines/wheel_scroll.h"

#include <algorithm>
#include <cmath>

namespace distscroll::baselines {

void WheelScroll::reset(std::size_t level_size, std::size_t start_index) {
  level_size_ = std::max<std::size_t>(1, level_size);
  position_ = static_cast<double>(std::min(start_index, level_size_ - 1));
  engaged_ = false;
  have_last_u_ = false;
  jam_until_s_ = -1.0;
}

std::size_t WheelScroll::cursor() const {
  const double clamped = std::clamp(position_, 0.0, static_cast<double>(level_size_ - 1));
  return static_cast<std::size_t>(std::lround(clamped));
}

void WheelScroll::on_control(util::Seconds now, double u) {
  if (!have_last_u_) {
    last_u_ = u;
    have_last_u_ = true;
    return;
  }
  const double du = u - last_u_;
  last_u_ = u;
  if (!engaged_ || jammed(now)) return;
  // Freewheel on retraction: only outward cord travel turns the wheel.
  if (du <= 0.0) return;
  // Each engagement can jam with small probability (checked on the
  // first moving sample of the stroke).
  if (du > 0.0 && !stroke_active_checked_) {
    stroke_active_checked_ = true;
    if (rng_.bernoulli(config_.jam_probability)) {
      jam_until_s_ = now.value + config_.jam_recovery.value;
      return;
    }
  }
  position_ += direction_ * du * config_.gain_entries_per_cm;
  position_ = std::clamp(position_, 0.0, static_cast<double>(level_size_ - 1));
}

}  // namespace distscroll::baselines
