// Tilt-based rate-control scrolling (Rock'n'Scroll / TiltText family,
// paper Section 2).
//
// Wrist tilt beyond a deadband sets cursor velocity; the ADXL311 model
// provides the measured angle (with sensor noise). The paper's critique
// — tilting "changes the viewing angle on the display significantly" and
// "using this input method for a longer period of time is fatiguing" —
// shows up as a readability penalty the planner applies at large angles.
#pragma once

#include "baselines/scroll_technique.h"
#include "sensors/adxl311.h"
#include "sim/random.h"

namespace distscroll::baselines {

class TiltScroll final : public ScrollTechnique {
 public:
  struct Config {
    double deadband_rad = 0.09;
    double max_tilt_rad = 0.55;
    double max_velocity = 14.0;  // entries/s at full tilt
    util::Seconds sample_tick{20e-3};
    sensors::Adxl311Model::Config accel{};
  };

  TiltScroll(Config config, sim::Rng rng)
      : config_(config), accel_(config.accel, rng.fork(1)) {}

  [[nodiscard]] std::string name() const override { return "TiltScroll"; }
  [[nodiscard]] ControlSpec spec() const override {
    return {ControlStyle::RateControl, -config_.max_tilt_rad, config_.max_tilt_rad, 0.0, 0.0,
            "rad"};
  }
  void reset(std::size_t level_size, std::size_t start_index) override;
  [[nodiscard]] std::size_t cursor() const override;
  [[nodiscard]] std::size_t level_size() const override { return level_size_; }
  void on_control(util::Seconds now, double u) override;
  /// Buttons are avoided but the wrist does fine angular work; gloves
  /// hurt moderately (stiff cuffs resist wrist flexion).
  [[nodiscard]] double glove_sensitivity() const override { return 0.5; }

 private:
  Config config_;
  sensors::Adxl311Model accel_;
  std::size_t level_size_ = 1;
  double position_ = 0.0;  // continuous cursor position
  double last_sample_s_ = -1.0;
};

}  // namespace distscroll::baselines
