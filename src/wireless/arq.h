// Reliable delivery on top of the lossy RF link (selective-repeat ARQ).
//
// The raw telemetry path drops whatever the link corrupts; good enough
// for live monitoring, not for study logging that must reconstruct every
// trial (cf. ScrollTest's insistence on trustworthy event streams). This
// layer adds the classic fix:
//
//   device  ArqSender ──frames──▶ RfLink ──▶ ArqReceiver  host
//            ▲                                    │
//            └────────── Ack frames ◀─────────────┘
//
// * 8-bit sequence numbers, a sliding window of `window` unacked frames;
// * per-frame retransmit timers with exponential backoff
//   (initial_timeout · backoff_factor^attempt, capped at max_timeout);
// * a bounded device-side retransmit queue (`queue_capacity`) — the
//   PIC's RAM budget is real, so overload sheds new frames, counted;
// * frames that exhaust `max_attempts` transmissions are dropped and
//   counted rather than wedging the window;
// * the receiver acks every arriving data frame (re-acking duplicates,
//   since the first ack may itself have been lost) and deduplicates via
//   a 64-frame seen-bitmap before delivering upward.
//
// Acks ride the same framing (FrameType::Ack, seq = acked sequence, no
// payload) over whatever reverse channel the caller wires up.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "obs/tracer.h"
#include "sim/event_queue.h"
#include "util/units.h"
#include "wireless/packet.h"

namespace distscroll::wireless {

struct ArqConfig {
  std::size_t window = 8;           // max unacked frames in flight
  std::size_t queue_capacity = 32;  // bounded retransmit queue (device RAM)
  util::Seconds initial_timeout{0.030};
  double backoff_factor = 2.0;
  util::Seconds max_timeout{0.5};
  int max_attempts = 10;  // total transmissions, including the first
};

/// Device-side endpoint: owns the retransmit queue and timers.
class ArqSender {
 public:
  /// Pushes one encoded wire frame at the transport; must be
  /// all-or-nothing and return false when the transport has no room
  /// (UART TX FIFO full). The sender then waits for notify_tx_space().
  using WireSink = std::function<bool(std::span<const std::uint8_t>)>;
  /// Invoked when a frame is acked: (seq, delivery latency from first
  /// enqueue to ack, transmissions used).
  using AckCallback = std::function<void(std::uint8_t, double, int)>;
  /// Invoked when a frame is abandoned after max_attempts.
  using DropCallback = std::function<void(std::uint8_t)>;

  ArqSender(ArqConfig config, sim::EventQueue& queue)
      : config_(config), events_(&queue) {}

  void set_wire_sink(WireSink sink) { wire_sink_ = std::move(sink); }
  void set_ack_callback(AckCallback cb) { ack_callback_ = std::move(cb); }
  void set_drop_callback(DropCallback cb) { drop_callback_ = std::move(cb); }
  /// Structured tracing of the retransmit machinery (ArqTx / ArqRetry /
  /// ArqDrop). Null detaches; tracing must never change behaviour.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

  /// Queue a frame for reliable delivery. Returns false (and counts the
  /// drop) when the bounded queue is full.
  bool send(FrameType type, std::vector<std::uint8_t> payload);

  /// Feed reverse-channel bytes (the host's ack stream).
  void on_ack_byte(std::uint8_t byte);

  /// UART backpressure hook: the TX FIFO freed a byte, try flushing.
  void notify_tx_space() { pump(); }

  /// First-enqueue time of a still-pending frame (for latency probes).
  [[nodiscard]] std::optional<double> enqueue_time_s(std::uint8_t seq) const;

  [[nodiscard]] std::size_t queued() const { return queue_.size(); }
  [[nodiscard]] std::size_t in_flight() const;
  /// Active-window frames still waiting for transport room (needs_tx):
  /// non-zero means the transport backpressured and a notify_tx_space()
  /// is owed — the host ingest drain loop uses this to know a device
  /// still has frames to flush.
  [[nodiscard]] std::size_t unsent() const;
  [[nodiscard]] const FrameDecoder& ack_decoder() const { return ack_decoder_; }

  // Counters for LinkStats.
  [[nodiscard]] std::uint64_t frames_accepted() const { return frames_accepted_; }
  [[nodiscard]] std::uint64_t transmissions() const { return transmissions_; }
  [[nodiscard]] std::uint64_t retransmissions() const { return retransmissions_; }
  [[nodiscard]] std::uint64_t acks_received() const { return acks_received_; }
  [[nodiscard]] std::uint64_t duplicate_acks() const { return duplicate_acks_; }
  [[nodiscard]] std::uint64_t drops_queue_full() const { return drops_queue_full_; }
  [[nodiscard]] std::uint64_t drops_retry_exhausted() const { return drops_retry_exhausted_; }

 private:
  struct Pending {
    Frame frame;
    std::vector<std::uint8_t> wire;  // encoded once, retransmitted verbatim
    double enqueued_at_s = 0.0;
    double timeout_s = 0.0;  // current backoff value
    int attempts = 0;        // transmissions so far
    bool needs_tx = true;    // not yet (re)transmitted
    std::uint64_t epoch = 0; // stale-timer guard
  };

  void pump();
  void arm_timer(Pending& pending);
  void on_timeout(std::uint8_t seq, std::uint64_t epoch);
  void handle_ack(std::uint8_t seq);

  ArqConfig config_;
  sim::EventQueue* events_;
  obs::Tracer* tracer_ = nullptr;
  WireSink wire_sink_;
  AckCallback ack_callback_;
  DropCallback drop_callback_;
  FrameDecoder ack_decoder_;
  std::deque<Pending> queue_;  // seq order; first `window` entries are active
  std::uint8_t next_seq_ = 0;
  std::uint64_t next_epoch_ = 1;
  std::uint64_t frames_accepted_ = 0;
  std::uint64_t transmissions_ = 0;
  std::uint64_t retransmissions_ = 0;
  std::uint64_t acks_received_ = 0;
  std::uint64_t duplicate_acks_ = 0;
  std::uint64_t drops_queue_full_ = 0;
  std::uint64_t drops_retry_exhausted_ = 0;
};

/// Host-side endpoint: decodes, deduplicates, acks, delivers.
class ArqReceiver {
 public:
  using FrameSink = std::function<void(const Frame&)>;
  using WireSink = std::function<bool(std::span<const std::uint8_t>)>;

  void set_frame_sink(FrameSink sink) { frame_sink_ = std::move(sink); }
  void set_ack_sink(WireSink sink) { ack_sink_ = std::move(sink); }
  /// Structured tracing of delivered frames (ArqRx). Null detaches.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

  /// Forward-channel bytes off the RF link.
  void on_byte(std::uint8_t byte);

  [[nodiscard]] const FrameDecoder& decoder() const { return decoder_; }
  [[nodiscard]] std::uint64_t frames_delivered() const { return frames_delivered_; }
  [[nodiscard]] std::uint64_t duplicates_discarded() const { return duplicates_discarded_; }
  [[nodiscard]] std::uint64_t acks_sent() const { return acks_sent_; }
  [[nodiscard]] std::uint64_t acks_backpressured() const { return acks_backpressured_; }

 private:
  void on_frame(const Frame& frame);
  bool accept_seq(std::uint8_t seq);  // sliding-bitmap dedupe

  FrameDecoder decoder_;
  FrameSink frame_sink_;
  WireSink ack_sink_;
  obs::Tracer* tracer_ = nullptr;
  bool any_received_ = false;
  std::uint8_t highest_seq_ = 0;
  std::uint64_t seen_mask_ = 0;  // bit i set = (highest_seq_ - i) seen
  std::uint64_t frames_delivered_ = 0;
  std::uint64_t duplicates_discarded_ = 0;
  std::uint64_t acks_sent_ = 0;
  std::uint64_t acks_backpressured_ = 0;
};

}  // namespace distscroll::wireless
