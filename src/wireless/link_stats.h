// Link observability: one place that answers "how is the telemetry path
// doing?" for benches, tests and the study harness.
//
// Counters are *sampled* from the components that own them (RfLink,
// FrameDecoder, the ARQ endpoints, HostLogger) — the hot paths pay
// nothing for observability beyond the counters they already keep.
// Latency and retransmit distributions are *recorded* by whoever sees
// the event (the ARQ ack callback, the bench's delivery probe) and
// summarised through util::stats percentiles plus a log-bucketed ASCII
// histogram for the bench output.
//
// The instruments live on an obs::MetricsRegistry: the delivery-latency
// histogram is an obs::Histogram with the default (0.5 ms log₂, ms
// display) config — bucket math and rendering byte-identical to the
// LatencyHistogram class this replaced — and sample() republishes every
// counter into the registry so one snapshot serialises the whole link.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "util/stats.h"

namespace distscroll::wireless {

class RfLink;
class FrameDecoder;
class ArqSender;
class ArqReceiver;
class HostLogger;

class LinkStats {
 public:
  LinkStats();

  /// Counter snapshot across the pipeline; zeros for absent components.
  struct Counters {
    // RfLink
    std::uint64_t bytes_sent = 0;
    std::uint64_t bytes_lost = 0;
    std::uint64_t bytes_corrupted = 0;
    // FrameDecoder (host side)
    std::uint64_t frames_decoded = 0;
    std::uint64_t crc_errors = 0;
    std::uint64_t framing_errors = 0;
    std::uint64_t resyncs = 0;
    // ArqSender
    std::uint64_t arq_accepted = 0;
    std::uint64_t arq_transmissions = 0;
    std::uint64_t arq_retransmissions = 0;
    std::uint64_t arq_acks = 0;
    std::uint64_t arq_drops_queue_full = 0;
    std::uint64_t arq_drops_retry_exhausted = 0;
    // ArqReceiver
    std::uint64_t delivered = 0;
    std::uint64_t duplicates_discarded = 0;
    std::uint64_t acks_sent = 0;
    // HostLogger
    std::uint64_t logged_frames = 0;
    std::uint64_t sequence_gaps = 0;
  };

  /// Pull current counter values from whichever components exist.
  void sample(const RfLink* link, const FrameDecoder* decoder, const ArqSender* sender,
              const ArqReceiver* receiver, const HostLogger* logger);

  [[nodiscard]] const Counters& counters() const { return counters_; }

  // --- distributions ---------------------------------------------------
  void record_delivery_latency(double seconds);
  void record_attempts(int transmissions);

  [[nodiscard]] std::uint64_t latency_count() const { return latencies_.size(); }
  /// p in [0, 1]; 0 when nothing was recorded.
  [[nodiscard]] double latency_percentile(double p) const;
  [[nodiscard]] util::Summary latency_summary() const { return util::summarize(latencies_); }
  [[nodiscard]] double mean_attempts() const;
  [[nodiscard]] double max_attempts() const;
  [[nodiscard]] const obs::Histogram& latency_histogram() const { return *latency_hist_; }

  /// The backing registry (latency histogram plus, after sample(), all
  /// pipeline counters) — snapshot with metrics().to_json_fields().
  [[nodiscard]] const obs::MetricsRegistry& metrics() const { return registry_; }

  /// Human-readable dump (counters + latency histogram) for benches.
  [[nodiscard]] std::string report() const;

 private:
  Counters counters_{};
  std::vector<double> latencies_;
  std::vector<double> attempts_;
  obs::MetricsRegistry registry_;
  obs::Histogram* latency_hist_;  // registry-owned; looked up once
};

}  // namespace distscroll::wireless
