// Link observability: one place that answers "how is the telemetry path
// doing?" for benches, tests and the study harness.
//
// Counters are *sampled* from the components that own them (RfLink,
// FrameDecoder, the ARQ endpoints, HostLogger) — the hot paths pay
// nothing for observability beyond the counters they already keep.
// Latency and retransmit distributions are *recorded* by whoever sees
// the event (the ARQ ack callback, the bench's delivery probe) and
// summarised through util::stats percentiles plus a log-bucketed ASCII
// histogram for the bench output.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "util/stats.h"

namespace distscroll::wireless {

class RfLink;
class FrameDecoder;
class ArqSender;
class ArqReceiver;
class HostLogger;

/// Log₂-bucketed histogram for delivery latencies: bucket i covers
/// [0.5 ms · 2^i, 0.5 ms · 2^(i+1)), 16 buckets reaching ~16 s, with
/// under/overflow folded into the end buckets.
class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = 16;
  static constexpr double kFirstBucketSeconds = 0.5e-3;

  void record(double seconds);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] const std::array<std::uint64_t, kBuckets>& buckets() const { return buckets_; }
  [[nodiscard]] static double bucket_low_s(std::size_t i);

  /// Multi-line "bucket range | bar | count" rendering.
  [[nodiscard]] std::string render(int bar_width = 40) const;

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
};

class LinkStats {
 public:
  /// Counter snapshot across the pipeline; zeros for absent components.
  struct Counters {
    // RfLink
    std::uint64_t bytes_sent = 0;
    std::uint64_t bytes_lost = 0;
    std::uint64_t bytes_corrupted = 0;
    // FrameDecoder (host side)
    std::uint64_t frames_decoded = 0;
    std::uint64_t crc_errors = 0;
    std::uint64_t framing_errors = 0;
    std::uint64_t resyncs = 0;
    // ArqSender
    std::uint64_t arq_accepted = 0;
    std::uint64_t arq_transmissions = 0;
    std::uint64_t arq_retransmissions = 0;
    std::uint64_t arq_acks = 0;
    std::uint64_t arq_drops_queue_full = 0;
    std::uint64_t arq_drops_retry_exhausted = 0;
    // ArqReceiver
    std::uint64_t delivered = 0;
    std::uint64_t duplicates_discarded = 0;
    std::uint64_t acks_sent = 0;
    // HostLogger
    std::uint64_t logged_frames = 0;
    std::uint64_t sequence_gaps = 0;
  };

  /// Pull current counter values from whichever components exist.
  void sample(const RfLink* link, const FrameDecoder* decoder, const ArqSender* sender,
              const ArqReceiver* receiver, const HostLogger* logger);

  [[nodiscard]] const Counters& counters() const { return counters_; }

  // --- distributions ---------------------------------------------------
  void record_delivery_latency(double seconds);
  void record_attempts(int transmissions);

  [[nodiscard]] std::uint64_t latency_count() const { return latencies_.size(); }
  /// p in [0, 1]; 0 when nothing was recorded.
  [[nodiscard]] double latency_percentile(double p) const;
  [[nodiscard]] util::Summary latency_summary() const { return util::summarize(latencies_); }
  [[nodiscard]] double mean_attempts() const;
  [[nodiscard]] double max_attempts() const;
  [[nodiscard]] const LatencyHistogram& latency_histogram() const { return histogram_; }

  /// Human-readable dump (counters + latency histogram) for benches.
  [[nodiscard]] std::string report() const;

 private:
  Counters counters_{};
  std::vector<double> latencies_;
  std::vector<double> attempts_;
  LatencyHistogram histogram_;
};

}  // namespace distscroll::wireless
