#include "wireless/rf_link.h"

#include <algorithm>

namespace distscroll::wireless {

void RfLink::start() {
  if (running_) return;
  running_ = true;
  pump();
}

void RfLink::pump() {
  if (!running_) return;
  if (auto byte = uart_->clock_out()) {
    ++bytes_sent_;
    if (rng_.bernoulli(config_.byte_loss_probability)) {
      ++bytes_lost_;
    } else {
      std::uint8_t wire_byte = *byte;
      if (rng_.bernoulli(config_.bit_flip_probability)) {
        wire_byte ^= static_cast<std::uint8_t>(1u << rng_.uniform_int(0, 7));
        ++bytes_corrupted_;
      }
      const double jitter = rng_.uniform(0.0, config_.jitter.value);
      // A serial stream never reorders: arrivals are monotone even when
      // jitter exceeds the byte spacing.
      double arrival = queue_->now().value + config_.latency.value + jitter;
      arrival = std::max(arrival, last_arrival_s_ + 1e-9);
      last_arrival_s_ = arrival;
      queue_->schedule_at(util::Seconds{arrival}, [this, wire_byte] {
        if (host_sink_) host_sink_(wire_byte);
      });
    }
  }
  // Re-poll at UART byte pacing whether or not a byte was available;
  // this models the transceiver clocking the serial line continuously.
  queue_->schedule_after(uart_->byte_time(), [this] { pump(); });
}

}  // namespace distscroll::wireless
