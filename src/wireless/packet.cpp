#include "wireless/packet.h"

#include "util/crc.h"

namespace distscroll::wireless {

std::vector<std::uint8_t> StateReport::pack() const {
  std::vector<std::uint8_t> out(kPackedSize);
  pack_into(std::span<std::uint8_t, kPackedSize>(out.data(), kPackedSize));
  return out;
}

void StateReport::pack_into(std::span<std::uint8_t, kPackedSize> out) const {
  out[0] = static_cast<std::uint8_t>(adc_counts & 0xFF);
  out[1] = static_cast<std::uint8_t>((adc_counts >> 8) & 0xFF);
  out[2] = menu_depth;
  out[3] = cursor_index;
  out[4] = level_size;
  out[5] = buttons;
}

std::optional<StateReport> StateReport::unpack(std::span<const std::uint8_t> payload) {
  if (payload.size() != 6) return std::nullopt;
  StateReport r;
  r.adc_counts = static_cast<std::uint16_t>(payload[0] | (payload[1] << 8));
  r.menu_depth = payload[2];
  r.cursor_index = payload[3];
  r.level_size = payload[4];
  r.buttons = payload[5];
  return r;
}

std::size_t encode_into(FrameType type, std::uint8_t seq, std::span<const std::uint8_t> payload,
                        std::span<std::uint8_t> out) {
  // Unconditional (not assert): an undersized span must never become an
  // out-of-bounds write in NDEBUG builds.
  if (payload.size() > kMaxPayload) return 0;
  const std::size_t total = payload.size() + 5;
  if (out.size() < total) return 0;
  out[0] = kSyncByte;
  out[1] = static_cast<std::uint8_t>(2 + payload.size());  // LEN: TYPE SEQ PAYLOAD
  out[2] = static_cast<std::uint8_t>(type);
  out[3] = seq;
  for (std::size_t i = 0; i < payload.size(); ++i) out[4 + i] = payload[i];
  // CRC over LEN..PAYLOAD (everything after sync).
  out[total - 1] = util::crc8({out.data() + 1, total - 2});
  return total;
}

std::vector<std::uint8_t> encode(const Frame& frame) {
  std::vector<std::uint8_t> wire(frame.payload.size() + 5);
  wire.resize(encode_into(frame.type, frame.seq, frame.payload, wire));
  return wire;
}

std::optional<FrameView> parse_wire_frame(std::span<const std::uint8_t> wire) {
  if (wire.size() < 5 || wire.size() > kMaxEncodedFrame) return std::nullopt;
  if (wire[0] != kSyncByte) return std::nullopt;
  const std::uint8_t len = wire[1];
  if (len < 2 || len > 2 + kMaxPayload) return std::nullopt;
  // The buffer must be exactly SYNC LEN body CRC — a trailing-garbage or
  // truncated image is a transport bug, not a parsable frame.
  if (wire.size() != static_cast<std::size_t>(len) + 3) return std::nullopt;
  if (!is_known_frame_type(wire[2])) return std::nullopt;
  // CRC over LEN..PAYLOAD, matching encode_into.
  if (util::crc8(wire.subspan(1, static_cast<std::size_t>(len) + 1)) != wire[wire.size() - 1]) {
    return std::nullopt;
  }
  FrameView view;
  view.type = static_cast<FrameType>(wire[2]);
  view.seq = wire[3];
  view.payload = wire.subspan(4, static_cast<std::size_t>(len) - 2);
  return view;
}

std::optional<Frame> FrameDecoder::feed(std::uint8_t byte) {
  replay_.push_back(byte);
  // Drain the replay queue through the state machine. An error inside
  // step() prepends its consumed window here, so rescans happen in
  // stream order before any newer byte is considered. Each pass through
  // a failed window permanently consumes at least its leading sync byte,
  // so the loop terminates.
  while (!replay_.empty()) {
    const std::uint8_t b = replay_.front();
    replay_.pop_front();
    step(b);
  }
  return poll();
}

std::optional<Frame> FrameDecoder::flush() {
  // Each pass discards one truncated partial (consuming its sync byte),
  // so the loop terminates.
  while (state_ != State::Sync || !replay_.empty()) {
    if (state_ != State::Sync) {
      ++framing_errors_;
      fail_frame();
    }
    while (!replay_.empty()) {
      const std::uint8_t b = replay_.front();
      replay_.pop_front();
      step(b);
    }
  }
  return poll();
}

std::optional<Frame> FrameDecoder::poll() {
  if (ready_.empty()) return std::nullopt;
  Frame frame = std::move(ready_.front());
  ready_.pop_front();
  return frame;
}

void FrameDecoder::fail_frame() {
  // Give every consumed byte after the sync back to the scanner: the
  // next real frame's sync may be hiding inside the window (e.g. a
  // bit-flipped LEN swallowed it). The failed frame's own sync byte is
  // NOT replayed, so progress is guaranteed.
  ++resyncs_;
  replay_.insert(replay_.begin(), buffer_.begin(), buffer_.end());
  buffer_.clear();
  state_ = State::Sync;
}

void FrameDecoder::step(std::uint8_t byte) {
  switch (state_) {
    case State::Sync:
      if (byte == kSyncByte) {
        buffer_.clear();
        state_ = State::Length;
      }
      return;

    case State::Length:
      if (byte < 2 || byte > 2 + kMaxPayload) {
        ++framing_errors_;
        // Rescan the offending byte itself: it may be the sync of a
        // real frame that this spurious sync captured.
        state_ = State::Sync;
        replay_.push_front(byte);
        return;
      }
      buffer_.push_back(byte);
      expected_len_ = byte;
      state_ = State::Body;
      return;

    case State::Body:
      buffer_.push_back(byte);
      // First body byte is TYPE: reject unknown types immediately so a
      // corrupted type byte never reaches a consumer as a garbage enum
      // value, and resync starts LEN bytes sooner.
      if (buffer_.size() == 2 && !is_known_frame_type(byte)) {
        ++framing_errors_;
        fail_frame();
        return;
      }
      // buffer_ holds LEN + body-so-far; body completes at LEN bytes,
      // then one CRC byte follows.
      if (buffer_.size() < 1 + expected_len_ + 1) return;
      {
        const std::uint8_t received_crc = buffer_.back();
        const std::uint8_t computed =
            util::crc8({buffer_.data(), buffer_.size() - 1});
        if (received_crc != computed) {
          ++crc_errors_;
          fail_frame();
          return;
        }
        Frame frame;
        frame.type = static_cast<FrameType>(buffer_[1]);
        frame.seq = buffer_[2];
        frame.payload.assign(buffer_.begin() + 3, buffer_.end() - 1);
        ++frames_decoded_;
        ready_.push_back(std::move(frame));
        buffer_.clear();
        state_ = State::Sync;
      }
      return;
  }
}

}  // namespace distscroll::wireless
