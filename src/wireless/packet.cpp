#include "wireless/packet.h"

#include <cassert>

#include "util/crc.h"

namespace distscroll::wireless {

std::vector<std::uint8_t> StateReport::pack() const {
  return {
      static_cast<std::uint8_t>(adc_counts & 0xFF),
      static_cast<std::uint8_t>((adc_counts >> 8) & 0xFF),
      menu_depth,
      cursor_index,
      level_size,
      buttons,
  };
}

std::optional<StateReport> StateReport::unpack(std::span<const std::uint8_t> payload) {
  if (payload.size() != 6) return std::nullopt;
  StateReport r;
  r.adc_counts = static_cast<std::uint16_t>(payload[0] | (payload[1] << 8));
  r.menu_depth = payload[2];
  r.cursor_index = payload[3];
  r.level_size = payload[4];
  r.buttons = payload[5];
  return r;
}

std::vector<std::uint8_t> encode(const Frame& frame) {
  assert(frame.payload.size() <= kMaxPayload);
  std::vector<std::uint8_t> wire;
  wire.reserve(4 + frame.payload.size() + 1);
  wire.push_back(kSyncByte);
  const auto len = static_cast<std::uint8_t>(2 + frame.payload.size());  // TYPE SEQ PAYLOAD
  wire.push_back(len);
  wire.push_back(static_cast<std::uint8_t>(frame.type));
  wire.push_back(frame.seq);
  wire.insert(wire.end(), frame.payload.begin(), frame.payload.end());
  // CRC over LEN..PAYLOAD (everything after sync).
  const std::uint8_t crc = util::crc8({wire.data() + 1, wire.size() - 1});
  wire.push_back(crc);
  return wire;
}

std::optional<Frame> FrameDecoder::feed(std::uint8_t byte) {
  replay_.push_back(byte);
  // Drain the replay queue through the state machine. An error inside
  // step() prepends its consumed window here, so rescans happen in
  // stream order before any newer byte is considered. Each pass through
  // a failed window permanently consumes at least its leading sync byte,
  // so the loop terminates.
  while (!replay_.empty()) {
    const std::uint8_t b = replay_.front();
    replay_.pop_front();
    step(b);
  }
  return poll();
}

std::optional<Frame> FrameDecoder::flush() {
  // Each pass discards one truncated partial (consuming its sync byte),
  // so the loop terminates.
  while (state_ != State::Sync || !replay_.empty()) {
    if (state_ != State::Sync) {
      ++framing_errors_;
      fail_frame();
    }
    while (!replay_.empty()) {
      const std::uint8_t b = replay_.front();
      replay_.pop_front();
      step(b);
    }
  }
  return poll();
}

std::optional<Frame> FrameDecoder::poll() {
  if (ready_.empty()) return std::nullopt;
  Frame frame = std::move(ready_.front());
  ready_.pop_front();
  return frame;
}

void FrameDecoder::fail_frame() {
  // Give every consumed byte after the sync back to the scanner: the
  // next real frame's sync may be hiding inside the window (e.g. a
  // bit-flipped LEN swallowed it). The failed frame's own sync byte is
  // NOT replayed, so progress is guaranteed.
  ++resyncs_;
  replay_.insert(replay_.begin(), buffer_.begin(), buffer_.end());
  buffer_.clear();
  state_ = State::Sync;
}

void FrameDecoder::step(std::uint8_t byte) {
  switch (state_) {
    case State::Sync:
      if (byte == kSyncByte) {
        buffer_.clear();
        state_ = State::Length;
      }
      return;

    case State::Length:
      if (byte < 2 || byte > 2 + kMaxPayload) {
        ++framing_errors_;
        // Rescan the offending byte itself: it may be the sync of a
        // real frame that this spurious sync captured.
        state_ = State::Sync;
        replay_.push_front(byte);
        return;
      }
      buffer_.push_back(byte);
      expected_len_ = byte;
      state_ = State::Body;
      return;

    case State::Body:
      buffer_.push_back(byte);
      // First body byte is TYPE: reject unknown types immediately so a
      // corrupted type byte never reaches a consumer as a garbage enum
      // value, and resync starts LEN bytes sooner.
      if (buffer_.size() == 2 && !is_known_frame_type(byte)) {
        ++framing_errors_;
        fail_frame();
        return;
      }
      // buffer_ holds LEN + body-so-far; body completes at LEN bytes,
      // then one CRC byte follows.
      if (buffer_.size() < 1 + expected_len_ + 1) return;
      {
        const std::uint8_t received_crc = buffer_.back();
        const std::uint8_t computed =
            util::crc8({buffer_.data(), buffer_.size() - 1});
        if (received_crc != computed) {
          ++crc_errors_;
          fail_frame();
          return;
        }
        Frame frame;
        frame.type = static_cast<FrameType>(buffer_[1]);
        frame.seq = buffer_[2];
        frame.payload.assign(buffer_.begin() + 3, buffer_.end() - 1);
        ++frames_decoded_;
        ready_.push_back(std::move(frame));
        buffer_.clear();
        state_ = State::Sync;
      }
      return;
  }
}

}  // namespace distscroll::wireless
