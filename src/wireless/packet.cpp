#include "wireless/packet.h"

#include <cassert>

#include "util/crc.h"

namespace distscroll::wireless {

std::vector<std::uint8_t> StateReport::pack() const {
  return {
      static_cast<std::uint8_t>(adc_counts & 0xFF),
      static_cast<std::uint8_t>((adc_counts >> 8) & 0xFF),
      menu_depth,
      cursor_index,
      level_size,
      buttons,
  };
}

std::optional<StateReport> StateReport::unpack(std::span<const std::uint8_t> payload) {
  if (payload.size() != 6) return std::nullopt;
  StateReport r;
  r.adc_counts = static_cast<std::uint16_t>(payload[0] | (payload[1] << 8));
  r.menu_depth = payload[2];
  r.cursor_index = payload[3];
  r.level_size = payload[4];
  r.buttons = payload[5];
  return r;
}

std::vector<std::uint8_t> encode(const Frame& frame) {
  assert(frame.payload.size() <= kMaxPayload);
  std::vector<std::uint8_t> wire;
  wire.reserve(4 + frame.payload.size() + 1);
  wire.push_back(kSyncByte);
  const auto len = static_cast<std::uint8_t>(2 + frame.payload.size());  // TYPE SEQ PAYLOAD
  wire.push_back(len);
  wire.push_back(static_cast<std::uint8_t>(frame.type));
  wire.push_back(frame.seq);
  wire.insert(wire.end(), frame.payload.begin(), frame.payload.end());
  // CRC over LEN..PAYLOAD (everything after sync).
  const std::uint8_t crc = util::crc8({wire.data() + 1, wire.size() - 1});
  wire.push_back(crc);
  return wire;
}

std::optional<Frame> FrameDecoder::feed(std::uint8_t byte) {
  switch (state_) {
    case State::Sync:
      if (byte == kSyncByte) {
        buffer_.clear();
        state_ = State::Length;
      }
      return std::nullopt;

    case State::Length:
      if (byte < 2 || byte > 2 + kMaxPayload) {
        ++framing_errors_;
        state_ = (byte == kSyncByte) ? State::Length : State::Sync;
        return std::nullopt;
      }
      buffer_.push_back(byte);
      expected_len_ = byte;
      state_ = State::Body;
      return std::nullopt;

    case State::Body:
      buffer_.push_back(byte);
      // buffer_ holds LEN + body-so-far; body completes at LEN bytes,
      // then one CRC byte follows.
      if (buffer_.size() < 1 + expected_len_ + 1) return std::nullopt;
      state_ = State::Sync;
      {
        const std::uint8_t received_crc = buffer_.back();
        const std::uint8_t computed =
            util::crc8({buffer_.data(), buffer_.size() - 1});
        if (received_crc != computed) {
          ++crc_errors_;
          return std::nullopt;
        }
        Frame frame;
        frame.type = static_cast<FrameType>(buffer_[1]);
        frame.seq = buffer_[2];
        frame.payload.assign(buffer_.begin() + 3, buffer_.end() - 1);
        ++frames_decoded_;
        return frame;
      }
  }
  return std::nullopt;
}

}  // namespace distscroll::wireless
