// Lossy wireless link between the device UART and the host PC.
//
// Models the short-range RF transceiver behind the Smart-Its serial
// connector: per-byte propagation through the event queue with a
// configurable delay, jitter, independent byte-loss probability and
// bit-flip corruption. Frame CRCs (wireless::packet) catch corruption on
// the host side — the classic end-to-end argument exercised in tests.
#pragma once

#include <cstdint>
#include <functional>

#include "hw/uart.h"
#include "sim/event_queue.h"
#include "sim/random.h"
#include "util/units.h"

namespace distscroll::wireless {

class RfLink {
 public:
  struct Config {
    util::Seconds latency{1.5e-3};
    util::Seconds jitter{0.3e-3};
    double byte_loss_probability = 0.002;
    double bit_flip_probability = 0.0005;  // per byte
  };

  using HostSink = std::function<void(std::uint8_t)>;

  RfLink(Config config, hw::Uart& device_uart, sim::EventQueue& queue, sim::Rng rng)
      : config_(config), uart_(&device_uart), queue_(&queue), rng_(rng) {}

  /// Host-side byte sink (the PC's serial port).
  void set_host_sink(HostSink sink) { host_sink_ = std::move(sink); }

  /// Start pumping the device UART TX FIFO onto the air. Bytes leave at
  /// UART baud pacing, then arrive at the host after link latency.
  void start();
  void stop() { running_ = false; }

  [[nodiscard]] std::uint64_t bytes_sent() const { return bytes_sent_; }
  [[nodiscard]] std::uint64_t bytes_lost() const { return bytes_lost_; }
  [[nodiscard]] std::uint64_t bytes_corrupted() const { return bytes_corrupted_; }

 private:
  void pump();

  Config config_;
  hw::Uart* uart_;
  sim::EventQueue* queue_;
  sim::Rng rng_;
  HostSink host_sink_;
  bool running_ = false;
  double last_arrival_s_ = -1.0;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t bytes_lost_ = 0;
  std::uint64_t bytes_corrupted_ = 0;
};

}  // namespace distscroll::wireless
