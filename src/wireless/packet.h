// Telemetry frame format between the DistScroll prototype and the PC.
//
// The prototype is a "self contained interaction device that can be
// wirelessly linked to a PC" (paper Section 3.2); the PC logs state for
// the user study. Frames are byte-oriented for the UART path:
//
//   SYNC(0xAA) LEN TYPE SEQ PAYLOAD... CRC8
//
// LEN counts TYPE..PAYLOAD (not SYNC/LEN/CRC). CRC8 covers LEN..PAYLOAD.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace distscroll::wireless {

inline constexpr std::uint8_t kSyncByte = 0xAA;
inline constexpr std::size_t kMaxPayload = 32;

enum class FrameType : std::uint8_t {
  State = 0x01,      // periodic device state (cursor, adc, buttons)
  ButtonEvent = 0x02,
  SelectionEvent = 0x03,
  Heartbeat = 0x04,
  Debug = 0x05,
};

struct Frame {
  FrameType type = FrameType::Heartbeat;
  std::uint8_t seq = 0;
  std::vector<std::uint8_t> payload;

  bool operator==(const Frame&) const = default;
};

/// The periodic state report, packed into a State frame payload.
struct StateReport {
  std::uint16_t adc_counts = 0;   // raw distance sensor reading
  std::uint8_t menu_depth = 0;
  std::uint8_t cursor_index = 0;
  std::uint8_t level_size = 0;
  std::uint8_t buttons = 0;       // bit i = button i pressed

  [[nodiscard]] std::vector<std::uint8_t> pack() const;
  [[nodiscard]] static std::optional<StateReport> unpack(std::span<const std::uint8_t> payload);
};

/// Serialize a frame to wire bytes (with sync, length and CRC).
[[nodiscard]] std::vector<std::uint8_t> encode(const Frame& frame);

/// Incremental decoder: feed bytes as they arrive, pops complete valid
/// frames. Resynchronises on CRC or framing errors by scanning for the
/// next sync byte; corrupted frames are counted, never delivered.
class FrameDecoder {
 public:
  /// Feed one byte; returns a frame when one completes.
  std::optional<Frame> feed(std::uint8_t byte);

  [[nodiscard]] std::uint64_t crc_errors() const { return crc_errors_; }
  [[nodiscard]] std::uint64_t framing_errors() const { return framing_errors_; }
  [[nodiscard]] std::uint64_t frames_decoded() const { return frames_decoded_; }

 private:
  enum class State { Sync, Length, Body };
  State state_ = State::Sync;
  std::vector<std::uint8_t> buffer_;  // LEN TYPE SEQ PAYLOAD...
  std::size_t expected_len_ = 0;
  std::uint64_t crc_errors_ = 0;
  std::uint64_t framing_errors_ = 0;
  std::uint64_t frames_decoded_ = 0;
};

}  // namespace distscroll::wireless
