// Telemetry frame format between the DistScroll prototype and the PC.
//
// The prototype is a "self contained interaction device that can be
// wirelessly linked to a PC" (paper Section 3.2); the PC logs state for
// the user study. Frames are byte-oriented for the UART path:
//
//   SYNC(0xAA) LEN TYPE SEQ PAYLOAD... CRC8
//
// LEN counts TYPE..PAYLOAD (not SYNC/LEN/CRC). CRC8 covers LEN..PAYLOAD.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <vector>

namespace distscroll::wireless {

inline constexpr std::uint8_t kSyncByte = 0xAA;
inline constexpr std::size_t kMaxPayload = 32;
/// Largest wire image: SYNC LEN TYPE SEQ payload CRC.
inline constexpr std::size_t kMaxEncodedFrame = 5 + kMaxPayload;

enum class FrameType : std::uint8_t {
  State = 0x01,      // periodic device state (cursor, adc, buttons)
  ButtonEvent = 0x02,
  SelectionEvent = 0x03,
  Heartbeat = 0x04,
  Debug = 0x05,
  Ack = 0x06,        // ARQ acknowledgement; seq field names the acked frame
};

/// TYPE bytes the decoder accepts: the core protocol above plus the
/// 0x10..0x1F extension range used by add-on protocols (pda::). Anything
/// else is treated as a framing error, never delivered as a garbage enum.
[[nodiscard]] constexpr bool is_known_frame_type(std::uint8_t raw) {
  return (raw >= 0x01 && raw <= 0x06) || (raw >= 0x10 && raw <= 0x1F);
}

struct Frame {
  FrameType type = FrameType::Heartbeat;
  std::uint8_t seq = 0;
  std::vector<std::uint8_t> payload;

  bool operator==(const Frame&) const = default;
};

/// The periodic state report, packed into a State frame payload.
struct StateReport {
  std::uint16_t adc_counts = 0;   // raw distance sensor reading
  std::uint8_t menu_depth = 0;
  std::uint8_t cursor_index = 0;
  std::uint8_t level_size = 0;
  std::uint8_t buttons = 0;       // bit i = button i pressed

  bool operator==(const StateReport&) const = default;

  static constexpr std::size_t kPackedSize = 6;

  [[nodiscard]] std::vector<std::uint8_t> pack() const;
  /// Allocation-free pack for the firmware's steady-state telemetry
  /// path (same bytes as pack()).
  void pack_into(std::span<std::uint8_t, kPackedSize> out) const;
  [[nodiscard]] static std::optional<StateReport> unpack(std::span<const std::uint8_t> payload);
};

/// Serialize a frame to wire bytes (with sync, length and CRC).
[[nodiscard]] std::vector<std::uint8_t> encode(const Frame& frame);

/// Allocation-free encode: write the wire image of (type, seq, payload)
/// into `out` (sized >= payload.size() + 5) and return the byte count.
/// Returns 0 without writing when the payload exceeds kMaxPayload or
/// `out` is too small — never writes out of bounds.
/// Byte-identical to encode() — the firmware's per-tick telemetry uses
/// this form so the device sample loop stays heap-free (the DS_HOT /
/// AllocGuard contract), while host-side code keeps the vector form.
std::size_t encode_into(FrameType type, std::uint8_t seq, std::span<const std::uint8_t> payload,
                        std::span<std::uint8_t> out);

/// Zero-copy view of one validated wire frame: TYPE/SEQ decoded, the
/// payload a span into the caller's buffer. Produced by
/// parse_wire_frame() for batch validation paths (host ingest) where
/// frames arrive already delimited and the byte-at-a-time FrameDecoder
/// state machine would only add copying.
struct FrameView {
  FrameType type = FrameType::Heartbeat;
  std::uint8_t seq = 0;
  std::span<const std::uint8_t> payload;
};

/// Validate one complete wire image (SYNC LEN TYPE SEQ PAYLOAD CRC) in
/// place. Returns nullopt when the buffer is not exactly one well-formed
/// frame: wrong sync, LEN outside [2, 2+kMaxPayload], size mismatch,
/// unknown TYPE, or CRC failure. Never reads outside `wire`.
[[nodiscard]] std::optional<FrameView> parse_wire_frame(std::span<const std::uint8_t> wire);

/// Incremental decoder: feed bytes as they arrive, pops complete valid
/// frames.
///
/// Resync algorithm: the decoder buffers every byte consumed after a
/// sync match (LEN TYPE SEQ PAYLOAD CRC). When the frame fails — LEN
/// outside [2, 2+kMaxPayload], unknown TYPE, or CRC mismatch — the error
/// is counted and the *entire consumed window* is pushed back through
/// the state machine, rescanned for the next kSyncByte. A corrupted byte
/// can therefore never swallow the bytes behind it: a bit-flipped LEN
/// that captured the following frame's sync gives those bytes back, and
/// single-byte corruption of a valid stream loses at most the one frame
/// it landed in (tests/wireless_test.cpp holds this as a property).
///
/// Because a rescanned window can complete more than one frame while a
/// single byte arrives, finished frames queue internally: feed() returns
/// the first, poll() drains the rest.
class FrameDecoder {
 public:
  /// Feed one byte; returns a frame when one completes. Call poll()
  /// afterwards to drain any further frames recovered by a resync.
  std::optional<Frame> feed(std::uint8_t byte);

  /// Next decoded-but-undelivered frame, if any.
  std::optional<Frame> poll();

  /// End-of-stream: a partial frame can never complete now, so discard
  /// it (counted as a framing error) after rescanning its bytes —
  /// complete frames wedged behind a truncated one are recovered.
  /// Returns the first such frame; drain the rest with poll().
  std::optional<Frame> flush();

  [[nodiscard]] std::uint64_t crc_errors() const { return crc_errors_; }
  [[nodiscard]] std::uint64_t framing_errors() const { return framing_errors_; }
  [[nodiscard]] std::uint64_t frames_decoded() const { return frames_decoded_; }
  /// Error windows rescanned for a sync byte (resync attempts).
  [[nodiscard]] std::uint64_t resyncs() const { return resyncs_; }

 private:
  enum class State { Sync, Length, Body };

  void step(std::uint8_t byte);
  void fail_frame();  // push the consumed window back for rescan

  State state_ = State::Sync;
  std::vector<std::uint8_t> buffer_;  // LEN TYPE SEQ PAYLOAD... (after sync)
  std::size_t expected_len_ = 0;
  std::deque<std::uint8_t> replay_;   // bytes awaiting (re)scan
  std::deque<Frame> ready_;           // decoded, not yet handed out
  std::uint64_t crc_errors_ = 0;
  std::uint64_t framing_errors_ = 0;
  std::uint64_t frames_decoded_ = 0;
  std::uint64_t resyncs_ = 0;
};

}  // namespace distscroll::wireless
