// PC-side telemetry receiver.
//
// Decodes the frame stream coming off the RF link and keeps the study
// harness's view of device state: last state report, event log with
// simulated timestamps, and link-quality counters. This is the "PC used
// for logging" end of the paper's research setup.
//
// Sequence tracking is keyed by DEVICE ID: a multi-device deployment
// (host ingest, src/host/) interleaves independent per-device sequence
// streams, and folding them into one counter manufactures phantom gaps —
// device A at seq 40 followed by device B at seq 7 is not a 222-frame
// hole. Single-device callers are unaffected: the byte path and the
// one-argument on_frame() log against device 0, and the no-argument
// accessors report the device-0-compatible aggregate view (most recent
// state across all devices, gap total summed over devices).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "sim/event_queue.h"
#include "wireless/packet.h"

namespace distscroll::wireless {

class HostLogger {
 public:
  explicit HostLogger(const sim::EventQueue& queue) : queue_(&queue) {}

  /// Byte sink to hang on RfLink::set_host_sink (raw pipeline). Logs
  /// against device 0 — a raw byte stream carries no device identity.
  void on_byte(std::uint8_t byte);

  /// Frame sink to hang on ArqReceiver::set_frame_sink (reliable
  /// pipeline — framing and dedupe already happened downstairs). Note
  /// that retransmissions arrive out of order, so sequence_gaps() can
  /// transiently over-count on this path; ARQ delivery accounting lives
  /// in LinkStats. Logs against device 0.
  void on_frame(const Frame& frame) { on_frame(0, frame); }

  /// Multi-device frame sink: sequence tracking and last-state are kept
  /// per `device_id`, so interleaved streams never corrupt each other's
  /// gap accounting.
  void on_frame(std::uint16_t device_id, const Frame& frame);

  struct LoggedEvent {
    double time_s;
    std::uint16_t device_id;
    Frame frame;
  };

  [[nodiscard]] const std::vector<LoggedEvent>& events() const { return events_; }

  /// Most recent state report logged, across all devices.
  [[nodiscard]] std::optional<StateReport> last_state() const { return last_state_; }
  /// Most recent state report from one device.
  [[nodiscard]] std::optional<StateReport> last_state(std::uint16_t device_id) const;

  /// Frames accepted by the logger (monotone, survives clear()). Equals
  /// decoder().frames_decoded() on the raw byte path; on the ARQ path
  /// the decoder is idle and this counts on_frame() deliveries.
  [[nodiscard]] std::uint64_t frames_received() const { return frames_logged_; }
  [[nodiscard]] std::uint64_t frames_received(std::uint16_t device_id) const;
  [[nodiscard]] std::uint64_t crc_errors() const { return decoder_.crc_errors(); }

  /// Sequence-gap total: frames the link dropped between received ones,
  /// summed over devices (each device's gaps measured against its OWN
  /// sequence stream).
  [[nodiscard]] std::uint64_t sequence_gaps() const { return sequence_gaps_; }
  [[nodiscard]] std::uint64_t sequence_gaps(std::uint16_t device_id) const;

  /// Distinct device ids that have logged at least one frame.
  [[nodiscard]] std::size_t devices_seen() const { return devices_.size(); }

  [[nodiscard]] const FrameDecoder& decoder() const { return decoder_; }

  /// Start a new logging session: forgets events, state AND the
  /// sequence tracking, so the first frame after clear() establishes a
  /// fresh baseline instead of being counted as a gap against the
  /// previous session's last sequence number.
  void clear() {
    events_.clear();
    last_state_.reset();
    devices_.clear();
    sequence_gaps_ = 0;
  }

 private:
  struct PerDevice {
    std::optional<StateReport> last_state;
    std::optional<std::uint8_t> last_seq;
    std::uint64_t sequence_gaps = 0;
    std::uint64_t frames = 0;
  };

  const sim::EventQueue* queue_;
  FrameDecoder decoder_;
  std::vector<LoggedEvent> events_;
  std::optional<StateReport> last_state_;
  std::map<std::uint16_t, PerDevice> devices_;  // ordered: deterministic iteration
  std::uint64_t sequence_gaps_ = 0;
  std::uint64_t frames_logged_ = 0;
};

}  // namespace distscroll::wireless
