// PC-side telemetry receiver.
//
// Decodes the frame stream coming off the RF link and keeps the study
// harness's view of device state: last state report, event log with
// simulated timestamps, and link-quality counters. This is the "PC used
// for logging" end of the paper's research setup.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/event_queue.h"
#include "wireless/packet.h"

namespace distscroll::wireless {

class HostLogger {
 public:
  explicit HostLogger(const sim::EventQueue& queue) : queue_(&queue) {}

  /// Byte sink to hang on RfLink::set_host_sink (raw pipeline).
  void on_byte(std::uint8_t byte);

  /// Frame sink to hang on ArqReceiver::set_frame_sink (reliable
  /// pipeline — framing and dedupe already happened downstairs). Note
  /// that retransmissions arrive out of order, so sequence_gaps() can
  /// transiently over-count on this path; ARQ delivery accounting lives
  /// in LinkStats.
  void on_frame(const Frame& frame);

  struct LoggedEvent {
    double time_s;
    Frame frame;
  };

  [[nodiscard]] const std::vector<LoggedEvent>& events() const { return events_; }
  [[nodiscard]] std::optional<StateReport> last_state() const { return last_state_; }
  /// Frames accepted by the logger (monotone, survives clear()). Equals
  /// decoder().frames_decoded() on the raw byte path; on the ARQ path
  /// the decoder is idle and this counts on_frame() deliveries.
  [[nodiscard]] std::uint64_t frames_received() const { return frames_logged_; }
  [[nodiscard]] std::uint64_t crc_errors() const { return decoder_.crc_errors(); }

  /// Sequence-gap count: frames the link dropped between received ones.
  [[nodiscard]] std::uint64_t sequence_gaps() const { return sequence_gaps_; }

  [[nodiscard]] const FrameDecoder& decoder() const { return decoder_; }

  /// Start a new logging session: forgets events, state AND the
  /// sequence tracking, so the first frame after clear() establishes a
  /// fresh baseline instead of being counted as a gap against the
  /// previous session's last sequence number.
  void clear() {
    events_.clear();
    last_state_.reset();
    last_seq_.reset();
    sequence_gaps_ = 0;
  }

 private:
  const sim::EventQueue* queue_;
  FrameDecoder decoder_;
  std::vector<LoggedEvent> events_;
  std::optional<StateReport> last_state_;
  std::optional<std::uint8_t> last_seq_;
  std::uint64_t sequence_gaps_ = 0;
  std::uint64_t frames_logged_ = 0;
};

}  // namespace distscroll::wireless
