#include "wireless/link_stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "wireless/arq.h"
#include "wireless/host_logger.h"
#include "wireless/rf_link.h"

namespace distscroll::wireless {

// --- LatencyHistogram -------------------------------------------------------

void LatencyHistogram::record(double seconds) {
  ++count_;
  std::size_t bucket = 0;
  if (seconds > kFirstBucketSeconds) {
    bucket = static_cast<std::size_t>(std::floor(std::log2(seconds / kFirstBucketSeconds))) + 1;
    bucket = std::min(bucket, kBuckets - 1);
  }
  ++buckets_[bucket];
}

double LatencyHistogram::bucket_low_s(std::size_t i) {
  return (i == 0) ? 0.0 : kFirstBucketSeconds * std::pow(2.0, static_cast<double>(i - 1));
}

std::string LatencyHistogram::render(int bar_width) const {
  std::string out;
  const std::uint64_t peak =
      std::max<std::uint64_t>(1, *std::max_element(buckets_.begin(), buckets_.end()));
  char line[160];
  for (std::size_t i = 0; i < kBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    const int bar = static_cast<int>(
        (buckets_[i] * static_cast<std::uint64_t>(bar_width) + peak - 1) / peak);
    std::snprintf(line, sizeof(line), "  %8.2f ms | %-*s %llu\n", bucket_low_s(i) * 1e3,
                  bar_width, std::string(static_cast<std::size_t>(bar), '#').c_str(),
                  static_cast<unsigned long long>(buckets_[i]));
    out += line;
  }
  if (out.empty()) out = "  (no samples)\n";
  return out;
}

// --- LinkStats --------------------------------------------------------------

void LinkStats::sample(const RfLink* link, const FrameDecoder* decoder, const ArqSender* sender,
                       const ArqReceiver* receiver, const HostLogger* logger) {
  if (link) {
    counters_.bytes_sent = link->bytes_sent();
    counters_.bytes_lost = link->bytes_lost();
    counters_.bytes_corrupted = link->bytes_corrupted();
  }
  if (decoder) {
    counters_.frames_decoded = decoder->frames_decoded();
    counters_.crc_errors = decoder->crc_errors();
    counters_.framing_errors = decoder->framing_errors();
    counters_.resyncs = decoder->resyncs();
  }
  if (sender) {
    counters_.arq_accepted = sender->frames_accepted();
    counters_.arq_transmissions = sender->transmissions();
    counters_.arq_retransmissions = sender->retransmissions();
    counters_.arq_acks = sender->acks_received();
    counters_.arq_drops_queue_full = sender->drops_queue_full();
    counters_.arq_drops_retry_exhausted = sender->drops_retry_exhausted();
  }
  if (receiver) {
    counters_.delivered = receiver->frames_delivered();
    counters_.duplicates_discarded = receiver->duplicates_discarded();
    counters_.acks_sent = receiver->acks_sent();
  }
  if (logger) {
    counters_.logged_frames = logger->frames_received();
    counters_.sequence_gaps = logger->sequence_gaps();
  }
}

void LinkStats::record_delivery_latency(double seconds) {
  latencies_.push_back(seconds);
  histogram_.record(seconds);
}

void LinkStats::record_attempts(int transmissions) {
  attempts_.push_back(static_cast<double>(transmissions));
}

double LinkStats::latency_percentile(double p) const {
  if (latencies_.empty()) return 0.0;
  return util::percentile(latencies_, p);
}

double LinkStats::mean_attempts() const {
  if (attempts_.empty()) return 0.0;
  return util::summarize(attempts_).mean;
}

double LinkStats::max_attempts() const {
  if (attempts_.empty()) return 0.0;
  return util::summarize(attempts_).max;
}

std::string LinkStats::report() const {
  char line[256];
  std::string out;
  std::snprintf(line, sizeof(line), "link:    sent=%llu lost=%llu corrupted=%llu\n",
                static_cast<unsigned long long>(counters_.bytes_sent),
                static_cast<unsigned long long>(counters_.bytes_lost),
                static_cast<unsigned long long>(counters_.bytes_corrupted));
  out += line;
  std::snprintf(line, sizeof(line),
                "decoder: frames=%llu crc_err=%llu framing_err=%llu resyncs=%llu\n",
                static_cast<unsigned long long>(counters_.frames_decoded),
                static_cast<unsigned long long>(counters_.crc_errors),
                static_cast<unsigned long long>(counters_.framing_errors),
                static_cast<unsigned long long>(counters_.resyncs));
  out += line;
  std::snprintf(line, sizeof(line),
                "arq tx:  accepted=%llu transmissions=%llu retransmissions=%llu acks=%llu\n"
                "         drops(queue_full)=%llu drops(retry_exhausted)=%llu\n",
                static_cast<unsigned long long>(counters_.arq_accepted),
                static_cast<unsigned long long>(counters_.arq_transmissions),
                static_cast<unsigned long long>(counters_.arq_retransmissions),
                static_cast<unsigned long long>(counters_.arq_acks),
                static_cast<unsigned long long>(counters_.arq_drops_queue_full),
                static_cast<unsigned long long>(counters_.arq_drops_retry_exhausted));
  out += line;
  std::snprintf(line, sizeof(line), "arq rx:  delivered=%llu duplicates=%llu acks_sent=%llu\n",
                static_cast<unsigned long long>(counters_.delivered),
                static_cast<unsigned long long>(counters_.duplicates_discarded),
                static_cast<unsigned long long>(counters_.acks_sent));
  out += line;
  std::snprintf(line, sizeof(line), "logger:  frames=%llu seq_gaps=%llu\n",
                static_cast<unsigned long long>(counters_.logged_frames),
                static_cast<unsigned long long>(counters_.sequence_gaps));
  out += line;
  if (!latencies_.empty()) {
    std::snprintf(line, sizeof(line), "latency: n=%zu p50=%.2f ms p99=%.2f ms max=%.2f ms\n",
                  latencies_.size(), latency_percentile(0.50) * 1e3,
                  latency_percentile(0.99) * 1e3, latency_summary().max * 1e3);
    out += line;
    out += histogram_.render();
  }
  return out;
}

}  // namespace distscroll::wireless
