#include "wireless/link_stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "wireless/arq.h"
#include "wireless/host_logger.h"
#include "wireless/rf_link.h"

namespace distscroll::wireless {

// --- LinkStats --------------------------------------------------------------

LinkStats::LinkStats() : latency_hist_(&registry_.histogram("arq_delivery_latency")) {}

void LinkStats::sample(const RfLink* link, const FrameDecoder* decoder, const ArqSender* sender,
                       const ArqReceiver* receiver, const HostLogger* logger) {
  if (link) {
    counters_.bytes_sent = link->bytes_sent();
    counters_.bytes_lost = link->bytes_lost();
    counters_.bytes_corrupted = link->bytes_corrupted();
  }
  if (decoder) {
    counters_.frames_decoded = decoder->frames_decoded();
    counters_.crc_errors = decoder->crc_errors();
    counters_.framing_errors = decoder->framing_errors();
    counters_.resyncs = decoder->resyncs();
  }
  if (sender) {
    counters_.arq_accepted = sender->frames_accepted();
    counters_.arq_transmissions = sender->transmissions();
    counters_.arq_retransmissions = sender->retransmissions();
    counters_.arq_acks = sender->acks_received();
    counters_.arq_drops_queue_full = sender->drops_queue_full();
    counters_.arq_drops_retry_exhausted = sender->drops_retry_exhausted();
  }
  if (receiver) {
    counters_.delivered = receiver->frames_delivered();
    counters_.duplicates_discarded = receiver->duplicates_discarded();
    counters_.acks_sent = receiver->acks_sent();
  }
  if (logger) {
    counters_.logged_frames = logger->frames_received();
    counters_.sequence_gaps = logger->sequence_gaps();
  }
  // Republish the snapshot into the registry (cold path; the lookups
  // find-or-create by name).
  registry_.counter("bytes_sent").set(counters_.bytes_sent);
  registry_.counter("bytes_lost").set(counters_.bytes_lost);
  registry_.counter("bytes_corrupted").set(counters_.bytes_corrupted);
  registry_.counter("frames_decoded").set(counters_.frames_decoded);
  registry_.counter("crc_errors").set(counters_.crc_errors);
  registry_.counter("framing_errors").set(counters_.framing_errors);
  registry_.counter("resyncs").set(counters_.resyncs);
  registry_.counter("arq_accepted").set(counters_.arq_accepted);
  registry_.counter("arq_transmissions").set(counters_.arq_transmissions);
  registry_.counter("arq_retransmissions").set(counters_.arq_retransmissions);
  registry_.counter("arq_acks").set(counters_.arq_acks);
  registry_.counter("arq_drops_queue_full").set(counters_.arq_drops_queue_full);
  registry_.counter("arq_drops_retry_exhausted").set(counters_.arq_drops_retry_exhausted);
  registry_.counter("arq_delivered").set(counters_.delivered);
  registry_.counter("arq_duplicates_discarded").set(counters_.duplicates_discarded);
  registry_.counter("arq_acks_sent").set(counters_.acks_sent);
  registry_.counter("logged_frames").set(counters_.logged_frames);
  registry_.counter("sequence_gaps").set(counters_.sequence_gaps);
}

void LinkStats::record_delivery_latency(double seconds) {
  latencies_.push_back(seconds);
  latency_hist_->record(seconds);
}

void LinkStats::record_attempts(int transmissions) {
  attempts_.push_back(static_cast<double>(transmissions));
}

double LinkStats::latency_percentile(double p) const {
  if (latencies_.empty()) return 0.0;
  return util::percentile(latencies_, p);
}

double LinkStats::mean_attempts() const {
  if (attempts_.empty()) return 0.0;
  return util::summarize(attempts_).mean;
}

double LinkStats::max_attempts() const {
  if (attempts_.empty()) return 0.0;
  return util::summarize(attempts_).max;
}

std::string LinkStats::report() const {
  char line[256];
  std::string out;
  std::snprintf(line, sizeof(line), "link:    sent=%llu lost=%llu corrupted=%llu\n",
                static_cast<unsigned long long>(counters_.bytes_sent),
                static_cast<unsigned long long>(counters_.bytes_lost),
                static_cast<unsigned long long>(counters_.bytes_corrupted));
  out += line;
  std::snprintf(line, sizeof(line),
                "decoder: frames=%llu crc_err=%llu framing_err=%llu resyncs=%llu\n",
                static_cast<unsigned long long>(counters_.frames_decoded),
                static_cast<unsigned long long>(counters_.crc_errors),
                static_cast<unsigned long long>(counters_.framing_errors),
                static_cast<unsigned long long>(counters_.resyncs));
  out += line;
  std::snprintf(line, sizeof(line),
                "arq tx:  accepted=%llu transmissions=%llu retransmissions=%llu acks=%llu\n"
                "         drops(queue_full)=%llu drops(retry_exhausted)=%llu\n",
                static_cast<unsigned long long>(counters_.arq_accepted),
                static_cast<unsigned long long>(counters_.arq_transmissions),
                static_cast<unsigned long long>(counters_.arq_retransmissions),
                static_cast<unsigned long long>(counters_.arq_acks),
                static_cast<unsigned long long>(counters_.arq_drops_queue_full),
                static_cast<unsigned long long>(counters_.arq_drops_retry_exhausted));
  out += line;
  std::snprintf(line, sizeof(line), "arq rx:  delivered=%llu duplicates=%llu acks_sent=%llu\n",
                static_cast<unsigned long long>(counters_.delivered),
                static_cast<unsigned long long>(counters_.duplicates_discarded),
                static_cast<unsigned long long>(counters_.acks_sent));
  out += line;
  std::snprintf(line, sizeof(line), "logger:  frames=%llu seq_gaps=%llu\n",
                static_cast<unsigned long long>(counters_.logged_frames),
                static_cast<unsigned long long>(counters_.sequence_gaps));
  out += line;
  if (!latencies_.empty()) {
    std::snprintf(line, sizeof(line), "latency: n=%zu p50=%.2f ms p99=%.2f ms max=%.2f ms\n",
                  latencies_.size(), latency_percentile(0.50) * 1e3,
                  latency_percentile(0.99) * 1e3, latency_summary().max * 1e3);
    out += line;
    out += latency_hist_->render();
  }
  return out;
}

}  // namespace distscroll::wireless
