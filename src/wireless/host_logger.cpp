#include "wireless/host_logger.h"

namespace distscroll::wireless {

void HostLogger::on_byte(std::uint8_t byte) {
  // A resync can complete several buffered frames on one byte: drain.
  for (auto frame = decoder_.feed(byte); frame; frame = decoder_.poll()) {
    on_frame(0, *frame);
  }
}

void HostLogger::on_frame(std::uint16_t device_id, const Frame& frame) {
  ++frames_logged_;
  PerDevice& dev = devices_[device_id];
  ++dev.frames;
  if (dev.last_seq) {
    const std::uint8_t expected = static_cast<std::uint8_t>(*dev.last_seq + 1);
    if (frame.seq != expected) {
      // 8-bit wraparound distance; counts frames missing in between.
      const std::uint8_t gap = static_cast<std::uint8_t>(frame.seq - expected);
      dev.sequence_gaps += gap;
      sequence_gaps_ += gap;
    }
  }
  dev.last_seq = frame.seq;
  if (frame.type == FrameType::State) {
    dev.last_state = StateReport::unpack(frame.payload);
    last_state_ = dev.last_state;
  }
  events_.push_back({queue_->now().value, device_id, frame});
}

std::optional<StateReport> HostLogger::last_state(std::uint16_t device_id) const {
  const auto it = devices_.find(device_id);
  if (it == devices_.end()) return std::nullopt;
  return it->second.last_state;
}

std::uint64_t HostLogger::frames_received(std::uint16_t device_id) const {
  const auto it = devices_.find(device_id);
  return it == devices_.end() ? 0 : it->second.frames;
}

std::uint64_t HostLogger::sequence_gaps(std::uint16_t device_id) const {
  const auto it = devices_.find(device_id);
  return it == devices_.end() ? 0 : it->second.sequence_gaps;
}

}  // namespace distscroll::wireless
