#include "wireless/host_logger.h"

namespace distscroll::wireless {

void HostLogger::on_byte(std::uint8_t byte) {
  // A resync can complete several buffered frames on one byte: drain.
  for (auto frame = decoder_.feed(byte); frame; frame = decoder_.poll()) {
    on_frame(*frame);
  }
}

void HostLogger::on_frame(const Frame& frame) {
  ++frames_logged_;
  if (last_seq_) {
    const std::uint8_t expected = static_cast<std::uint8_t>(*last_seq_ + 1);
    if (frame.seq != expected) {
      // 8-bit wraparound distance; counts frames missing in between.
      sequence_gaps_ += static_cast<std::uint8_t>(frame.seq - expected);
    }
  }
  last_seq_ = frame.seq;
  if (frame.type == FrameType::State) {
    last_state_ = StateReport::unpack(frame.payload);
  }
  events_.push_back({queue_->now().value, frame});
}

}  // namespace distscroll::wireless
