#include "wireless/arq.h"

#include <algorithm>

namespace distscroll::wireless {

// --- sender -----------------------------------------------------------------

bool ArqSender::send(FrameType type, std::vector<std::uint8_t> payload) {
  if (queue_.size() >= config_.queue_capacity) {
    ++drops_queue_full_;
    return false;
  }
  Pending pending;
  pending.frame.type = type;
  pending.frame.seq = next_seq_++;
  pending.frame.payload = std::move(payload);
  pending.wire = encode(pending.frame);
  pending.enqueued_at_s = events_->now().value;
  pending.timeout_s = config_.initial_timeout.value;
  queue_.push_back(std::move(pending));
  ++frames_accepted_;
  pump();
  return true;
}

void ArqSender::pump() {
  if (!wire_sink_) return;
  const std::size_t active = std::min(config_.window, queue_.size());
  for (std::size_t i = 0; i < active; ++i) {
    Pending& pending = queue_[i];
    if (!pending.needs_tx) continue;
    if (!wire_sink_(pending.wire)) return;  // transport full; wait for tx space
    pending.needs_tx = false;
    ++pending.attempts;
    ++transmissions_;
    if (pending.attempts > 1) {
      ++retransmissions_;
      DS_TRACE(tracer_, obs::EventKind::ArqRetry, pending.frame.seq,
               static_cast<std::uint32_t>(pending.attempts));
    } else {
      DS_TRACE(tracer_, obs::EventKind::ArqTx, pending.frame.seq,
               static_cast<std::uint32_t>(pending.wire.size()));
    }
    arm_timer(pending);
  }
}

void ArqSender::arm_timer(Pending& pending) {
  pending.epoch = next_epoch_++;
  const std::uint8_t seq = pending.frame.seq;
  const std::uint64_t epoch = pending.epoch;
  events_->schedule_after(util::Seconds{pending.timeout_s},
                         [this, seq, epoch] { on_timeout(seq, epoch); });
}

void ArqSender::on_timeout(std::uint8_t seq, std::uint64_t epoch) {
  const auto it = std::find_if(queue_.begin(), queue_.end(), [&](const Pending& p) {
    return p.frame.seq == seq && p.epoch == epoch;
  });
  if (it == queue_.end()) return;  // acked (or already dropped): stale timer
  if (it->attempts >= config_.max_attempts) {
    ++drops_retry_exhausted_;
    DS_TRACE(tracer_, obs::EventKind::ArqDrop, seq,
             static_cast<std::uint32_t>(it->attempts));
    if (drop_callback_) drop_callback_(seq);
    queue_.erase(it);
  } else {
    it->needs_tx = true;
    it->timeout_s = std::min(it->timeout_s * config_.backoff_factor, config_.max_timeout.value);
  }
  pump();
}

void ArqSender::on_ack_byte(std::uint8_t byte) {
  for (auto frame = ack_decoder_.feed(byte); frame; frame = ack_decoder_.poll()) {
    if (frame->type == FrameType::Ack) handle_ack(frame->seq);
  }
}

void ArqSender::handle_ack(std::uint8_t seq) {
  const auto it = std::find_if(queue_.begin(), queue_.end(),
                               [&](const Pending& p) { return p.frame.seq == seq; });
  if (it == queue_.end()) {
    ++duplicate_acks_;
    return;
  }
  ++acks_received_;
  if (ack_callback_) {
    ack_callback_(seq, events_->now().value - it->enqueued_at_s, it->attempts);
  }
  queue_.erase(it);
  pump();  // the window slid: queued frames may now transmit
}

std::optional<double> ArqSender::enqueue_time_s(std::uint8_t seq) const {
  const auto it = std::find_if(queue_.begin(), queue_.end(),
                               [&](const Pending& p) { return p.frame.seq == seq; });
  if (it == queue_.end()) return std::nullopt;
  return it->enqueued_at_s;
}

std::size_t ArqSender::in_flight() const {
  return static_cast<std::size_t>(std::count_if(
      queue_.begin(), queue_.end(), [](const Pending& p) { return p.attempts > 0; }));
}

std::size_t ArqSender::unsent() const {
  const std::size_t active = std::min(config_.window, queue_.size());
  std::size_t waiting = 0;
  for (std::size_t i = 0; i < active; ++i) {
    if (queue_[i].needs_tx) ++waiting;
  }
  return waiting;
}

// --- receiver ---------------------------------------------------------------

void ArqReceiver::on_byte(std::uint8_t byte) {
  for (auto frame = decoder_.feed(byte); frame; frame = decoder_.poll()) {
    on_frame(*frame);
  }
}

void ArqReceiver::on_frame(const Frame& frame) {
  if (frame.type == FrameType::Ack) return;  // not expected on the forward channel
  // Ack every arrival, duplicates included: the sender retransmitting
  // means our previous ack may have died on the reverse channel.
  Frame ack;
  ack.type = FrameType::Ack;
  ack.seq = frame.seq;
  if (ack_sink_ && ack_sink_(encode(ack))) {
    ++acks_sent_;
  } else {
    ++acks_backpressured_;
  }
  if (!accept_seq(frame.seq)) {
    ++duplicates_discarded_;
    return;
  }
  ++frames_delivered_;
  DS_TRACE(tracer_, obs::EventKind::ArqRx, frame.seq,
           static_cast<std::uint32_t>(frame.payload.size()));
  if (frame_sink_) frame_sink_(frame);
}

bool ArqReceiver::accept_seq(std::uint8_t seq) {
  if (!any_received_) {
    any_received_ = true;
    highest_seq_ = seq;
    seen_mask_ = 1;
    return true;
  }
  const auto ahead = static_cast<std::uint8_t>(seq - highest_seq_);
  if (ahead != 0 && ahead < 128) {
    // Window advances; shift history along.
    seen_mask_ = (ahead >= 64) ? 0 : (seen_mask_ << ahead);
    seen_mask_ |= 1;
    highest_seq_ = seq;
    return true;
  }
  const auto behind = static_cast<std::uint8_t>(highest_seq_ - seq);
  if (behind < 64) {
    const std::uint64_t bit = 1ull << behind;
    if (seen_mask_ & bit) return false;
    seen_mask_ |= bit;
    return true;
  }
  return false;  // older than the dedupe horizon: assume duplicate
}

}  // namespace distscroll::wireless
