// Arm-extension kinematics along the reach axis.
//
// The DistScroll control movement is moving the device toward/away from
// the body (paper Fig. 1). Voluntary reaches follow minimum-jerk
// profiles (Flash & Hogan); physiological tremor (8..12 Hz, fractions of
// a millimetre to ~2 mm at the hand, more with fatigue or thick gloves'
// grip slack) rides on top. HandModel produces the continuous true
// distance d(t) the GP2D120 sees.
#pragma once

#include <cmath>

#include "sim/random.h"
#include "util/units.h"

namespace distscroll::human {

/// Minimum-jerk position profile from x0 to x1 over duration T:
/// x(s) = x0 + (x1-x0) * (10 s^3 - 15 s^4 + 6 s^5), s = t/T in [0,1].
[[nodiscard]] inline double min_jerk(double x0, double x1, double t, double duration) {
  if (duration <= 0.0 || t >= duration) return x1;
  if (t <= 0.0) return x0;
  const double s = t / duration;
  const double shape = s * s * s * (10.0 - 15.0 * s + 6.0 * s * s);
  return x0 + (x1 - x0) * shape;
}

class Tremor {
 public:
  struct Config {
    double frequency_hz = 9.0;       // physiological tremor band centre
    double amplitude_cm = 0.08;      // hand-held device, relaxed grip
    double amplitude_jitter = 0.3;   // cycle-to-cycle amplitude variation
  };

  Tremor(Config config, sim::Rng rng) : config_(config), rng_(rng) {
    phase_ = rng_.uniform(0.0, 2.0 * 3.14159265358979);
  }

  /// Tremor displacement at simulated time t.
  [[nodiscard]] double displacement_cm(double t_seconds) {
    // A slowly amplitude-modulated sinusoid is a decent band-limited
    // surrogate; the modulation draw is keyed to the cycle count so
    // repeated queries at the same time agree.
    const double omega = 2.0 * 3.14159265358979 * config_.frequency_hz;
    const auto cycle = static_cast<long>(t_seconds * config_.frequency_hz);
    if (cycle != last_cycle_) {
      last_cycle_ = cycle;
      amp_scale_ = 1.0 + rng_.gaussian(0.0, config_.amplitude_jitter);
    }
    return config_.amplitude_cm * amp_scale_ * std::sin(omega * t_seconds + phase_);
  }

 private:
  Config config_;
  sim::Rng rng_;
  double phase_;
  long last_cycle_ = -1;
  double amp_scale_ = 1.0;
};

/// The hand holding the device: composes a sequence of min-jerk reaches
/// with tremor into the continuous true distance signal.
class HandModel {
 public:
  struct Config {
    double min_cm = 1.0;   // arm against the body
    double max_cm = 45.0;  // full comfortable extension
    Tremor::Config tremor{};
  };

  HandModel(Config config, sim::Rng rng, double initial_cm = 17.0)
      : config_(config), tremor_(config.tremor, rng.fork(1)), base_(initial_cm), target_(initial_cm) {}

  /// Begin a reach toward `to_cm`, starting at simulated time `now`,
  /// lasting `duration`. Supersedes any reach in progress (from the
  /// current position).
  void start_reach(util::Seconds now, double to_cm, util::Seconds duration) {
    base_ = voluntary_position(now.value);
    target_ = std::clamp(to_cm, config_.min_cm, config_.max_cm);
    reach_start_ = now.value;
    reach_duration_ = duration.value;
  }

  [[nodiscard]] bool reach_complete(util::Seconds now) const {
    return now.value >= reach_start_ + reach_duration_;
  }

  [[nodiscard]] double target_cm() const { return target_; }

  /// True device-to-body distance at time t (voluntary + tremor).
  [[nodiscard]] util::Centimeters distance(util::Seconds now) {
    const double d = voluntary_position(now.value) + tremor_.displacement_cm(now.value);
    return util::Centimeters{std::clamp(d, 0.0, config_.max_cm)};
  }

 private:
  [[nodiscard]] double voluntary_position(double t) const {
    return min_jerk(base_, target_, t - reach_start_, reach_duration_);
  }

  Config config_;
  Tremor tremor_;
  double base_;
  double target_;
  double reach_start_ = 0.0;
  double reach_duration_ = 0.0;
};

}  // namespace distscroll::human
