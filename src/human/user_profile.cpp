#include "human/user_profile.h"

#include <algorithm>

namespace distscroll::human {

namespace {

/// All motor/cognitive parameters derive from (expertise, glove) over
/// fresh defaults, so with_expertise / with_glove are idempotent and can
/// be re-applied between session blocks without compounding penalties.
UserProfile derive(std::string name, double expertise, Glove glove) {
  UserProfile p;
  p.name = std::move(name);
  p.expertise = std::clamp(expertise, 0.0, 1.0);
  p.glove = glove;

  const double skill = p.expertise;
  // Experts: tighter aim, faster verification, slightly faster Fitts
  // slope (practice effect), fewer slips.
  p.aim_w0_cm = 0.25 * (1.4 - 0.8 * skill);
  p.aim_w1 = 0.05 * (1.4 - 0.8 * skill);
  p.verification_time_s = 0.50 - 0.30 * skill;
  p.reaction_time_s = 0.30 - 0.08 * skill;
  p.reach_fitts.b_seconds_per_bit = 0.18 - 0.06 * skill;
  p.button_miss_probability = 0.04 * (1.0 - 0.7 * skill);

  switch (glove) {
    case Glove::None:
      break;
    case Glove::Thin:  // lab / surgical gloves
      p.fine_motor_penalty = 1.3;
      p.button_miss_probability = std::min(0.5, p.button_miss_probability * 2.5);
      p.button_press_s *= 1.15;
      // Gross arm movement almost untouched.
      p.aim_w0_cm *= 1.05;
      break;
    case Glove::Thick:  // arctic / protective gloves (the paper's scenario)
      p.fine_motor_penalty = 2.6;
      p.button_miss_probability = std::min(0.6, 0.10 + p.button_miss_probability * 6.0);
      p.button_press_s *= 1.6;
      // Reaching barely degrades: shoulder/elbow, not fingertips.
      p.aim_w0_cm *= 1.15;
      p.aim_w1 *= 1.10;
      p.tremor.amplitude_cm *= 1.2;  // grip slack
      break;
  }
  return p;
}

}  // namespace

UserProfile UserProfile::with_expertise(double e) const { return derive(name, e, glove); }

UserProfile UserProfile::with_glove(Glove g) const { return derive(name, expertise, g); }

}  // namespace distscroll::human
