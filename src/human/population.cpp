#include "human/population.h"

#include <algorithm>
#include <cmath>

namespace distscroll::human {

SampledParticipant sample_participant(const PopulationSpec& spec, sim::Rng rng) {
  SampledParticipant out;

  // Draw order is fixed — see the header. Every draw happens even when a
  // weight later discards its effect, so the stream layout never depends
  // on spec values.
  const double start_expertise =
      std::clamp(rng.gaussian(spec.expertise_mean, spec.expertise_sd), 0.0, 1.0);
  out.learning_rate =
      std::clamp(rng.gaussian(spec.learning_rate_mean, spec.learning_rate_sd), 0.05, 0.80);
  out.practice_blocks = rng.uniform_int(0, std::max(0, spec.max_practice_blocks));
  const double glove_u = rng.uniform01();
  const double severity = std::exp(rng.gaussian(0.0, spec.tremor_severity_sigma));
  const double freq_hz =
      std::clamp(rng.gaussian(spec.tremor_freq_mean_hz, spec.tremor_freq_sd_hz), 6.0, 12.0);
  const double reach_cm = rng.gaussian(spec.arm_reach_mean_cm, spec.arm_reach_sd_cm);

  // Practice: the same saturating rule study::run_session applies
  // between blocks, so "k practiced blocks" means exactly k session
  // blocks' worth of learning.
  double expertise = start_expertise;
  for (int block = 0; block < out.practice_blocks; ++block) {
    expertise += out.learning_rate * (1.0 - expertise);
  }
  out.effective_expertise = std::clamp(expertise, 0.0, 1.0);

  // Glove mix by normalised cumulative weights.
  const double none_w = std::max(0.0, spec.glove_none_w);
  const double thin_w = std::max(0.0, spec.glove_thin_w);
  const double thick_w = std::max(0.0, spec.glove_thick_w);
  const double total_w = none_w + thin_w + thick_w;
  Glove glove = Glove::None;
  if (total_w > 0.0) {
    const double u = glove_u * total_w;
    glove = u < none_w ? Glove::None : (u < none_w + thin_w ? Glove::Thin : Glove::Thick);
  }

  out.profile = UserProfile{}.with_expertise(out.effective_expertise).with_glove(glove);
  out.profile.tremor.amplitude_cm *= severity;
  out.profile.tremor.frequency_hz = freq_hz;

  // Snap reach to the nearest calibration preset (bounded island-table
  // cache; see header).
  double best = kReachPresetsCm.front();
  for (const double preset : kReachPresetsCm) {
    if (std::abs(preset - reach_cm) < std::abs(best - reach_cm)) best = preset;
  }
  out.reach_far_cm = best;
  return out;
}

}  // namespace distscroll::human
