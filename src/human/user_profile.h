// Simulated participant profiles.
//
// The paper's initial study covered "students, colleagues and people
// without direct technical background", with and without gloves (the
// motivating scenario). A UserProfile bundles the motor and cognitive
// parameters the closed-loop models consume; glove presets shift them
// the way thick gloves shift real dexterity: slower and noisier fine
// positioning, much worse small-button accuracy, barely affected gross
// arm movement — which is exactly DistScroll's selling point.
#pragma once

#include <string>

#include "human/fitts.h"
#include "human/hand_model.h"

namespace distscroll::human {

enum class Glove : std::uint8_t { None, Thin, Thick };

struct UserProfile {
  std::string name = "participant";
  /// 0 = first contact with the device, 1 = practiced daily user.
  double expertise = 0.3;
  Glove glove = Glove::None;

  // --- cognition -----------------------------------------------------------
  /// Simple visual reaction time to a display change.
  double reaction_time_s = 0.26;
  /// Time to read/verify the highlighted entry before committing.
  double verification_time_s = 0.35;

  // --- gross arm movement (reaching: the DistScroll control) ---------------
  FittsParams reach_fitts{0.10, 0.15};
  /// Endpoint scatter: sigma = w0 + w1 * amplitude (Schmidt's law).
  double aim_w0_cm = 0.25;
  double aim_w1 = 0.05;
  Tremor::Config tremor{};

  // --- fine motor (buttons, stylus, small wheels) ---------------------------
  /// Time for a deliberate button press (down+up).
  double button_press_s = 0.22;
  /// Probability a small-button press misses/slips.
  double button_miss_probability = 0.02;
  /// Multiplier on fine-motor noise and times (gloves >> 1).
  double fine_motor_penalty = 1.0;

  // --- rate-control style (tilt) -------------------------------------------
  /// Max comfortable wrist tilt (radians) and angular speed (rad/s).
  double max_tilt_rad = 0.6;
  double tilt_speed_rad_s = 2.5;

  /// Apply expertise: experts aim tighter, verify faster.
  [[nodiscard]] UserProfile with_expertise(double e) const;
  /// Apply glove effects on top of the current profile.
  [[nodiscard]] UserProfile with_glove(Glove g) const;

  static UserProfile novice() { return UserProfile{}.with_expertise(0.15); }
  static UserProfile average() { return UserProfile{}.with_expertise(0.5); }
  static UserProfile expert() { return UserProfile{}.with_expertise(0.95); }
};

}  // namespace distscroll::human
