// Sampled participant populations for fleet-scale studies.
//
// The paper's study pool was nine people; population-level claims
// (island reachability, selection time, error rate across gloves and
// skill levels) need orders of magnitude more. A PopulationSpec
// describes the distribution the fleet engine samples one participant
// per index from: starting expertise and practice history (folded
// through the same saturating learning rule study::Session uses),
// glove mix, tremor severity/frequency, and arm reach.
//
// Determinism: sample_participant() consumes its Rng in a FIXED draw
// order (documented below) — the stream is forked per participant index
// by the fleet engine, so participant k's profile is a pure function of
// (base_seed, k, spec) regardless of threads or scheduling.
//
// Arm reach is quantised onto kReachPresetsCm. The batched session
// kernel caches island tables keyed on the full island config; a
// continuous per-participant far-distance would grow that cache without
// bound (and linear-scan it), so reach maps to a small set of
// "calibration presets" — exactly how a real deployment would ship
// device range presets rather than per-user continuous calibration.
#pragma once

#include <array>

#include "human/user_profile.h"
#include "sim/random.h"

namespace distscroll::human {

struct PopulationSpec {
  // --- skill & practice ----------------------------------------------------
  double expertise_mean = 0.35;
  double expertise_sd = 0.18;
  double learning_rate_mean = 0.35;  // per-block saturating gain (session.h)
  double learning_rate_sd = 0.10;
  /// Practice blocks already completed before measurement, uniform in
  /// [0, max_practice_blocks].
  int max_practice_blocks = 4;

  // --- glove mix (weights, any positive scale) -----------------------------
  double glove_none_w = 0.70;
  double glove_thin_w = 0.15;
  double glove_thick_w = 0.15;

  // --- motor variation -----------------------------------------------------
  /// Tremor amplitude multiplier is lognormal: exp(N(0, sigma)).
  double tremor_severity_sigma = 0.35;
  double tremor_freq_mean_hz = 9.0;
  double tremor_freq_sd_hz = 0.8;

  // --- anthropometrics -----------------------------------------------------
  /// Comfortable far reach of the device from the body (cm), quantised
  /// onto kReachPresetsCm after clamping to the presets' span.
  double arm_reach_mean_cm = 30.0;
  double arm_reach_sd_cm = 4.0;
};

/// Calibrated device range presets the sampled reach snaps to (see the
/// header comment on why reach is discrete).
inline constexpr std::array<double, 4> kReachPresetsCm = {24.0, 27.0, 30.0, 33.0};

struct SampledParticipant {
  UserProfile profile;
  double learning_rate = 0.35;
  int practice_blocks = 0;
  /// Effective expertise after practice (what profile was derived with).
  double effective_expertise = 0.35;
  double reach_far_cm = 30.0;  // one of kReachPresetsCm
};

/// Draw order (fixed, part of the determinism contract): expertise,
/// learning rate, practice blocks, glove, tremor severity, tremor
/// frequency, arm reach.
[[nodiscard]] SampledParticipant sample_participant(const PopulationSpec& spec, sim::Rng rng);

}  // namespace distscroll::human
