// Closed-loop simulated participant.
//
// Drives a baselines::ScrollTechnique's control channel the way a human
// would: aimed minimum-jerk reaches timed by Fitts' law for absolute
// channels, delayed-feedback proportional control for rate channels,
// clutched strokes for pull-wheels, key presses with auto-repeat for
// buttons — all with tremor, aim scatter, perception/reaction delays and
// glove penalties from the UserProfile. This is the substitution for the
// paper's human participants (see DESIGN.md): every Section 6/7
// experiment runs through this planner.
#pragma once

#include "baselines/scroll_technique.h"
#include "human/user_profile.h"
#include "sim/random.h"

namespace distscroll::human {

struct AcquisitionOutcome {
  bool success = false;
  double time_s = 0.0;           // start of movement to committed selection
  int corrective_movements = 0;  // re-aims after the first movement
  int overshoots = 0;            // cursor crossed the target and came back
  int wrong_selections = 0;      // select pressed while off target
  double id_bits = 0.0;          // scrolling ID: log2(|start-target| + 1)

  friend bool operator==(const AcquisitionOutcome&, const AcquisitionOutcome&) = default;
};

class MotionPlanner {
 public:
  struct Config {
    double dt_s = 0.004;            // control-loop integration step
    double timeout_s = 40.0;        // trial abort
    double settle_dwell_s = 0.20;   // time on target before trusting it
    /// Discrete techniques hold the key (auto-repeat) above this
    /// distance instead of single presses.
    int hold_threshold = 6;
  };

  MotionPlanner(Config config, sim::Rng rng) : config_(config), rng_(rng) {}

  /// Acquire `target` in the technique's current level and commit with a
  /// select press. The technique must already be reset() to the level.
  AcquisitionOutcome acquire(baselines::ScrollTechnique& technique, std::size_t target,
                             const UserProfile& profile);

 private:
  struct LoopState;

  AcquisitionOutcome run_absolute(baselines::ScrollTechnique& t, std::size_t target,
                                  const UserProfile& p);
  AcquisitionOutcome run_rate(baselines::ScrollTechnique& t, std::size_t target,
                              const UserProfile& p);
  AcquisitionOutcome run_stroke(baselines::ScrollTechnique& t, std::size_t target,
                                const UserProfile& p);
  AcquisitionOutcome run_unbounded(baselines::ScrollTechnique& t, std::size_t target,
                                   const UserProfile& p);
  AcquisitionOutcome run_discrete(baselines::ScrollTechnique& t, std::size_t target,
                                  const UserProfile& p);

  /// Commit phase: press select while keeping the channel steady;
  /// returns false (and charges time) on slips/off-target presses.
  bool commit_selection(baselines::ScrollTechnique& t, std::size_t target, const UserProfile& p,
                        double hold_u, bool feed_control, AcquisitionOutcome& outcome);

  /// Effective glove factors for this technique.
  static double effective_fine_penalty(const baselines::ScrollTechnique& t,
                                       const UserProfile& p);
  static double effective_miss_probability(const baselines::ScrollTechnique& t,
                                           const UserProfile& p);

  Config config_;
  sim::Rng rng_;
};

}  // namespace distscroll::human
