// Fitts' law timing for aimed movements.
//
// The paper's first open question (Section 7) cites Hinckley et al.'s
// "Quantitative analysis of scrolling techniques": "So far, we only know
// that Fitts' Law holds for scrolling". Our simulated users time every
// aimed movement with Fitts' law, MT = a + b * log2(A/W + 1) (Shannon
// formulation), so technique comparisons inherit exactly the regularity
// the paper assumes.
#pragma once

#include <algorithm>
#include <cmath>

#include "util/units.h"

namespace distscroll::human {

struct FittsParams {
  double a_seconds = 0.10;      // intercept: reaction/initiation residue
  double b_seconds_per_bit = 0.15;  // slope for forearm reaching movements
};

/// Index of difficulty in bits (Shannon). Amplitude and width in the
/// same unit; width is clamped to a sane minimum.
[[nodiscard]] inline double index_of_difficulty(double amplitude, double width) {
  width = std::max(1e-3, width);
  amplitude = std::max(0.0, amplitude);
  return std::log2(amplitude / width + 1.0);
}

/// Movement time for an aimed movement of `amplitude` onto a target of
/// `width`.
[[nodiscard]] inline util::Seconds movement_time(const FittsParams& params, double amplitude,
                                                 double width) {
  const double id = index_of_difficulty(amplitude, width);
  return util::Seconds{std::max(0.05, params.a_seconds + params.b_seconds_per_bit * id)};
}

/// Effective throughput in bits/s given a measured time for a task of
/// known difficulty (study metric).
[[nodiscard]] inline double throughput_bits_per_s(double id_bits, util::Seconds time) {
  if (time.value <= 0.0) return 0.0;
  return id_bits / time.value;
}

}  // namespace distscroll::human
