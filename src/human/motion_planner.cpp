#include "human/motion_planner.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "baselines/button_scroll.h"
#include "baselines/wheel_scroll.h"
#include "human/fitts.h"
#include "human/hand_model.h"

namespace distscroll::human {

namespace {

/// Perceived-cursor buffer: the user reacts to where the cursor WAS
/// reaction_time ago, not where it is.
///
/// Inline fixed ring instead of std::deque: one of these is constructed
/// per rate/unbounded trial, and the deque's chunk-map allocation plus
/// teardown showed up at ~8% of exp_scroll_comparison's flat profile.
/// Capacity covers reaction_time/dt with 1.7x headroom (worst profile:
/// 0.30 s at 4 ms steps = 75 live samples); if a configuration ever
/// exceeds it, the oldest sample is dropped — which only shortens the
/// perceived delay for windows that could not fit anyway.
class DelayedPerception {
 public:
  explicit DelayedPerception(double delay_s) : delay_s_(delay_s) {}

  void observe(double t, long cursor) {
    if (size_ == kCapacity) {
      head_ = (head_ + 1) & kMask;
      --size_;
    }
    buffer_[(head_ + size_) & kMask] = {t, cursor};
    ++size_;
  }

  [[nodiscard]] long perceived(double t) {
    const double cutoff = t - delay_s_;
    while (size_ > 1 && buffer_[(head_ + 1) & kMask].t <= cutoff) {
      head_ = (head_ + 1) & kMask;
      --size_;
    }
    return size_ == 0 ? 0 : buffer_[head_].cursor;
  }

 private:
  struct Sample {
    double t;
    long cursor;
  };
  static constexpr std::size_t kCapacity = 128;
  static constexpr std::size_t kMask = kCapacity - 1;
  double delay_s_;
  std::array<Sample, kCapacity> buffer_{};
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

/// Counts sign changes of (cursor - target): each full crossing is an
/// overshoot.
class OvershootCounter {
 public:
  explicit OvershootCounter(long target) : target_(target) {}

  void observe(long cursor) {
    const int sign = cursor > target_ ? 1 : (cursor < target_ ? -1 : 0);
    if (sign != 0 && last_sign_ != 0 && sign != last_sign_) ++count_;
    if (sign != 0) last_sign_ = sign;
  }

  [[nodiscard]] int count() const { return count_; }

 private:
  long target_;
  int last_sign_ = 0;
  int count_ = 0;
};

}  // namespace

double MotionPlanner::effective_fine_penalty(const baselines::ScrollTechnique& t,
                                             const UserProfile& p) {
  return 1.0 + (p.fine_motor_penalty - 1.0) * t.glove_sensitivity();
}

double MotionPlanner::effective_miss_probability(const baselines::ScrollTechnique& t,
                                                 const UserProfile& p) {
  return std::min(0.7, p.button_miss_probability * t.glove_sensitivity());
}

AcquisitionOutcome MotionPlanner::acquire(baselines::ScrollTechnique& technique,
                                          std::size_t target, const UserProfile& profile) {
  const long start = static_cast<long>(technique.cursor());
  AcquisitionOutcome outcome;
  switch (technique.spec().style) {
    case baselines::ControlStyle::AbsolutePosition:
      outcome = run_absolute(technique, target, profile);
      break;
    case baselines::ControlStyle::RateControl:
      outcome = run_rate(technique, target, profile);
      break;
    case baselines::ControlStyle::RelativeStroke:
      outcome = run_stroke(technique, target, profile);
      break;
    case baselines::ControlStyle::RelativeUnbounded:
      outcome = run_unbounded(technique, target, profile);
      break;
    case baselines::ControlStyle::DiscreteSteps:
      outcome = run_discrete(technique, target, profile);
      break;
  }
  outcome.id_bits =
      std::log2(std::abs(start - static_cast<long>(target)) + 1.0);
  return outcome;
}

bool MotionPlanner::commit_selection(baselines::ScrollTechnique& t, std::size_t target,
                                     const UserProfile& p, double hold_u, bool feed_control,
                                     AcquisitionOutcome& outcome) {
  const double penalty = effective_fine_penalty(t, p);
  const double press_time = p.button_press_s * penalty;
  // Press slips entirely with the glove-scaled miss probability.
  if (rng_.bernoulli(effective_miss_probability(t, p))) {
    outcome.time_s += press_time * 1.5;  // failed press + noticing
    return false;
  }
  // Holding the channel steady during the press: tremor may push an
  // absolute channel across an island boundary mid-press.
  if (feed_control) {
    Tremor tremor(p.tremor, rng_.fork(777));
    const double t0 = outcome.time_s;
    for (double dt = 0.0; dt < press_time; dt += config_.dt_s) {
      t.on_control(util::Seconds{t0 + dt}, hold_u + tremor.displacement_cm(t0 + dt));
    }
  }
  outcome.time_s += press_time;
  if (t.cursor() != target) {
    ++outcome.wrong_selections;
    return false;
  }
  return true;
}

AcquisitionOutcome MotionPlanner::run_absolute(baselines::ScrollTechnique& t, std::size_t target,
                                               const UserProfile& p) {
  AcquisitionOutcome outcome;
  const auto spec = t.spec();
  const auto maybe_target_u = t.target_u(target);
  if (!maybe_target_u) return outcome;
  const double goal_u = *maybe_target_u;
  const double width_u = t.target_width_u(target);

  Tremor tremor(p.tremor, rng_.fork(1));
  OvershootCounter overshoots(static_cast<long>(target));
  double u = spec.u_neutral;
  double now = 0.0;
  bool first_move = true;

  while (now < config_.timeout_s) {
    // Aim with amplitude-proportional scatter; corrective movements aim
    // tighter (shorter amplitude => smaller sigma by Schmidt's law).
    const double amplitude = std::abs(goal_u - u);
    const double sigma = p.aim_w0_cm + p.aim_w1 * amplitude;
    double aim = goal_u + rng_.gaussian(0.0, sigma);
    aim = std::clamp(aim, spec.u_min, spec.u_max);
    const util::Seconds reach_time = movement_time(p.reach_fitts, amplitude, width_u);

    if (!first_move) ++outcome.corrective_movements;
    first_move = false;

    // Execute the reach, feeding the channel densely.
    const double t0 = now;
    const double u0 = u;
    while (now < t0 + reach_time.value) {
      u = min_jerk(u0, aim, now - t0, reach_time.value);
      t.on_control(util::Seconds{now}, u + tremor.displacement_cm(now));
      overshoots.observe(static_cast<long>(t.cursor()));
      now += config_.dt_s;
    }
    u = aim;

    // Settle & perceive: hold, then check after the reaction time.
    const double dwell = p.reaction_time_s + config_.settle_dwell_s;
    const double s0 = now;
    while (now < s0 + dwell) {
      t.on_control(util::Seconds{now}, u + tremor.displacement_cm(now));
      overshoots.observe(static_cast<long>(t.cursor()));
      now += config_.dt_s;
    }

    if (t.cursor() == target) {
      // Verify the label, then commit.
      now += p.verification_time_s;
      outcome.time_s = now;
      if (commit_selection(t, target, p, u, /*feed_control=*/true, outcome)) {
        outcome.success = true;
        outcome.overshoots = overshoots.count();
        return outcome;
      }
      now = outcome.time_s;
      continue;  // slipped or drifted: re-settle and retry
    }
  }
  outcome.time_s = now;
  outcome.overshoots = overshoots.count();
  return outcome;
}

AcquisitionOutcome MotionPlanner::run_rate(baselines::ScrollTechnique& t, std::size_t target,
                                           const UserProfile& p) {
  AcquisitionOutcome outcome;
  const auto spec = t.spec();
  DelayedPerception perception(p.reaction_time_s);
  OvershootCounter overshoots(static_cast<long>(target));
  const double penalty = effective_fine_penalty(t, p);

  double u = spec.u_neutral;
  double now = 0.0;
  double on_target_since = -1.0;

  while (now < config_.timeout_s) {
    perception.observe(now, static_cast<long>(t.cursor()));
    const long perceived = perception.perceived(now);
    const long err = static_cast<long>(target) - perceived;

    // Proportional zone of ~6 entries, saturating to full deflection.
    double desired =
        spec.u_max * std::clamp(static_cast<double>(err) / 6.0, -1.0, 1.0);
    if (err == 0) desired = spec.u_neutral;
    // Wrist moves toward the desired angle at a limited (glove-scaled)
    // angular speed, with motor wobble.
    const double max_step = (p.tilt_speed_rad_s / penalty) * config_.dt_s;
    const double delta = std::clamp(desired - u, -max_step, max_step);
    u += delta + rng_.gaussian(0.0, 0.008 * penalty);
    u = std::clamp(u, spec.u_min, spec.u_max);

    t.on_control(util::Seconds{now}, u);
    overshoots.observe(static_cast<long>(t.cursor()));
    now += config_.dt_s;

    if (t.cursor() == target && std::abs(u) < 0.5 * spec.u_max) {
      if (on_target_since < 0.0) on_target_since = now;
      if (now - on_target_since >= config_.settle_dwell_s + p.reaction_time_s) {
        now += p.verification_time_s;
        outcome.time_s = now;
        if (commit_selection(t, target, p, u, /*feed_control=*/false, outcome)) {
          outcome.success = true;
          outcome.overshoots = overshoots.count();
          return outcome;
        }
        now = outcome.time_s;
        on_target_since = -1.0;
        ++outcome.corrective_movements;
      }
    } else {
      on_target_since = -1.0;
    }
  }
  outcome.time_s = now;
  outcome.overshoots = overshoots.count();
  return outcome;
}

AcquisitionOutcome MotionPlanner::run_stroke(baselines::ScrollTechnique& t, std::size_t target,
                                             const UserProfile& p) {
  AcquisitionOutcome outcome;
  auto* wheel = dynamic_cast<baselines::WheelScroll*>(&t);
  OvershootCounter overshoots(static_cast<long>(target));
  const double gain = wheel ? wheel->gain() : 1.0;
  const double stroke_max = wheel ? wheel->stroke_max_cm() : t.spec().u_max;

  double now = 0.0;
  bool first = true;
  while (now < config_.timeout_s) {
    const long err = static_cast<long>(target) - static_cast<long>(t.cursor());
    if (err == 0) {
      now += p.verification_time_s;
      outcome.time_s = now;
      if (commit_selection(t, target, p, 0.0, /*feed_control=*/false, outcome)) {
        outcome.success = true;
        outcome.overshoots = overshoots.count();
        return outcome;
      }
      now = outcome.time_s;
      continue;
    }
    if (!first) ++outcome.corrective_movements;
    first = false;

    // One clutched stroke: pull out, freewheel back.
    const double desired_entries = std::min<double>(std::abs(err), gain * stroke_max);
    double length = desired_entries / gain;
    length *= 1.0 + rng_.gaussian(0.0, 0.06);  // pull-length scatter
    length = std::clamp(length, 0.3, stroke_max);
    if (wheel) {
      wheel->set_direction(err > 0 ? 1 : -1);
    }
    t.set_engaged(true);
    const util::Seconds pull_time =
        movement_time(p.reach_fitts, length, std::max(0.3, 1.0 / gain));
    const double t0 = now;
    while (now < t0 + pull_time.value) {
      const double u = min_jerk(0.0, length, now - t0, pull_time.value);
      t.on_control(util::Seconds{now}, u);
      overshoots.observe(static_cast<long>(t.cursor()));
      now += config_.dt_s;
    }
    t.set_engaged(false);
    if (wheel && wheel->jammed(util::Seconds{now})) {
      now += wheel->jam_recovery().value;  // shake the mechanism loose
    }
    // Spring retraction (~0.25 s), then perceive the result.
    const double r0 = now;
    while (now < r0 + 0.25) {
      const double u = min_jerk(length, 0.0, now - r0, 0.25);
      t.on_control(util::Seconds{now}, u);
      now += config_.dt_s;
    }
    now += p.reaction_time_s;
  }
  outcome.time_s = now;
  outcome.overshoots = overshoots.count();
  return outcome;
}

AcquisitionOutcome MotionPlanner::run_unbounded(baselines::ScrollTechnique& t, std::size_t target,
                                                const UserProfile& p) {
  AcquisitionOutcome outcome;
  const auto spec = t.spec();
  DelayedPerception perception(p.reaction_time_s);
  OvershootCounter overshoots(static_cast<long>(target));
  const double penalty = effective_fine_penalty(t, p);
  // Thick gloves on a touch surface: gestures intermittently fail to
  // register at all.
  const double dropout_per_s = (p.glove == Glove::Thick) ? 0.8 : (p.glove == Glove::Thin ? 0.1 : 0.0);

  double u = 0.0;
  double now = 0.0;
  double on_target_since = -1.0;
  bool touching = true;

  while (now < config_.timeout_s) {
    perception.observe(now, static_cast<long>(t.cursor()));
    const long err = static_cast<long>(target) - perception.perceived(now);

    if (touching && rng_.bernoulli(dropout_per_s * config_.dt_s)) {
      // Touch lost: lift, re-place the finger (costs time, no motion).
      touching = false;
      now += 0.5 * penalty;
      touching = true;
      continue;
    }

    // Circle speed proportional to remaining error, capped by the
    // comfortable gesture rate (slower with gloves/stylus problems).
    const double max_rate = spec.max_rate / penalty;
    const double rate =
        std::clamp(static_cast<double>(err) * 0.25, -max_rate, max_rate);
    u += rate * config_.dt_s + rng_.gaussian(0.0, 0.002 * penalty);
    t.on_control(util::Seconds{now}, u);
    overshoots.observe(static_cast<long>(t.cursor()));
    now += config_.dt_s;

    if (t.cursor() == target) {
      if (on_target_since < 0.0) on_target_since = now;
      if (now - on_target_since >= config_.settle_dwell_s + p.reaction_time_s) {
        now += p.verification_time_s;
        outcome.time_s = now;
        if (commit_selection(t, target, p, u, /*feed_control=*/false, outcome)) {
          outcome.success = true;
          outcome.overshoots = overshoots.count();
          return outcome;
        }
        now = outcome.time_s;
        on_target_since = -1.0;
        ++outcome.corrective_movements;
      }
    } else {
      on_target_since = -1.0;
    }
  }
  outcome.time_s = now;
  outcome.overshoots = overshoots.count();
  return outcome;
}

AcquisitionOutcome MotionPlanner::run_discrete(baselines::ScrollTechnique& t, std::size_t target,
                                               const UserProfile& p) {
  AcquisitionOutcome outcome;
  auto* buttons = dynamic_cast<baselines::ButtonScroll*>(&t);
  OvershootCounter overshoots(static_cast<long>(target));
  const double penalty = effective_fine_penalty(t, p);
  const double miss_p = effective_miss_probability(t, p);

  double now = 0.0;
  while (now < config_.timeout_s) {
    const long err = static_cast<long>(target) - static_cast<long>(t.cursor());
    if (err == 0) {
      now += p.verification_time_s;
      outcome.time_s = now;
      if (commit_selection(t, target, p, 0.0, /*feed_control=*/false, outcome)) {
        outcome.success = true;
        outcome.overshoots = overshoots.count();
        return outcome;
      }
      now = outcome.time_s;
      continue;
    }

    if (buttons && std::abs(err) >= config_.hold_threshold) {
      // Hold for auto-repeat; release is late by the reaction time, so
      // overshoot is built in.
      buttons->begin_hold(util::Seconds{now}, err > 0 ? 1 : -1);
      while (static_cast<long>(t.cursor()) != static_cast<long>(target) &&
             now < config_.timeout_s) {
        buttons->poll_hold(util::Seconds{now});
        overshoots.observe(static_cast<long>(t.cursor()));
        // Stop condition is evaluated on the *perceived* (delayed)
        // cursor: keep holding a little past the target.
        const long c = static_cast<long>(t.cursor());
        if ((err > 0 && c >= static_cast<long>(target)) ||
            (err < 0 && c <= static_cast<long>(target))) {
          break;
        }
        now += config_.dt_s;
      }
      now += p.reaction_time_s;  // late release
      buttons->end_hold(util::Seconds{now});
      overshoots.observe(static_cast<long>(t.cursor()));
      ++outcome.corrective_movements;
      continue;
    }

    // Single deliberate press.
    now += p.button_press_s * penalty;
    if (!rng_.bernoulli(miss_p)) {
      t.on_step(util::Seconds{now}, err > 0 ? 1 : -1);
    }
    overshoots.observe(static_cast<long>(t.cursor()));
    // Short inter-press gap.
    now += 0.06 * penalty;
  }
  outcome.time_s = now;
  outcome.overshoots = overshoots.count();
  return outcome;
}

}  // namespace distscroll::human
