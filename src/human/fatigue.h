// Muscular fatigue accumulation.
//
// The paper's critique of tilt input: "using this input method for a
// longer period of time is fatiguing" (Section 2). Distance scrolling
// holds the arm extended instead — also effortful. This model makes the
// argument quantitative: each technique accrues fatigue at a
// posture-specific rate while operating, recovers at rest, and the
// fatigue level feeds back into the motor parameters (tremor grows,
// movements slow) the way sustained isometric load actually degrades
// pointing.
#pragma once

#include <algorithm>

#include "human/user_profile.h"

namespace distscroll::human {

class FatigueModel {
 public:
  struct Config {
    /// Effort accrual in fatigue-units/second of active use, tuned so a
    /// 15-minute continuous session approaches (but does not instantly
    /// hit) saturation for the worst posture.
    double wrist_tilt_rate = 0.0035;    // sustained wrist deviation: worst
    double arm_extension_rate = 0.0019; // holding the arm out (DistScroll)
    double stroke_rate = 0.0011;        // repeated pulls (YoYo wheel)
    double button_rate = 0.0003;        // thumb presses: least
    /// Recovery in units/second at rest.
    double recovery_rate = 0.0009;
    /// Feedback gains per fatigue unit.
    double tremor_gain = 1.2;    // tremor amplitude multiplier slope
    double slowdown_gain = 0.6;  // movement-speed multiplier slope
    double cap = 1.0;            // saturation
  };

  FatigueModel() : FatigueModel(Config{}) {}
  explicit FatigueModel(Config config) : config_(config) {}

  [[nodiscard]] double level() const { return level_; }
  [[nodiscard]] const Config& config() const { return config_; }

  /// Accrue `seconds` of active effort at `rate` (one of the config
  /// rates), minus the concurrent recovery.
  void accrue(double seconds, double rate) {
    level_ = std::clamp(level_ + seconds * rate, 0.0, config_.cap);
  }

  /// Rest for `seconds`.
  void rest(double seconds) {
    level_ = std::max(0.0, level_ - seconds * config_.recovery_rate);
  }

  [[nodiscard]] double tremor_multiplier() const { return 1.0 + config_.tremor_gain * level_; }
  [[nodiscard]] double time_multiplier() const { return 1.0 + config_.slowdown_gain * level_; }

  /// A profile with the current fatigue applied. Degrades every motor
  /// pathway the planner uses: aimed reaches (Fitts slope, aim scatter,
  /// tremor), rate control (wrist speed, wobble via fine_motor_penalty)
  /// and presses.
  [[nodiscard]] UserProfile apply(const UserProfile& base) const {
    UserProfile fatigued = base;
    fatigued.tremor.amplitude_cm *= tremor_multiplier();
    fatigued.reach_fitts.b_seconds_per_bit *= time_multiplier();
    fatigued.aim_w0_cm *= tremor_multiplier();
    fatigued.aim_w1 *= tremor_multiplier();
    fatigued.button_press_s *= time_multiplier();
    fatigued.tilt_speed_rad_s /= time_multiplier();
    fatigued.fine_motor_penalty *= time_multiplier();
    return fatigued;
  }

 private:
  Config config_;
  double level_ = 0.0;
};

}  // namespace distscroll::human
