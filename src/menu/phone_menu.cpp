#include "menu/phone_menu.h"

#include "menu/menu_builder.h"

namespace distscroll::menu {

std::unique_ptr<MenuNode> make_phone_menu() {
  MenuBuilder b("phone");
  b.submenu("Messages")
      .item("Write message")
      .item("Inbox")
      .item("Outbox")
      .item("Drafts")
      .item("Templates")
      .end();
  b.submenu("Contacts")
      .item("Search")
      .item("Add contact")
      .item("Speed dials")
      .item("Groups")
      .end();
  b.submenu("Call register")
      .item("Missed calls")
      .item("Received calls")
      .item("Dialled numbers")
      .item("Call duration")
      .end();
  b.submenu("Settings")
      .submenu("Tones")
      .item("Ringing tone")
      .item("Ringing volume")
      .item("Vibrating alert")
      .end()
      .submenu("Display")
      .item("Wallpaper")
      .item("Contrast")
      .item("Backlight time")
      .end()
      .item("Clock")
      .item("Language")
      .item("Security")
      .end();
  b.submenu("Organiser")
      .item("Alarm clock")
      .item("Calendar")
      .item("To-do list")
      .item("Notes")
      .end();
  b.submenu("Games").item("Snake").item("Space impact").item("Bantumi").end();
  b.item("Profiles");
  b.item("SIM services");
  return b.build();
}

}  // namespace distscroll::menu
