// Hierarchical menu data structure and navigation cursor.
//
// DistScroll is "an interaction device for navigating data structures or
// browsing menus" (paper abstract). The menu tree is the data structure
// under navigation; MenuCursor is the per-session navigation state the
// firmware mutates (scroll within a level, enter a submenu, go back).
#pragma once

#include <cassert>
#include <memory>
#include <string>
#include <vector>

namespace distscroll::menu {

class MenuNode {
 public:
  explicit MenuNode(std::string label) : label_(std::move(label)) {}

  [[nodiscard]] const std::string& label() const { return label_; }
  [[nodiscard]] bool is_leaf() const { return children_.empty(); }
  [[nodiscard]] std::size_t child_count() const { return children_.size(); }
  [[nodiscard]] const MenuNode& child(std::size_t i) const {
    assert(i < children_.size());
    return *children_[i];
  }
  [[nodiscard]] MenuNode& child(std::size_t i) {
    assert(i < children_.size());
    return *children_[i];
  }

  MenuNode& add_child(std::string label) {
    children_.push_back(std::make_unique<MenuNode>(std::move(label)));
    return *children_.back();
  }

  /// Total nodes in the subtree including this one.
  [[nodiscard]] std::size_t subtree_size() const {
    std::size_t n = 1;
    for (const auto& c : children_) n += c->subtree_size();
    return n;
  }

  /// Maximum depth below this node (leaf = 0).
  [[nodiscard]] std::size_t depth() const {
    std::size_t d = 0;
    for (const auto& c : children_) d = std::max(d, 1 + c->depth());
    return d;
  }

 private:
  std::string label_;
  std::vector<std::unique_ptr<MenuNode>> children_;
};

/// Navigation state over a MenuNode tree. The cursor always points at an
/// entry of the "current level" (the children of some interior node).
class MenuCursor {
 public:
  explicit MenuCursor(const MenuNode& root) : root_(&root) {
    assert(!root.is_leaf() && "menu root must have entries");
  }

  [[nodiscard]] const MenuNode& current_level() const {
    return path_.empty() ? *root_ : *path_.back();
  }
  [[nodiscard]] std::size_t level_size() const { return current_level().child_count(); }
  [[nodiscard]] std::size_t index() const { return index_; }
  [[nodiscard]] const MenuNode& highlighted() const { return current_level().child(index_); }
  [[nodiscard]] std::size_t depth() const { return path_.size(); }
  [[nodiscard]] bool at_root_level() const { return path_.empty(); }

  /// Absolute positioning within the level — this is what distance
  /// scrolling drives. Clamps to the level bounds.
  void move_to(std::size_t i) {
    if (level_size() == 0) return;
    index_ = std::min(i, level_size() - 1);
  }

  void move_by(int delta) {
    const auto size = static_cast<long>(level_size());
    if (size == 0) return;
    long i = static_cast<long>(index_) + delta;
    i = std::max(0L, std::min(i, size - 1));
    index_ = static_cast<std::size_t>(i);
  }

  /// Enter the highlighted submenu; returns false for leaves (a leaf
  /// selection is an activation, not a navigation).
  bool enter() {
    const MenuNode& target = highlighted();
    if (target.is_leaf()) return false;
    path_.push_back(&target);
    index_ = 0;
    return true;
  }

  /// Go up one level; returns false at the root level.
  bool back() {
    if (path_.empty()) return false;
    const MenuNode* from = path_.back();
    path_.pop_back();
    // Restore the cursor onto the submenu we came from.
    const MenuNode& level = current_level();
    for (std::size_t i = 0; i < level.child_count(); ++i) {
      if (&level.child(i) == from) {
        index_ = i;
        return true;
      }
    }
    index_ = 0;
    return true;
  }

  void reset() {
    path_.clear();
    index_ = 0;
  }

  /// Point the cursor at a (possibly different) tree and reset the
  /// navigation state. Lets a pooled device session adopt the next
  /// cell's menu without reconstructing the cursor.
  void rebind(const MenuNode& root) {
    assert(!root.is_leaf() && "menu root must have entries");
    root_ = &root;
    path_.clear();
    index_ = 0;
  }

 private:
  const MenuNode* root_;
  std::vector<const MenuNode*> path_;
  std::size_t index_ = 0;
};

}  // namespace distscroll::menu
