#include "menu/menu_builder.h"

#include <cassert>
#include <cstdio>

namespace distscroll::menu {

std::unique_ptr<MenuNode> make_flat_menu(std::size_t n) {
  assert(n > 0);
  auto root = std::make_unique<MenuNode>("list");
  char buf[32];
  for (std::size_t i = 0; i < n; ++i) {
    std::snprintf(buf, sizeof(buf), "Item %03zu", i + 1);
    root->add_child(buf);
  }
  return root;
}

namespace {
void grow(MenuNode& node, sim::Rng& rng, int min_fanout, int max_fanout, int levels) {
  if (levels <= 0) return;
  const int fanout = rng.uniform_int(min_fanout, max_fanout);
  for (int i = 0; i < fanout; ++i) {
    MenuNode& child = node.add_child(node.label() + "." + std::to_string(i));
    // Interior with probability 0.5 except at the last level.
    if (levels > 1 && rng.bernoulli(0.5)) {
      grow(child, rng, min_fanout, max_fanout, levels - 1);
    }
  }
}
}  // namespace

std::unique_ptr<MenuNode> make_random_menu(sim::Rng& rng, int min_fanout, int max_fanout,
                                           int levels) {
  assert(min_fanout >= 1 && max_fanout >= min_fanout && levels >= 1);
  auto root = std::make_unique<MenuNode>("r");
  grow(*root, rng, min_fanout, max_fanout, levels);
  // Guarantee the root is non-empty (MenuCursor requires entries).
  if (root->is_leaf()) root->add_child("r.only");
  return root;
}

}  // namespace distscroll::menu
