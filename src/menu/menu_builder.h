// Fluent construction of menu trees for tests, examples and workload
// generators.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "menu/menu.h"
#include "sim/random.h"

namespace distscroll::menu {

class MenuBuilder {
 public:
  explicit MenuBuilder(std::string root_label = "root")
      : root_(std::make_unique<MenuNode>(std::move(root_label))) {
    stack_.push_back(root_.get());
  }

  /// Add a leaf entry at the current level.
  MenuBuilder& item(std::string label) {
    stack_.back()->add_child(std::move(label));
    return *this;
  }

  /// Open a submenu at the current level; subsequent items go inside
  /// until end().
  MenuBuilder& submenu(std::string label) {
    MenuNode& node = stack_.back()->add_child(std::move(label));
    stack_.push_back(&node);
    return *this;
  }

  MenuBuilder& end() {
    if (stack_.size() > 1) stack_.pop_back();
    return *this;
  }

  [[nodiscard]] std::unique_ptr<MenuNode> build() {
    stack_.clear();
    return std::move(root_);
  }

 private:
  std::unique_ptr<MenuNode> root_;
  std::vector<MenuNode*> stack_;
};

/// A flat list menu of `n` entries ("Item 001" ...), the workload used
/// by the scrolling experiments.
[[nodiscard]] std::unique_ptr<MenuNode> make_flat_menu(std::size_t n);

/// A random hierarchical menu with given fanout range and depth, for
/// property tests over tree navigation.
[[nodiscard]] std::unique_ptr<MenuNode> make_random_menu(sim::Rng& rng, int min_fanout,
                                                         int max_fanout, int levels);

}  // namespace distscroll::menu
