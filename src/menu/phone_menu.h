// The "fictive mobile phone menu" of the paper's initial study
// (Section 6): a realistic 2005-era phone menu hierarchy used as the
// default workload in examples and the user-study reproduction.
#pragma once

#include <memory>

#include "menu/menu.h"

namespace distscroll::menu {

[[nodiscard]] std::unique_ptr<MenuNode> make_phone_menu();

}  // namespace distscroll::menu
