#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace distscroll::obs {

// --- Histogram --------------------------------------------------------------

void Histogram::record(double value) {
  ++count_;
  sum_ += value;
  std::size_t bucket = 0;
  if (value > config_.first_bucket) {
    bucket = static_cast<std::size_t>(std::floor(std::log2(value / config_.first_bucket))) + 1;
    bucket = std::min(bucket, kBuckets - 1);
  }
  ++buckets_[bucket];
}

double Histogram::bucket_low(std::size_t i) const {
  return (i == 0) ? 0.0 : config_.first_bucket * std::pow(2.0, static_cast<double>(i - 1));
}

std::string Histogram::render(int bar_width) const {
  std::string out;
  const std::uint64_t peak =
      std::max<std::uint64_t>(1, *std::max_element(buckets_.begin(), buckets_.end()));
  char line[160];
  for (std::size_t i = 0; i < kBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    const int bar = static_cast<int>(
        (buckets_[i] * static_cast<std::uint64_t>(bar_width) + peak - 1) / peak);
    std::snprintf(line, sizeof(line), "  %8.2f %s | %-*s %llu\n",
                  bucket_low(i) * config_.display_scale, config_.unit, bar_width,
                  std::string(static_cast<std::size_t>(bar), '#').c_str(),
                  static_cast<unsigned long long>(buckets_[i]));
    out += line;
  }
  if (out.empty()) out = "  (no samples)\n";
  return out;
}

// --- MetricsRegistry --------------------------------------------------------

Counter& MetricsRegistry::counter(const std::string& name) {
  for (auto& entry : counters_) {
    if (entry.name == name) return entry.instrument;
  }
  counters_.push_back({name, Counter{}});
  order_.push_back({0, counters_.size() - 1});
  return counters_.back().instrument;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  for (auto& entry : gauges_) {
    if (entry.name == name) return entry.instrument;
  }
  gauges_.push_back({name, Gauge{}});
  order_.push_back({1, gauges_.size() - 1});
  return gauges_.back().instrument;
}

Histogram& MetricsRegistry::histogram(const std::string& name, Histogram::Config config) {
  for (auto& entry : histograms_) {
    if (entry.name == name) return entry.instrument;
  }
  histograms_.push_back({name, Histogram{config}});
  order_.push_back({2, histograms_.size() - 1});
  return histograms_.back().instrument;
}

std::vector<MetricsRegistry::Row> MetricsRegistry::rows() const {
  std::vector<Row> out;
  out.reserve(order_.size());
  for (const Key& key : order_) {
    switch (key.family) {
      case 0:
        out.push_back({counters_[key.index].name,
                       static_cast<double>(counters_[key.index].instrument.value()), nullptr});
        break;
      case 1:
        out.push_back({gauges_[key.index].name, gauges_[key.index].instrument.value(), nullptr});
        break;
      default:
        out.push_back({histograms_[key.index].name,
                       static_cast<double>(histograms_[key.index].instrument.count()),
                       &histograms_[key.index].instrument});
        break;
    }
  }
  return out;
}

std::string MetricsRegistry::to_json_fields(int indent) const {
  std::string out;
  char line[256];
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  bool first = true;
  for (const Row& row : rows()) {
    if (!first) out += ",\n";
    first = false;
    if (row.histogram != nullptr) {
      const Histogram& hist = *row.histogram;
      std::snprintf(line, sizeof(line), "%s\"%s_count\": %.0f,\n", pad.c_str(),
                    row.name.c_str(), row.value);
      out += line;
      std::snprintf(line, sizeof(line), "%s\"%s_sum_%s\": %.3f,\n", pad.c_str(),
                    row.name.c_str(), hist.config().unit,
                    hist.sum() * hist.config().display_scale);
      out += line;
      std::snprintf(line, sizeof(line), "%s\"%s_buckets\": [", pad.c_str(), row.name.c_str());
      out += line;
      for (std::size_t i = 0; i < hist.buckets().size(); ++i) {
        std::snprintf(line, sizeof(line), "%s%llu", i == 0 ? "" : ", ",
                      static_cast<unsigned long long>(hist.buckets()[i]));
        out += line;
      }
      out += "]";
      continue;
    }
    if (row.value == std::floor(row.value) && std::abs(row.value) < 1e15) {
      std::snprintf(line, sizeof(line), "%s\"%s\": %.0f", pad.c_str(), row.name.c_str(),
                    row.value);
    } else {
      std::snprintf(line, sizeof(line), "%s\"%s\": %.6f", pad.c_str(), row.name.c_str(),
                    row.value);
    }
    out += line;
  }
  return out;
}

void MetricsRegistry::reset() {
  for (auto& entry : counters_) entry.instrument.set(0);
  for (auto& entry : gauges_) entry.instrument.set(0.0);
  for (auto& entry : histograms_) entry.instrument.clear();
}

}  // namespace distscroll::obs
