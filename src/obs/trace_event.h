// The trace event model: one fixed-layout record per observable fact.
//
// Every event is (time, kind, a, b) — 8 + 1 + 4 + 4 bytes of payload,
// serialised field-by-field in little-endian order (never memcpy'd as a
// struct, so padding can't leak into trace files). The meaning of `a`
// and `b` is per-kind and documented on the enumerator. Keeping the
// record this small is what lets the Tracer hold tens of thousands of
// events in a pre-allocated ring and what makes byte-comparison of two
// traces a meaningful equality of *behaviour*.
#pragma once

#include <cstdint>

namespace distscroll::obs {

enum class EventKind : std::uint8_t {
  /// GP2D120 internal remeasure on its 38 ms grid. a = output in
  /// microvolts, b = 1 when a specular glitch floored the reading.
  SensorMeasure = 1,
  /// Firmware read ADC counts this tick. a = ADC channel, b = counts.
  AdcRead = 2,
  /// Scroll selection entered an island. a = island index, b = mapped
  /// menu index.
  IslandEnter = 3,
  /// Selection left an island (for a different island or a gap).
  /// a = island index being left, b = mapped menu index.
  IslandLeave = 4,
  /// Filtered counts crossed from an island into a selection-free dead
  /// zone (selection carried over). a = island whose selection is held,
  /// b = filtered counts at the crossing.
  DeadZoneCross = 5,
  /// Menu cursor moved. a = new absolute index, b = menu depth.
  CursorMove = 6,
  /// Debounced button edge. a = button index, b = 1 press / 0 release.
  ButtonEdge = 7,
  /// ARQ sender put a frame on the wire for the first time.
  /// a = sequence number, b = encoded wire size in bytes.
  ArqTx = 8,
  /// ARQ sender retransmitted after a timeout. a = seq, b = attempt.
  ArqRetry = 9,
  /// ARQ receiver delivered a frame upward. a = seq, b = payload bytes.
  ArqRx = 10,
  /// ARQ sender abandoned a frame. a = seq, b = attempts used.
  ArqDrop = 11,
  /// Device pushed a full redraw to both panels. a = cursor index,
  /// b = level size at the flush.
  DisplayFlush = 12,
  /// Scheduler tick exceeded its cycle budget. a = cycles spent
  /// (saturated to 32 bits), b = budget.
  TickOverrun = 13,
};

/// Category bits for runtime filtering; the trace file records the mask
/// it was captured with so replay compares like against like.
enum Category : std::uint32_t {
  kCatSensor = 1u << 0,    // SensorMeasure
  kCatAdc = 1u << 1,       // AdcRead
  kCatScroll = 1u << 2,    // IslandEnter/IslandLeave/DeadZoneCross
  kCatInput = 1u << 3,     // ButtonEdge
  kCatWireless = 1u << 4,  // ArqTx/ArqRetry/ArqRx/ArqDrop
  kCatDisplay = 1u << 5,   // DisplayFlush/CursorMove
  kCatSched = 1u << 6,     // TickOverrun
  kCatAll = 0x7F,
  /// The deterministically replayable subset: the device-level inputs
  /// (ADC counts, button edges) plus everything the firmware derives
  /// from them. Excludes the stochastic sensor internals and link
  /// events, which a replay run does not re-execute.
  kCatReplay = kCatAdc | kCatScroll | kCatInput | kCatDisplay,
};

[[nodiscard]] constexpr std::uint32_t category_of(EventKind kind) {
  switch (kind) {
    case EventKind::SensorMeasure:
      return kCatSensor;
    case EventKind::AdcRead:
      return kCatAdc;
    case EventKind::IslandEnter:
    case EventKind::IslandLeave:
    case EventKind::DeadZoneCross:
      return kCatScroll;
    case EventKind::ButtonEdge:
      return kCatInput;
    case EventKind::ArqTx:
    case EventKind::ArqRetry:
    case EventKind::ArqRx:
    case EventKind::ArqDrop:
      return kCatWireless;
    case EventKind::CursorMove:
    case EventKind::DisplayFlush:
      return kCatDisplay;
    case EventKind::TickOverrun:
      return kCatSched;
  }
  return 0;
}

[[nodiscard]] constexpr const char* kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::SensorMeasure: return "sensor_measure";
    case EventKind::AdcRead: return "adc_read";
    case EventKind::IslandEnter: return "island_enter";
    case EventKind::IslandLeave: return "island_leave";
    case EventKind::DeadZoneCross: return "dead_zone_cross";
    case EventKind::CursorMove: return "cursor_move";
    case EventKind::ButtonEdge: return "button_edge";
    case EventKind::ArqTx: return "arq_tx";
    case EventKind::ArqRetry: return "arq_retry";
    case EventKind::ArqRx: return "arq_rx";
    case EventKind::ArqDrop: return "arq_drop";
    case EventKind::DisplayFlush: return "display_flush";
    case EventKind::TickOverrun: return "tick_overrun";
  }
  return "unknown";
}

struct TraceEvent {
  double time_s = 0.0;
  EventKind kind = EventKind::SensorMeasure;
  std::uint32_t a = 0;
  std::uint32_t b = 0;

  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

}  // namespace distscroll::obs
