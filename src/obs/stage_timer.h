// Stage profiler: RAII wall-clock timers feeding MetricsRegistry
// histograms, answering "where does a sweep cell's time actually go?"
// without a sampling profiler.
//
// Design constraints (the session-kernel perf work lives or dies here):
//  * Zero cost when off. Hot paths carry a DS_STAGE(...) macro that
//    compiles to nothing with DISTSCROLL_TRACING=OFF; with tracing
//    compiled in, an uninstalled profile costs one thread_local load
//    and a branch — no clock read.
//  * No behavioural perturbation. Timers read the wall clock only;
//    they never touch sim state or RNG streams, so profiled runs stay
//    bit-identical to unprofiled ones (same contract as the tracer).
//  * Decimation. A profile installed with decimation N admits 1 in N
//    scopes per stage, so the steady-state overhead of clock reads is
//    bounded (timed_sweep installs with N=16 around its sequential
//    pass: ~6% of scopes pay the two clock reads).
//
// Stages can nest (Controller includes any Flush it triggers); the
// histograms are therefore per-stage inclusive times, not a partition.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>

#include "obs/metrics.h"
#include "obs/tracer.h"  // DISTSCROLL_TRACING_ENABLED

namespace distscroll::obs {

/// The instrumented hot-path stages of a device-study cell.
enum class Stage : std::uint8_t {
  AdcSample = 0,  // ADC conversion incl. analog-source evaluation
  Sensor,         // context gate + dual-sensor fold resolution
  Controller,     // counts -> island -> menu entry (incl. apply)
  Flush,          // redraw: window building + both display drivers
  TrialSetup,     // device acquire/construct + participant wiring
  kCount,
};

/// One histogram per stage, registered on a MetricsRegistry so stage
/// timings flow into BENCH_*.json next to the sweep's other metrics.
/// Install() binds the profile to the current thread; DS_STAGE scopes
/// record only while a profile is installed.
class StageProfile {
 public:
  static constexpr std::size_t kStages = static_cast<std::size_t>(Stage::kCount);

  explicit StageProfile(MetricsRegistry& registry, std::uint32_t decimation = 1)
      : decimation_(decimation == 0 ? 1 : decimation) {
    static constexpr std::array<const char*, kStages> kNames = {
        "stage_adc_sample", "stage_sensor", "stage_controller", "stage_flush",
        "stage_trial_setup"};
    for (std::size_t i = 0; i < kStages; ++i) {
      // 16 log2 buckets from 0.25 us reach ~4 ms: spans a cached LUT hit
      // to a cold full-device construction.
      histograms_[i] = &registry.histogram(kNames[i], {250e-9, 1e6, "us"});
    }
  }

  [[nodiscard]] std::uint32_t decimation() const { return decimation_; }

  /// Admission control: true for 1 in `decimation` calls per stage.
  bool admit(Stage stage) {
    std::uint32_t& tick = ticks_[static_cast<std::size_t>(stage)];
    if (++tick < decimation_) return false;
    tick = 0;
    return true;
  }

  void record(Stage stage, double seconds) {
    histograms_[static_cast<std::size_t>(stage)]->record(seconds);
  }

  [[nodiscard]] const Histogram& histogram(Stage stage) const {
    return *histograms_[static_cast<std::size_t>(stage)];
  }

  /// The profile installed on this thread (nullptr = profiling off).
  [[nodiscard]] static StageProfile* current() { return current_; }

  /// RAII thread-local installation; restores the previous profile so
  /// installs can nest.
  class Install {
   public:
    explicit Install(StageProfile& profile) : previous_(current_) { current_ = &profile; }
    ~Install() { current_ = previous_; }
    Install(const Install&) = delete;
    Install& operator=(const Install&) = delete;

   private:
    StageProfile* previous_;
  };

 private:
  inline static thread_local StageProfile* current_ = nullptr;

  std::uint32_t decimation_;
  std::array<Histogram*, kStages> histograms_{};
  std::array<std::uint32_t, kStages> ticks_{};
};

/// The RAII scope DS_STAGE expands to. Reads the clock only when a
/// profile is installed AND the decimator admits this scope.
class StageTimer {
 public:
  explicit StageTimer(Stage stage) {
    StageProfile* profile = StageProfile::current();
    if (profile != nullptr && profile->admit(stage)) {
      profile_ = profile;
      stage_ = stage;
      start_ = std::chrono::steady_clock::now();
    }
  }

  ~StageTimer() {
    if (profile_ == nullptr) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    profile_->record(stage_, std::chrono::duration<double>(elapsed).count());
  }

  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;

 private:
  StageProfile* profile_ = nullptr;
  Stage stage_{};
  std::chrono::steady_clock::time_point start_{};
};

}  // namespace distscroll::obs

// Scoped stage timer; names the local after the line number so sibling
// scopes in one function don't collide.
#if DISTSCROLL_TRACING_ENABLED
#define DS_STAGE_CONCAT_IMPL(a, b) a##b
#define DS_STAGE_CONCAT(a, b) DS_STAGE_CONCAT_IMPL(a, b)
#define DS_STAGE(stage)                                      \
  ::distscroll::obs::StageTimer DS_STAGE_CONCAT(ds_stage_scope_, __LINE__)( \
      ::distscroll::obs::Stage::stage)
#else
#define DS_STAGE(stage) ((void)0)
#endif
