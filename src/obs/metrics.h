// MetricsRegistry: one home for the counters, gauges and histograms
// that used to live ad hoc in wireless::LinkStats and the study
// metrics.
//
// Usage contract (zero steady-state allocation): components look their
// instruments up ONCE at wiring time — counter()/gauge()/histogram()
// find-or-create and return a reference with a stable address (deque
// storage, entries are never erased) — and the hot path only touches
// that reference. Snapshots walk registration order, so emitting a
// registry into BENCH_*.json is deterministic.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

namespace distscroll::obs {

class Counter {
 public:
  void increment(std::uint64_t n = 1) { value_ += n; }
  /// Snapshot-style assignment for components that keep their own
  /// counters and export them (LinkStats::sample).
  void set(std::uint64_t value) { value_ = value; }
  [[nodiscard]] std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

class Gauge {
 public:
  void set(double value) { value_ = value; }
  [[nodiscard]] double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Log₂-bucketed histogram: bucket 0 covers [0, first_bucket), bucket
/// i >= 1 covers [first_bucket · 2^(i-1), first_bucket · 2^i), with
/// overflow folded into the last bucket. With the default config this
/// is exactly the delivery-latency histogram LinkStats has always
/// reported: 16 buckets from 0.5 ms reaching ~16 s, rendered in ms.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 16;

  struct Config {
    double first_bucket = 0.5e-3;  // seconds, for the latency default
    double display_scale = 1e3;    // render values as value * scale
    const char* unit = "ms";
  };

  Histogram() : Histogram(Config{}) {}
  explicit Histogram(Config config) : config_(config) {}

  void record(double value);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  /// Sum of all recorded values (pre display_scale), so callers can
  /// derive means and time shares from a snapshot.
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] const Config& config() const { return config_; }
  [[nodiscard]] const std::vector<std::uint64_t>& buckets() const { return buckets_; }
  [[nodiscard]] double bucket_low(std::size_t i) const;

  /// Multi-line "bucket range | bar | count" rendering (only non-empty
  /// buckets; "(no samples)" when empty).
  [[nodiscard]] std::string render(int bar_width = 40) const;

  /// Zero all buckets, keeping the bucket configuration.
  void clear() {
    std::fill(buckets_.begin(), buckets_.end(), 0);
    count_ = 0;
    sum_ = 0.0;
  }

  /// Bucket-wise accumulate (the fleet fold-then-merge path; both sides
  /// must share a bucket layout). False (state untouched) on a
  /// bucket-count mismatch.
  [[nodiscard]] bool merge(const Histogram& other) {
    if (other.buckets_.size() != buckets_.size()) return false;
    for (std::size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
    count_ += other.count_;
    sum_ += other.sum_;
    return true;
  }

  /// Restore a snapshot taken via count()/sum()/buckets() — the fleet
  /// checkpoint/resume path. False (state untouched) on a bucket-count
  /// mismatch, which would mean a foreign serialisation.
  [[nodiscard]] bool restore(std::uint64_t count, double sum,
                             const std::vector<std::uint64_t>& buckets) {
    if (buckets.size() != buckets_.size()) return false;
    buckets_ = buckets;
    count_ = count;
    sum_ = sum;
    return true;
  }

 private:
  Config config_;
  std::vector<std::uint64_t> buckets_ = std::vector<std::uint64_t>(kBuckets, 0);
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
};

class MetricsRegistry {
 public:
  /// Find-or-create; the returned reference stays valid for the
  /// registry's lifetime (hot paths cache it).
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name, Histogram::Config config = {});

  struct Row {
    std::string name;
    double value = 0.0;  // counters/gauges; histograms report count()
    const Histogram* histogram = nullptr;  // non-null for histogram rows
  };
  /// All instruments in registration order.
  [[nodiscard]] std::vector<Row> rows() const;

  /// `"name": value` pairs, one per line with `indent` leading spaces —
  /// for embedding into BENCH_*.json objects. Histograms contribute
  /// three fields: "<name>_count", "<name>_sum_<unit>" (sum in display
  /// units) and "<name>_buckets" (the full log2 bucket array), so the
  /// bench artefacts carry real distributions, not just totals.
  [[nodiscard]] std::string to_json_fields(int indent = 2) const;

  /// Zero every counter/gauge and clear every histogram (instruments
  /// stay registered, addresses stay valid).
  void reset();

 private:
  template <typename T>
  struct Named {
    std::string name;
    T instrument;
  };
  std::deque<Named<Counter>> counters_;
  std::deque<Named<Gauge>> gauges_;
  std::deque<Named<Histogram>> histograms_;
  // Registration order across all three families.
  struct Key {
    int family;  // 0 counter, 1 gauge, 2 histogram
    std::size_t index;
  };
  std::vector<Key> order_;
};

}  // namespace distscroll::obs
