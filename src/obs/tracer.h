// Deterministic structured tracer: a flight recorder for the simulator.
//
// A fixed-capacity ring of TraceEvent records, pre-allocated at
// construction — the hot paths (firmware tick, ARQ pump, sweep cells)
// never allocate to trace. When the ring fills, the oldest events are
// overwritten and counted in dropped(); a capture that must be complete
// (the golden session) sizes the ring up front and asserts dropped()==0.
//
// Off-switches, both required by the determinism contract (tracing on
// vs off must not perturb behaviour — pinned by tests/parallel_test.cpp):
//  * compile time: configure with -DDISTSCROLL_TRACING=OFF and
//    DS_TRACE() compiles to nothing — record() is never emitted;
//  * runtime: set_enabled(false) or a category mask turns individual
//    streams off behind one predictable branch.
//
// Timestamps come from a bound sim::EventQueue clock when available
// (components that already live on the queue don't thread `now` through
// every call), or from record_at() when the caller knows better.
#pragma once

#include <cstdint>
#include <vector>

#include "obs/trace_event.h"
#include "sim/event_queue.h"
#include "util/hot_path.h"

// Compile-time master switch. The build defines
// DISTSCROLL_TRACING_ENABLED=0 (CMake option DISTSCROLL_TRACING=OFF)
// to compile every DS_TRACE call site out of the binary.
#ifndef DISTSCROLL_TRACING_ENABLED
#define DISTSCROLL_TRACING_ENABLED 1
#endif

#if DISTSCROLL_TRACING_ENABLED
#define DS_TRACE(tracer, ...)                          \
  do {                                                 \
    if ((tracer) != nullptr) (tracer)->record(__VA_ARGS__); \
  } while (0)
#define DS_TRACE_AT(tracer, ...)                          \
  do {                                                    \
    if ((tracer) != nullptr) (tracer)->record_at(__VA_ARGS__); \
  } while (0)
#else
#define DS_TRACE(tracer, ...) ((void)0)
#define DS_TRACE_AT(tracer, ...) ((void)0)
#endif

namespace distscroll::obs {

class Tracer {
 public:
  static constexpr std::size_t kDefaultCapacity = 1 << 16;

  explicit Tracer(std::size_t capacity = kDefaultCapacity,
                  std::uint32_t category_mask = kCatAll)
      : mask_(category_mask) {
    ring_.resize(capacity > 0 ? capacity : 1);
  }

  /// Whether tracing survived the compile-time switch.
  [[nodiscard]] static constexpr bool compiled_in() {
    return DISTSCROLL_TRACING_ENABLED != 0;
  }

  // --- switches ---------------------------------------------------------
  void set_enabled(bool enabled) { enabled_ = enabled; }
  [[nodiscard]] bool enabled() const { return enabled_; }
  void set_category_mask(std::uint32_t mask) { mask_ = mask; }
  [[nodiscard]] std::uint32_t category_mask() const { return mask_; }

  /// Take timestamps from this queue's simulated clock.
  void bind_clock(const sim::EventQueue& queue) { clock_ = &queue; }
  /// Manual timestamp for clockless contexts (overridden by a bound
  /// clock).
  void set_time(double time_s) { manual_time_s_ = time_s; }

  // --- the hot path -----------------------------------------------------
  // Allocation-free by construction (the ring is pre-sized; a full ring
  // overwrites, never grows) — lint-enforced here, pinned at runtime by
  // the AllocGuard test.
  DS_HOT_BEGIN
  void record(EventKind kind, std::uint32_t a, std::uint32_t b) {
    record_at(clock_ ? clock_->now().value : manual_time_s_, kind, a, b);
  }

  void record_at(double time_s, EventKind kind, std::uint32_t a, std::uint32_t b) {
    if (!enabled_ || (mask_ & category_of(kind)) == 0) return;
    TraceEvent& slot = ring_[head_];
    slot.time_s = time_s;
    slot.kind = kind;
    slot.a = a;
    slot.b = b;
    head_ = (head_ + 1 == ring_.size()) ? 0 : head_ + 1;
    if (size_ < ring_.size()) {
      ++size_;
    } else {
      ++dropped_;  // oldest event just got overwritten
    }
  }
  DS_HOT_END

  // --- inspection -------------------------------------------------------
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t capacity() const { return ring_.size(); }
  /// Events overwritten because the ring was full.
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }

  /// The retained events, oldest first (copies out of the ring).
  [[nodiscard]] std::vector<TraceEvent> snapshot() const {
    std::vector<TraceEvent> out;
    out.reserve(size_);
    const std::size_t start = (head_ + ring_.size() - size_) % ring_.size();
    for (std::size_t i = 0; i < size_; ++i) {
      out.push_back(ring_[(start + i) % ring_.size()]);
    }
    return out;
  }

  void clear() {
    head_ = 0;
    size_ = 0;
    dropped_ = 0;
  }

 private:
  std::vector<TraceEvent> ring_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  std::uint64_t dropped_ = 0;
  bool enabled_ = true;
  std::uint32_t mask_ = kCatAll;
  const sim::EventQueue* clock_ = nullptr;
  double manual_time_s_ = 0.0;
};

}  // namespace distscroll::obs
