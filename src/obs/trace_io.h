// Trace serialisation: a binary container for byte-exact regression
// artifacts and a JSONL rendering for humans and external tooling.
//
// Binary layout (all little-endian, written field by field — struct
// padding never touches the file):
//
//   offset  size  field
//   0       4     magic "DSTR"
//   4       2     format version (1)
//   6       2     session id (0 = unspecified; 1 = the canonical
//                 phone-menu session, see obs/replay.h)
//   8       4     category mask the trace was captured with
//   12      4     event count N
//   16      8     dropped-event count at capture time
//   24      17*N  events: time (f64 bits), kind (u8), a (u32), b (u32)
//
// Because every field has a fixed width and order, two traces are
// byte-identical exactly when their header metadata and event streams
// are — the property the golden-trace tests and trace_replay rely on.
#pragma once

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "obs/trace_event.h"

namespace distscroll::obs {

struct Trace {
  std::uint16_t session_id = 0;
  std::uint32_t category_mask = kCatAll;
  std::uint64_t dropped = 0;
  std::vector<TraceEvent> events;

  friend bool operator==(const Trace&, const Trace&) = default;
};

inline constexpr std::uint16_t kTraceFormatVersion = 1;
inline constexpr std::uint16_t kCanonicalPhoneMenuSession = 1;

/// Serialise to the binary container format.
[[nodiscard]] std::vector<std::uint8_t> serialize(const Trace& trace);

/// Parse a binary container; nullopt on bad magic/version/truncation.
[[nodiscard]] std::optional<Trace> deserialize(const std::vector<std::uint8_t>& bytes);

/// Write/read the binary container to/from a file. write returns false
/// when the file could not be opened or written.
bool write_trace(const std::string& path, const Trace& trace);
[[nodiscard]] std::optional<Trace> read_trace(const std::string& path);

/// One JSON object per line:
/// {"t":0.020000000,"kind":"adc_read","a":2,"b":512}
void write_jsonl(std::ostream& out, const Trace& trace);
bool write_jsonl_file(const std::string& path, const Trace& trace);

}  // namespace distscroll::obs
