#include "obs/replay.h"

#include <algorithm>
#include <cstdio>
#include <deque>
#include <functional>
#include <memory>
#include <optional>

#include "core/distscroll_device.h"
#include "menu/phone_menu.h"
#include "obs/tracer.h"
#include "sim/event_queue.h"
#include "sim/random.h"

namespace distscroll::obs {

namespace {

// The canonical session is pinned down to the last bit: seed, device
// configuration, hand profile, press script and duration together define
// the golden trace. Changing ANY of them invalidates tests/golden/.
constexpr std::uint64_t kCanonicalSeed = 0xD157C011ull;
constexpr double kSessionEndS = 9.0;
constexpr std::size_t kTraceCapacity = 1 << 16;

core::DistScrollDevice::Config canonical_config() {
  // Paper defaults: plain long-menu strategy, three-button layout, no
  // duty cycling — the configuration the initial study ran with.
  return core::DistScrollDevice::Config{};
}

/// Piecewise-linear hand-to-body distance: settle, sweep near, hold for
/// a selection, sweep far, hold, return mid-range, hold, sweep far and
/// near again — enough motion to cross several islands and dead zones
/// at every menu level the script descends into.
double scripted_distance_cm(double t) {
  struct Knot {
    double t;
    double cm;
  };
  static constexpr Knot kKnots[] = {
      {0.0, 17.0}, {1.0, 17.0}, {2.0, 8.0},  {2.6, 8.0},  {3.6, 22.0},
      {4.3, 22.0}, {5.1, 12.0}, {5.8, 12.0}, {6.7, 25.0}, {7.3, 25.0},
      {8.2, 10.0}, {9.0, 10.0},
  };
  if (t <= kKnots[0].t) return kKnots[0].cm;
  for (std::size_t i = 1; i < std::size(kKnots); ++i) {
    if (t <= kKnots[i].t) {
      const Knot& lo = kKnots[i - 1];
      const Knot& hi = kKnots[i];
      const double f = (t - lo.t) / (hi.t - lo.t);
      return lo.cm + f * (hi.cm - lo.cm);
    }
  }
  return kKnots[std::size(kKnots) - 1].cm;
}

}  // namespace

Trace record_canonical_session() {
  sim::EventQueue queue;
  const auto menu = menu::make_phone_menu();
  core::DistScrollDevice device(canonical_config(), *menu, queue, sim::Rng(kCanonicalSeed));
  device.set_distance_provider(
      [](util::Seconds now) { return util::Centimeters{scripted_distance_cm(now.value)}; });

  Tracer tracer(kTraceCapacity, kCatReplay);
  device.attach_tracer(&tracer);

  // The scripted thumb/finger: select into a submenu during each hold,
  // back out once, select again — times sit off the firmware/button tick
  // grids so the press script can't ride a timer-ordering coincidence.
  struct Press {
    double t;
    int button;  // 0 = select (thumb), 1 = back
    double hold_s;
  };
  static constexpr Press kScript[] = {
      {2.3031, 0, 0.08},
      {4.1573, 0, 0.08},
      {5.6117, 1, 0.08},
      {7.1293, 0, 0.08},
  };
  for (const Press& p : kScript) {
    input::Button& button = (p.button == 0) ? device.select_button() : device.back_button();
    queue.schedule_at(util::Seconds{p.t}, [&button] { button.press(); });
    queue.schedule_at(util::Seconds{p.t + p.hold_s}, [&button] { button.release(); });
  }

  device.power_on();
  queue.run_until(util::Seconds{kSessionEndS});
  device.power_off();

  Trace trace;
  trace.session_id = kCanonicalPhoneMenuSession;
  trace.category_mask = tracer.category_mask();
  trace.dropped = tracer.dropped();
  trace.events = tracer.snapshot();
  return trace;
}

Trace replay_device_trace(const Trace& trace) {
  sim::EventQueue queue;
  const auto menu = menu::make_phone_menu();
  core::DistScrollDevice device(canonical_config(), *menu, queue, sim::Rng(kCanonicalSeed));
  // No distance provider override: with the counts override installed
  // below, the ADC/sensor chain is never consulted at all.

  // Recover the device-level input streams from the recorded trace.
  std::deque<util::AdcCounts> counts;
  struct Edge {
    double t;
    std::uint32_t button;
    bool pressed;
  };
  std::deque<Edge> edges;
  for (const TraceEvent& event : trace.events) {
    if (event.kind == EventKind::AdcRead) {
      counts.push_back(util::AdcCounts{static_cast<std::uint16_t>(event.b)});
    } else if (event.kind == EventKind::ButtonEdge) {
      edges.push_back({event.time_s, event.a, event.b != 0});
    }
  }

  device.set_counts_override([&counts]() -> std::optional<util::AdcCounts> {
    if (counts.empty()) return std::nullopt;  // past the recording: hold
    const util::AdcCounts next = counts.front();
    counts.pop_front();
    return next;
  });

  Tracer tracer(kTraceCapacity, trace.category_mask);
  device.attach_tracer(&tracer);
  device.power_on();

  // Edge injector: a chain at the button-scan period, armed AFTER
  // power_on so it dispatches after the device's own timers at equal
  // timestamps — the order the recorded edges were traced in (a
  // debounced edge fires inside button_tick, which runs after
  // firmware_tick when both land on the same instant).
  const double scan_period = device.config().button_tick.value;
  std::function<void()> inject = [&] {
    const double now = queue.now().value;
    while (!edges.empty() && edges.front().t <= now + 1e-12) {
      device.inject_button_edge(edges.front().button, edges.front().pressed);
      edges.pop_front();
    }
    queue.schedule_after(util::Seconds{scan_period}, inject);
  };
  queue.schedule_after(util::Seconds{scan_period}, inject);

  queue.run_until(util::Seconds{kSessionEndS});
  device.power_off();

  Trace replayed;
  replayed.session_id = trace.session_id;
  replayed.category_mask = tracer.category_mask();
  replayed.dropped = tracer.dropped();
  replayed.events = tracer.snapshot();
  return replayed;
}

CompareResult compare_traces(const Trace& expected, const Trace& actual) {
  CompareResult result;
  char buf[192];
  if (expected.session_id != actual.session_id) {
    std::snprintf(buf, sizeof(buf), "session id mismatch: expected %u, got %u",
                  expected.session_id, actual.session_id);
    result.detail = buf;
    return result;
  }
  if (expected.category_mask != actual.category_mask) {
    std::snprintf(buf, sizeof(buf), "category mask mismatch: expected 0x%x, got 0x%x",
                  expected.category_mask, actual.category_mask);
    result.detail = buf;
    return result;
  }
  if (expected.dropped != actual.dropped) {
    std::snprintf(buf, sizeof(buf),
                  "dropped-count mismatch: expected %llu, got %llu",
                  static_cast<unsigned long long>(expected.dropped),
                  static_cast<unsigned long long>(actual.dropped));
    result.detail = buf;
    return result;
  }
  const std::size_t common = std::min(expected.events.size(), actual.events.size());
  for (std::size_t i = 0; i < common; ++i) {
    const TraceEvent& want = expected.events[i];
    const TraceEvent& got = actual.events[i];
    if (want == got) continue;
    result.first_divergence = i;
    std::snprintf(buf, sizeof(buf),
                  "event %zu diverges: expected t=%.9f %s a=%u b=%u, got t=%.9f %s a=%u b=%u",
                  i, want.time_s, kind_name(want.kind), want.a, want.b, got.time_s,
                  kind_name(got.kind), got.a, got.b);
    result.detail = buf;
    return result;
  }
  if (expected.events.size() != actual.events.size()) {
    result.first_divergence = common;
    std::snprintf(buf, sizeof(buf), "event count mismatch: expected %zu events, got %zu",
                  expected.events.size(), actual.events.size());
    result.detail = buf;
    return result;
  }
  result.match = true;
  return result;
}

}  // namespace distscroll::obs
