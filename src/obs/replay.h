// Trace replay: re-drive a DistScrollDevice from a recorded trace.
//
// The replay contract (see DESIGN.md): a trace captured with the
// kCatReplay category mask contains the device-level *inputs* — the
// AdcRead counts the firmware consumed each sample tick and the
// debounced ButtonEdge stream — plus everything the firmware derived
// from them (island transitions, cursor moves, display flushes). Replay
// feeds exactly those inputs back into a freshly constructed device:
//
//  * the recorded counts stream enters through
//    DistScrollDevice::set_counts_override (the ADC/sensor/noise chain
//    is bypassed entirely, so the sensor's RNG is never consumed);
//  * recorded button edges are injected through
//    DistScrollDevice::inject_button_edge at their recorded tick times,
//    from an injector event chain that runs after the device's own
//    timers at equal timestamps (matching record-time dispatch order);
//
// and captures a new trace under the same mask. Because the firmware is
// a deterministic function of that input stream, the replayed trace must
// equal the recorded one byte for byte — the invariant trace_replay and
// the golden-trace test enforce.
#pragma once

#include <cstddef>
#include <string>

#include "obs/trace_io.h"

namespace distscroll::obs {

/// The canonical scripted phone-menu session (session id 1): a fixed
/// seed, a piecewise-linear hand-distance profile and a scripted
/// press sequence over menu::make_phone_menu(). This is the session
/// recorded into tests/golden/ — regenerate with
/// DISTSCROLL_REGEN_GOLDEN=1 (see README).
[[nodiscard]] Trace record_canonical_session();

/// Re-drive a fresh device from the recorded inputs in `trace` and
/// capture the resulting trace under the same category mask.
[[nodiscard]] Trace replay_device_trace(const Trace& trace);

struct CompareResult {
  bool match = false;
  /// Index of the first differing event when the streams diverge
  /// (== min(sizes) when one is a prefix of the other).
  std::size_t first_divergence = 0;
  /// Human-readable description of the divergence (empty on match).
  std::string detail;
};

/// Field-by-field comparison with a diagnosis of the first divergence.
/// Equivalent to serialize(expected) == serialize(actual).
[[nodiscard]] CompareResult compare_traces(const Trace& expected, const Trace& actual);

}  // namespace distscroll::obs
