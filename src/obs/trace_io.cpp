#include "obs/trace_io.h"

#include <bit>
#include <cstdio>
#include <cstring>
#include <fstream>

namespace distscroll::obs {

namespace {

constexpr std::uint8_t kMagic[4] = {'D', 'S', 'T', 'R'};
constexpr std::size_t kHeaderBytes = 24;
constexpr std::size_t kEventBytes = 17;

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
}

std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

}  // namespace

std::vector<std::uint8_t> serialize(const Trace& trace) {
  std::vector<std::uint8_t> out;
  out.reserve(kHeaderBytes + kEventBytes * trace.events.size());
  out.insert(out.end(), std::begin(kMagic), std::end(kMagic));
  put_u16(out, kTraceFormatVersion);
  put_u16(out, trace.session_id);
  put_u32(out, trace.category_mask);
  put_u32(out, static_cast<std::uint32_t>(trace.events.size()));
  put_u64(out, trace.dropped);
  for (const TraceEvent& event : trace.events) {
    put_u64(out, std::bit_cast<std::uint64_t>(event.time_s));
    out.push_back(static_cast<std::uint8_t>(event.kind));
    put_u32(out, event.a);
    put_u32(out, event.b);
  }
  return out;
}

std::optional<Trace> deserialize(const std::vector<std::uint8_t>& bytes) {
  if (bytes.size() < kHeaderBytes) return std::nullopt;
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) return std::nullopt;
  if (get_u16(bytes.data() + 4) != kTraceFormatVersion) return std::nullopt;
  Trace trace;
  trace.session_id = get_u16(bytes.data() + 6);
  trace.category_mask = get_u32(bytes.data() + 8);
  const std::uint32_t count = get_u32(bytes.data() + 12);
  trace.dropped = get_u64(bytes.data() + 16);
  if (bytes.size() != kHeaderBytes + kEventBytes * static_cast<std::size_t>(count)) {
    return std::nullopt;
  }
  trace.events.reserve(count);
  const std::uint8_t* p = bytes.data() + kHeaderBytes;
  for (std::uint32_t i = 0; i < count; ++i, p += kEventBytes) {
    TraceEvent event;
    event.time_s = std::bit_cast<double>(get_u64(p));
    event.kind = static_cast<EventKind>(p[8]);
    event.a = get_u32(p + 9);
    event.b = get_u32(p + 13);
    trace.events.push_back(event);
  }
  return trace;
}

bool write_trace(const std::string& path, const Trace& trace) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  const auto bytes = serialize(trace);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  return static_cast<bool>(out);
}

std::optional<Trace> read_trace(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  return deserialize(bytes);
}

void write_jsonl(std::ostream& out, const Trace& trace) {
  char line[160];
  for (const TraceEvent& event : trace.events) {
    std::snprintf(line, sizeof(line), "{\"t\":%.9f,\"kind\":\"%s\",\"a\":%u,\"b\":%u}\n",
                  event.time_s, kind_name(event.kind), event.a, event.b);
    out << line;
  }
}

bool write_jsonl_file(const std::string& path, const Trace& trace) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  write_jsonl(out, trace);
  return static_cast<bool>(out);
}

}  // namespace distscroll::obs
