// Per-thread device session pool.
//
// Constructing a DistScrollDevice allocates the whole prototype — board,
// buses, displays, buttons, calendar — and the device study used to do
// that once per participant, per sweep cell. A DeviceSession instead
// owns one event queue + one device and recycles them: acquire() clears
// the calendar and resets the device in place, so steady-state cells
// run allocation-free.
//
// Determinism contract: because DistScrollDevice::reset() IS the second
// half of its constructor (same rng fork tags, same initial state), a
// recycled session is bit-identical to a fresh one for the same
// (config, menu, rng) — pinned by the pooled-vs-fresh property test.
// The pool is thread_local so parallel sweep workers never share a
// session, keeping the cell-result-is-a-pure-function-of-(index, fork)
// contract intact at any thread count.
#pragma once

#include <optional>

#include "core/distscroll_device.h"
#include "menu/menu.h"
#include "sim/event_queue.h"
#include "sim/random.h"
#include "util/hot_path.h"

namespace distscroll::study {

class DeviceSession {
 public:
  /// Hand out a device initialised for (config, menu_root, rng): the
  /// first call constructs it, later calls clear the calendar and reset
  /// the device in place.
  // Warm reuse is the steady state and must stay allocation-free —
  // that IS the pool's reason to exist (pinned by the AllocGuard
  // pooled-reuse test).
  DS_HOT_BEGIN
  core::DistScrollDevice& acquire(const core::DistScrollDevice::Config& config,
                                  const menu::MenuNode& menu_root, sim::Rng rng) {
    if (!device_) {
      queue_.clear();
      // ds-lint: allow(no-alloc-markers) cold path: the one-time first construction
      device_.emplace(config, menu_root, queue_, rng);
    } else {
      queue_.clear();  // BEFORE device reset: pending events hold timer indices
      device_->reset(config, menu_root, rng);
    }
    return *device_;
  }
  DS_HOT_END

  [[nodiscard]] sim::EventQueue& queue() { return queue_; }

  /// Drop the pooled device (test hook: forces the next acquire() to
  /// construct fresh).
  void discard() { device_.reset(); }

  [[nodiscard]] bool warm() const { return device_.has_value(); }

 private:
  sim::EventQueue queue_;
  std::optional<core::DistScrollDevice> device_;
};

class DevicePool {
 public:
  /// This thread's session. Workers in a parallel sweep each get their
  /// own; the session persists across cells for the thread's lifetime.
  static DeviceSession& local() {
    thread_local DeviceSession session;
    return session;
  }
};

}  // namespace distscroll::study
