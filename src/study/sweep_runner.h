// Parallel experiment sweeps with sequential-equivalent results.
//
// A sweep is a grid of stable-indexed cells — (technique, menu size,
// glove, participant, repetition, ...) flattened row-major by SweepGrid.
// SweepRunner executes one cell body per index on a sim::ThreadPool and
// writes each result into a pre-sized slot.
//
// Determinism contract (see DESIGN.md "Parallel experiment engine"):
//  * every cell's randomness derives from sim::Rng(base_seed).fork(index)
//    — keyed on the CELL INDEX, never on scheduling order, thread id or
//    wall clock;
//  * cell bodies are pure functions of (index, rng): no shared mutable
//    state, no draws from a shared stream;
//  * results land in slot `index` of a pre-sized vector, so aggregation
//    and CSV emission walk index order regardless of completion order.
// Under this contract the output is bit-identical to the sequential run
// at ANY thread count — enforced by tests/parallel_test.cpp and by the
// timed_sweep harness, which runs every bench both ways and compares.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <initializer_list>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/stage_timer.h"
#include "obs/tracer.h"
#include "sim/random.h"
#include "sim/thread_pool.h"
#include "util/bench_report.h"

namespace distscroll::study {

/// Row-major flattening of a multi-axis condition grid (last axis
/// fastest), so cell index <-> coordinates is stable and explicit.
class SweepGrid {
 public:
  SweepGrid(std::initializer_list<std::size_t> axis_sizes) : axes_(axis_sizes) {
    cells_ = axes_.empty() ? 0 : 1;
    // Precomputed suffix strides: coord() runs per cell per axis in
    // every bench, so it must not redo this O(axes) product each call.
    strides_.resize(axes_.size());
    for (std::size_t a = axes_.size(); a-- > 0;) {
      strides_[a] = cells_;  // product of all axes after `a`
      cells_ *= axes_[a];
    }
  }

  [[nodiscard]] std::size_t cells() const { return cells_; }
  [[nodiscard]] std::size_t axes() const { return axes_.size(); }

  /// Coordinate of flat `index` along `axis`.
  [[nodiscard]] std::size_t coord(std::size_t index, std::size_t axis) const {
    return (index / strides_[axis]) % axes_[axis];
  }

  /// Flat index of a coordinate tuple (must match axes()).
  [[nodiscard]] std::size_t index(std::initializer_list<std::size_t> coords) const {
    std::size_t flat = 0, axis = 0;
    for (const std::size_t c : coords) flat = flat * axes_[axis++] + c;
    return flat;
  }

 private:
  std::vector<std::size_t> axes_;
  std::vector<std::size_t> strides_;
  std::size_t cells_ = 0;
};

struct SweepConfig {
  /// 0 resolves to $DISTSCROLL_THREADS, falling back to
  /// hardware_concurrency. 1 runs strictly sequentially (no pool).
  std::size_t threads = 0;
  std::size_t chunk = 1;  // cells per work-queue claim
  std::uint64_t base_seed = 0;
};

/// Resolve SweepConfig::threads == 0 (env var / hardware).
[[nodiscard]] std::size_t resolve_sweep_threads(std::size_t requested);

class SweepRunner {
 public:
  explicit SweepRunner(SweepConfig config)
      : config_(config), root_(config.base_seed),
        threads_(resolve_sweep_threads(config.threads)) {
    // A single-threaded sweep needs no pool at all — not even the
    // mutex/condvar object (timed_sweep's sequential pass runs through
    // this path, so the timed reference run carries zero pool overhead).
    if (threads_ > 1) pool_.emplace(threads_);
  }

  [[nodiscard]] std::size_t threads() const { return threads_; }

  /// The cell's private stream: stable for (base_seed, index) and
  /// independent of which thread runs it or when.
  [[nodiscard]] sim::Rng cell_rng(std::size_t index) const { return root_.fork(index); }

  /// Run `body(index, cell_rng(index))` for every cell, result into
  /// slot `index`. Result must be default-constructible.
  template <typename Result, typename Body>
  std::vector<Result> run(std::size_t count, Body&& body) {
    std::vector<Result> slots(count);
    if (pool_) {
      pool_->parallel_for(
          count,
          [&](std::size_t index) { slots[index] = body(index, cell_rng(index)); },
          config_.chunk);
    } else {
      for (std::size_t index = 0; index < count; ++index) {
        slots[index] = body(index, cell_rng(index));
      }
    }
    return slots;
  }

  /// Batched mode: cells are handed to `group_body` in contiguous
  /// groups of up to `width`, the parallel work unit. The body gets
  /// (first, n, out, runner) and must write cell first+k's result into
  /// out[k] using cell_rng(first+k) — same per-cell streams and slots
  /// as run(), so a group body that loops the scalar cell body is
  /// exactly run(), and a body that advances the group's cells through
  /// one BatchSessionKernel is the batched fast path. Under the same
  /// contract the output stays bit-identical to run() at any thread
  /// count and any width.
  template <typename Result, typename GroupBody>
  std::vector<Result> run_grouped(std::size_t count, std::size_t width, GroupBody&& group_body) {
    std::vector<Result> slots(count);
    if (width == 0) width = 1;
    const std::size_t groups = (count + width - 1) / width;
    auto run_group = [&](std::size_t group) {
      const std::size_t first = group * width;
      const std::size_t n = std::min(width, count - first);
      group_body(first, n, std::span<Result>(slots.data() + first, n), *this);
    };
    if (pool_) {
      pool_->parallel_for(groups, run_group, config_.chunk);
    } else {
      for (std::size_t group = 0; group < groups; ++group) run_group(group);
    }
    return slots;
  }

 private:
  SweepConfig config_;
  sim::Rng root_;
  std::size_t threads_;
  std::optional<sim::ThreadPool> pool_;
};

/// Shared bench timing harness: runs the sweep sequentially, then on the
/// resolved thread count, asserts the results compare equal (the
/// determinism contract, checked on every bench run), prints a summary
/// line and writes BENCH_<name>.json. Returns the sequential results.
/// Result must provide operator==.
///
/// Per-cell metric snapshots: the sequential pass times every cell into
/// a `cell_wall` histogram on `metrics` (caller's registry when given, a
/// local one otherwise — benches can pre-fill their own instruments),
/// and the whole registry is embedded as the "metrics" object of
/// BENCH_<name>.json. Only the single-threaded pass records, so the
/// registry needs no locking and the parallel pass stays untouched.
[[nodiscard]] double sweep_wall_clock_s();

/// Process-wide peak resident set in bytes (getrusage ru_maxrss; 0 where
/// unavailable). Monotone over the process lifetime — flatness across a
/// growing workload is how the fleet bench proves O(aggregates) memory.
[[nodiscard]] std::size_t sweep_peak_rss_bytes();

/// Default lane count for the batched pass: big enough to amortise the
/// shared island-table cache and keep several sessions resident, small
/// enough that a group's scratch stays cache-friendly on the 1-2 CPU
/// CI hosts (see DESIGN.md §11 on batch-width selection).
inline constexpr std::size_t kDefaultBatchWidth = 8;

/// timed_sweep with an explicit batched group body: after the timed
/// sequential and parallel passes, a third sequential pass runs the
/// sweep through run_grouped(count, batch_width, group_body), is timed,
/// and is compared bit-identical against the scalar reference. The
/// BENCH json gains batch_width / batched_wall_s / batch_speedup /
/// batch_bit_identical, which the bench_compare perf gate checks.
template <typename Result, typename Body, typename GroupBody>
std::vector<Result> timed_sweep_batched(const std::string& name, std::size_t count,
                                        std::uint64_t base_seed, Body&& body,
                                        GroupBody&& group_body,
                                        std::size_t batch_width = kDefaultBatchWidth,
                                        std::size_t threads = 0, std::size_t chunk = 1,
                                        obs::MetricsRegistry* metrics = nullptr) {
  obs::MetricsRegistry local_metrics;
  obs::MetricsRegistry& registry = metrics ? *metrics : local_metrics;
  obs::Histogram& cell_wall =
      registry.histogram("cell_wall", {1e-3, 1e3, "ms"});
  // Stage profiling rides the timed sequential pass only: installed on
  // this thread with 1-in-16 decimation so the clock reads stay a few
  // percent of the budget, and the parallel pass runs unprofiled. The
  // stage histograms land in BENCH_<name>.json beside cell_wall.
  obs::StageProfile stage_profile(registry, /*decimation=*/16);

  SweepRunner sequential({1, chunk, base_seed});
  const double t0 = sweep_wall_clock_s();
  auto expected = [&] {
    obs::StageProfile::Install install(stage_profile);
    return sequential.run<Result>(count, [&](std::size_t index, sim::Rng rng) {
      const double cell_t0 = sweep_wall_clock_s();
      Result result = body(index, std::move(rng));
      cell_wall.record(sweep_wall_clock_s() - cell_t0);
      return result;
    });
  }();
  const double t1 = sweep_wall_clock_s();

  SweepRunner parallel({threads, chunk, base_seed});
  const double t2 = sweep_wall_clock_s();
  auto results = parallel.run<Result>(count, body);
  const double t3 = sweep_wall_clock_s();

  // Batched pass: sequential (like the reference, so the speedup is a
  // clean same-thread-count comparison) and unprofiled (like the
  // parallel pass).
  SweepRunner batched({1, chunk, base_seed});
  const double t4 = sweep_wall_clock_s();
  auto batched_results = batched.run_grouped<Result>(count, batch_width, group_body);
  const double t5 = sweep_wall_clock_s();

  util::BenchReport report;
  report.name = name;
  report.cells = count;
  report.threads = parallel.threads();
  report.hardware_threads = resolve_sweep_threads(0);
  report.sequential_wall_s = t1 - t0;
  report.parallel_wall_s = t3 - t2;
  report.speedup = report.parallel_wall_s > 0.0
                       ? report.sequential_wall_s / report.parallel_wall_s
                       : 1.0;
  report.bit_identical = results == expected;
  report.tracing_compiled = obs::Tracer::compiled_in();
  report.batch_width = batch_width;
  report.batched_wall_s = t5 - t4;
  report.batch_speedup = report.batched_wall_s > 0.0
                             ? report.sequential_wall_s / report.batched_wall_s
                             : 1.0;
  report.batch_bit_identical = batched_results == expected;
  report.peak_rss_bytes = sweep_peak_rss_bytes();
  registry.counter("cells_run").set(count);
  report.metrics_json = registry.to_json_fields(4);
  write_bench_report(report);
  std::printf("[%s] %zu cells: %.3f s sequential, %.3f s on %zu threads "
              "(speedup %.2fx, results %s) -> BENCH_%s.json\n",
              name.c_str(), count, report.sequential_wall_s, report.parallel_wall_s,
              report.threads, report.speedup,
              report.bit_identical ? "bit-identical" : "DIVERGED", name.c_str());
  std::printf("[%s] batched x%zu: %.3f s sequential (%.2fx vs scalar, results %s)\n",
              name.c_str(), batch_width, report.batched_wall_s, report.batch_speedup,
              report.batch_bit_identical ? "bit-identical" : "DIVERGED");
  return expected;
}

/// Shared bench timing harness without a custom batched body: the
/// batched pass runs the scalar cell body through the grouped machinery
/// (same cells, same streams, same slots), so every bench records batch
/// mode even before it grows a kernel-batched group body.
template <typename Result, typename Body>
std::vector<Result> timed_sweep(const std::string& name, std::size_t count,
                                std::uint64_t base_seed, Body&& body,
                                std::size_t threads = 0, std::size_t chunk = 1,
                                obs::MetricsRegistry* metrics = nullptr) {
  auto scalar_group = [&body](std::size_t first, std::size_t n, std::span<Result> out,
                              SweepRunner& runner) {
    for (std::size_t k = 0; k < n; ++k) {
      out[k] = body(first + k, runner.cell_rng(first + k));
    }
  };
  return timed_sweep_batched<Result>(name, count, base_seed, body, scalar_group,
                                     kDefaultBatchWidth, threads, chunk, metrics);
}

}  // namespace distscroll::study
