#include "study/session.h"

#include "study/trial.h"

namespace distscroll::study {

std::vector<BlockResult> run_session(baselines::ScrollTechnique& technique,
                                     human::UserProfile profile, const SessionConfig& config,
                                     sim::Rng rng) {
  std::vector<BlockResult> blocks;
  blocks.reserve(config.blocks);
  for (std::size_t block = 0; block < config.blocks; ++block) {
    sim::Rng block_rng = rng.fork(block);
    const auto tasks = [&] {
      sim::Rng task_rng = block_rng.fork(1);
      return random_tasks(task_rng, config.level_size, config.trials_per_block);
    }();
    const auto records = run_trials(technique, tasks, profile, block_rng.fork(2), config.planner);

    BlockResult result;
    result.block = block;
    result.expertise = profile.expertise;
    result.aggregate = aggregate(records);
    blocks.push_back(result);

    // Practice: saturating exponential approach to expert performance.
    profile = profile.with_expertise(profile.expertise +
                                     config.learning_rate * (1.0 - profile.expertise));
  }
  return blocks;
}

}  // namespace distscroll::study
