// Fixed-width ASCII tables for the bench binaries (the paper has no
// numeric tables, so each experiment prints its own series in a common
// format, mirrored to CSV by the benches).
#pragma once

#include <string>
#include <vector>

namespace distscroll::study {

class Table {
 public:
  explicit Table(std::vector<std::string> header) : header_(std::move(header)) {}

  void add_row(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  /// Convenience: format doubles with fixed precision.
  void add_row(const std::string& label, const std::vector<double>& values, int precision = 3);

  [[nodiscard]] std::string render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format seconds as "1.234 s".
[[nodiscard]] std::string fmt(double value, int precision = 3);

}  // namespace distscroll::study
