// Full-device user study (reproduction of paper Section 6).
//
// Unlike the abstract-technique trials, this harness runs the REAL
// DistScrollDevice — firmware timers, ADC, displays, debounced buttons,
// telemetry — on the event queue, co-simulated with a HandModel-driven
// participant who navigates the fictive phone menu to target leaves.
// It reproduces the study protocol: hand the device over, let the user
// discover the operation, then run blocks of selection trials and watch
// errors drop to "nearly errorless".
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/distscroll_device.h"
#include "human/user_profile.h"
#include "menu/menu.h"
#include "sim/random.h"

namespace distscroll::study {

struct DeviceTrialResult {
  bool success = false;
  double time_s = 0.0;
  int wrong_activations = 0;  // wrong leaf selected / wrong submenu entered
  int reaim_count = 0;
};

struct DeviceBlockResult {
  std::size_t block = 0;
  double expertise = 0.0;
  double success_rate = 0.0;
  double mean_time_s = 0.0;
  double errors_per_trial = 0.0;

  friend bool operator==(const DeviceBlockResult&, const DeviceBlockResult&) = default;
};

struct DeviceParticipantResult {
  std::string name;
  double discovery_time_s = 0.0;  // time to discover the operation
  std::vector<DeviceBlockResult> blocks;
};

struct DeviceStudyConfig {
  std::size_t blocks = 4;
  std::size_t trials_per_block = 10;
  double step_s = 0.005;           // co-simulation step
  double trial_timeout_s = 45.0;
  double learning_rate = 0.35;
  core::DistScrollDevice::Config device{};
};

/// A leaf target expressed as the index path from the root level.
struct MenuTarget {
  std::vector<std::size_t> path;
  std::string label;
};

/// Collect all leaf targets of a menu.
[[nodiscard]] std::vector<MenuTarget> all_leaf_targets(const menu::MenuNode& root);

/// Run one participant through discovery + blocks. By default the
/// participant operates this thread's pooled device session
/// (study::DevicePool) — reset in place, allocation-free in steady
/// state. Pass use_pool = false to construct a fresh device instead;
/// both paths are bit-identical for the same (menu, profile, config,
/// rng), pinned by the pooled-vs-fresh property test.
[[nodiscard]] DeviceParticipantResult run_device_participant(const menu::MenuNode& menu_root,
                                                             human::UserProfile profile,
                                                             const DeviceStudyConfig& config,
                                                             sim::Rng rng, bool use_pool = true);

}  // namespace distscroll::study
