#include "study/trial.h"

#include <cstdlib>
#include <optional>

#include "obs/stage_timer.h"

namespace distscroll::study {

TrialRecord run_trial(baselines::ScrollTechnique& technique, const SelectionTask& task,
                      const human::UserProfile& profile, sim::Rng rng,
                      human::MotionPlanner::Config planner_config) {
  std::optional<human::MotionPlanner> planner;
  {
    DS_STAGE(TrialSetup);  // technique reset + planner construction
    technique.reset(task.level_size, task.start_index);
    planner.emplace(planner_config, rng);
  }
  TrialRecord record;
  record.outcome = planner->acquire(technique, task.target_index, profile);
  record.level_size = task.level_size;
  record.scroll_distance = task.target_index > task.start_index
                               ? task.target_index - task.start_index
                               : task.start_index - task.target_index;
  return record;
}

std::vector<TrialRecord> run_trials(baselines::ScrollTechnique& technique,
                                    std::span<const SelectionTask> tasks,
                                    const human::UserProfile& profile, sim::Rng rng,
                                    human::MotionPlanner::Config planner_config) {
  std::vector<TrialRecord> records;
  records.reserve(tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    records.push_back(run_trial(technique, tasks[i], profile, rng.fork(i), planner_config));
  }
  return records;
}

}  // namespace distscroll::study
