// Selection-task workloads for the scrolling experiments.
#pragma once

#include <cstddef>
#include <vector>

#include "sim/random.h"

namespace distscroll::study {

/// One flat-list selection: start on `start_index`, acquire and select
/// `target_index` in a level of `level_size` entries.
struct SelectionTask {
  std::size_t level_size = 10;
  std::size_t start_index = 0;
  std::size_t target_index = 0;
};

/// Random targets uniformly over the level (excluding the start).
[[nodiscard]] std::vector<SelectionTask> random_tasks(sim::Rng& rng, std::size_t level_size,
                                                      std::size_t count);

/// Tasks at a fixed scroll distance (|target-start| = distance), both
/// directions, for Fitts-style distance sweeps.
[[nodiscard]] std::vector<SelectionTask> fixed_distance_tasks(sim::Rng& rng,
                                                              std::size_t level_size,
                                                              std::size_t distance,
                                                              std::size_t count);

}  // namespace distscroll::study
