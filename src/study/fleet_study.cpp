#include "study/fleet_study.h"

#include <algorithm>
#include <cstddef>
#include <vector>

#include "baselines/distance_scroll.h"
#include "study/batch_trials.h"
#include "study/fleet_engine.h"
#include "study/task.h"
#include "study/trial.h"
#include "util/hot_path.h"

namespace distscroll::study {
namespace {

// Trial times run tenths of a second to tens of seconds; 16 log₂
// buckets from 0.125 s span [0, ~2000 s) with the timeout tail folded
// into the last bucket.
constexpr obs::Histogram::Config kTimeHistConfig{0.125, 1.0, "s"};

void serialize_moments(util::ByteWriter& out, const util::OnlineMoments& m) {
  out.u64(m.count());
  out.f64(m.raw_mean());
  out.f64(m.raw_m2());
  out.f64(m.min());
  out.f64(m.max());
}

[[nodiscard]] bool deserialize_moments(util::ByteReader& in, util::OnlineMoments& m) {
  std::uint64_t count = 0;
  double mean = 0.0, m2 = 0.0, min = 0.0, max = 0.0;
  if (!in.u64(count) || !in.f64(mean) || !in.f64(m2) || !in.f64(min) || !in.f64(max)) {
    return false;
  }
  m.restore(count, mean, m2, min, max);
  return true;
}

/// The checkpoint identity block: every input the folded result is a
/// function of (population spec doubles compare BIT-exactly — a spec
/// that differs in the 17th digit is a different study).
void write_identity(util::ByteWriter& out, const FleetStudyConfig& config) {
  out.u64(config.base_seed);
  out.u64(config.participants);
  out.u64(config.chunk);
  out.u32(config.trials_per_participant);
  out.u32(config.menu_size);
  const human::PopulationSpec& s = config.population;
  out.f64(s.expertise_mean);
  out.f64(s.expertise_sd);
  out.f64(s.learning_rate_mean);
  out.f64(s.learning_rate_sd);
  out.u32(static_cast<std::uint32_t>(s.max_practice_blocks));
  out.f64(s.glove_none_w);
  out.f64(s.glove_thin_w);
  out.f64(s.glove_thick_w);
  out.f64(s.tremor_severity_sigma);
  out.f64(s.tremor_freq_mean_hz);
  out.f64(s.tremor_freq_sd_hz);
  out.f64(s.arm_reach_mean_cm);
  out.f64(s.arm_reach_sd_cm);
}

[[nodiscard]] baselines::DistanceScroll::Config technique_config(
    const human::SampledParticipant& participant) {
  baselines::DistanceScroll::Config config{};
  config.islands.far = util::Centimeters{participant.reach_far_cm};
  return config;
}

}  // namespace

FleetAggregates::FleetAggregates() : time_hist_(kTimeHistConfig) {}

// The warm per-participant fold path: every instrument below has
// pre-reserved capacity (sketch buffers, fixed histogram buckets, POD
// moments), so folding is allocation-free — pinned statically here and
// empirically by the DS_ASSERT_NO_ALLOC scope in tests/fleet_test.cpp.
DS_HOT_BEGIN

void FleetAggregates::fold_participant(const human::SampledParticipant& participant) {
  ++participants_;
  expertise_.add(participant.effective_expertise);
  glove_counts_[static_cast<std::size_t>(participant.profile.glove)] += 1;
  for (std::size_t i = 0; i < human::kReachPresetsCm.size(); ++i) {
    if (participant.reach_far_cm == human::kReachPresetsCm[i]) {
      reach_counts_[i] += 1;
      break;
    }
  }
}

void FleetAggregates::fold_trial(const TrialRecord& record) {
  ++trials_;
  wrong_selections_ += static_cast<std::uint64_t>(record.outcome.wrong_selections);
  overshoots_ += static_cast<std::uint64_t>(record.outcome.overshoots);
  corrective_movements_ += static_cast<std::uint64_t>(record.outcome.corrective_movements);
  if (!record.outcome.success) return;
  ++successes_;
  time_s_.add(record.outcome.time_s);
  if (record.outcome.time_s > 0.0) {
    throughput_.add(record.outcome.id_bits / record.outcome.time_s);
  }
  time_hist_.record(record.outcome.time_s);
  time_sketch_.add(record.outcome.time_s);
}

DS_HOT_END

void FleetAggregates::merge(const FleetAggregates& other) {
  participants_ += other.participants_;
  for (std::size_t i = 0; i < glove_counts_.size(); ++i) {
    glove_counts_[i] += other.glove_counts_[i];
  }
  for (std::size_t i = 0; i < reach_counts_.size(); ++i) {
    reach_counts_[i] += other.reach_counts_[i];
  }
  expertise_.merge(other.expertise_);
  trials_ += other.trials_;
  successes_ += other.successes_;
  wrong_selections_ += other.wrong_selections_;
  overshoots_ += other.overshoots_;
  corrective_movements_ += other.corrective_movements_;
  time_s_.merge(other.time_s_);
  throughput_.merge(other.throughput_);
  (void)time_hist_.merge(other.time_hist_);  // layouts always match (same Config)
  time_sketch_.merge(other.time_sketch_);
}

void FleetAggregates::clear() {
  participants_ = 0;
  glove_counts_.fill(0);
  reach_counts_.fill(0);
  expertise_.clear();
  trials_ = 0;
  successes_ = 0;
  wrong_selections_ = 0;
  overshoots_ = 0;
  corrective_movements_ = 0;
  time_s_.clear();
  throughput_.clear();
  time_hist_.clear();
  time_sketch_.clear();
}

void FleetAggregates::serialize(util::ByteWriter& out) const {
  out.u64(participants_);
  for (const std::uint64_t c : glove_counts_) out.u64(c);
  for (const std::uint64_t c : reach_counts_) out.u64(c);
  serialize_moments(out, expertise_);
  out.u64(trials_);
  out.u64(successes_);
  out.u64(wrong_selections_);
  out.u64(overshoots_);
  out.u64(corrective_movements_);
  serialize_moments(out, time_s_);
  serialize_moments(out, throughput_);
  out.u64(time_hist_.count());
  out.f64(time_hist_.sum());
  out.u32(static_cast<std::uint32_t>(time_hist_.buckets().size()));
  for (const std::uint64_t b : time_hist_.buckets()) out.u64(b);
  time_sketch_.serialize(out);
}

bool FleetAggregates::deserialize(util::ByteReader& in) {
  clear();
  if (!in.u64(participants_)) return false;
  for (std::uint64_t& c : glove_counts_) {
    if (!in.u64(c)) return false;
  }
  for (std::uint64_t& c : reach_counts_) {
    if (!in.u64(c)) return false;
  }
  if (!deserialize_moments(in, expertise_)) return false;
  if (!in.u64(trials_) || !in.u64(successes_) || !in.u64(wrong_selections_) ||
      !in.u64(overshoots_) || !in.u64(corrective_movements_)) {
    return false;
  }
  if (!deserialize_moments(in, time_s_) || !deserialize_moments(in, throughput_)) return false;
  std::uint64_t hist_count = 0;
  double hist_sum = 0.0;
  std::uint32_t hist_buckets = 0;
  if (!in.u64(hist_count) || !in.f64(hist_sum) || !in.u32(hist_buckets)) return false;
  std::vector<std::uint64_t> buckets(hist_buckets, 0);
  for (std::uint64_t& b : buckets) {
    if (!in.u64(b)) return false;
  }
  if (!time_hist_.restore(hist_count, hist_sum, buckets)) return false;
  return time_sketch_.deserialize(in);
}

std::vector<std::uint8_t> FleetAggregates::to_bytes() const {
  std::vector<std::uint8_t> bytes;
  util::ByteWriter writer(bytes);
  serialize(writer);
  return bytes;
}

bool operator==(const FleetAggregates& a, const FleetAggregates& b) {
  return a.participants_ == b.participants_ && a.glove_counts_ == b.glove_counts_ &&
         a.reach_counts_ == b.reach_counts_ && a.expertise_ == b.expertise_ &&
         a.trials_ == b.trials_ && a.successes_ == b.successes_ &&
         a.wrong_selections_ == b.wrong_selections_ && a.overshoots_ == b.overshoots_ &&
         a.corrective_movements_ == b.corrective_movements_ && a.time_s_ == b.time_s_ &&
         a.throughput_ == b.throughput_ && a.time_hist_.count() == b.time_hist_.count() &&
         a.time_hist_.sum() == b.time_hist_.sum() &&
         a.time_hist_.buckets() == b.time_hist_.buckets() && a.time_sketch_ == b.time_sketch_;
}

std::vector<std::uint8_t> encode_fleet_checkpoint(const FleetStudyConfig& config,
                                                  std::uint64_t cursor,
                                                  const FleetAggregates& aggregates) {
  std::vector<std::uint8_t> payload;
  util::ByteWriter writer(payload);
  write_identity(writer, config);
  writer.u64(cursor);
  aggregates.serialize(writer);
  return payload;
}

util::CheckpointStatus decode_fleet_checkpoint(const std::vector<std::uint8_t>& payload,
                                               const FleetStudyConfig& config,
                                               std::uint64_t& cursor,
                                               FleetAggregates& aggregates) {
  std::vector<std::uint8_t> expected;
  util::ByteWriter writer(expected);
  write_identity(writer, config);
  if (payload.size() < expected.size()) return util::CheckpointStatus::Corrupt;
  if (!std::equal(expected.begin(), expected.end(), payload.begin())) {
    return util::CheckpointStatus::Mismatch;
  }
  util::ByteReader reader(payload);
  {
    // Skip the identity block just compared (ByteReader has no seek).
    std::uint64_t u64_scratch = 0;
    std::uint32_t u32_scratch = 0;
    double f64_scratch = 0.0;
    for (int i = 0; i < 3; ++i) (void)reader.u64(u64_scratch);
    for (int i = 0; i < 2; ++i) (void)reader.u32(u32_scratch);
    for (int i = 0; i < 4; ++i) (void)reader.f64(f64_scratch);
    (void)reader.u32(u32_scratch);
    for (int i = 0; i < 8; ++i) (void)reader.f64(f64_scratch);
    if (reader.cursor() != expected.size()) return util::CheckpointStatus::Corrupt;
  }
  if (!reader.u64(cursor)) return util::CheckpointStatus::Corrupt;
  if (!aggregates.deserialize(reader)) return util::CheckpointStatus::Corrupt;
  if (!reader.exhausted()) return util::CheckpointStatus::Corrupt;
  if (cursor > config.participants) return util::CheckpointStatus::Corrupt;
  return util::CheckpointStatus::Ok;
}

FleetRunResult run_fleet(const FleetStudyConfig& config, std::uint64_t stop_after) {
  FleetRunResult result;
  FleetStudyConfig cfg = config;
  if (cfg.chunk == 0) cfg.chunk = 1;

  if (cfg.resume && !cfg.checkpoint_path.empty()) {
    std::vector<std::uint8_t> payload;
    const auto read_status = util::read_checkpoint_file(
        cfg.checkpoint_path, kFleetCheckpointMagic, kFleetCheckpointVersion, payload);
    if (read_status == util::CheckpointStatus::Ok) {
      const auto decode_status =
          decode_fleet_checkpoint(payload, cfg, result.cursor, result.aggregates);
      if (decode_status != util::CheckpointStatus::Ok) {
        result.status = decode_status;
        result.error = std::string("resume: ") + util::to_string(decode_status);
        return result;
      }
      result.resumed = true;
      result.resumed_from = result.cursor;
    } else if (read_status != util::CheckpointStatus::Missing) {
      // Only a MISSING file means "nothing to resume, start fresh". A
      // file that exists but fails to read (IoError: permissions,
      // transient FS error) or to validate must abort — restarting from
      // zero over a real checkpoint is never silent.
      result.status = read_status;
      result.error = std::string("resume: ") + util::to_string(read_status);
      return result;
    }
  }

  FleetConfig engine_config;
  engine_config.participants = cfg.participants;
  engine_config.threads = cfg.threads;
  engine_config.chunk = cfg.chunk;
  engine_config.base_seed = cfg.base_seed;
  engine_config.window_chunks = cfg.window_chunks;
  FleetEngine<FleetAggregates> engine(engine_config);

  const auto scalar_chunk = [&cfg](std::uint64_t first, std::uint64_t count, FleetAggregates& out,
                                   const FleetEngine<FleetAggregates>& eng) {
    for (std::uint64_t k = 0; k < count; ++k) {
      const sim::Rng rng = eng.participant_rng(first + k);
      const auto participant = human::sample_participant(cfg.population, rng.fork(0));
      baselines::DistanceScroll technique(technique_config(participant), rng.fork(1));
      sim::Rng task_rng = rng.fork(2);
      const auto tasks = random_tasks(task_rng, cfg.menu_size, cfg.trials_per_participant);
      const auto records = run_trials(technique, tasks, participant.profile, rng.fork(3));
      out.fold_participant(participant);
      for (const TrialRecord& record : records) out.fold_trial(record);
    }
  };

  // Same per-participant streams and the same fold order as the scalar
  // body — the chunk's participants become BatchTrialRunner lanes, and
  // folding happens AFTER run() in lane (== participant) order.
  const auto batched_chunk = [&cfg](std::uint64_t first, std::uint64_t count,
                                    FleetAggregates& out,
                                    const FleetEngine<FleetAggregates>& eng) {
    auto& batch = BatchTrialRunner::local();
    thread_local std::vector<human::SampledParticipant> lane_participants;
    lane_participants.assign(static_cast<std::size_t>(count), human::SampledParticipant{});
    batch.begin_group(static_cast<std::size_t>(count));
    for (std::uint64_t k = 0; k < count; ++k) {
      const sim::Rng rng = eng.participant_rng(first + k);
      lane_participants[static_cast<std::size_t>(k)] =
          human::sample_participant(cfg.population, rng.fork(0));
      const auto& participant = lane_participants[static_cast<std::size_t>(k)];
      sim::Rng task_rng = rng.fork(2);
      const auto tasks = random_tasks(task_rng, cfg.menu_size, cfg.trials_per_participant);
      batch.init_cell(static_cast<std::size_t>(k), technique_config(participant), rng.fork(1),
                      tasks, participant.profile, rng.fork(3));
    }
    batch.run();
    for (std::uint64_t k = 0; k < count; ++k) {
      out.fold_participant(lane_participants[static_cast<std::size_t>(k)]);
      for (const TrialRecord& record : batch.records(static_cast<std::size_t>(k))) {
        out.fold_trial(record);
      }
    }
  };

  std::uint64_t last_saved = result.cursor;
  const auto save = [&](const FleetAggregates& aggregates, std::uint64_t cursor) {
    const auto status =
        util::write_checkpoint_file(cfg.checkpoint_path, kFleetCheckpointMagic,
                                    kFleetCheckpointVersion,
                                    encode_fleet_checkpoint(cfg, cursor, aggregates));
    if (status != util::CheckpointStatus::Ok && result.status == util::CheckpointStatus::Ok) {
      result.status = status;
      result.error = std::string("checkpoint write: ") + util::to_string(status);
    }
    return status == util::CheckpointStatus::Ok;
  };
  const auto window_hook = [&](const FleetAggregates& aggregates, std::uint64_t cursor) {
    if (cfg.checkpoint_path.empty() || cfg.checkpoint_every == 0) return;
    if (cursor >= cfg.participants) return;  // the final save below covers this
    if (cursor - last_saved < cfg.checkpoint_every) return;
    if (save(aggregates, cursor)) last_saved = cursor;
  };

  const std::uint64_t stop = std::min(stop_after, cfg.participants);
  if (cfg.batched) {
    engine.run(result.aggregates, result.cursor, stop, batched_chunk, window_hook);
  } else {
    engine.run(result.aggregates, result.cursor, stop, scalar_chunk, window_hook);
  }

  result.complete = result.cursor >= cfg.participants;
  if (!cfg.checkpoint_path.empty()) (void)save(result.aggregates, result.cursor);
  return result;
}

}  // namespace distscroll::study
