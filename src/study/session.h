// Multi-block participant sessions with practice effects.
//
// The paper's Section 6 observation — "Shortly after knowing the
// relation between menu entry selection and distance, all users were
// able to nearly errorless use the device" — is a learning-curve claim.
// A Session runs a participant through blocks of trials, raising the
// profile's expertise between blocks (power-law-of-practice-flavoured),
// so per-block error rates trace the curve.
#pragma once

#include <memory>
#include <vector>

#include "baselines/scroll_technique.h"
#include "study/metrics.h"
#include "study/task.h"

namespace distscroll::study {

struct SessionConfig {
  std::size_t blocks = 5;
  std::size_t trials_per_block = 20;
  std::size_t level_size = 10;
  /// Expertise gained per completed block (saturating toward 1.0).
  double learning_rate = 0.35;
  human::MotionPlanner::Config planner{};
};

struct BlockResult {
  std::size_t block = 0;
  double expertise = 0.0;
  Aggregate aggregate{};
};

/// Runs a full session for one participant on one technique.
[[nodiscard]] std::vector<BlockResult> run_session(baselines::ScrollTechnique& technique,
                                                   human::UserProfile profile,
                                                   const SessionConfig& config, sim::Rng rng);

}  // namespace distscroll::study
