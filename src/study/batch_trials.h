// Batched trial execution over BatchSessionKernel lanes.
//
// BatchTrialRunner is the bit-identical batched counterpart of the
// scalar cell body every DistScroll bench runs:
//
//   baselines::DistanceScroll technique(config, technique_rng);
//   auto records = run_trials(technique, tasks, profile, trials_rng);
//
// A sweep group's cells become kernel lanes; run() advances all lanes
// in lockstep at trial granularity (lane-major within each trial
// round), with every control phase — reach, settle, commit press —
// executed as one SoA block through the kernel instead of per-dt-step
// virtual calls. The planner-side arithmetic (aim scatter, Fitts
// timing, min-jerk reach, tremor, commit slips) mirrors
// human::MotionPlanner::run_absolute / commit_selection expression by
// expression, reusing the same human:: primitives, so the per-trial
// draw streams and FP sequences are exactly the scalar ones.
//
// Trials within a cell stay sequential ON PURPOSE: the technique's RNG
// streams persist across trials (reset() does not reseed), so trials
// are stream-dependent and only whole CELLS are independent lanes.
#pragma once

#include <span>
#include <vector>

#include "baselines/distance_scroll.h"
#include "human/motion_planner.h"
#include "human/user_profile.h"
#include "sim/random.h"
#include "study/batch_kernel.h"
#include "study/metrics.h"
#include "study/task.h"

namespace distscroll::study {

class BatchTrialRunner {
 public:
  /// One runner (kernel + scratch) per worker thread, like
  /// DevicePool::local_session: grouped sweeps on a pool stay inside
  /// the determinism contract because lane state never crosses threads
  /// and is fully re-initialised per cell.
  static BatchTrialRunner& local();

  /// Start a group of up to `lanes` cells. Clears previous lanes and
  /// records; keeps warmed capacity and the kernel's island-table cache.
  void begin_group(std::size_t lanes);

  /// Bind lane <- one sweep cell. Tasks are copied; profile/config by
  /// value. Mirrors constructing DistanceScroll(config, technique_rng)
  /// and queuing run_trials(tasks, profile, trials_rng, planner).
  void init_cell(std::size_t lane, const baselines::DistanceScroll::Config& config,
                 sim::Rng technique_rng, std::span<const SelectionTask> tasks,
                 const human::UserProfile& profile, sim::Rng trials_rng,
                 human::MotionPlanner::Config planner = {});

  /// Run every bound cell to completion, lanes advancing in lockstep
  /// trial-by-trial (trial t of every lane before trial t+1 of any).
  void run();

  /// Lane's records after run(); bit-identical to the scalar
  /// run_trials() vector for the same cell inputs.
  [[nodiscard]] std::span<const TrialRecord> records(std::size_t lane) const {
    return cells_[lane].records;
  }

 private:
  struct Cell {
    bool active = false;
    std::vector<SelectionTask> tasks;
    human::UserProfile profile;
    sim::Rng trials_rng{0};
    human::MotionPlanner::Config planner;
    std::vector<TrialRecord> records;
  };

  TrialRecord run_one_trial(std::size_t lane, const Cell& cell, const SelectionTask& task,
                            sim::Rng rng);
  human::AcquisitionOutcome acquire_absolute(std::size_t lane, std::size_t target,
                                             const human::UserProfile& p, sim::Rng& rng,
                                             const human::MotionPlanner::Config& cfg);
  bool commit(std::size_t lane, std::size_t target, const human::UserProfile& p, sim::Rng& rng,
              const human::MotionPlanner::Config& cfg, double hold_u,
              human::AcquisitionOutcome& outcome);
  /// Feed the staged times_/us_ arrays through the kernel into cursors_.
  void run_staged_block(std::size_t lane);

  BatchSessionKernel kernel_;
  std::vector<Cell> cells_;
  // Phase-block staging arrays (SoA along the sample axis), reused.
  std::vector<double> times_;
  std::vector<double> us_;
  std::vector<std::uint32_t> cursors_;
};

}  // namespace distscroll::study
