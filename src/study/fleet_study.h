// Fleet-scale DistScroll population study: streaming aggregates,
// checkpointable runs, scalar and batched chunk bodies.
//
// run_fleet() drives the FleetEngine over a sampled population
// (human::PopulationSpec): participant k's profile, task set and trial
// streams all derive from Rng(base_seed).fork(k), mirroring the per-cell
// fork decomposition every DistScroll bench uses —
//   fork(0) population sampling, fork(1) technique, fork(2) tasks,
//   fork(3) trials
// — so results are a pure function of (config, base_seed) at any thread
// count, with or without the batched kernel, and across any
// checkpoint/resume split (DESIGN.md §12).
//
// Memory is O(FleetAggregates) — a few KB of moments, counters, one
// log₂ time histogram and one quantile sketch — regardless of whether
// the run covers 10 thousand or 10 million participants.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "human/population.h"
#include "obs/metrics.h"
#include "study/metrics.h"
#include "util/checkpoint_io.h"
#include "util/online_stats.h"
#include "util/quantile_sketch.h"

namespace distscroll::study {

/// Everything a fleet run keeps: mergeable, clearable, byte-exactly
/// serialisable. Fold order within a chunk is participant order, and
/// for each participant fold_participant() then its trials in task
/// order — both chunk bodies follow it, so batched == scalar bytes.
class FleetAggregates {
 public:
  FleetAggregates();

  /// Alloc-free after construction (DS_ASSERT_NO_ALLOC pins this).
  void fold_participant(const human::SampledParticipant& participant);
  /// Alloc-free after construction (DS_ASSERT_NO_ALLOC pins this).
  void fold_trial(const TrialRecord& record);

  /// this <- this ++ other. Callers MUST merge in ascending chunk-index
  /// order — the merge maths is order-sensitive in FP.
  void merge(const FleetAggregates& other);
  /// Reset to empty, keeping warmed capacity (sketch/histogram buffers).
  void clear();

  void serialize(util::ByteWriter& out) const;
  [[nodiscard]] bool deserialize(util::ByteReader& in);
  /// serialize() into a fresh vector — the byte-identity comparisons the
  /// bench and tests run.
  [[nodiscard]] std::vector<std::uint8_t> to_bytes() const;

  // --- participant-level ----------------------------------------------------
  [[nodiscard]] std::uint64_t participants() const { return participants_; }
  [[nodiscard]] const util::OnlineMoments& expertise() const { return expertise_; }
  [[nodiscard]] const std::array<std::uint64_t, 3>& glove_counts() const { return glove_counts_; }
  [[nodiscard]] const std::array<std::uint64_t, human::kReachPresetsCm.size()>& reach_counts()
      const {
    return reach_counts_;
  }

  // --- trial-level ----------------------------------------------------------
  [[nodiscard]] std::uint64_t trials() const { return trials_; }
  [[nodiscard]] std::uint64_t successes() const { return successes_; }
  [[nodiscard]] std::uint64_t wrong_selections() const { return wrong_selections_; }
  [[nodiscard]] std::uint64_t overshoots() const { return overshoots_; }
  [[nodiscard]] std::uint64_t corrective_movements() const { return corrective_movements_; }
  /// Successful-trial selection times.
  [[nodiscard]] const util::OnlineMoments& time_s() const { return time_s_; }
  /// ID/time over successful trials.
  [[nodiscard]] const util::OnlineMoments& throughput_bits_s() const { return throughput_; }
  [[nodiscard]] const obs::Histogram& time_hist() const { return time_hist_; }
  [[nodiscard]] const util::QuantileSketch& time_sketch() const { return time_sketch_; }

  friend bool operator==(const FleetAggregates& a, const FleetAggregates& b);

 private:
  std::uint64_t participants_ = 0;
  std::array<std::uint64_t, 3> glove_counts_{};  // indexed by human::Glove
  std::array<std::uint64_t, human::kReachPresetsCm.size()> reach_counts_{};
  util::OnlineMoments expertise_;

  std::uint64_t trials_ = 0;
  std::uint64_t successes_ = 0;
  std::uint64_t wrong_selections_ = 0;
  std::uint64_t overshoots_ = 0;
  std::uint64_t corrective_movements_ = 0;
  util::OnlineMoments time_s_;
  util::OnlineMoments throughput_;
  obs::Histogram time_hist_;
  util::QuantileSketch time_sketch_;
};

struct FleetStudyConfig {
  human::PopulationSpec population{};
  std::uint64_t participants = 100000;
  std::uint32_t trials_per_participant = 4;
  std::uint32_t menu_size = 40;
  std::uint64_t base_seed = 0xD157F1EE;
  /// 0 resolves like SweepConfig::threads ($DISTSCROLL_THREADS / hw).
  std::size_t threads = 0;
  /// Merge granularity (participants per chunk) — part of the result's
  /// identity and of the checkpoint identity block.
  std::uint64_t chunk = 256;
  /// Memory bound (chunk aggregates in flight); NOT part of identity.
  std::size_t window_chunks = 32;
  /// Run participants through BatchTrialRunner lanes instead of the
  /// scalar run_trials() body. Bit-identical either way (pinned by
  /// tests/fleet_test.cpp), so not part of the checkpoint identity.
  bool batched = true;
  /// Empty disables checkpointing entirely.
  std::string checkpoint_path{};
  /// Participants between periodic checkpoint writes (0: only write the
  /// final state when a checkpoint_path is set).
  std::uint64_t checkpoint_every = 0;
  /// Load checkpoint_path before running and continue from its cursor.
  /// An unreadable/corrupt/mismatched file ABORTS the run (never a
  /// silent restart); a missing file starts from zero.
  bool resume = false;
};

inline constexpr std::uint32_t kFleetCheckpointMagic = 0x4C46'5344;  // "DSFL" little-endian
inline constexpr std::uint32_t kFleetCheckpointVersion = 1;

/// Sentinel: run to completion.
inline constexpr std::uint64_t kFleetRunAll = ~static_cast<std::uint64_t>(0);

struct FleetRunResult {
  FleetAggregates aggregates;
  /// Participants folded so far (== config.participants when complete;
  /// chunk-aligned otherwise).
  std::uint64_t cursor = 0;
  /// Cursor the run started from (non-zero only after a resume).
  std::uint64_t resumed_from = 0;
  bool resumed = false;
  bool complete = false;
  /// Non-Ok means the run aborted before folding anything (bad resume
  /// file or unwritable checkpoint); `error` carries the rendered cause.
  util::CheckpointStatus status = util::CheckpointStatus::Ok;
  std::string error;
};

/// Encode (identity block, cursor, aggregates) as a checkpoint payload.
[[nodiscard]] std::vector<std::uint8_t> encode_fleet_checkpoint(const FleetStudyConfig& config,
                                                                std::uint64_t cursor,
                                                                const FleetAggregates& aggregates);

/// Decode a payload produced by encode_fleet_checkpoint. Mismatch when
/// the identity block disagrees with `config`; Corrupt on malformed
/// bytes; Ok restores cursor + aggregates.
[[nodiscard]] util::CheckpointStatus decode_fleet_checkpoint(
    const std::vector<std::uint8_t>& payload, const FleetStudyConfig& config,
    std::uint64_t& cursor, FleetAggregates& aggregates);

/// Run (or resume) the fleet study, folding at most up to participant
/// `stop_after` (rounded up to a chunk boundary) before writing a final
/// checkpoint and returning. stop_after lets the bench and tests force
/// a mid-run cut; normal callers leave it at kFleetRunAll.
[[nodiscard]] FleetRunResult run_fleet(const FleetStudyConfig& config,
                                       std::uint64_t stop_after = kFleetRunAll);

}  // namespace distscroll::study
