#include "study/report.h"

#include <algorithm>
#include <cstdio>

namespace distscroll::study {

std::string fmt(double value, int precision) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

void Table::add_row(const std::string& label, const std::vector<double>& values, int precision) {
  std::vector<std::string> row;
  row.reserve(values.size() + 1);
  row.push_back(label);
  for (double v : values) row.push_back(fmt(v, precision));
  rows_.push_back(std::move(row));
}

std::string Table::render() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  auto grow = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  grow(header_);
  for (const auto& row : rows_) grow(row);

  auto line = [&](const std::vector<std::string>& row) {
    std::string out = "|";
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string{};
      out += " " + cell + std::string(widths[i] - cell.size(), ' ') + " |";
    }
    return out + "\n";
  };

  std::string sep = "+";
  for (const auto w : widths) sep += std::string(w + 2, '-') + "+";
  sep += "\n";

  std::string out = sep + line(header_) + sep;
  for (const auto& row : rows_) out += line(row);
  out += sep;
  return out;
}

}  // namespace distscroll::study
