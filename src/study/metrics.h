// Aggregation of trial outcomes into the numbers the benches report.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "human/motion_planner.h"

namespace distscroll::study {

struct TrialRecord {
  human::AcquisitionOutcome outcome;
  std::size_t level_size = 0;
  std::size_t scroll_distance = 0;  // |target - start|

  friend bool operator==(const TrialRecord&, const TrialRecord&) = default;
};

struct Aggregate {
  std::size_t trials = 0;
  double success_rate = 0.0;
  double mean_time_s = 0.0;       // successful trials only
  double stddev_time_s = 0.0;
  double p95_time_s = 0.0;
  double error_rate = 0.0;        // wrong selections per trial
  double mean_overshoots = 0.0;
  double mean_corrections = 0.0;
  double throughput_bits_s = 0.0; // mean ID/time over successes

  friend bool operator==(const Aggregate&, const Aggregate&) = default;
};

[[nodiscard]] Aggregate aggregate(std::span<const TrialRecord> records);

}  // namespace distscroll::study
