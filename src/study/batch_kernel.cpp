#include "study/batch_kernel.h"

#include <algorithm>
#include <cmath>

#include "util/hot_path.h"

namespace distscroll::study {

void BatchSessionKernel::begin_group(std::size_t lanes) {
  // Shrink-free resize: lane slots (and their member vectors/optionals)
  // keep capacity across groups, so a warmed kernel re-groups without
  // touching the heap. The mapper cache deliberately survives: tables
  // are pure functions of (curve, entries, config).
  lanes_.resize(lanes);
}

const core::IslandMapper* BatchSessionKernel::cached_mapper(
    const baselines::DistanceScroll::Config& config, std::size_t entries) {
  const core::SensorCurve::Params& curve = config.curve.params();
  const core::IslandMapper::Config& islands = config.islands;
  for (const MapperEntry& entry : mappers_) {
    if (entry.entries == entries && entry.curve.a == curve.a && entry.curve.k == curve.k &&
        entry.curve.c == curve.c && entry.curve.vref == curve.vref &&
        entry.islands.near.value == islands.near.value &&
        entry.islands.far.value == islands.far.value &&
        entry.islands.coverage == islands.coverage &&
        entry.islands.hysteresis_counts == islands.hysteresis_counts) {
      return entry.mapper.get();
    }
  }
  MapperEntry entry{curve, islands, entries,
                    std::make_unique<core::IslandMapper>(config.curve, entries, islands)};
  mappers_.push_back(std::move(entry));
  return mappers_.back().mapper.get();
}

void BatchSessionKernel::init_lane(std::size_t lane,
                                   const baselines::DistanceScroll::Config& config,
                                   sim::Rng technique_rng) {
  Lane& L = lanes_[lane];
  L.config = config;
  L.surface = sensors::SurfaceProfile{};  // the ranger's default-constructed surface
  L.sensor_rng = technique_rng.fork(1);   // the ranger's stream, as in the scalar ctor
  L.adc_rng = technique_rng;              // ADC noise draws from the technique RNG itself
  L.model.emplace(config.sensor, sim::Rng(0));  // ideal_output only; its RNG is never drawn
  reset_lane(lane, 1, 0);                 // the scalar ctor ends in reset(1, 0)
}

void BatchSessionKernel::reset_lane(std::size_t lane, std::size_t level_size,
                                    std::size_t start_index) {
  Lane& L = lanes_[lane];
  // ranger_.reset(): trial clocks restart at zero, noise stream persists.
  L.ever_measured = false;
  L.next_measurement_s = 0.0;
  L.held_volts = 0.0;
  L.level_size = std::max<std::size_t>(1, level_size);
  L.mapper = cached_mapper(L.config, L.level_size);
  // Fresh construction == reinitialize(): selection, smoothing state and
  // stream statistics all start over (the scalar reset() reinitialises
  // unconditionally, so a level-size change rebinding the table here is
  // indistinguishable from the in-place rebuild).
  L.controller.emplace(*L.mapper, L.config.scroll);
  L.cursor = std::min(start_index, L.level_size - 1);
  L.next_tick_s = 0.0;
}

baselines::ControlSpec BatchSessionKernel::spec(std::size_t lane) const {
  const Lane& L = lanes_[lane];
  baselines::ControlSpec spec;
  spec.style = baselines::ControlStyle::AbsolutePosition;
  spec.u_min = 2.0;
  spec.u_max = 40.0;
  spec.u_neutral = (L.config.islands.near.value + L.config.islands.far.value) / 2.0;
  spec.unit = "cm";
  return spec;
}

std::size_t BatchSessionKernel::island_of_menu_index(const Lane& lane,
                                                     std::size_t menu_index) const {
  if (lane.config.scroll.direction == core::ScrollDirection::TowardUserScrollsDown) {
    return lane.level_size - 1 - menu_index;
  }
  return menu_index;
}

std::optional<double> BatchSessionKernel::target_u(std::size_t lane, std::size_t target) const {
  const Lane& L = lanes_[lane];
  if (target >= L.level_size) return std::nullopt;
  return L.mapper->centre_distance(island_of_menu_index(L, target)).value;
}

double BatchSessionKernel::target_width_u(std::size_t lane, std::size_t target) const {
  const Lane& L = lanes_[lane];
  if (target >= L.level_size) return 0.1;
  const auto& island = L.mapper->islands()[island_of_menu_index(L, target)];
  const double d_low = L.config.curve.distance_at(util::AdcCounts{island.high}).value;
  const double d_high = L.config.curve.distance_at(util::AdcCounts{island.low}).value;
  return std::max(0.05, d_high - d_low);
}

void BatchSessionKernel::run_block(std::size_t lane, std::span<const double> now_s,
                                   std::span<const double> u,
                                   std::span<std::uint32_t> cursors_out) {
  Lane& L = lanes_[lane];
  const std::size_t n = now_s.size();

  // --- schedule stage: firmware ticks and S&H remeasures are pure
  // functions of the time grid, so the block's entire noise consumption
  // is known before any numeric work — that is what lets one batched
  // fill per stream replace the per-sample draws.
  tick_at_.clear();
  remeasured_.clear();
  double next_tick = L.next_tick_s;
  double next_meas = L.next_measurement_s;
  bool ever = L.ever_measured;
  const double tick_period = L.config.firmware_tick.value;
  const double meas_period = L.config.sensor.measurement_period.value;
  std::size_t remeasures = 0;
  for (std::size_t k = 0; k < n; ++k) {
    if (now_s[k] < next_tick) continue;
    next_tick = now_s[k] + tick_period;
    tick_at_.push_back(static_cast<std::uint32_t>(k));
    std::uint8_t remeasure = 0;
    if (!ever || now_s[k] >= next_meas) {
      remeasure = 1;
      ever = true;
      // Align the next measurement to the sensor's own internal grid.
      if (now_s[k] >= next_meas + meas_period) {
        next_meas = now_s[k] + meas_period;  // resync after a long gap
      } else {
        next_meas += meas_period;
      }
      ++remeasures;
    }
    remeasured_.push_back(remeasure);
  }
  L.next_tick_s = next_tick;
  L.next_measurement_s = next_meas;
  L.ever_measured = ever;

  const std::size_t ticks = tick_at_.size();
  sensor_noise_.resize(remeasures);
  adc_noise_.resize(ticks);
  sampled_.resize(ticks);

  DS_HOT_BEGIN
  // --- noise stage: one fill per stream. fill_gaussian consumes the
  // engine identically to the per-sample gaussian() calls it replaces
  // (spare cache included), so per-stream draw order is untouched. The
  // specular-glitch path interleaves a bernoulli on the sensor stream,
  // making its consumption data-dependent — that rare configuration
  // falls back to scalar in-loop draws below.
  const double glitch_p = L.surface.specular_glitch_probability;
  if (glitch_p <= 0.0) {
    L.sensor_rng.fill_gaussian({sensor_noise_.data(), remeasures}, 0.0,
                               L.config.sensor.output_noise_volts);
  }
  L.adc_rng.fill_gaussian({adc_noise_.data(), ticks}, 0.0, L.config.adc_noise_lsb);

  // --- sensor + ADC stage: expression shapes mirror
  // Gp2d120Model::remeasure and DistanceScroll::on_control exactly.
  const double refl_shift = (L.surface.reflectivity - 1.0) * L.config.sensor.reflectivity_sensitivity;
  const double vref = L.config.curve.params().vref;
  double held = L.held_volts;
  std::size_t m = 0;
  for (std::size_t j = 0; j < ticks; ++j) {
    if (remeasured_[j]) {
      const bool glitched = glitch_p > 0.0 && L.sensor_rng.bernoulli(glitch_p);
      if (glitched) {
        held = L.config.sensor.min_output_volts;
      } else {
        double v = L.model->ideal_output(util::Centimeters{u[tick_at_[j]]}).value *
                   (1.0 + refl_shift);
        v += glitch_p > 0.0 ? L.sensor_rng.gaussian(0.0, L.config.sensor.output_noise_volts)
                            : sensor_noise_[m++];
        held = std::clamp(v, 0.0, 3.3);
      }
    }
    double counts = held / vref * 1023.0;
    counts += adc_noise_[j];
    counts = std::clamp(counts, 0.0, 1023.0);
    sampled_[j] = static_cast<std::uint16_t>(std::lround(counts));
  }
  L.held_volts = held;

  // --- LUT + FSM stage: sequential by nature (each sample's hysteresis
  // depends on the previous selection), then the cursor is fanned back
  // out over the dense sample axis for the planner's observer.
  std::size_t cursor = L.cursor;
  const std::size_t last = L.level_size - 1;
  std::size_t j = 0;
  for (std::size_t k = 0; k < n; ++k) {
    if (j < ticks && tick_at_[j] == k) {
      const auto update = L.controller->on_sample(util::AdcCounts{sampled_[j]});
      if (update.menu_index) cursor = std::min(*update.menu_index, last);
      ++j;
    }
    cursors_out[k] = static_cast<std::uint32_t>(cursor);
  }
  L.cursor = cursor;
  DS_HOT_END
}

}  // namespace distscroll::study
