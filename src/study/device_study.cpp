#include "study/device_study.h"

#include <algorithm>
#include <cmath>

#include <optional>

#include "human/fitts.h"
#include "human/hand_model.h"
#include "obs/stage_timer.h"
#include "study/device_pool.h"
#include "util/stats.h"

namespace distscroll::study {

namespace {

void collect_leaves(const menu::MenuNode& node, std::vector<std::size_t>& path,
                    std::vector<MenuTarget>& out) {
  for (std::size_t i = 0; i < node.child_count(); ++i) {
    path.push_back(i);
    const menu::MenuNode& child = node.child(i);
    if (child.is_leaf()) {
      out.push_back({path, child.label()});
    } else {
      collect_leaves(child, path, out);
    }
    path.pop_back();
  }
}

/// Co-simulated participant operating the real device.
class DeviceParticipant {
 public:
  DeviceParticipant(core::DistScrollDevice& device, sim::EventQueue& queue,
                    const human::UserProfile& profile, const DeviceStudyConfig& config,
                    sim::Rng rng)
      : device_(&device),
        queue_(&queue),
        profile_(profile),
        config_(config),
        rng_(rng),
        hand_({}, rng_.fork(1)) {
    // Non-owning provider: the participant outlives every queue event of
    // its session (the device is powered off before it dies).
    device_->set_distance_provider_ref(core::DistScrollDevice::DistanceProvider(
        this, [](void* ctx, util::Seconds now) {
          return static_cast<DeviceParticipant*>(ctx)->hand_.distance(now);
        }));
  }

  void set_profile(const human::UserProfile& profile) { profile_ = profile; }

  /// Advance simulated time by dt (device firmware runs on the queue).
  void advance(double dt) { queue_->run_until(util::Seconds{queue_->now().value + dt}); }

  [[nodiscard]] double now() const { return queue_->now().value; }

  /// The aim distance the participant believes selects `index` in the
  /// current level. Knowledge of the mapping comes with expertise.
  [[nodiscard]] double aim_distance_for(std::size_t index) {
    const auto& mapper = device_->mapper();
    std::size_t island = index;
    if (device_->config().scroll.direction == core::ScrollDirection::TowardUserScrollsDown) {
      island = mapper.entries() - 1 - index;
    }
    island = std::min(island, mapper.entries() - 1);
    const double centre = mapper.centre_distance(island).value;
    const double knowledge_noise = (1.0 - profile_.expertise) * 1.2;
    return centre + rng_.gaussian(0.0, profile_.aim_w0_cm + knowledge_noise);
  }

  /// Reach until the cursor sits on `index` in the current level.
  /// Returns false on per-step timeout.
  bool acquire_index(std::size_t index, double deadline_s, int& reaim_count) {
    bool first = true;
    while (now() < deadline_s) {
      const double from = hand_.distance(util::Seconds{now()}).value;
      const double aim = aim_distance_for(index);
      const double width = estimate_island_width_cm();
      const auto reach = human::movement_time(profile_.reach_fitts, std::abs(aim - from), width);
      if (!first) ++reaim_count;
      first = false;
      hand_.start_reach(util::Seconds{now()}, aim, reach);
      advance(reach.value);
      // Settle and perceive.
      advance(profile_.reaction_time_s + 0.20);
      if (device_->cursor().index() == index) return true;
    }
    return false;
  }

  /// Press the select (or back) button for a realistic press duration.
  void press(input::Button& button) {
    const double duration = profile_.button_press_s;
    button.press();
    advance(duration);
    button.release();
    advance(0.06);
  }

  DeviceTrialResult run_trial(const MenuTarget& target) {
    DeviceTrialResult result;
    const double t0 = now();
    const double deadline = t0 + config_.trial_timeout_s;

    // Start from the root level each trial (press back until at root).
    while (device_->cursor().depth() > 0 && now() < deadline) {
      press(device_->back_button());
    }

    std::size_t path_pos = 0;
    std::size_t leaf_events_seen = device_->selections().size();
    while (now() < deadline) {
      const std::size_t want = target.path[path_pos];
      if (!acquire_index(want, deadline, result.reaim_count)) break;

      // Verify the label, then commit with the thumb button.
      advance(profile_.verification_time_s);
      press(device_->select_button());

      // What actually happened? (tremor may have moved the cursor during
      // the press, or the press may have slipped entirely)
      const auto& events = device_->selections();
      if (events.size() == leaf_events_seen) {
        // Press did not register (debounce raced / slipped): retry.
        continue;
      }
      leaf_events_seen = events.size();
      const auto& last = events.back();

      if (last.is_leaf) {
        if (path_pos + 1 == target.path.size() && last.label == target.label) {
          result.success = true;
          result.time_s = now() - t0;
          return result;
        }
        // Activated the wrong leaf.
        ++result.wrong_activations;
        continue;  // still at the same level: re-acquire
      }
      // Entered a submenu.
      const std::size_t entered_depth = device_->cursor().depth();
      if (entered_depth == path_pos + 1 && last.label == label_on_path(target, path_pos)) {
        ++path_pos;  // correct descent
      } else {
        // Wrong submenu: back out.
        ++result.wrong_activations;
        press(device_->back_button());
      }
    }
    result.time_s = now() - t0;
    return result;
  }

  /// Discovery phase: free exploration until the distance->selection
  /// relation clicks. "Even when no hints were given, the manner of
  /// operation was promptly discovered" — tens of seconds at most.
  double run_discovery() {
    const double t0 = now();
    const double base = 3.0 + rng_.exponential(5.0 * (1.0 - 0.6 * profile_.expertise));
    // The user waves the device around while figuring it out.
    while (now() - t0 < base) {
      const double to = rng_.uniform(5.0, 28.0);
      const auto reach = human::movement_time(profile_.reach_fitts,
                                              std::abs(to - hand_.target_cm()), 2.0);
      hand_.start_reach(util::Seconds{now()}, to, reach);
      advance(reach.value + 0.3);
    }
    return now() - t0;
  }

 private:
  [[nodiscard]] std::string label_on_path(const MenuTarget& target, std::size_t pos) const {
    // Resolve the label of path element `pos` by walking the tree.
    const menu::MenuNode* node = menu_root_;
    for (std::size_t i = 0; i < pos; ++i) node = &node->child(target.path[i]);
    return node->child(target.path[pos]).label();
  }

  [[nodiscard]] double estimate_island_width_cm() const {
    const auto& cfg = device_->config().islands;
    const std::size_t entries = std::max<std::size_t>(1, device_->mapper().entries());
    return std::max(0.3, (cfg.far.value - cfg.near.value) / static_cast<double>(entries) *
                             cfg.coverage);
  }

 public:
  void set_menu_root(const menu::MenuNode* root) { menu_root_ = root; }

 private:
  core::DistScrollDevice* device_;
  sim::EventQueue* queue_;
  human::UserProfile profile_;
  DeviceStudyConfig config_;
  sim::Rng rng_;
  human::HandModel hand_;
  const menu::MenuNode* menu_root_ = nullptr;
};

}  // namespace

std::vector<MenuTarget> all_leaf_targets(const menu::MenuNode& root) {
  std::vector<MenuTarget> out;
  std::vector<std::size_t> path;
  collect_leaves(root, path, out);
  return out;
}

DeviceParticipantResult run_device_participant(const menu::MenuNode& menu_root,
                                               human::UserProfile profile,
                                               const DeviceStudyConfig& config, sim::Rng rng,
                                               bool use_pool) {
  // Pooled path: recycle this thread's session (the steady state does
  // no allocation). Fresh path: construct everything locally — the
  // reference the bit-identity property test compares against.
  std::optional<sim::EventQueue> fresh_queue;
  std::optional<core::DistScrollDevice> fresh_device;
  sim::EventQueue* queue = nullptr;
  core::DistScrollDevice* device = nullptr;
  {
    DS_STAGE(TrialSetup);  // the cost device pooling exists to shrink
    if (use_pool) {
      DeviceSession& session = DevicePool::local();
      device = &session.acquire(config.device, menu_root, rng.fork(1));
      queue = &session.queue();
    } else {
      fresh_queue.emplace();
      fresh_device.emplace(config.device, menu_root, *fresh_queue, rng.fork(1));
      queue = &*fresh_queue;
      device = &*fresh_device;
    }
  }
  core::DistScrollDevice& dev = *device;
  dev.power_on();

  DeviceParticipant participant(dev, *queue, profile, config, rng.fork(2));
  participant.set_menu_root(&menu_root);

  DeviceParticipantResult result;
  result.name = profile.name;
  result.discovery_time_s = participant.run_discovery();

  const auto targets = all_leaf_targets(menu_root);
  sim::Rng target_rng = rng.fork(3);

  for (std::size_t block = 0; block < config.blocks; ++block) {
    std::vector<double> times;
    double successes = 0, errors = 0;
    for (std::size_t trial = 0; trial < config.trials_per_block; ++trial) {
      const auto& target =
          targets[static_cast<std::size_t>(target_rng.uniform_int(0, static_cast<int>(targets.size()) - 1))];
      const DeviceTrialResult r = participant.run_trial(target);
      if (r.success) {
        successes += 1;
        times.push_back(r.time_s);
      }
      errors += r.wrong_activations;
    }
    DeviceBlockResult b;
    b.block = block;
    b.expertise = profile.expertise;
    b.success_rate = successes / static_cast<double>(config.trials_per_block);
    b.errors_per_trial = errors / static_cast<double>(config.trials_per_block);
    if (!times.empty()) b.mean_time_s = util::summarize(times).mean;
    result.blocks.push_back(b);

    profile = profile.with_expertise(profile.expertise +
                                     config.learning_rate * (1.0 - profile.expertise));
    participant.set_profile(profile);
  }
  dev.power_off();
  return result;
}

}  // namespace distscroll::study
