#include "study/task.h"

#include <cassert>

namespace distscroll::study {

std::vector<SelectionTask> random_tasks(sim::Rng& rng, std::size_t level_size,
                                        std::size_t count) {
  assert(level_size >= 2);
  std::vector<SelectionTask> tasks;
  tasks.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    SelectionTask task;
    task.level_size = level_size;
    task.start_index = static_cast<std::size_t>(rng.uniform_int(0, static_cast<int>(level_size) - 1));
    do {
      task.target_index =
          static_cast<std::size_t>(rng.uniform_int(0, static_cast<int>(level_size) - 1));
    } while (task.target_index == task.start_index);
    tasks.push_back(task);
  }
  return tasks;
}

std::vector<SelectionTask> fixed_distance_tasks(sim::Rng& rng, std::size_t level_size,
                                                std::size_t distance, std::size_t count) {
  assert(level_size >= 2 && distance >= 1 && distance < level_size);
  std::vector<SelectionTask> tasks;
  tasks.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    SelectionTask task;
    task.level_size = level_size;
    const bool down = rng.bernoulli(0.5);
    if (down) {
      task.start_index = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(level_size - 1 - distance)));
      task.target_index = task.start_index + distance;
    } else {
      task.start_index = static_cast<std::size_t>(
          rng.uniform_int(static_cast<int>(distance), static_cast<int>(level_size) - 1));
      task.target_index = task.start_index - distance;
    }
    tasks.push_back(task);
  }
  return tasks;
}

}  // namespace distscroll::study
