// Streaming fleet engine: sweeps over populations too large to store.
//
// SweepRunner pre-sizes one result slot per cell, so study size is
// capped by memory. FleetEngine removes the cap: participants are
// generated on the fly from their index, folded CHUNK by chunk into
// mergeable online aggregates, and only the aggregates survive — memory
// is O(window_chunks × |Agg|), independent of the participant count.
//
// Determinism contract (extends DESIGN.md §7; details in §12):
//  * participant k's randomness is Rng(base_seed).fork(k) — identical
//    to SweepRunner's per-cell streams, never keyed on thread/schedule;
//  * a chunk ([first, first+chunk) participants) is folded SEQUENTIALLY
//    into a fresh aggregate by one worker;
//  * chunk aggregates merge into the global aggregate in ascending
//    chunk-index order, always. Floating-point merge maths doesn't
//    commute, so the fixed order — not just the formulas — is what
//    makes the merged result bit-identical at ANY thread count and at
//    ANY checkpoint boundary. Enforced by tests/fleet_test.cpp and by
//    exp_fleet_population on every run.
//
// The engine processes windows of `window_chunks` chunks: a window is
// parallel_for'd over the pool, merged in order, and the cursor
// advances to the window's end — a chunk-aligned cut point where the
// caller may checkpoint (serialise the global aggregate + cursor) or
// stop. Resuming from such a cut replays the identical fold/merge
// sequence, so full == stop+resume down to the serialised bytes.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include "sim/random.h"
#include "sim/thread_pool.h"
#include "study/sweep_runner.h"

namespace distscroll::study {

struct FleetConfig {
  std::uint64_t participants = 0;
  /// 0 resolves like SweepConfig::threads ($DISTSCROLL_THREADS / hw).
  std::size_t threads = 0;
  /// Participants folded per chunk — the merge granularity. Part of the
  /// result's identity: changing it changes merge order, so it is
  /// recorded in checkpoints and must match on resume.
  std::uint64_t chunk = 256;
  std::uint64_t base_seed = 0;
  /// Chunk aggregates in flight per window — the memory bound. NOT part
  /// of the result's identity (merge order is chunk order regardless),
  /// so it may differ between a run and its resume.
  std::size_t window_chunks = 32;
};

/// Agg requirements: default-constructible, clear() (reset keeping
/// capacity), merge(const Agg&).
template <typename Agg>
class FleetEngine {
 public:
  explicit FleetEngine(const FleetConfig& config)
      : config_(config), root_(config.base_seed),
        threads_(resolve_sweep_threads(config.threads)) {
    if (config_.chunk == 0) config_.chunk = 1;
    if (config_.window_chunks == 0) config_.window_chunks = 1;
    if (threads_ > 1) pool_.emplace(threads_);
    slots_.resize(config_.window_chunks);
  }

  [[nodiscard]] const FleetConfig& config() const { return config_; }
  [[nodiscard]] std::size_t threads() const { return threads_; }

  /// Participant k's private stream (same derivation as
  /// SweepRunner::cell_rng).
  [[nodiscard]] sim::Rng participant_rng(std::uint64_t index) const {
    return root_.fork(index);
  }

  /// Fold participants [cursor, min(stop_after, participants)) into
  /// `global`, advancing `cursor` window by window.
  ///
  /// ChunkBody: void(uint64 first, uint64 count, Agg& out,
  ///                 const FleetEngine& engine)
  ///   — must fold participants [first, first+count) sequentially into
  ///   `out`, drawing only from engine.participant_rng(i).
  /// WindowHook: void(const Agg& global, uint64 cursor) — called after
  ///   each merged window at a chunk-aligned cursor (checkpoint point).
  ///
  /// `cursor` must be a value previously produced by run() or 0 —
  /// chunk-aligned, except that a finished run's cursor is
  /// `participants` (possibly mid-chunk), which resumes as a no-op;
  /// `stop_after` is rounded UP to the next chunk boundary so
  /// interruption never splits a chunk's fold.
  template <typename ChunkBody, typename WindowHook>
  void run(Agg& global, std::uint64_t& cursor, std::uint64_t stop_after, ChunkBody&& body,
           WindowHook&& window_hook) {
    const std::uint64_t chunk = config_.chunk;
    const std::uint64_t total_chunks = (config_.participants + chunk - 1) / chunk;
    // Ceiling, not floor: a COMPLETE run's cursor == participants, which
    // is not chunk-aligned when participants % chunk != 0. Flooring would
    // re-fold the final partial chunk into the already-complete aggregate
    // on a no-op resume (silent double-count).
    std::uint64_t next_chunk = (cursor + chunk - 1) / chunk;
    const std::uint64_t stop_chunk =
        std::min(total_chunks, stop_after >= config_.participants
                                   ? total_chunks
                                   : (stop_after + chunk - 1) / chunk);
    while (next_chunk < stop_chunk) {
      const std::uint64_t window =
          std::min<std::uint64_t>(config_.window_chunks, stop_chunk - next_chunk);
      auto run_chunk = [&](std::size_t i) {
        const std::uint64_t chunk_index = next_chunk + i;
        const std::uint64_t first = chunk_index * chunk;
        const std::uint64_t count = std::min(chunk, config_.participants - first);
        slots_[i].clear();
        body(first, count, slots_[i], *this);
      };
      if (pool_) {
        pool_->parallel_for(static_cast<std::size_t>(window), run_chunk);
      } else {
        for (std::size_t i = 0; i < window; ++i) run_chunk(i);
      }
      // The fixed-order merge: ascending chunk index, every run.
      for (std::size_t i = 0; i < window; ++i) global.merge(slots_[i]);
      next_chunk += window;
      cursor = std::min(next_chunk * chunk, config_.participants);
      window_hook(global, cursor);
    }
  }

  /// run() without a window hook.
  template <typename ChunkBody>
  void run(Agg& global, std::uint64_t& cursor, std::uint64_t stop_after, ChunkBody&& body) {
    run(global, cursor, stop_after, body, [](const Agg&, std::uint64_t) {});
  }

 private:
  FleetConfig config_;
  sim::Rng root_;
  std::size_t threads_;
  std::optional<sim::ThreadPool> pool_;
  std::vector<Agg> slots_;  // the bounded in-flight window
};

}  // namespace distscroll::study
