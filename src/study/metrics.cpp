#include "study/metrics.h"

#include "util/stats.h"

namespace distscroll::study {

Aggregate aggregate(std::span<const TrialRecord> records) {
  Aggregate agg;
  agg.trials = records.size();
  if (records.empty()) return agg;

  std::vector<double> times;
  double successes = 0, errors = 0, overshoots = 0, corrections = 0, throughput = 0;
  for (const auto& r : records) {
    if (r.outcome.success) {
      successes += 1;
      times.push_back(r.outcome.time_s);
      if (r.outcome.time_s > 0.0) {
        throughput += r.outcome.id_bits / r.outcome.time_s;
      }
    }
    errors += r.outcome.wrong_selections;
    overshoots += r.outcome.overshoots;
    corrections += r.outcome.corrective_movements;
  }
  const auto n = static_cast<double>(records.size());
  agg.success_rate = successes / n;
  agg.error_rate = errors / n;
  agg.mean_overshoots = overshoots / n;
  agg.mean_corrections = corrections / n;
  if (!times.empty()) {
    const util::Summary s = util::summarize(times);
    agg.mean_time_s = s.mean;
    agg.stddev_time_s = s.stddev;
    agg.p95_time_s = util::percentile(times, 0.95);
    agg.throughput_bits_s = throughput / successes;
  }
  return agg;
}

}  // namespace distscroll::study
