// Single-trial execution over the abstract-technique interface.
#pragma once

#include "baselines/scroll_technique.h"
#include "human/motion_planner.h"
#include "study/metrics.h"
#include "study/task.h"

namespace distscroll::study {

/// Run one selection task with one participant on one technique.
[[nodiscard]] TrialRecord run_trial(baselines::ScrollTechnique& technique,
                                    const SelectionTask& task,
                                    const human::UserProfile& profile, sim::Rng rng,
                                    human::MotionPlanner::Config planner_config = {});

/// Run a batch of tasks, reusing the technique.
[[nodiscard]] std::vector<TrialRecord> run_trials(baselines::ScrollTechnique& technique,
                                                  std::span<const SelectionTask> tasks,
                                                  const human::UserProfile& profile, sim::Rng rng,
                                                  human::MotionPlanner::Config planner_config = {});

}  // namespace distscroll::study
