#include "study/batch_trials.h"

#include <algorithm>
#include <cmath>

#include "human/fitts.h"
#include "human/hand_model.h"
#include "obs/stage_timer.h"

namespace distscroll::study {

namespace {

/// Counts sign changes of (cursor - target) — replica of the planner's
/// file-local OvershootCounter, observing the same cursor sequence the
/// scalar loop sees (kernel cursors_out is the cursor after each dt
/// step).
class OvershootCounter {
 public:
  explicit OvershootCounter(long target) : target_(target) {}

  void observe(long cursor) {
    const int sign = cursor > target_ ? 1 : (cursor < target_ ? -1 : 0);
    if (sign != 0 && last_sign_ != 0 && sign != last_sign_) ++count_;
    if (sign != 0) last_sign_ = sign;
  }

  [[nodiscard]] int count() const { return count_; }

 private:
  long target_;
  int last_sign_ = 0;
  int count_ = 0;
};

}  // namespace

BatchTrialRunner& BatchTrialRunner::local() {
  thread_local BatchTrialRunner runner;
  return runner;
}

void BatchTrialRunner::begin_group(std::size_t lanes) {
  kernel_.begin_group(lanes);
  cells_.resize(lanes);
  for (Cell& cell : cells_) {
    cell.active = false;
    cell.tasks.clear();    // keeps capacity
    cell.records.clear();  // keeps capacity
  }
}

void BatchTrialRunner::init_cell(std::size_t lane,
                                 const baselines::DistanceScroll::Config& config,
                                 sim::Rng technique_rng, std::span<const SelectionTask> tasks,
                                 const human::UserProfile& profile, sim::Rng trials_rng,
                                 human::MotionPlanner::Config planner) {
  kernel_.init_lane(lane, config, technique_rng);
  Cell& cell = cells_[lane];
  cell.active = true;
  cell.tasks.assign(tasks.begin(), tasks.end());
  cell.profile = profile;
  cell.trials_rng = trials_rng;
  cell.planner = planner;
  cell.records.clear();
  cell.records.reserve(tasks.size());
}

void BatchTrialRunner::run() {
  std::size_t max_trials = 0;
  for (const Cell& cell : cells_) {
    if (cell.active) max_trials = std::max(max_trials, cell.tasks.size());
  }
  // Lockstep at trial granularity: trial t of every lane before trial
  // t+1 of any — the lanes' session state stays resident in the kernel
  // across rounds, which is what the state-isolation tests exercise.
  for (std::size_t t = 0; t < max_trials; ++t) {
    for (std::size_t lane = 0; lane < cells_.size(); ++lane) {
      Cell& cell = cells_[lane];
      if (!cell.active || t >= cell.tasks.size()) continue;
      // run_trials forks the trial planner stream off the trial index.
      cell.records.push_back(run_one_trial(lane, cell, cell.tasks[t], cell.trials_rng.fork(t)));
    }
  }
}

TrialRecord BatchTrialRunner::run_one_trial(std::size_t lane, const Cell& cell,
                                            const SelectionTask& task, sim::Rng rng) {
  {
    DS_STAGE(TrialSetup);  // lane reset, as the scalar technique.reset()
    kernel_.reset_lane(lane, task.level_size, task.start_index);
  }
  TrialRecord record;
  // MotionPlanner::acquire: start cursor before the run, ID bits after.
  const long start = static_cast<long>(kernel_.cursor(lane));
  record.outcome = acquire_absolute(lane, task.target_index, cell.profile, rng, cell.planner);
  record.outcome.id_bits =
      std::log2(std::abs(start - static_cast<long>(task.target_index)) + 1.0);
  record.level_size = task.level_size;
  record.scroll_distance = task.target_index > task.start_index
                               ? task.target_index - task.start_index
                               : task.start_index - task.target_index;
  return record;
}

void BatchTrialRunner::run_staged_block(std::size_t lane) {
  cursors_.resize(times_.size());
  kernel_.run_block(lane, times_, us_, cursors_);
}

human::AcquisitionOutcome BatchTrialRunner::acquire_absolute(
    std::size_t lane, std::size_t target, const human::UserProfile& p, sim::Rng& rng,
    const human::MotionPlanner::Config& cfg) {
  human::AcquisitionOutcome outcome;
  const auto spec = kernel_.spec(lane);
  const auto maybe_target_u = kernel_.target_u(lane, target);
  if (!maybe_target_u) return outcome;
  const double goal_u = *maybe_target_u;
  const double width_u = kernel_.target_width_u(lane, target);

  human::Tremor tremor(p.tremor, rng.fork(1));
  OvershootCounter overshoots(static_cast<long>(target));
  double u = spec.u_neutral;
  double now = 0.0;
  bool first_move = true;

  while (now < cfg.timeout_s) {
    const double amplitude = std::abs(goal_u - u);
    const double sigma = p.aim_w0_cm + p.aim_w1 * amplitude;
    double aim = goal_u + rng.gaussian(0.0, sigma);
    aim = std::clamp(aim, spec.u_min, spec.u_max);
    const util::Seconds reach_time = human::movement_time(p.reach_fitts, amplitude, width_u);

    if (!first_move) ++outcome.corrective_movements;
    first_move = false;

    // Reach: stage the dense control feed, then one kernel block. The
    // time/value sequences are built with the scalar loop's exact FP
    // accumulation (now += dt inside the same-shaped while).
    const double t0 = now;
    const double u0 = u;
    times_.clear();
    us_.clear();
    while (now < t0 + reach_time.value) {
      const double reach_u = human::min_jerk(u0, aim, now - t0, reach_time.value);
      times_.push_back(now);
      us_.push_back(reach_u + tremor.displacement_cm(now));
      now += cfg.dt_s;
    }
    run_staged_block(lane);
    for (const std::uint32_t cursor : cursors_) {
      overshoots.observe(static_cast<long>(cursor));
    }
    u = aim;

    // Settle & perceive: hold, then check after the reaction time.
    const double dwell = p.reaction_time_s + cfg.settle_dwell_s;
    const double s0 = now;
    times_.clear();
    us_.clear();
    while (now < s0 + dwell) {
      times_.push_back(now);
      us_.push_back(u + tremor.displacement_cm(now));
      now += cfg.dt_s;
    }
    run_staged_block(lane);
    for (const std::uint32_t cursor : cursors_) {
      overshoots.observe(static_cast<long>(cursor));
    }

    if (kernel_.cursor(lane) == target) {
      now += p.verification_time_s;
      outcome.time_s = now;
      if (commit(lane, target, p, rng, cfg, u, outcome)) {
        outcome.success = true;
        outcome.overshoots = overshoots.count();
        return outcome;
      }
      now = outcome.time_s;
      continue;  // slipped or drifted: re-settle and retry
    }
  }
  outcome.time_s = now;
  outcome.overshoots = overshoots.count();
  return outcome;
}

bool BatchTrialRunner::commit(std::size_t lane, std::size_t target, const human::UserProfile& p,
                              sim::Rng& rng, const human::MotionPlanner::Config& cfg,
                              double hold_u, human::AcquisitionOutcome& outcome) {
  // effective_fine_penalty / effective_miss_probability with
  // DistScroll's glove sensitivity (pinned equal to the virtual call).
  const double penalty =
      1.0 + (p.fine_motor_penalty - 1.0) * BatchSessionKernel::kGloveSensitivity;
  const double press_time = p.button_press_s * penalty;
  if (rng.bernoulli(std::min(0.7, p.button_miss_probability *
                                      BatchSessionKernel::kGloveSensitivity))) {
    outcome.time_s += press_time * 1.5;  // failed press + noticing
    return false;
  }
  // Holding the channel steady during the press, fed as one block.
  human::Tremor tremor(p.tremor, rng.fork(777));
  const double t0 = outcome.time_s;
  times_.clear();
  us_.clear();
  for (double dt = 0.0; dt < press_time; dt += cfg.dt_s) {
    times_.push_back(t0 + dt);
    us_.push_back(hold_u + tremor.displacement_cm(t0 + dt));
  }
  run_staged_block(lane);
  outcome.time_s += press_time;
  if (kernel_.cursor(lane) != target) {
    ++outcome.wrong_selections;
    return false;
  }
  return true;
}

}  // namespace distscroll::study
