#include "study/sweep_runner.h"

#include <chrono>
#include <cstdlib>
#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace distscroll::study {

std::size_t resolve_sweep_threads(std::size_t requested) {
  if (requested != 0) return requested;
  if (const char* env = std::getenv("DISTSCROLL_THREADS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed >= 1) return static_cast<std::size_t>(parsed);
  }
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware > 0 ? hardware : 1;
}

double sweep_wall_clock_s() {
  // ds-lint: allow(no-wallclock) the BENCH json wall metric: measures the host, never feeds sim state
  const auto now = std::chrono::steady_clock::now().time_since_epoch();
  return std::chrono::duration<double>(now).count();
}

std::size_t sweep_peak_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage {};
  // ds-lint: allow(no-wallclock) BENCH json memory metric: reads the host, never feeds sim state
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::size_t>(usage.ru_maxrss);  // bytes on Darwin
#else
  return static_cast<std::size_t>(usage.ru_maxrss) * 1024u;  // KiB on Linux
#endif
#else
  return 0;
#endif
}

}  // namespace distscroll::study
