// Batched DistScroll session kernel (ROADMAP item 2).
//
// Advances N device sessions — lanes — through the full sensing chain
// in lockstep: distance samples through the Gp2d120 transfer curve with
// gaussian noise, ADC quantisation with gaussian LSB noise, the
// 1024-entry island LUT, and the scroll-controller FSM. State is laid
// out SoA along the sample axis: run_block() takes a whole control
// phase's (time, distance) arrays, derives the firmware-tick and
// sample-and-hold schedules up front (both are pure functions of the
// time grid), pre-draws every noise value the block will consume with
// ONE batched RNG fill per stream, and then sweeps the numeric stages
// array-at-a-time instead of re-entering the scalar virtual-call chain
// per control step.
//
// The scalar path (baselines::DistanceScroll driven sample-by-sample by
// human::MotionPlanner) stays the reference implementation. The kernel
// is pinned BIT-IDENTICAL to it over the full sweep-config suite by
// tests/batch_test.cpp, the same way pooled == fresh sessions were
// pinned in the device-pool PR. Two contracts make that possible:
//
//  * every FP expression mirrors the scalar code shape exactly (same
//    operations, same order; the build compiles ISO C++ with FP
//    contraction off, so identical op sequences give identical bits);
//  * all pre-drawn noise goes through sim::Rng::fill_gaussian, whose
//    engine consumption is defined to equal N sequential gaussian()
//    calls — including the cached Box–Muller spare — so hoisting the
//    draws out of the per-sample loop cannot shift any stream (see the
//    draw-order contract note in random.h and DESIGN.md §11).
//
// Lanes are independent sessions: each keeps its own technique RNG,
// sensor RNG, sample-and-hold state and controller FSM, exactly as N
// separate DistanceScroll objects would. Island tables are pure
// functions of (curve, entries, island config), so lanes share them
// through a cache instead of rebuilding per lane.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "baselines/distance_scroll.h"
#include "core/island_mapper.h"
#include "core/scroll_controller.h"
#include "input/debouncer.h"
#include "sensors/gp2d120.h"
#include "sim/random.h"

namespace distscroll::study {

class BatchSessionKernel {
 public:
  /// DistanceScroll::glove_sensitivity() — the batched trial driver
  /// needs it without a technique object; pinned equal by batch_test.
  static constexpr double kGloveSensitivity = 0.15;

  /// Drop all lanes and start a fresh group of `lanes` sessions. The
  /// island-table cache persists (tables are pure functions of their
  /// key); lane slots and scratch keep their capacity, so a warmed
  /// kernel re-groups without allocating.
  void begin_group(std::size_t lanes);

  [[nodiscard]] std::size_t lanes() const { return lanes_.size(); }

  /// Lane <- a fresh session, mirroring DistanceScroll(config, rng):
  /// the sensor stream forks off tag 1, the ADC stream is the technique
  /// RNG itself, and the session starts reset to a 1-entry level.
  void init_lane(std::size_t lane, const baselines::DistanceScroll::Config& config,
                 sim::Rng technique_rng);

  /// Mirror of DistanceScroll::reset(level_size, start_index): clears
  /// the sample-and-hold and firmware-tick clocks (NOT the RNG streams),
  /// rebinds the island table for the level, reinitialises the
  /// controller FSM, places the cursor.
  void reset_lane(std::size_t lane, std::size_t level_size, std::size_t start_index);

  // --- scalar-interface mirrors the trial driver needs -------------------
  [[nodiscard]] std::size_t cursor(std::size_t lane) const { return lanes_[lane].cursor; }
  [[nodiscard]] std::size_t level_size(std::size_t lane) const { return lanes_[lane].level_size; }
  [[nodiscard]] baselines::ControlSpec spec(std::size_t lane) const;
  [[nodiscard]] std::optional<double> target_u(std::size_t lane, std::size_t target) const;
  [[nodiscard]] double target_width_u(std::size_t lane, std::size_t target) const;

  /// Advance one lane over a block of control samples: now_s/u are the
  /// dense planner feed (one entry per dt step), cursors_out[k] receives
  /// the lane's cursor AFTER sample k (what the planner's overshoot
  /// observer reads). All three spans must have equal length.
  /// Allocation-free once scratch is warm (DS_ASSERT_NO_ALLOC-pinned).
  void run_block(std::size_t lane, std::span<const double> now_s, std::span<const double> u,
                 std::span<std::uint32_t> cursors_out);

 private:
  struct Lane {
    baselines::DistanceScroll::Config config;
    sensors::SurfaceProfile surface;  // always the default, as in the scalar ctor
    sim::Rng adc_rng{0};              // the technique's own stream (ADC noise)
    sim::Rng sensor_rng{0};           // technique_rng.fork(1), as the ranger gets
    std::optional<sensors::Gp2d120Model> model;  // transfer curve only; draws no noise
    const core::IslandMapper* mapper = nullptr;
    std::optional<core::ScrollController> controller;
    // Sample-and-hold + firmware-tick state (the ranger's and
    // DistanceScroll's per-session clocks).
    double held_volts = 0.0;
    double next_measurement_s = 0.0;
    bool ever_measured = false;
    double next_tick_s = 0.0;
    std::size_t level_size = 1;
    std::size_t cursor = 0;
  };

  [[nodiscard]] std::size_t island_of_menu_index(const Lane& lane, std::size_t menu_index) const;
  const core::IslandMapper* cached_mapper(const baselines::DistanceScroll::Config& config,
                                          std::size_t entries);

  std::vector<Lane> lanes_;

  // Island-table cache, keyed on everything rebuild() reads. unique_ptr
  // slots: controllers hold the mapper by address, so entries must not
  // move when the cache grows.
  struct MapperEntry {
    core::SensorCurve::Params curve;
    core::IslandMapper::Config islands;
    std::size_t entries;
    std::unique_ptr<core::IslandMapper> mapper;
  };
  std::vector<MapperEntry> mappers_;

  // Block scratch, SoA along the sample axis; resized (allocation
  // allowed) before the DS_HOT region, reused across blocks.
  std::vector<std::uint32_t> tick_at_;     // sample index of each firmware tick
  std::vector<std::uint8_t> remeasured_;   // per tick: S&H remeasure fired
  std::vector<double> sensor_noise_;       // per remeasure, pre-drawn
  std::vector<double> adc_noise_;          // per tick, pre-drawn
  std::vector<std::uint16_t> sampled_;     // per tick: quantised ADC counts
};

/// SoA debounce FSM: N firmware button channels advanced in lockstep,
/// one tick column per call. Bit-identical to N scalar input::Debouncer
/// instances fed the same per-channel sample streams (pinned by
/// batch_test) — the batched counterpart for device-fleet inputs, where
/// every session carries a select button. (The study trial path models
/// the select press as time cost, so the kernel above has no button
/// stream to feed this; the device fleet does.)
class BatchDebouncer {
 public:
  explicit BatchDebouncer(std::size_t channels, input::Debouncer::Config config = {})
      : config_(config), stable_low_(channels, 0), counter_(channels, 0) {}

  [[nodiscard]] std::size_t channels() const { return stable_low_.size(); }
  [[nodiscard]] bool pressed(std::size_t channel) const { return stable_low_[channel] != 0; }

  /// Feed one raw sample per channel (one firmware tick across the
  /// fleet). edges_out[c]: +1 debounced press edge, -1 release edge,
  /// 0 no edge — the batched equivalent of the scalar callbacks.
  void tick(std::span<const hw::PinLevel> raw, std::span<std::int8_t> edges_out) {
    for (std::size_t c = 0; c < stable_low_.size(); ++c) {
      const bool low = raw[c] == hw::PinLevel::Low;
      std::int8_t edge = 0;
      if (low == (stable_low_[c] != 0)) {
        counter_[c] = 0;
      } else if (++counter_[c] >= config_.stable_ticks) {
        stable_low_[c] = low ? 1 : 0;
        counter_[c] = 0;
        edge = low ? 1 : -1;
      }
      edges_out[c] = edge;
    }
  }

 private:
  input::Debouncer::Config config_;
  std::vector<std::uint8_t> stable_low_;  // 1 = debounced Low (pressed)
  std::vector<int> counter_;
};

}  // namespace distscroll::study
