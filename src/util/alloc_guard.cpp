#include "util/alloc_guard.h"

#include <cstdio>
#include <cstdlib>
#include <new>

// Sanitizer builds bring their own allocator interceptors; interposing
// underneath them fights over the same symbols. Compile the interposer
// out there — alloc_interposer_linked() reports the truth either way.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define DS_ALLOC_INTERPOSER 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
#define DS_ALLOC_INTERPOSER 0
#else
#define DS_ALLOC_INTERPOSER 1
#endif
#else
#define DS_ALLOC_INTERPOSER 1
#endif

namespace distscroll::util {
namespace {

// Plain thread-local PODs: zero-initialised at thread start, no dynamic
// init, so counting is safe from the very first allocation (including
// ones made during static initialisation of other TUs).
thread_local std::uint64_t t_allocations = 0;
thread_local std::uint64_t t_deallocations = 0;
thread_local std::uint64_t t_bytes = 0;

}  // namespace

AllocCounters alloc_counters() noexcept {
  return AllocCounters{t_allocations, t_deallocations, t_bytes};
}

bool alloc_interposer_linked() noexcept { return DS_ALLOC_INTERPOSER != 0; }

void AllocGuard::check_and_disarm() noexcept {
  armed_ = false;
  if (!alloc_interposer_linked()) {
    // Sanitizer build: the interposer is compiled out and this scope
    // measured nothing. Warn once so vacuous guards are visible.
    static bool warned = false;
    if (!warned) {
      warned = true;
      std::fprintf(stderr,
                   "warning: DS_ASSERT_NO_ALLOC at %s:%d is vacuous: the allocation "
                   "interposer is compiled out in this build (sanitizer); guard scopes "
                   "measure nothing\n",
                   file_ != nullptr ? file_ : "<unknown>", line_);
    }
    return;
  }
  const std::uint64_t n = allocations();
  if (n == 0) return;
  std::fprintf(stderr,
               "DS_ASSERT_NO_ALLOC violated at %s:%d: %llu allocation(s), %llu byte(s) "
               "inside a no-alloc scope\n",
               file_ != nullptr ? file_ : "<unknown>", line_,
               static_cast<unsigned long long>(n),
               static_cast<unsigned long long>(bytes()));
  std::abort();
}

}  // namespace distscroll::util

#if DS_ALLOC_INTERPOSER

namespace {

inline void* ds_alloc(std::size_t size) {
  ++distscroll::util::t_allocations;
  distscroll::util::t_bytes += size;
  return std::malloc(size != 0 ? size : 1);
}

inline void* ds_alloc_aligned(std::size_t size, std::size_t alignment) {
  ++distscroll::util::t_allocations;
  distscroll::util::t_bytes += size;
  if (alignment < sizeof(void*)) alignment = sizeof(void*);
  void* p = nullptr;
  if (posix_memalign(&p, alignment, size != 0 ? size : 1) != 0) return nullptr;
  return p;
}

inline void ds_free(void* p) noexcept {
  if (p != nullptr) ++distscroll::util::t_deallocations;
  std::free(p);
}

}  // namespace

// Replaceable global allocation functions ([new.delete]): count, then
// forward to malloc/free. posix_memalign serves the aligned forms so
// every pointer is free()-compatible.
void* operator new(std::size_t size) {
  void* p = ds_alloc(size);
  if (p == nullptr) throw std::bad_alloc{};
  return p;
}
void* operator new[](std::size_t size) {
  void* p = ds_alloc(size);
  if (p == nullptr) throw std::bad_alloc{};
  return p;
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept { return ds_alloc(size); }
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept { return ds_alloc(size); }

void* operator new(std::size_t size, std::align_val_t alignment) {
  void* p = ds_alloc_aligned(size, static_cast<std::size_t>(alignment));
  if (p == nullptr) throw std::bad_alloc{};
  return p;
}
void* operator new[](std::size_t size, std::align_val_t alignment) {
  void* p = ds_alloc_aligned(size, static_cast<std::size_t>(alignment));
  if (p == nullptr) throw std::bad_alloc{};
  return p;
}
void* operator new(std::size_t size, std::align_val_t alignment, const std::nothrow_t&) noexcept {
  return ds_alloc_aligned(size, static_cast<std::size_t>(alignment));
}
void* operator new[](std::size_t size, std::align_val_t alignment,
                     const std::nothrow_t&) noexcept {
  return ds_alloc_aligned(size, static_cast<std::size_t>(alignment));
}

void operator delete(void* p) noexcept { ds_free(p); }
void operator delete[](void* p) noexcept { ds_free(p); }
void operator delete(void* p, std::size_t) noexcept { ds_free(p); }
void operator delete[](void* p, std::size_t) noexcept { ds_free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { ds_free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { ds_free(p); }
void operator delete(void* p, std::align_val_t) noexcept { ds_free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { ds_free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { ds_free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { ds_free(p); }
void operator delete(void* p, std::align_val_t, const std::nothrow_t&) noexcept { ds_free(p); }
void operator delete[](void* p, std::align_val_t, const std::nothrow_t&) noexcept { ds_free(p); }

#endif  // DS_ALLOC_INTERPOSER
