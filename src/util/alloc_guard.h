// AllocGuard: runtime enforcement of the "zero steady-state allocation"
// claims (the dynamic half of the DS_HOT contract in hot_path.h).
//
// ds_allocguard interposes the global operator new/delete family with
// thin wrappers that bump thread-local counters and forward to malloc/
// free. The interposition is link-time and passive: with no guard scope
// in flight the cost is two thread-local increments per allocation —
// BM_AllocGuardOverhead pins that at nanoseconds — and binaries that
// never reference AllocGuard don't pull the interposer in at all (it
// lives in the same object file, so the linker drags it in exactly when
// a guard is used).
//
// Usage, the hard-assert form (works in tests and benches alike):
//
//   DS_ASSERT_NO_ALLOC {
//     queue.run_until(t + 1.0);   // any allocation aborts with file:line
//   }
//
// and the inspectable form for EXPECT-style tests:
//
//   util::AllocGuard guard;
//   tracer.record_at(...);
//   EXPECT_EQ(guard.allocations(), 0u);
//
// Counters are thread-local, so a guard only sees its own thread — a
// parallel sweep's other workers can allocate freely without tripping
// it, which is exactly the per-thread session-kernel claim.
//
// Sanitizer builds (ASan/TSan) ship their own allocator interceptors;
// interposing underneath them would fight over the same symbols, so the
// interposer compiles out there and interposer_linked() reports false —
// guard-based tests skip instead of silently passing.
#pragma once

#include <cstdint>

namespace distscroll::util {

/// This thread's allocation counters since thread start (monotone).
struct AllocCounters {
  std::uint64_t allocations = 0;
  std::uint64_t deallocations = 0;
  std::uint64_t bytes = 0;
};

/// Snapshot of the calling thread's counters.
[[nodiscard]] AllocCounters alloc_counters() noexcept;

/// True when the operator new/delete interposer is actually in this
/// binary (linked, and not compiled out for a sanitizer build). Tests
/// must check this: without the interposer a guard trivially sees zero.
[[nodiscard]] bool alloc_interposer_linked() noexcept;

/// RAII window over the thread's allocation counters.
class AllocGuard {
 public:
  AllocGuard() noexcept : AllocGuard(nullptr, 0) {}
  AllocGuard(const char* file, int line) noexcept
      : start_(alloc_counters()), file_(file), line_(line) {}

  AllocGuard(const AllocGuard&) = delete;
  AllocGuard& operator=(const AllocGuard&) = delete;

  /// Allocations on this thread since construction.
  [[nodiscard]] std::uint64_t allocations() const noexcept {
    return alloc_counters().allocations - start_.allocations;
  }
  [[nodiscard]] std::uint64_t deallocations() const noexcept {
    return alloc_counters().deallocations - start_.deallocations;
  }
  [[nodiscard]] std::uint64_t bytes() const noexcept {
    return alloc_counters().bytes - start_.bytes;
  }

  // --- DS_ASSERT_NO_ALLOC plumbing (for-scope idiom) ---------------------
  [[nodiscard]] bool armed() const noexcept { return armed_; }
  /// Abort with a file:line diagnostic if the scope allocated. Called
  /// once by the DS_ASSERT_NO_ALLOC for-idiom after its body runs.
  void check_and_disarm() noexcept;

 private:
  AllocCounters start_;
  const char* file_;
  int line_;
  bool armed_ = true;
};

}  // namespace distscroll::util

/// Hard-assert scope: the body runs exactly once; any heap allocation on
/// this thread inside it aborts the process with a file:line diagnostic.
/// Requires the interposer: when it is compiled out (sanitizer builds)
/// the scope measures nothing, so the check is vacuous — a one-time
/// stderr warning flags that, and tests that must not silently pass
/// should gate on alloc_interposer_linked() and skip instead.
#define DS_ASSERT_NO_ALLOC                                                          \
  for (::distscroll::util::AllocGuard ds_alloc_guard_{__FILE__, __LINE__};          \
       ds_alloc_guard_.armed(); ds_alloc_guard_.check_and_disarm())
