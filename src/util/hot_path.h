// DS_HOT region markers: the static half of the no-allocation contract.
//
// Bracketing code with DS_HOT_BEGIN / DS_HOT_END declares "this region
// is steady-state allocation-free". The markers expand to nothing — they
// cost zero at runtime — but tools/ds_lint scans the bracketed region
// for lexical allocation markers (new, make_unique, container growth
// calls) and fails the build on a hit — both inside the region and, via
// the cross-TU reachability pass, in everything the region's call graph
// reaches. Amortised-growth lines that are provably warm-path-free
// (recycled capacity) carry an allow(no-alloc-markers) suppression
// comment with the reason.
//
// The runtime half is util::AllocGuard (alloc_guard.h): tests wrap the
// same regions in DS_ASSERT_NO_ALLOC scopes, so the claim is pinned both
// at the source level (every build) and empirically (ctest).
#pragma once

#define DS_HOT_BEGIN
#define DS_HOT_END
