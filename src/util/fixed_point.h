// Q8.8 fixed-point arithmetic.
//
// The DistScroll firmware runs (in spirit) on a PIC 18F452 without an
// FPU; the original C firmware would have used integer math for the
// island lookup and smoothing. We model that faithfully: everything the
// simulated firmware computes per sample goes through Q8.8, so the
// cycle-cost accounting in hw::Mcu reflects integer-only work.
#pragma once

#include <cstdint>
#include <compare>

namespace distscroll::util {

/// Signed Q8.8: 8 integer bits, 8 fractional bits, range about
/// [-128, 127.996].
class Q8_8 {
 public:
  constexpr Q8_8() = default;

  static constexpr Q8_8 from_raw(std::int16_t raw) {
    Q8_8 q;
    q.raw_ = raw;
    return q;
  }

  static constexpr Q8_8 from_int(int v) { return from_raw(static_cast<std::int16_t>(v << 8)); }

  static constexpr Q8_8 from_double(double v) {
    return from_raw(static_cast<std::int16_t>(v * 256.0 + (v >= 0 ? 0.5 : -0.5)));
  }

  [[nodiscard]] constexpr std::int16_t raw() const { return raw_; }
  [[nodiscard]] constexpr double to_double() const { return static_cast<double>(raw_) / 256.0; }
  /// Truncation toward negative infinity, like an arithmetic shift.
  [[nodiscard]] constexpr int to_int() const { return raw_ >> 8; }

  constexpr auto operator<=>(const Q8_8&) const = default;

  constexpr Q8_8 operator+(Q8_8 o) const {
    return from_raw(static_cast<std::int16_t>(raw_ + o.raw_));
  }
  constexpr Q8_8 operator-(Q8_8 o) const {
    return from_raw(static_cast<std::int16_t>(raw_ - o.raw_));
  }
  constexpr Q8_8 operator*(Q8_8 o) const {
    // 16x16 -> 32-bit multiply, then shift: the classic fixed-point
    // pattern an 8-bit PIC would emulate with its 8x8 hardware multiplier.
    auto wide = static_cast<std::int32_t>(raw_) * static_cast<std::int32_t>(o.raw_);
    return from_raw(static_cast<std::int16_t>(wide >> 8));
  }
  constexpr Q8_8 operator/(Q8_8 o) const {
    auto wide = (static_cast<std::int32_t>(raw_) << 8) / static_cast<std::int32_t>(o.raw_);
    return from_raw(static_cast<std::int16_t>(wide));
  }

 private:
  std::int16_t raw_ = 0;
};

}  // namespace distscroll::util
