// ASCII scatter/line plotting for the bench binaries.
//
// The paper's Figures 4 and 5 show measured points (asterisks) with a
// fitted curve; the bench binaries render the same picture on the
// terminal. Points are plotted as '*', the fitted curve as '-', and
// overlapping cells as '#'.
#pragma once

#include <span>
#include <string>

namespace distscroll::util {

struct PlotOptions {
  int width = 72;     // character columns of the plot area
  int height = 20;    // character rows of the plot area
  bool log_x = false; // logarithmic x axis (Fig. 5)
  bool log_y = false;
  std::string x_label;
  std::string y_label;
  std::string title;
};

/// Renders a scatter of (xs, ys) plus an optional fitted series
/// (fit_xs, fit_ys) as a multi-line string. Series may be empty.
[[nodiscard]] std::string ascii_plot(std::span<const double> xs, std::span<const double> ys,
                                     std::span<const double> fit_xs,
                                     std::span<const double> fit_ys, const PlotOptions& options);

}  // namespace distscroll::util
