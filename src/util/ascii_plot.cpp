#include "util/ascii_plot.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <vector>

namespace distscroll::util {

namespace {

struct Range {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();

  void include(double v) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  [[nodiscard]] bool valid() const { return lo <= hi; }
};

double transform(double v, bool log_scale) { return log_scale ? std::log10(v) : v; }

}  // namespace

std::string ascii_plot(std::span<const double> xs, std::span<const double> ys,
                       std::span<const double> fit_xs, std::span<const double> fit_ys,
                       const PlotOptions& options) {
  const int w = std::max(10, options.width);
  const int h = std::max(5, options.height);

  Range rx, ry;
  auto include_series = [&](std::span<const double> sx, std::span<const double> sy) {
    for (std::size_t i = 0; i < sx.size(); ++i) {
      if (options.log_x && sx[i] <= 0) continue;
      if (options.log_y && sy[i] <= 0) continue;
      rx.include(transform(sx[i], options.log_x));
      ry.include(transform(sy[i], options.log_y));
    }
  };
  include_series(xs, ys);
  include_series(fit_xs, fit_ys);
  if (!rx.valid() || !ry.valid()) return "(no data)\n";
  if (rx.hi == rx.lo) rx.hi = rx.lo + 1.0;
  if (ry.hi == ry.lo) ry.hi = ry.lo + 1.0;

  std::vector<std::string> grid(static_cast<std::size_t>(h), std::string(static_cast<std::size_t>(w), ' '));

  auto plot_series = [&](std::span<const double> sx, std::span<const double> sy, char mark) {
    for (std::size_t i = 0; i < sx.size(); ++i) {
      if (options.log_x && sx[i] <= 0) continue;
      if (options.log_y && sy[i] <= 0) continue;
      const double tx = transform(sx[i], options.log_x);
      const double ty = transform(sy[i], options.log_y);
      const int col = static_cast<int>(std::lround((tx - rx.lo) / (rx.hi - rx.lo) * (w - 1)));
      const int row = static_cast<int>(std::lround((ty - ry.lo) / (ry.hi - ry.lo) * (h - 1)));
      const int r = h - 1 - row;  // top of grid = max y
      if (r < 0 || r >= h || col < 0 || col >= w) continue;
      char& cell = grid[static_cast<std::size_t>(r)][static_cast<std::size_t>(col)];
      cell = (cell == ' ' || cell == mark) ? mark : '#';
    }
  };
  plot_series(fit_xs, fit_ys, '-');
  plot_series(xs, ys, '*');

  std::string out;
  if (!options.title.empty()) out += options.title + "\n";
  char buf[64];
  auto fmt = [&](double v) {
    std::snprintf(buf, sizeof(buf), "%8.3f", v);
    return std::string(buf);
  };
  const double y_hi = options.log_y ? std::pow(10.0, ry.hi) : ry.hi;
  const double y_lo = options.log_y ? std::pow(10.0, ry.lo) : ry.lo;
  for (int r = 0; r < h; ++r) {
    if (r == 0) {
      out += fmt(y_hi);
    } else if (r == h - 1) {
      out += fmt(y_lo);
    } else {
      out += std::string(8, ' ');
    }
    out += " |" + grid[static_cast<std::size_t>(r)] + "\n";
  }
  out += std::string(9, ' ') + '+' + std::string(static_cast<std::size_t>(w), '-') + "\n";
  const double x_lo = options.log_x ? std::pow(10.0, rx.lo) : rx.lo;
  const double x_hi = options.log_x ? std::pow(10.0, rx.hi) : rx.hi;
  out += std::string(10, ' ') + fmt(x_lo) + std::string(static_cast<std::size_t>(std::max(1, w - 18)), ' ') +
         fmt(x_hi) + "\n";
  if (!options.x_label.empty() || !options.y_label.empty()) {
    out += "          x: " + options.x_label;
    if (!options.y_label.empty()) out += "   y: " + options.y_label;
    out += "\n";
  }
  return out;
}

}  // namespace distscroll::util
