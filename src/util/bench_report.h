// Perf-trajectory records for the experiment benches.
//
// Every bench converted to the parallel SweepRunner emits one
// BENCH_<name>.json next to its CSV: wall clock sequential vs parallel,
// the speedup, cell counts and thread counts. CI and later PRs diff
// these files to track the perf trajectory.
#pragma once

#include <cstddef>
#include <string>

namespace distscroll::util {

struct BenchReport {
  std::string name;              // experiment name, e.g. "exp_scroll_comparison"
  std::size_t cells = 0;         // sweep cells executed (per pass)
  std::size_t threads = 1;       // thread count of the parallel pass
  std::size_t hardware_threads = 1;
  double sequential_wall_s = 0.0;
  double parallel_wall_s = 0.0;
  double speedup = 1.0;          // sequential / parallel
  bool bit_identical = true;     // parallel results byte-equal to sequential
  bool tracing_compiled = true;  // DISTSCROLL_TRACING at build time
  // Batched (SoA session-kernel) pass, sequential like the reference.
  std::size_t batch_width = 0;   // lanes per group; 0 = no batched pass ran
  double batched_wall_s = 0.0;
  double batch_speedup = 1.0;    // sequential / batched
  bool batch_bit_identical = true;  // batched results byte-equal to sequential
  /// Peak resident set (getrusage ru_maxrss) at report time, bytes.
  /// Process-wide and monotone; 0 where the probe is unavailable.
  std::size_t peak_rss_bytes = 0;
  // Streaming fleet pass (study::run_fleet); the block is emitted only
  // when fleet_participants > 0, so sweep-only benches are unaffected.
  std::size_t fleet_participants = 0;
  double fleet_wall_s = 0.0;             // reference (1-thread) fleet pass
  double fleet_participants_per_s = 0.0;
  std::size_t fleet_threads = 0;         // resolved thread count of the parallel pass
  /// Merged aggregates byte-equal across every thread count exercised.
  bool fleet_bit_identical = true;
  /// Full run byte-equal to a forced checkpoint + resume split.
  bool fleet_resume_bit_identical = true;
  /// Peak-RSS ratio (full run / small-run baseline); ~1.0 proves
  /// O(aggregates) memory. 0 when the probe is unavailable.
  double fleet_rss_growth = 0.0;
  // Host ingest pass (host::run_host_ingest); the block is emitted only
  // when host_devices > 0, so other benches are unaffected.
  std::size_t host_devices = 0;
  double host_wall_s = 0.0;              // reference (1-thread) ingest pass
  double host_frames_per_s = 0.0;        // accepted frames / host_wall_s
  /// Fraction of offered reports shed under the overload pass.
  double host_drop_rate = 0.0;
  /// DSTL bytes + metrics JSON byte-equal across every thread count.
  bool host_bit_identical = true;
  /// Pre-rendered `"name": value` lines for the nested "metrics" object
  /// (obs::MetricsRegistry::to_json_fields(4); util cannot link obs).
  /// Empty = no metrics block emitted.
  std::string metrics_json;
};

/// Writes `BENCH_<report.name>.json` in the working directory.
/// Returns false when the file could not be opened.
bool write_bench_report(const BenchReport& report);

}  // namespace distscroll::util
