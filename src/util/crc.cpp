#include "util/crc.h"

namespace distscroll::util {

std::uint8_t crc8(std::span<const std::uint8_t> data) {
  std::uint8_t crc = 0x00;
  for (std::uint8_t byte : data) {
    crc ^= byte;
    for (int bit = 0; bit < 8; ++bit) {
      if (crc & 0x80u) {
        crc = static_cast<std::uint8_t>((crc << 1) ^ 0x31u);
      } else {
        crc = static_cast<std::uint8_t>(crc << 1);
      }
    }
  }
  return crc;
}

std::uint16_t crc16_ccitt(std::span<const std::uint8_t> data) {
  std::uint16_t crc = 0xFFFF;
  for (std::uint8_t byte : data) {
    crc ^= static_cast<std::uint16_t>(byte) << 8;
    for (int bit = 0; bit < 8; ++bit) {
      if (crc & 0x8000u) {
        crc = static_cast<std::uint16_t>((crc << 1) ^ 0x1021u);
      } else {
        crc = static_cast<std::uint16_t>(crc << 1);
      }
    }
  }
  return crc;
}

std::uint32_t crc32(std::span<const std::uint8_t> data) {
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::uint8_t byte : data) {
    crc ^= byte;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ (0xEDB88320u & (0u - (crc & 1u)));
    }
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace distscroll::util
