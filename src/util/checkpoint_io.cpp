#include "util/checkpoint_io.h"

#include <sys/stat.h>

#include <cerrno>
#include <cstdio>
#include <fstream>

#include "util/crc.h"

namespace distscroll::util {

const char* to_string(CheckpointStatus status) {
  switch (status) {
    case CheckpointStatus::Ok: return "ok";
    case CheckpointStatus::IoError: return "io error";
    case CheckpointStatus::BadMagic: return "bad magic (not a checkpoint of this type)";
    case CheckpointStatus::BadVersion: return "unsupported checkpoint version";
    case CheckpointStatus::Corrupt: return "corrupt checkpoint (truncated or CRC mismatch)";
    case CheckpointStatus::Mismatch: return "checkpoint belongs to a different run configuration";
    case CheckpointStatus::Missing: return "no checkpoint file";
  }
  return "unknown";
}

CheckpointStatus write_checkpoint_file(const std::string& path, std::uint32_t magic,
                                       std::uint32_t version,
                                       const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> frame;
  frame.reserve(payload.size() + 20);
  ByteWriter writer(frame);
  writer.u32(magic);
  writer.u32(version);
  writer.u64(payload.size());
  frame.insert(frame.end(), payload.begin(), payload.end());
  const std::uint32_t crc = crc32({frame.data(), frame.size()});
  writer.u32(crc);

  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return CheckpointStatus::IoError;
    out.write(reinterpret_cast<const char*>(frame.data()),
              static_cast<std::streamsize>(frame.size()));
    if (!out) return CheckpointStatus::IoError;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return CheckpointStatus::IoError;
  }
  return CheckpointStatus::Ok;
}

CheckpointStatus read_checkpoint_file(const std::string& path, std::uint32_t magic,
                                      std::uint32_t version,
                                      std::vector<std::uint8_t>& payload) {
  // Missing vs unreadable matters to callers: a resume may start fresh
  // on Missing, but must NOT silently restart over a file that exists
  // yet can't be read (permissions, transient FS error, wrong type).
  struct stat st{};
  if (::stat(path.c_str(), &st) != 0) {
    return errno == ENOENT ? CheckpointStatus::Missing : CheckpointStatus::IoError;
  }
  if (!S_ISREG(st.st_mode)) return CheckpointStatus::IoError;
  std::ifstream in(path, std::ios::binary);
  if (!in) return CheckpointStatus::IoError;
  std::vector<std::uint8_t> frame((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  if (frame.size() < 20) return CheckpointStatus::Corrupt;

  const std::size_t crc_at = frame.size() - 4;
  const std::uint32_t stored_crc = static_cast<std::uint32_t>(frame[crc_at]) |
                                   static_cast<std::uint32_t>(frame[crc_at + 1]) << 8 |
                                   static_cast<std::uint32_t>(frame[crc_at + 2]) << 16 |
                                   static_cast<std::uint32_t>(frame[crc_at + 3]) << 24;
  if (crc32({frame.data(), crc_at}) != stored_crc) return CheckpointStatus::Corrupt;

  std::vector<std::uint8_t> header(frame.begin(), frame.begin() + 16);
  ByteReader reader(header);
  std::uint32_t file_magic = 0, file_version = 0;
  std::uint64_t payload_size = 0;
  if (!reader.u32(file_magic) || !reader.u32(file_version) || !reader.u64(payload_size)) {
    return CheckpointStatus::Corrupt;
  }
  if (file_magic != magic) return CheckpointStatus::BadMagic;
  if (file_version != version) return CheckpointStatus::BadVersion;
  if (payload_size != frame.size() - 20) return CheckpointStatus::Corrupt;
  payload.assign(frame.begin() + 16, frame.begin() + 16 + static_cast<std::ptrdiff_t>(payload_size));
  return CheckpointStatus::Ok;
}

}  // namespace distscroll::util
