#include "util/bench_report.h"

#include <cstdio>
#include <fstream>

namespace distscroll::util {

bool write_bench_report(const BenchReport& report) {
  std::ofstream out("BENCH_" + report.name + ".json");
  if (!out) return false;
  char buffer[1024];
  std::snprintf(buffer, sizeof(buffer),
                "{\n"
                "  \"name\": \"%s\",\n"
                "  \"cells\": %zu,\n"
                "  \"threads\": %zu,\n"
                "  \"hardware_threads\": %zu,\n"
                "  \"sequential_wall_s\": %.6f,\n"
                "  \"parallel_wall_s\": %.6f,\n"
                "  \"speedup\": %.3f,\n"
                "  \"bit_identical\": %s,\n"
                "  \"tracing_compiled\": %s,\n"
                "  \"batch_width\": %zu,\n"
                "  \"batched_wall_s\": %.6f,\n"
                "  \"batch_speedup\": %.3f,\n"
                "  \"batch_bit_identical\": %s,\n"
                "  \"peak_rss_bytes\": %zu",
                report.name.c_str(), report.cells, report.threads, report.hardware_threads,
                report.sequential_wall_s, report.parallel_wall_s, report.speedup,
                report.bit_identical ? "true" : "false",
                report.tracing_compiled ? "true" : "false", report.batch_width,
                report.batched_wall_s, report.batch_speedup,
                report.batch_bit_identical ? "true" : "false", report.peak_rss_bytes);
  out << buffer;
  if (report.fleet_participants > 0) {
    std::snprintf(buffer, sizeof(buffer),
                  ",\n"
                  "  \"fleet_participants\": %zu,\n"
                  "  \"fleet_wall_s\": %.6f,\n"
                  "  \"fleet_participants_per_s\": %.1f,\n"
                  "  \"fleet_threads\": %zu,\n"
                  "  \"fleet_bit_identical\": %s,\n"
                  "  \"fleet_resume_bit_identical\": %s,\n"
                  "  \"fleet_rss_growth\": %.4f",
                  report.fleet_participants, report.fleet_wall_s,
                  report.fleet_participants_per_s, report.fleet_threads,
                  report.fleet_bit_identical ? "true" : "false",
                  report.fleet_resume_bit_identical ? "true" : "false",
                  report.fleet_rss_growth);
    out << buffer;
  }
  if (report.host_devices > 0) {
    std::snprintf(buffer, sizeof(buffer),
                  ",\n"
                  "  \"host_devices\": %zu,\n"
                  "  \"host_wall_s\": %.6f,\n"
                  "  \"host_frames_per_s\": %.1f,\n"
                  "  \"host_drop_rate\": %.6f,\n"
                  "  \"host_bit_identical\": %s",
                  report.host_devices, report.host_wall_s, report.host_frames_per_s,
                  report.host_drop_rate, report.host_bit_identical ? "true" : "false");
    out << buffer;
  }
  if (!report.metrics_json.empty()) {
    out << ",\n  \"metrics\": {\n" << report.metrics_json << "\n  }";
  }
  out << "\n}\n";
  return static_cast<bool>(out);
}

}  // namespace distscroll::util
