// Descriptive statistics and least-squares fitting.
//
// Two consumers: the study harness (trial-time summaries, percentiles)
// and the sensor calibration path, which fits the paper's idealised
// GP2D120 curve V(d) = a / (d + k) + c through measured ADC samples —
// exactly what Figures 4 and 5 of the paper visualise.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace distscroll::util {

struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  // sample standard deviation (n-1)
  double min = 0.0;
  double max = 0.0;
};

[[nodiscard]] Summary summarize(std::span<const double> values);

/// p in [0, 1]; linear interpolation between order statistics.
/// Precondition: values non-empty.
[[nodiscard]] double percentile(std::span<const double> values, double p);

struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;
};

/// Ordinary least squares y = slope * x + intercept.
/// Precondition: xs.size() == ys.size() >= 2.
[[nodiscard]] LinearFit fit_linear(std::span<const double> xs, std::span<const double> ys);

struct HyperbolicFit {
  // y = a / (x + k) + c
  double a = 0.0;
  double k = 0.0;
  double c = 0.0;
  double r_squared = 0.0;
};

/// Fits y = a/(x+k) + c by scanning k over a grid and solving the inner
/// linear problem (y vs 1/(x+k)) in closed form. This is the idealised
/// curve the paper fits through the measured sensor values in Fig. 4.
/// Preconditions: xs.size() == ys.size() >= 3, xs positive.
[[nodiscard]] HyperbolicFit fit_hyperbolic(std::span<const double> xs, std::span<const double> ys);

struct PowerFit {
  // y = A * x^b  (linear in log-log space; Fig. 5's straight line)
  double A = 0.0;
  double b = 0.0;
  double r_squared = 0.0;  // computed on the log-log residuals
};

/// Fits y = A x^b via linear regression of log y on log x.
/// Preconditions: all xs and ys strictly positive, size >= 2.
[[nodiscard]] PowerFit fit_power(std::span<const double> xs, std::span<const double> ys);

/// Coefficient of determination of predictions vs observations.
[[nodiscard]] double r_squared(std::span<const double> observed, std::span<const double> predicted);

/// Two-sided Welch's t statistic for difference of means (no p-value
/// table; the study harness reports |t| > 2 as "credible difference").
[[nodiscard]] double welch_t(std::span<const double> a, std::span<const double> b);

}  // namespace distscroll::util
