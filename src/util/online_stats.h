// Mergeable online aggregates for streaming (fleet-scale) studies.
//
// The fleet engine folds millions of per-trial results into aggregates
// instead of storing them, so study memory is O(aggregates) rather than
// O(cells). OnlineMoments is the single-pass Welford recurrence plus
// Chan's parallel-merge formula: fold a chunk sequentially, then merge
// chunk aggregates in FIXED chunk-index order and the result is
// bit-identical at any thread count (floating-point addition does not
// commute, so the merge ORDER, not just the merge maths, is part of the
// determinism contract — see DESIGN.md §12).
#pragma once

#include <cstdint>

namespace distscroll::util {

/// Streaming count/mean/variance/min/max. POD state, allocation-free,
/// byte-serialisable for checkpoints.
class OnlineMoments {
 public:
  /// Welford update.
  void add(double x) {
    if (count_ == 0) {
      min_ = x;
      max_ = x;
    } else {
      if (x < min_) min_ = x;
      if (x > max_) max_ = x;
    }
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
  }

  /// Chan et al. pairwise combine: this <- this ++ other. Merging the
  /// same sequence of aggregates in the same order is bit-stable.
  void merge(const OnlineMoments& other) {
    if (other.count_ == 0) return;
    if (count_ == 0) {
      *this = other;
      return;
    }
    const double na = static_cast<double>(count_);
    const double nb = static_cast<double>(other.count_);
    const double total = na + nb;
    const double delta = other.mean_ - mean_;
    mean_ += delta * (nb / total);
    m2_ += other.m2_ + delta * delta * (na * nb / total);
    count_ += other.count_;
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }

  void clear() { *this = OnlineMoments{}; }

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double mean() const { return count_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1), matching util::summarize.
  [[nodiscard]] double variance() const {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return count_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const { return count_ > 0 ? max_ : 0.0; }

  // Raw state for byte-exact checkpoint serialisation.
  [[nodiscard]] double raw_mean() const { return mean_; }
  [[nodiscard]] double raw_m2() const { return m2_; }
  void restore(std::uint64_t count, double mean, double m2, double min, double max) {
    count_ = count;
    mean_ = mean;
    m2_ = m2;
    min_ = min;
    max_ = max;
  }

  friend bool operator==(const OnlineMoments&, const OnlineMoments&) = default;

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace distscroll::util
