// Fixed-capacity ring buffer.
//
// Used in the firmware paths (UART FIFOs, sensor smoothing windows) where
// a real PIC 18F452 would use a static array: no heap allocation after
// construction, O(1) push/pop, oldest element overwritten when full
// (configurable via push_overwrite vs try_push).
#pragma once

#include <array>
#include <cstddef>
#include <optional>

namespace distscroll::util {

template <typename T, std::size_t Capacity>
class RingBuffer {
  static_assert(Capacity > 0, "RingBuffer capacity must be positive");

 public:
  constexpr RingBuffer() = default;

  [[nodiscard]] constexpr bool empty() const { return size_ == 0; }
  [[nodiscard]] constexpr bool full() const { return size_ == Capacity; }
  [[nodiscard]] constexpr std::size_t size() const { return size_; }
  [[nodiscard]] static constexpr std::size_t capacity() { return Capacity; }

  /// Push if there is room; returns false (and drops the element) when full.
  constexpr bool try_push(const T& value) {
    if (full()) return false;
    data_[(head_ + size_) % Capacity] = value;
    ++size_;
    return true;
  }

  /// Push, evicting the oldest element when full. Returns true if an
  /// element was evicted.
  constexpr bool push_overwrite(const T& value) {
    if (!full()) {
      (void)try_push(value);
      return false;
    }
    data_[head_] = value;
    head_ = (head_ + 1) % Capacity;
    return true;
  }

  /// Pop the oldest element; nullopt when empty.
  constexpr std::optional<T> pop() {
    if (empty()) return std::nullopt;
    T value = data_[head_];
    head_ = (head_ + 1) % Capacity;
    --size_;
    return value;
  }

  /// Peek the oldest element without removing it.
  [[nodiscard]] constexpr std::optional<T> front() const {
    if (empty()) return std::nullopt;
    return data_[head_];
  }

  /// Peek the newest element.
  [[nodiscard]] constexpr std::optional<T> back() const {
    if (empty()) return std::nullopt;
    return data_[(head_ + size_ - 1) % Capacity];
  }

  /// Element i positions from the oldest (0 == oldest). Precondition:
  /// i < size().
  [[nodiscard]] constexpr const T& at_from_oldest(std::size_t i) const {
    return data_[(head_ + i) % Capacity];
  }

  constexpr void clear() {
    head_ = 0;
    size_ = 0;
  }

 private:
  std::array<T, Capacity> data_{};
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace distscroll::util
