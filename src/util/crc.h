// CRC-8 (Dallas/Maxim) and CRC-16-CCITT used by the wireless framing
// between the DistScroll prototype and the logging PC.
#pragma once

#include <cstdint>
#include <span>

namespace distscroll::util {

/// CRC-8 with polynomial 0x31 (Dallas/Maxim), init 0x00.
[[nodiscard]] std::uint8_t crc8(std::span<const std::uint8_t> data);

/// CRC-16-CCITT (poly 0x1021), init 0xFFFF.
[[nodiscard]] std::uint16_t crc16_ccitt(std::span<const std::uint8_t> data);

/// CRC-32 (IEEE 802.3, reflected poly 0xEDB88320, init/xorout
/// 0xFFFFFFFF) — integrity check of fleet checkpoint files.
[[nodiscard]] std::uint32_t crc32(std::span<const std::uint8_t> data);

}  // namespace distscroll::util
