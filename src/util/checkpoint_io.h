// Versioned binary checkpoint files for interruptible fleet studies.
//
// Format (little-endian throughout):
//   u32 magic      caller-chosen file type tag
//   u32 version    caller-chosen payload schema version
//   u64 payload_size
//   u8  payload[payload_size]
//   u32 crc32      over magic..payload (everything before this field)
//
// Writes go through a ".tmp" sibling plus rename, so an interrupted
// writer never leaves a torn checkpoint behind — the previous intact one
// survives. Readers validate magic, version, size and CRC; any mismatch
// is reported as a typed error, never a partially-restored state.
//
// ByteWriter/ByteReader are the little-endian encoding helpers the
// fleet aggregates use to build the payload (and the quantile sketch's
// serialize() uses the same byte order, so checkpoint bytes are
// platform-stable on all little-endian hosts).
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace distscroll::util {

/// Append-only little-endian encoder over a byte vector.
class ByteWriter {
 public:
  explicit ByteWriter(std::vector<std::uint8_t>& out) : out_(out) {}

  void u8(std::uint8_t v) { out_.push_back(v); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void f64(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }

 private:
  std::vector<std::uint8_t>& out_;
};

/// Bounds-checked little-endian decoder; every getter returns false on
/// truncation and leaves the output untouched.
class ByteReader {
 public:
  explicit ByteReader(const std::vector<std::uint8_t>& in) : in_(in) {}

  [[nodiscard]] bool u8(std::uint8_t& v) {
    if (cursor_ + 1 > in_.size()) return false;
    v = in_[cursor_++];
    return true;
  }
  [[nodiscard]] bool u32(std::uint32_t& v) {
    if (cursor_ + 4 > in_.size()) return false;
    v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(in_[cursor_++]) << (8 * i);
    return true;
  }
  [[nodiscard]] bool u64(std::uint64_t& v) {
    if (cursor_ + 8 > in_.size()) return false;
    v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(in_[cursor_++]) << (8 * i);
    return true;
  }
  [[nodiscard]] bool f64(double& v) {
    std::uint64_t bits = 0;
    if (!u64(bits)) return false;
    std::memcpy(&v, &bits, sizeof v);
    return true;
  }

  [[nodiscard]] std::size_t cursor() const { return cursor_; }
  [[nodiscard]] bool exhausted() const { return cursor_ == in_.size(); }
  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const { return in_; }

 private:
  const std::vector<std::uint8_t>& in_;
  std::size_t cursor_ = 0;
};

enum class CheckpointStatus : std::uint8_t {
  Ok,
  IoError,        // file EXISTS but can't be read (perms, not a regular
                  // file, transient FS error) — or can't be written
  BadMagic,       // not this kind of checkpoint
  BadVersion,     // schema mismatch
  Corrupt,        // truncated frame or CRC mismatch
  Mismatch,       // intact checkpoint for a DIFFERENT run configuration
  Missing,        // file does not exist (the only "start fresh" signal)
};

[[nodiscard]] const char* to_string(CheckpointStatus status);

/// Atomically (tmp + rename) writes `payload` framed as above.
[[nodiscard]] CheckpointStatus write_checkpoint_file(const std::string& path,
                                                     std::uint32_t magic, std::uint32_t version,
                                                     const std::vector<std::uint8_t>& payload);

/// Reads and validates a checkpoint; on Ok, `payload` holds the frame
/// payload bytes exactly as written.
[[nodiscard]] CheckpointStatus read_checkpoint_file(const std::string& path,
                                                    std::uint32_t magic, std::uint32_t version,
                                                    std::vector<std::uint8_t>& payload);

}  // namespace distscroll::util
