#include "util/quantile_sketch.h"

#include <algorithm>

namespace distscroll::util {

QuantileSketch::QuantileSketch() : levels_(kMaxLevels), parity_(kMaxLevels, 0) {
  // 2*kCapacity bounds the add() path only (kCapacity-1 resident plus
  // one compaction's worth of promotions from below), keeping warm
  // add() allocation-free — the DS_ASSERT_NO_ALLOC contract. merge()
  // may transiently exceed it (two near-full levels concatenate, then
  // receive promotions before their own compaction) and reallocate;
  // merge happens once per chunk, off the per-value hot path.
  for (auto& level : levels_) level.reserve(2 * kCapacity);
}

void QuantileSketch::add(double value) {
  ++count_;
  // ds-lint: allow(no-alloc-markers) level capacity pre-reserved to 2*kCapacity in the ctor; pinned by DS_ASSERT_NO_ALLOC
  levels_[0].push_back(value);
  for (std::size_t l = 0; l < kMaxLevels && levels_[l].size() >= kCapacity; ++l) compact(l);
}

void QuantileSketch::compact(std::size_t level) {
  std::vector<double>& buffer = levels_[level];
  std::sort(buffer.begin(), buffer.end());
  // Compact an even count of items; an odd straggler (the largest after
  // the sort — a deterministic choice) stays resident at this level so
  // total weight is preserved exactly.
  const std::size_t pairs = buffer.size() / 2;
  const std::size_t keep_offset = parity_[level];
  parity_[level] ^= 1;
  if (level + 1 < kMaxLevels) {
    std::vector<double>& up = levels_[level + 1];
    // ds-lint: allow(no-alloc-markers) promotions fit the receiving level's 2*kCapacity reserve on the add() path
    for (std::size_t i = 0; i < pairs; ++i) up.push_back(buffer[2 * i + keep_offset]);
  }
  // else: level 31 overflow (~2.7e11 folds) — unreachable in practice;
  // the selected items are dropped and quantile() stays rank-consistent
  // because it walks actual buffer weights.
  if (buffer.size() % 2 != 0) {
    buffer[0] = buffer.back();
    // ds-lint: allow(no-alloc-markers) shrinking resize; never reallocates
    buffer.resize(1);
  } else {
    buffer.clear();
  }
}

void QuantileSketch::merge(const QuantileSketch& other) {
  count_ += other.count_;
  for (std::size_t l = 0; l < kMaxLevels; ++l) {
    levels_[l].insert(levels_[l].end(), other.levels_[l].begin(), other.levels_[l].end());
  }
  for (std::size_t l = 0; l < kMaxLevels; ++l) {
    while (levels_[l].size() >= kCapacity) compact(l);
  }
}

void QuantileSketch::clear() {
  for (auto& level : levels_) level.clear();
  std::fill(parity_.begin(), parity_.end(), 0);
  count_ = 0;
}

double QuantileSketch::quantile(double p) const {
  std::vector<std::pair<double, std::uint64_t>> weighted;  // (value, weight)
  std::uint64_t total = 0;
  for (std::size_t l = 0; l < kMaxLevels; ++l) {
    const std::uint64_t weight = std::uint64_t{1} << l;
    for (const double v : levels_[l]) {
      weighted.emplace_back(v, weight);
      total += weight;
    }
  }
  if (weighted.empty()) return 0.0;
  std::sort(weighted.begin(), weighted.end());
  const double target = std::clamp(p, 0.0, 1.0) * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  for (const auto& [value, weight] : weighted) {
    cumulative += weight;
    if (static_cast<double>(cumulative) >= target) return value;
  }
  return weighted.back().first;
}

void QuantileSketch::serialize(ByteWriter& out) const {
  out.u64(count_);
  for (std::size_t l = 0; l < kMaxLevels; ++l) {
    out.u8(parity_[l]);
    out.u32(static_cast<std::uint32_t>(levels_[l].size()));
    for (const double v : levels_[l]) out.f64(v);
  }
}

bool QuantileSketch::deserialize(ByteReader& in) {
  clear();
  if (!in.u64(count_)) return false;
  for (std::size_t l = 0; l < kMaxLevels; ++l) {
    if (!in.u8(parity_[l])) return false;
    if (parity_[l] > 1) return false;
    std::uint32_t size = 0;
    if (!in.u32(size)) return false;
    if (size > 2 * kCapacity) return false;
    for (std::uint32_t i = 0; i < size; ++i) {
      double v = 0.0;
      if (!in.f64(v)) return false;
      levels_[l].push_back(v);
    }
  }
  return true;
}

}  // namespace distscroll::util
