// Non-owning callable view for hot paths.
//
// A FunctionRef is two words: a context pointer and a plain function
// pointer. Invoking one is a single indirect call — no heap closure, no
// virtual dispatch through std::function's type-erased manager, and no
// ownership. The trade is lifetime: the referenced callable must outlive
// the FunctionRef, so owning std::function stays at setup-time API
// boundaries (where a device stores a provider for its whole life) and
// FunctionRef is the per-sample view handed to the inner loop.
#pragma once

#include <type_traits>
#include <utility>

namespace distscroll::util {

template <typename Signature>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  using RawFn = R (*)(void*, Args...);

  constexpr FunctionRef() = default;

  /// Explicit (context, trampoline) form — the allocation-free idiom for
  /// member dispatch: pass `this` and a non-capturing lambda that casts
  /// the context back.
  constexpr FunctionRef(void* context, RawFn fn) : context_(context), fn_(fn) {}

  /// Bind any callable lvalue (lambda with captures, std::function,
  /// function object). The callable is NOT copied; it must outlive the
  /// view. Rvalues are rejected so `FunctionRef f = [..]{..};` (dangling
  /// temporary) fails to compile.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, FunctionRef> &&
                std::is_invocable_r_v<R, F&, Args...>>>
  constexpr FunctionRef(F& callable)  // NOLINT(google-explicit-constructor)
      : context_(const_cast<void*>(static_cast<const void*>(&callable))),
        fn_([](void* ctx, Args... args) -> R {
          return static_cast<R>((*static_cast<F*>(ctx))(std::forward<Args>(args)...));
        }) {}

  /// Plain function pointers are self-contained: no context needed.
  constexpr FunctionRef(R (*fn)(Args...))  // NOLINT(google-explicit-constructor)
      : context_(reinterpret_cast<void*>(fn)),
        fn_([](void* ctx, Args... args) -> R {
          return reinterpret_cast<R (*)(Args...)>(ctx)(std::forward<Args>(args)...);
        }) {}

  R operator()(Args... args) const { return fn_(context_, std::forward<Args>(args)...); }

  [[nodiscard]] constexpr explicit operator bool() const { return fn_ != nullptr; }

 private:
  void* context_ = nullptr;
  RawFn fn_ = nullptr;
};

}  // namespace distscroll::util
