#include "util/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace distscroll::util {

Summary summarize(std::span<const double> values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;
  double sum = 0.0;
  s.min = std::numeric_limits<double>::infinity();
  s.max = -std::numeric_limits<double>::infinity();
  for (double v : values) {
    sum += v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.mean = sum / static_cast<double>(values.size());
  if (values.size() > 1) {
    double ss = 0.0;
    for (double v : values) {
      const double d = v - s.mean;
      ss += d * d;
    }
    s.stddev = std::sqrt(ss / static_cast<double>(values.size() - 1));
  }
  return s;
}

double percentile(std::span<const double> values, double p) {
  assert(!values.empty());
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  p = std::clamp(p, 0.0, 1.0);
  const double pos = p * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

LinearFit fit_linear(std::span<const double> xs, std::span<const double> ys) {
  assert(xs.size() == ys.size() && xs.size() >= 2);
  const auto n = static_cast<double>(xs.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
  }
  LinearFit fit;
  const double denom = n * sxx - sx * sx;
  if (denom != 0.0) {
    fit.slope = (n * sxy - sx * sy) / denom;
    fit.intercept = (sy - fit.slope * sx) / n;
  } else {
    fit.intercept = sy / n;
  }
  std::vector<double> pred(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) pred[i] = fit.slope * xs[i] + fit.intercept;
  fit.r_squared = r_squared(ys, pred);
  return fit;
}

HyperbolicFit fit_hyperbolic(std::span<const double> xs, std::span<const double> ys) {
  assert(xs.size() == ys.size() && xs.size() >= 3);
  HyperbolicFit best;
  best.r_squared = -std::numeric_limits<double>::infinity();
  // The GP2D120 datasheet curve has its singularity just left of the
  // measuring range, so k in (-min(x), ~10] covers every realistic fit.
  double min_x = std::numeric_limits<double>::infinity();
  for (double x : xs) min_x = std::min(min_x, x);
  std::vector<double> u(xs.size());
  std::vector<double> pred(xs.size());
  for (double k = -min_x + 0.05; k <= 10.0; k += 0.01) {
    for (std::size_t i = 0; i < xs.size(); ++i) u[i] = 1.0 / (xs[i] + k);
    const LinearFit inner = fit_linear(u, ys);
    for (std::size_t i = 0; i < xs.size(); ++i) pred[i] = inner.slope * u[i] + inner.intercept;
    const double r2 = r_squared(ys, pred);
    if (r2 > best.r_squared) {
      best.a = inner.slope;
      best.k = k;
      best.c = inner.intercept;
      best.r_squared = r2;
    }
  }
  return best;
}

PowerFit fit_power(std::span<const double> xs, std::span<const double> ys) {
  assert(xs.size() == ys.size() && xs.size() >= 2);
  std::vector<double> lx(xs.size()), ly(ys.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    assert(xs[i] > 0.0 && ys[i] > 0.0);
    lx[i] = std::log(xs[i]);
    ly[i] = std::log(ys[i]);
  }
  const LinearFit lin = fit_linear(lx, ly);
  PowerFit fit;
  fit.A = std::exp(lin.intercept);
  fit.b = lin.slope;
  fit.r_squared = lin.r_squared;
  return fit;
}

double r_squared(std::span<const double> observed, std::span<const double> predicted) {
  assert(observed.size() == predicted.size() && !observed.empty());
  double mean = 0.0;
  for (double v : observed) mean += v;
  mean /= static_cast<double>(observed.size());
  double ss_tot = 0.0, ss_res = 0.0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    ss_tot += (observed[i] - mean) * (observed[i] - mean);
    ss_res += (observed[i] - predicted[i]) * (observed[i] - predicted[i]);
  }
  if (ss_tot == 0.0) return ss_res == 0.0 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

double welch_t(std::span<const double> a, std::span<const double> b) {
  const Summary sa = summarize(a);
  const Summary sb = summarize(b);
  if (sa.count < 2 || sb.count < 2) return 0.0;
  const double va = sa.stddev * sa.stddev / static_cast<double>(sa.count);
  const double vb = sb.stddev * sb.stddev / static_cast<double>(sb.count);
  if (va + vb == 0.0) return 0.0;
  return (sa.mean - sb.mean) / std::sqrt(va + vb);
}

}  // namespace distscroll::util
