// Minimal CSV writer for study/bench exports.
//
// Every bench binary can dump the series it prints as CSV next to the
// console output so figures can be re-plotted outside the harness.
#pragma once

#include <fstream>
#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

namespace distscroll::util {

class CsvWriter {
 public:
  /// Opens (truncates) the file and writes the header row.
  CsvWriter(const std::string& path, std::vector<std::string> header);

  [[nodiscard]] bool ok() const { return static_cast<bool>(out_); }

  /// Writes one row; values.size() must equal the header width.
  void row(std::initializer_list<double> values);
  void row(const std::vector<std::string>& values);

 private:
  static std::string escape(std::string_view field);

  std::ofstream out_;
  std::size_t width_;
};

}  // namespace distscroll::util
