#include "util/csv.h"

#include <cassert>
#include <sstream>

namespace distscroll::util {

CsvWriter::CsvWriter(const std::string& path, std::vector<std::string> header)
    : out_(path), width_(header.size()) {
  assert(width_ > 0);
  row(header);
}

std::string CsvWriter::escape(std::string_view field) {
  if (field.find_first_of(",\"\n") == std::string_view::npos) return std::string(field);
  std::string quoted = "\"";
  for (char c : field) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

void CsvWriter::row(std::initializer_list<double> values) {
  assert(values.size() == width_);
  bool first = true;
  for (double v : values) {
    if (!first) out_ << ',';
    out_ << v;
    first = false;
  }
  out_ << '\n';
}

void CsvWriter::row(const std::vector<std::string>& values) {
  assert(values.size() == width_);
  bool first = true;
  for (const auto& v : values) {
    if (!first) out_ << ',';
    out_ << escape(v);
    first = false;
  }
  out_ << '\n';
}

}  // namespace distscroll::util
