#include "util/online_stats.h"

#include <cmath>

namespace distscroll::util {

double OnlineMoments::stddev() const { return std::sqrt(variance()); }

}  // namespace distscroll::util
