// Deterministic mergeable quantile sketch (KLL-style compactor levels).
//
// The fleet engine needs percentiles over millions of streamed trial
// times without storing them. This is a KLL/GK-family sketch with the
// randomness removed: each level is a buffer of up to kCapacity values;
// a full level is sorted and every other element (starting at a
// per-level parity bit that flips after each compaction) is promoted to
// the next level, where items carry twice the weight. The alternating
// parity replaces KLL's coin flip, so the sketch is a pure function of
// the folded value sequence — merged in fixed chunk order it is
// bit-identical at any thread count, and its serialised bytes are part
// of the checkpoint/resume identity contract (DESIGN.md §12).
//
// Rank error is O(1/kCapacity) of the total weight per query — with
// k = 128 comfortably under 1% for the fleet percentile tables.
//
// add() is allocation-free after construction: every level buffer is
// reserved to its worst-case size (2·kCapacity: a level holds at most
// kCapacity-1 resident values and a merge appends at most that many
// again), which is what lets the per-participant fold path run under
// DS_ASSERT_NO_ALLOC.
#pragma once

#include <cstdint>
#include <vector>

#include "util/checkpoint_io.h"

namespace distscroll::util {

class QuantileSketch {
 public:
  static constexpr std::size_t kCapacity = 128;  // values per level buffer
  /// Level L holds weight-2^L items; level 31 is reached after roughly
  /// kCapacity * 2^31 ≈ 2.7e11 folds — far beyond any fleet run.
  static constexpr std::size_t kMaxLevels = 32;

  QuantileSketch();

  /// Fold one value. Never allocates (buffers are pre-reserved).
  void add(double value);

  /// this <- this ++ other, deterministically: level buffers are
  /// concatenated and over-full levels compact exactly as during add().
  void merge(const QuantileSketch& other);

  /// Forget all folded values, keeping buffer capacity (cleared state
  /// serialises identically to a freshly constructed sketch).
  void clear();

  [[nodiscard]] std::uint64_t count() const { return count_; }

  /// Estimated p-quantile (p in [0,1]); 0 when empty. Allocates query
  /// scratch — queries are cold-path only.
  [[nodiscard]] double quantile(double p) const;

  /// Appends the exact state (count, per-level parity/size/values).
  /// Byte-equal serialisations <=> identical sketch states.
  void serialize(ByteWriter& out) const;
  /// Restores a sketch serialised by serialize(); returns false on
  /// truncated/invalid input (state is cleared either way).
  [[nodiscard]] bool deserialize(ByteReader& in);

  friend bool operator==(const QuantileSketch& a, const QuantileSketch& b) {
    return a.count_ == b.count_ && a.parity_ == b.parity_ && a.levels_ == b.levels_;
  }

 private:
  void compact(std::size_t level);

  std::vector<std::vector<double>> levels_;  // levels_[L]: weight-2^L items
  std::vector<std::uint8_t> parity_;         // next compaction keeps odd/even slots
  std::uint64_t count_ = 0;                  // exact number of folded values
};

}  // namespace distscroll::util
