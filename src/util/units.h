// Strong unit types used throughout the DistScroll simulator.
//
// The firmware, sensor models and human model all exchange physical
// quantities; mixing up centimetres, volts and ADC counts is the classic
// source of silent bugs in sensor code, so each gets its own vocabulary
// type. The types are intentionally tiny value wrappers: trivially
// copyable, constexpr-friendly, and explicitly convertible to their raw
// representation.
#pragma once

#include <compare>
#include <cstdint>

namespace distscroll::util {

/// Distance in centimetres. The GP2D120's useful range is roughly
/// 4 cm .. 30 cm (paper Section 4.2).
struct Centimeters {
  double value{0.0};

  constexpr Centimeters() = default;
  constexpr explicit Centimeters(double v) : value(v) {}

  constexpr auto operator<=>(const Centimeters&) const = default;
  constexpr Centimeters operator+(Centimeters o) const { return Centimeters{value + o.value}; }
  constexpr Centimeters operator-(Centimeters o) const { return Centimeters{value - o.value}; }
  constexpr Centimeters operator*(double s) const { return Centimeters{value * s}; }
  constexpr Centimeters operator/(double s) const { return Centimeters{value / s}; }
};

/// Analog voltage, e.g. the GP2D120 output or an ADXL311 axis output.
struct Volts {
  double value{0.0};

  constexpr Volts() = default;
  constexpr explicit Volts(double v) : value(v) {}

  constexpr auto operator<=>(const Volts&) const = default;
  constexpr Volts operator+(Volts o) const { return Volts{value + o.value}; }
  constexpr Volts operator-(Volts o) const { return Volts{value - o.value}; }
  constexpr Volts operator*(double s) const { return Volts{value * s}; }
};

/// Raw output of the 10-bit successive-approximation ADC on the
/// Smart-Its board (0..1023).
struct AdcCounts {
  std::uint16_t value{0};

  constexpr AdcCounts() = default;
  constexpr explicit AdcCounts(std::uint16_t v) : value(v) {}

  constexpr auto operator<=>(const AdcCounts&) const = default;
};

/// Simulated time in seconds (double; the event queue keys on this).
struct Seconds {
  double value{0.0};

  constexpr Seconds() = default;
  constexpr explicit Seconds(double v) : value(v) {}

  constexpr auto operator<=>(const Seconds&) const = default;
  constexpr Seconds operator+(Seconds o) const { return Seconds{value + o.value}; }
  constexpr Seconds operator-(Seconds o) const { return Seconds{value - o.value}; }
  constexpr Seconds operator*(double s) const { return Seconds{value * s}; }
};

constexpr Seconds milliseconds(double ms) { return Seconds{ms / 1000.0}; }

/// Acceleration in units of standard gravity, as the ADXL311 reports it.
struct Gs {
  double value{0.0};

  constexpr Gs() = default;
  constexpr explicit Gs(double v) : value(v) {}

  constexpr auto operator<=>(const Gs&) const = default;
};

/// Angle in radians (device tilt).
struct Radians {
  double value{0.0};

  constexpr Radians() = default;
  constexpr explicit Radians(double v) : value(v) {}

  constexpr auto operator<=>(const Radians&) const = default;
  constexpr Radians operator+(Radians o) const { return Radians{value + o.value}; }
  constexpr Radians operator-(Radians o) const { return Radians{value - o.value}; }
};

}  // namespace distscroll::util
