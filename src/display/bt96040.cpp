#include "display/bt96040.h"

#include <algorithm>

#include "display/font.h"

namespace distscroll::display {

namespace {
constexpr std::size_t index_of(int x, int y) {
  return static_cast<std::size_t>(y) * kDisplayWidth + static_cast<std::size_t>(x);
}
}  // namespace

bool Bt96040::on_write(std::span<const std::uint8_t> data) {
  if (data.empty()) return false;
  const auto cmd = static_cast<Command>(data[0]);
  execute(cmd, data.subspan(1));
  return true;
}

std::vector<std::uint8_t> Bt96040::on_read(std::size_t length) {
  // Status register: bit0 ready (always), bits 2..7 contrast.
  std::vector<std::uint8_t> out(length, 0);
  if (!out.empty()) out[0] = static_cast<std::uint8_t>(0x01 | (contrast_ << 2));
  return out;
}

void Bt96040::clear() {
  framebuffer_.reset();
  for (auto& line : text_shadow_) line.fill(' ');
  inverted_.fill(false);
  cursor_row_ = 0;
  cursor_col_ = 0;
}

void Bt96040::draw_char(int cell_row, int cell_col, char c) {
  if (cell_row < 0 || cell_row >= kTextLines) return;
  if (cell_col < 0 || cell_col >= kTextColumns) return;
  const auto& g = glyph(c);
  const int x0 = cell_col * kGlyphAdvance;
  const int y0 = cell_row * 8;  // 8-pixel text band: 7 glyph rows + 1 gap
  for (int col = 0; col < kGlyphAdvance; ++col) {
    const std::uint8_t bits = (col < kGlyphWidth) ? g[static_cast<std::size_t>(col)] : 0;
    for (int row = 0; row < kGlyphHeight + 1; ++row) {
      const int x = x0 + col;
      const int y = y0 + row;
      if (x >= kDisplayWidth || y >= kDisplayHeight) continue;
      bool on = row < kGlyphHeight && ((bits >> row) & 1u);
      if (inverted_[static_cast<std::size_t>(cell_row)]) on = !on;
      framebuffer_[index_of(x, y)] = on;
    }
  }
  text_shadow_[static_cast<std::size_t>(cell_row)][static_cast<std::size_t>(cell_col)] = c;
}

void Bt96040::execute(Command cmd, std::span<const std::uint8_t> args) {
  switch (cmd) {
    case Command::Clear:
      clear();
      ++frames_written_;
      break;
    case Command::SetCursor:
      if (args.size() >= 2) {
        cursor_row_ = std::clamp<int>(args[0], 0, kTextLines - 1);
        cursor_col_ = std::clamp<int>(args[1], 0, kTextColumns - 1);
      }
      break;
    case Command::Text:
      for (std::uint8_t byte : args) {
        if (cursor_col_ >= kTextColumns) break;  // no wrap: lines clip
        draw_char(cursor_row_, cursor_col_, static_cast<char>(byte));
        ++cursor_col_;
      }
      ++frames_written_;
      break;
    case Command::SetContrast:
      if (!args.empty()) contrast_ = static_cast<std::uint8_t>(args[0] & 0x3F);
      break;
    case Command::InvertLine:
      if (args.size() >= 2) {
        const int line = std::clamp<int>(args[0], 0, kTextLines - 1);
        const bool invert = args[1] != 0;
        if (inverted_[static_cast<std::size_t>(line)] != invert) {
          inverted_[static_cast<std::size_t>(line)] = invert;
          // Re-render the shadow text with the new polarity.
          for (int col = 0; col < kTextColumns; ++col) {
            draw_char(line, col, text_shadow_[static_cast<std::size_t>(line)][static_cast<std::size_t>(col)]);
          }
        }
      }
      break;
    case Command::Blit:
      if (args.size() >= 3) {
        const int x0 = args[0];
        const int page = args[1];
        const auto bytes = args.subspan(2);
        for (std::size_t i = 0; i < bytes.size(); ++i) {
          const int x = x0 + static_cast<int>(i);
          if (x >= kDisplayWidth) break;
          for (int bit = 0; bit < 8; ++bit) {
            const int y = page * 8 + bit;
            if (y >= kDisplayHeight) break;
            framebuffer_[index_of(x, y)] = (bytes[i] >> bit) & 1u;
          }
        }
        ++frames_written_;
      }
      break;
  }
}

bool Bt96040::pixel(int x, int y) const {
  if (x < 0 || x >= kDisplayWidth || y < 0 || y >= kDisplayHeight) return false;
  return framebuffer_[index_of(x, y)];
}

std::string Bt96040::line_text(int line) const {
  if (line < 0 || line >= kTextLines) return {};
  std::string out;
  for (char c : text_shadow_[static_cast<std::size_t>(line)]) out += (c == '\0') ? ' ' : c;
  // Trim trailing spaces for convenience.
  while (!out.empty() && out.back() == ' ') out.pop_back();
  return out;
}

bool Bt96040::line_inverted(int line) const {
  if (line < 0 || line >= kTextLines) return false;
  return inverted_[static_cast<std::size_t>(line)];
}

std::string Bt96040::render_ascii() const {
  std::string out;
  out.reserve(static_cast<std::size_t>((kDisplayWidth + 3) * (kDisplayHeight + 2)));
  out += '+' + std::string(kDisplayWidth, '-') + "+\n";
  for (int y = 0; y < kDisplayHeight; ++y) {
    out += '|';
    for (int x = 0; x < kDisplayWidth; ++x) out += pixel(x, y) ? '#' : ' ';
    out += "|\n";
  }
  out += '+' + std::string(kDisplayWidth, '-') + "+\n";
  return out;
}

double Bt96040::current_draw_ma() const {
  // COG panel: ~0.4 mA base plus bias ladder scaling with contrast.
  return 0.4 + 0.02 * static_cast<double>(contrast_);
}

}  // namespace distscroll::display
