// Classic 5x7 bitmap font (public-domain glyph set, as shipped in
// countless character LCD controllers). Each glyph is five column bytes,
// LSB = top row. The BT96040 text mode renders these with a one-column
// advance gap, giving 16 characters per 96-pixel line and 5 text lines
// on the 40-pixel-high panel — matching the paper's "5 lines in text
// mode".
#pragma once

#include <array>
#include <cstdint>

namespace distscroll::display {

inline constexpr int kGlyphWidth = 5;
inline constexpr int kGlyphHeight = 7;
inline constexpr int kGlyphAdvance = 6;  // 5 columns + 1 gap

/// Returns the five column bytes for a printable ASCII character
/// (32..126); unknown characters render as the 0x7F "box".
[[nodiscard]] const std::array<std::uint8_t, 5>& glyph(char c);

}  // namespace distscroll::display
