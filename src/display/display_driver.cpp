#include "display/display_driver.h"

#include <vector>

namespace distscroll::display {

util::Seconds DisplayDriver::command(Command cmd, std::initializer_list<std::uint8_t> args) {
  std::vector<std::uint8_t> frame;
  frame.reserve(1 + args.size());
  frame.push_back(static_cast<std::uint8_t>(cmd));
  frame.insert(frame.end(), args.begin(), args.end());
  const auto result = bus_->write(address_, frame);
  last_acked_ = result.acked;
  return result.bus_time;
}

util::Seconds DisplayDriver::text_command(int row, int col, std::string_view text) {
  util::Seconds total = command(Command::SetCursor,
                                {static_cast<std::uint8_t>(row), static_cast<std::uint8_t>(col)});
  std::vector<std::uint8_t> frame;
  frame.reserve(1 + text.size());
  frame.push_back(static_cast<std::uint8_t>(Command::Text));
  for (char c : text) frame.push_back(static_cast<std::uint8_t>(c));
  const auto result = bus_->write(address_, frame);
  last_acked_ = last_acked_ && result.acked;
  return total + result.bus_time;
}

util::Seconds DisplayDriver::clear() {
  shadow_valid_ = false;
  return command(Command::Clear, {});
}

util::Seconds DisplayDriver::write_at(int row, int col, std::string_view text) {
  shadow_valid_ = false;  // direct writes invalidate the show() cache
  return text_command(row, col, text);
}

util::Seconds DisplayDriver::set_line_inverted(int row, bool inverted) {
  return command(Command::InvertLine,
                 {static_cast<std::uint8_t>(row), static_cast<std::uint8_t>(inverted ? 1 : 0)});
}

util::Seconds DisplayDriver::set_contrast(std::uint8_t level) {
  return command(Command::SetContrast, {level});
}

util::Seconds DisplayDriver::show(const std::array<std::string, kTextLines>& lines,
                                  int highlighted_row) {
  util::Seconds total{0.0};
  for (int row = 0; row < kTextLines; ++row) {
    auto& shadow_line = shadow_[static_cast<std::size_t>(row)];
    std::string padded = lines[static_cast<std::size_t>(row)].substr(0, kTextColumns);
    padded.resize(kTextColumns, ' ');
    const bool highlight_changed =
        shadow_valid_ && ((shadow_highlight_ == row) != (highlighted_row == row));
    if (shadow_valid_ && shadow_line == padded && !highlight_changed) continue;
    // Order matters: set polarity first so the glyphs render with it.
    total = total + set_line_inverted(row, highlighted_row == row);
    total = total + text_command(row, 0, padded);
    shadow_line = padded;
  }
  shadow_highlight_ = highlighted_row;
  shadow_valid_ = true;
  return total;
}

}  // namespace distscroll::display
