#include "display/display_driver.h"

#include <algorithm>
#include <cassert>
#include <span>

namespace distscroll::display {

util::Seconds DisplayDriver::command(Command cmd, std::initializer_list<std::uint8_t> args) {
  // Fixed-size frame on the stack: command byte plus at most 7 argument
  // bytes. command() sits on the redraw path that core/'s DS_HOT
  // regions reach on every scroll step, so it must not touch the heap.
  std::array<std::uint8_t, 8> frame{};
  assert(args.size() < frame.size());
  frame[0] = static_cast<std::uint8_t>(cmd);
  std::copy(args.begin(), args.end(), frame.begin() + 1);
  const auto result = bus_->write(address_, std::span(frame.data(), 1 + args.size()));
  last_acked_ = result.acked;
  return result.bus_time;
}

util::Seconds DisplayDriver::text_command(int row, int col, std::string_view text) {
  util::Seconds total = command(Command::SetCursor,
                                {static_cast<std::uint8_t>(row), static_cast<std::uint8_t>(col)});
  // Text payloads are clipped to one 16-column line (the panel discards
  // overflow anyway), so a stack frame buffer covers every case.
  std::array<std::uint8_t, 1 + kTextColumns> frame{};
  frame[0] = static_cast<std::uint8_t>(Command::Text);
  const std::size_t n = std::min(text.size(), static_cast<std::size_t>(kTextColumns));
  for (std::size_t i = 0; i < n; ++i) frame[1 + i] = static_cast<std::uint8_t>(text[i]);
  const auto result = bus_->write(address_, std::span(frame.data(), 1 + n));
  last_acked_ = last_acked_ && result.acked;
  return total + result.bus_time;
}

util::Seconds DisplayDriver::clear() {
  shadow_valid_ = false;
  return command(Command::Clear, {});
}

util::Seconds DisplayDriver::write_at(int row, int col, std::string_view text) {
  shadow_valid_ = false;  // direct writes invalidate the show() cache
  return text_command(row, col, text);
}

util::Seconds DisplayDriver::set_line_inverted(int row, bool inverted) {
  return command(Command::InvertLine,
                 {static_cast<std::uint8_t>(row), static_cast<std::uint8_t>(inverted ? 1 : 0)});
}

util::Seconds DisplayDriver::set_contrast(std::uint8_t level) {
  return command(Command::SetContrast, {level});
}

util::Seconds DisplayDriver::show(const std::array<std::string, kTextLines>& lines,
                                  int highlighted_row) {
  util::Seconds total{0.0};
  for (int row = 0; row < kTextLines; ++row) {
    auto& shadow_line = shadow_[static_cast<std::size_t>(row)];
    // Pad into a stack cell buffer — no per-line string construction on
    // the repaint path.
    std::array<char, kTextColumns> cell;
    cell.fill(' ');
    const std::string& line = lines[static_cast<std::size_t>(row)];
    const std::size_t n = std::min(line.size(), static_cast<std::size_t>(kTextColumns));
    std::copy_n(line.begin(), n, cell.begin());
    const std::string_view padded(cell.data(), cell.size());
    const bool highlight_changed =
        shadow_valid_ && ((shadow_highlight_ == row) != (highlighted_row == row));
    if (shadow_valid_ && std::string_view(shadow_line) == padded && !highlight_changed) continue;
    // Order matters: set polarity first so the glyphs render with it.
    total = total + set_line_inverted(row, highlighted_row == row);
    total = total + text_command(row, 0, padded);
    // Shadow capacity ratchets to 16 bytes on the first repaint of each
    // line; assign() reuses it from then on.
    shadow_line.assign(padded);
  }
  shadow_highlight_ = highlighted_row;
  shadow_valid_ = true;
  return total;
}

}  // namespace distscroll::display
