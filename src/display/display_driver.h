// Firmware-side driver for a BT96040 behind the I2C bus.
//
// Encapsulates the command framing so the DistScroll firmware works in
// terms of "show these 5 lines, highlight line k" — the menu view — and
// returns the accumulated bus time so the device loop can account for
// display-update latency (a full 5-line redraw at 100 kHz standard mode
// costs ~8 ms, which is why the firmware only redraws on change).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

#include "display/bt96040.h"
#include "hw/i2c.h"
#include "util/units.h"

namespace distscroll::display {

class DisplayDriver {
 public:
  DisplayDriver(hw::I2cBus& bus, std::uint8_t address) : bus_(&bus), address_(address) {}

  /// Session reuse: forget the shadow state so the next show() repaints
  /// everything (matches a freshly constructed driver facing a freshly
  /// cleared panel).
  void reset() {
    last_acked_ = true;
    for (auto& line : shadow_) line.clear();
    shadow_highlight_ = -1;
    shadow_valid_ = false;
  }

  /// Clear the panel. Returns bus time spent.
  util::Seconds clear();

  /// Write text at a text cell (clipped to 16 columns).
  util::Seconds write_at(int row, int col, std::string_view text);

  /// Set line inversion (menu highlight).
  util::Seconds set_line_inverted(int row, bool inverted);

  /// Set contrast 0..63 (potentiometer path).
  util::Seconds set_contrast(std::uint8_t level);

  /// Convenience: replace the whole panel with up to 5 lines and one
  /// highlighted row (-1 = none). Only redraws lines that changed since
  /// the last show() to keep bus time low.
  util::Seconds show(const std::array<std::string, kTextLines>& lines, int highlighted_row);

  [[nodiscard]] bool last_acked() const { return last_acked_; }

 private:
  util::Seconds command(Command cmd, std::initializer_list<std::uint8_t> args);
  util::Seconds text_command(int row, int col, std::string_view text);

  hw::I2cBus* bus_;
  std::uint8_t address_;
  bool last_acked_ = true;
  std::array<std::string, kTextLines> shadow_{};
  int shadow_highlight_ = -1;
  bool shadow_valid_ = false;
};

}  // namespace distscroll::display
