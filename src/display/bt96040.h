// Barton BT96040 chip-on-glass display model (96x40 pixels, I2C).
//
// The prototype carries two of these on the add-on board (paper Section
// 4.4): the upper one shows the menu, the lower one debug/state
// information. In text mode the panel fits 5 lines of 16 characters.
//
// The I2C command protocol is a small register-style set modelled on the
// usual COG controllers (ST7565-era):
//   0x01                       CLEAR
//   0x02 <row> <col>           SET_CURSOR (text cells: row 0..4, col 0..15)
//   0x03 <ascii...>            TEXT at cursor, auto-advancing
//   0x04 <level>               SET_CONTRAST (0..63, driven by the pot)
//   0x05 <line> <invert>       INVERT_LINE (menu highlight)
//   0x06 <x> <page> <bytes...> BLIT raw column bytes (page = 8-pixel band)
#pragma once

#include <array>
#include <bitset>
#include <cstdint>
#include <span>
#include <string>

#include "hw/i2c.h"

namespace distscroll::display {

inline constexpr int kDisplayWidth = 96;
inline constexpr int kDisplayHeight = 40;
inline constexpr int kTextLines = 5;   // the paper's "5 lines in text mode"
inline constexpr int kTextColumns = 16;

enum class Command : std::uint8_t {
  Clear = 0x01,
  SetCursor = 0x02,
  Text = 0x03,
  SetContrast = 0x04,
  InvertLine = 0x05,
  Blit = 0x06,
};

class Bt96040 final : public hw::I2cSlave {
 public:
  Bt96040() = default;

  /// Session reuse: power-on state — blank panel, default contrast,
  /// cursor home, frame counter zero.
  void reset() {
    framebuffer_.reset();
    for (auto& row : text_shadow_) row.fill('\0');
    inverted_.fill(false);
    cursor_row_ = 0;
    cursor_col_ = 0;
    contrast_ = 32;
    frames_written_ = 0;
  }

  // --- I2cSlave ----------------------------------------------------------
  bool on_write(std::span<const std::uint8_t> data) override;
  std::vector<std::uint8_t> on_read(std::size_t length) override;  // status byte

  // --- host-side inspection ------------------------------------------------
  [[nodiscard]] bool pixel(int x, int y) const;
  [[nodiscard]] std::uint8_t contrast() const { return contrast_; }
  [[nodiscard]] std::uint64_t frames_written() const { return frames_written_; }

  /// The text currently on a line, reconstructed from the text-mode
  /// shadow buffer (raw blits bypass it and show as '\0' cells -> ' ').
  [[nodiscard]] std::string line_text(int line) const;
  [[nodiscard]] bool line_inverted(int line) const;

  /// ASCII-art dump of the framebuffer for examples/debugging.
  [[nodiscard]] std::string render_ascii() const;

  /// Approximate current draw in mA given contrast (backlight-less COG
  /// displays are cheap; contrast drives the bias ladder).
  [[nodiscard]] double current_draw_ma() const;

 private:
  void clear();
  void draw_char(int cell_row, int cell_col, char c);
  void execute(Command cmd, std::span<const std::uint8_t> args);

  std::bitset<static_cast<std::size_t>(kDisplayWidth) * kDisplayHeight> framebuffer_;
  std::array<std::array<char, kTextColumns>, kTextLines> text_shadow_{};
  std::array<bool, kTextLines> inverted_{};
  int cursor_row_ = 0;
  int cursor_col_ = 0;
  std::uint8_t contrast_ = 32;
  std::uint64_t frames_written_ = 0;
};

}  // namespace distscroll::display
