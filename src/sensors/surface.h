// Reflection target profiles for the IR ranger.
//
// The paper (Section 4.2) notes the GP2D120's key property: the colour
// (reflectivity) of the object in front of the sensor "does nearly not
// matter", verified with different clothing; only reflective surfaces
// with clear boundaries can distract the emitted light. SurfaceProfile
// captures exactly that: a reflectivity gain with tiny effect on the
// triangulated distance, plus an optional specular-boundary artefact
// that occasionally produces invalid readings.
#pragma once

namespace distscroll::sensors {

struct SurfaceProfile {
  /// Diffuse reflectivity relative to the datasheet's white reference
  /// (1.0). Gray card ~0.18, dark fleece ~0.1, white shirt ~0.9.
  double reflectivity = 0.7;

  /// Probability per measurement cycle that a specular boundary
  /// deflects the beam and the measurement is invalid (reads as
  /// out-of-range). Zero for ordinary clothing.
  double specular_glitch_probability = 0.0;

  static SurfaceProfile white_shirt() { return {0.9, 0.0}; }
  static SurfaceProfile dark_fleece() { return {0.12, 0.0}; }
  static SurfaceProfile gray_jacket() { return {0.35, 0.0}; }
  static SurfaceProfile reflective_vest() { return {1.0, 0.12}; }
  static SurfaceProfile lab_coat() { return {0.85, 0.0}; }
};

}  // namespace distscroll::sensors
