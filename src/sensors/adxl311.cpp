#include "sensors/adxl311.h"

#include <algorithm>
#include <cmath>

namespace distscroll::sensors {

util::Volts Adxl311Model::axis_output(double sin_angle, double dynamic_g) {
  const double g_total = sin_angle + dynamic_g;
  double v = config_.zero_g_volts + g_total * config_.sensitivity_v_per_g;
  v += rng_.gaussian(0.0, config_.noise_volts);
  return util::Volts{std::clamp(v, 0.0, 3.0)};
}

util::Volts Adxl311Model::output_x(util::Radians pitch, util::Gs dynamic_x) {
  return axis_output(std::sin(pitch.value), dynamic_x.value);
}

util::Volts Adxl311Model::output_y(util::Radians roll, util::Gs dynamic_y) {
  return axis_output(std::sin(roll.value), dynamic_y.value);
}

util::Radians Adxl311Model::tilt_from_volts(util::Volts v) const {
  const double g = (v.value - config_.zero_g_volts) / config_.sensitivity_v_per_g;
  return util::Radians{std::asin(std::clamp(g, -1.0, 1.0))};
}

}  // namespace distscroll::sensors
