#include "sensors/gp2d120.h"

#include <algorithm>
#include <cmath>

namespace distscroll::sensors {

util::Volts Gp2d120Model::ideal_output(util::Centimeters distance) const {
  const double d = distance.value;
  if (d >= config_.max_range_cm) {
    return util::Volts{config_.min_output_volts};
  }
  const double peak_volts = config_.curve_a / (config_.peak_cm + config_.curve_k) + config_.curve_c;
  if (d < config_.peak_cm) {
    // Rising branch below the response peak: triangulation geometry
    // folds back. Steeper than the far branch (the paper's fast-scroll
    // observation); modelled as linear from the touching-distance output
    // up to the peak.
    if (d <= 0.0) return util::Volts{config_.dead_zone_volts};
    const double t = d / config_.peak_cm;
    return util::Volts{config_.dead_zone_volts + t * (peak_volts - config_.dead_zone_volts)};
  }
  const double v = config_.curve_a / (d + config_.curve_k) + config_.curve_c;
  return util::Volts{std::max(config_.min_output_volts, v)};
}

bool Gp2d120Model::remeasure(util::Centimeters distance) {
  if (rng_.bernoulli(surface_.specular_glitch_probability)) {
    // Beam deflected by a specular boundary: no valid measurement, the
    // output drops to the out-of-range floor for this cycle.
    held_volts_ = config_.min_output_volts;
    return true;
  }
  // Reflectivity shifts the triangulation spot slightly; the datasheet
  // shows only a few percent difference between white and gray targets.
  const double refl_shift = (surface_.reflectivity - 1.0) * config_.reflectivity_sensitivity;
  double v = ideal_output(distance).value * (1.0 + refl_shift);
  v += rng_.gaussian(0.0, config_.output_noise_volts);
  held_volts_ = std::clamp(v, 0.0, 3.3);
  return false;
}

util::Volts Gp2d120Model::output(util::Centimeters true_distance, util::Seconds now) {
  if (!ever_measured_ || now.value >= next_measurement_s_) {
    [[maybe_unused]] const bool glitch = remeasure(true_distance);
    DS_TRACE_AT(tracer_, now.value, obs::EventKind::SensorMeasure,
                static_cast<std::uint32_t>(held_volts_ * 1e6), glitch ? 1u : 0u);
    ever_measured_ = true;
    // Align the next measurement to the sensor's own internal grid.
    const double period = config_.measurement_period.value;
    if (now.value >= next_measurement_s_ + period) {
      next_measurement_s_ = now.value + period;  // resync after a long gap
    } else {
      next_measurement_s_ += period;
    }
  }
  return util::Volts{held_volts_};
}

std::function<util::Volts(util::Seconds)> Gp2d120Model::as_analog_source(
    std::function<util::Centimeters(util::Seconds)> distance_provider) {
  return [this, provider = std::move(distance_provider)](util::Seconds now) {
    return output(provider(now), now);
  };
}

}  // namespace distscroll::sensors
