// Analog Devices ADXL311JE two-axis accelerometer model.
//
// Present on the DistScroll add-on board (paper Section 4.3); unused by
// the distance technique itself but included by the authors "to
// reproduce results published by others" — i.e. the tilt-scrolling
// baselines (Rock'n'Scroll, TiltText, Unigesture). We use it exactly for
// that: baselines::TiltScroll reads tilt through this model.
//
// Static orientation maps to acceleration: a_x = g*sin(pitch),
// a_y = g*sin(roll); the analog outputs are mid-supply at 0 g with the
// datasheet sensitivity of ~174 mV/g.
#pragma once

#include "sim/random.h"
#include "util/units.h"

namespace distscroll::sensors {

class Adxl311Model {
 public:
  struct Config {
    double zero_g_volts = 1.5;       // mid-supply (3 V part)
    double sensitivity_v_per_g = 0.174;
    double noise_volts = 0.004;      // broadband noise through the bw cap
  };

  Adxl311Model(Config config, sim::Rng rng) : config_(config), rng_(rng) {}

  /// Session reuse: equivalent to replacing the object (the model is
  /// stateless beyond its noise stream).
  void reset(Config config, sim::Rng rng) {
    config_ = config;
    rng_ = rng;
  }

  [[nodiscard]] const Config& config() const { return config_; }

  /// Analog X output for a static pitch angle plus dynamic acceleration
  /// along the axis.
  [[nodiscard]] util::Volts output_x(util::Radians pitch, util::Gs dynamic_x = util::Gs{0.0});

  /// Analog Y output for a static roll angle plus dynamic acceleration.
  [[nodiscard]] util::Volts output_y(util::Radians roll, util::Gs dynamic_y = util::Gs{0.0});

  /// Host-side inverse: recover the tilt angle from a measured voltage
  /// (clamps to +-1 g before asin).
  [[nodiscard]] util::Radians tilt_from_volts(util::Volts v) const;

 private:
  [[nodiscard]] util::Volts axis_output(double sin_angle, double dynamic_g);

  Config config_;
  sim::Rng rng_;
};

}  // namespace distscroll::sensors
