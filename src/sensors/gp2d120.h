// Sharp GP2D120 infrared distance sensor model.
//
// This is the integral part of the DistScroll prototype (paper Section
// 4.2). The GP2D120 triangulates with a PSD and emits an analog voltage.
// Properties the paper relies on, all modelled here:
//
//  * measuring range ~4..30 cm matching the predicted usage range;
//  * NON-MONOTONIC response: values rise as the device approaches, peak
//    near 4 cm, and fall again steeply below 4 cm — the paper both
//    tolerates this (displays are unreadable that close) and notes that
//    advanced users exploit the steep branch for fast scrolling;
//  * NON-LINEAR response above the peak, well described by
//    V(d) = a / (d + k) + c (the idealised curve of Fig. 4/5);
//  * near-independence from target reflectivity, with the documented
//    exception of specular boundaries;
//  * a sampled-and-held output: the sensor re-measures every ~38 ms
//    (datasheet typ. 38.3 ms) and holds the voltage in between, which
//    lower-bounds the end-to-end latency of distance scrolling.
#pragma once

#include "obs/tracer.h"
#include "sensors/surface.h"
#include "sim/random.h"
#include "util/units.h"

#include <functional>

namespace distscroll::sensors {

class Gp2d120Model {
 public:
  struct Config {
    // Transfer curve V(d) = a/(d+k) + c for d >= peak_cm, fitted to the
    // GP2D120 datasheet example curve.
    double curve_a = 10.4;   // volt * cm
    double curve_k = 0.6;    // cm
    double curve_c = 0.0;    // volt
    double peak_cm = 3.2;    // response maximum; below this it falls again
    double min_output_volts = 0.25;  // floor when out of range (> ~35 cm)
    double dead_zone_volts = 0.45;   // output at touching distance (0 cm)
    double max_range_cm = 31.0;      // beyond: no measurement, output floors
    double output_noise_volts = 0.012;
    util::Seconds measurement_period{38.3e-3};  // datasheet typical
    /// How strongly (fractionally) reflectivity shifts the reading.
    /// Datasheet: gray vs white differs by only a few percent.
    double reflectivity_sensitivity = 0.03;
  };

  Gp2d120Model(Config config, sim::Rng rng, SurfaceProfile surface = {})
      : config_(config), rng_(rng), surface_(surface) {}

  void set_surface(SurfaceProfile surface) { surface_ = surface; }
  [[nodiscard]] const Config& config() const { return config_; }

  /// Structured tracing of the sensor's internal measurement grid (one
  /// SensorMeasure event per remeasure, including specular glitches).
  /// Null detaches; tracing must never change behaviour.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

  /// Ideal (noise-free, instantaneous) transfer function; exposed so
  /// calibration and the Fig. 4 bench can compare fit vs truth.
  [[nodiscard]] util::Volts ideal_output(util::Centimeters distance) const;

  /// The live analog pin: samples the true-distance provider on the
  /// sensor's own 38 ms grid (zero-order hold) and applies noise,
  /// reflectivity shift and specular glitches.
  [[nodiscard]] util::Volts output(util::Centimeters true_distance, util::Seconds now);

  /// Convenience: wrap this sensor plus a distance provider as an
  /// hw::AnalogSource-compatible callable.
  // ds-lint: allow(no-std-function-hot-path) owning adapter built once; the ADC samples via FunctionRef
  [[nodiscard]] std::function<util::Volts(util::Seconds)> as_analog_source(
      // ds-lint: allow(no-std-function-hot-path) captured into the owning adapter at setup
      std::function<util::Centimeters(util::Seconds)> distance_provider);

  /// Clear the sample-and-hold state (power cycle). Needed when the
  /// driving clock restarts, e.g. between standalone trials.
  void reset() {
    ever_measured_ = false;
    next_measurement_s_ = 0.0;
    held_volts_ = 0.0;
  }

  /// Session reuse: equivalent to replacing the object — new config and
  /// noise stream, default surface, tracer detached (a fresh sensor has
  /// none attached).
  void reset(Config config, sim::Rng rng) {
    config_ = config;
    rng_ = rng;
    surface_ = SurfaceProfile{};
    tracer_ = nullptr;
    reset();
  }

 private:
  /// Returns whether this measurement was a specular glitch.
  bool remeasure(util::Centimeters distance);

  Config config_;
  sim::Rng rng_;
  SurfaceProfile surface_;
  obs::Tracer* tracer_ = nullptr;
  // Sample-and-hold state.
  double held_volts_ = 0.0;
  double next_measurement_s_ = 0.0;
  bool ever_measured_ = false;
};

}  // namespace distscroll::sensors
