// Zone keyboard for sensor-based text entry.
//
// The paper's related work (Section 2) is dominated by text-entry
// techniques: TiltText and Unigesture map groups ("zones") of letters to
// coarse device motions and disambiguate words afterwards. DistScroll's
// islands are exactly such a coarse selector — so the same zone/
// disambiguation machinery lets us compare distance-based text entry
// against the tilt-based originals (the authors included the ADXL311
// precisely "to reproduce results published by others").
//
// The alphabet is split into contiguous zones (Unigesture used 7 plus
// space); a word is entered as its zone sequence and resolved against a
// dictionary.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace distscroll::text {

class ZoneKeyboard {
 public:
  /// Unigesture-style layout: 7 letter zones + 1 space zone.
  static constexpr int kZones = 8;
  static constexpr int kSpaceZone = 7;

  /// Zone of a character; nullopt for anything outside [a-z ' '].
  [[nodiscard]] static constexpr std::optional<int> zone_of(char c) {
    if (c == ' ') return kSpaceZone;
    if (c < 'a' || c > 'z') return std::nullopt;
    // 26 letters across 7 zones: 4,4,4,4,4,3,3.
    const int index = c - 'a';
    if (index < 20) return index / 4;
    return 5 + (index - 20) / 3;
  }

  /// The characters a zone contains.
  [[nodiscard]] static std::string zone_characters(int zone) {
    static const std::array<std::string, kZones> zones = {
        "abcd", "efgh", "ijkl", "mnop", "qrst", "uvw", "xyz", " "};
    if (zone < 0 || zone >= kZones) return {};
    return zones[static_cast<std::size_t>(zone)];
  }

  /// A word's zone sequence; nullopt if it contains unmapped characters.
  [[nodiscard]] static std::optional<std::string> zone_sequence(std::string_view word) {
    std::string sequence;
    sequence.reserve(word.size());
    for (char c : word) {
      const auto zone = zone_of(c);
      if (!zone) return std::nullopt;
      sequence.push_back(static_cast<char>('0' + *zone));
    }
    return sequence;
  }
};

}  // namespace distscroll::text
