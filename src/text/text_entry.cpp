#include "text/text_entry.h"

#include <algorithm>

#include "text/zone_keyboard.h"

namespace distscroll::text {

WordResult TextEntrySession::enter_word(baselines::ScrollTechnique& technique,
                                        std::string_view word,
                                        const human::UserProfile& profile, sim::Rng rng) const {
  WordResult result;
  result.word = std::string(word);
  const auto sequence = ZoneKeyboard::zone_sequence(word);
  if (!sequence) return result;

  human::MotionPlanner planner(config_.planner, rng.fork(1));
  double total_time = 0.0;

  // Phase 1: one zone acquisition per letter. The zone strip is a
  // "menu" of 8 entries; start from wherever the previous selection
  // left the channel (cursor position persists within the word).
  std::size_t cursor = 0;
  for (std::size_t i = 0; i < sequence->size(); ++i) {
    const auto zone = static_cast<std::size_t>((*sequence)[i] - '0');
    technique.reset(ZoneKeyboard::kZones, cursor);
    const auto outcome = planner.acquire(technique, zone, profile);
    total_time += outcome.time_s;
    result.wrong_selections += outcome.wrong_selections;
    ++result.selections;
    if (!outcome.success) {
      result.time_s = total_time;
      return result;  // gave up mid-word
    }
    cursor = zone;
  }

  // Phase 2: pick the word in the candidate list.
  const auto candidates = dictionary_->candidates(*sequence);
  std::size_t rank = candidates.size();
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (candidates[i].word == word) {
      rank = i;
      break;
    }
  }
  if (rank >= candidates.size() || rank >= config_.candidate_limit) {
    // Word missing from the visible list: entry fails (the user would
    // fall back to a spelling mode we don't model).
    result.time_s = total_time;
    return result;
  }
  result.candidate_rank = rank;
  if (rank == 0) {
    // Already highlighted: a single confirm press.
    total_time += profile.verification_time_s + profile.button_press_s;
    ++result.selections;
  } else {
    technique.reset(std::min(candidates.size(), config_.candidate_limit), 0);
    const auto outcome = planner.acquire(technique, rank, profile);
    total_time += outcome.time_s;
    result.wrong_selections += outcome.wrong_selections;
    ++result.selections;
    if (!outcome.success) {
      result.time_s = total_time;
      return result;
    }
  }

  result.success = true;
  result.time_s = total_time;
  return result;
}

std::vector<WordResult> TextEntrySession::enter_phrase(baselines::ScrollTechnique& technique,
                                                       std::string_view phrase,
                                                       const human::UserProfile& profile,
                                                       sim::Rng rng) const {
  std::vector<WordResult> results;
  std::size_t start = 0;
  std::size_t index = 0;
  while (start < phrase.size()) {
    std::size_t end = phrase.find(' ', start);
    if (end == std::string_view::npos) end = phrase.size();
    if (end > start) {
      results.push_back(
          enter_word(technique, phrase.substr(start, end - start), profile, rng.fork(index++)));
    }
    start = end + 1;
  }
  return results;
}

TextEntryStats TextEntrySession::aggregate(const std::vector<WordResult>& results) {
  TextEntryStats stats;
  if (results.empty()) return stats;
  double time = 0.0, selections = 0.0, chars = 0.0, successes = 0.0, errors = 0.0;
  for (const auto& r : results) {
    errors += r.wrong_selections;
    if (!r.success) continue;
    successes += 1.0;
    time += r.time_s;
    selections += static_cast<double>(r.selections);
    chars += static_cast<double>(r.word.size());
  }
  const auto n = static_cast<double>(results.size());
  stats.success_rate = successes / n;
  stats.errors_per_word = errors / n;
  if (successes > 0 && time > 0.0) {
    stats.words_per_minute = successes / (time / 60.0);
    stats.keystrokes_per_char = selections / std::max(1.0, chars);
  }
  return stats;
}

}  // namespace distscroll::text
