// Frequency-ranked dictionary with zone-sequence lookup — the "T9 like
// algorithm ... used to disambiguate entered words" of Unigesture
// (paper Section 2).
//
// Words are indexed by their ZoneKeyboard sequence; candidates for a
// sequence come back ranked by corpus frequency. A small embedded
// common-English list ships as the default corpus.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace distscroll::text {

class Dictionary {
 public:
  struct Entry {
    std::string word;
    std::uint32_t frequency;
  };

  Dictionary() = default;

  /// Add a word with a frequency weight; words with unmappable
  /// characters are rejected (returns false).
  bool add_word(std::string_view word, std::uint32_t frequency);

  [[nodiscard]] std::size_t size() const { return words_; }

  /// Candidates for an exact zone sequence, most frequent first.
  [[nodiscard]] std::vector<Entry> candidates(std::string_view zone_sequence) const;

  /// Candidates for a word prefix typed so far (zone sequence prefix),
  /// most frequent first, capped at `limit` — the completion list shown
  /// on the display.
  [[nodiscard]] std::vector<Entry> completions(std::string_view zone_sequence_prefix,
                                               std::size_t limit = 5) const;

  /// Rank (0-based) of `word` among candidates of its own sequence;
  /// nullopt if absent. Rank 0 = the disambiguator's first guess.
  [[nodiscard]] std::optional<std::size_t> rank_of(std::string_view word) const;

  /// The default embedded corpus (a few hundred common English words).
  [[nodiscard]] static Dictionary common_english();

 private:
  // sequence -> entries (kept sorted by descending frequency).
  std::map<std::string, std::vector<Entry>, std::less<>> by_sequence_;
  std::size_t words_ = 0;
};

}  // namespace distscroll::text
