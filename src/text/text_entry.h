// Word entry through a scrolling technique.
//
// Protocol per word (the Unigesture interaction, driven by any
// baselines::ScrollTechnique instead of wrist tilt):
//   1. per letter: acquire the letter's zone among the 8 zone "entries"
//      and confirm with the select button;
//   2. after the last letter: the disambiguator proposes candidates;
//      the intended word sits at some rank — acquire and confirm it in
//      the candidate list (rank 0 = it is already highlighted).
//
// TextEntrySession runs the closed-loop human model for every one of
// those acquisitions and aggregates words-per-minute, keystrokes per
// character, and error counts.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "baselines/scroll_technique.h"
#include "human/motion_planner.h"
#include "text/dictionary.h"

namespace distscroll::text {

struct WordResult {
  std::string word;
  bool success = false;
  double time_s = 0.0;
  std::size_t selections = 0;     // zone confirms + candidate confirm
  std::size_t candidate_rank = 0; // where the word sat in the list
  int wrong_selections = 0;
};

struct TextEntryStats {
  double words_per_minute = 0.0;
  double keystrokes_per_char = 0.0;  // selections / characters (T9 KSPC analog)
  double success_rate = 0.0;
  double errors_per_word = 0.0;
};

class TextEntrySession {
 public:
  struct Config {
    human::MotionPlanner::Config planner{};
    /// Candidate list length shown on the display.
    std::size_t candidate_limit = 5;
  };

  explicit TextEntrySession(const Dictionary& dictionary)
      : TextEntrySession(dictionary, Config{}) {}
  TextEntrySession(const Dictionary& dictionary, Config config)
      : dictionary_(&dictionary), config_(config) {}

  /// Enter one word with the given technique and participant.
  [[nodiscard]] WordResult enter_word(baselines::ScrollTechnique& technique,
                                      std::string_view word, const human::UserProfile& profile,
                                      sim::Rng rng) const;

  /// Enter a phrase (space-separated words); returns per-word results.
  [[nodiscard]] std::vector<WordResult> enter_phrase(baselines::ScrollTechnique& technique,
                                                     std::string_view phrase,
                                                     const human::UserProfile& profile,
                                                     sim::Rng rng) const;

  [[nodiscard]] static TextEntryStats aggregate(const std::vector<WordResult>& results);

 private:
  const Dictionary* dictionary_;
  Config config_;
};

}  // namespace distscroll::text
