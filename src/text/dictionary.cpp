#include "text/dictionary.h"

#include <algorithm>

#include "text/zone_keyboard.h"

namespace distscroll::text {

bool Dictionary::add_word(std::string_view word, std::uint32_t frequency) {
  const auto sequence = ZoneKeyboard::zone_sequence(word);
  if (!sequence || word.empty()) return false;
  auto& bucket = by_sequence_[*sequence];
  bucket.push_back({std::string(word), frequency});
  std::stable_sort(bucket.begin(), bucket.end(),
                   [](const Entry& a, const Entry& b) { return a.frequency > b.frequency; });
  ++words_;
  return true;
}

std::vector<Dictionary::Entry> Dictionary::candidates(std::string_view zone_sequence) const {
  const auto it = by_sequence_.find(zone_sequence);
  if (it == by_sequence_.end()) return {};
  return it->second;
}

std::vector<Dictionary::Entry> Dictionary::completions(std::string_view prefix,
                                                       std::size_t limit) const {
  std::vector<Entry> out;
  for (auto it = by_sequence_.lower_bound(prefix);
       it != by_sequence_.end() && it->first.compare(0, prefix.size(), prefix) == 0; ++it) {
    out.insert(out.end(), it->second.begin(), it->second.end());
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const Entry& a, const Entry& b) { return a.frequency > b.frequency; });
  if (out.size() > limit) out.resize(limit);
  return out;
}

std::optional<std::size_t> Dictionary::rank_of(std::string_view word) const {
  const auto sequence = ZoneKeyboard::zone_sequence(word);
  if (!sequence) return std::nullopt;
  const auto it = by_sequence_.find(*sequence);
  if (it == by_sequence_.end()) return std::nullopt;
  for (std::size_t i = 0; i < it->second.size(); ++i) {
    if (it->second[i].word == word) return i;
  }
  return std::nullopt;
}

Dictionary Dictionary::common_english() {
  // Frequency-weighted common-word corpus (weights are coarse relative
  // ranks, enough to exercise disambiguation realistically).
  static constexpr struct {
    const char* word;
    std::uint32_t freq;
  } kCorpus[] = {
      {"the", 10000}, {"of", 9000},    {"and", 8800},  {"a", 8600},     {"to", 8500},
      {"in", 8000},   {"is", 7500},    {"you", 7200},  {"that", 7000},  {"it", 6800},
      {"he", 6600},   {"was", 6400},   {"for", 6200},  {"on", 6000},    {"are", 5800},
      {"as", 5600},   {"with", 5400},  {"his", 5200},  {"they", 5000},  {"i", 4900},
      {"at", 4800},   {"be", 4700},    {"this", 4600}, {"have", 4500},  {"from", 4400},
      {"or", 4300},   {"one", 4200},   {"had", 4100},  {"by", 4000},    {"word", 3900},
      {"but", 3800},  {"not", 3700},   {"what", 3600}, {"all", 3500},   {"were", 3400},
      {"we", 3300},   {"when", 3200},  {"your", 3100}, {"can", 3000},   {"said", 2900},
      {"there", 2800}, {"use", 2700},  {"an", 2600},   {"each", 2500},  {"which", 2400},
      {"she", 2300},  {"do", 2200},    {"how", 2100},  {"their", 2000}, {"if", 1950},
      {"will", 1900}, {"up", 1850},    {"other", 1800}, {"about", 1750}, {"out", 1700},
      {"many", 1650}, {"then", 1600},  {"them", 1550}, {"these", 1500}, {"so", 1450},
      {"some", 1400}, {"her", 1350},   {"would", 1300}, {"make", 1250}, {"like", 1200},
      {"him", 1150},  {"into", 1100},  {"time", 1050}, {"has", 1000},   {"look", 980},
      {"two", 960},   {"more", 940},   {"write", 920}, {"go", 900},     {"see", 880},
      {"number", 860}, {"no", 840},    {"way", 820},   {"could", 800},  {"people", 780},
      {"my", 760},    {"than", 740},   {"first", 720}, {"water", 700},  {"been", 680},
      {"call", 660},  {"who", 640},    {"oil", 620},   {"its", 600},    {"now", 580},
      {"find", 560},  {"long", 540},   {"down", 520},  {"day", 500},    {"did", 490},
      {"get", 480},   {"come", 470},   {"made", 460},  {"may", 450},    {"part", 440},
      {"over", 430},  {"new", 420},    {"sound", 410}, {"take", 400},   {"only", 390},
      {"little", 380}, {"work", 370},  {"know", 360},  {"place", 350},  {"year", 340},
      {"live", 330},  {"me", 320},     {"back", 310},  {"give", 300},   {"most", 290},
      {"very", 280},  {"after", 270},  {"thing", 260}, {"our", 250},    {"just", 240},
      {"name", 230},  {"good", 220},   {"sentence", 210}, {"man", 200}, {"think", 195},
      {"say", 190},   {"great", 185},  {"where", 180}, {"help", 175},   {"through", 170},
      {"much", 165},  {"before", 160}, {"line", 155},  {"right", 150},  {"too", 145},
      {"mean", 140},  {"old", 135},    {"any", 130},   {"same", 125},   {"tell", 120},
      {"boy", 115},   {"follow", 110}, {"came", 105},  {"want", 100},   {"show", 98},
      {"also", 96},   {"around", 94},  {"form", 92},   {"three", 90},   {"small", 88},
      {"set", 86},    {"put", 84},     {"end", 82},    {"does", 80},    {"another", 78},
      {"well", 76},   {"large", 74},   {"must", 72},   {"big", 70},     {"even", 68},
      {"such", 66},   {"because", 64}, {"turn", 62},   {"here", 60},    {"why", 58},
      {"ask", 56},    {"went", 54},    {"men", 52},    {"read", 50},    {"need", 48},
      {"land", 46},   {"different", 44}, {"home", 42}, {"us", 40},      {"move", 38},
      {"try", 36},    {"kind", 34},    {"hand", 32},   {"picture", 30}, {"again", 28},
      {"change", 26}, {"off", 24},     {"play", 22},   {"spell", 20},   {"air", 18},
      {"away", 16},   {"animal", 14},  {"house", 12},  {"point", 10},   {"page", 9},
      {"letter", 8},  {"mother", 7},   {"answer", 6},  {"found", 5},    {"study", 4},
      {"still", 3},   {"learn", 2},    {"world", 1},
  };
  Dictionary dictionary;
  for (const auto& entry : kCorpus) dictionary.add_word(entry.word, entry.freq);
  return dictionary;
}

}  // namespace distscroll::text
