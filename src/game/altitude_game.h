// The paper's game application area (Section 5.2) as a library:
// "any sort of character (e.g. aircraft) staying on a fixed position
// somewhere on the left side of the display. The altitude of the
// character is controlled by moving the DistScroll. This is done to
// avoid obstacles or to collect items. ... Firing bullets or dropping
// objects can also be simulated using one or more buttons."
//
// Pure game logic (deterministic given its Rng): walls with gaps
// approach the plane; the plane's altitude is set externally from the
// continuous distance channel; a button fires bullets that blast walls.
// Rendering targets the BT96040 framebuffer via raw blits.
#pragma once

#include <vector>

#include "display/bt96040.h"
#include "sim/random.h"

namespace distscroll::game {

struct Wall {
  int x;         // column, decreasing as it approaches
  int gap_y;     // centre of the gap
  int gap_half;  // half height of the gap
  bool destroyed = false;
};

class AltitudeGame {
 public:
  struct Config {
    int width = display::kDisplayWidth;
    int height = display::kDisplayHeight;
    int plane_x = 8;
    int min_gap_half = 4;
    int max_gap_half = 7;
    int wall_spacing = 28;  // columns between spawns
    int bullet_speed = 3;   // columns per step
    int pass_score = 1;
    int blast_score = 2;
  };

  AltitudeGame(Config config, sim::Rng rng);

  [[nodiscard]] const Config& config() const { return config_; }
  [[nodiscard]] int score() const { return score_; }
  [[nodiscard]] int crashes() const { return crashes_; }
  [[nodiscard]] int plane_y() const { return plane_y_; }
  [[nodiscard]] const std::vector<Wall>& walls() const { return walls_; }
  [[nodiscard]] bool bullet_in_flight() const { return bullet_x_ >= 0; }

  /// Set the plane's altitude (clamped to the screen).
  void set_altitude(int y);

  /// Map a distance in [near, far] cm linearly onto the altitude range —
  /// the continuous use of the sensing channel.
  void set_altitude_from_distance(double distance_cm, double near_cm, double far_cm);

  /// Fire a bullet (one at a time, as from the thumb button).
  void fire();

  /// Advance one frame: walls approach, bullets fly, hits/crashes score.
  void step();

  /// Render into a BT96040 via Blit commands.
  void render(display::Bt96040& panel) const;

 private:
  void spawn_wall();

  Config config_;
  sim::Rng rng_;
  int plane_y_;
  std::vector<Wall> walls_;
  int bullet_x_ = -1;
  int bullet_y_ = 0;
  int score_ = 0;
  int crashes_ = 0;
};

}  // namespace distscroll::game
