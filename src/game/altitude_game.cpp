#include "game/altitude_game.h"

#include <algorithm>
#include <cmath>

namespace distscroll::game {

AltitudeGame::AltitudeGame(Config config, sim::Rng rng)
    : config_(config), rng_(rng), plane_y_(config.height / 2) {
  spawn_wall();
}

void AltitudeGame::spawn_wall() {
  const int margin = config_.max_gap_half + 1;
  walls_.push_back({config_.width - 1,
                    rng_.uniform_int(margin, config_.height - 1 - margin),
                    rng_.uniform_int(config_.min_gap_half, config_.max_gap_half)});
}

void AltitudeGame::set_altitude(int y) {
  plane_y_ = std::clamp(y, 0, config_.height - 1);
}

void AltitudeGame::set_altitude_from_distance(double distance_cm, double near_cm,
                                              double far_cm) {
  const double t = std::clamp((distance_cm - near_cm) / (far_cm - near_cm), 0.0, 1.0);
  set_altitude(static_cast<int>(std::lround(t * (config_.height - 1))));
}

void AltitudeGame::fire() {
  if (bullet_x_ < 0) {
    bullet_x_ = config_.plane_x + 2;
    bullet_y_ = plane_y_;
  }
}

void AltitudeGame::step() {
  for (auto& wall : walls_) --wall.x;

  if (bullet_x_ >= 0) {
    bullet_x_ += config_.bullet_speed;
    for (auto& wall : walls_) {
      if (!wall.destroyed && wall.x >= bullet_x_ - config_.bullet_speed + 1 &&
          wall.x <= bullet_x_) {
        wall.destroyed = true;  // blasted: free passage
        bullet_x_ = -1;
        score_ += config_.blast_score;
        break;
      }
    }
    if (bullet_x_ >= config_.width) bullet_x_ = -1;
  }

  for (const auto& wall : walls_) {
    if (wall.x == config_.plane_x && !wall.destroyed) {
      if (std::abs(plane_y_ - wall.gap_y) <= wall.gap_half) {
        score_ += config_.pass_score;  // threaded the gap
      } else {
        ++crashes_;
      }
    }
  }

  walls_.erase(
      std::remove_if(walls_.begin(), walls_.end(), [](const Wall& w) { return w.x < 0; }),
      walls_.end());
  if (walls_.empty() || walls_.back().x < config_.width - config_.wall_spacing) {
    spawn_wall();
  }
}

void AltitudeGame::render(display::Bt96040& panel) const {
  std::vector<std::uint8_t> frame;
  for (int page = 0; page < (config_.height + 7) / 8; ++page) {
    frame.assign(static_cast<std::size_t>(config_.width) + 3, 0);
    frame[0] = static_cast<std::uint8_t>(display::Command::Blit);
    frame[1] = 0;  // x0
    frame[2] = static_cast<std::uint8_t>(page);
    auto set_pixel = [&](int x, int y) {
      if (x < 0 || x >= config_.width) return;
      if (y < page * 8 || y >= page * 8 + 8 || y >= config_.height) return;
      frame[static_cast<std::size_t>(3 + x)] |= static_cast<std::uint8_t>(1u << (y - page * 8));
    };
    // Plane: a 3-pixel wedge.
    set_pixel(config_.plane_x - 1, plane_y_);
    set_pixel(config_.plane_x, plane_y_);
    set_pixel(config_.plane_x, plane_y_ - 1);
    if (bullet_x_ >= 0) set_pixel(bullet_x_, bullet_y_);
    for (const auto& wall : walls_) {
      if (wall.destroyed) continue;
      for (int y = 0; y < config_.height; ++y) {
        if (std::abs(y - wall.gap_y) > wall.gap_half) set_pixel(wall.x, y);
      }
    }
    panel.on_write(frame);
  }
}

}  // namespace distscroll::game
