#include "pda/pda_addon.h"

namespace distscroll::pda {

PdaAddon::PdaAddon(Config config, sim::EventQueue& queue, sim::Rng rng)
    : config_(config),
      queue_(&queue),
      board_(config.board, queue, rng.fork(1)),
      ranger_(config.sensor, rng.fork(2)) {
  distance_provider_ = [](util::Seconds) { return util::Centimeters{17.0}; };
  ranger_channel_ = board_.adc().attach(hw::AnalogSource(this, [](void* ctx, util::Seconds now) {
    auto* self = static_cast<PdaAddon*>(ctx);
    return self->ranger_.output(self->distance_provider_(now), now);
  }));

  select_ = std::make_unique<input::Button>(config_.button, board_.gpio(), 0, queue, rng.fork(3));
  back_ = std::make_unique<input::Button>(config_.button, board_.gpio(), 1, queue, rng.fork(4));
  debouncers_.resize(2);
  for (std::size_t i = 0; i < 2; ++i) {
    button_ctx_[i] = ButtonCtx{this, static_cast<std::uint8_t>(i)};
    debouncers_[i].on_press(input::Debouncer::Callback(&button_ctx_[i], [](void* ctx) {
      auto* c = static_cast<ButtonCtx*>(ctx);
      c->addon->send_frame(kButtonFrame, {c->index, 1});
    }));
    debouncers_[i].on_release(input::Debouncer::Callback(&button_ctx_[i], [](void* ctx) {
      auto* c = static_cast<ButtonCtx*>(ctx);
      c->addon->send_frame(kButtonFrame, {c->index, 0});
    }));
  }

  board_.battery().add_consumer("gp2d120", 33.0);
  board_.mcu().reserve_ram("addon-state", 64);
  board_.mcu().reserve_flash("addon-firmware", 4 * 1024);  // the dumb firmware is tiny
}

void PdaAddon::power_on() {
  if (powered_) return;
  powered_ = true;
  firmware_timer_ = board_.mcu().start_timer(config_.firmware_tick, [this] { firmware_tick(); });
  button_timer_ = board_.mcu().start_timer(config_.button_tick, [this] { button_tick(); });
}

void PdaAddon::power_off() {
  if (!powered_) return;
  powered_ = false;
  board_.mcu().stop_timer(firmware_timer_);
  board_.mcu().stop_timer(button_timer_);
}

void PdaAddon::firmware_tick() {
  if (!powered_) return;
  const auto counts = board_.adc().sample(ranger_channel_, queue_->now());
  board_.mcu().charge_cycles(440);
  if (++ticks_since_report_ >= config_.report_divider) {
    ticks_since_report_ = 0;
    send_frame(kDistanceFrame, {static_cast<std::uint8_t>(counts.value & 0xFF),
                                static_cast<std::uint8_t>(counts.value >> 8)});
  }
  board_.battery().consume(config_.firmware_tick);
}

void PdaAddon::button_tick() {
  if (!powered_) return;
  for (std::size_t i = 0; i < debouncers_.size(); ++i) {
    debouncers_[i].tick(board_.gpio().read(i));
  }
  board_.mcu().charge_cycles(10);
}

void PdaAddon::send_frame(wireless::FrameType type, std::vector<std::uint8_t> payload) {
  wireless::Frame frame;
  frame.type = type;
  frame.seq = seq_++;
  frame.payload = std::move(payload);
  for (std::uint8_t byte : wireless::encode(frame)) board_.uart().transmit(byte);
  ++frames_sent_;
  board_.mcu().charge_cycles(90);
}

void PdaAddon::on_host_byte(std::uint8_t byte) {
  for (auto frame = host_decoder_.feed(byte); frame; frame = host_decoder_.poll()) {
    if (frame->type == kRateCommand && !frame->payload.empty()) {
      config_.report_divider = std::max<int>(1, frame->payload[0]);
    }
  }
}

}  // namespace distscroll::pda
