// PDA-side consumer of the add-on stream.
//
// Owns everything the dumb dongle does not: the calibrated sensor
// curve, the island mapping, the scroll controller, the menu, and a
// text screen (a 2005-era PDA: more lines than the prototype's COG
// panels). Rebuilds islands per menu level exactly like the standalone
// firmware, so behaviour is identical from the user's point of view —
// which is the point of the paper's planned re-implementation.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/island_mapper.h"
#include "core/scroll_controller.h"
#include "core/sensor_curve.h"
#include "menu/menu.h"
#include "pda/pda_addon.h"
#include "wireless/packet.h"

namespace distscroll::pda {

class PdaHost {
 public:
  struct Config {
    core::SensorCurve curve{};
    core::IslandMapper::Config islands{};
    core::ScrollController::Config scroll{};
    int screen_lines = 10;  // PDA screens fit more than 5 lines
  };

  PdaHost(Config config, const menu::MenuNode& menu_root);

  /// Byte sink for the addon -> host serial direction.
  void on_byte(std::uint8_t byte);

  /// Optional back-channel to the add-on (rate commands).
  void set_addon_sink(std::function<void(std::uint8_t)> sink) { addon_sink_ = std::move(sink); }
  /// Ask the add-on to report every `divider` ticks.
  void request_report_divider(std::uint8_t divider);

  [[nodiscard]] const menu::MenuCursor& cursor() const { return cursor_; }
  [[nodiscard]] const core::IslandMapper& mapper() const { return *mapper_; }

  struct Selection {
    std::string label;
    bool is_leaf;
  };
  [[nodiscard]] const std::vector<Selection>& selections() const { return selections_; }
  void on_leaf_activated(std::function<void(const std::string&)> cb) {
    leaf_callback_ = std::move(cb);
  }

  /// The rendered screen: menu window with '>' cursor marker.
  [[nodiscard]] std::vector<std::string> screen() const;

  // Link statistics.
  [[nodiscard]] std::uint64_t frames_received() const { return decoder_.frames_decoded(); }
  [[nodiscard]] std::uint64_t crc_errors() const { return decoder_.crc_errors(); }
  [[nodiscard]] std::optional<std::uint16_t> last_counts() const { return last_counts_; }

 private:
  void rebuild_mapping();
  void handle_distance(std::uint16_t counts);
  void handle_button(std::uint8_t button, bool pressed);

  Config config_;
  const menu::MenuNode* menu_root_;
  menu::MenuCursor cursor_;
  std::unique_ptr<core::IslandMapper> mapper_;
  std::unique_ptr<core::ScrollController> controller_;
  wireless::FrameDecoder decoder_;
  std::function<void(std::uint8_t)> addon_sink_;
  std::function<void(const std::string&)> leaf_callback_;
  std::vector<Selection> selections_;
  std::optional<std::uint16_t> last_counts_;
  std::uint8_t command_seq_ = 0;
};

}  // namespace distscroll::pda
