#include "pda/pda_host.h"

#include <algorithm>

namespace distscroll::pda {

PdaHost::PdaHost(Config config, const menu::MenuNode& menu_root)
    : config_(config), menu_root_(&menu_root), cursor_(menu_root) {
  rebuild_mapping();
}

void PdaHost::rebuild_mapping() {
  const std::size_t entries = std::max<std::size_t>(1, cursor_.level_size());
  mapper_ = std::make_unique<core::IslandMapper>(config_.curve, entries, config_.islands);
  controller_ = std::make_unique<core::ScrollController>(*mapper_, config_.scroll);
}

void PdaHost::on_byte(std::uint8_t byte) {
  // Drain: a decoder resync can complete more than one frame per byte.
  for (auto frame = decoder_.feed(byte); frame; frame = decoder_.poll()) {
    if (frame->type == kDistanceFrame && frame->payload.size() == 2) {
      handle_distance(static_cast<std::uint16_t>(frame->payload[0] | (frame->payload[1] << 8)));
    } else if (frame->type == kButtonFrame && frame->payload.size() == 2) {
      handle_button(frame->payload[0], frame->payload[1] != 0);
    }
  }
}

void PdaHost::handle_distance(std::uint16_t counts) {
  last_counts_ = counts;
  const auto update = controller_->on_sample(util::AdcCounts{counts});
  if (update.menu_index) {
    cursor_.move_to(*update.menu_index);
  }
}

void PdaHost::handle_button(std::uint8_t button, bool pressed) {
  if (!pressed) return;  // act on press edges
  if (button == 0) {
    // Select.
    const menu::MenuNode& target = cursor_.highlighted();
    selections_.push_back({target.label(), target.is_leaf()});
    if (cursor_.enter()) {
      rebuild_mapping();
    } else if (leaf_callback_) {
      leaf_callback_(target.label());
    }
  } else if (button == 1) {
    if (cursor_.back()) rebuild_mapping();
  }
}

void PdaHost::request_report_divider(std::uint8_t divider) {
  if (!addon_sink_) return;
  wireless::Frame frame;
  frame.type = kRateCommand;
  frame.seq = command_seq_++;
  frame.payload = {divider};
  for (std::uint8_t byte : wireless::encode(frame)) addon_sink_(byte);
}

std::vector<std::string> PdaHost::screen() const {
  const menu::MenuNode& level = cursor_.current_level();
  const std::size_t size = level.child_count();
  const auto lines = static_cast<std::size_t>(config_.screen_lines);
  std::size_t window_start = 0;
  if (size > lines) {
    const std::size_t half = lines / 2;
    window_start = cursor_.index() > half ? cursor_.index() - half : 0;
    window_start = std::min(window_start, size - lines);
  }
  std::vector<std::string> out;
  for (std::size_t row = 0; row < lines; ++row) {
    const std::size_t entry = window_start + row;
    if (entry >= size) break;
    out.push_back((entry == cursor_.index() ? "> " : "  ") + level.child(entry).label());
  }
  return out;
}

}  // namespace distscroll::pda
