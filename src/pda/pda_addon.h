// The minimized DistScroll as a PDA add-on (paper Section 7: "we also
// intend to construct a minimized version of the DistScroll as add-on
// for a PDA", and Section 5.2: "a DistScroll add-on for mobile devices
// using the power connector").
//
// The add-on is deliberately dumb: a GP2D120, one select button, a PIC
// and the connector. It streams raw ADC counts and button events over
// the serial link; the PDA host (pda::PdaHost) owns the menu, the
// calibrated curve, the island mapping and the screen. This splits the
// paper's firmware at the natural seam — sensing on the dongle,
// interpretation on the device with the display.
#pragma once

#include <array>
#include <functional>
#include <memory>

#include "hw/smart_its.h"
#include "input/button.h"
#include "input/debouncer.h"
#include "sensors/gp2d120.h"
#include "wireless/packet.h"

namespace distscroll::pda {

/// Frame types the add-on protocol adds on top of wireless::FrameType.
/// (The decoder passes unknown types through; these values extend the
/// enum's range without colliding.)
inline constexpr auto kDistanceFrame = static_cast<wireless::FrameType>(0x10);
inline constexpr auto kButtonFrame = static_cast<wireless::FrameType>(0x11);
inline constexpr auto kRateCommand = static_cast<wireless::FrameType>(0x12);

class PdaAddon {
 public:
  struct Config {
    hw::SmartIts::Config board{};
    sensors::Gp2d120Model::Config sensor{};
    util::Seconds firmware_tick{20e-3};
    util::Seconds button_tick{1e-3};
    /// Distance frame every N ticks (host-adjustable via kRateCommand).
    int report_divider = 2;
    input::Button::Config button{};
  };

  PdaAddon(Config config, sim::EventQueue& queue, sim::Rng rng);

  void set_distance_provider(std::function<util::Centimeters(util::Seconds)> provider) {
    distance_provider_ = std::move(provider);
  }

  void power_on();
  void power_off();

  /// The single physical button (select; the host may interpret long
  /// presses as back).
  input::Button& select_button() { return *select_; }
  input::Button& back_button() { return *back_; }

  /// The serial connector to the PDA.
  [[nodiscard]] hw::Uart& uart() { return board_.uart(); }
  [[nodiscard]] hw::SmartIts& board() { return board_; }

  /// Feed host -> addon bytes (rate commands).
  void on_host_byte(std::uint8_t byte);

  [[nodiscard]] std::uint64_t frames_sent() const { return frames_sent_; }

 private:
  void firmware_tick();
  void button_tick();
  void send_frame(wireless::FrameType type, std::vector<std::uint8_t> payload);

  Config config_;
  sim::EventQueue* queue_;
  hw::SmartIts board_;
  sensors::Gp2d120Model ranger_;
  std::unique_ptr<input::Button> select_;
  std::unique_ptr<input::Button> back_;
  std::vector<input::Debouncer> debouncers_;
  /// Stable contexts for the debouncers' non-owning edge callbacks.
  struct ButtonCtx {
    PdaAddon* addon = nullptr;
    std::uint8_t index = 0;
  };
  std::array<ButtonCtx, 2> button_ctx_{};
  std::function<util::Centimeters(util::Seconds)> distance_provider_;
  wireless::FrameDecoder host_decoder_;

  std::size_t ranger_channel_ = 0;
  std::size_t firmware_timer_ = 0;
  std::size_t button_timer_ = 0;
  bool powered_ = false;
  int ticks_since_report_ = 0;
  std::uint8_t seq_ = 0;
  std::uint64_t frames_sent_ = 0;
};

}  // namespace distscroll::pda
