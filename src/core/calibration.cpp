#include "core/calibration.h"

#include <cassert>
#include <cmath>
#include <functional>

namespace distscroll::core {

CalibrationResult calibrate(std::span<const CalibrationSample> samples, double vref,
                            util::Centimeters min_fit_distance) {
  std::vector<double> xs, ys;
  xs.reserve(samples.size());
  ys.reserve(samples.size());
  for (const auto& s : samples) {
    if (s.distance < min_fit_distance) continue;
    xs.push_back(s.distance.value);
    ys.push_back(s.counts.value * vref / 1023.0);  // back to volts
  }
  assert(xs.size() >= 3 && "need at least 3 samples on the monotone branch");

  const util::HyperbolicFit hyper = util::fit_hyperbolic(xs, ys);
  const util::PowerFit power = util::fit_power(xs, ys);

  CalibrationResult result;
  result.curve = SensorCurve(SensorCurve::Params{hyper.a, hyper.k, hyper.c, vref});
  result.r_squared = hyper.r_squared;
  result.log_log_r_squared = power.r_squared;
  result.usable_near = min_fit_distance;
  // Usable range ends where the fitted curve's slope becomes too shallow
  // for the ADC to resolve neighbouring islands: require at least
  // 2 LSB/cm of sensitivity.
  const double lsb_volts = vref / 1023.0;
  double far = min_fit_distance.value;
  for (double d = min_fit_distance.value; d <= 60.0; d += 0.5) {
    const double slope =
        std::abs(hyper.a / ((d + hyper.k) * (d + hyper.k)));  // |dV/dd|
    if (slope < 2.0 * lsb_volts) break;
    far = d;
  }
  result.usable_far = util::Centimeters{far};
  return result;
}

std::vector<CalibrationSample> sweep(util::Centimeters from, util::Centimeters to, double step_cm,
                                     const std::function<util::AdcCounts(util::Centimeters)>& read,
                                     int repeats) {
  assert(from < to && step_cm > 0.0 && repeats >= 1);
  std::vector<CalibrationSample> samples;
  for (double d = from.value; d <= to.value + 1e-9; d += step_cm) {
    double sum = 0.0;
    for (int r = 0; r < repeats; ++r) {
      sum += read(util::Centimeters{d}).value;
    }
    samples.push_back({util::Centimeters{d},
                       util::AdcCounts{static_cast<std::uint16_t>(sum / repeats + 0.5)}});
  }
  return samples;
}

}  // namespace distscroll::core
