// Orientation-based context gating.
//
// Paper Section 4.3: "We plan to include the acceleration sensor in the
// final version of the DistScroll to get information about the
// orientation of the device in 3D space and exploit this values for
// context determination."
//
// The concrete context problem for distance scrolling: when the user
// lowers the device (arm down, device hanging) or lays it on a table,
// the ranger points at legs/table and produces garbage that scrolls the
// menu. The gate reads device pitch from the ADXL311 and suspends
// scrolling outside the "held upright in front of the body" posture,
// with hysteresis and a resume delay so a brief wobble doesn't toggle.
#pragma once

#include <cmath>

#include "util/units.h"

namespace distscroll::core {

class ContextGate {
 public:
  struct Config {
    /// |pitch| beyond this suspends scrolling (device tipped away from
    /// the upright interaction posture).
    util::Radians suspend_beyond{0.9};   // ~52 degrees
    /// |pitch| must come back under this to resume (hysteresis).
    util::Radians resume_within{0.6};    // ~34 degrees
    /// Posture must be good this long before scrolling resumes.
    util::Seconds resume_delay{0.3};
  };

  explicit ContextGate(Config config) : config_(config) {}

  [[nodiscard]] bool scrolling_enabled() const { return enabled_; }
  [[nodiscard]] const Config& config() const { return config_; }

  /// Feed the measured pitch each firmware tick; returns whether
  /// scrolling is enabled after this sample.
  bool on_sample(util::Seconds now, util::Radians pitch) {
    const double p = std::abs(pitch.value);
    if (enabled_) {
      if (p > config_.suspend_beyond.value) {
        enabled_ = false;
        good_since_ = -1.0;
      }
    } else {
      if (p < config_.resume_within.value) {
        if (good_since_ < 0.0) good_since_ = now.value;
        if (now.value - good_since_ >= config_.resume_delay.value) enabled_ = true;
      } else {
        good_since_ = -1.0;
      }
    }
    return enabled_;
  }

  void reset() {
    enabled_ = true;
    good_since_ = -1.0;
  }

 private:
  Config config_;
  bool enabled_ = true;
  double good_since_ = -1.0;
};

}  // namespace distscroll::core
